// Command flowgen generates a synthetic Twitter-like corpus (the
// substitute for the paper's Choudhury et al. dataset) and writes it,
// with its hidden ground-truth model, as JSON:
//
//	flowgen -users 2000 -tweets 4000 -seed 7 -o corpus.json
//
// The output is consumed by flowquery and by any pipeline wanting a
// reproducible information-flow corpus with known ground truth.
package main

import (
	"flag"
	"fmt"
	"os"

	"infoflow/internal/rng"
	"infoflow/internal/twitter"
)

func main() {
	cfg := twitter.DefaultConfig()
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("o", "-", "output path (- for stdout)")
	flag.IntVar(&cfg.NumUsers, "users", cfg.NumUsers, "number of users")
	flag.IntVar(&cfg.NumTweets, "tweets", cfg.NumTweets, "original tweet cascades")
	flag.IntVar(&cfg.NumHashtags, "hashtags", cfg.NumHashtags, "hashtag objects")
	flag.IntVar(&cfg.NumURLs, "urls", cfg.NumURLs, "url objects")
	flag.IntVar(&cfg.FollowsPerUser, "follows", cfg.FollowsPerUser, "follows per arriving user")
	flag.Float64Var(&cfg.Reciprocity, "reciprocity", cfg.Reciprocity, "follow reciprocity")
	flag.Float64Var(&cfg.DropOriginalFrac, "drop", cfg.DropOriginalFrac, "fraction of originals dropped (sparsity)")
	flag.IntVar(&cfg.HashtagSeeds, "hashtag-seeds", cfg.HashtagSeeds, "independent entry points per hashtag")
	flag.Parse()

	d, err := twitter.Generate(cfg, rng.New(*seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "flowgen: %v\n", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flowgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := d.Write(w); err != nil {
		fmt.Fprintf(os.Stderr, "flowgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprint(os.Stderr, d.Stats())
}
