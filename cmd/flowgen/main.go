// Command flowgen generates a synthetic Twitter-like corpus (the
// substitute for the paper's Choudhury et al. dataset) and writes it,
// with its hidden ground-truth model, as JSON:
//
//	flowgen -users 2000 -tweets 4000 -seed 7 -o corpus.json
//
// The output is consumed by flowquery and by any pipeline wanting a
// reproducible information-flow corpus with known ground truth.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"infoflow/internal/rng"
	"infoflow/internal/twitter"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "flowgen: %v\n", err)
		os.Exit(1)
	}
}

// run generates one corpus. The dataset JSON goes to the -o path (or
// stdout for "-"); the human-readable corpus stats go to stderr so a
// piped corpus stays parseable.
func run(args []string, stdout, stderr io.Writer) error {
	cfg := twitter.DefaultConfig()
	fs := flag.NewFlagSet("flowgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("o", "-", "output path (- for stdout)")
	fs.IntVar(&cfg.NumUsers, "users", cfg.NumUsers, "number of users")
	fs.IntVar(&cfg.NumTweets, "tweets", cfg.NumTweets, "original tweet cascades")
	fs.IntVar(&cfg.NumHashtags, "hashtags", cfg.NumHashtags, "hashtag objects")
	fs.IntVar(&cfg.NumURLs, "urls", cfg.NumURLs, "url objects")
	fs.IntVar(&cfg.FollowsPerUser, "follows", cfg.FollowsPerUser, "follows per arriving user")
	fs.Float64Var(&cfg.Reciprocity, "reciprocity", cfg.Reciprocity, "follow reciprocity")
	fs.Float64Var(&cfg.DropOriginalFrac, "drop", cfg.DropOriginalFrac, "fraction of originals dropped (sparsity)")
	fs.IntVar(&cfg.HashtagSeeds, "hashtag-seeds", cfg.HashtagSeeds, "independent entry points per hashtag")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, err := twitter.Generate(cfg, rng.New(*seed))
	if err != nil {
		return err
	}
	w := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := d.Write(w); err != nil {
		return err
	}
	_, err = fmt.Fprint(stderr, d.Stats())
	return err
}
