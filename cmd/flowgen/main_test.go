package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"infoflow/internal/twitter"
)

func TestRunWritesParseableCorpus(t *testing.T) {
	out := filepath.Join(t.TempDir(), "corpus.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-users", "40", "-tweets", "30", "-hashtags", "5", "-urls", "5", "-seed", "7", "-o", out}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout not empty with -o file: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "users") {
		t.Errorf("stats missing from stderr: %q", stderr.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := twitter.Read(f)
	if err != nil {
		t.Fatalf("corpus does not round-trip: %v", err)
	}
	if got := len(d.RealUsers()); got != 40 {
		t.Errorf("real users = %d, want 40", got)
	}
}

func TestRunStdoutCorpus(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-users", "25", "-tweets", "10", "-hashtags", "2", "-urls", "2"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if _, err := twitter.Read(bytes.NewReader(stdout.Bytes())); err != nil {
		t.Fatalf("piped corpus does not parse: %v", err)
	}
}

func TestRunSeedReproducible(t *testing.T) {
	gen := func() []byte {
		var stdout, stderr bytes.Buffer
		if err := run([]string{"-users", "25", "-tweets", "10", "-seed", "3"}, &stdout, &stderr); err != nil {
			t.Fatal(err)
		}
		return stdout.Bytes()
	}
	if !bytes.Equal(gen(), gen()) {
		t.Fatal("same seed produced different corpora")
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-nosuchflag"}, &stdout, &stderr); err == nil {
		t.Fatal("bad flag accepted")
	}
}
