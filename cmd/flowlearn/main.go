// Command flowlearn runs the unattributed learning pipeline (§V of the
// paper) on a corpus written by flowgen: it reduces the tweets to
// activation traces for hashtags or URLs, builds per-sink evidence
// summaries, and learns the incident edge probabilities of one sink with
// all four estimators — joint Bayes (with posterior correlations),
// Goyal's credit rule, relaxed Saito EM, and the filtered baseline —
// comparing against the corpus's hidden ground truth.
//
//	flowlearn -data corpus.json -kind url            # busiest sink
//	flowlearn -data corpus.json -kind hashtag -sink 42
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"infoflow/internal/graph"
	"infoflow/internal/rng"
	"infoflow/internal/twitter"
	"infoflow/internal/unattrib"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "flowlearn: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flowlearn", flag.ContinueOnError)
	fs.SetOutput(stderr)
	data := fs.String("data", "", "corpus JSON written by flowgen (required)")
	kindArg := fs.String("kind", "url", "object kind to learn from: url or hashtag")
	sinkArg := fs.Int("sink", -1, "sink user (-1 selects the most-observed sink)")
	seed := fs.Uint64("seed", 1, "MCMC seed")
	samples := fs.Int("samples", 2000, "posterior samples")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		fs.Usage()
		return fmt.Errorf("-data is required")
	}
	f, err := os.Open(*data)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := twitter.Read(f)
	if err != nil {
		return err
	}
	var kind twitter.MentionKind
	switch *kindArg {
	case "url":
		kind = twitter.MentionURLs
	case "hashtag":
		kind = twitter.MentionHashtags
	default:
		return fmt.Errorf("unknown kind %q (want url or hashtag)", *kindArg)
	}
	traces := twitter.ExtractTraces(d.Tweets, kind)
	if len(traces) == 0 {
		return fmt.Errorf("no %s traces in the corpus", *kindArg)
	}
	// Order the traces by label: map iteration order is randomized, and
	// the observation order feeds the learners' accumulations.
	labels := make([]string, 0, len(traces))
	for label := range traces {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	traceList := make([]unattrib.Trace, 0, len(traces))
	for _, label := range labels {
		traceList = append(traceList, traces[label])
	}
	sums, err := unattrib.BuildSummaries(d.Flow, traceList)
	if err != nil {
		return err
	}
	var s *unattrib.Summary
	if *sinkArg >= 0 {
		s = sums[graph.NodeID(*sinkArg)]
		if s == nil {
			return fmt.Errorf("sink %d has no incident edges", *sinkArg)
		}
	} else {
		for _, cand := range sums {
			if cand.Sink == d.Omnipotent {
				continue
			}
			if s == nil || cand.NumObservations() > s.NumObservations() {
				s = cand
			}
		}
		if s == nil {
			return fmt.Errorf("no summaries built")
		}
	}
	fmt.Fprintf(stdout, "sink user %d: %d parents (%d dropped), %d observations, %d characteristics over %d traces\n",
		s.Sink, len(s.Parents), s.DroppedParents, s.NumObservations(), len(s.Rows), len(traceList))

	r := rng.New(*seed)
	opts := unattrib.DefaultBayesOptions()
	opts.Samples = *samples
	post, err := unattrib.JointBayes(s, opts, r)
	if err != nil {
		return err
	}
	goyal := unattrib.Goyal(s)
	init := make([]float64, len(s.Parents))
	for i := range init {
		init[i] = 0.5
	}
	saito, iters, err := unattrib.SaitoRelaxed(s, init, unattrib.DefaultSaitoOptions())
	if err != nil {
		return err
	}
	filtered := unattrib.FilteredMeans(s)

	fmt.Fprintf(stdout, "\n%8s %8s %14s %8s %8s %8s\n", "parent", "truth", "bayes(+/-sd)", "goyal", "saito", "filtered")
	for j, parent := range s.Parents {
		truth := float64(-1)
		if id, ok := d.Flow.EdgeID(parent, s.Sink); ok {
			truth = d.TruthICM.P[id]
		}
		fmt.Fprintf(stdout, "%8d %8.3f %7.3f+/-%.3f %8.3f %8.3f %8.3f\n",
			parent, truth, post.Mean[j], post.StdDev[j], goyal[j], saito[j], filtered[j])
	}
	fmt.Fprintf(stdout, "(EM converged in %d iterations; MCMC acceptance %.2f)\n", iters, post.AcceptanceRate)

	// Strongest posterior correlations: the joint structure point
	// estimators cannot express.
	corr := post.Correlation()
	type pair struct {
		i, j int
		c    float64
	}
	var best pair
	for i := range corr {
		for j := i + 1; j < len(corr); j++ {
			if abs(corr[i][j]) > abs(best.c) {
				best = pair{i, j, corr[i][j]}
			}
		}
	}
	if len(s.Parents) > 1 {
		fmt.Fprintf(stdout, "strongest posterior correlation: parents %d and %d at %+.3f\n",
			s.Parents[best.i], s.Parents[best.j], best.c)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
