package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"infoflow/internal/rng"
	"infoflow/internal/twitter"
)

// tinyCorpus writes a small generated corpus to a temp file and returns
// its path.
func tinyCorpus(t *testing.T) string {
	t.Helper()
	cfg := twitter.DefaultConfig()
	cfg.NumUsers = 40
	cfg.NumTweets = 60
	cfg.NumHashtags = 5
	cfg.NumURLs = 8
	d, err := twitter.Generate(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := d.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunLearnsBusiestSink(t *testing.T) {
	corpus := tinyCorpus(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-data", corpus, "-kind", "url", "-samples", "200"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "sink user") {
		t.Errorf("missing summary header:\n%s", out)
	}
	if !strings.Contains(out, "bayes(+/-sd)") {
		t.Errorf("missing estimator table:\n%s", out)
	}
	if !strings.Contains(out, "EM converged") {
		t.Errorf("missing convergence footer:\n%s", out)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Fatal("missing -data accepted")
	}
	corpus := tinyCorpus(t)
	if err := run([]string{"-data", corpus, "-kind", "carrier-pigeon"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
