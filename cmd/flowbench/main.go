// Command flowbench reproduces the tables and figures of "Learning
// Stochastic Models of Information Flow" (ICDE 2012). Each experiment is
// addressed by its paper label:
//
//	flowbench -list
//	flowbench fig1 fig5
//	flowbench -small all
//
// -small runs the fast configurations used by the test suite; the
// default configurations approximate publication scale and can take
// minutes per experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"infoflow/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	small := flag.Bool("small", false, "run reduced configurations (seconds, not minutes)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flowbench [-small] [-list] <experiment>... | all\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", r.Name, r.Description)
		}
		return
	}
	names := flag.Args()
	if len(names) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(names) == 1 && names[0] == "all" {
		names = nil
		for _, r := range experiments.Registry() {
			names = append(names, r.Name)
		}
	}
	exit := 0
	for _, name := range names {
		runner, ok := experiments.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "flowbench: unknown experiment %q (try -list)\n", name)
			exit = 1
			continue
		}
		start := time.Now()
		res, err := runner.Run(*small)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flowbench: %s: %v\n", name, err)
			exit = 1
			continue
		}
		fmt.Printf("=== %s (%s) [%v]\n%s\n", runner.Name, runner.Description,
			time.Since(start).Round(time.Millisecond), res)
	}
	os.Exit(exit)
}
