// Command flowbench reproduces the tables and figures of "Learning
// Stochastic Models of Information Flow" (ICDE 2012). Each experiment is
// addressed by its paper label:
//
//	flowbench -list
//	flowbench fig1 fig5
//	flowbench -small all
//
// -small runs the fast configurations used by the test suite; the
// default configurations approximate publication scale and can take
// minutes per experiment.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"infoflow/internal/experiments"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr, time.Now)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "flowbench: %v\n", err)
		os.Exit(1)
	}
}

// run drives the experiment registry. The clock only decorates the
// progress output with elapsed wall time, so it is injected rather than
// read ambiently: experiment results themselves stay functions of the
// seed alone.
func run(args []string, stdout, stderr io.Writer, clock func() time.Time) error {
	fs := flag.NewFlagSet("flowbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available experiments and exit")
	small := fs.Bool("small", false, "run reduced configurations (seconds, not minutes)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: flowbench [-small] [-list] <experiment>... | all\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, r := range experiments.Registry() {
			fmt.Fprintf(stdout, "%-8s %s\n", r.Name, r.Description)
		}
		return nil
	}
	names := fs.Args()
	if len(names) == 0 {
		fs.Usage()
		return errors.New("no experiments named")
	}
	if len(names) == 1 && names[0] == "all" {
		names = nil
		for _, r := range experiments.Registry() {
			names = append(names, r.Name)
		}
	}
	var failed []string
	for _, name := range names {
		runner, ok := experiments.Lookup(name)
		if !ok {
			fmt.Fprintf(stderr, "flowbench: unknown experiment %q (try -list)\n", name)
			failed = append(failed, name)
			continue
		}
		start := clock()
		res, err := runner.Run(*small)
		if err != nil {
			fmt.Fprintf(stderr, "flowbench: %s: %v\n", name, err)
			failed = append(failed, name)
			continue
		}
		fmt.Fprintf(stdout, "=== %s (%s) [%v]\n%s\n", runner.Name, runner.Description,
			clock().Sub(start).Round(time.Millisecond), res)
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d experiment(s) failed: %v", len(failed), failed)
	}
	return nil
}
