package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock advances a fixed step per read.
func fakeClock() func() time.Time {
	var ticks int64
	return func() time.Time {
		ticks++
		return time.Unix(0, ticks*int64(time.Second))
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr, fakeClock()); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, name := range []string{"fig1", "fig6"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestRunSmallExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-small", "fig6"}, &stdout, &stderr, fakeClock()); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "=== fig6") {
		t.Errorf("missing experiment header:\n%s", out)
	}
	// The injected clock is read exactly twice around the experiment, so
	// the reported elapsed time is exactly one fake second.
	if !strings.Contains(out, "[1s]") {
		t.Errorf("injected clock not used for elapsed time:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"definitely-not-an-experiment"}, &stdout, &stderr, fakeClock())
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Errorf("stderr missing diagnosis: %q", stderr.String())
	}
}

func TestRunNoArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr, fakeClock()); err == nil {
		t.Fatal("empty invocation accepted")
	}
}
