package main

import (
	"testing"

	"infoflow/internal/core"
	"infoflow/internal/serve"
)

func TestParseCondsValid(t *testing.T) {
	got, err := serve.ParseConds("3>7=1, 2>9=0 ,0>1=1")
	if err != nil {
		t.Fatal(err)
	}
	want := []core.FlowCondition{
		{Source: 3, Sink: 7, Require: true},
		{Source: 2, Sink: 9, Require: false},
		{Source: 0, Sink: 1, Require: true},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cond %d = %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestParseCondsEmpty(t *testing.T) {
	got, err := serve.ParseConds("")
	if err != nil || got != nil {
		t.Fatalf("empty = %v, %v", got, err)
	}
}

func TestParseCondsInvalid(t *testing.T) {
	for _, bad := range []string{
		"3>7",     // missing requirement
		"3=1",     // missing sink
		"a>7=1",   // bad source
		"3>b=1",   // bad sink
		"3>7=2",   // bad requirement
		"3>7=1,,", // empty element
		"3 > 7 = x",
	} {
		if _, err := serve.ParseConds(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
