// Command flowquery loads a corpus written by flowgen, trains a betaICM
// on its recovered retweet chains, and answers flow queries against the
// trained model:
//
//	flowquery -data corpus.json -source 3 -sink 42          # end-to-end flow
//	flowquery -data corpus.json -source 3 -community -top 10
//	flowquery -data corpus.json -source 3 -sink 42 -cond "3>7=1,3>9=0"
//	flowquery -data corpus.json -source 3 -impact
//	flowquery -data corpus.json -impact -sources 3,7,12
//	flowquery -data corpus.json -source 3 -sink 42 -nested 50
//	flowquery -data corpus.json -maximize -k 5
//	flowquery -data corpus.json -maximize -k 3 -sources 1,4,9
//
// Conditions are comma-separated "u>v=1" (flow known present) or
// "u>v=0" (known absent).
//
// -impact prints the cascade-size distribution of the source set: the
// exact analytic law (internal/sizedist) when the model admits one and
// the query is unconditioned, otherwise the sampled MH estimate — the
// header labels which estimator answered.
//
// -maximize selects the -k seed users whose cascades cover the most of
// the network (or of the -sources community, when given) by RIS-sketch
// lazy-greedy maximum coverage — the deterministic sketch backend the
// flowserve /maximize endpoint serves.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"infoflow/internal/core"
	"infoflow/internal/dist"
	"infoflow/internal/graph"
	"infoflow/internal/influence"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
	"infoflow/internal/serve"
	"infoflow/internal/sizedist"
	"infoflow/internal/twitter"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "flowquery: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flowquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	data := fs.String("data", "", "corpus JSON written by flowgen (required)")
	seed := fs.Uint64("seed", 1, "sampler seed")
	source := fs.Int("source", -1, "source user (required)")
	sink := fs.Int("sink", -1, "sink user (for end-to-end queries)")
	condsArg := fs.String("cond", "", "flow conditions, e.g. \"3>7=1,3>9=0\"")
	community := fs.Bool("community", false, "report source-to-community flow")
	top := fs.Int("top", 10, "community nodes to print")
	impact := fs.Bool("impact", false, "report the impact (cascade-size) distribution")
	maximize := fs.Bool("maximize", false, "select the k most influential seed users (RIS sketch)")
	budget := fs.Int("k", 5, "seed budget for -maximize")
	sourcesArg := fs.String("sources", "", "comma-separated source set for -impact, or community targets for -maximize (overrides -source)")
	nested := fs.Int("nested", 0, "if > 0, sample this many models for an uncertainty estimate")
	samples := fs.Int("samples", 2000, "MH output samples")
	censored := fs.Bool("censored", true, "use censored attributed training (recommended for chain-recovered evidence)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *data == "" || (*source < 0 && !(*impact && *sourcesArg != "") && !*maximize) {
		fs.Usage()
		return fmt.Errorf("-data and -source (or -impact -sources, or -maximize) are required")
	}
	f, err := os.Open(*data)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := twitter.Read(f)
	if err != nil {
		return err
	}
	real, _, _ := d.Flow.Subgraph(d.RealUsers())
	res := twitter.ExtractAttributed(real, d.Tweets)
	bm := core.NewBetaICM(real)
	train := bm.TrainAttributed
	if *censored {
		train = bm.TrainAttributedCensored
	}
	if err := train(&res.Evidence); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trained on %d objects (%d originals recovered, %d edges skipped)\n",
		res.Objects, res.RecoveredOriginals, res.SkippedEdges)

	conds, err := serve.ParseConds(*condsArg)
	if err != nil {
		return err
	}
	r := rng.New(*seed)
	m := bm.ExpectedICM()
	opts := mh.DefaultOptions(m.NumEdges())
	opts.Samples = *samples
	src := graph.NodeID(*source)
	if *source >= 0 && int(src) >= real.NumNodes() {
		return fmt.Errorf("source %d out of range", src)
	}

	switch {
	case *maximize:
		var targets []graph.NodeID
		if *sourcesArg != "" {
			if targets, err = serve.ParseSources(*sourcesArg); err != nil {
				return err
			}
			for _, v := range targets {
				if int(v) >= real.NumNodes() {
					return fmt.Errorf("target %d out of range", v)
				}
			}
		}
		return printMaximize(stdout, m, *budget, targets, conds, r)
	case *impact:
		set := []graph.NodeID{src}
		if *sourcesArg != "" {
			if set, err = serve.ParseSources(*sourcesArg); err != nil {
				return err
			}
			if len(set) == 0 {
				return fmt.Errorf("-sources is empty")
			}
			for _, v := range set {
				if int(v) >= real.NumNodes() {
					return fmt.Errorf("source %d out of range", v)
				}
			}
		}
		return printImpact(stdout, m, set, conds, opts, r)
	case *community:
		flows, err := mh.CommunityFlowProbs(m, src, conds, opts, r)
		if err != nil {
			return err
		}
		type nodeFlow struct {
			v graph.NodeID
			p float64
		}
		var nf []nodeFlow
		for v, p := range flows {
			if graph.NodeID(v) != src && p > 0 {
				nf = append(nf, nodeFlow{graph.NodeID(v), p})
			}
		}
		sort.Slice(nf, func(i, j int) bool { return nf[i].p > nf[j].p })
		if len(nf) > *top {
			nf = nf[:*top]
		}
		fmt.Fprintf(stdout, "top community flows from user %d:\n", src)
		for _, x := range nf {
			fmt.Fprintf(stdout, "  -> %6d  %.4f\n", x.v, x.p)
		}
	case *nested > 0:
		if *sink < 0 {
			return fmt.Errorf("-sink required for nested query")
		}
		ps, err := mh.NestedFlowProb(bm, src, graph.NodeID(*sink), conds, *nested, opts, r)
		if err != nil {
			return err
		}
		s := dist.Summarize(ps)
		fit := dist.FitBetaToSamples(ps)
		fmt.Fprintf(stdout, "flow %d ~> %d: mean %.4f sd %.4f over %d sampled models (fit %v)\n",
			src, *sink, s.Mean, s.StdDev(), s.N, fit)
	default:
		if *sink < 0 {
			return fmt.Errorf("-sink required (or use -community / -impact)")
		}
		p, err := mh.FlowProb(m, src, graph.NodeID(*sink), conds, opts, r)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Pr[%d ~> %d", src, *sink)
		if len(conds) > 0 {
			fmt.Fprintf(stdout, " | %d conditions", len(conds))
		}
		fmt.Fprintf(stdout, "] = %.4f\n", p)
	}
	return nil
}

// printMaximize reports the k-seed RIS-sketch selection: seeds in
// selection order with their marginal spread gains over the target
// universe (the whole network, or the community given via -sources).
func printMaximize(stdout io.Writer, m *core.ICM, k int, targets []graph.NodeID, conds []core.FlowCondition, r *rng.RNG) error {
	if k <= 0 || k > m.NumNodes() {
		return fmt.Errorf("-k %d out of range [1, %d]", k, m.NumNodes())
	}
	opts := influence.DefaultSketchOptions(m.NumEdges())
	res, pool, err := influence.Maximize(m, k, targets, conds, opts, r)
	if err != nil {
		return err
	}
	scope := "network"
	if len(targets) > 0 {
		scope = fmt.Sprintf("community of %d users", pool.Universe)
	}
	fmt.Fprintf(stdout, "top-%d influence seeds over the %s (RIS sketch, %d RR sets):\n",
		len(res.Seeds), scope, pool.NumSets)
	for i, v := range res.Seeds {
		fmt.Fprintf(stdout, "  %2d. user %6d  marginal gain %8.2f\n", i+1, v, res.MarginalGains[i])
	}
	fmt.Fprintf(stdout, "estimated spread of the set: %.2f users\n", res.SpreadEstimate)
	return nil
}

// printImpact reports the cascade-size distribution of a source set:
// the exact analytic law when internal/sizedist can produce one (the
// query must be unconditioned — the analytic engine computes the
// unconditional law), otherwise the sampled MH estimate. The header
// labels which estimator answered.
func printImpact(stdout io.Writer, m *core.ICM, set []graph.NodeID, conds []core.FlowCondition, opts mh.Options, r *rng.RNG) error {
	users := make([]string, len(set))
	for i, v := range set {
		users[i] = fmt.Sprint(v)
	}
	who := strings.Join(users, ",")
	if len(conds) == 0 {
		if res, err := sizedist.Compute(m, set, sizedist.DefaultOptions()); err == nil && res.Exact {
			fmt.Fprintf(stdout, "impact distribution for users %s (analytic: %s, exact; mean %.4f):\n", who, res.Method, res.Mean())
			for k, p := range res.Dist {
				if p > 1e-9 {
					fmt.Fprintf(stdout, "  %3d reached: %.4f\n", k, p)
				}
			}
			return nil
		}
	}
	impacts, err := mh.ImpactDistribution(m, set, conds, opts, r)
	if err != nil {
		return err
	}
	hist := dist.IntHistogram(impacts)
	fmt.Fprintf(stdout, "impact distribution for users %s (sampled: mh, over %d samples):\n", who, len(impacts))
	for k, c := range hist {
		if c > 0 {
			fmt.Fprintf(stdout, "  %3d reached: %6d (%.4f)\n", k, c, float64(c)/float64(len(impacts)))
		}
	}
	return nil
}
