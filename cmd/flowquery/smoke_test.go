package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"infoflow/internal/rng"
	"infoflow/internal/twitter"
)

// tinyCorpus writes a small generated corpus to a temp file and returns
// its path.
func tinyCorpus(t *testing.T) string {
	t.Helper()
	cfg := twitter.DefaultConfig()
	cfg.NumUsers = 40
	cfg.NumTweets = 60
	cfg.NumHashtags = 5
	cfg.NumURLs = 5
	d, err := twitter.Generate(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := d.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

var flowProbLine = regexp.MustCompile(`Pr\[0 ~> 1\] = [01]\.\d{4}`)

func TestRunEndToEndQuery(t *testing.T) {
	corpus := tinyCorpus(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-data", corpus, "-source", "0", "-sink", "1", "-samples", "100"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !flowProbLine.MatchString(stdout.String()) {
		t.Errorf("output missing flow probability line:\n%s", stdout.String())
	}
}

func TestRunMissingArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-source", "0"}, &stdout, &stderr); err == nil {
		t.Fatal("missing -data accepted")
	}
	if err := run([]string{"-data", "nope.json", "-source", "0", "-sink", "1"}, &stdout, &stderr); err == nil {
		t.Fatal("nonexistent corpus accepted")
	}
}

var maximizeHeader = regexp.MustCompile(`top-2 influence seeds over the network \(RIS sketch, \d+ RR sets\):`)

// TestRunMaximizeQuery: -maximize -k prints the selected seeds with
// their marginal gains and the set's estimated spread, deterministically
// for a fixed -seed.
func TestRunMaximizeQuery(t *testing.T) {
	corpus := tinyCorpus(t)
	var a, b, stderr bytes.Buffer
	if err := run([]string{"-data", corpus, "-maximize", "-k", "2", "-seed", "7"}, &a, &stderr); err != nil {
		t.Fatal(err)
	}
	if !maximizeHeader.MatchString(a.String()) {
		t.Errorf("output missing seed header:\n%s", a.String())
	}
	if !regexp.MustCompile(`estimated spread of the set: \d+\.\d{2} users`).MatchString(a.String()) {
		t.Errorf("output missing spread estimate:\n%s", a.String())
	}
	if err := run([]string{"-data", corpus, "-maximize", "-k", "2", "-seed", "7"}, &b, &stderr); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("repeated -maximize run diverged:\n%s\nvs\n%s", a.String(), b.String())
	}
	var bad bytes.Buffer
	if err := run([]string{"-data", corpus, "-maximize", "-k", "0"}, &bad, &stderr); err == nil {
		t.Error("-k 0 accepted")
	}
}

var impactHeader = regexp.MustCompile(`impact distribution for users 0,1 \((analytic: [a-z-]+, exact; mean \d+\.\d{4}|sampled: mh, over 100 samples)\):`)

// TestRunImpactQuery: -impact with a multi-node -sources set prints a
// labeled size distribution — analytic when the trained model admits the
// exact law, sampled otherwise.
func TestRunImpactQuery(t *testing.T) {
	corpus := tinyCorpus(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-data", corpus, "-impact", "-sources", "0,1", "-samples", "100"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !impactHeader.MatchString(stdout.String()) {
		t.Errorf("output missing labeled impact header:\n%s", stdout.String())
	}
}
