// Command flowserve serves flow-probability queries over HTTP: it loads
// a corpus written by flowgen, trains a betaICM on the recovered
// retweet chains, and answers /flow and /community queries against the
// trained model's expected ICM, coalescing concurrent requests into
// wide-lane batched Metropolis-Hastings sweeps of up to -lanes queries
// (default 512) per chain.
//
//	flowserve -data corpus.json -addr 127.0.0.1:8080
//	curl 'http://127.0.0.1:8080/flow?source=3&sink=42'
//	curl 'http://127.0.0.1:8080/community?source=3&top=10'
//	curl 'http://127.0.0.1:8080/flow?source=3&sink=42&cond=3>7=1&samples=5000&seed=9'
//	curl 'http://127.0.0.1:8080/metrics'
//
// Responses are deterministic in (model, query, options, seed): batching
// with co-arriving queries, the result cache, and other clients'
// cancellations never change an answer. SIGTERM/SIGINT drains in-flight
// batches before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"infoflow/internal/core"
	"infoflow/internal/serve"
	"infoflow/internal/twitter"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "flowserve: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flowserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	data := fs.String("data", "", "corpus JSON written by flowgen (required)")
	name := fs.String("name", "default", "model name served under ?model=")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	window := fs.Duration("window", 5*time.Millisecond, "batching window for coalescing concurrent queries")
	lanes := fs.Int("lanes", 512, "lane budget: distinct queries one batch may coalesce (rounded up to a multiple of 64, capped at 1024)")
	workers := fs.Int("workers", 2, "concurrent chain sweeps")
	queue := fs.Int("queue", 64, "flushed batches that may await a worker")
	cacheSize := fs.Int("cache", 1024, "result cache entries (negative disables)")
	samples := fs.Int("samples", 2000, "default MH output samples per query")
	maxSamples := fs.Int("max-samples", 50000, "upper bound for the ?samples= parameter")
	seed := fs.Uint64("seed", 1, "default chain seed")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline")
	censored := fs.Bool("censored", true, "use censored attributed training (recommended for chain-recovered evidence)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		fs.Usage()
		return fmt.Errorf("-data is required")
	}

	m, err := loadModel(*data, *censored, stdout)
	if err != nil {
		return err
	}
	srv, err := serve.NewServer(serve.Config{
		Models:         []serve.Model{{Name: *name, ICM: m}},
		Window:         *window,
		LaneBudget:     *lanes,
		Workers:        *workers,
		QueueCap:       *queue,
		CacheSize:      *cacheSize,
		DefaultSamples: *samples,
		MaxSamples:     *maxSamples,
		DefaultSeed:    *seed,
		DefaultTimeout: *timeout,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "flowserve: serving model %q (%d nodes, %d edges) on http://%s\n",
		*name, m.NumNodes(), m.NumEdges(), ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Fprintf(stdout, "flowserve: %v received, draining\n", s)
		// Finish every admitted batch first (new queries now get 503),
		// then let in-flight handlers write their responses out.
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		met := srv.Metrics()
		fmt.Fprintf(stdout,
			"flowserve: drained: %d flow + %d community requests, %d sweeps (occupancy %.1f), cache hit rate %.2f, %d timeouts\n",
			met.FlowRequests.Load(), met.CommunityRequests.Load(),
			met.Batches.Load(), met.Occupancy(), met.CacheHitRate(), met.Timeouts.Load())
		return nil
	}
}

// loadModel trains a betaICM on the corpus's recovered retweet chains
// (the flowquery pipeline) and returns its expected ICM.
func loadModel(path string, censored bool, stdout io.Writer) (*core.ICM, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := twitter.Read(f)
	if err != nil {
		return nil, err
	}
	real, _, _ := d.Flow.Subgraph(d.RealUsers())
	res := twitter.ExtractAttributed(real, d.Tweets)
	bm := core.NewBetaICM(real)
	train := bm.TrainAttributed
	if censored {
		train = bm.TrainAttributedCensored
	}
	if err := train(&res.Evidence); err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "flowserve: trained on %d objects (%d originals recovered, %d edges skipped)\n",
		res.Objects, res.RecoveredOriginals, res.SkippedEdges)
	return bm.ExpectedICM(), nil
}
