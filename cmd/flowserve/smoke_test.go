package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"infoflow/internal/rng"
	"infoflow/internal/twitter"
)

// tinyCorpus writes a small generated corpus to a temp file and returns
// its path.
func tinyCorpus(t *testing.T) string {
	t.Helper()
	cfg := twitter.DefaultConfig()
	cfg.NumUsers = 40
	cfg.NumTweets = 60
	cfg.NumHashtags = 5
	cfg.NumURLs = 5
	d, err := twitter.Generate(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := d.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// syncBuffer lets the test read server output while run() writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening|serving model .* on http://([0-9.:\[\]]+)`)

// TestSmokeServeBurstAndDrain is the end-to-end lifecycle check: start
// the server on an ephemeral port, serve a burst of concurrent queries,
// then SIGTERM and verify a clean drain with a summary line.
func TestSmokeServeBurstAndDrain(t *testing.T) {
	corpus := tinyCorpus(t)
	var stdout, stderr syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-data", corpus, "-addr", "127.0.0.1:0",
			"-samples", "50", "-window", "2ms", "-workers", "2",
		}, &stdout, &stderr)
	}()

	// Wait for the listening line and extract the address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; output:\n%s\n%s", stdout.String(), stderr.String())
		}
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil && m[1] != "" {
			base = "http://" + m[1]
		}
		select {
		case err := <-done:
			t.Fatalf("server exited early: %v\n%s", err, stderr.String())
		case <-time.After(5 * time.Millisecond):
		}
	}

	var health map[string]string
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	// Query burst: concurrent flow queries (varying seeds) plus a
	// community query, all of which must come back 200 with a parseable
	// probability.
	const burst = 24
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/flow?source=0&sink=1&seed=%d", base, i%4)
			resp, err := http.Get(url)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var body struct {
				Prob *float64 `json:"prob"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK || body.Prob == nil {
				errs[i] = fmt.Errorf("status %d, prob %v", resp.StatusCode, body.Prob)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("burst request %d: %v", i, err)
		}
	}
	resp, err = http.Get(base + "/community?source=0&top=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("community status %d", resp.StatusCode)
	}

	// SIGTERM → clean drain: run() must return nil and report a summary.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM\n%s", err, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("server did not drain within 20s; output:\n%s", stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "drained:") {
		t.Errorf("drain lines missing from output:\n%s", out)
	}
}

func TestSmokeMissingArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Fatal("missing -data accepted")
	}
	if err := run([]string{"-data", "nope.json"}, &stdout, &stderr); err == nil {
		t.Fatal("nonexistent corpus accepted")
	}
}
