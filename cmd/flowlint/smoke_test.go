package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"infoflow/internal/lint"
)

// writeModule lays a file map out as a module under a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const dirtyWorker = `package worker

import "sync"

type Store struct {
	mu   sync.Mutex
	vals map[string]int
}

func (s *Store) Lookup(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.vals[k]
	if !ok {
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}
`

const cleanWorker = `package worker

import "sync"

type Store struct {
	mu   sync.Mutex
	vals map[string]int
}

func (s *Store) Lookup(k string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vals[k]
	return v, ok
}
`

func dirtyModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"go.mod":           "module smokemod\n\ngo 1.22\n",
		"worker/worker.go": dirtyWorker,
	})
}

var findingLine = regexp.MustCompile(`^worker/worker\.go:11:2: \[locksafe\] .*not unlocked on the return path`)

// TestSmokeFinding drives run() end to end against a module with one
// locksafe defect: exit code 1, one conventionally formatted finding on
// stdout, a count on stderr.
func TestSmokeFinding(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dirtyModule(t), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 1 || !findingLine.MatchString(lines[0]) {
		t.Errorf("stdout = %q, want one line matching %v", stdout.String(), findingLine)
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Errorf("stderr = %q, want finding count", stderr.String())
	}
}

// TestSmokeClean verifies the zero-findings path: exit 0 and empty
// output.
func TestSmokeClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":           "module smokemod\n\ngo 1.22\n",
		"worker/worker.go": cleanWorker,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout = %q, want empty", stdout.String())
	}
}

// TestSmokeJSON checks the machine-readable mode: the finding array
// round-trips through encoding/json and carries the same positions as
// the text form.
func TestSmokeJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dirtyModule(t), "-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, &stderr)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, &stdout)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.File != "worker/worker.go" || d.Line != 11 || d.Col != 2 || d.Check != "locksafe" || d.Message == "" {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
	reencoded, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	var again []lint.Diagnostic
	if err := json.Unmarshal(reencoded, &again); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(diags, again) {
		t.Errorf("diagnostics do not round-trip: %v != %v", diags, again)
	}
}

// TestSmokeJSONClean verifies a clean -json run emits [] (not null).
func TestSmokeJSONClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":           "module smokemod\n\ngo 1.22\n",
		"worker/worker.go": cleanWorker,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, &stderr)
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("stdout = %q, want []", got)
	}
}

// TestSmokeList verifies -list names every registered check.
func TestSmokeList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for name := range lint.KnownChecks() {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing check %q:\n%s", name, &stdout)
		}
	}
}
