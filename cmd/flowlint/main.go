// Command flowlint runs the module's domain static analyzer (see
// internal/lint and DESIGN.md §8): it loads every package from source
// on the pure stdlib toolchain and enforces the repo's machine-checked
// invariants — determinism of the sampling core, zero-alloc hot paths,
// float comparison hygiene, codec error annotation, and panic-free
// library code.
//
//	go run ./cmd/flowlint ./...          # analyze the whole module
//	go run ./cmd/flowlint ./internal/mh  # one package directory
//	go run ./cmd/flowlint -json ./...    # findings as a JSON array
//	go run ./cmd/flowlint -list          # describe the checks
//
// Exit status is 0 when clean, 1 when findings were reported, 2 on
// usage or load errors. Findings are suppressible only with
// //flowlint:ignore <check> -- <reason> on the offending line.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"infoflow/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flowlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered checks and exit")
	moduleDir := fs.String("C", ".", "module root directory")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: flowlint [-C dir] [-json] [-list] [./... | dir ...]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Desc)
		}
		return 0
	}
	mod, err := lint.LoadModule(*moduleDir)
	if err != nil {
		fmt.Fprintf(stderr, "flowlint: %v\n", err)
		return 2
	}
	pkgs, err := selectPackages(mod, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "flowlint: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, lint.Checks())
	for i, d := range diags {
		diags[i] = relativize(mod.Dir, d)
	}
	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{} // a clean run is [], not null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "flowlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "flowlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectPackages filters the module's units by the command-line
// patterns: no patterns or "./..." selects everything, "./dir/..."
// selects a subtree, and a plain directory selects that package (plus
// its external test unit).
func selectPackages(mod *lint.Module, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return mod.Pkgs, nil
	}
	var out []*lint.Package
	seen := make(map[*lint.Package]bool)
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			return mod.Pkgs, nil
		}
		subtree := strings.HasSuffix(pat, "/...")
		pat = strings.TrimSuffix(pat, "/...")
		rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(pat, "./")))
		want := mod.Path
		if rel != "." {
			want = mod.Path + "/" + rel
		}
		matched := false
		for _, p := range mod.Pkgs {
			base := strings.TrimSuffix(p.Path, "_test")
			ok := base == want || (subtree && strings.HasPrefix(base, want+"/"))
			if ok && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
			matched = matched || ok
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

// relativize shortens an absolute finding path to a module-relative one.
func relativize(dir string, d lint.Diagnostic) lint.Diagnostic {
	if rel, err := filepath.Rel(dir, d.File); err == nil && !strings.HasPrefix(rel, "..") {
		d.File = filepath.ToSlash(rel)
	}
	return d
}
