package infoflow_test

import (
	"math"
	"testing"

	"infoflow"
)

// TestQuickstartFlow exercises the documented quick-start path.
func TestQuickstartFlow(t *testing.T) {
	r := infoflow.NewRNG(1)
	g := infoflow.NewGraph(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	m := infoflow.MustNewICM(g, []float64{0.8, 0.5})
	p, err := infoflow.FlowProb(m, 0, 2, nil, infoflow.DefaultMHOptions(m.NumEdges()), r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.4) > 0.03 {
		t.Fatalf("quickstart flow = %v, want ~0.4", p)
	}
}

// TestTrainAndQuery walks the full attributed pipeline through the
// facade: simulate, train, query point and nested estimates.
func TestTrainAndQuery(t *testing.T) {
	r := infoflow.NewRNG(2)
	g := infoflow.RandomGraph(r, 20, 60)
	p := make([]float64, 60)
	for i := range p {
		p[i] = r.Float64() * 0.5
	}
	truth := infoflow.MustNewICM(g, p)
	bm := infoflow.NewBetaICM(g)
	ev := &infoflow.AttributedEvidence{}
	for i := 0; i < 1500; i++ {
		c := truth.SampleCascade(r, []infoflow.NodeID{infoflow.NodeID(r.Intn(20))})
		ev.Add(infoflow.FromCascade(c))
	}
	if err := bm.TrainAttributed(ev); err != nil {
		t.Fatal(err)
	}
	opts := infoflow.MHOptions{BurnIn: 1000, Thin: 60, Samples: 3000}
	trained, err := infoflow.FlowProb(bm.ExpectedICM(), 0, 19, nil, opts, r)
	if err != nil {
		t.Fatal(err)
	}
	actual := infoflow.DirectFlowProb(truth, 0, 19, 30000, r)
	if math.Abs(trained-actual) > 0.1 {
		t.Fatalf("trained flow %v vs actual %v", trained, actual)
	}
	nested, err := infoflow.NestedFlowProb(bm, 0, 19, nil, 10,
		infoflow.MHOptions{BurnIn: 300, Thin: 30, Samples: 500}, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(nested) != 10 {
		t.Fatalf("nested samples = %d", len(nested))
	}
}

// TestConditionalAndJointQueries covers the query types RWR cannot
// answer.
func TestConditionalAndJointQueries(t *testing.T) {
	r := infoflow.NewRNG(3)
	g := infoflow.NewGraph(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	m := infoflow.MustNewICM(g, []float64{0.5, 0.5})
	opts := infoflow.MHOptions{BurnIn: 500, Thin: 10, Samples: 20000}
	cond, err := infoflow.FlowProb(m, 0, 2,
		[]infoflow.FlowCondition{{Source: 0, Sink: 1, Require: true}}, opts, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond-0.5) > 0.02 {
		t.Fatalf("conditional = %v, want 0.5", cond)
	}
	joint, err := infoflow.JointFlowProb(m,
		[]infoflow.FlowPair{{Source: 0, Sink: 1}, {Source: 0, Sink: 2}}, nil, opts, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(joint-0.25) > 0.02 {
		t.Fatalf("joint = %v, want 0.25", joint)
	}
}

// TestUnattributedFacade walks traces -> summaries -> all four learners.
func TestUnattributedFacade(t *testing.T) {
	r := infoflow.NewRNG(4)
	g := infoflow.NewGraph(3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	truth := []float64{0.7, 0.2}
	var traces []infoflow.Trace
	for o := 0; o < 3000; o++ {
		tr := infoflow.Trace{}
		leak := false
		for j := infoflow.NodeID(0); j < 2; j++ {
			if r.Bernoulli(0.6) {
				tr[j] = 0
				if r.Bernoulli(truth[j]) {
					leak = true
				}
			}
		}
		if leak {
			tr[2] = 1
		}
		if len(tr) > 0 {
			traces = append(traces, tr)
		}
	}
	sums, err := infoflow.BuildSummaries(g, traces)
	if err != nil {
		t.Fatal(err)
	}
	s := sums[2]
	post, err := infoflow.JointBayes(s, infoflow.DefaultBayesOptions(), r)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range truth {
		if math.Abs(post.Mean[j]-want) > 0.08 {
			t.Errorf("bayes[%d] = %v want %v", j, post.Mean[j], want)
		}
	}
	goyal := infoflow.Goyal(s)
	if len(goyal) != 2 {
		t.Fatal("goyal length")
	}
	em, _, err := infoflow.SaitoRelaxed(s, []float64{0.5, 0.5}, infoflow.SaitoOptions{MaxIter: 200, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range truth {
		if math.Abs(em[j]-want) > 0.1 {
			t.Errorf("saito[%d] = %v want %v", j, em[j], want)
		}
	}
	filt := infoflow.Filtered(s)
	if len(filt) != 2 {
		t.Fatal("filtered length")
	}
}

// TestTwitterFacade generates a small corpus and round-trips the
// preprocessing through the facade.
func TestTwitterFacade(t *testing.T) {
	r := infoflow.NewRNG(5)
	cfg := infoflow.DefaultTwitterConfig()
	cfg.NumUsers = 120
	cfg.NumTweets = 150
	cfg.NumHashtags = 10
	cfg.NumURLs = 10
	d, err := infoflow.GenerateTwitter(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	res := infoflow.ExtractAttributed(d.Flow, d.Tweets)
	if res.Objects == 0 {
		t.Fatal("no objects extracted")
	}
	if got := infoflow.ExtractURLTraces(d.Tweets); len(got) != 10 {
		t.Fatalf("url traces = %d", len(got))
	}
	if got := infoflow.ExtractHashtagTraces(d.Tweets); len(got) != 10 {
		t.Fatalf("hashtag traces = %d", len(got))
	}
}

// TestRWRFacade sanity-checks the baseline hook.
func TestRWRFacade(t *testing.T) {
	g := infoflow.NewGraph(2)
	g.MustAddEdge(0, 1)
	scores, err := infoflow.RWRScores(g, []float64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] <= scores[1] || scores[1] <= 0 {
		t.Fatalf("scores = %v", scores)
	}
}

// TestCalibrationFacade runs a tiny calibration analysis end-to-end.
func TestCalibrationFacade(t *testing.T) {
	r := infoflow.NewRNG(6)
	var exp infoflow.CalibrationExperiment
	for i := 0; i < 5000; i++ {
		p := r.Float64()
		exp.MustAdd(p, r.Bernoulli(p))
	}
	res, err := exp.Analyze(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 0.7 {
		t.Fatalf("coverage = %v", res.Coverage)
	}
	m, err := exp.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if m.Brier > 0.2 {
		t.Fatalf("brier = %v", m.Brier)
	}
}

// TestSizeDistributionFacade checks the analytic size law through the
// facade on a two-edge path: Pr[0 reached]=(1-p)(... ) enumerable by hand.
func TestSizeDistributionFacade(t *testing.T) {
	g := infoflow.NewGraph(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	m := infoflow.MustNewICM(g, []float64{0.5, 0.5})
	res, err := infoflow.SizeDistribution(m, []infoflow.NodeID{0}, infoflow.DefaultSizeDistOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("path graph should be exact, method %s", res.Method)
	}
	want := []float64{0.5, 0.25, 0.25}
	for k, p := range res.Dist {
		if diff := p - want[k]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("Dist[%d] = %v, want %v", k, p, want[k])
		}
	}
	if mean := res.Mean(); mean < 0.74 || mean > 0.76 {
		t.Fatalf("mean = %v, want 0.75", mean)
	}
}
