package infoflow

import (
	"infoflow/internal/core"
	"infoflow/internal/ctic"
	"infoflow/internal/delay"
	"infoflow/internal/dist"
	"infoflow/internal/graph"
	"infoflow/internal/influence"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
	"infoflow/internal/twitter"
)

// This file exposes the extensions beyond the paper's §II-V core: the
// §VI edge-latency model, MCMC convergence diagnostics, and the
// footnote-2 marginal-Bayes conditional estimator.

// Edge latency (§VI).
type (
	// DelayICM pairs an ICM with a delay distribution per edge; queries
	// return arrival-time distributions instead of bare flow booleans.
	DelayICM = delay.DelayICM
	// DelayDist is a non-negative delay distribution on one edge.
	DelayDist = delay.Dist
	// ConstantDelay, ExponentialDelay, GammaDelay and UniformDelay are
	// the provided delay families.
	ConstantDelay    = delay.Constant
	ExponentialDelay = delay.Exponential
	GammaDelay       = delay.Gamma
	UniformDelay     = delay.Uniform
	// ArrivalStats summarises arrival-time samples.
	ArrivalStats = delay.ArrivalStats
)

// NewDelayICM validates and wraps an ICM with per-edge delays.
func NewDelayICM(m *ICM, delays []DelayDist) (*DelayICM, error) {
	return delay.New(m, delays)
}

// WithConstantDelay wraps an ICM with the same constant delay on every
// edge.
func WithConstantDelay(m *ICM, d float64) *DelayICM {
	return delay.WithConstantDelay(m, d)
}

// ArrivalStatsOf summarises arrival samples.
func ArrivalStatsOf(samples []float64) ArrivalStats { return delay.Stats(samples) }

// MCMC diagnostics.
type (
	// FlowDiagnostics reports cross-chain convergence for a flow query.
	FlowDiagnostics = mh.FlowDiagnostics
)

// DiagnoseFlowProb runs several independent chains for the same query
// and reports R-hat, effective sample size, and acceptance rate
// alongside the pooled estimate.
func DiagnoseFlowProb(m *ICM, source, sink NodeID, conds []FlowCondition, opts MHOptions, numChains int, r *RNG) (*FlowDiagnostics, error) {
	return mh.DiagnoseFlowProb(m, source, sink, conds, opts, numChains, r)
}

// EffectiveSampleSize estimates how many independent samples an
// autocorrelated series is worth.
func EffectiveSampleSize(xs []float64) float64 { return mh.EffectiveSampleSize(xs) }

// GelmanRubin returns the potential scale reduction factor across
// chains.
func GelmanRubin(chains [][]float64) (float64, error) { return mh.GelmanRubin(chains) }

// MarginalConditionalFlowProb estimates a conditional flow probability
// from an unconstrained chain via Pr[flow|C] = Pr[flow,C]/Pr[C] — the
// paper's footnote-2 trade-off: cheaper samples, more of them needed for
// rare conditions.
func MarginalConditionalFlowProb(m *ICM, source, sink NodeID, conds []FlowCondition, opts MHOptions, r *RNG) (p float64, satisfied int, err error) {
	return mh.MarginalConditionalFlowProb(m, source, sink, conds, opts, r)
}

// Influence maximization.
type (
	// InfluenceOptions controls greedy seed selection.
	InfluenceOptions = influence.Options
	// InfluenceResult reports a greedy selection.
	InfluenceResult = influence.Result
)

// DefaultInfluenceOptions returns a reasonable simulation budget.
func DefaultInfluenceOptions() InfluenceOptions { return influence.DefaultOptions() }

// GreedySeeds selects k seed nodes maximising expected cascade spread by
// CELF lazy-greedy (a (1-1/e)-approximation by submodularity).
func GreedySeeds(m *ICM, k int, opts InfluenceOptions, r *RNG) (*InfluenceResult, error) {
	return influence.Greedy(m, k, opts, r)
}

// ExpectedSpread estimates the expected number of nodes a seed set
// activates.
func ExpectedSpread(m *ICM, seeds []NodeID, samples int, r *RNG) float64 {
	return influence.Spread(m, seeds, samples, r)
}

// ParallelFlowProbs answers many flow queries concurrently with
// deterministic per-query RNG streams.
func ParallelFlowProbs(m *ICM, queries []FlowPair, conds []FlowCondition, opts MHOptions, workers int, seed uint64) ([]float64, error) {
	return mh.ParallelFlowProbs(m, queries, conds, opts, workers, seed)
}

// ParallelCommunityFlows runs source-to-community queries for several
// sources concurrently.
func ParallelCommunityFlows(m *ICM, sources []NodeID, opts MHOptions, workers int, seed uint64) ([][]float64, error) {
	return mh.ParallelCommunityFlows(m, sources, opts, workers, seed)
}

// FlowProbBatch answers many flow queries from ONE shared chain: each
// thinned sample is interrogated by 64-lane bit-parallel reachability
// sweeps, so 64 pairs cost about one community sweep per sample. A
// single-pair batch is bit-identical to FlowProb on the same RNG; the
// estimates within a batch share samples and are therefore correlated.
// Contrast ParallelFlowProbs, which buys wall-clock with one
// independent chain (and burn-in) per query across goroutines.
func FlowProbBatch(m *ICM, pairs []FlowPair, conds []FlowCondition, opts MHOptions, r *RNG) ([]float64, error) {
	return mh.FlowProbBatch(m, pairs, conds, opts, r)
}

// CommunityFlowProbsBatch estimates every listed source's
// source-to-community flow probabilities from one shared chain, 64
// sources per lane sweep. A single-source batch is bit-identical to
// CommunityFlowProbs on the same RNG.
func CommunityFlowProbsBatch(m *ICM, sources []NodeID, conds []FlowCondition, opts MHOptions, r *RNG) ([][]float64, error) {
	return mh.CommunityFlowProbsBatch(m, sources, conds, opts, r)
}

// ErrInterrupted is the sentinel wrapped by estimator errors when a run
// is stopped early — by MHOptions.Interrupt returning true or by the
// context passed to Sampler.RunCtx being cancelled. The chain remains
// valid and resumable after an interrupted run.
var ErrInterrupted = mh.ErrInterrupted

// FlowProbBatchOn is FlowProbBatch on a caller-constructed Sampler,
// keeping the chain in hand for diagnostics (for example
// Sampler.PostBurnInAcceptanceRate) — the entry point the flowserve
// batching layer uses.
func FlowProbBatchOn(s *Sampler, pairs []FlowPair, opts MHOptions) ([]float64, error) {
	return mh.FlowProbBatchOn(s, pairs, opts)
}

// CommunityFlowProbsBatchOn is CommunityFlowProbsBatch on a
// caller-constructed Sampler; see FlowProbBatchOn.
func CommunityFlowProbsBatchOn(s *Sampler, sources []NodeID, opts MHOptions) ([][]float64, error) {
	return mh.CommunityFlowProbsBatchOn(s, sources, opts)
}

// assertAliases pins the facade types to their internal definitions at
// compile time (a change in either side fails the build here rather
// than at a user's call site).
var _ = func() bool {
	var _ *core.ICM = (*ICM)(nil)
	var _ graph.NodeID = NodeID(0)
	var _ *rng.RNG = (*RNG)(nil)
	return true
}()

// ECE returns the Expected Calibration Error of a calibration
// experiment over nBins equal-width bins.
func ECE(e *CalibrationExperiment, nBins int) (float64, error) { return e.ECE(nBins) }

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic
// between two sample sets — a scalar distance between sampled
// distributions (e.g. nested-MH flow samples vs an empirical reference).
func KSStatistic(xs, ys []float64) (float64, error) { return dist.KSStatistic(xs, ys) }

// InferTopology reconstructs a flow graph purely from retweet ancestry
// in message text, the way the paper infers its network from
// @-references. It returns the graph and the per-edge observation
// counts.
func InferTopology(tweets []Tweet, numUsers int) (*Graph, []int) {
	inf := twitter.InferGraph(tweets, numUsers)
	return inf.Flow, inf.EdgeObservations
}

// Continuous-time diffusion (the delay-aware model of Saito et al.'s
// follow-up work, reference [14] of the paper).
type (
	// CTICModel is an ICM whose edges carry a transmission probability
	// and an exponential delay rate.
	CTICModel = ctic.Model
	// CTICEpisode is one observed continuous-time diffusion with
	// right-censoring.
	CTICEpisode = ctic.Episode
	// CTICPosterior is the Bayesian learner's output.
	CTICPosterior = ctic.Posterior
	// CTICLearnOptions configures the learner.
	CTICLearnOptions = ctic.LearnOptions
)

// NewCTIC validates and wraps a continuous-time model.
func NewCTIC(g *Graph, k, rates []float64) (*CTICModel, error) { return ctic.New(g, k, rates) }

// LearnCTIC runs the continuous-time Bayesian learner for one sink.
func LearnCTIC(sink NodeID, parents []NodeID, eps []CTICEpisode, opts CTICLearnOptions, r *RNG) (*CTICPosterior, error) {
	return ctic.Learn(sink, parents, eps, opts, r)
}

// DefaultCTICLearnOptions returns settings that mix well on per-sink
// problems.
func DefaultCTICLearnOptions() CTICLearnOptions { return ctic.DefaultLearnOptions() }
