package infoflow_test

import (
	"math"
	"testing"

	"infoflow"
)

func TestDelayFacade(t *testing.T) {
	r := infoflow.NewRNG(10)
	g := infoflow.NewGraph(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	m := infoflow.MustNewICM(g, []float64{1, 1})
	dm, err := infoflow.NewDelayICM(m, []infoflow.DelayDist{
		infoflow.ConstantDelay(2), infoflow.ExponentialDelay{MeanDelay: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := infoflow.ArrivalStatsOf(dm.ArrivalSamples(r, 0, 2, 20000))
	if st.FlowProb != 1 {
		t.Fatalf("flow prob = %v", st.FlowProb)
	}
	if math.Abs(st.MeanGivenArrival-5) > 0.1 {
		t.Fatalf("mean arrival = %v want 5", st.MeanGivenArrival)
	}
	if c := infoflow.WithConstantDelay(m, 1); c == nil {
		t.Fatal("constant wrapper nil")
	}
}

func TestDiagnosticsFacade(t *testing.T) {
	r := infoflow.NewRNG(11)
	g := infoflow.NewGraph(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	m := infoflow.MustNewICM(g, []float64{0.5, 0.5})
	diag, err := infoflow.DiagnoseFlowProb(m, 0, 2, nil,
		infoflow.MHOptions{BurnIn: 500, Thin: 10, Samples: 5000}, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(diag.Estimate()-0.25) > 0.03 {
		t.Fatalf("estimate = %v", diag.Estimate())
	}
	if diag.RHat > 1.1 {
		t.Fatalf("rhat = %v", diag.RHat)
	}
	if ess := infoflow.EffectiveSampleSize([]float64{1, 2, 3, 4, 5, 6, 7, 8}); ess <= 0 {
		t.Fatalf("ess = %v", ess)
	}
	if _, err := infoflow.GelmanRubin([][]float64{{1, 2, 3}, {1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
}

func TestMarginalConditionalFacade(t *testing.T) {
	r := infoflow.NewRNG(12)
	g := infoflow.NewGraph(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	m := infoflow.MustNewICM(g, []float64{0.5, 0.5})
	p, satisfied, err := infoflow.MarginalConditionalFlowProb(m, 0, 2,
		[]infoflow.FlowCondition{{Source: 0, Sink: 1, Require: true}},
		infoflow.MHOptions{BurnIn: 500, Thin: 5, Samples: 40000}, r)
	if err != nil {
		t.Fatal(err)
	}
	if satisfied < 5000 {
		t.Fatalf("satisfied = %d", satisfied)
	}
	if math.Abs(p-0.5) > 0.03 {
		t.Fatalf("marginal conditional = %v", p)
	}
}

func TestInfluenceFacade(t *testing.T) {
	r := infoflow.NewRNG(13)
	g := infoflow.NewGraph(5)
	for v := 1; v < 5; v++ {
		g.MustAddEdge(0, infoflow.NodeID(v))
	}
	m := infoflow.MustNewICM(g, []float64{0.9, 0.9, 0.9, 0.9})
	res, err := infoflow.GreedySeeds(m, 1, infoflow.DefaultInfluenceOptions(), r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("seed = %v", res.Seeds)
	}
	if s := infoflow.ExpectedSpread(m, res.Seeds, 2000, r); math.Abs(s-4.6) > 0.2 {
		t.Fatalf("spread = %v want ~4.6", s)
	}
}

func TestParallelFacade(t *testing.T) {
	r := infoflow.NewRNG(14)
	g := infoflow.RandomGraph(r, 10, 30)
	p := make([]float64, 30)
	for i := range p {
		p[i] = 0.3
	}
	m := infoflow.MustNewICM(g, p)
	queries := []infoflow.FlowPair{{Source: 0, Sink: 1}, {Source: 0, Sink: 2}}
	got, err := infoflow.ParallelFlowProbs(m, queries, nil,
		infoflow.MHOptions{BurnIn: 100, Thin: 5, Samples: 500}, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("results = %v", got)
	}
	comm, err := infoflow.ParallelCommunityFlows(m, []infoflow.NodeID{0, 1},
		infoflow.MHOptions{BurnIn: 100, Thin: 5, Samples: 500}, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(comm) != 2 || len(comm[0]) != 10 {
		t.Fatal("community shape wrong")
	}
}

func TestBatchFacade(t *testing.T) {
	r := infoflow.NewRNG(15)
	g := infoflow.RandomGraph(r, 10, 30)
	p := make([]float64, 30)
	for i := range p {
		p[i] = 0.3
	}
	m := infoflow.MustNewICM(g, p)
	opts := infoflow.MHOptions{BurnIn: 100, Thin: 5, Samples: 400}
	// A single-pair batch is bit-identical to FlowProb on the same seed.
	pairs := []infoflow.FlowPair{{Source: 0, Sink: 1}}
	batch, err := infoflow.FlowProbBatch(m, pairs, nil, opts, infoflow.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	single, err := infoflow.FlowProb(m, 0, 1, nil, opts, infoflow.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	if batch[0] != single {
		t.Fatalf("single-pair batch %v != FlowProb %v", batch[0], single)
	}
	comm, err := infoflow.CommunityFlowProbsBatch(m, []infoflow.NodeID{0, 1}, nil, opts, infoflow.NewRNG(22))
	if err != nil {
		t.Fatal(err)
	}
	if len(comm) != 2 || len(comm[0]) != 10 {
		t.Fatal("batched community shape wrong")
	}
	if comm[0][0] != 1 || comm[1][1] != 1 {
		t.Fatalf("sources must trivially reach themselves: %v / %v", comm[0][0], comm[1][1])
	}
}

func TestScratchAndChainsFacade(t *testing.T) {
	r := infoflow.NewRNG(16)
	g := infoflow.RandomGraph(r, 12, 40)
	p := make([]float64, 40)
	for i := range p {
		p[i] = 0.4
	}
	m := infoflow.MustNewICM(g, p)

	// Allocation-free traversal engine through the facade.
	sc := infoflow.NewScratch(m.NumNodes())
	x := m.SamplePseudoState(r)
	active := m.ActiveNodesInto([]infoflow.NodeID{0}, x, sc, nil)
	want := m.ActiveNodes([]infoflow.NodeID{0}, x)
	for v := range want {
		if active[v] != want[v] {
			t.Fatalf("node %d: ActiveNodesInto %v vs ActiveNodes %v", v, active[v], want[v])
		}
	}
	if m.HasFlowScratch(0, 11, x, sc) != m.HasFlow(0, 11, x) {
		t.Fatal("HasFlowScratch disagrees with HasFlow")
	}

	// Multi-chain estimator: deterministic and in agreement with the
	// single-chain estimator at matched sample budgets.
	opts := infoflow.MHOptions{BurnIn: 200, Thin: 10, Samples: 2000}
	a, err := infoflow.FlowProbChains(m, 0, 11, nil, opts, 4, 33)
	if err != nil {
		t.Fatal(err)
	}
	b, err := infoflow.FlowProbChains(m, 0, 11, nil, opts, 4, 33)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("FlowProbChains not deterministic: %v vs %v", a, b)
	}
	single, err := infoflow.FlowProb(m, 0, 11, nil, opts, infoflow.NewRNG(34))
	if err != nil {
		t.Fatal(err)
	}
	if diff := a - single; diff > 0.05 || diff < -0.05 {
		t.Errorf("multi-chain %v vs single-chain %v estimates diverge", a, single)
	}

	// The sampler exposes its owned scratch for custom estimators.
	s, err := infoflow.NewSampler(m, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Scratch() == nil {
		t.Fatal("Sampler.Scratch returned nil")
	}
}

func TestMetricsAndInferenceFacade(t *testing.T) {
	r := infoflow.NewRNG(15)
	var e infoflow.CalibrationExperiment
	for i := 0; i < 5000; i++ {
		p := r.Float64()
		e.MustAdd(p, r.Bernoulli(p))
	}
	ece, err := infoflow.ECE(&e, 10)
	if err != nil || ece > 0.05 {
		t.Fatalf("ece = %v, %v", ece, err)
	}
	xs := []float64{1, 2, 3}
	ks, err := infoflow.KSStatistic(xs, xs)
	if err != nil || ks != 0 {
		t.Fatalf("ks = %v, %v", ks, err)
	}
	// Topology inference through the facade.
	cfg := infoflow.DefaultTwitterConfig()
	cfg.NumUsers = 100
	cfg.NumTweets = 200
	cfg.NumHashtags = 0
	cfg.NumURLs = 0
	d, err := infoflow.GenerateTwitter(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	g, obs, err2 := func() (*infoflow.Graph, []int, error) {
		g, obs := infoflow.InferTopology(d.Tweets, cfg.NumUsers)
		return g, obs, nil
	}()
	if err2 != nil {
		t.Fatal(err2)
	}
	if g.NumEdges() == 0 || len(obs) != g.NumEdges() {
		t.Fatalf("inferred %d edges, %d observations", g.NumEdges(), len(obs))
	}
	for _, e := range g.Edges() {
		if !d.Flow.HasEdge(e.From, e.To) {
			t.Fatalf("phantom inferred edge %v", e)
		}
	}
}

func TestSaitoOriginalFacade(t *testing.T) {
	g := infoflow.NewGraph(2)
	g.MustAddEdge(0, 1)
	traces := []infoflow.Trace{{0: 0, 1: 1}, {0: 0}}
	k, _, err := infoflow.SaitoOriginal(g, 1, []infoflow.NodeID{0}, traces,
		[]float64{0.5}, infoflow.SaitoOptions{MaxIter: 100, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k[0]-0.5) > 1e-9 {
		t.Fatalf("k = %v", k)
	}
}

func TestTrainAttributedFacadeSwitch(t *testing.T) {
	r := infoflow.NewRNG(16)
	g := infoflow.NewGraph(3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	truth := infoflow.MustNewICM(g, []float64{0.9, 0.9})
	ev := &infoflow.AttributedEvidence{}
	// Both sources active, only one edge attributed.
	c := truth.SampleCascade(r, []infoflow.NodeID{0, 1})
	obj := infoflow.FromCascade(c)
	if len(obj.ActiveEdges) > 1 {
		obj.ActiveEdges = obj.ActiveEdges[:1]
	}
	ev.Add(obj)
	plain := infoflow.NewBetaICM(g)
	if err := infoflow.TrainAttributed(plain, ev, false); err != nil {
		t.Fatal(err)
	}
	censored := infoflow.NewBetaICM(g)
	if err := infoflow.TrainAttributed(censored, ev, true); err != nil {
		t.Fatal(err)
	}
	// With censoring the unattributed edge must not gain a failure count.
	totalPlain := plain.B[0].Beta + plain.B[1].Beta
	totalCens := censored.B[0].Beta + censored.B[1].Beta
	if totalCens > totalPlain {
		t.Fatalf("censored beta %v > plain %v", totalCens, totalPlain)
	}
}
