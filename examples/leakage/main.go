// Leakage assessment: the paper's risk-management motivation (§I, §VI).
// A sensitive document lives with one employee; the model answers (a)
// how likely it is to reach an external contact, (b) how that risk
// changes once we OBSERVE partial flows (conditional queries), and (c)
// how confident the model is in its own risk number (nested sampling).
package main

import (
	"fmt"
	"log"

	"infoflow"
)

func main() {
	r := infoflow.NewRNG(99)

	// An organisation: two teams of 6 with dense internal sharing, a
	// couple of cross-team links, and one member with an outside contact.
	const (
		teamSize = 6
		external = 2 * teamSize // node 12: the outside world
		owner    = 0            // holds the sensitive document
		bridge   = teamSize     // first member of team B
		leaker   = 2*teamSize - 1
	)
	g := infoflow.NewGraph(2*teamSize + 1)
	dense := func(lo, hi int) {
		for u := lo; u < hi; u++ {
			for v := lo; v < hi; v++ {
				if u != v {
					g.MustAddEdge(infoflow.NodeID(u), infoflow.NodeID(v))
				}
			}
		}
	}
	dense(0, teamSize)
	dense(teamSize, 2*teamSize)
	g.MustAddEdge(1, infoflow.NodeID(bridge)) // cross-team links
	g.MustAddEdge(4, infoflow.NodeID(bridge+2))
	g.MustAddEdge(infoflow.NodeID(leaker), external)

	probs := make([]float64, g.NumEdges())
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(infoflow.EdgeID(id))
		switch {
		case e.To == external:
			probs[id] = 0.10 // the risky outside channel
		case (int(e.From) < teamSize) != (int(e.To) < teamSize):
			probs[id] = 0.05 // cross-team sharing is rare
		default:
			probs[id] = 0.25 // chatty within a team
		}
	}
	m := infoflow.MustNewICM(g, probs)
	opts := infoflow.MHOptions{BurnIn: 3000, Thin: 120, Samples: 4000}

	base, err := infoflow.FlowProb(m, owner, external, nil, opts, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline leak risk Pr[owner ~> outside] = %.4f\n", base)

	// Incident response: we learn the document reached the bridge user.
	seen := []infoflow.FlowCondition{{Source: owner, Sink: infoflow.NodeID(bridge), Require: true}}
	escalated, err := infoflow.FlowProb(m, owner, external, seen, opts, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after observing flow to the cross-team bridge: %.4f\n", escalated)

	// Mitigation check: we also verify the direct leaker does NOT have
	// it (an audit came back clean).
	audited := append(seen, infoflow.FlowCondition{Source: owner, Sink: leaker, Require: false})
	mitigated, err := infoflow.FlowProb(m, owner, external, audited, opts, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("...but the audited holder of the outside channel is clean: %.4f\n", mitigated)

	// Which users are most at risk right now? Source-to-community flow
	// under the observed conditions.
	community, err := infoflow.CommunityFlowProbs(m, owner, seen, opts, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-user exposure given the observed flow:")
	for v, p := range community {
		if infoflow.NodeID(v) == owner {
			continue
		}
		tag := ""
		if infoflow.NodeID(v) == external {
			tag = "  <- OUTSIDE"
		}
		fmt.Printf("  user %2d: %.4f%s\n", v, p, tag)
	}

	// How much should we trust these numbers if the model itself was
	// learned from limited evidence? Train a betaICM on simulated history
	// and report the posterior spread of the risk.
	bm := infoflow.NewBetaICM(g)
	ev := &infoflow.AttributedEvidence{}
	for i := 0; i < 300; i++ {
		ev.Add(infoflow.FromCascade(m.SampleCascade(r, []infoflow.NodeID{infoflow.NodeID(r.Intn(2 * teamSize))})))
	}
	if err := bm.TrainAttributed(ev); err != nil {
		log.Fatal(err)
	}
	risks, err := infoflow.NestedFlowProb(bm, owner, external, nil, 50,
		infoflow.MHOptions{BurnIn: 1000, Thin: 60, Samples: 1000}, r)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi, mean := spread(risks)
	fmt.Printf("\nrisk from a model learned on 300 observed cascades: mean %.4f, range [%.4f, %.4f]\n",
		mean, lo, hi)
}

func spread(xs []float64) (lo, hi, mean float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
		mean += x
	}
	return lo, hi, mean / float64(len(xs))
}
