// Latency: the paper's §VI extension made concrete. Marketing and
// incident-response questions are usually about TIME — "how long until
// this reaches the press?" — not just whether flow eventually happens.
// Attach a delay distribution to every edge and query arrival-time
// distributions by sampling delays and running shortest paths.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"infoflow"
)

func main() {
	r := infoflow.NewRNG(11)

	// A relay network: a fast, unreliable direct channel versus a slow,
	// reliable multi-hop route.
	g := infoflow.NewGraph(5)
	eDirect := g.MustAddEdge(0, 4)
	hops := []infoflow.EdgeID{
		g.MustAddEdge(0, 1), g.MustAddEdge(1, 2),
		g.MustAddEdge(2, 3), g.MustAddEdge(3, 4),
	}
	probs := make([]float64, g.NumEdges())
	delays := make([]infoflow.DelayDist, g.NumEdges())
	probs[eDirect] = 0.3
	delays[eDirect] = infoflow.ExponentialDelay{MeanDelay: 1}
	for _, e := range hops {
		probs[e] = 0.9
		delays[e] = infoflow.GammaDelay{Shape: 4, Scale: 1} // mean 4 per hop
	}
	m := infoflow.MustNewICM(g, probs)
	dm, err := infoflow.NewDelayICM(m, delays)
	if err != nil {
		log.Fatal(err)
	}

	samples := dm.ArrivalSamples(r, 0, 4, 50000)
	st := infoflow.ArrivalStatsOf(samples)
	fmt.Printf("information reaches the sink at all: %.3f\n", st.FlowProb)
	fmt.Printf("arrival time given arrival: mean %.2f, p10 %.2f, median %.2f, p90 %.2f\n",
		st.MeanGivenArrival, st.Q10, st.Median, st.Q90)

	fmt.Println("\nPr[arrived by t]:")
	for _, t := range []float64{1, 2, 4, 8, 16, 32} {
		p := dm.ProbArrivalWithin(r, 0, 4, t, 20000)
		fmt.Printf("  t=%5.1f  %.3f  %s\n", t, p, strings.Repeat("#", int(p*50)))
	}

	// The bimodality is visible in a histogram: early arrivals used the
	// direct channel, late ones the relay.
	fmt.Println("\narrival-time histogram (given arrival):")
	bins := make([]int, 12)
	finite := 0
	for _, t := range samples {
		if math.IsInf(t, 1) {
			continue
		}
		finite++
		b := int(t / 2)
		if b >= len(bins) {
			b = len(bins) - 1
		}
		bins[b]++
	}
	for b, c := range bins {
		fmt.Printf("  [%2d,%2d) %6d %s\n", b*2, b*2+2, c,
			strings.Repeat("#", c*120/finite))
	}
}
