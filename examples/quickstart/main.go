// Quickstart: build a small information-flow model by hand, query it
// exactly and by Metropolis-Hastings sampling, then learn it back from
// simulated attributed evidence.
package main

import (
	"fmt"
	"log"

	"infoflow"
)

func main() {
	r := infoflow.NewRNG(42)

	// The paper's worked example (§II): three nodes, three arcs.
	g := infoflow.NewGraph(3)
	g.MustAddEdge(0, 1) // v1 -> v2
	g.MustAddEdge(0, 2) // v1 -> v3
	g.MustAddEdge(1, 2) // v2 -> v3
	p12, p13, p23 := 0.6, 0.3, 0.7
	m := infoflow.MustNewICM(g, []float64{p12, p13, p23})

	// Equation (1): Pr[v1 ~> v3] = 1 - (1 - p12 p23)(1 - p13).
	closedForm := 1 - (1-p12*p23)*(1-p13)
	enumerated := m.EnumFlowProb([]infoflow.NodeID{0}, 2)
	opts := infoflow.DefaultMHOptions(m.NumEdges())
	sampled, err := infoflow.FlowProb(m, 0, 2, nil, opts, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr[v1 ~> v3]: closed form %.4f, enumeration %.4f, Metropolis-Hastings %.4f\n",
		closedForm, enumerated, sampled)

	// Conditional flow: knowing information reached v2 raises the odds
	// it reaches v3.
	cond, err := infoflow.FlowProb(m, 0, 2,
		[]infoflow.FlowCondition{{Source: 0, Sink: 1, Require: true}}, opts, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr[v1 ~> v3 | v1 ~> v2] = %.4f\n", cond)

	// Learn the model back from simulated attributed cascades.
	bm := infoflow.NewBetaICM(g)
	ev := &infoflow.AttributedEvidence{}
	for i := 0; i < 2000; i++ {
		ev.Add(infoflow.FromCascade(m.SampleCascade(r, []infoflow.NodeID{0})))
	}
	if err := bm.TrainAttributed(ev); err != nil {
		log.Fatal(err)
	}
	learned := bm.ExpectedICM()
	fmt.Println("learned activation probabilities (truth in parentheses):")
	for id, truth := range m.P {
		e := g.Edge(infoflow.EdgeID(id))
		fmt.Printf("  v%d -> v%d: %.3f (%.3f), %v\n",
			e.From+1, e.To+1, learned.P[id], truth, bm.B[id])
	}

	// The betaICM also knows how SURE it is: nested sampling yields a
	// distribution over the flow probability, not just a point.
	nested, err := infoflow.NestedFlowProb(bm, 0, 2, nil, 60, opts, r)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := quantiles(nested)
	fmt.Printf("Pr[v1 ~> v3] from the learned model: 95%% of mass in [%.3f, %.3f]\n", lo, hi)
}

func quantiles(xs []float64) (lo, hi float64) {
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/40], sorted[len(sorted)-1-len(sorted)/40]
}
