// Unattributed learning: we observe WHO had an information object and
// WHEN, but never which edge carried it (hashtags, URLs, leaked
// documents). This example generates a synthetic Twitter-like corpus,
// reduces it to activation traces, and compares the paper's joint-Bayes
// learner against Goyal's credit rule, Saito's EM and the filtered
// baseline on edges whose ground truth we secretly know.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"infoflow"
)

func main() {
	r := infoflow.NewRNG(2024)

	cfg := infoflow.DefaultTwitterConfig()
	cfg.NumUsers = 400
	cfg.NumTweets = 0
	cfg.NumHashtags = 0
	cfg.NumURLs = 800
	d, err := infoflow.GenerateTwitter(cfg, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(d.Stats())

	// All the pipeline sees: per-URL first-mention times.
	traces := infoflow.ExtractURLTraces(d.Tweets)
	fmt.Printf("extracted %d unattributed traces\n\n", len(traces))
	// Order the traces by URL: map iteration order is randomized, and
	// the observation order feeds the learners' accumulations.
	urls := make([]string, 0, len(traces))
	for u := range traces {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	traceList := make([]infoflow.Trace, 0, len(traces))
	for _, u := range urls {
		traceList = append(traceList, traces[u])
	}
	sums, err := infoflow.BuildSummaries(d.Flow, traceList)
	if err != nil {
		log.Fatal(err)
	}

	// Pick a busy sink (many observations) and learn its incident edges
	// with every method.
	var best *infoflow.Summary
	for _, s := range sums {
		if s.Sink == d.Omnipotent {
			continue
		}
		if best == nil || s.NumObservations() > best.NumObservations() {
			best = s
		}
	}
	if best == nil {
		log.Fatal("no summaries built")
	}
	fmt.Printf("sink user %d: %d incident edges, %d observations, %d distinct characteristics\n",
		best.Sink, len(best.Parents), best.NumObservations(), len(best.Rows))

	post, err := infoflow.JointBayes(best, infoflow.DefaultBayesOptions(), r)
	if err != nil {
		log.Fatal(err)
	}
	goyal := infoflow.Goyal(best)
	init := make([]float64, len(best.Parents))
	for i := range init {
		init[i] = 0.5
	}
	saito, iters, err := infoflow.SaitoRelaxed(best, init, infoflow.SaitoOptions{MaxIter: 500, Tol: 1e-10})
	if err != nil {
		log.Fatal(err)
	}
	filtered := infoflow.Filtered(best)

	fmt.Printf("\nlearned activation probabilities (EM converged in %d iterations):\n", iters)
	fmt.Printf("%8s %8s %12s %8s %8s %8s\n", "parent", "truth", "bayes(+/-sd)", "goyal", "saito", "filtered")
	var se [4]float64
	for j, parent := range best.Parents {
		truth := 0.0
		if id, ok := d.Flow.EdgeID(parent, best.Sink); ok {
			truth = d.TruthICM.P[id]
		}
		fmt.Printf("%8d %8.3f %6.3f+/-%.3f %8.3f %8.3f %8.3f\n",
			parent, truth, post.Mean[j], post.StdDev[j], goyal[j], saito[j], filtered[j].Mean())
		for k, est := range []float64{post.Mean[j], goyal[j], saito[j], filtered[j].Mean()} {
			se[k] += (est - truth) * (est - truth)
		}
	}
	n := float64(len(best.Parents))
	fmt.Printf("\nRMSE vs hidden ground truth: bayes %.4f, goyal %.4f, saito %.4f, filtered %.4f\n",
		math.Sqrt(se[0]/n), math.Sqrt(se[1]/n), math.Sqrt(se[2]/n), math.Sqrt(se[3]/n))

	// The posterior also exposes what a point estimate cannot: paired
	// uncertainty. Show the widest and narrowest posterior edges.
	wide, narrow := 0, 0
	for j := range best.Parents {
		if post.StdDev[j] > post.StdDev[wide] {
			wide = j
		}
		if post.StdDev[j] < post.StdDev[narrow] {
			narrow = j
		}
	}
	fmt.Printf("most certain edge: parent %d (sd %.3f); least certain: parent %d (sd %.3f)\n",
		best.Parents[narrow], post.StdDev[narrow], best.Parents[wide], post.StdDev[wide])
}
