// Viral marketing: given a learned information-flow model of a social
// network, compare candidate seed users by the distribution of their
// campaign's reach — not just its expectation, which is what a
// risk-aware marketer actually needs (§I, §IV-D of the paper).
package main

import (
	"fmt"
	"log"
	"sort"

	"infoflow"
)

func main() {
	r := infoflow.NewRNG(7)

	// A heavy-tailed "who influences whom" network: edges point from
	// influencer to influenced, as information flows.
	const users = 400
	follows := infoflow.PreferentialAttachment(r, users, 3, 0.25)
	g := infoflow.NewGraph(users)
	for _, e := range follows.Edges() {
		g.MustAddEdge(e.To, e.From)
	}
	probs := make([]float64, g.NumEdges())
	for i := range probs {
		probs[i] = 0.02 + 0.18*r.Float64()
	}
	m := infoflow.MustNewICM(g, probs)

	// Candidate seeds: the highest out-degree users plus a random one
	// for contrast.
	type candidate struct {
		user infoflow.NodeID
		deg  int
	}
	var cands []candidate
	for v := 0; v < users; v++ {
		cands = append(cands, candidate{infoflow.NodeID(v), g.OutDegree(infoflow.NodeID(v))})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].deg > cands[j].deg })
	shortlist := append(cands[:4], cands[200])

	opts := infoflow.MHOptions{BurnIn: 2000, Thin: 100, Samples: 2000}
	fmt.Println("campaign reach by seed user (non-seed users reached):")
	fmt.Printf("%8s %9s %8s %8s %8s %8s\n", "seed", "followers", "mean", "p10", "p90", "P(>=20)")
	for _, c := range shortlist {
		impacts, err := infoflow.ImpactDistribution(m, []infoflow.NodeID{c.user}, nil, opts, r)
		if err != nil {
			log.Fatal(err)
		}
		sort.Ints(impacts)
		n := len(impacts)
		mean := 0.0
		big := 0
		for _, k := range impacts {
			mean += float64(k)
			if k >= 20 {
				big++
			}
		}
		mean /= float64(n)
		fmt.Printf("%8d %9d %8.2f %8d %8d %8.3f\n",
			c.user, c.deg, mean, impacts[n/10], impacts[n*9/10], float64(big)/float64(n))
	}

	// Joint seeding: does adding a second seed help, or do their
	// audiences overlap? Compare the pair against the sum of parts.
	a, b := shortlist[0].user, shortlist[1].user
	pair, err := infoflow.ImpactDistribution(m, []infoflow.NodeID{a, b}, nil, opts, r)
	if err != nil {
		log.Fatal(err)
	}
	sumMean := 0.0
	for _, k := range pair {
		sumMean += float64(k)
	}
	fmt.Printf("\nseeding both %d and %d: mean reach %.2f\n", a, b, sumMean/float64(len(pair)))
}
