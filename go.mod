module infoflow

go 1.22
