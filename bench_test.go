package infoflow_test

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (each runs the corresponding experiment driver at its test
// scale; run `cmd/flowbench` without -small for publication scale), plus
// micro-benchmarks of the primitives whose costs the paper reports
// (§IV-C: per-chain-update and per-output-sample on a 6K-user/14K-edge
// graph — see also internal/mh's BenchmarkChainUpdate).

import (
	"testing"

	"infoflow"
	"infoflow/internal/experiments"
)

func benchExperiment(b *testing.B, name string) {
	runner, ok := experiments.Lookup(name)
	if !ok {
		b.Fatalf("unknown experiment %s", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01MHBucket(b *testing.B)          { benchExperiment(b, "fig1") }
func BenchmarkFig02TwitterAttributed(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig03Uncertainty(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig04Impact(b *testing.B)            { benchExperiment(b, "fig4") }
func BenchmarkFig05RWR(b *testing.B)               { benchExperiment(b, "fig5") }
func BenchmarkFig06Timing(b *testing.B)            { benchExperiment(b, "fig6") }
func BenchmarkFig07RMSE(b *testing.B)              { benchExperiment(b, "fig7") }
func BenchmarkFig08URLs(b *testing.B)              { benchExperiment(b, "fig8") }
func BenchmarkFig09Hashtags(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFig10EdgeUncertainty(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11Multimodal(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkTable3Accuracy(b *testing.B)         { benchExperiment(b, "table3") }

// paperScaleModel builds the §IV-C reference graph: ~6K users, 14K
// edges.
func paperScaleModel(b *testing.B) (*infoflow.ICM, *infoflow.RNG) {
	b.Helper()
	r := infoflow.NewRNG(1)
	g := infoflow.RandomGraph(r, 6000, 14000)
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = r.Float64() * 0.4
	}
	return infoflow.MustNewICM(g, p), r
}

// BenchmarkChainUpdate6K measures one Markov-chain update at the scale
// where the paper reports 0.13 ms per update.
func BenchmarkChainUpdate6K(b *testing.B) {
	m, r := paperScaleModel(b)
	s, err := infoflow.NewSampler(m, nil, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkOutputSample6K measures one thinned output sample (chain
// updates plus a flow test) at the scale where the paper reports 27 ms.
func BenchmarkOutputSample6K(b *testing.B) {
	m, r := paperScaleModel(b)
	s, err := infoflow.NewSampler(m, nil, r)
	if err != nil {
		b.Fatal(err)
	}
	const thin = 200 // the paper's 27ms / 0.13ms ratio
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < thin; k++ {
			s.Step()
		}
		_ = m.HasFlow(0, 5999, s.State())
	}
}

// BenchmarkFlowProbSteadyState6K is BenchmarkOutputSample6K on the
// allocation-free scratch path the estimators run internally: the flow
// test reuses the sampler's owned traversal scratch, so steady-state
// sampling reports 0 allocs/op.
func BenchmarkFlowProbSteadyState6K(b *testing.B) {
	m, r := paperScaleModel(b)
	s, err := infoflow.NewSampler(m, nil, r)
	if err != nil {
		b.Fatal(err)
	}
	const thin = 200
	for k := 0; k < thin; k++ { // warm the chain and scratch
		s.Step()
	}
	m.HasFlowScratch(0, 5999, s.State(), s.Scratch())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < thin; k++ {
			s.Step()
		}
		_ = m.HasFlowScratch(0, 5999, s.State(), s.Scratch())
	}
}

// BenchmarkFlowProbChains6K measures the multi-chain estimator end to
// end (4 chains, including per-chain construction and burn-in) against
// the same query shape as BenchmarkFlowProbEndToEnd.
func BenchmarkFlowProbChains6K(b *testing.B) {
	m, _ := paperScaleModel(b)
	opts := infoflow.MHOptions{BurnIn: 200, Thin: 50, Samples: 400}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infoflow.FlowProbChains(m, 0, 5999, nil, opts, 4, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectSample6K is the naive alternative the paper motivates
// against: one independent pseudo-state sample plus a flow test costs
// O(m) draws rather than O(thin log m) updates.
func BenchmarkDirectSample6K(b *testing.B) {
	m, r := paperScaleModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := m.SamplePseudoState(r)
		_ = m.HasFlow(0, 5999, x)
	}
}

// BenchmarkFlowProbEndToEnd measures a complete end-to-end flow query on
// a mid-sized trained model.
func BenchmarkFlowProbEndToEnd(b *testing.B) {
	r := infoflow.NewRNG(2)
	bm := infoflow.GenerateBetaICM(r, 50, 200, 1, 20, 1, 20)
	m := bm.ExpectedICM()
	opts := infoflow.MHOptions{BurnIn: 500, Thin: 50, Samples: 500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infoflow.FlowProb(m, 0, 49, nil, opts, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttributedTraining measures betaICM training throughput on
// simulated cascades.
func BenchmarkAttributedTraining(b *testing.B) {
	r := infoflow.NewRNG(3)
	g := infoflow.RandomGraph(r, 500, 2500)
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = r.Float64() * 0.3
	}
	truth := infoflow.MustNewICM(g, p)
	ev := &infoflow.AttributedEvidence{}
	for i := 0; i < 1000; i++ {
		ev.Add(infoflow.FromCascade(truth.SampleCascade(r, []infoflow.NodeID{infoflow.NodeID(r.Intn(500))})))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm := infoflow.NewBetaICM(g)
		if err := bm.TrainAttributed(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJointBayesPosterior measures the unattributed learner on a
// typical per-sink problem.
func BenchmarkJointBayesPosterior(b *testing.B) {
	r := infoflow.NewRNG(4)
	g := infoflow.NewGraph(9)
	truth := make([]float64, 8)
	for j := range truth {
		g.MustAddEdge(infoflow.NodeID(j), 8)
		truth[j] = r.Float64() * 0.5
	}
	var traces []infoflow.Trace
	for o := 0; o < 2000; o++ {
		tr := infoflow.Trace{}
		leak := false
		for j := range truth {
			if r.Bernoulli(0.5) {
				tr[infoflow.NodeID(j)] = 0
				if r.Bernoulli(truth[j]) {
					leak = true
				}
			}
		}
		if leak {
			tr[8] = 1
		}
		if len(tr) > 0 {
			traces = append(traces, tr)
		}
	}
	sums, err := infoflow.BuildSummaries(g, traces)
	if err != nil {
		b.Fatal(err)
	}
	s := sums[8]
	opts := infoflow.DefaultBayesOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infoflow.JointBayes(s, opts, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGoyalCredit measures the baseline learner on the same
// summary shape.
func BenchmarkGoyalCredit(b *testing.B) {
	r := infoflow.NewRNG(5)
	g := infoflow.NewGraph(9)
	for j := 0; j < 8; j++ {
		g.MustAddEdge(infoflow.NodeID(j), 8)
	}
	var traces []infoflow.Trace
	for o := 0; o < 2000; o++ {
		tr := infoflow.Trace{}
		for j := 0; j < 8; j++ {
			if r.Bernoulli(0.5) {
				tr[infoflow.NodeID(j)] = 0
			}
		}
		if r.Bernoulli(0.3) {
			tr[8] = 1
		}
		if len(tr) > 0 {
			traces = append(traces, tr)
		}
	}
	sums, err := infoflow.BuildSummaries(g, traces)
	if err != nil {
		b.Fatal(err)
	}
	s := sums[8]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = infoflow.Goyal(s)
	}
}

// BenchmarkTwitterGeneration measures corpus generation plus the full
// attributed preprocessing pipeline.
func BenchmarkTwitterGeneration(b *testing.B) {
	cfg := infoflow.DefaultTwitterConfig()
	cfg.NumUsers = 500
	cfg.NumTweets = 1000
	cfg.NumHashtags = 50
	cfg.NumURLs = 50
	for i := 0; i < b.N; i++ {
		r := infoflow.NewRNG(uint64(i))
		d, err := infoflow.GenerateTwitter(cfg, r)
		if err != nil {
			b.Fatal(err)
		}
		_ = infoflow.ExtractAttributed(d.Flow, d.Tweets)
	}
}
