package infoflow_test

import (
	"fmt"

	"infoflow"
)

// The worked example of the paper's §II: three nodes, three arcs, and
// the closed-form flow probability of Equation (1).
func ExampleFlowProb() {
	r := infoflow.NewRNG(1)
	g := infoflow.NewGraph(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	m := infoflow.MustNewICM(g, []float64{0.6, 0.3, 0.7})

	exact := m.EnumFlowProb([]infoflow.NodeID{0}, 2)
	sampled, err := infoflow.FlowProb(m, 0, 2, nil,
		infoflow.MHOptions{BurnIn: 2000, Thin: 20, Samples: 100000}, r)
	if err != nil {
		panic(err)
	}
	fmt.Printf("exact %.3f, sampled %.2f\n", exact, sampled)
	// Output: exact 0.594, sampled 0.60
}

// Conditioning on observed flows changes the answer — the query class
// similarity measures like RWR cannot express.
func ExampleFlowProb_conditional() {
	r := infoflow.NewRNG(2)
	g := infoflow.NewGraph(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	m := infoflow.MustNewICM(g, []float64{0.5, 0.5})
	opts := infoflow.MHOptions{BurnIn: 2000, Thin: 10, Samples: 200000}
	conditioned, err := infoflow.FlowProb(m, 0, 2,
		[]infoflow.FlowCondition{{Source: 0, Sink: 1, Require: true}}, opts, r)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Pr[0~>2] = 0.25, but given 0~>1 it is %.2f\n", conditioned)
	// Output: Pr[0~>2] = 0.25, but given 0~>1 it is 0.50
}

// Training a betaICM from attributed evidence recovers activation
// probabilities with quantified uncertainty.
func ExampleBetaICM_TrainAttributed() {
	r := infoflow.NewRNG(3)
	g := infoflow.NewGraph(2)
	g.MustAddEdge(0, 1)
	truth := infoflow.MustNewICM(g, []float64{0.3})
	bm := infoflow.NewBetaICM(g)
	ev := &infoflow.AttributedEvidence{}
	for i := 0; i < 1000; i++ {
		ev.Add(infoflow.FromCascade(truth.SampleCascade(r, []infoflow.NodeID{0})))
	}
	if err := bm.TrainAttributed(ev); err != nil {
		panic(err)
	}
	fmt.Printf("learned mean %.2f (truth 0.30), sd %.3f\n",
		bm.B[0].Mean(), bm.B[0].StdDev())
	// Output: learned mean 0.31 (truth 0.30), sd 0.015
}

// Learning from unattributed evidence: only who held the object and
// when, never which edge carried it.
func ExampleJointBayes() {
	r := infoflow.NewRNG(4)
	g := infoflow.NewGraph(3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	truth := []float64{0.7, 0.2}
	var traces []infoflow.Trace
	for o := 0; o < 5000; o++ {
		tr := infoflow.Trace{}
		leak := false
		for j := infoflow.NodeID(0); j < 2; j++ {
			if r.Bernoulli(0.6) {
				tr[j] = 0
				if r.Bernoulli(truth[j]) {
					leak = true
				}
			}
		}
		if leak {
			tr[2] = 1
		}
		if len(tr) > 0 {
			traces = append(traces, tr)
		}
	}
	sums, err := infoflow.BuildSummaries(g, traces)
	if err != nil {
		panic(err)
	}
	post, err := infoflow.JointBayes(sums[2], infoflow.DefaultBayesOptions(), r)
	if err != nil {
		panic(err)
	}
	fmt.Printf("posterior means %.1f and %.1f (truth 0.7 and 0.2)\n",
		post.Mean[0], post.Mean[1])
	// Output: posterior means 0.7 and 0.2 (truth 0.7 and 0.2)
}
