package twitter

import (
	"testing"

	"infoflow/internal/core"
	"infoflow/internal/rng"
)

func TestInferGraphSimple(t *testing.T) {
	tweets := []Tweet{
		{Author: 0, Text: "hi"},
		{Author: 1, Text: FormatRetweet(0, "hi")},
		{Author: 2, Text: FormatRetweet(1, FormatRetweet(0, "hi"))},
		{Author: 1, Text: FormatRetweet(0, "hi again")},
		{Author: 3, Text: FormatRetweet(99, "ghost")}, // out of range: ignored
	}
	inf := InferGraph(tweets, 4)
	if inf.Flow.NumNodes() != 4 {
		t.Fatalf("nodes = %d", inf.Flow.NumNodes())
	}
	if !inf.Flow.HasEdge(0, 1) || !inf.Flow.HasEdge(1, 2) {
		t.Fatalf("missing chain edges")
	}
	if inf.Flow.NumEdges() != 2 {
		t.Fatalf("edges = %d", inf.Flow.NumEdges())
	}
	// Edge 0->1 witnessed three times: twice directly, once inside the
	// nested chain.
	id, _ := inf.Flow.EdgeID(0, 1)
	if inf.EdgeObservations[id] != 3 {
		t.Fatalf("observations(0->1) = %d", inf.EdgeObservations[id])
	}
}

// TestInferredEdgesAreTrueEdges: on a generated corpus, every inferred
// edge must exist in the hidden flow graph (retweets only happen along
// real follow relationships), and well-exercised true edges should be
// recovered.
func TestInferredEdgesAreTrueEdges(t *testing.T) {
	r := rng.New(200)
	cfg := smallConfig()
	cfg.NumHashtags = 0
	cfg.NumURLs = 0
	d, err := Generate(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	inf := InferGraph(d.Tweets, cfg.NumUsers)
	if inf.Flow.NumEdges() == 0 {
		t.Fatal("nothing inferred")
	}
	for _, e := range inf.Flow.Edges() {
		if !d.Flow.HasEdge(e.From, e.To) {
			t.Fatalf("inferred edge %v not in true graph", e)
		}
	}
	// Coverage: inferred edges should be a substantial share of the
	// edges that actually carried at least one retweet.
	carried := map[[2]UserID]bool{}
	for _, obj := range d.Retweets {
		c := obj.Cascade
		for v, parent := range c.Parent {
			if parent >= 0 {
				carried[[2]UserID{parent, UserID(v)}] = true
			}
		}
	}
	if len(carried) == 0 {
		t.Fatal("no cascades carried edges")
	}
	if inf.Flow.NumEdges() < len(carried)*9/10 {
		t.Errorf("inferred %d of %d carrying edges", inf.Flow.NumEdges(), len(carried))
	}
}

// TestTrainOnInferredTopology: the full paper-faithful pipeline — infer
// the graph from the data, extract attributed evidence against it, and
// train — must produce usable estimates on well-observed edges.
func TestTrainOnInferredTopology(t *testing.T) {
	r := rng.New(201)
	cfg := smallConfig()
	cfg.NumUsers = 300
	cfg.NumTweets = 2500
	cfg.NumHashtags = 0
	cfg.NumURLs = 0
	d, err := Generate(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	inf := InferGraph(d.Tweets, cfg.NumUsers)
	res := ExtractAttributed(inf.Flow, d.Tweets)
	if res.Objects == 0 {
		t.Fatal("no evidence on inferred graph")
	}
	bm := core.NewBetaICM(inf.Flow)
	if err := bm.TrainAttributedCensored(&res.Evidence); err != nil {
		t.Fatal(err)
	}
	// Compare trained means to ground truth on heavily observed edges.
	checked := 0
	for id := 0; id < inf.Flow.NumEdges(); id++ {
		if inf.EdgeObservations[id] < 20 {
			continue
		}
		e := inf.Flow.Edge(int32(id))
		trueID, ok := d.Flow.EdgeID(e.From, e.To)
		if !ok {
			t.Fatalf("edge %v missing from truth", e)
		}
		got := bm.B[id].Mean()
		want := d.TruthICM.P[trueID]
		if got < want/4 || got > 4*want+0.2 {
			t.Errorf("edge %v: trained %v truth %v", e, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no heavily observed edges at this scale")
	}
}
