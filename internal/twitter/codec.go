package twitter

import (
	"encoding/json"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/jsonx"
)

// decodeGraph and newICM isolate the deserialisation glue so dataset.go
// reads linearly.
func decodeGraph(raw json.RawMessage) (*graph.DiGraph, error) {
	g := graph.New(0)
	if err := json.Unmarshal(raw, g); err != nil {
		return nil, jsonx.Wrap("twitter: decode flow graph", err)
	}
	return g, nil
}

func newICM(g *graph.DiGraph, probs []float64) (*core.ICM, error) {
	return core.NewICM(g, probs)
}
