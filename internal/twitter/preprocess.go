package twitter

import (
	"sort"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/unattrib"
)

// AttributedResult is the output of retweet-chain extraction: attributed
// evidence over a flow graph, plus bookkeeping mirroring the paper's
// report that preprocessing *grew* the dataset by recovering originals
// (10M -> 10.8M tweets).
type AttributedResult struct {
	Evidence core.AttributedEvidence
	// RecoveredOriginals counts cascades whose original tweet was absent
	// from the corpus and was reconstructed from retweet ancestry.
	RecoveredOriginals int
	// SkippedEdges counts parent->child attributions with no edge in the
	// flow graph (noise, or an incomplete graph), which are dropped.
	SkippedEdges int
	// Objects is the number of distinct cascades found.
	Objects int
}

// cascadeKey identifies one content cascade: its original author and the
// innermost message body.
type cascadeKey struct {
	origin UserID
	body   string
}

// ExtractAttributed rebuilds attributed evidence from raw tweets by
// message syntax, per §IV-B: retweets are identified by their "RT @user:"
// prefixes; searching the ancestry chains links earlier (re)tweets to
// later ones and recovers missing originals. An object's active nodes are
// its original author plus everyone on any recovered chain; its active
// edges are the adjacent chain links that exist in the flow graph.
func ExtractAttributed(g *graph.DiGraph, tweets []Tweet) *AttributedResult {
	res := &AttributedResult{}
	type objectAcc struct {
		origin      UserID
		seenOrig    bool
		activeNodes map[UserID]bool
		activeEdges map[graph.EdgeID]bool
	}
	objects := make(map[cascadeKey]*objectAcc)
	inRange := func(u UserID) bool { return u >= 0 && int(u) < g.NumNodes() }
	get := func(key cascadeKey) *objectAcc {
		acc, ok := objects[key]
		if !ok {
			acc = &objectAcc{
				origin:      key.origin,
				activeNodes: map[UserID]bool{key.origin: true},
				activeEdges: map[graph.EdgeID]bool{},
			}
			objects[key] = acc
		}
		return acc
	}
	var keys []cascadeKey // insertion order for determinism
	for _, t := range tweets {
		p := ParseTweet(t.Text)
		origin := p.Origin(t.Author)
		if !inRange(origin) || !inRange(t.Author) {
			continue
		}
		key := cascadeKey{origin, p.Body}
		if _, ok := objects[key]; !ok {
			keys = append(keys, key)
		}
		acc := get(key)
		if !p.IsRetweet() {
			acc.seenOrig = true
			continue
		}
		// Chain, origin-first: origin = ancestors[last] ... ancestors[0]
		// -> author.
		chain := make([]UserID, 0, len(p.Ancestors)+1)
		for i := len(p.Ancestors) - 1; i >= 0; i-- {
			chain = append(chain, p.Ancestors[i])
		}
		chain = append(chain, t.Author)
		valid := true
		for _, u := range chain {
			if !inRange(u) {
				valid = false
				break
			}
		}
		if !valid {
			continue
		}
		for i := 0; i+1 < len(chain); i++ {
			from, to := chain[i], chain[i+1]
			if from == to {
				continue
			}
			acc.activeNodes[from] = true
			acc.activeNodes[to] = true
			if id, ok := g.EdgeID(from, to); ok {
				acc.activeEdges[id] = true
			} else {
				res.SkippedEdges++
			}
		}
	}
	for _, key := range keys {
		acc := objects[key]
		if !acc.seenOrig {
			if len(acc.activeNodes) <= 1 {
				continue // a dangling original-less object with no chain
			}
			res.RecoveredOriginals++
		}
		obj := core.AttributedObject{Sources: []UserID{acc.origin}}
		for u := range acc.activeNodes {
			obj.ActiveNodes = append(obj.ActiveNodes, u)
		}
		sort.Slice(obj.ActiveNodes, func(i, j int) bool { return obj.ActiveNodes[i] < obj.ActiveNodes[j] })
		for e := range acc.activeEdges {
			obj.ActiveEdges = append(obj.ActiveEdges, e)
		}
		sort.Slice(obj.ActiveEdges, func(i, j int) bool { return obj.ActiveEdges[i] < obj.ActiveEdges[j] })
		res.Evidence.Add(obj)
		res.Objects++
	}
	return res
}

// MentionKind selects which in-text objects ExtractTraces collects.
type MentionKind int

// The mention kinds.
const (
	MentionHashtags MentionKind = iota
	MentionURLs
)

// ExtractTraces reduces the corpus to unattributed activation traces:
// for each distinct hashtag (or URL), the first time each user mentioned
// it. This is exactly the evidence shape of §V — endpoints and times, no
// paths. The map key is the hashtag text or URL.
func ExtractTraces(tweets []Tweet, kind MentionKind) map[string]unattrib.Trace {
	out := make(map[string]unattrib.Trace)
	for _, t := range tweets {
		p := ParseTweet(t.Text)
		var labels []string
		if kind == MentionHashtags {
			labels = p.Hashtags
		} else {
			labels = p.URLs
		}
		for _, label := range labels {
			tr, ok := out[label]
			if !ok {
				tr = unattrib.Trace{}
				out[label] = tr
			}
			if prev, ok := tr[t.Author]; !ok || t.Time < prev {
				tr[t.Author] = t.Time
			}
		}
	}
	return out
}

// WithOmnipotent returns a copy of the trace with the omnipotent user
// active before everything else (time one less than the trace minimum),
// realising the paper's "omnipotent user [that] all users follow [and
// that] is the true originator of all tweets".
func WithOmnipotent(tr unattrib.Trace, omnipotent UserID) unattrib.Trace {
	minT := 0
	first := true
	for _, t := range tr {
		if first || t < minT {
			minT = t
			first = false
		}
	}
	out := unattrib.Trace{omnipotent: minT - 1}
	for u, t := range tr {
		out[u] = t
	}
	return out
}
