package twitter

import (
	"testing"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
	"infoflow/internal/unattrib"
)

func TestExtractAttributedSimpleChain(t *testing.T) {
	// Flow graph: 1 -> 2 -> 3.
	g := graph.New(4)
	e12 := g.MustAddEdge(1, 2)
	e23 := g.MustAddEdge(2, 3)
	tweets := []Tweet{
		{ID: 0, Author: 1, Time: 0, Text: "hello"},
		{ID: 1, Author: 2, Time: 1, Text: FormatRetweet(1, "hello")},
		{ID: 2, Author: 3, Time: 2, Text: FormatRetweet(2, FormatRetweet(1, "hello"))},
	}
	res := ExtractAttributed(g, tweets)
	if res.Objects != 1 {
		t.Fatalf("objects = %d", res.Objects)
	}
	if res.RecoveredOriginals != 0 || res.SkippedEdges != 0 {
		t.Fatalf("recovered=%d skipped=%d", res.RecoveredOriginals, res.SkippedEdges)
	}
	obj := res.Evidence.Objects[0]
	if len(obj.Sources) != 1 || obj.Sources[0] != 1 {
		t.Fatalf("sources = %v", obj.Sources)
	}
	if len(obj.ActiveNodes) != 3 {
		t.Fatalf("active nodes = %v", obj.ActiveNodes)
	}
	wantEdges := map[graph.EdgeID]bool{e12: true, e23: true}
	if len(obj.ActiveEdges) != 2 {
		t.Fatalf("active edges = %v", obj.ActiveEdges)
	}
	for _, e := range obj.ActiveEdges {
		if !wantEdges[e] {
			t.Fatalf("unexpected edge %d", e)
		}
	}
	if err := obj.Validate(g); err != nil {
		t.Fatalf("evidence invalid: %v", err)
	}
}

func TestExtractAttributedRecoversMissingOriginal(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	// Only the retweet survives; the original by 0 is absent.
	tweets := []Tweet{
		{ID: 0, Author: 1, Time: 5, Text: FormatRetweet(0, "lost msg")},
	}
	res := ExtractAttributed(g, tweets)
	if res.Objects != 1 || res.RecoveredOriginals != 1 {
		t.Fatalf("objects=%d recovered=%d", res.Objects, res.RecoveredOriginals)
	}
	obj := res.Evidence.Objects[0]
	if obj.Sources[0] != 0 {
		t.Fatalf("recovered origin = %v", obj.Sources)
	}
}

func TestExtractAttributedSkipsMissingEdges(t *testing.T) {
	g := graph.New(3) // no edges at all
	tweets := []Tweet{
		{ID: 0, Author: 0, Time: 0, Text: "m"},
		{ID: 1, Author: 1, Time: 1, Text: FormatRetweet(0, "m")},
	}
	res := ExtractAttributed(g, tweets)
	if res.SkippedEdges != 1 {
		t.Fatalf("skipped = %d", res.SkippedEdges)
	}
	obj := res.Evidence.Objects[0]
	if len(obj.ActiveEdges) != 0 {
		t.Fatalf("edges = %v", obj.ActiveEdges)
	}
	// Nodes are still marked active (the content did reach them).
	if len(obj.ActiveNodes) != 2 {
		t.Fatalf("nodes = %v", obj.ActiveNodes)
	}
}

func TestExtractAttributedIgnoresOutOfRangeUsers(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	tweets := []Tweet{
		{ID: 0, Author: 1, Time: 0, Text: FormatRetweet(77, "ghost")}, // origin 77 outside graph
	}
	res := ExtractAttributed(g, tweets)
	if res.Objects != 0 {
		t.Fatalf("objects = %d", res.Objects)
	}
}

// TestExtractAttributedEndToEnd: evidence recovered from a generated
// corpus must reconstruct the generator's cascades (modulo dropped
// originals, which are recovered).
func TestExtractAttributedEndToEnd(t *testing.T) {
	r := rng.New(10)
	cfg := smallConfig()
	d, err := Generate(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	res := ExtractAttributed(d.Flow, d.Tweets)
	if res.Objects < cfg.NumTweets {
		t.Fatalf("objects = %d, want >= %d (tag/url tweets add singleton objects)", res.Objects, cfg.NumTweets)
	}
	if d.DroppedOriginals > 0 && res.RecoveredOriginals == 0 {
		t.Fatal("dropped originals never recovered")
	}
	// Index evidence by source+size and compare against ground truth for
	// multi-node cascades: every ground-truth active edge set must be
	// reproduced exactly for non-dropped chains.
	validated := 0
	for _, obj := range res.Evidence.Objects {
		if err := obj.Validate(d.Flow); err != nil {
			t.Fatalf("invalid evidence: %v", err)
		}
		if len(obj.ActiveEdges) > 0 {
			validated++
		}
	}
	if validated == 0 {
		t.Fatal("no multi-node cascades recovered")
	}
	// Training on the recovered evidence must approximate the ground
	// truth on well-tried edges (full pipeline sanity).
	bm := core.NewBetaICM(d.Flow)
	if err := bm.TrainAttributed(&res.Evidence); err != nil {
		t.Fatal(err)
	}
}

func TestExtractTraces(t *testing.T) {
	tweets := []Tweet{
		{ID: 0, Author: 1, Time: 3, Text: "x #foo"},
		{ID: 1, Author: 2, Time: 5, Text: "y #foo http://a.b/c"},
		{ID: 2, Author: 1, Time: 9, Text: "z #foo"}, // later mention ignored
		{ID: 3, Author: 3, Time: 1, Text: "w #bar"},
	}
	tags := ExtractTraces(tweets, MentionHashtags)
	if len(tags) != 2 {
		t.Fatalf("tags = %v", tags)
	}
	foo := tags["foo"]
	if foo[1] != 3 || foo[2] != 5 {
		t.Fatalf("foo trace = %v", foo)
	}
	if len(foo) != 2 {
		t.Fatalf("foo trace size = %d", len(foo))
	}
	urls := ExtractTraces(tweets, MentionURLs)
	if len(urls) != 1 || urls["http://a.b/c"][2] != 5 {
		t.Fatalf("urls = %v", urls)
	}
}

func TestExtractTracesMatchGroundTruth(t *testing.T) {
	r := rng.New(11)
	d, err := Generate(smallConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	traces := ExtractTraces(d.Tweets, MentionURLs)
	if len(traces) != len(d.URLs) {
		t.Fatalf("url traces = %d, want %d", len(traces), len(d.URLs))
	}
	for _, truth := range d.URLs {
		tr, ok := traces[truth.Label]
		if !ok {
			t.Fatalf("missing trace for %s", truth.Label)
		}
		if len(tr) != len(truth.ActiveTime) {
			t.Fatalf("trace size %d vs truth %d", len(tr), len(truth.ActiveTime))
		}
		// Activation order must match round order.
		for u, round := range truth.ActiveTime {
			for v, round2 := range truth.ActiveTime {
				if round < round2 && tr[u] >= tr[v] {
					t.Fatalf("trace order violates rounds: %d@%d vs %d@%d", u, tr[u], v, tr[v])
				}
			}
		}
	}
}

func TestWithOmnipotent(t *testing.T) {
	tr := unattrib.Trace{3: 5, 4: 2}
	got := WithOmnipotent(tr, 0)
	if got[0] != 1 {
		t.Fatalf("omnipotent time = %d", got[0])
	}
	if got[3] != 5 || got[4] != 2 || len(got) != 3 {
		t.Fatalf("trace = %v", got)
	}
	// Empty trace.
	got = WithOmnipotent(unattrib.Trace{}, 0)
	if got[0] != -1 || len(got) != 1 {
		t.Fatalf("empty-trace result = %v", got)
	}
}
