package twitter

import (
	"testing"
	"testing/quick"

	"infoflow/internal/rng"
)

func TestUserNameRoundTrip(t *testing.T) {
	err := quick.Check(func(n uint16) bool {
		u := UserID(n)
		got, err := ParseUser(FormatUser(u))
		return err == nil && got == u
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseUserErrors(t *testing.T) {
	for _, bad := range []string{"", "bob", "userX", "user-3", "user"} {
		if _, err := ParseUser(bad); err == nil {
			t.Errorf("parsed %q", bad)
		}
	}
}

func TestParseOriginalTweet(t *testing.T) {
	p := ParseTweet("hello world #go #icde http://sho.rt/abc123")
	if p.IsRetweet() {
		t.Fatal("original classified as retweet")
	}
	if len(p.Hashtags) != 2 || p.Hashtags[0] != "go" || p.Hashtags[1] != "icde" {
		t.Fatalf("hashtags = %v", p.Hashtags)
	}
	if len(p.URLs) != 1 || p.URLs[0] != "http://sho.rt/abc123" {
		t.Fatalf("urls = %v", p.URLs)
	}
	if p.Origin(42) != 42 {
		t.Fatalf("origin = %v", p.Origin(42))
	}
}

func TestParseRetweetChain(t *testing.T) {
	text := FormatRetweet(7, FormatRetweet(3, "base text #x"))
	p := ParseTweet(text)
	if !p.IsRetweet() {
		t.Fatal("retweet not detected")
	}
	if len(p.Ancestors) != 2 || p.Ancestors[0] != 7 || p.Ancestors[1] != 3 {
		t.Fatalf("ancestors = %v", p.Ancestors)
	}
	if p.Body != "base text #x" {
		t.Fatalf("body = %q", p.Body)
	}
	if p.Origin(99) != 3 {
		t.Fatalf("origin = %v", p.Origin(99))
	}
	if len(p.Hashtags) != 1 || p.Hashtags[0] != "x" {
		t.Fatalf("hashtags = %v", p.Hashtags)
	}
}

func TestParseMalformedRTStopsChain(t *testing.T) {
	p := ParseTweet("RT @nosuch: body")
	if p.IsRetweet() {
		t.Fatal("malformed reference treated as ancestry")
	}
	if p.Body != "RT @nosuch: body" {
		t.Fatalf("body = %q", p.Body)
	}
}

func TestRetweetFormatRoundTripProperty(t *testing.T) {
	r := rng.New(1)
	err := quick.Check(func(depthRaw uint8, a, b, c uint16) bool {
		depth := int(depthRaw % 4)
		users := []UserID{UserID(a % 1000), UserID(b % 1000), UserID(c % 1000)}
		body := "the payload #tag http://sho.rt/zz"
		text := body
		var wantChain []UserID
		for i := 0; i < depth; i++ {
			u := users[i%len(users)]
			text = FormatRetweet(u, text)
			wantChain = append([]UserID{u}, wantChain...)
		}
		p := ParseTweet(text)
		if len(p.Ancestors) != depth {
			return false
		}
		for i := range wantChain {
			if p.Ancestors[i] != wantChain[i] {
				return false
			}
		}
		return p.Body == body
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestFormatOriginal(t *testing.T) {
	got := FormatOriginal("hi", []string{"a", "b"}, []string{"http://x.y/1"})
	want := "hi #a #b http://x.y/1"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	p := ParseTweet(got)
	if len(p.Hashtags) != 2 || len(p.URLs) != 1 {
		t.Fatalf("parse back: %+v", p)
	}
}
