package twitter

import (
	"fmt"

	"infoflow/internal/core"
	"infoflow/internal/dist"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

// Config controls dataset generation. The defaults (DefaultConfig)
// produce a corpus with the qualitative properties the paper reports:
// heavy-tailed user activity, short retweet chains, sparse data with
// missing originals, URLs entering the network at a single point and
// hashtags at many.
type Config struct {
	NumUsers       int
	FollowsPerUser int     // outgoing follows per arriving user
	Reciprocity    float64 // probability a follow is reciprocated

	// Ground-truth activation probabilities (§V-C mixture): SkewFrac of
	// edges draw from High, the rest from Low.
	High     dist.Beta
	Low      dist.Beta
	SkewFrac float64

	NumTweets  int     // original (non-retweet) message cascades
	AuthorZipf float64 // skew of tweet authorship across users

	// DropOriginalFrac of original tweets are removed from the corpus
	// (the paper's data "contains many retweeted messages without the
	// original tweet"); the preprocessor recovers them.
	DropOriginalFrac float64

	NumHashtags  int
	HashtagSeeds int // independent external entry points per hashtag
	NumURLs      int // each URL enters once, via the omnipotent user
}

// DefaultConfig returns a laptop-scale corpus configuration.
func DefaultConfig() Config {
	return Config{
		NumUsers:       2000,
		FollowsPerUser: 4,
		Reciprocity:    0.3,
		// Subcritical activation probabilities: with ~5 flow edges per
		// node, a mean near 0.1 keeps cascades small and chains short,
		// matching the paper's observation that retweet chains longer
		// than 3 users are very rare. A minority of stronger edges
		// (mean 0.2) preserves the skew the learners must capture.
		High:             dist.NewBeta(4, 16),
		Low:              dist.NewBeta(1, 19),
		SkewFrac:         0.3,
		NumTweets:        4000,
		AuthorZipf:       1.1,
		DropOriginalFrac: 0.15,
		NumHashtags:      150,
		HashtagSeeds:     6,
		NumURLs:          150,
	}
}

func (c Config) validate() error {
	if c.NumUsers < 2 {
		return fmt.Errorf("twitter: need at least 2 users")
	}
	if c.FollowsPerUser < 1 {
		return fmt.Errorf("twitter: FollowsPerUser must be positive")
	}
	if c.SkewFrac < 0 || c.SkewFrac > 1 || c.Reciprocity < 0 || c.Reciprocity > 1 ||
		c.DropOriginalFrac < 0 || c.DropOriginalFrac > 1 {
		return fmt.Errorf("twitter: fractions must lie in [0,1]")
	}
	if c.NumTweets < 0 || c.NumHashtags < 0 || c.NumURLs < 0 || c.HashtagSeeds < 1 {
		return fmt.Errorf("twitter: negative counts")
	}
	return nil
}

// ObjectKind distinguishes the three granularities the paper studies.
type ObjectKind int

// The object kinds.
const (
	KindRetweet ObjectKind = iota
	KindHashtag
	KindURL
)

// ObjectTruth records the generator's ground truth for one propagated
// object, for validation and for building test outcomes.
type ObjectTruth struct {
	Kind  ObjectKind
	Label string // hashtag text or URL; empty for retweet cascades
	// Seeds are the external entry users (the cascade sources).
	Seeds []UserID
	// ActiveTime maps each user that held the object to its activation
	// round (the unattributed trace).
	ActiveTime map[UserID]int
	// Cascade is the full attributed cascade for retweet objects (nil
	// for hashtag/URL objects, whose multi-seed generation has no single
	// cascade).
	Cascade *core.Cascade
}

// Dataset is a generated corpus plus its hidden ground truth.
type Dataset struct {
	Config Config

	// Flow is the information-flow graph: an edge u -> v means v follows
	// u, so content flows from u to v. Real users occupy nodes
	// 0..NumUsers-1 (matching tweet author IDs); the last node is the
	// omnipotent user representing the outside world, with an edge to
	// every real user.
	Flow *graph.DiGraph

	// Omnipotent is the node ID of the outside-world user (NumUsers).
	Omnipotent UserID

	// TruthICM holds the generating activation probabilities on Flow.
	TruthICM *core.ICM

	// Tweets is the observable corpus, in posting order (but the
	// preprocessor does not rely on order).
	Tweets []Tweet

	// DroppedOriginals counts original tweets removed for sparsity.
	DroppedOriginals int

	// Retweets, Hashtags, URLs are the ground-truth object records.
	Retweets []ObjectTruth
	Hashtags []ObjectTruth
	URLs     []ObjectTruth
}

// RealUsers returns the IDs of all non-omnipotent users (0..NumUsers-1).
func (d *Dataset) RealUsers() []UserID {
	out := make([]UserID, 0, d.Config.NumUsers)
	for v := 0; v < d.Config.NumUsers; v++ {
		out = append(out, UserID(v))
	}
	return out
}

// Generate builds a dataset from the configuration.
func Generate(cfg Config, r *rng.RNG) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Dataset{Config: cfg, Omnipotent: UserID(cfg.NumUsers)}
	d.buildGraph(r)
	d.assignProbabilities(r)
	d.generateRetweets(r)
	d.generateTagged(r, KindHashtag, cfg.NumHashtags, cfg.HashtagSeeds)
	d.generateTagged(r, KindURL, cfg.NumURLs, 1)
	return d, nil
}

// buildGraph creates the follow graph and derives the flow graph. The
// preferential-attachment generator produces edges "new user -> followed
// hub"; information flows the other way, so edges are reversed. The
// omnipotent user is appended as the final node with an edge to every
// real user, so real-user node IDs equal tweet author IDs.
func (d *Dataset) buildGraph(r *rng.RNG) {
	follows := graph.PreferentialAttachment(r, d.Config.NumUsers, d.Config.FollowsPerUser, d.Config.Reciprocity)
	flow := graph.New(d.Config.NumUsers + 1)
	for _, e := range follows.Edges() {
		// e.From follows e.To: content flows To -> From.
		flow.MustAddEdge(e.To, e.From)
	}
	for v := 0; v < d.Config.NumUsers; v++ {
		flow.MustAddEdge(d.Omnipotent, graph.NodeID(v))
	}
	d.Flow = flow
}

// assignProbabilities draws the ground-truth ICM: the §V-C skewed
// mixture on real edges, and a small constant on omnipotent edges (the
// outside world occasionally hands anyone anything).
func (d *Dataset) assignProbabilities(r *rng.RNG) {
	p := make([]float64, d.Flow.NumEdges())
	for id := 0; id < d.Flow.NumEdges(); id++ {
		if d.Flow.Edge(graph.EdgeID(id)).From == d.Omnipotent {
			p[id] = 0.002
			continue
		}
		if r.Bernoulli(d.Config.SkewFrac) {
			p[id] = d.Config.High.Sample(r)
		} else {
			p[id] = d.Config.Low.Sample(r)
		}
	}
	d.TruthICM = core.MustNewICM(d.Flow, p)
}

// pickAuthor draws a tweet author with Zipf-skewed activity. The
// omnipotent user never authors retweetable originals directly.
func (d *Dataset) pickAuthor(r *rng.RNG) UserID {
	return UserID(r.Zipf(d.Config.NumUsers, d.Config.AuthorZipf))
}

// generateRetweets simulates NumTweets cascades over the real-user part
// of the graph and emits original + retweet messages.
func (d *Dataset) generateRetweets(r *rng.RNG) {
	clock := len(d.Tweets)
	for i := 0; i < d.Config.NumTweets; i++ {
		author := d.pickAuthor(r)
		cascade := d.cascadeFrom(r, author)
		body := fmt.Sprintf("message %d from %s", i, FormatUser(author))
		truth := ObjectTruth{
			Kind:       KindRetweet,
			Seeds:      []UserID{author},
			ActiveTime: map[UserID]int{},
			Cascade:    cascade,
		}
		// Emit tweets in cascade-round order so retweets follow their
		// parents in time. Text is reconstructed along the parent chain.
		texts := make(map[UserID]string)
		texts[author] = FormatOriginal(body, nil, nil)
		order := usersByRound(cascade)
		for _, u := range order {
			truth.ActiveTime[u] = cascade.Round[u]
			var text string
			if u == author {
				text = texts[u]
			} else {
				parent := cascade.Parent[u]
				text = FormatRetweet(parent, texts[parent])
				texts[u] = text
			}
			drop := u == author && r.Bernoulli(d.Config.DropOriginalFrac) && cascade.NumActive() > 1
			if drop {
				d.DroppedOriginals++
			} else {
				d.Tweets = append(d.Tweets, Tweet{
					ID:     TweetID(len(d.Tweets)),
					Author: u,
					Time:   clock,
					Text:   text,
				})
			}
			clock++
		}
		d.Retweets = append(d.Retweets, truth)
	}
}

// cascadeFrom simulates an ICM cascade among real users only (the
// omnipotent user neither retweets nor is retweeted in retweet cascades).
func (d *Dataset) cascadeFrom(r *rng.RNG, source UserID) *core.Cascade {
	// Mask out omnipotent edges by sampling the cascade on the full model
	// but starting from a real source: node 0 has no incoming edges, so
	// it can never activate, and its outgoing edges are never tried.
	return d.TruthICM.SampleCascade(r, []UserID{source})
}

// usersByRound returns the cascade's active users ordered by activation
// round (sources first).
func usersByRound(c *core.Cascade) []UserID {
	var out []UserID
	maxRound := 0
	for _, r := range c.Round {
		if r > maxRound {
			maxRound = r
		}
	}
	for round := 0; round <= maxRound; round++ {
		for v, rv := range c.Round {
			if rv == round {
				out = append(out, UserID(v))
			}
		}
	}
	return out
}

// generateTagged simulates hashtag or URL objects: each object enters the
// network at `seeds` independent users (hashtags arrive via offline
// coordination at many points; URLs once, via the omnipotent user's edge
// to a random user), then propagates by the ground-truth ICM. Every
// active user emits one tweet mentioning the object.
func (d *Dataset) generateTagged(r *rng.RNG, kind ObjectKind, count, seeds int) {
	clock := len(d.Tweets)
	for i := 0; i < count; i++ {
		var label string
		if kind == KindHashtag {
			label = fmt.Sprintf("tag%d", i)
		} else {
			// The index prefix guarantees uniqueness; the random suffix
			// models shortener output.
			label = fmt.Sprintf("http://sho.rt/%d_%06x", i, r.Uint64()&0xffffff)
		}
		seedSet := make([]UserID, 0, seeds)
		seen := map[UserID]bool{}
		for len(seedSet) < seeds {
			u := d.pickAuthor(r)
			if !seen[u] {
				seen[u] = true
				seedSet = append(seedSet, u)
			}
		}
		cascade := d.TruthICM.SampleCascade(r, seedSet)
		truth := ObjectTruth{
			Kind:       kind,
			Label:      label,
			Seeds:      seedSet,
			ActiveTime: map[UserID]int{},
		}
		for _, u := range usersByRound(cascade) {
			truth.ActiveTime[u] = cascade.Round[u]
			var text string
			if kind == KindHashtag {
				text = FormatOriginal(fmt.Sprintf("about %s", label), []string{label}, nil)
			} else {
				text = FormatOriginal("look at this", nil, []string{label})
			}
			d.Tweets = append(d.Tweets, Tweet{
				ID:     TweetID(len(d.Tweets)),
				Author: u,
				Time:   clock,
				Text:   text,
			})
			clock++
		}
		clock += 10 // objects are temporally separated
		if kind == KindHashtag {
			d.Hashtags = append(d.Hashtags, truth)
		} else {
			d.URLs = append(d.URLs, truth)
		}
	}
}
