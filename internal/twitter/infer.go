package twitter

import (
	"sort"

	"infoflow/internal/graph"
)

// InferredGraph is a flow topology reconstructed purely from message
// syntax, the way the paper builds its network: "the network topology is
// also inferred from the data using the '@' references to indicate
// edges".
type InferredGraph struct {
	// Flow is the inferred graph over the same node ID space as the
	// corpus (0..maxUser; isolated IDs are retained so tweet author IDs
	// remain valid node IDs).
	Flow *graph.DiGraph
	// EdgeObservations counts how many chain links supported each edge
	// (indexed by EdgeID of Flow).
	EdgeObservations []int
}

// InferGraph reconstructs the flow topology from retweet ancestry: every
// adjacent pair in a recovered chain witnesses an edge from the earlier
// poster to the retweeter. numUsers fixes the node-ID space (the corpus
// user count); references outside it are ignored as noise.
func InferGraph(tweets []Tweet, numUsers int) *InferredGraph {
	counts := map[graph.Edge]int{}
	inRange := func(u UserID) bool { return u >= 0 && int(u) < numUsers }
	for _, t := range tweets {
		p := ParseTweet(t.Text)
		if !p.IsRetweet() || !inRange(t.Author) {
			continue
		}
		// Chain origin-first.
		chain := make([]UserID, 0, len(p.Ancestors)+1)
		for i := len(p.Ancestors) - 1; i >= 0; i-- {
			chain = append(chain, p.Ancestors[i])
		}
		chain = append(chain, t.Author)
		ok := true
		for _, u := range chain {
			if !inRange(u) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i := 0; i+1 < len(chain); i++ {
			if chain[i] != chain[i+1] {
				counts[graph.Edge{From: chain[i], To: chain[i+1]}]++
			}
		}
	}
	edges := make([]graph.Edge, 0, len(counts))
	for e := range counts {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	g := graph.New(numUsers)
	obs := make([]int, 0, len(edges))
	for _, e := range edges {
		g.MustAddEdge(e.From, e.To)
		obs = append(obs, counts[e])
	}
	return &InferredGraph{Flow: g, EdgeObservations: obs}
}
