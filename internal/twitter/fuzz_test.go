package twitter

import (
	"bytes"
	"encoding/json"
	"testing"
)

// fuzzNodeLimit mirrors the graph fuzzer's memory-amplification guard:
// a tiny input declaring millions of nodes is an allocation hazard, not
// a decoder bug.
const fuzzNodeLimit = 1 << 16

// FuzzDecodeGraphRoundTrip asserts that decodeGraph never panics and
// that accepted graphs reach an encode/decode fixed point.
func FuzzDecodeGraphRoundTrip(f *testing.F) {
	f.Add([]byte(`{"nodes":3,"edges":[[0,1],[1,2]]}`))
	f.Add([]byte(`{"nodes":0,"edges":[]}`))
	f.Add([]byte(`{"nodes":2,"edges":[[0,1],[0,1]]}`))
	f.Add([]byte(`{"nodes":1,"edges":[[0,0]]}`))
	f.Add([]byte(`{"nodes":"two"}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var probe struct {
			Nodes int64 `json:"nodes"`
		}
		if err := json.Unmarshal(data, &probe); err == nil &&
			(probe.Nodes < 0 || probe.Nodes > fuzzNodeLimit) {
			t.Skip("node count out of fuzzing bounds")
		}
		g, err := decodeGraph(json.RawMessage(data))
		if err != nil {
			return
		}
		enc1, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("encode accepted graph: %v", err)
		}
		g2, err := decodeGraph(enc1)
		if err != nil {
			t.Fatalf("re-decode own encoding: %v\nencoding: %s", err, enc1)
		}
		enc2, err := json.Marshal(g2)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode/decode not a fixed point:\nfirst:  %s\nsecond: %s", enc1, enc2)
		}
	})
}
