// Package twitter is the micro-blogging substrate of §IV-B: a synthetic
// stand-in for the Choudhury et al. Twitter dataset the paper trains on
// (10M tweets, 118K users), which is not redistributable. The package
// generates a corpus of tweets — originals, retweets with in-message
// "RT @user:" ancestry, hashtags, shortened URLs, and an omnipotent
// outside-world user — from a hidden ground-truth ICM over a
// preferential-attachment follow graph, then provides the preprocessing
// the paper describes: parsing message syntax to recover attributed
// retweet chains (including recovering dropped originals) and reducing
// hashtag/URL mentions to unattributed activation-time traces.
//
// Because the generator's ground truth is known, every downstream
// experiment can be validated more strongly than the paper could
// (trained models are compared against the actual generating
// probabilities, not only against held-out behaviour).
package twitter

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"infoflow/internal/graph"
)

// UserID identifies a user; it doubles as the node ID in the flow graph.
type UserID = graph.NodeID

// TweetID identifies a tweet within a dataset.
type TweetID int

// Tweet is one message. Text carries everything the preprocessor is
// allowed to see (the paper's pipelines work from message syntax);
// Author and Time are the poster and posting time from the feed
// metadata.
type Tweet struct {
	ID     TweetID
	Author UserID
	Time   int
	Text   string
}

// FormatUser renders the @-reference form of a user.
func FormatUser(u UserID) string { return fmt.Sprintf("user%d", u) }

// ParseUser parses a "user<N>" name back to its ID.
func ParseUser(name string) (UserID, error) {
	if !strings.HasPrefix(name, "user") {
		return 0, fmt.Errorf("twitter: malformed user name %q", name)
	}
	n, err := strconv.Atoi(name[len("user"):])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("twitter: malformed user name %q", name)
	}
	return UserID(n), nil
}

// FormatOriginal renders an original tweet body with optional hashtags
// and URLs appended in-text.
func FormatOriginal(body string, hashtags, urls []string) string {
	parts := []string{body}
	for _, h := range hashtags {
		parts = append(parts, "#"+h)
	}
	parts = append(parts, urls...)
	return strings.Join(parts, " ")
}

// FormatRetweet renders a retweet of the given tweet text by referencing
// the previous poster, exactly the "RT @user:" convention the paper's
// preprocessor keys on. Retweeting a retweet nests the references, which
// is how ancestry chains are recoverable from a single message.
func FormatRetweet(previous UserID, previousText string) string {
	return fmt.Sprintf("RT @%s: %s", FormatUser(previous), previousText)
}

// Parsed is the decomposition of one tweet's text.
type Parsed struct {
	// Ancestors is the retweet reference chain, most recent first: for
	// "RT @a: RT @b: body" it is [a, b]. Empty for original tweets.
	Ancestors []UserID
	// Body is the innermost message text, including tags and urls.
	Body string
	// Hashtags are the #tags found in the body, in order, without '#'.
	Hashtags []string
	// URLs are the in-text urls found in the body, in order.
	URLs []string
}

// IsRetweet reports whether the text carried at least one RT reference.
func (p *Parsed) IsRetweet() bool { return len(p.Ancestors) > 0 }

// Origin returns the original author implied by the chain given the
// tweet's own author: the last ancestor for retweets, the author itself
// otherwise.
func (p *Parsed) Origin(author UserID) UserID {
	if len(p.Ancestors) == 0 {
		return author
	}
	return p.Ancestors[len(p.Ancestors)-1]
}

var (
	rtPrefixRe = regexp.MustCompile(`^RT @([A-Za-z0-9_]+): `)
	hashtagRe  = regexp.MustCompile(`#([A-Za-z0-9_]+)`)
	urlRe      = regexp.MustCompile(`https?://[^\s]+`)
)

// ParseTweet decomposes tweet text: it strips nested "RT @user: "
// prefixes into the ancestor chain, then scans the body for hashtags and
// URLs. Unparseable user references terminate the chain (treated as
// body), matching the tolerance a real pipeline needs for noisy data.
func ParseTweet(text string) Parsed {
	var p Parsed
	rest := text
	for {
		m := rtPrefixRe.FindStringSubmatch(rest)
		if m == nil {
			break
		}
		u, err := ParseUser(m[1])
		if err != nil {
			break
		}
		p.Ancestors = append(p.Ancestors, u)
		rest = rest[len(m[0]):]
	}
	p.Body = rest
	for _, m := range hashtagRe.FindAllStringSubmatch(rest, -1) {
		p.Hashtags = append(p.Hashtags, m[1])
	}
	p.URLs = urlRe.FindAllString(rest, -1)
	return p
}
