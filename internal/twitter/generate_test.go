package twitter

import (
	"bytes"
	"math"
	"testing"

	"infoflow/internal/rng"
)

// smallConfig keeps generation fast in tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumUsers = 200
	cfg.NumTweets = 300
	cfg.NumHashtags = 20
	cfg.NumURLs = 20
	return cfg
}

func TestGenerateStructure(t *testing.T) {
	r := rng.New(1)
	d, err := Generate(smallConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	if d.Flow.NumNodes() != 201 {
		t.Fatalf("nodes = %d", d.Flow.NumNodes())
	}
	// Omnipotent user reaches everyone.
	if d.Flow.OutDegree(d.Omnipotent) != 200 {
		t.Fatalf("omnipotent out-degree = %d", d.Flow.OutDegree(d.Omnipotent))
	}
	if d.Flow.InDegree(d.Omnipotent) != 0 {
		t.Fatal("omnipotent has in-edges")
	}
	if len(d.Tweets) == 0 {
		t.Fatal("no tweets generated")
	}
	if len(d.Retweets) != 300 || len(d.Hashtags) != 20 || len(d.URLs) != 20 {
		t.Fatalf("object counts: %d %d %d", len(d.Retweets), len(d.Hashtags), len(d.URLs))
	}
	if len(d.RealUsers()) != 200 {
		t.Fatalf("real users = %d", len(d.RealUsers()))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1, err := Generate(smallConfig(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(smallConfig(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Tweets) != len(d2.Tweets) {
		t.Fatalf("tweet counts differ: %d vs %d", len(d1.Tweets), len(d2.Tweets))
	}
	for i := range d1.Tweets {
		if d1.Tweets[i] != d2.Tweets[i] {
			t.Fatalf("tweet %d differs", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	r := rng.New(2)
	bad := smallConfig()
	bad.NumUsers = 1
	if _, err := Generate(bad, r); err == nil {
		t.Error("1-user config accepted")
	}
	bad = smallConfig()
	bad.SkewFrac = 1.5
	if _, err := Generate(bad, r); err == nil {
		t.Error("bad skew accepted")
	}
	bad = smallConfig()
	bad.HashtagSeeds = 0
	if _, err := Generate(bad, r); err == nil {
		t.Error("zero hashtag seeds accepted")
	}
}

func TestGroundTruthProbabilitiesSkewed(t *testing.T) {
	r := rng.New(3)
	d, err := Generate(smallConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	high, low, omni := 0, 0, 0
	sum := 0.0
	for id, p := range d.TruthICM.P {
		if d.Flow.Edge(int32(id)).From == d.Omnipotent {
			omni++
			if p != 0.002 {
				t.Fatalf("omnipotent edge prob = %v", p)
			}
			continue
		}
		sum += p
		if p > 0.15 {
			high++
		} else {
			low++
		}
	}
	if omni != 200 {
		t.Fatalf("omnipotent edges = %d", omni)
	}
	// Subcritical regime: mean real-edge probability near 0.1, with both
	// strong and weak edges present (the skew the learners must detect).
	mean := sum / float64(high+low)
	if math.Abs(mean-0.1) > 0.05 {
		t.Errorf("mean real-edge probability = %v, want ~0.1", mean)
	}
	if high == 0 || low == 0 {
		t.Errorf("mixture degenerate: high=%d low=%d", high, low)
	}
}

func TestRetweetTweetsMatchCascades(t *testing.T) {
	r := rng.New(4)
	cfg := smallConfig()
	cfg.DropOriginalFrac = 0 // keep everything for exact accounting
	d, err := Generate(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	// Total retweet-cascade tweets = sum of cascade sizes.
	wantTweets := 0
	for _, obj := range d.Retweets {
		wantTweets += obj.Cascade.NumActive()
	}
	gotCascadeTweets := 0
	for _, tw := range d.Tweets {
		p := ParseTweet(tw.Text)
		if len(p.Hashtags) == 0 && len(p.URLs) == 0 {
			gotCascadeTweets++
		}
	}
	if gotCascadeTweets != wantTweets {
		t.Fatalf("cascade tweets %d, want %d", gotCascadeTweets, wantTweets)
	}
	// Every retweet's direct parent must hold an edge to the retweeter in
	// the flow graph.
	for _, tw := range d.Tweets {
		p := ParseTweet(tw.Text)
		if !p.IsRetweet() || len(p.Hashtags) > 0 || len(p.URLs) > 0 {
			continue
		}
		parent := p.Ancestors[0]
		if !d.Flow.HasEdge(parent, tw.Author) {
			t.Fatalf("retweet by %d from %d without flow edge", tw.Author, parent)
		}
	}
}

func TestDropOriginals(t *testing.T) {
	r := rng.New(5)
	cfg := smallConfig()
	cfg.DropOriginalFrac = 1 // drop every original with a retweet
	d, err := Generate(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if d.DroppedOriginals == 0 {
		t.Fatal("nothing dropped at frac=1")
	}
	// Count original (non-retweet, non-tagged) tweets that survive: only
	// cascades of size 1 keep their original.
	for _, tw := range d.Tweets {
		p := ParseTweet(tw.Text)
		if p.IsRetweet() || len(p.Hashtags) > 0 || len(p.URLs) > 0 {
			continue
		}
		key := p.Origin(tw.Author)
		_ = key
	}
	stats := d.Stats()
	if stats.DroppedOriginals != d.DroppedOriginals {
		t.Fatal("stats dropped mismatch")
	}
}

func TestHashtagsMultiSeedURLsSingleSeed(t *testing.T) {
	r := rng.New(6)
	d, err := Generate(smallConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range d.Hashtags {
		if len(h.Seeds) != d.Config.HashtagSeeds {
			t.Fatalf("hashtag seeds = %d", len(h.Seeds))
		}
	}
	for _, u := range d.URLs {
		if len(u.Seeds) != 1 {
			t.Fatalf("url seeds = %d", len(u.Seeds))
		}
	}
	// Labels are unique.
	seen := map[string]bool{}
	for _, u := range d.URLs {
		if seen[u.Label] {
			t.Fatalf("duplicate url %s", u.Label)
		}
		seen[u.Label] = true
	}
}

func TestStatsAndInterestingUsers(t *testing.T) {
	r := rng.New(7)
	d, err := Generate(smallConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Tweets != len(d.Tweets) || s.Originals+s.Retweets != s.Tweets {
		t.Fatalf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
	top := d.InterestingUsers(10)
	if len(top) != 10 {
		t.Fatalf("interesting = %d", len(top))
	}
	// The most interesting user should be busier than a random one.
	seen := map[UserID]bool{}
	for _, u := range top {
		if seen[u] {
			t.Fatal("duplicate interesting user")
		}
		seen[u] = true
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	r := rng.New(8)
	d, err := Generate(smallConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow.NumNodes() != d.Flow.NumNodes() || got.Flow.NumEdges() != d.Flow.NumEdges() {
		t.Fatal("graph changed")
	}
	if len(got.Tweets) != len(d.Tweets) {
		t.Fatal("tweets changed")
	}
	for i := range d.TruthICM.P {
		if got.TruthICM.P[i] != d.TruthICM.P[i] {
			t.Fatal("probabilities changed")
		}
	}
}

func TestSplitTweets(t *testing.T) {
	r := rng.New(9)
	cfg := smallConfig()
	cfg.NumHashtags = 0
	cfg.NumURLs = 0
	cfg.DropOriginalFrac = 0
	d, err := Generate(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	train, test := d.SplitTweets(0.7)
	if len(train)+len(test) != len(d.Tweets) {
		t.Fatalf("split loses tweets: %d + %d != %d", len(train), len(test), len(d.Tweets))
	}
	if len(test) == 0 || len(train) == 0 {
		t.Fatal("degenerate split")
	}
	// No cascade straddles the split: each (origin, body) appears on one
	// side only.
	side := map[string]int{}
	for _, tw := range train {
		p := ParseTweet(tw.Text)
		side[p.Body] = 1
	}
	for _, tw := range test {
		p := ParseTweet(tw.Text)
		if side[p.Body] == 1 {
			t.Fatalf("cascade %q in both sides", p.Body)
		}
	}
}
