package twitter

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"infoflow/internal/jsonx"
)

// Stats summarises a dataset, mirroring the corpus-level numbers the
// paper reports for its Twitter data.
type Stats struct {
	Users            int
	FlowEdges        int
	Tweets           int
	Retweets         int
	Originals        int
	DroppedOriginals int
	HashtagObjects   int
	URLObjects       int
	MaxChainLength   int // longest recovered retweet ancestry chain
}

// Stats computes corpus statistics.
func (d *Dataset) Stats() Stats {
	s := Stats{
		Users:            d.Config.NumUsers,
		FlowEdges:        d.Flow.NumEdges(),
		Tweets:           len(d.Tweets),
		DroppedOriginals: d.DroppedOriginals,
		HashtagObjects:   len(d.Hashtags),
		URLObjects:       len(d.URLs),
	}
	for _, t := range d.Tweets {
		p := ParseTweet(t.Text)
		if p.IsRetweet() {
			s.Retweets++
			if len(p.Ancestors) > s.MaxChainLength {
				s.MaxChainLength = len(p.Ancestors)
			}
		} else {
			s.Originals++
		}
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "users: %d (plus omnipotent), flow edges: %d\n", s.Users, s.FlowEdges)
	fmt.Fprintf(&b, "tweets: %d (%d originals, %d retweets; %d originals dropped)\n",
		s.Tweets, s.Originals, s.Retweets, s.DroppedOriginals)
	fmt.Fprintf(&b, "hashtag objects: %d, url objects: %d, longest chain: %d\n",
		s.HashtagObjects, s.URLObjects, s.MaxChainLength)
	return b.String()
}

// InterestingUsers returns the top-k users by observable activity
// (authored tweets plus times retweeted), the paper's "interesting
// users" focus selection for §IV-C. Ties break toward lower IDs.
func (d *Dataset) InterestingUsers(k int) []UserID {
	score := make(map[UserID]int)
	for _, t := range d.Tweets {
		p := ParseTweet(t.Text)
		score[t.Author]++
		for _, a := range p.Ancestors {
			score[a] += 2 // being retweeted signals an interesting source
		}
	}
	users := make([]UserID, 0, len(score))
	for u := range score {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool {
		if score[users[i]] != score[users[j]] {
			return score[users[i]] > score[users[j]]
		}
		return users[i] < users[j]
	})
	if k > len(users) {
		k = len(users)
	}
	return users[:k]
}

// SplitObjects partitions the retweet objects into train and test sets
// by index parity of a deterministic split at trainFrac.
func splitIdx(n int, trainFrac float64) int {
	k := int(float64(n) * trainFrac)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// SplitTweets splits the corpus tweets belonging to retweet cascades
// into train/test by cascade: the first trainFrac of cascades (by
// generation order) contribute their tweets to train, the rest to test.
// Hashtag/URL tweets always go to train (they feed the unattributed
// experiments, which split separately).
func (d *Dataset) SplitTweets(trainFrac float64) (train, test []Tweet) {
	cut := splitIdx(len(d.Retweets), trainFrac)
	// Identify test cascades by (origin, body) via their truth records'
	// cascade source and message index.
	testKeys := make(map[cascadeKey]bool)
	for i := cut; i < len(d.Retweets); i++ {
		origin := d.Retweets[i].Seeds[0]
		body := fmt.Sprintf("message %d from %s", i, FormatUser(origin))
		testKeys[cascadeKey{origin, body}] = true
	}
	for _, t := range d.Tweets {
		p := ParseTweet(t.Text)
		key := cascadeKey{p.Origin(t.Author), p.Body}
		if testKeys[key] {
			test = append(test, t)
		} else {
			train = append(train, t)
		}
	}
	return train, test
}

// jsonDataset is the serialised form: configuration, graph, truth
// probabilities and tweets. Object truths are reconstructible but stored
// for fidelity.
type jsonDataset struct {
	Config           Config          `json:"config"`
	Flow             json.RawMessage `json:"flow"`
	Probs            []float64       `json:"probs"`
	Tweets           []Tweet         `json:"tweets"`
	DroppedOriginals int             `json:"dropped_originals"`
}

// Write serialises the observable dataset plus ground-truth model as
// JSON. Object-level truth records are omitted (they are large and
// derivable); experiments that need them should use the in-memory
// dataset.
func (d *Dataset) Write(w io.Writer) error {
	flowJSON, err := json.Marshal(d.Flow)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(jsonDataset{
		Config:           d.Config,
		Flow:             flowJSON,
		Probs:            d.TruthICM.P,
		Tweets:           d.Tweets,
		DroppedOriginals: d.DroppedOriginals,
	})
}

// Read deserialises a dataset written by Write.
func Read(r io.Reader) (*Dataset, error) {
	var jd jsonDataset
	if err := json.NewDecoder(r).Decode(&jd); err != nil {
		return nil, jsonx.Wrap("twitter: decode dataset", err)
	}
	d := &Dataset{
		Config:           jd.Config,
		Omnipotent:       UserID(jd.Config.NumUsers),
		Tweets:           jd.Tweets,
		DroppedOriginals: jd.DroppedOriginals,
	}
	g, err := decodeGraph(jd.Flow)
	if err != nil {
		return nil, err
	}
	d.Flow = g
	icm, err := newICM(g, jd.Probs)
	if err != nil {
		return nil, err
	}
	d.TruthICM = icm
	return d, nil
}
