// Package fenwick implements a Fenwick (binary indexed) tree over
// non-negative float64 weights with O(log n) point updates and O(log n)
// weighted sampling.
//
// This is the "search tree" of §III-C of the paper: the
// Metropolis-Hastings proposal selects an edge from a multinomial
// distribution whose weights change by one entry per step, so the chain
// needs a structure supporting both update and sample in logarithmic
// time, including maintenance of the normalizing constant Z.
package fenwick

import (
	"fmt"
	"math"

	"infoflow/internal/rng"
)

// Tree is a weighted-sampling Fenwick tree. The zero value is unusable;
// construct with New.
type Tree struct {
	n       int
	sums    []float64 // 1-based partial sums, sums[i] covers (i-lowbit(i), i]
	weights []float64 // current weight of each index, 0-based
	total   float64
	npos    int // exact count of positive weights; guards total against drift
}

// New builds a tree over the given weights. Weights must be
// non-negative; the slice is copied.
func New(weights []float64) *Tree {
	t := &Tree{
		n:       len(weights),
		sums:    make([]float64, len(weights)+1),
		weights: make([]float64, len(weights)),
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			//flowlint:invariant documented contract: weights must be non-negative and not NaN
			panic(fmt.Sprintf("fenwick: invalid weight %v at %d", w, i))
		}
		t.weights[i] = w
		t.total += w
		if w > 0 {
			t.npos++
		}
	}
	// O(n) bulk build.
	for i := 1; i <= t.n; i++ {
		t.sums[i] += t.weights[i-1]
		if j := i + (i & -i); j <= t.n {
			t.sums[j] += t.sums[i]
		}
	}
	return t
}

// Len returns the number of indices.
func (t *Tree) Len() int { return t.n }

// Total returns the sum of all weights (the normalizing constant Z).
// It is maintained incrementally across Sets, but is exactly zero
// whenever every weight is zero: the positive-weight count is tracked
// exactly, so accumulated roundoff cannot leave a phantom positive
// total over an empty distribution.
func (t *Tree) Total() float64 { return t.total }

// Weight returns the weight at index i.
func (t *Tree) Weight(i int) float64 { return t.weights[i] }

// Set changes the weight at index i to w.
//
//flowlint:hotpath
func (t *Tree) Set(i int, w float64) {
	if w < 0 || math.IsNaN(w) {
		//flowlint:invariant documented contract: weights must be non-negative and not NaN
		panic(fmt.Sprintf("fenwick: invalid weight %v at %d", w, i))
	}
	switch {
	case t.weights[i] <= 0 && w > 0:
		t.npos++
	case t.weights[i] > 0 && w <= 0:
		t.npos--
	}
	delta := w - t.weights[i]
	t.weights[i] = w
	t.total += delta
	if t.npos == 0 {
		// Every weight is now zero: snap the incrementally maintained
		// total to exact zero so Sample's empty-distribution guard fires
		// instead of chasing roundoff residue through Find.
		t.total = 0
	}
	for j := i + 1; j <= t.n; j += j & -j {
		t.sums[j] += delta
	}
}

// PrefixSum returns the sum of weights over indices [0, i].
//
//flowlint:hotpath
func (t *Tree) PrefixSum(i int) float64 {
	s := 0.0
	for j := i + 1; j > 0; j -= j & -j {
		s += t.sums[j]
	}
	return s
}

// Sample draws an index with probability proportional to its weight. It
// panics if the total weight is not positive.
//
//flowlint:hotpath
func (t *Tree) Sample(r *rng.RNG) int {
	if t.total <= 0 {
		//flowlint:invariant documented contract: sampling needs a positive total weight
		panic("fenwick: sampling from empty distribution")
	}
	return t.Find(r.Float64() * t.total)
}

// Find returns the smallest index i such that PrefixSum(i) > target,
// clamped to a positive-weight index. It runs in O(log n) by descending
// the implicit tree.
//
// Floating-point roundoff can push the descent off the exact answer in
// two ways, and both must clamp rather than return an unsampleable
// index: the target may equal or exceed Total() (r.Float64()*Total()
// rounds up, or Total() has drifted above the true sum across
// incremental Sets), and the descent itself may land on a zero-weight
// index when a partial sum compares <= target at one level but the
// residual target is then exhausted inside a run of zero weights (e.g.
// a denormal weight that vanishes when added to a larger partial sum).
// In either case the result is snapped to the nearest positive-weight
// index at or below the landing point, falling back to the first one
// above it, so callers always receive an index they could legitimately
// have sampled.
//
//flowlint:hotpath
func (t *Tree) Find(target float64) int {
	idx := 0 // 1-based position before the answer
	// Largest power of two <= n.
	bit := 1
	for bit<<1 <= t.n {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= t.n && t.sums[next] <= target {
			idx = next
			target -= t.sums[next]
		}
	}
	if idx >= t.n || t.weights[idx] <= 0 {
		return t.clampToPositive(idx)
	}
	return idx
}

// clampToPositive snaps a roundoff-afflicted landing index to the last
// positive-weight index at or below it, or failing that the first one
// above it. It is the cold path of Find: with exact arithmetic it is
// never taken.
func (t *Tree) clampToPositive(idx int) int {
	lo := idx
	if lo > t.n-1 {
		lo = t.n - 1
	}
	for i := lo; i >= 0; i-- {
		if t.weights[i] > 0 {
			return i
		}
	}
	for i := lo + 1; i < t.n; i++ {
		if t.weights[i] > 0 {
			return i
		}
	}
	//flowlint:invariant unreachable: total > 0 guarantees a positive weight exists
	panic("fenwick: no positive weights")
}
