package fenwick

import (
	"math"
	"testing"
	"testing/quick"

	"infoflow/internal/rng"
)

func TestBuildAndPrefixSums(t *testing.T) {
	tr := New([]float64{1, 2, 3, 4})
	if tr.Total() != 10 {
		t.Fatalf("total = %v", tr.Total())
	}
	wants := []float64{1, 3, 6, 10}
	for i, w := range wants {
		if got := tr.PrefixSum(i); got != w {
			t.Fatalf("prefix(%d) = %v want %v", i, got, w)
		}
	}
}

func TestSetUpdates(t *testing.T) {
	tr := New([]float64{1, 1, 1})
	tr.Set(1, 5)
	if tr.Total() != 7 {
		t.Fatalf("total = %v", tr.Total())
	}
	if tr.Weight(1) != 5 {
		t.Fatalf("weight = %v", tr.Weight(1))
	}
	if got := tr.PrefixSum(1); got != 6 {
		t.Fatalf("prefix(1) = %v", got)
	}
	tr.Set(1, 0)
	if tr.Total() != 2 || tr.PrefixSum(2) != 2 {
		t.Fatal("zeroing failed")
	}
}

func TestFindBoundaries(t *testing.T) {
	tr := New([]float64{2, 0, 3})
	cases := []struct {
		target float64
		want   int
	}{
		{0, 0}, {1.999, 0}, {2, 2}, {4.999, 2},
	}
	for _, c := range cases {
		if got := tr.Find(c.target); got != c.want {
			t.Errorf("Find(%v) = %d want %d", c.target, got, c.want)
		}
	}
	// Roundoff overshoot clamps to last positive index.
	if got := tr.Find(5.0); got != 2 {
		t.Errorf("Find(total) = %d", got)
	}
}

func TestSampleDistribution(t *testing.T) {
	r := rng.New(7)
	weights := []float64{1, 0, 3, 6}
	tr := New(weights)
	const trials = 200000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[tr.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[1])
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency %v want %v", i, got, want)
		}
	}
}

func TestSampleAfterUpdates(t *testing.T) {
	r := rng.New(8)
	tr := New([]float64{1, 1, 1, 1})
	tr.Set(0, 0)
	tr.Set(3, 2)
	const trials = 100000
	counts := make([]int, 4)
	for i := 0; i < trials; i++ {
		counts[tr.Sample(r)]++
	}
	if counts[0] != 0 {
		t.Fatal("sampled zeroed index")
	}
	if got := float64(counts[3]) / trials; math.Abs(got-0.5) > 0.01 {
		t.Errorf("index 3 frequency = %v", got)
	}
}

func TestPrefixSumMatchesNaive(t *testing.T) {
	err := quick.Check(func(seed uint16, nRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := int(nRaw%64) + 1
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = r.Float64() * 10
		}
		tr := New(weights)
		// Random updates.
		for k := 0; k < 10; k++ {
			i := r.Intn(n)
			w := r.Float64() * 5
			weights[i] = w
			tr.Set(i, w)
		}
		sum := 0.0
		for i, w := range weights {
			sum += w
			if math.Abs(tr.PrefixSum(i)-sum) > 1e-9 {
				return false
			}
		}
		return math.Abs(tr.Total()-sum) < 1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFindIsInverseOfPrefixSum(t *testing.T) {
	err := quick.Check(func(seed uint16, nRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := int(nRaw%32) + 1
		weights := make([]float64, n)
		for i := range weights {
			if r.Bernoulli(0.7) {
				weights[i] = r.Float64()*4 + 0.01
			}
		}
		tr := New(weights)
		if tr.Total() <= 0 {
			return true
		}
		for k := 0; k < 20; k++ {
			target := r.Float64() * tr.Total()
			i := tr.Find(target)
			// Invariant: prefix(i-1) <= target < prefix(i), with weight>0.
			if weights[i] <= 0 {
				return false
			}
			lo := 0.0
			if i > 0 {
				lo = tr.PrefixSum(i - 1)
			}
			if !(lo <= target+1e-9 && target < tr.PrefixSum(i)+1e-9) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFindDenormalZeroLanding is the regression case for the roundoff
// clamp: a denormal weight that vanishes when added to a larger partial
// sum makes the descent land on a trailing zero-weight index without
// ever tripping the idx >= n overshoot path. Pre-fix, Find returned
// index 7 (weight 0); it must snap to index 5, the last positive-weight
// index.
func TestFindDenormalZeroLanding(t *testing.T) {
	weights := []float64{0, 0, 0.34709350522491933, 0.5055723942405769, 0, 5e-324, 0, 0}
	tr := New(weights)
	got := tr.Find(tr.Total())
	if got < 0 || got >= len(weights) {
		t.Fatalf("Find(Total) = %d, out of range", got)
	}
	if weights[got] <= 0 {
		t.Fatalf("Find(Total) = %d, a zero-weight index", got)
	}
	if got != 5 {
		t.Errorf("Find(Total) = %d, want 5 (last positive-weight index)", got)
	}
}

// TestFindTargetAtTotal exercises the r.Float64()*Total() == Total()
// overshoot across weight layouts, including all-mass-on-last and
// all-but-last zero.
func TestFindTargetAtTotal(t *testing.T) {
	cases := []struct {
		weights []float64
		want    int
	}{
		{[]float64{0, 0, 0, 2.5}, 3},
		{[]float64{2.5, 0, 0, 0}, 0},
		{[]float64{1, 2, 0, 0}, 1},
		{[]float64{0, 5e-324, 0}, 1},      // lone denormal carries all mass
		{[]float64{5e-324, 5e-324}, 1},    // denormal-only tree
		{[]float64{1e-308, 0, 1e-308}, 2}, // subnormal-adjacent magnitudes
	}
	for _, c := range cases {
		tr := New(c.weights)
		if got := tr.Find(tr.Total()); got != c.want {
			t.Errorf("weights %v: Find(Total=%v) = %d want %d", c.weights, tr.Total(), got, c.want)
		}
		// Just past Total must clamp identically.
		if got := tr.Find(tr.Total() * 2); got != c.want {
			t.Errorf("weights %v: Find(2*Total) = %d want %d", c.weights, got, c.want)
		}
	}
}

// TestSampleNeverReturnsZeroWeight drives Sample and Find with
// adversarial weight mixes (zeros, denormals, huge dynamic range,
// post-Set drift) and asserts the returned index always carries
// positive weight.
func TestSampleNeverReturnsZeroWeight(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 50000; trial++ {
		n := r.Intn(20) + 1
		weights := make([]float64, n)
		for i := range weights {
			switch r.Intn(4) {
			case 0: // stays zero
			case 1:
				weights[i] = 5e-324 * float64(r.Intn(3))
			case 2:
				weights[i] = r.Float64() * 1e-300
			default:
				weights[i] = r.Float64()
			}
		}
		tr := New(weights)
		// Random Sets to accumulate incremental-update drift.
		for k := r.Intn(8); k > 0; k-- {
			i := r.Intn(n)
			w := 0.0
			if r.Bernoulli(0.5) {
				w = r.Float64()
			}
			weights[i] = w
			tr.Set(i, w)
		}
		if tr.Total() <= 0 {
			continue
		}
		targets := []float64{
			tr.Total(),
			math.Nextafter(tr.Total(), 0),
			r.Float64() * tr.Total(),
		}
		for _, target := range targets {
			i := tr.Find(target)
			if i < 0 || i >= n || weights[i] <= 0 {
				t.Fatalf("trial %d: Find(%v) over %v = %d (weight %v)",
					trial, target, weights, i, tr.Weight(i))
			}
		}
		if i := tr.Sample(r); weights[i] <= 0 {
			t.Fatalf("trial %d: Sample over %v = zero-weight index %d", trial, weights, i)
		}
	}
}

func TestNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative weight")
		}
	}()
	New([]float64{1, -1})
}

func TestEmptySamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic sampling zero-total tree")
		}
	}()
	New([]float64{0, 0}).Sample(rng.New(1))
}

func BenchmarkSampleAndSet(b *testing.B) {
	r := rng.New(1)
	weights := make([]float64, 14000) // the paper's 14K-edge graph scale
	for i := range weights {
		weights[i] = r.Float64()
	}
	tr := New(weights)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := tr.Sample(r)
		tr.Set(j, 1-tr.Weight(j))
	}
}
