package fenwick

import (
	"math"
	"testing"
	"testing/quick"

	"infoflow/internal/rng"
)

func TestBuildAndPrefixSums(t *testing.T) {
	tr := New([]float64{1, 2, 3, 4})
	if tr.Total() != 10 {
		t.Fatalf("total = %v", tr.Total())
	}
	wants := []float64{1, 3, 6, 10}
	for i, w := range wants {
		if got := tr.PrefixSum(i); got != w {
			t.Fatalf("prefix(%d) = %v want %v", i, got, w)
		}
	}
}

func TestSetUpdates(t *testing.T) {
	tr := New([]float64{1, 1, 1})
	tr.Set(1, 5)
	if tr.Total() != 7 {
		t.Fatalf("total = %v", tr.Total())
	}
	if tr.Weight(1) != 5 {
		t.Fatalf("weight = %v", tr.Weight(1))
	}
	if got := tr.PrefixSum(1); got != 6 {
		t.Fatalf("prefix(1) = %v", got)
	}
	tr.Set(1, 0)
	if tr.Total() != 2 || tr.PrefixSum(2) != 2 {
		t.Fatal("zeroing failed")
	}
}

func TestFindBoundaries(t *testing.T) {
	tr := New([]float64{2, 0, 3})
	cases := []struct {
		target float64
		want   int
	}{
		{0, 0}, {1.999, 0}, {2, 2}, {4.999, 2},
	}
	for _, c := range cases {
		if got := tr.Find(c.target); got != c.want {
			t.Errorf("Find(%v) = %d want %d", c.target, got, c.want)
		}
	}
	// Roundoff overshoot clamps to last positive index.
	if got := tr.Find(5.0); got != 2 {
		t.Errorf("Find(total) = %d", got)
	}
}

func TestSampleDistribution(t *testing.T) {
	r := rng.New(7)
	weights := []float64{1, 0, 3, 6}
	tr := New(weights)
	const trials = 200000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[tr.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[1])
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency %v want %v", i, got, want)
		}
	}
}

func TestSampleAfterUpdates(t *testing.T) {
	r := rng.New(8)
	tr := New([]float64{1, 1, 1, 1})
	tr.Set(0, 0)
	tr.Set(3, 2)
	const trials = 100000
	counts := make([]int, 4)
	for i := 0; i < trials; i++ {
		counts[tr.Sample(r)]++
	}
	if counts[0] != 0 {
		t.Fatal("sampled zeroed index")
	}
	if got := float64(counts[3]) / trials; math.Abs(got-0.5) > 0.01 {
		t.Errorf("index 3 frequency = %v", got)
	}
}

func TestPrefixSumMatchesNaive(t *testing.T) {
	err := quick.Check(func(seed uint16, nRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := int(nRaw%64) + 1
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = r.Float64() * 10
		}
		tr := New(weights)
		// Random updates.
		for k := 0; k < 10; k++ {
			i := r.Intn(n)
			w := r.Float64() * 5
			weights[i] = w
			tr.Set(i, w)
		}
		sum := 0.0
		for i, w := range weights {
			sum += w
			if math.Abs(tr.PrefixSum(i)-sum) > 1e-9 {
				return false
			}
		}
		return math.Abs(tr.Total()-sum) < 1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFindIsInverseOfPrefixSum(t *testing.T) {
	err := quick.Check(func(seed uint16, nRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := int(nRaw%32) + 1
		weights := make([]float64, n)
		for i := range weights {
			if r.Bernoulli(0.7) {
				weights[i] = r.Float64()*4 + 0.01
			}
		}
		tr := New(weights)
		if tr.Total() <= 0 {
			return true
		}
		for k := 0; k < 20; k++ {
			target := r.Float64() * tr.Total()
			i := tr.Find(target)
			// Invariant: prefix(i-1) <= target < prefix(i), with weight>0.
			if weights[i] <= 0 {
				return false
			}
			lo := 0.0
			if i > 0 {
				lo = tr.PrefixSum(i - 1)
			}
			if !(lo <= target+1e-9 && target < tr.PrefixSum(i)+1e-9) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative weight")
		}
	}()
	New([]float64{1, -1})
}

func TestEmptySamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic sampling zero-total tree")
		}
	}()
	New([]float64{0, 0}).Sample(rng.New(1))
}

func BenchmarkSampleAndSet(b *testing.B) {
	r := rng.New(1)
	weights := make([]float64, 14000) // the paper's 14K-edge graph scale
	for i := range weights {
		weights[i] = r.Float64()
	}
	tr := New(weights)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := tr.Sample(r)
		tr.Set(j, 1-tr.Weight(j))
	}
}
