package dist

import (
	"testing"

	"infoflow/internal/rng"
)

func TestKSSameDistributionSmall(t *testing.T) {
	r := rng.New(60)
	d := NewBeta(3, 5)
	xs := make([]float64, 5000)
	ys := make([]float64, 5000)
	for i := range xs {
		xs[i] = d.Sample(r)
		ys[i] = d.Sample(r)
	}
	ks, err := KSStatistic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Critical value at alpha=0.001 for n=m=5000 is ~0.039.
	if ks > 0.04 {
		t.Errorf("same-distribution KS = %v", ks)
	}
}

func TestKSDifferentDistributionsLarge(t *testing.T) {
	r := rng.New(61)
	a := NewBeta(2, 8)
	b := NewBeta(8, 2)
	xs := make([]float64, 3000)
	ys := make([]float64, 3000)
	for i := range xs {
		xs[i] = a.Sample(r)
		ys[i] = b.Sample(r)
	}
	ks, err := KSStatistic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if ks < 0.5 {
		t.Errorf("disjoint-ish distributions KS = %v", ks)
	}
}

func TestKSExactSmallCase(t *testing.T) {
	// xs = {1}, ys = {2}: CDFs differ by 1 between the points.
	ks, err := KSStatistic([]float64{1}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if ks != 1 {
		t.Errorf("KS = %v want 1", ks)
	}
	ks, err = KSStatistic([]float64{1, 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ks != 0 {
		t.Errorf("identical samples KS = %v", ks)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KSStatistic(nil, []float64{1}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := KSAgainstCDF(nil, func(float64) float64 { return 0 }); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestKSAgainstCDF(t *testing.T) {
	r := rng.New(62)
	d := NewBeta(4, 2)
	xs := make([]float64, 8000)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	ks, err := KSAgainstCDF(xs, d.CDF)
	if err != nil {
		t.Fatal(err)
	}
	// One-sample critical value at alpha=0.001 for n=8000 ~ 0.022.
	if ks > 0.025 {
		t.Errorf("matching CDF KS = %v", ks)
	}
	// Against the wrong CDF the statistic must blow up.
	wrong := NewBeta(1, 6)
	ks, err = KSAgainstCDF(xs, wrong.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if ks < 0.4 {
		t.Errorf("mismatched CDF KS = %v", ks)
	}
}
