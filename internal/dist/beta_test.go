package dist

import (
	"math"
	"testing"
	"testing/quick"

	"infoflow/internal/rng"
)

func TestBetaMoments(t *testing.T) {
	d := NewBeta(3, 7)
	if !almostEqual(d.Mean(), 0.3, 1e-12) {
		t.Errorf("mean = %v", d.Mean())
	}
	wantVar := 3.0 * 7.0 / (100.0 * 11.0)
	if !almostEqual(d.Var(), wantVar, 1e-12) {
		t.Errorf("var = %v want %v", d.Var(), wantVar)
	}
}

func TestBetaMode(t *testing.T) {
	if got := NewBeta(3, 5).Mode(); !almostEqual(got, 2.0/6.0, 1e-12) {
		t.Errorf("mode = %v", got)
	}
	// Degenerate shapes fall back to the mean.
	if got := NewBeta(1, 5).Mode(); !almostEqual(got, NewBeta(1, 5).Mean(), 1e-12) {
		t.Errorf("fallback mode = %v", got)
	}
}

func TestBetaPDFIntegratesToOne(t *testing.T) {
	for _, d := range []Beta{NewBeta(1, 1), NewBeta(2, 5), NewBeta(9, 3), NewBeta(0.5, 0.5)} {
		// Trapezoidal integration, excluding singular endpoints for
		// shapes < 1.
		const n = 200000
		sum := 0.0
		for i := 1; i < n; i++ {
			x := float64(i) / n
			sum += d.PDF(x)
		}
		integral := sum / n
		if math.Abs(integral-1) > 0.01 {
			t.Errorf("%v integrates to %v", d, integral)
		}
	}
}

func TestBetaPDFMatchesCDFDerivative(t *testing.T) {
	d := NewBeta(4, 6)
	const h = 1e-6
	for _, x := range []float64{0.2, 0.5, 0.8} {
		numeric := (d.CDF(x+h) - d.CDF(x-h)) / (2 * h)
		if !almostEqual(numeric, d.PDF(x), 1e-4) {
			t.Errorf("pdf(%v) = %v, cdf slope %v", x, d.PDF(x), numeric)
		}
	}
}

func TestBetaSampleMoments(t *testing.T) {
	r := rng.New(21)
	for _, d := range []Beta{NewBeta(2, 2), NewBeta(1, 9), NewBeta(16, 4), NewBeta(0.5, 1.5)} {
		const n = 100000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = d.Sample(r)
			if xs[i] < 0 || xs[i] > 1 {
				t.Fatalf("%v sample out of range: %v", d, xs[i])
			}
		}
		s := Summarize(xs)
		if math.Abs(s.Mean-d.Mean()) > 0.01 {
			t.Errorf("%v sample mean = %v want %v", d, s.Mean, d.Mean())
		}
		if math.Abs(s.Variance-d.Var()) > 0.005 {
			t.Errorf("%v sample var = %v want %v", d, s.Variance, d.Var())
		}
	}
}

func TestBetaSampleMatchesCDF(t *testing.T) {
	// Kolmogorov-Smirnov style check: empirical CDF close to analytic.
	r := rng.New(22)
	d := NewBeta(5, 2)
	const n = 50000
	for _, x := range []float64{0.3, 0.6, 0.8, 0.95} {
		count := 0
		rr := rng.New(22)
		_ = r
		for i := 0; i < n; i++ {
			if d.Sample(rr) <= x {
				count++
			}
		}
		emp := float64(count) / n
		if math.Abs(emp-d.CDF(x)) > 0.01 {
			t.Errorf("empirical CDF(%v) = %v, analytic %v", x, emp, d.CDF(x))
		}
	}
}

func TestBetaConfidenceInterval(t *testing.T) {
	d := NewBeta(10, 30)
	lo, hi := d.ConfidenceInterval(0.95)
	if lo >= hi {
		t.Fatalf("lo %v >= hi %v", lo, hi)
	}
	if !almostEqual(d.CDF(hi)-d.CDF(lo), 0.95, 1e-6) {
		t.Errorf("interval mass = %v", d.CDF(hi)-d.CDF(lo))
	}
	mean := d.Mean()
	if mean < lo || mean > hi {
		t.Errorf("mean %v outside CI [%v,%v]", mean, lo, hi)
	}
}

func TestBetaObserve(t *testing.T) {
	d := Uniform()
	d = d.Observe(true).Observe(true).Observe(false)
	if d.Alpha != 3 || d.Beta != 2 {
		t.Fatalf("got %v, want Beta(3,2)", d)
	}
	d2 := Uniform().ObserveCounts(2, 1)
	if d2 != d {
		t.Fatalf("ObserveCounts mismatch: %v vs %v", d2, d)
	}
}

func TestFitBetaMomentsRoundTrip(t *testing.T) {
	err := quick.Check(func(ar, br uint16) bool {
		a := float64(ar%200)/10 + 0.5
		b := float64(br%200)/10 + 0.5
		orig := NewBeta(a, b)
		fit := FitBetaMoments(orig.Mean(), orig.Var())
		return almostEqual(fit.Alpha, a, 1e-6) && almostEqual(fit.Beta, b, 1e-6)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFitBetaMomentsDegenerate(t *testing.T) {
	// Excessive variance and zero variance must still produce valid shapes.
	for _, c := range []struct{ m, v float64 }{
		{0.5, 0.9}, {0.5, 0}, {0, 0.1}, {1, 0.1}, {0.3, 0.3},
	} {
		d := FitBetaMoments(c.m, c.v)
		if d.Alpha <= 0 || d.Beta <= 0 || math.IsNaN(d.Alpha) || math.IsNaN(d.Beta) {
			t.Errorf("FitBetaMoments(%v,%v) = %v invalid", c.m, c.v, d)
		}
	}
}

func TestNewBetaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBeta(0,1) did not panic")
		}
	}()
	NewBeta(0, 1)
}

func TestBetaQuantileMedianOfSymmetric(t *testing.T) {
	for _, a := range []float64{1, 2, 8, 50} {
		d := NewBeta(a, a)
		if got := d.Quantile(0.5); !almostEqual(got, 0.5, 1e-9) {
			t.Errorf("median of Beta(%v,%v) = %v", a, a, got)
		}
	}
}

func TestBetaLogPDFEdges(t *testing.T) {
	if v := NewBeta(2, 2).LogPDF(0); !math.IsInf(v, -1) {
		t.Errorf("logpdf(0) for alpha>1 = %v", v)
	}
	if v := NewBeta(1, 1).LogPDF(0); v != 0 {
		t.Errorf("uniform logpdf(0) = %v", v)
	}
	if v := NewBeta(2, 2).LogPDF(-0.1); !math.IsInf(v, -1) {
		t.Errorf("logpdf outside support = %v", v)
	}
}
