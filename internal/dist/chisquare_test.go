package dist

import (
	"math"
	"testing"
)

// Closed forms: P(1, x) = 1 - e^{-x}; P(0.5, x) = erf(sqrt(x));
// Q(k, x) for integer k is the Poisson tail e^{-x} Σ_{j<k} x^j/j!.
func TestRegIncGammaClosedForms(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 1, 1.9, 2.1, 5, 12} {
		if got, want := RegIncGammaLower(1, x), 1-math.Exp(-x); math.Abs(got-want) > 1e-13 {
			t.Errorf("P(1, %v) = %.16g, want %.16g", x, got, want)
		}
		if got, want := RegIncGammaLower(0.5, x), math.Erf(math.Sqrt(x)); math.Abs(got-want) > 1e-13 {
			t.Errorf("P(0.5, %v) = %.16g, want %.16g", x, got, want)
		}
		for _, k := range []int{2, 3, 7, 15} {
			tail, term := 0.0, math.Exp(-x)
			for j := 0; j < k; j++ {
				tail += term
				term *= x / float64(j+1)
			}
			if got := RegIncGammaUpper(float64(k), x); math.Abs(got-tail) > 1e-13 {
				t.Errorf("Q(%d, %v) = %.16g, want %.16g", k, x, got, tail)
			}
		}
	}
}

// Recurrence P(a, x) - P(a+1, x) = x^a e^{-x} / Γ(a+1) ties the series
// and continued-fraction branches together across the switch point.
func TestRegIncGammaRecurrence(t *testing.T) {
	for _, a := range []float64{0.3, 1.7, 2.5, 10, 49.5, 100} {
		for _, x := range []float64{0.2, a / 2, a, a + 0.999, a + 1.001, 2 * a, 5 * a} {
			lhs := RegIncGammaLower(a, x) - RegIncGammaLower(a+1, x)
			rhs := math.Exp(a*math.Log(x) - x - LogGamma(a+1))
			if math.Abs(lhs-rhs) > 1e-12 {
				t.Errorf("recurrence off at a=%v x=%v: %v vs %v", a, x, lhs, rhs)
			}
		}
	}
}

func TestRegIncGammaBounds(t *testing.T) {
	if got := RegIncGammaLower(3, 0); got != 0 {
		t.Errorf("P(3, 0) = %v, want 0", got)
	}
	if got := RegIncGammaUpper(3, 0); got != 1 {
		t.Errorf("Q(3, 0) = %v, want 1", got)
	}
	// Complementarity across the series/fraction switch point.
	for _, a := range []float64{0.5, 1, 2, 5, 17, 100} {
		for _, x := range []float64{0.1, a, a + 0.999, a + 1.001, 3 * a, 10 * a} {
			p, q := RegIncGammaLower(a, x), RegIncGammaUpper(a, x)
			if math.Abs(p+q-1) > 1e-12 {
				t.Errorf("P+Q = %v at a=%v x=%v", p+q, a, x)
			}
			if p < 0 || p > 1 || q < 0 || q > 1 {
				t.Errorf("out of [0,1]: P=%v Q=%v at a=%v x=%v", p, q, a, x)
			}
		}
	}
	// Monotone in x.
	prev := -1.0
	for x := 0.0; x < 30; x += 0.25 {
		p := RegIncGammaLower(4, x)
		if p < prev {
			t.Fatalf("P(4, x) not monotone at x=%v", x)
		}
		prev = p
	}
}

func TestChiSquareSurvival(t *testing.T) {
	// Even df has the Poisson-sum closed form
	// Pr[X >= x] = e^{-x/2} Σ_{j<df/2} (x/2)^j / j!.
	for _, df := range []int{2, 4, 10, 40} {
		for _, x := range []float64{0.5, 2, float64(df), 2 * float64(df), 5 * float64(df)} {
			h := x / 2
			tail, term := 0.0, math.Exp(-h)
			for j := 0; j < df/2; j++ {
				tail += term
				term *= h / float64(j+1)
			}
			if got := ChiSquareSurvival(x, df); math.Abs(got-tail) > 1e-12 {
				t.Errorf("ChiSquareSurvival(%v, %d) = %.12g, want %.12g", x, df, got, tail)
			}
		}
	}
	// df=1 is 2(1 - Φ(sqrt(x))).
	for _, x := range []float64{0.5, 1, 3.841458820694124, 9} {
		want := 2 * (1 - ErfApproxCDF(math.Sqrt(x)))
		if got := ChiSquareSurvival(x, 1); math.Abs(got-want) > 1e-12 {
			t.Errorf("ChiSquareSurvival(%v, 1) = %.12g, want %.12g", x, got, want)
		}
	}
	// The df=1, x=3.8415 critical value is the textbook 5% point.
	if got := ChiSquareSurvival(3.841458820694124, 1); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("5%% critical value survival = %.12g", got)
	}
	if got := ChiSquareSurvival(-1, 3); got != 1 {
		t.Errorf("survival at negative statistic = %v, want 1", got)
	}
}
