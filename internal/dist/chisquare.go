package dist

import (
	"fmt"
	"math"
)

// RegIncGammaLower returns the regularized lower incomplete gamma
// function P(a, x) = γ(a, x) / Γ(a), the CDF of a Gamma(a, 1)
// distribution at x. It uses the series expansion for x < a+1 and the
// continued fraction (modified Lentz) otherwise, the standard split that
// keeps both representations rapidly convergent.
func RegIncGammaLower(a, x float64) float64 {
	if a <= 0 {
		//flowlint:invariant documented contract: incomplete-gamma shape parameter must be positive
		panic(fmt.Sprintf("dist: RegIncGammaLower with non-positive shape a=%v", a))
	}
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// RegIncGammaUpper returns the regularized upper incomplete gamma
// function Q(a, x) = 1 - P(a, x), computed directly from whichever
// representation is accurate in the tail (the subtraction 1 - P loses all
// precision when P is within an ulp of 1).
func RegIncGammaUpper(a, x float64) float64 {
	if a <= 0 {
		//flowlint:invariant documented contract: incomplete-gamma shape parameter must be positive
		panic(fmt.Sprintf("dist: RegIncGammaUpper with non-positive shape a=%v", a))
	}
	if x <= 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaCF(a, x)
}

// gammaSeries evaluates P(a, x) by the power series
// γ(a,x) = e^{-x} x^a Σ_{n≥0} x^n Γ(a)/Γ(a+1+n), valid for x < a+1.
func gammaSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-15
	)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < maxIter; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	logPre := -x + a*math.Log(x) - LogGamma(a)
	return sum * math.Exp(logPre)
}

// gammaCF evaluates Q(a, x) by the continued fraction
// Γ(a,x)/Γ(a) = e^{-x} x^a / (x+1-a- 1·(1-a)/(x+3-a- ...)), valid for
// x >= a+1, by the modified Lentz method.
func gammaCF(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-15
		fpmin   = 1e-300
	)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	logPre := -x + a*math.Log(x) - LogGamma(a)
	return math.Exp(logPre) * h
}

// ChiSquareSurvival returns Pr[X >= x] for X ~ chi-square with df
// degrees of freedom: the p-value of an observed chi-square statistic.
// df must be positive; x <= 0 returns 1.
func ChiSquareSurvival(x float64, df int) float64 {
	if df <= 0 {
		//flowlint:invariant documented contract: chi-square degrees of freedom must be positive
		panic(fmt.Sprintf("dist: ChiSquareSurvival with df=%d", df))
	}
	if x <= 0 {
		return 1
	}
	return RegIncGammaUpper(float64(df)/2, x/2)
}
