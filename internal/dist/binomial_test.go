package dist

import (
	"math"
	"testing"
	"testing/quick"

	"infoflow/internal/rng"
)

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, d := range []Binomial{
		NewBinomial(10, 0.3), NewBinomial(1, 0.5), NewBinomial(100, 0.07),
		NewBinomial(50, 0.99), NewBinomial(5, 0), NewBinomial(5, 1),
	} {
		sum := 0.0
		for k := 0; k <= d.N; k++ {
			sum += d.PMF(k)
		}
		if !almostEqual(sum, 1, 1e-10) {
			t.Errorf("%v PMF sums to %v", d, sum)
		}
	}
}

func TestBinomialPMFKnown(t *testing.T) {
	d := NewBinomial(4, 0.5)
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		if got := d.PMF(k); !almostEqual(got, w, 1e-12) {
			t.Errorf("PMF(%d) = %v want %v", k, got, w)
		}
	}
}

func TestBinomialCDFMatchesPMFSum(t *testing.T) {
	err := quick.Check(func(nr uint8, pr uint16) bool {
		n := int(nr%60) + 1
		p := float64(pr%1001) / 1000
		d := NewBinomial(n, p)
		sum := 0.0
		for k := 0; k <= n; k++ {
			sum += d.PMF(k)
			if !almostEqual(d.CDF(k), sum, 1e-8) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBinomialSampleMoments(t *testing.T) {
	r := rng.New(31)
	for _, d := range []Binomial{
		NewBinomial(10, 0.3),   // small-N path
		NewBinomial(500, 0.02), // inversion path, small p
		NewBinomial(500, 0.97), // flipped path
	} {
		const trials = 50000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			k := d.Sample(r)
			if k < 0 || k > d.N {
				t.Fatalf("%v sample out of range: %d", d, k)
			}
			sum += float64(k)
			sumSq += float64(k) * float64(k)
		}
		mean := sum / trials
		variance := sumSq/trials - mean*mean
		if math.Abs(mean-d.Mean()) > 0.05*math.Max(1, d.Mean()) {
			t.Errorf("%v sample mean = %v want %v", d, mean, d.Mean())
		}
		if math.Abs(variance-d.Var()) > 0.1*math.Max(1, d.Var()) {
			t.Errorf("%v sample var = %v want %v", d, variance, d.Var())
		}
	}
}

func TestBinomialDegenerate(t *testing.T) {
	r := rng.New(32)
	if k := NewBinomial(40, 0).Sample(r); k != 0 {
		t.Errorf("Binomial(40,0) sampled %d", k)
	}
	if k := NewBinomial(40, 1).Sample(r); k != 40 {
		t.Errorf("Binomial(40,1) sampled %d", k)
	}
	if v := NewBinomial(5, 0).LogPMF(0); v != 0 {
		t.Errorf("logpmf = %v", v)
	}
	if v := NewBinomial(5, 0).LogPMF(1); !math.IsInf(v, -1) {
		t.Errorf("logpmf = %v", v)
	}
}

func TestBinomialValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBinomial(-1, 0.5) },
		func() { NewBinomial(5, -0.1) },
		func() { NewBinomial(5, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBinomialTwoSidedPValue(t *testing.T) {
	d := NewBinomial(1000, 0.5)
	// At the mean the test must not reject.
	if p := d.TwoSidedPValue(500); p < 0.9 {
		t.Errorf("p-value at mean = %v, want ~1", p)
	}
	// Far tails are decisively rejected.
	if p := d.TwoSidedPValue(400); p > 1e-8 {
		t.Errorf("p-value at 400 = %v, want < 1e-8", p)
	}
	if p := d.TwoSidedPValue(600); p > 1e-8 {
		t.Errorf("p-value at 600 = %v, want < 1e-8", p)
	}
	// Symmetric distribution: symmetric counts get equal p-values.
	if a, b := d.TwoSidedPValue(470), d.TwoSidedPValue(530); math.Abs(a-b) > 1e-9 {
		t.Errorf("asymmetric p-values %v vs %v", a, b)
	}
	// Monotone decreasing away from the mean.
	prev := 1.1
	for _, k := range []int{500, 490, 480, 470, 460, 450} {
		p := d.TwoSidedPValue(k)
		if p > prev {
			t.Errorf("p-value not monotone at k=%d: %v > %v", k, p, prev)
		}
		prev = p
	}
	// Boundary counts stay within [0, 1].
	for _, k := range []int{-1, 0, 1000, 1001} {
		if p := d.TwoSidedPValue(k); p < 0 || p > 1 {
			t.Errorf("p-value at k=%d out of range: %v", k, p)
		}
	}
	// Degenerate distributions: the certain outcome has p-value 1.
	if p := NewBinomial(10, 0).TwoSidedPValue(0); p != 1 {
		t.Errorf("Binomial(10,0) p-value at 0 = %v", p)
	}
	if p := NewBinomial(10, 1).TwoSidedPValue(10); p != 1 {
		t.Errorf("Binomial(10,1) p-value at 10 = %v", p)
	}
	if p := NewBinomial(10, 0).TwoSidedPValue(1); p != 0 {
		t.Errorf("Binomial(10,0) p-value at 1 = %v", p)
	}
}
