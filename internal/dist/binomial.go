package dist

import (
	"fmt"
	"math"

	"infoflow/internal/rng"
)

// Binomial is a Binomial(N, P) distribution: the number of successes in N
// independent Bernoulli(P) trials. The paper's unattributed learner
// replaces a set of Bernoulli variables with one Binomial per evidence
// characteristic (its "summary"), which this type supports.
type Binomial struct {
	N int
	P float64
}

// NewBinomial returns a Binomial distribution, validating parameters.
func NewBinomial(n int, p float64) Binomial {
	if n < 0 {
		//flowlint:invariant documented contract: the trial count must be non-negative
		panic(fmt.Sprintf("dist: Binomial with negative n=%d", n))
	}
	if p < 0 || p > 1 {
		//flowlint:invariant documented contract: the success probability must lie in [0,1]
		panic(fmt.Sprintf("dist: Binomial with p=%v outside [0,1]", p))
	}
	return Binomial{N: n, P: p}
}

// Mean returns N*P.
func (d Binomial) Mean() float64 { return float64(d.N) * d.P }

// Var returns N*P*(1-P).
func (d Binomial) Var() float64 { return float64(d.N) * d.P * (1 - d.P) }

// LogPMF returns ln P(X = k).
func (d Binomial) LogPMF(k int) float64 {
	if k < 0 || k > d.N {
		return math.Inf(-1)
	}
	//flowlint:ignore floatcmp -- exact parameter 0 is a degenerate point mass
	if d.P == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	//flowlint:ignore floatcmp -- exact parameter 1 is a degenerate point mass
	if d.P == 1 {
		if k == d.N {
			return 0
		}
		return math.Inf(-1)
	}
	return LogChoose(d.N, k) + float64(k)*math.Log(d.P) + float64(d.N-k)*math.Log1p(-d.P)
}

// PMF returns P(X = k).
func (d Binomial) PMF(k int) float64 { return math.Exp(d.LogPMF(k)) }

// CDF returns P(X <= k) via the regularized incomplete beta identity
// P(X <= k) = I_{1-p}(n-k, k+1).
func (d Binomial) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= d.N {
		return 1
	}
	//flowlint:ignore floatcmp -- exact parameter 0 is a degenerate point mass
	if d.P == 0 {
		return 1
	}
	//flowlint:ignore floatcmp -- exact parameter 1 is a degenerate point mass
	if d.P == 1 {
		return 0
	}
	return RegIncBeta(1-d.P, float64(d.N-k), float64(k+1))
}

// TwoSidedPValue returns the exact two-sided tail probability of
// observing a count at least as extreme as k under d: 2·min(P(X≤k),
// P(X≥k)), capped at 1. Small values are evidence that the observed
// count was not drawn from d; the statistical tolerance bands in
// internal/testkit are built on this measure, so sampler conformance
// failures mean significant disagreement rather than a tripped epsilon.
func (d Binomial) TwoSidedPValue(k int) float64 {
	lo := d.CDF(k)
	hi := 1 - d.CDF(k-1)
	p := 2 * math.Min(lo, hi)
	if p > 1 {
		return 1
	}
	return p
}

// Sample draws one variate. For small N it sums Bernoulli trials; for
// large N it uses CDF inversion from a uniform via sequential search
// starting at the mode, which is O(sqrt(N*P*(1-P))) expected steps.
func (d Binomial) Sample(r *rng.RNG) int {
	if d.N <= 32 {
		k := 0
		for i := 0; i < d.N; i++ {
			if r.Bernoulli(d.P) {
				k++
			}
		}
		return k
	}
	// Inversion by sequential search over the PMF recurrence, starting at 0
	// when p is small (mass concentrated low) and with the complement when
	// p is large, to bound the expected number of steps.
	if d.P > 0.5 {
		flipped := Binomial{N: d.N, P: 1 - d.P}
		return d.N - flipped.Sample(r)
	}
	u := r.Float64()
	// pmf(0) = (1-p)^n computed in log space to avoid underflow.
	logPMF := float64(d.N) * math.Log1p(-d.P)
	pmf := math.Exp(logPMF)
	cdf := pmf
	k := 0
	for u > cdf && k < d.N {
		// pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p)
		pmf *= float64(d.N-k) / float64(k+1) * d.P / (1 - d.P)
		k++
		cdf += pmf
		//flowlint:ignore floatcmp -- exact underflow to zero terminates the tail recurrence
		if pmf == 0 {
			// Deep underflow in an extreme tail; remaining mass is
			// negligible, accept current k.
			break
		}
	}
	return k
}

// String implements fmt.Stringer.
func (d Binomial) String() string {
	return fmt.Sprintf("Binomial(%d, %.4g)", d.N, d.P)
}
