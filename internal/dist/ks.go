package dist

import (
	"fmt"
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic: the
// maximum absolute difference between the empirical CDFs of xs and ys.
// It quantifies how close two sampled distributions are — used by the
// Figure 3 style comparisons between nested-MH flow distributions and
// empirical betas.
func KSStatistic(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, fmt.Errorf("dist: KS needs non-empty samples")
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var i, j int
	maxDiff := 0.0
	for i < len(a) && j < len(b) {
		var step float64
		if a[i] <= b[j] {
			step = a[i]
		} else {
			step = b[j]
		}
		for i < len(a) && a[i] <= step {
			i++
		}
		for j < len(b) && b[j] <= step {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if diff > maxDiff {
			maxDiff = diff
		}
	}
	return maxDiff, nil
}

// KSAgainstCDF returns the one-sample KS statistic of xs against an
// analytic CDF.
func KSAgainstCDF(xs []float64, cdf func(float64) float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("dist: KS needs a non-empty sample")
	}
	a := append([]float64(nil), xs...)
	sort.Float64s(a)
	n := float64(len(a))
	maxDiff := 0.0
	for i, x := range a {
		f := cdf(x)
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		if lo > maxDiff {
			maxDiff = lo
		}
		if hi > maxDiff {
			maxDiff = hi
		}
	}
	return maxDiff, nil
}
