package dist

import (
	"math"

	"infoflow/internal/rng"
)

// SampleGamma draws a Gamma(shape, 1) variate using the Marsaglia-Tsang
// squeeze method, with the standard boost for shape < 1.
func SampleGamma(r *rng.RNG, shape float64) float64 {
	if shape <= 0 {
		//flowlint:invariant documented contract: the Gamma shape must be positive
		panic("dist: SampleGamma with non-positive shape")
	}
	if shape < 1 {
		// G(a) = G(a+1) * U^{1/a}
		u := r.Float64()
		//flowlint:ignore floatcmp -- redraws the single exact-zero uniform variate before the power transform
		for u == 0 {
			u = r.Float64()
		}
		return SampleGamma(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Norm()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// GammaLogPDF returns the log density of Gamma(shape, 1) at x.
func GammaLogPDF(x, shape float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return (shape-1)*math.Log(x) - x - LogGamma(shape)
}
