// Package dist implements the probability distributions and special
// functions the infoflow library depends on: Beta (including the
// regularized incomplete beta function and its inverse), Gamma sampling,
// Binomial, and Normal, plus utilities for summarising sample sets.
//
// Everything is implemented on top of the standard library's math package
// only. Accuracy targets are those of the experiments in the paper
// (confidence intervals, likelihoods, quantiles): roughly 1e-10 relative
// error for the special functions over the parameter ranges used
// (alpha, beta in [1, ~10^4]).
package dist

import (
	"fmt"
	"math"
)

// LogGamma returns ln|Γ(x)|.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// LogBeta returns ln B(a,b) = lnΓ(a) + lnΓ(b) − lnΓ(a+b).
func LogBeta(a, b float64) float64 {
	return LogGamma(a) + LogGamma(b) - LogGamma(a+b)
}

// LogChoose returns ln C(n,k) for 0 <= k <= n.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LogGamma(float64(n)+1) - LogGamma(float64(k)+1) - LogGamma(float64(n-k)+1)
}

// RegIncBeta returns the regularized incomplete beta function I_x(a,b),
// which is the CDF of a Beta(a,b) distribution evaluated at x.
//
// It uses the continued-fraction expansion (Numerical Recipes style) with
// the symmetry transformation to keep the fraction convergent.
func RegIncBeta(x, a, b float64) float64 {
	if a <= 0 || b <= 0 {
		//flowlint:invariant documented contract: incomplete-beta shape parameters must be positive
		panic(fmt.Sprintf("dist: RegIncBeta with non-positive shape a=%v b=%v", a, b))
	}
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	logPre := a*math.Log(x) + b*math.Log1p(-x) - LogBeta(a, b)
	if x < (a+1)/(a+b+2) {
		return math.Exp(logPre) * betaCF(x, a, b) / a
	}
	return 1 - math.Exp(logPre)*betaCF(1-x, b, a)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(x, a, b float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-15
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		fm := float64(m)
		// Even step.
		aa := fm * (b - fm) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h
		}
	}
	// The fraction converges in well under maxIter iterations for all the
	// parameter ranges we use; reaching here indicates extreme inputs, and
	// the partial evaluation is still the best available answer.
	return h
}

// InvRegIncBeta returns x such that I_x(a,b) = p, the quantile function of
// a Beta(a,b) distribution. It brackets with bisection and polishes with
// Newton steps on the CDF.
func InvRegIncBeta(p, a, b float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	x := a / (a + b) // start at the mean
	logPre := -LogBeta(a, b)
	for i := 0; i < 200; i++ {
		f := RegIncBeta(x, a, b) - p
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		// Newton step using the beta density as the derivative.
		logPDF := logPre + (a-1)*math.Log(x) + (b-1)*math.Log1p(-x)
		var next float64
		if logPDF > -700 {
			next = x - f/math.Exp(logPDF)
		}
		if !(next > lo && next < hi) || logPDF <= -700 {
			next = (lo + hi) / 2 // bisect when Newton escapes the bracket
		}
		if math.Abs(next-x) < 1e-14 {
			return next
		}
		x = next
	}
	return x
}

// ErfApproxCDF returns the standard normal CDF Φ(x) via math.Erf.
func ErfApproxCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}
