package dist

import (
	"fmt"
	"math"

	"infoflow/internal/rng"
)

// Normal is a Gaussian distribution with the given mean and standard
// deviation. The paper's Figure 10 experiment stores each learned edge
// probability as a (mean, stddev) pair and samples edge probabilities from
// the corresponding normal, truncated to [0,1]; SampleUnit provides that.
type Normal struct {
	Mu    float64
	Sigma float64
}

// NewNormal returns a Normal distribution, validating sigma >= 0.
func NewNormal(mu, sigma float64) Normal {
	if sigma < 0 || math.IsNaN(sigma) {
		//flowlint:invariant documented contract: sigma must be non-negative and finite
		panic(fmt.Sprintf("dist: Normal with invalid sigma=%v", sigma))
	}
	return Normal{Mu: mu, Sigma: sigma}
}

// Mean returns mu.
func (d Normal) Mean() float64 { return d.Mu }

// Var returns sigma².
func (d Normal) Var() float64 { return d.Sigma * d.Sigma }

// LogPDF returns the log density at x.
func (d Normal) LogPDF(x float64) float64 {
	//flowlint:ignore floatcmp -- exact sigma 0 is a degenerate point mass
	if d.Sigma == 0 {
		//flowlint:ignore floatcmp -- a point mass has infinite density exactly at its mean
		if x == d.Mu {
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	z := (x - d.Mu) / d.Sigma
	return -0.5*z*z - math.Log(d.Sigma) - 0.5*math.Log(2*math.Pi)
}

// PDF returns the density at x.
func (d Normal) PDF(x float64) float64 { return math.Exp(d.LogPDF(x)) }

// CDF returns P(X <= x).
func (d Normal) CDF(x float64) float64 {
	//flowlint:ignore floatcmp -- exact sigma 0 is a degenerate point mass
	if d.Sigma == 0 {
		if x < d.Mu {
			return 0
		}
		return 1
	}
	return ErfApproxCDF((x - d.Mu) / d.Sigma)
}

// Sample draws one variate.
func (d Normal) Sample(r *rng.RNG) float64 {
	return d.Mu + d.Sigma*r.Norm()
}

// SampleUnit draws a variate clamped to [0,1], the gaussian edge
// probability approximation used for Figure 10.
func (d Normal) SampleUnit(r *rng.RNG) float64 {
	v := d.Sample(r)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// String implements fmt.Stringer.
func (d Normal) String() string {
	return fmt.Sprintf("Normal(%.4g, %.4g)", d.Mu, d.Sigma)
}
