package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestLogBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{1, 1, 0},                 // B(1,1)=1
		{2, 2, math.Log(1.0 / 6)}, // B(2,2)=1/6
		{5, 1, math.Log(1.0 / 5)}, // B(5,1)=1/5
		{2, 3, math.Log(1.0 / 12)},
		{0.5, 0.5, math.Log(math.Pi)}, // B(1/2,1/2)=pi
	}
	for _, c := range cases {
		if got := LogBeta(c.a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("LogBeta(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := LogChoose(c.n, c.k); !almostEqual(got, c.want, 1e-10) {
			t.Errorf("LogChoose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("LogChoose out of range should be -Inf")
	}
}

func TestRegIncBetaBoundaries(t *testing.T) {
	if got := RegIncBeta(0, 2, 3); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := RegIncBeta(1, 2, 3); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
}

func TestRegIncBetaUniform(t *testing.T) {
	// Beta(1,1) CDF is the identity.
	for _, x := range []float64{0.1, 0.25, 0.5, 0.77, 0.99} {
		if got := RegIncBeta(x, 1, 1); !almostEqual(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// Beta(2,1) CDF is x^2; Beta(1,2) CDF is 1-(1-x)^2 = 2x - x^2.
	for _, x := range []float64{0.1, 0.3, 0.5, 0.9} {
		if got := RegIncBeta(x, 2, 1); !almostEqual(got, x*x, 1e-12) {
			t.Errorf("I_%v(2,1) = %v, want %v", x, got, x*x)
		}
		want := 2*x - x*x
		if got := RegIncBeta(x, 1, 2); !almostEqual(got, want, 1e-12) {
			t.Errorf("I_%v(1,2) = %v, want %v", x, got, want)
		}
	}
	// Symmetric case: I_0.5(a,a) = 0.5 for any a.
	for _, a := range []float64{0.5, 1, 3, 17, 200} {
		if got := RegIncBeta(0.5, a, a); !almostEqual(got, 0.5, 1e-10) {
			t.Errorf("I_0.5(%v,%v) = %v", a, a, got)
		}
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a)
	err := quick.Check(func(xr, ar, br uint16) bool {
		x := float64(xr%999+1) / 1000
		a := float64(ar%500)/10 + 0.1
		b := float64(br%500)/10 + 0.1
		lhs := RegIncBeta(x, a, b)
		rhs := 1 - RegIncBeta(1-x, b, a)
		return almostEqual(lhs, rhs, 1e-9)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaMonotone(t *testing.T) {
	for _, shapes := range [][2]float64{{2, 5}, {0.7, 0.7}, {30, 4}, {100, 100}} {
		prev := -1.0
		for x := 0.0; x <= 1.0001; x += 0.01 {
			v := RegIncBeta(math.Min(x, 1), shapes[0], shapes[1])
			if v < prev-1e-12 {
				t.Fatalf("CDF not monotone at x=%v for shapes %v", x, shapes)
			}
			prev = v
		}
	}
}

func TestInvRegIncBetaRoundTrip(t *testing.T) {
	err := quick.Check(func(pr, ar, br uint16) bool {
		p := float64(pr%998+1) / 1000
		a := float64(ar%300)/10 + 0.2
		b := float64(br%300)/10 + 0.2
		x := InvRegIncBeta(p, a, b)
		if x < 0 || x > 1 {
			return false
		}
		// 1e-6 rather than 1e-8: for shapes < 1 the density is singular
		// at the endpoints, so near x≈0 or x≈1 an ulp-accurate quantile
		// still round-trips with p-space error of ~1e-7 (e.g. p=0.99,
		// a=17.1, b=0.2 puts x within 4e-12 of 1 and back-maps 2e-8
		// off). A genuinely broken inverse misses by far more.
		return almostEqual(RegIncBeta(x, a, b), p, 1e-6)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvRegIncBetaBoundaries(t *testing.T) {
	if InvRegIncBeta(0, 3, 4) != 0 {
		t.Error("quantile(0) != 0")
	}
	if InvRegIncBeta(1, 3, 4) != 1 {
		t.Error("quantile(1) != 1")
	}
}

func TestRegIncBetaLargeShapes(t *testing.T) {
	// With huge symmetric shapes, mass concentrates at 0.5.
	if got := RegIncBeta(0.49, 5000, 5000); got > 0.05 {
		t.Errorf("I_0.49(5000,5000) = %v, want near 0", got)
	}
	if got := RegIncBeta(0.51, 5000, 5000); got < 0.95 {
		t.Errorf("I_0.51(5000,5000) = %v, want near 1", got)
	}
}

func TestErfApproxCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := ErfApproxCDF(c.x); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Phi(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}
