package dist

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample set. It is the common
// currency between the samplers (which produce slices of flow
// probabilities, impact counts, etc.) and the experiment reports.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator)
	Min, Max float64
}

// Summarize computes a Summary of xs. An empty slice yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
	}
	return s
}

// StdDev returns the sample standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance) }

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.N == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.N))
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev(), s.Min, s.Max)
}

// Quantile returns the p-quantile of xs by linear interpolation on the
// sorted sample. xs is not modified. It panics on an empty slice.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		//flowlint:invariant documented contract: the quantile of an empty sample is undefined
		panic("dist: Quantile of empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// Quantiles returns the quantiles of xs at each of ps, sorting once.
func Quantiles(xs []float64, ps ...float64) []float64 {
	if len(xs) == 0 {
		//flowlint:invariant documented contract: the quantile of an empty sample is undefined
		panic("dist: Quantiles of empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = quantileSorted(sorted, p)
	}
	return out
}

func quantileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FitBetaToSamples fits a Beta distribution to samples in [0,1] by the
// method of moments, the construction used for the dashed curve in the
// paper's Figure 3. A sample set whose moments come out non-finite — a
// NaN or ±Inf entry from a failed upstream estimate is enough — fits
// the uninformative Uniform() prior rather than NaN shapes (the guard
// lives in FitBetaMoments).
func FitBetaToSamples(xs []float64) Beta {
	s := Summarize(xs)
	if s.N < 2 {
		return Uniform()
	}
	return FitBetaMoments(s.Mean, s.Variance)
}

// Histogram counts xs into nBins equal-width bins over [lo,hi]. Values
// outside the range are clamped into the end bins. It returns the counts
// and the bin edges (nBins+1 values).
func Histogram(xs []float64, lo, hi float64, nBins int) (counts []int, edges []float64) {
	if nBins <= 0 {
		//flowlint:invariant documented contract: the bin count must be positive
		panic("dist: Histogram with non-positive bin count")
	}
	if hi <= lo {
		//flowlint:invariant documented contract: the histogram range must be non-empty
		panic("dist: Histogram with empty range")
	}
	counts = make([]int, nBins)
	edges = make([]float64, nBins+1)
	width := (hi - lo) / float64(nBins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= nBins {
			b = nBins - 1
		}
		counts[b]++
	}
	return counts, edges
}

// IntHistogram counts non-negative integers into unit-width bins
// [0..max], used for the paper's Figure 4 retweet-count histograms.
func IntHistogram(xs []int) []int {
	maxV := 0
	for _, x := range xs {
		if x < 0 {
			//flowlint:invariant documented contract: IntHistogram takes non-negative values
			panic("dist: IntHistogram with negative value")
		}
		if x > maxV {
			maxV = x
		}
	}
	counts := make([]int, maxV+1)
	for _, x := range xs {
		counts[x]++
	}
	return counts
}
