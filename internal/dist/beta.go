package dist

import (
	"fmt"
	"math"

	"infoflow/internal/rng"
)

// Beta is a Beta(Alpha, Beta) distribution on [0,1]. In the paper, a beta
// distribution on each edge of a betaICM captures both the activation
// probability estimate (its mean) and the uncertainty of that estimate
// (its spread).
type Beta struct {
	Alpha, Beta float64
}

// NewBeta returns a Beta distribution, panicking on non-positive shapes.
func NewBeta(alpha, beta float64) Beta {
	if alpha <= 0 || beta <= 0 {
		//flowlint:invariant documented contract: Beta shapes must be positive
		panic(fmt.Sprintf("dist: Beta shapes must be positive, got (%v,%v)", alpha, beta))
	}
	return Beta{Alpha: alpha, Beta: beta}
}

// Uniform returns the Beta(1,1) distribution, the uninformative prior used
// to initialise betaICM training.
func Uniform() Beta { return Beta{1, 1} }

// Mean returns α/(α+β).
func (d Beta) Mean() float64 { return d.Alpha / (d.Alpha + d.Beta) }

// Var returns the variance αβ/((α+β)²(α+β+1)).
func (d Beta) Var() float64 {
	s := d.Alpha + d.Beta
	return d.Alpha * d.Beta / (s * s * (s + 1))
}

// StdDev returns the standard deviation.
func (d Beta) StdDev() float64 { return math.Sqrt(d.Var()) }

// Mode returns the mode for α,β > 1; for other shapes it returns the mean
// as a stable representative point.
func (d Beta) Mode() float64 {
	if d.Alpha > 1 && d.Beta > 1 {
		return (d.Alpha - 1) / (d.Alpha + d.Beta - 2)
	}
	return d.Mean()
}

// LogPDF returns the log density at x.
func (d Beta) LogPDF(x float64) float64 {
	if x < 0 || x > 1 {
		return math.Inf(-1)
	}
	//flowlint:ignore floatcmp -- exact support boundary gets a closed-form branch
	if x == 0 {
		switch {
		case d.Alpha < 1:
			return math.Inf(1)
		case d.Alpha > 1:
			return math.Inf(-1)
		default: // alpha == 1: density is beta*(1-x)^(beta-1) at 0
			return (d.Beta-1)*math.Log1p(-x) - LogBeta(d.Alpha, d.Beta)
		}
	}
	//flowlint:ignore floatcmp -- exact support boundary gets a closed-form branch
	if x == 1 {
		switch {
		case d.Beta < 1:
			return math.Inf(1)
		case d.Beta > 1:
			return math.Inf(-1)
		default: // beta == 1: density is alpha*x^(alpha-1) at 1
			return -LogBeta(d.Alpha, d.Beta)
		}
	}
	return (d.Alpha-1)*math.Log(x) + (d.Beta-1)*math.Log1p(-x) - LogBeta(d.Alpha, d.Beta)
}

// PDF returns the density at x.
func (d Beta) PDF(x float64) float64 { return math.Exp(d.LogPDF(x)) }

// CDF returns P(X <= x).
func (d Beta) CDF(x float64) float64 { return RegIncBeta(x, d.Alpha, d.Beta) }

// Quantile returns the p-quantile.
func (d Beta) Quantile(p float64) float64 { return InvRegIncBeta(p, d.Alpha, d.Beta) }

// ConfidenceInterval returns the equal-tailed interval containing the
// given probability mass, e.g. level=0.95 gives the central 95% interval
// used throughout the paper's bucket experiments.
func (d Beta) ConfidenceInterval(level float64) (lo, hi float64) {
	tail := (1 - level) / 2
	return d.Quantile(tail), d.Quantile(1 - tail)
}

// Sample draws one variate using two gamma variates: X = G_a/(G_a+G_b).
func (d Beta) Sample(r *rng.RNG) float64 {
	ga := SampleGamma(r, d.Alpha)
	gb := SampleGamma(r, d.Beta)
	//flowlint:ignore floatcmp -- both gamma variates underflowing to exactly zero is the one 0/0 case
	if ga == 0 && gb == 0 {
		return 0.5
	}
	return ga / (ga + gb)
}

// Observe returns the posterior after observing a Bernoulli outcome:
// success increments α, failure increments β. This is exactly step 2 of
// the betaICM training procedure in §II-A of the paper.
func (d Beta) Observe(success bool) Beta {
	if success {
		return Beta{d.Alpha + 1, d.Beta}
	}
	return Beta{d.Alpha, d.Beta + 1}
}

// ObserveCounts returns the posterior after s successes and f failures.
func (d Beta) ObserveCounts(s, f int) Beta {
	return Beta{d.Alpha + float64(s), d.Beta + float64(f)}
}

// FitBetaMoments returns the Beta distribution whose mean and variance
// match the given values (method of moments). The variance must satisfy
// 0 < v < m(1-m); values outside are clamped to the nearest valid shape
// to keep downstream sampling robust on degenerate empirical inputs.
// Non-finite moments (NaN or ±Inf, e.g. propagated from a failed
// upstream estimate) carry no usable shape information and fall back to
// the uninformative Uniform() prior instead of silently yielding NaN
// shapes that poison every downstream quantile and sample.
func FitBetaMoments(mean, variance float64) Beta {
	const minShape = 1e-3
	if math.IsNaN(mean) || math.IsInf(mean, 0) || math.IsNaN(variance) || math.IsInf(variance, 0) {
		return Uniform()
	}
	if mean <= 0 {
		mean = 1e-9
	}
	if mean >= 1 {
		mean = 1 - 1e-9
	}
	maxVar := mean * (1 - mean)
	if variance >= maxVar {
		variance = maxVar * 0.999999
	}
	if variance <= 0 {
		// Nearly a point mass: use a sharp but finite concentration.
		variance = maxVar * 1e-9
	}
	k := mean*(1-mean)/variance - 1
	a := mean * k
	b := (1 - mean) * k
	if a < minShape {
		a = minShape
	}
	if b < minShape {
		b = minShape
	}
	return Beta{a, b}
}

// String implements fmt.Stringer.
func (d Beta) String() string {
	return fmt.Sprintf("Beta(%.4g, %.4g)", d.Alpha, d.Beta)
}
