package dist

import (
	"math"
	"testing"
	"testing/quick"

	"infoflow/internal/rng"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if !almostEqual(s.Variance, 2.5, 1e-12) {
		t.Fatalf("variance = %v", s.Variance)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Variance != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeInvariance(t *testing.T) {
	r := rng.New(41)
	err := quick.Check(func(n uint8) bool {
		m := int(n%50) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Float64()*10 - 5
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Variance >= 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %v", got)
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilesConsistent(t *testing.T) {
	xs := []float64{9, 2, 7, 4, 6, 1}
	qs := Quantiles(xs, 0.1, 0.5, 0.9)
	for i, p := range []float64{0.1, 0.5, 0.9} {
		if qs[i] != Quantile(xs, p) {
			t.Errorf("Quantiles[%d] = %v, Quantile = %v", i, qs[i], Quantile(xs, p))
		}
	}
	if !(qs[0] <= qs[1] && qs[1] <= qs[2]) {
		t.Errorf("quantiles not ordered: %v", qs)
	}
}

func TestFitBetaToSamplesRecovers(t *testing.T) {
	r := rng.New(42)
	truth := NewBeta(6, 14)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = truth.Sample(r)
	}
	fit := FitBetaToSamples(xs)
	if math.Abs(fit.Mean()-truth.Mean()) > 0.01 {
		t.Errorf("fit mean %v, truth %v", fit.Mean(), truth.Mean())
	}
	if math.Abs(fit.Alpha-truth.Alpha) > 1.0 {
		t.Errorf("fit alpha %v, truth %v", fit.Alpha, truth.Alpha)
	}
}

func TestFitBetaToSamplesSmall(t *testing.T) {
	if d := FitBetaToSamples([]float64{0.5}); d != Uniform() {
		t.Errorf("1-sample fit = %v, want uniform", d)
	}
}

// TestFitBetaNonFiniteSamples is the regression for silent NaN
// propagation: one NaN (or infinite) sample used to flow through the
// method of moments into NaN shape parameters, poisoning every
// downstream quantile. Non-finite moments must fall back to Uniform().
func TestFitBetaNonFiniteSamples(t *testing.T) {
	cases := [][]float64{
		{0.3, math.NaN(), 0.5},
		{math.NaN(), math.NaN()},
		{0.2, math.Inf(1), 0.4},
		{0.2, math.Inf(-1), 0.4},
		{math.Inf(1), math.Inf(-1)},
	}
	for _, xs := range cases {
		fit := FitBetaToSamples(xs)
		if math.IsNaN(fit.Alpha) || math.IsNaN(fit.Beta) {
			t.Errorf("samples %v: fit %v has NaN shapes", xs, fit)
		}
		if fit != Uniform() {
			t.Errorf("samples %v: fit = %v, want uniform fallback", xs, fit)
		}
	}
}

// TestFitBetaMomentsNonFinite covers the guard at the moments level.
func TestFitBetaMomentsNonFinite(t *testing.T) {
	cases := []struct{ mean, variance float64 }{
		{math.NaN(), 0.01},
		{0.5, math.NaN()},
		{math.Inf(1), 0.01},
		{math.Inf(-1), 0.01},
		{0.5, math.Inf(1)},
		{math.NaN(), math.NaN()},
	}
	for _, c := range cases {
		if fit := FitBetaMoments(c.mean, c.variance); fit != Uniform() {
			t.Errorf("FitBetaMoments(%v, %v) = %v, want uniform fallback", c.mean, c.variance, fit)
		}
	}
	// Finite moments are unaffected by the guard.
	fit := FitBetaMoments(0.3, 0.01)
	if math.Abs(fit.Mean()-0.3) > 1e-9 {
		t.Errorf("finite fit mean = %v, want 0.3", fit.Mean())
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0.05, 0.15, 0.95, -1, 2}, 0, 1, 10)
	if len(counts) != 10 || len(edges) != 11 {
		t.Fatalf("lengths %d %d", len(counts), len(edges))
	}
	if counts[0] != 2 { // 0.05 and clamped -1
		t.Errorf("bin0 = %d", counts[0])
	}
	if counts[1] != 1 || counts[9] != 2 {
		t.Errorf("counts = %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 5 {
		t.Errorf("total = %d", total)
	}
}

func TestIntHistogram(t *testing.T) {
	h := IntHistogram([]int{0, 0, 3, 1})
	want := []int{2, 1, 0, 1}
	if len(h) != len(want) {
		t.Fatalf("len = %d", len(h))
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("h = %v", h)
		}
	}
}

func TestSummaryStdErr(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	want := s.StdDev() / 2
	if !almostEqual(s.StdErr(), want, 1e-12) {
		t.Errorf("stderr = %v want %v", s.StdErr(), want)
	}
}

func TestGammaSampleMoments(t *testing.T) {
	r := rng.New(43)
	for _, shape := range []float64{0.5, 1, 2.5, 16} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := SampleGamma(r, shape)
			if v < 0 {
				t.Fatalf("negative gamma sample %v", v)
			}
			sum += v
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.05*math.Max(1, shape) {
			t.Errorf("Gamma(%v) sample mean = %v", shape, mean)
		}
	}
}

func TestNormalCDFAndSample(t *testing.T) {
	d := NewNormal(2, 3)
	if !almostEqual(d.CDF(2), 0.5, 1e-12) {
		t.Errorf("CDF at mean = %v", d.CDF(2))
	}
	r := rng.New(44)
	const n = 100000
	sum, inUnit := 0.0, 0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
		u := NewNormal(0.5, 0.2).SampleUnit(r)
		if u >= 0 && u <= 1 {
			inUnit++
		}
	}
	if math.Abs(sum/n-2) > 0.05 {
		t.Errorf("sample mean = %v", sum/n)
	}
	if inUnit != n {
		t.Errorf("SampleUnit out of range %d times", n-inUnit)
	}
}

func TestNormalZeroSigma(t *testing.T) {
	d := NewNormal(0.3, 0)
	if d.CDF(0.2) != 0 || d.CDF(0.4) != 1 {
		t.Error("degenerate CDF wrong")
	}
	r := rng.New(45)
	if v := d.Sample(r); v != 0.3 {
		t.Errorf("degenerate sample = %v", v)
	}
}
