package serve

import (
	"fmt"
	"net/http"
	"testing"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/influence"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
)

// hubICM is the community fixture: hub 0 feeds 1..4 with certain edges,
// 5..9 are a disjoint certain chain 5->6->...->9.
func hubICM() *core.ICM {
	g := graph.New(10)
	for v := 1; v <= 4; v++ {
		g.MustAddEdge(0, graph.NodeID(v))
	}
	for v := 5; v < 9; v++ {
		g.MustAddEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = 1
	}
	return core.MustNewICM(g, p)
}

// TestServerMaximize: the served selection is bit-identical to the
// library call with the same schedule and seed, and a repeat request is
// a cache hit with the identical payload.
func TestServerMaximize(t *testing.T) {
	srv, ts, _ := startServer(t, func(c *Config) {
		c.Models = []Model{{Name: "m", ICM: serveDAG(7, 20, 40)}}
	})
	m := srv.models["m"].ICM

	var resp maximizeResponse
	if status := getJSON(t, ts.URL+"/maximize?k=3&seed=5", &resp); status != http.StatusOK {
		t.Fatalf("status %d: %+v", status, resp)
	}
	if resp.Cached || resp.K != 3 || resp.Seed != 5 {
		t.Fatalf("k/seed/cached = %d/%d/%v, want 3/5/false", resp.K, resp.Seed, resp.Cached)
	}
	chain := mh.DefaultOptions(m.NumEdges())
	chain.Samples = srv.cfg.DefaultSketchSamples
	want, pool, err := influence.Maximize(m, 3, nil, nil,
		influence.SketchOptions{Chain: chain, RootsPerSample: mh.DefaultRootsPerSample}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Seeds) != len(want.Seeds) {
		t.Fatalf("%d seeds, want %d", len(resp.Seeds), len(want.Seeds))
	}
	for i := range want.Seeds {
		if resp.Seeds[i] != int(want.Seeds[i]) || resp.MarginalGains[i] != want.MarginalGains[i] {
			t.Fatalf("seeds/gains %v/%v, want %v/%v (served selection must match the library bit-for-bit)",
				resp.Seeds, resp.MarginalGains, want.Seeds, want.MarginalGains)
		}
	}
	if resp.SpreadEstimate != want.SpreadEstimate {
		t.Errorf("estimate %v, want %v", resp.SpreadEstimate, want.SpreadEstimate)
	}
	if resp.Universe != pool.Universe || resp.RRSets != pool.NumSets {
		t.Errorf("universe/rr_sets %d/%d, want %d/%d", resp.Universe, resp.RRSets, pool.Universe, pool.NumSets)
	}

	var again maximizeResponse
	if status := getJSON(t, ts.URL+"/maximize?k=3&seed=5", &again); status != http.StatusOK {
		t.Fatalf("repeat status %d", status)
	}
	if !again.Cached {
		t.Error("repeat request not served from cache")
	}
	for i := range resp.Seeds {
		if again.Seeds[i] != resp.Seeds[i] || again.MarginalGains[i] != resp.MarginalGains[i] {
			t.Fatalf("cached payload diverged: %v vs %v", again.Seeds, resp.Seeds)
		}
	}
	mm := srv.Metrics()
	if got := mm.MaximizeRequests.Load(); got != 2 {
		t.Errorf("maximize_requests = %d, want 2", got)
	}
	if got := mm.MaximizeSeeds.Load(); got != int64(len(resp.Seeds)) {
		t.Errorf("maximize_seeds = %d, want %d (cache hits must not double-count)", got, len(resp.Seeds))
	}
	if got := mm.MaximizeSketchSets.Load(); got != int64(pool.NumSets) {
		t.Errorf("maximize_rr_sets = %d, want %d", got, pool.NumSets)
	}
	if _, ok := mm.Snapshot()["maximize_requests"]; !ok {
		t.Error("maximize_requests missing from the metrics snapshot")
	}
}

// TestServerMaximizeCommunity: a community target restricts the spread
// universe; permuted and duplicated target lists share one cache line.
func TestServerMaximizeCommunity(t *testing.T) {
	_, ts, _ := startServer(t, func(c *Config) {
		c.Models = []Model{{Name: "m", ICM: hubICM()}}
	})
	var resp maximizeResponse
	if status := getJSON(t, ts.URL+"/maximize?k=1&community=1,2,3,4", &resp); status != http.StatusOK {
		t.Fatalf("status %d: %+v", status, resp)
	}
	if len(resp.Seeds) != 1 || resp.Seeds[0] != 0 {
		t.Fatalf("community seeds = %v, want the hub [0]", resp.Seeds)
	}
	if resp.SpreadEstimate != 4 || resp.Universe != 4 {
		t.Fatalf("estimate/universe = %v/%d, want exactly 4/4 (certain edges)", resp.SpreadEstimate, resp.Universe)
	}
	var again maximizeResponse
	if status := getJSON(t, ts.URL+"/maximize?k=1&community=4,3,2,1,1", &again); status != http.StatusOK {
		t.Fatalf("permuted status %d", status)
	}
	if !again.Cached {
		t.Error("permuted+duplicated community did not hit the canonical cache line")
	}
}

// TestServerMaximizeErrors covers the rejection surface: parameter
// validation (400), unknown models (404), and unsatisfiable flow
// conditions (422).
func TestServerMaximizeErrors(t *testing.T) {
	certain := core.MustNewICM(graph.Path(2), []float64{1})
	_, ts, _ := startServer(t, func(c *Config) {
		c.Models = []Model{
			{Name: "m", ICM: serveDAG(7, 20, 40)},
			{Name: "certain", ICM: certain},
		}
	})
	cases := []struct {
		query  string
		status int
	}{
		{"model=m", http.StatusBadRequest},                               // missing k
		{"model=m&k=0", http.StatusBadRequest},                           // non-positive budget
		{"model=m&k=bogus", http.StatusBadRequest},                       // non-numeric budget
		{"model=m&k=21", http.StatusBadRequest},                          // budget beyond the node count
		{"model=m&k=2&community=99", http.StatusBadRequest},              // target out of range
		{"model=m&k=2&community=+", http.StatusBadRequest},               // malformed target list
		{"model=m&k=2&roots=100", http.StatusBadRequest},                 // roots not a multiple of 64
		{"model=m&k=2&samples=0", http.StatusBadRequest},                 // non-positive samples
		{"model=m&k=2&samples=1000000", http.StatusBadRequest},           // pool over MaxSketchSets
		{"model=m&k=2&cond=0>99=1", http.StatusBadRequest},               // cond node out of range
		{"model=m&k=2&timeout=-1s", http.StatusBadRequest},               // negative deadline
		{"model=nope&k=2", http.StatusNotFound},                          // unknown model
		{"model=certain&k=1&cond=0>1=0", http.StatusUnprocessableEntity}, // p=1 edge, absence required
	}
	for _, tc := range cases {
		var out map[string]any
		if status := getJSON(t, ts.URL+"/maximize?"+tc.query, &out); status != tc.status {
			t.Errorf("%s: status %d, want %d (%v)", tc.query, status, tc.status, out)
		} else if out["error"] == "" {
			t.Errorf("%s: error payload missing", tc.query)
		}
	}
}

// TestServerMaximizeSeedSensitivity: the seed parameter is part of the
// cache identity — different seeds are distinct computations (and may
// legitimately select different sets on a noisy pool).
func TestServerMaximizeSeedSensitivity(t *testing.T) {
	srv, ts, _ := startServer(t, func(c *Config) {
		c.Models = []Model{{Name: "m", ICM: serveDAG(7, 20, 40)}}
	})
	var a, b maximizeResponse
	if status := getJSON(t, ts.URL+"/maximize?k=2&seed=1", &a); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if status := getJSON(t, ts.URL+"/maximize?k=2&seed=2", &b); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if b.Cached {
		t.Error("distinct seeds must not share a cache entry")
	}
	if got := srv.Metrics().MaximizeRequests.Load(); got != 2 {
		t.Errorf("maximize_requests = %d, want 2", got)
	}
	// Guard the key itself, not just behaviour: every varying parameter
	// must appear in the canonical identity.
	q1 := &maximizeQuery{model: srv.models["m"], k: 2, chain: mh.Options{BurnIn: 1, Thin: 2, Samples: 3}, roots: 64, seed: 1}
	q2 := &maximizeQuery{model: srv.models["m"], k: 2, chain: mh.Options{BurnIn: 1, Thin: 2, Samples: 3}, roots: 64, seed: 2}
	if q1.cacheKey() == q2.cacheKey() {
		t.Error("cache key ignores the seed")
	}
	if fmt.Sprint(q1.cacheKey()) == "" {
		t.Error("empty cache key")
	}
}
