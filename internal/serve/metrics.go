package serve

import (
	"expvar"
	"math"
	"sync"
	"sync/atomic"

	"infoflow/internal/graph"
)

// Metrics is the server's operational counter set. Everything is
// atomics, safe to read concurrently with serving; Snapshot assembles
// the derived gauges (occupancy, hit rate) the same way the expvar
// export does.
type Metrics struct {
	// Requests admitted per endpoint (cache hits included).
	FlowRequests      atomic.Int64
	CommunityRequests atomic.Int64
	ImpactRequests    atomic.Int64

	// How /impact requests were answered: by the synchronous analytic
	// sizedist engine or by the batched MH estimator (cache hits count
	// toward the path that filled the entry).
	ImpactAnalytic atomic.Int64
	ImpactSampled  atomic.Int64

	// /maximize traffic: requests admitted (cache hits included), seeds
	// selected by computed (non-cached) selections, and RR sketch sets
	// built for them. MaximizeSketchSets / computed selections is the
	// mean pool size actually served.
	MaximizeRequests   atomic.Int64
	MaximizeSeeds      atomic.Int64
	MaximizeSketchSets atomic.Int64

	CacheHits   atomic.Int64
	CacheMisses atomic.Int64

	// Batches executed, the lane count they carried, and the request
	// count they served. BatchedRequests / Batches is the coalescing
	// ("batch occupancy") figure: how many concurrent requests one chain
	// sweep amortised.
	Batches         atomic.Int64
	BatchedLanes    atomic.Int64
	BatchedRequests atomic.Int64

	// Rejected counts requests refused at admission or flush (queue
	// saturated or server draining); Timeouts counts requests whose
	// deadline expired before their batch delivered; Errors counts
	// batches that failed outright.
	Rejected atomic.Int64
	Timeouts atomic.Int64
	Errors   atomic.Int64

	// Lane-engine sweep dispositions, aggregated across every sampler
	// the batcher has run: each thinned sweep either replays the cached
	// condensation unchanged, repairs it incrementally, or falls back to
	// a full Tarjan rebuild. The replay/repair/rebuild split is the
	// primary health signal for the incremental engine — a rebuild rate
	// creeping up under steady load means the repair preconditions are
	// failing more often than the design budget.
	LaneReplays  atomic.Int64
	LaneRepairs  atomic.Int64
	LaneRebuilds atomic.Int64

	// Rebuild sub-causes worth watching separately: overflow rebuilds
	// mean the flip log capacity is undersized for the configured
	// thinning interval (see mh.Options.FlipLogCap), flush rebuilds are
	// the scheduled dead-component sweeps the engine performs by design.
	LaneOverflowRebuilds atomic.Int64
	LaneFlushRebuilds    atomic.Int64

	// acceptanceBits holds the float64 bits of the most recent batch's
	// post-burn-in Metropolis-Hastings acceptance rate.
	acceptanceBits atomic.Uint64

	// laneBudget mirrors Config.LaneBudget (after rounding); installed
	// by NewServer so utilization can be derived from BatchedLanes.
	laneBudget atomic.Int64

	// queueDepth reports the number of flushed batches waiting for a
	// worker; installed by the batcher.
	queueDepth atomic.Value // func() int
}

// setAcceptance records the most recent chain's post-burn-in acceptance
// rate.
func (m *Metrics) setAcceptance(rate float64) {
	m.acceptanceBits.Store(math.Float64bits(rate))
}

// Acceptance returns the most recent batch's post-burn-in acceptance
// rate (0 before any batch has run).
func (m *Metrics) Acceptance() float64 {
	return math.Float64frombits(m.acceptanceBits.Load())
}

// QueueDepth returns the number of flushed batches waiting for a worker.
func (m *Metrics) QueueDepth() int {
	if f, ok := m.queueDepth.Load().(func() int); ok {
		return f()
	}
	return 0
}

// Occupancy returns the mean number of requests served per executed
// batch (0 before any batch has run).
func (m *Metrics) Occupancy() float64 {
	b := m.Batches.Load()
	if b == 0 {
		return 0
	}
	return float64(m.BatchedRequests.Load()) / float64(b)
}

// LaneBudget returns the server's configured (rounded) lane budget —
// the most distinct queries one batch may coalesce.
func (m *Metrics) LaneBudget() int {
	return int(m.laneBudget.Load())
}

// LaneUtilization returns the mean fraction of the lane budget that
// executed batches actually filled (0 before any batch has run; 1.0
// means every batch flushed lane-full rather than on the window). Low
// utilization at high occupancy signals heavy query deduplication; low
// utilization at low occupancy signals the budget outruns the offered
// load and the window is doing the flushing.
func (m *Metrics) LaneUtilization() float64 {
	b, budget := m.Batches.Load(), m.laneBudget.Load()
	if b == 0 || budget == 0 {
		return 0
	}
	return float64(m.BatchedLanes.Load()) / float64(b*budget)
}

// addLaneStats folds one finished batch's lane-engine counters into
// the server-wide totals. Each batch runs a fresh sampler, so the
// sampler's cumulative stats are exactly that batch's contribution.
func (m *Metrics) addLaneStats(st graph.LaneEngineStats) {
	m.LaneReplays.Add(st.Replays)
	m.LaneRepairs.Add(st.Repairs)
	m.LaneRebuilds.Add(st.Rebuilds)
	m.LaneOverflowRebuilds.Add(st.OverflowRebuilds)
	m.LaneFlushRebuilds.Add(st.FlushRebuilds)
}

// LaneSweepRates returns the fraction of lane-engine sweeps that were
// replays, repairs, and full rebuilds (all 0 before any sweep has run).
// The three sum to 1 once sweeps exist.
func (m *Metrics) LaneSweepRates() (replay, repair, rebuild float64) {
	rp, rr, rb := m.LaneReplays.Load(), m.LaneRepairs.Load(), m.LaneRebuilds.Load()
	total := rp + rr + rb
	if total == 0 {
		return 0, 0, 0
	}
	return float64(rp) / float64(total), float64(rr) / float64(total), float64(rb) / float64(total)
}

// CacheHitRate returns hits / (hits + misses), 0 when nothing has been
// looked up.
func (m *Metrics) CacheHitRate() float64 {
	h, miss := m.CacheHits.Load(), m.CacheMisses.Load()
	if h+miss == 0 {
		return 0
	}
	return float64(h) / float64(h+miss)
}

// Snapshot returns the counters and derived gauges as a flat map, the
// payload served under the "flowserve" expvar and handy for tests.
func (m *Metrics) Snapshot() map[string]any {
	replayRate, repairRate, rebuildRate := m.LaneSweepRates()
	return map[string]any{
		"flow_requests":      m.FlowRequests.Load(),
		"community_requests": m.CommunityRequests.Load(),
		"impact_requests":    m.ImpactRequests.Load(),
		"impact_analytic":    m.ImpactAnalytic.Load(),
		"impact_sampled":     m.ImpactSampled.Load(),
		"maximize_requests":  m.MaximizeRequests.Load(),
		"maximize_seeds":     m.MaximizeSeeds.Load(),
		"maximize_rr_sets":   m.MaximizeSketchSets.Load(),
		"cache_hits":         m.CacheHits.Load(),
		"cache_misses":       m.CacheMisses.Load(),
		"cache_hit_rate":     m.CacheHitRate(),
		"batches":            m.Batches.Load(),
		"batched_lanes":      m.BatchedLanes.Load(),
		"batched_requests":   m.BatchedRequests.Load(),
		"batch_occupancy":    m.Occupancy(),
		"lane_budget":        m.LaneBudget(),
		"lane_utilization":   m.LaneUtilization(),
		"queue_depth":        m.QueueDepth(),
		"rejected":           m.Rejected.Load(),
		"timeouts":           m.Timeouts.Load(),
		"errors":             m.Errors.Load(),
		"acceptance_rate":    m.Acceptance(),

		"lane_replays":           m.LaneReplays.Load(),
		"lane_repairs":           m.LaneRepairs.Load(),
		"lane_rebuilds":          m.LaneRebuilds.Load(),
		"lane_overflow_rebuilds": m.LaneOverflowRebuilds.Load(),
		"lane_flush_rebuilds":    m.LaneFlushRebuilds.Load(),
		"lane_replay_rate":       replayRate,
		"lane_repair_rate":       repairRate,
		"lane_rebuild_rate":      rebuildRate,
	}
}

// activeMetrics is the Metrics instance the process-wide "flowserve"
// expvar reads. expvar's registry is global and rejects re-publishing a
// name, so the var is published once and indirects through this pointer;
// each NewServer installs its metrics here (tests that build several
// servers simply see the newest one on the expvar surface and read
// their own Server.Metrics() directly).
var (
	activeMetrics atomic.Pointer[Metrics]
	publishOnce   sync.Once
)

func publishExpvar(m *Metrics) {
	activeMetrics.Store(m)
	publishOnce.Do(func() {
		expvar.Publish("flowserve", expvar.Func(func() any {
			if cur := activeMetrics.Load(); cur != nil {
				return cur.Snapshot()
			}
			return nil
		}))
	})
}
