package serve

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
	"infoflow/internal/sizedist"
)

// serveDAG builds a deterministic acyclic model so /impact's analytic
// path is exact.
func serveDAG(seed uint64, nodes, edges int) *core.ICM {
	r := rng.New(seed)
	g := graph.RandomDAG(r, nodes, edges)
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = 0.2 + 0.6*r.Float64()
	}
	return core.MustNewICM(g, p)
}

// serveWideDAG builds a DAG whose frontier width exceeds the sizedist
// default (one root fanning out to `width` parallel nodes that all feed
// one sink), so the analytic engine is intractable without sampling.
func serveWideDAG(width int) *core.ICM {
	g := graph.New(width + 2)
	for i := 1; i <= width; i++ {
		g.MustAddEdge(0, graph.NodeID(i))
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(width+1))
	}
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = 0.5
	}
	return core.MustNewICM(g, p)
}

// TestServerImpactAnalytic: on a DAG, mode=auto serves the exact
// analytic law synchronously — no batch, no chain — and a repeat is a
// cache hit regardless of chain parameters (the analytic cache key
// ignores samples and seed).
func TestServerImpactAnalytic(t *testing.T) {
	srv, ts, _ := startServer(t, func(c *Config) {
		c.Models = []Model{{Name: "m", ICM: serveDAG(7, 20, 40)}}
	})
	var resp impactResponse
	if status := getJSON(t, ts.URL+"/impact?sources=2,5", &resp); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if resp.Mode != "analytic" || !resp.Exact || resp.Cached {
		t.Fatalf("mode/exact/cached = %s/%v/%v, want analytic/true/false", resp.Mode, resp.Exact, resp.Cached)
	}
	want, err := sizedist.Compute(srv.models["m"].ICM, []graph.NodeID{2, 5}, sizedist.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Method != want.Method.String() {
		t.Errorf("method %q, want %q", resp.Method, want.Method)
	}
	if len(resp.Dist) != len(want.Dist) {
		t.Fatalf("dist has %d entries, want %d", len(resp.Dist), len(want.Dist))
	}
	for k := range want.Dist {
		if resp.Dist[k] != want.Dist[k] {
			t.Errorf("dist[%d] = %v, want %v", k, resp.Dist[k], want.Dist[k])
		}
	}
	if resp.Mean != want.Mean() {
		t.Errorf("mean %v, want %v", resp.Mean, want.Mean())
	}
	if got := srv.Metrics().Batches.Load(); got != 0 {
		t.Errorf("analytic request ran %d batches, want 0", got)
	}

	// Repeat with different chain parameters and unsorted duplicate
	// sources: same set, so it must hit the analytic cache.
	var second impactResponse
	if status := getJSON(t, ts.URL+"/impact?sources=5,2,5&samples=999&seed=123", &second); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !second.Cached || second.Mean != resp.Mean {
		t.Errorf("cached/mean = %v/%v, want true/%v", second.Cached, second.Mean, resp.Mean)
	}
	if got := srv.Metrics().ImpactAnalytic.Load(); got != 2 {
		t.Errorf("ImpactAnalytic = %d, want 2", got)
	}
	if got := srv.Metrics().ImpactRequests.Load(); got != 2 {
		t.Errorf("ImpactRequests = %d, want 2", got)
	}
}

// TestServerImpactSampledBitIdentity: mode=sampled rides the batcher and
// must reproduce the scalar library histogram exactly at the same seed.
func TestServerImpactSampledBitIdentity(t *testing.T) {
	srv, ts, clock := startServer(t, nil)
	var resp impactResponse
	var status int
	done := make(chan struct{})
	go func() {
		defer close(done)
		status = getJSON(t, ts.URL+"/impact?sources=3,1&mode=sampled&samples=150&seed=42", &resp)
	}()
	waitUntil(t, "window collector to arm", func() bool { return clock.Waiters() > 0 })
	clock.Advance(time.Hour)
	<-done
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if resp.Mode != "sampled" || resp.Method != "mh-sampled" || resp.Exact {
		t.Fatalf("mode/method/exact = %s/%s/%v", resp.Mode, resp.Method, resp.Exact)
	}
	m := srv.models["m"].ICM
	opts := mh.DefaultOptions(m.NumEdges())
	opts.Samples = 150
	impacts, err := mh.ImpactDistribution(m, []graph.NodeID{1, 3}, nil, opts, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	want := impactHist(impacts, m.NumNodes()-2+1)
	if len(resp.Dist) != len(want) {
		t.Fatalf("dist has %d entries, want %d", len(resp.Dist), len(want))
	}
	for k := range want {
		if resp.Dist[k] != want[k] {
			t.Errorf("dist[%d] = %v, want %v (must be bit-identical)", k, resp.Dist[k], want[k])
		}
	}
	if resp.BatchSize != 1 || resp.Lanes != 2 {
		t.Errorf("batch/lanes = %d/%d, want 1/2 (one lane per distinct source)", resp.BatchSize, resp.Lanes)
	}

	// The repeat is a sampled-cache hit: no new batch.
	batches := srv.Metrics().Batches.Load()
	var second impactResponse
	if st := getJSON(t, ts.URL+"/impact?sources=1,3&mode=sampled&samples=150&seed=42", &second); st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	if !second.Cached || second.Mean != resp.Mean {
		t.Errorf("cached repeat: cached/mean = %v/%v, want true/%v", second.Cached, second.Mean, resp.Mean)
	}
	if got := srv.Metrics().Batches.Load(); got != batches {
		t.Errorf("cache hit ran a sweep: batches %d -> %d", batches, got)
	}
}

// TestServerImpactAutoFallsBackToSampled: on a cyclic model where the
// analytic engine cannot be exact, mode=auto serves the MH estimate; on
// the same model mode=analytic still answers, labeled inexact.
func TestServerImpactAutoFallsBackToSampled(t *testing.T) {
	srv, ts, clock := startServer(t, nil) // serveICM(3,20,60) is heavily cyclic
	var resp impactResponse
	var status int
	done := make(chan struct{})
	go func() {
		defer close(done)
		status = getJSON(t, ts.URL+"/impact?sources=0&samples=80&seed=5", &resp)
	}()
	waitUntil(t, "window collector to arm", func() bool { return clock.Waiters() > 0 })
	clock.Advance(time.Hour)
	<-done
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if resp.Mode != "sampled" {
		t.Fatalf("mode %q, want sampled fallback on a cyclic model", resp.Mode)
	}
	if got := srv.Metrics().ImpactSampled.Load(); got != 1 {
		t.Errorf("ImpactSampled = %d, want 1", got)
	}

	var analytic impactResponse
	if st := getJSON(t, ts.URL+"/impact?sources=0&mode=analytic", &analytic); st != http.StatusOK {
		t.Fatalf("mode=analytic status %d", st)
	}
	if analytic.Exact {
		t.Error("analytic answer on a loop-heavy cyclic model claims exactness")
	}
	if analytic.Method == "" || analytic.Method == "mh-sampled" {
		t.Errorf("analytic method label %q", analytic.Method)
	}
}

// TestServerImpactAnalyticIntractable: past the frontier-width budget
// with no sampling allowed, mode=analytic is 422; mode=auto on the same
// model quietly samples.
func TestServerImpactAnalyticIntractable(t *testing.T) {
	_, ts, clock := startServer(t, func(c *Config) {
		c.Models = []Model{{Name: "m", ICM: serveWideDAG(20)}}
	})
	var errResp map[string]string
	if status := getJSON(t, ts.URL+"/impact?sources=0&mode=analytic", &errResp); status != http.StatusUnprocessableEntity {
		t.Fatalf("mode=analytic status %d, want 422", status)
	}
	var resp impactResponse
	var status int
	done := make(chan struct{})
	go func() {
		defer close(done)
		status = getJSON(t, ts.URL+"/impact?sources=0&samples=60", &resp)
	}()
	waitUntil(t, "window collector to arm", func() bool { return clock.Waiters() > 0 })
	clock.Advance(time.Hour)
	<-done
	if status != http.StatusOK || resp.Mode != "sampled" {
		t.Fatalf("auto fallback: status/mode = %d/%q, want 200/sampled", status, resp.Mode)
	}
}

// TestServerImpactBurstCoalesces: concurrent sampled impact queries with
// distinct source sets share one chain sweep, one lane per distinct
// source. 32 two-source sets exactly fill a 64-lane budget, so the batch
// flushes lane-full — the never-advancing fake clock proves the window
// played no part.
func TestServerImpactBurstCoalesces(t *testing.T) {
	srv, ts, _ := startServer(t, func(c *Config) {
		c.DefaultSamples = 50
		c.LaneBudget = mh.LaneWidth
	})
	const reqs = 32
	var wg sync.WaitGroup
	codes := make([]int, reqs)
	resps := make([]impactResponse, reqs)
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct sets: {u, u+1 mod 20} for i < 20, {u, u+2 mod 20}
			// after — cyclic distances 1 and 2 never collide as sets.
			u := i % 20
			v := (u + 1 + i/20) % 20
			url := fmt.Sprintf("%s/impact?mode=sampled&sources=%d,%d", ts.URL, u, v)
			codes[i] = getJSON(t, url, &resps[i])
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if got := srv.Metrics().Batches.Load(); got != 1 {
		t.Errorf("Batches = %d, want 1 (lane-full flush)", got)
	}
	if got := srv.Metrics().BatchedRequests.Load(); got != reqs {
		t.Errorf("BatchedRequests = %d, want %d", got, reqs)
	}
	if got := srv.Metrics().BatchedLanes.Load(); got != 2*reqs {
		t.Errorf("BatchedLanes = %d, want %d (one per distinct source)", got, 2*reqs)
	}
	for i, r := range resps {
		if r.BatchSize != reqs || r.Lanes != 2*reqs {
			t.Errorf("request %d: batch/lanes = %d/%d, want %d/%d", i, r.BatchSize, r.Lanes, reqs, 2*reqs)
		}
	}
}

// TestServerImpactBadRequests exercises the /impact parser's rejection
// paths.
func TestServerImpactBadRequests(t *testing.T) {
	_, ts, _ := startServer(t, nil)
	cases := []struct {
		name, query string
		status      int
	}{
		{"missing sources", "/impact", http.StatusBadRequest},
		{"empty sources", "/impact?sources=", http.StatusBadRequest},
		{"garbage sources", "/impact?sources=1,x", http.StatusBadRequest},
		{"negative source", "/impact?sources=-2", http.StatusBadRequest},
		{"out of range", "/impact?sources=99", http.StatusBadRequest},
		{"bad mode", "/impact?sources=0&mode=psychic", http.StatusBadRequest},
		{"analytic with cond", "/impact?sources=0&mode=analytic&cond=1>2=1", http.StatusBadRequest},
		{"bad samples", "/impact?sources=0&samples=0", http.StatusBadRequest},
	}
	for _, tc := range cases {
		var resp map[string]string
		if status := getJSON(t, ts.URL+tc.query, &resp); status != tc.status {
			t.Errorf("%s: status %d, want %d (error %q)", tc.name, status, tc.status, resp["error"])
		}
	}
}
