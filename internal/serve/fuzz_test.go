package serve

import (
	"net/http/httptest"
	"net/url"
	"testing"
)

// FuzzParseMaximizeQuery hammers the /maximize query parser: for
// arbitrary k/community/cond/samples/roots/seed strings,
// parseMaximizeQuery must either reject with a 4xx *httpError or return
// a canonical query — budget in range, community strictly sorted,
// distinct, in range, with a targetsKey ParseSources round-trips, pool
// size within the sketch budget — and must never panic.
func FuzzParseMaximizeQuery(f *testing.F) {
	s, err := NewServer(Config{Models: []Model{{Name: "m", ICM: serveDAG(5, 12, 25)}}})
	if err != nil {
		f.Fatal(err)
	}
	defer s.Drain()
	f.Add("1", "", "", "", "", "")
	f.Add("3", "2,0,2", "1>2=1", "64", "256", "9")
	f.Add(" 5 ", " 1 , 4 ", "", "", "64", "")
	f.Add("12", "0,1,2,3", "0>1=0,2>3=1", "256", "256", "18446744073709551615")
	f.Add("-1", "-3", "x", "-5", "100", "boom")
	f.Add("9999999999999999999999", "", "", "1000000", "1024", "")
	f.Fuzz(func(t *testing.T, k, community, cond, samples, roots, seed string) {
		vals := url.Values{}
		vals.Set("k", k)
		if community != "" {
			vals.Set("community", community)
		}
		if cond != "" {
			vals.Set("cond", cond)
		}
		if samples != "" {
			vals.Set("samples", samples)
		}
		if roots != "" {
			vals.Set("roots", roots)
		}
		if seed != "" {
			vals.Set("seed", seed)
		}
		req := httptest.NewRequest("GET", "/maximize?"+vals.Encode(), nil)
		q, herr := s.parseMaximizeQuery(req)
		if herr != nil {
			if herr.status < 400 || herr.status > 499 {
				t.Fatalf("parse error with non-4xx status %d: %s", herr.status, herr.msg)
			}
			return
		}
		n := q.model.ICM.NumNodes()
		if q.k <= 0 || q.k > n {
			t.Fatalf("accepted k %d outside [1, %d]", q.k, n)
		}
		for i, v := range q.targets {
			if int(v) < 0 || int(v) >= n {
				t.Fatalf("accepted target %d out of range [0, %d)", v, n)
			}
			if i > 0 && q.targets[i-1] >= v {
				t.Fatalf("targets not strictly sorted: %v", q.targets)
			}
		}
		if (q.targetsKey == "") != (q.targets == nil) {
			t.Fatalf("targetsKey %q inconsistent with targets %v", q.targetsKey, q.targets)
		}
		if q.targetsKey != "" {
			round, err := ParseSources(q.targetsKey)
			if err != nil || len(round) != len(q.targets) {
				t.Fatalf("targetsKey %q does not round-trip (%v, %v)", q.targetsKey, round, err)
			}
			for i := range round {
				if round[i] != q.targets[i] {
					t.Fatalf("targetsKey %q round-trips to %v, want %v", q.targetsKey, round, q.targets)
				}
			}
		}
		if q.roots <= 0 || q.roots%64 != 0 {
			t.Fatalf("accepted roots %d (want a positive multiple of 64)", q.roots)
		}
		if q.chain.Samples <= 0 || q.chain.Samples*q.roots > s.cfg.MaxSketchSets {
			t.Fatalf("accepted pool %d x %d past the %d-set budget", q.chain.Samples, q.roots, s.cfg.MaxSketchSets)
		}
	})
}

// FuzzParseImpactQuery hammers the /impact query parser: for arbitrary
// sources/mode/cond/samples/seed strings, parseQuery must either reject
// with an *httpError or return a canonical query — sources strictly
// sorted, distinct, in range, with a sourcesKey that ParseSources
// round-trips to the same set — and must never panic.
func FuzzParseImpactQuery(f *testing.F) {
	s, err := NewServer(Config{Models: []Model{{Name: "m", ICM: serveDAG(5, 12, 25)}}})
	if err != nil {
		f.Fatal(err)
	}
	defer s.Drain()
	f.Add("0", "", "", "", "")
	f.Add("3,1,3", "auto", "1>2=1", "500", "9")
	f.Add(" 2 , 5 ", "analytic", "", "", "")
	f.Add("1,2,4", "sampled", "0>1=0,2>3=1", "50000", "18446744073709551615")
	f.Add("-1", "psychic", "x", "-5", "boom")
	f.Add("9999999999999999999999", "", "", "", "")
	f.Fuzz(func(t *testing.T, sources, mode, cond, samples, seed string) {
		vals := url.Values{}
		vals.Set("sources", sources)
		if mode != "" {
			vals.Set("mode", mode)
		}
		if cond != "" {
			vals.Set("cond", cond)
		}
		if samples != "" {
			vals.Set("samples", samples)
		}
		if seed != "" {
			vals.Set("seed", seed)
		}
		req := httptest.NewRequest("GET", "/impact?"+vals.Encode(), nil)
		q, herr := s.parseQuery(req, kindImpact)
		if herr != nil {
			if herr.status < 400 || herr.status > 499 {
				t.Fatalf("parse error with non-4xx status %d: %s", herr.status, herr.msg)
			}
			return
		}
		n := q.model.ICM.NumNodes()
		if len(q.sources) == 0 {
			t.Fatal("accepted query has no sources")
		}
		for i, src := range q.sources {
			if int(src) < 0 || int(src) >= n {
				t.Fatalf("accepted source %d out of range [0, %d)", src, n)
			}
			if i > 0 && q.sources[i-1] >= src {
				t.Fatalf("sources not strictly sorted: %v", q.sources)
			}
		}
		if q.mode != "auto" && q.mode != "analytic" && q.mode != "sampled" {
			t.Fatalf("accepted mode %q", q.mode)
		}
		round, err := ParseSources(q.sourcesKey)
		if err != nil {
			t.Fatalf("sourcesKey %q does not re-parse: %v", q.sourcesKey, err)
		}
		if len(round) != len(q.sources) {
			t.Fatalf("sourcesKey %q round-trips to %d sources, want %d", q.sourcesKey, len(round), len(q.sources))
		}
		for i := range round {
			if round[i] != q.sources[i] {
				t.Fatalf("sourcesKey %q round-trips to %v, want %v", q.sourcesKey, round, q.sources)
			}
		}
		if q.opts.Samples <= 0 || q.opts.Samples > s.cfg.MaxSamples {
			t.Fatalf("accepted samples %d outside (0, %d]", q.opts.Samples, s.cfg.MaxSamples)
		}
	})
}
