package serve

import (
	"net/http/httptest"
	"net/url"
	"testing"
)

// FuzzParseImpactQuery hammers the /impact query parser: for arbitrary
// sources/mode/cond/samples/seed strings, parseQuery must either reject
// with an *httpError or return a canonical query — sources strictly
// sorted, distinct, in range, with a sourcesKey that ParseSources
// round-trips to the same set — and must never panic.
func FuzzParseImpactQuery(f *testing.F) {
	s, err := NewServer(Config{Models: []Model{{Name: "m", ICM: serveDAG(5, 12, 25)}}})
	if err != nil {
		f.Fatal(err)
	}
	defer s.Drain()
	f.Add("0", "", "", "", "")
	f.Add("3,1,3", "auto", "1>2=1", "500", "9")
	f.Add(" 2 , 5 ", "analytic", "", "", "")
	f.Add("1,2,4", "sampled", "0>1=0,2>3=1", "50000", "18446744073709551615")
	f.Add("-1", "psychic", "x", "-5", "boom")
	f.Add("9999999999999999999999", "", "", "", "")
	f.Fuzz(func(t *testing.T, sources, mode, cond, samples, seed string) {
		vals := url.Values{}
		vals.Set("sources", sources)
		if mode != "" {
			vals.Set("mode", mode)
		}
		if cond != "" {
			vals.Set("cond", cond)
		}
		if samples != "" {
			vals.Set("samples", samples)
		}
		if seed != "" {
			vals.Set("seed", seed)
		}
		req := httptest.NewRequest("GET", "/impact?"+vals.Encode(), nil)
		q, herr := s.parseQuery(req, kindImpact)
		if herr != nil {
			if herr.status < 400 || herr.status > 499 {
				t.Fatalf("parse error with non-4xx status %d: %s", herr.status, herr.msg)
			}
			return
		}
		n := q.model.ICM.NumNodes()
		if len(q.sources) == 0 {
			t.Fatal("accepted query has no sources")
		}
		for i, src := range q.sources {
			if int(src) < 0 || int(src) >= n {
				t.Fatalf("accepted source %d out of range [0, %d)", src, n)
			}
			if i > 0 && q.sources[i-1] >= src {
				t.Fatalf("sources not strictly sorted: %v", q.sources)
			}
		}
		if q.mode != "auto" && q.mode != "analytic" && q.mode != "sampled" {
			t.Fatalf("accepted mode %q", q.mode)
		}
		round, err := ParseSources(q.sourcesKey)
		if err != nil {
			t.Fatalf("sourcesKey %q does not re-parse: %v", q.sourcesKey, err)
		}
		if len(round) != len(q.sources) {
			t.Fatalf("sourcesKey %q round-trips to %d sources, want %d", q.sourcesKey, len(round), len(q.sources))
		}
		for i := range round {
			if round[i] != q.sources[i] {
				t.Fatalf("sourcesKey %q round-trips to %v, want %v", q.sourcesKey, round, q.sources)
			}
		}
		if q.opts.Samples <= 0 || q.opts.Samples > s.cfg.MaxSamples {
			t.Fatalf("accepted samples %d outside (0, %d]", q.opts.Samples, s.cfg.MaxSamples)
		}
	})
}
