package serve

import "testing"

func TestLRUCacheEvictsOldest(t *testing.T) {
	c := newLRUCache(2)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before capacity exceeded")
	}
	// a was just used, so adding c evicts b.
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Errorf("a = %v, %v; want 1, true", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Errorf("c = %v, %v; want 3, true", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestLRUCacheRefreshOnAdd(t *testing.T) {
	c := newLRUCache(2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 10) // refresh both value and recency
	c.Add("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Errorf("a = %v, %v; want 10, true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived; refresh of a should have made b the eviction victim")
	}
}

func TestLRUCacheDisabled(t *testing.T) {
	c := newLRUCache(0)
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache returned a hit")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}
