package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/influence"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
)

// maximizeQuery carries one parsed, validated /maximize request. Unlike
// the batched query kinds it never joins the batcher: the RIS pipeline
// runs its own chain, so the request executes synchronously in the
// handler with the chain's Interrupt wired to the request context.
type maximizeQuery struct {
	model      Model
	k          int
	targets    []graph.NodeID // community restriction; nil = every node
	targetsKey string         // canonical (sorted distinct) form, "" = all
	conds      []core.FlowCondition
	condKey    string
	chain      mh.Options
	roots      int // RR roots per thinned sample
	seed       uint64
	timeout    time.Duration
}

// parseMaximizeQuery extracts and validates /maximize parameters:
// k (required seed budget), community= (optional target node set, the
// spread is counted over it), cond= (shared ParseConds grammar),
// samples= (thinned chain samples, bounded so samples×roots stays under
// Config.MaxSketchSets), roots= (RR roots per sample, a multiple of 64),
// seed=, timeout=.
func (s *Server) parseMaximizeQuery(r *http.Request) (*maximizeQuery, *httpError) {
	q := &maximizeQuery{}
	vals := r.URL.Query()

	name := vals.Get("model")
	if name == "" {
		if s.only == "" {
			return nil, badRequest("model parameter required (serving %d models)", len(s.models))
		}
		name = s.only
	}
	m, ok := s.models[name]
	if !ok {
		return nil, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("unknown model %q", name)}
	}
	q.model = m
	n := m.ICM.NumNodes()

	rawK := vals.Get("k")
	if rawK == "" {
		return nil, badRequest("k parameter required")
	}
	k, err := strconv.Atoi(rawK)
	if err != nil {
		return nil, badRequest("k: %v", err)
	}
	if k <= 0 || k > n {
		return nil, badRequest("k %d out of range [1, %d]", k, n)
	}
	q.k = k

	if raw := vals.Get("community"); raw != "" {
		targets, err := ParseSources(raw)
		if err != nil {
			return nil, badRequest("community: %v", err)
		}
		if len(targets) == 0 {
			return nil, badRequest("community parameter must name at least one node")
		}
		for _, v := range targets {
			if int(v) < 0 || int(v) >= n {
				return nil, badRequest("community: node %d out of range [0, %d)", v, n)
			}
		}
		// Canonical sorted-distinct form: the selection depends only on
		// the target SET, so permutations share a cache line.
		distinct, _ := core.DedupSources(n, targets)
		sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
		q.targets = distinct
		q.targetsKey = sourcesKey(distinct)
	}

	conds, err := ParseConds(vals.Get("cond"))
	if err != nil {
		return nil, badRequest("cond: %v", err)
	}
	for _, c := range conds {
		if int(c.Source) < 0 || int(c.Source) >= n || int(c.Sink) < 0 || int(c.Sink) >= n {
			return nil, badRequest("cond %d>%d references a node out of range [0, %d)", c.Source, c.Sink, n)
		}
	}
	q.conds = conds
	q.condKey = condsKey(conds)

	samples := s.cfg.DefaultSketchSamples
	if raw := vals.Get("samples"); raw != "" {
		if samples, err = strconv.Atoi(raw); err != nil {
			return nil, badRequest("samples: %v", err)
		}
		if samples <= 0 {
			return nil, badRequest("samples %d must be positive", samples)
		}
	}
	q.roots = mh.DefaultRootsPerSample
	if raw := vals.Get("roots"); raw != "" {
		if q.roots, err = strconv.Atoi(raw); err != nil {
			return nil, badRequest("roots: %v", err)
		}
		if q.roots <= 0 || q.roots%mh.LaneWidth != 0 {
			return nil, badRequest("roots %d must be a positive multiple of %d", q.roots, mh.LaneWidth)
		}
	}
	if sets := samples * q.roots; sets > s.cfg.MaxSketchSets || sets/q.roots != samples {
		return nil, badRequest("samples %d x roots %d exceeds the sketch budget of %d RR sets",
			samples, q.roots, s.cfg.MaxSketchSets)
	}

	q.seed = s.cfg.DefaultSeed
	if raw := vals.Get("seed"); raw != "" {
		if q.seed, err = strconv.ParseUint(raw, 10, 64); err != nil {
			return nil, badRequest("seed: %v", err)
		}
	}
	q.timeout = s.cfg.DefaultTimeout
	if raw := vals.Get("timeout"); raw != "" {
		if q.timeout, err = time.ParseDuration(raw); err != nil {
			return nil, badRequest("timeout: %v", err)
		}
		if q.timeout <= 0 {
			return nil, badRequest("timeout must be positive")
		}
	}

	// Burn-in and thinning match the scalar estimator defaults for this
	// model, so a served selection is bit-identical to the library call
	// influence.Maximize with the same schedule and seed.
	q.chain = mh.DefaultOptions(m.ICM.NumEdges())
	q.chain.Samples = samples
	return q, nil
}

// cacheKey is the canonical /maximize identity: model digest plus every
// input the selection is a deterministic function of.
func (q *maximizeQuery) cacheKey() string {
	return fmt.Sprintf("%s|maximize|%d|%s|%s|%d|%d|%d|%d|%d",
		q.model.Digest, q.k, q.targetsKey, q.condKey,
		q.chain.BurnIn, q.chain.Thin, q.chain.Samples, q.roots, q.seed)
}

// maximizeAnswer is the cached form of a computed selection.
type maximizeAnswer struct {
	seeds    []int
	gains    []float64
	estimate float64
	universe int
	rrSets   int
}

// maximizeResponse is the /maximize payload. Seeds are in selection
// order; MarginalGains[i] is the RIS-estimated spread gain of Seeds[i]
// over the target universe at selection time, and SpreadEstimate is
// exactly their sum (the pool estimator contract).
type maximizeResponse struct {
	Model          string    `json:"model"`
	K              int       `json:"k"`
	Community      []int     `json:"community,omitempty"`
	Cond           string    `json:"cond,omitempty"`
	Seeds          []int     `json:"seeds"`
	MarginalGains  []float64 `json:"marginal_gains"`
	SpreadEstimate float64   `json:"spread_estimate"`
	Universe       int       `json:"universe"`
	RRSets         int       `json:"rr_sets"`
	Samples        int       `json:"samples"`
	Roots          int       `json:"roots"`
	Seed           uint64    `json:"seed"`
	Cached         bool      `json:"cached"`
}

// handleMaximize serves RIS-sketch influence maximization: build a
// reverse-reachability pool over the model (restricted to the community
// target set when given, conditioned by cond=), then select k seeds by
// deterministic lazy-greedy maximum coverage. The pipeline runs
// synchronously — its chain polls the request context, so a client
// deadline interrupts the sweep — and results are LRU-cached under the
// full parameter identity.
func (s *Server) handleMaximize(w http.ResponseWriter, r *http.Request) {
	s.metrics.MaximizeRequests.Add(1)
	q, herr := s.parseMaximizeQuery(r)
	if herr != nil {
		writeError(w, herr)
		return
	}
	resp := maximizeResponse{
		Model: q.model.Name, K: q.k, Community: nodeInts(q.targets), Cond: q.condKey,
		Samples: q.chain.Samples, Roots: q.roots, Seed: q.seed,
	}
	if v, ok := s.cache.Get(q.cacheKey()); ok {
		s.metrics.CacheHits.Add(1)
		ans := v.(maximizeAnswer)
		resp.Seeds, resp.MarginalGains, resp.SpreadEstimate = ans.seeds, ans.gains, ans.estimate
		resp.Universe, resp.RRSets, resp.Cached = ans.universe, ans.rrSets, true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.metrics.CacheMisses.Add(1)

	ctx, cancel := context.WithTimeout(r.Context(), q.timeout)
	defer cancel()
	opts := influence.SketchOptions{Chain: q.chain, RootsPerSample: q.roots}
	opts.Chain.Interrupt = func() bool { return ctx.Err() != nil }
	res, pool, err := influence.Maximize(q.model.ICM, q.k, q.targets, q.conds, opts, rng.New(q.seed))
	if err != nil {
		writeError(w, s.mapMaximizeError(ctx, q, err))
		return
	}
	s.metrics.MaximizeSeeds.Add(int64(len(res.Seeds)))
	s.metrics.MaximizeSketchSets.Add(int64(pool.NumSets))
	ans := maximizeAnswer{
		seeds: nodeInts(res.Seeds), gains: res.MarginalGains, estimate: res.SpreadEstimate,
		universe: pool.Universe, rrSets: pool.NumSets,
	}
	s.cache.Add(q.cacheKey(), ans)
	resp.Seeds, resp.MarginalGains, resp.SpreadEstimate = ans.seeds, ans.gains, ans.estimate
	resp.Universe, resp.RRSets = ans.universe, ans.rrSets
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) mapMaximizeError(ctx context.Context, q *maximizeQuery, err error) *httpError {
	switch {
	case errors.Is(err, mh.ErrInterrupted) && ctx.Err() != nil:
		s.metrics.Timeouts.Add(1)
		return &httpError{status: http.StatusGatewayTimeout,
			msg: fmt.Sprintf("deadline exceeded after %v: %v", q.timeout, err)}
	case errors.Is(err, mh.ErrUnsatisfiable):
		return &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	default:
		return &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
}
