package serve

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded LRU map from query cache keys to results.
// Keys embed the model digest, query, and every chain option (including
// the seed), so a hit is exactly the value a fresh chain would
// recompute — the estimators are deterministic in (model, query, opts,
// seed) — and serving from cache is indistinguishable from serving from
// a sweep.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

// newLRUCache returns a cache holding up to capacity entries; a
// non-positive capacity disables caching (every Get misses, Add drops).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache) Get(key string) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *lruCache) Add(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
