package serve

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
)

// serveICM builds a deterministic model for batcher/server tests.
func serveICM(seed uint64, nodes, edges int) *core.ICM {
	r := rng.New(seed)
	g := graph.Random(r, nodes, edges)
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = 0.2 + 0.6*r.Float64()
	}
	return core.MustNewICM(g, p)
}

func testBatchKey(m *core.ICM, samples int, seed uint64) batchKey {
	opts := mh.DefaultOptions(m.NumEdges())
	return batchKey{
		digest: ModelDigest(m), kind: kindFlow,
		burnIn: opts.BurnIn, thin: opts.Thin, samples: samples, seed: seed,
	}
}

// TestBatcherWindowFlush: a lone request flushes when (and only when)
// the fake clock crosses the batching window, and its answer is
// bit-identical to scalar mh.FlowProb with the same seed and options.
func TestBatcherWindowFlush(t *testing.T) {
	m := serveICM(3, 20, 60)
	clock := newFakeClock()
	met := &Metrics{}
	b := newBatcher(10*time.Millisecond, 1, 4, mh.LaneWidth, clock, met, newLRUCache(8))
	defer b.drain()

	key := testBatchKey(m, 200, 7)
	mem, err := b.join(context.Background(), key, m, nil, mh.FlowPair{Source: 0, Sink: 5}, nil, "", "k1")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-mem.done:
		t.Fatal("batch flushed before the window expired")
	case <-time.After(20 * time.Millisecond):
	}
	waitUntil(t, "window collector to arm", func() bool { return clock.Waiters() > 0 })
	clock.Advance(10 * time.Millisecond)
	res := <-mem.done
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	opts := mh.Options{BurnIn: key.burnIn, Thin: key.thin, Samples: key.samples}
	want, err := mh.FlowProb(m, 0, 5, nil, opts, rng.New(key.seed))
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob != want {
		t.Errorf("batched prob %v != scalar FlowProb %v (must be bit-identical)", res.Prob, want)
	}
	if res.BatchSize != 1 || res.Lanes != 1 {
		t.Errorf("BatchSize/Lanes = %d/%d, want 1/1", res.BatchSize, res.Lanes)
	}
	if got := met.Batches.Load(); got != 1 {
		t.Errorf("Batches = %d, want 1", got)
	}
}

// TestBatcherLaneDedupe: identical queries share one lane and both
// members receive the same result from one sweep.
func TestBatcherLaneDedupe(t *testing.T) {
	m := serveICM(3, 20, 60)
	clock := newFakeClock()
	met := &Metrics{}
	b := newBatcher(time.Millisecond, 1, 4, mh.LaneWidth, clock, met, newLRUCache(8))
	defer b.drain()

	key := testBatchKey(m, 100, 1)
	pair := mh.FlowPair{Source: 2, Sink: 9}
	m1, err := b.join(context.Background(), key, m, nil, pair, nil, "", "k")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := b.join(context.Background(), key, m, nil, pair, nil, "", "k")
	if err != nil {
		t.Fatal(err)
	}
	if m1.lane != m2.lane {
		t.Fatalf("identical queries got lanes %d and %d, want shared", m1.lane, m2.lane)
	}
	waitUntil(t, "window collector to arm", func() bool { return clock.Waiters() > 0 })
	clock.Advance(time.Millisecond)
	r1, r2 := <-m1.done, <-m2.done
	if r1.Err != nil || r2.Err != nil {
		t.Fatal(r1.Err, r2.Err)
	}
	if r1.Prob != r2.Prob {
		t.Errorf("co-laned members disagree: %v vs %v", r1.Prob, r2.Prob)
	}
	if r1.Lanes != 1 || r1.BatchSize != 2 {
		t.Errorf("Lanes/BatchSize = %d/%d, want 1/2", r1.Lanes, r1.BatchSize)
	}
}

// TestBatcherFlushOnFull: the lane budget's final distinct lane (here a
// 64-lane budget) flushes immediately, without the window expiring.
func TestBatcherFlushOnFull(t *testing.T) {
	m := serveICM(5, 70, 200)
	clock := newFakeClock() // never advanced: only lane-full can flush
	met := &Metrics{}
	b := newBatcher(time.Hour, 2, 4, mh.LaneWidth, clock, met, newLRUCache(0))
	defer b.drain()

	key := testBatchKey(m, 50, 3)
	members := make([]*member, 0, mh.LaneWidth)
	for i := 0; i < mh.LaneWidth; i++ {
		pair := mh.FlowPair{Source: graph.NodeID(i % 8), Sink: graph.NodeID(10 + i/8)}
		mem, err := b.join(context.Background(), key, m, nil, pair, nil, "", "")
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, mem)
	}
	for i, mem := range members {
		res := <-mem.done
		if res.Err != nil {
			t.Fatalf("member %d: %v", i, res.Err)
		}
		if res.Lanes != mh.LaneWidth || res.BatchSize != mh.LaneWidth {
			t.Fatalf("member %d: Lanes/BatchSize = %d/%d, want %d/%d",
				i, res.Lanes, res.BatchSize, mh.LaneWidth, mh.LaneWidth)
		}
	}
	if got := met.Batches.Load(); got != 1 {
		t.Errorf("Batches = %d, want 1 (flush-on-full)", got)
	}
}

// TestBatcherOverload: with no workers and no queue slack, a flushed
// batch is refused with ErrOverloaded instead of blocking.
func TestBatcherOverload(t *testing.T) {
	m := serveICM(3, 20, 60)
	clock := newFakeClock()
	met := &Metrics{}
	b := &batcher{
		window:  time.Millisecond,
		clock:   clock,
		metrics: met,
		cache:   newLRUCache(0),
		pending: make(map[batchKey]*pendingBatch),
		jobs:    make(chan *pendingBatch), // unbuffered, no workers draining it
	}
	met.queueDepth.Store(func() int { return len(b.jobs) })

	mem, err := b.join(context.Background(), testBatchKey(m, 10, 1), m, nil, mh.FlowPair{Source: 0, Sink: 1}, nil, "", "")
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "window collector to arm", func() bool { return clock.Waiters() > 0 })
	clock.Advance(time.Millisecond)
	res := <-mem.done
	if !errors.Is(res.Err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", res.Err)
	}
	if got := met.Rejected.Load(); got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
	b.collectors.Wait()
}

// TestBatcherDrain: drain flushes pending batches (delivering results,
// not dropping them) and subsequent joins are refused.
func TestBatcherDrain(t *testing.T) {
	m := serveICM(3, 20, 60)
	clock := newFakeClock() // window never fires; only drain can flush
	met := &Metrics{}
	b := newBatcher(time.Hour, 1, 4, mh.LaneWidth, clock, met, newLRUCache(0))

	mem, err := b.join(context.Background(), testBatchKey(m, 50, 2), m, nil, mh.FlowPair{Source: 1, Sink: 4}, nil, "", "")
	if err != nil {
		t.Fatal(err)
	}
	b.drain()
	res := <-mem.done
	if res.Err != nil {
		t.Fatalf("drained batch returned error %v, want a computed result", res.Err)
	}
	if _, err := b.join(context.Background(), testBatchKey(m, 50, 2), m, nil, mh.FlowPair{Source: 1, Sink: 4}, nil, "", ""); !errors.Is(err, ErrDraining) {
		t.Errorf("join after drain = %v, want ErrDraining", err)
	}
}

// TestBatcherLaneStatsMetrics: executing a batch folds the sampler's
// lane-engine sweep dispositions into the server metrics, and the
// derived replay/repair/rebuild rates partition the sweep count.
func TestBatcherLaneStatsMetrics(t *testing.T) {
	m := serveICM(3, 20, 60)
	clock := newFakeClock()
	met := &Metrics{}
	b := newBatcher(time.Hour, 1, 4, mh.LaneWidth, clock, met, newLRUCache(0))
	defer b.drain()

	mem, err := b.join(context.Background(), testBatchKey(m, 50, 5), m, nil, mh.FlowPair{Source: 0, Sink: 9}, nil, "", "")
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "window collector to arm", func() bool { return clock.Waiters() > 0 })
	clock.Advance(time.Hour)
	if res := <-mem.done; res.Err != nil {
		t.Fatal(res.Err)
	}

	replays, repairs, rebuilds := met.LaneReplays.Load(), met.LaneRepairs.Load(), met.LaneRebuilds.Load()
	total := replays + repairs + rebuilds
	if total == 0 {
		t.Fatal("no lane sweeps recorded after a batch executed")
	}
	if rebuilds == 0 {
		t.Error("LaneRebuilds = 0; the first sweep is always a full build")
	}
	replayRate, repairRate, rebuildRate := met.LaneSweepRates()
	if sum := replayRate + repairRate + rebuildRate; math.Abs(sum-1) > 1e-9 {
		t.Errorf("sweep rates sum to %v, want 1", sum)
	}
	if got := met.LaneOverflowRebuilds.Load(); got > rebuilds {
		t.Errorf("LaneOverflowRebuilds = %d exceeds total rebuilds %d", got, rebuilds)
	}
	snap := met.Snapshot()
	if snap["lane_replays"].(int64) != replays || snap["lane_rebuild_rate"].(float64) != rebuildRate {
		t.Errorf("Snapshot lane counters disagree with accessors: %v", snap)
	}
}

// TestBatcherAllMembersCancelled: when every member of a batch cancels,
// the sweep aborts via the Interrupt hook instead of running to
// completion, and the abort is not counted as a server error.
func TestBatcherAllMembersCancelled(t *testing.T) {
	m := serveICM(3, 20, 60)
	clock := newFakeClock()
	met := &Metrics{}
	b := newBatcher(time.Millisecond, 1, 4, mh.LaneWidth, clock, met, newLRUCache(0))
	defer b.drain()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled at join: the sweep must abort early
	mem, err := b.join(ctx, testBatchKey(m, 1_000_000, 1), m, nil, mh.FlowPair{Source: 0, Sink: 1}, nil, "", "")
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "window collector to arm", func() bool { return clock.Waiters() > 0 })
	clock.Advance(time.Millisecond)
	res := <-mem.done
	if !errors.Is(res.Err, mh.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", res.Err)
	}
	if got := met.Errors.Load(); got != 0 {
		t.Errorf("Errors = %d, want 0 (client cancellation is not a server fault)", got)
	}
}

// TestBatcherSurvivorUnaffectedByCancelledCobatch: a co-batched
// cancellation must not change a surviving member's estimate — the
// survivor's answer stays bit-identical to scalar mh.FlowProb.
func TestBatcherSurvivorUnaffectedByCancelledCobatch(t *testing.T) {
	m := serveICM(3, 20, 60)
	clock := newFakeClock()
	met := &Metrics{}
	b := newBatcher(time.Millisecond, 1, 4, mh.LaneWidth, clock, met, newLRUCache(0))
	defer b.drain()

	key := testBatchKey(m, 300, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.join(ctx, key, m, nil, mh.FlowPair{Source: 0, Sink: 3}, nil, "", ""); err != nil {
		t.Fatal(err)
	}
	surv, err := b.join(context.Background(), key, m, nil, mh.FlowPair{Source: 2, Sink: 8}, nil, "", "")
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "window collector to arm", func() bool { return clock.Waiters() > 0 })
	clock.Advance(time.Millisecond)
	res := <-surv.done
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	opts := mh.Options{BurnIn: key.burnIn, Thin: key.thin, Samples: key.samples}
	want, err := mh.FlowProb(m, 2, 8, nil, opts, rng.New(key.seed))
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob != want {
		t.Errorf("survivor prob %v != scalar FlowProb %v: co-batched cancellation changed an answer", res.Prob, want)
	}
}
