package serve

import "time"

// Clock abstracts the two time operations the batcher needs, so the
// batching window is injectable: production uses the wall clock, tests
// drive a fake clock deterministically, and the cmd/ tree (where
// flowlint bans direct wall-clock reads) passes timing concerns down
// here by construction.
type Clock interface {
	// Now returns the current time (used only for logging/metrics
	// decoration, never for control flow that must be deterministic).
	Now() time.Time
	// After returns a channel that delivers once d has elapsed. One
	// channel per call; the batcher never reuses them.
	After(d time.Duration) <-chan time.Time
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock returns the wall-clock Clock used when Config.Clock is nil.
func RealClock() Clock { return realClock{} }
