package serve

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced Clock: After channels fire only when
// Advance moves the clock past their deadline, so tests control exactly
// when batching windows expire (never, for flush-on-full tests).
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward, firing every waiter whose deadline
// has passed.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if w.at.After(c.now) {
			kept = append(kept, w)
		} else {
			w.ch <- c.now
		}
	}
	c.waiters = kept
}

// Waiters reports how many After channels are pending — tests poll it
// to know a batch collector has armed its window before advancing.
func (c *fakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// waitUntil polls cond for up to 5s; fatal on timeout.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}
