package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
)

// Batching errors surfaced to handlers (mapped to 503s).
var (
	// ErrDraining is returned to requests arriving after shutdown began.
	ErrDraining = errors.New("serve: server draining")
	// ErrOverloaded is returned when the worker queue is saturated and a
	// flushed batch cannot be enqueued.
	ErrOverloaded = errors.New("serve: worker queue saturated")
)

// queryKind separates end-to-end flow queries from community sweeps;
// the two use different estimators and cannot share lanes.
type queryKind int8

const (
	kindFlow queryKind = iota
	kindCommunity
)

// batchKey identifies the chain a query must run on. Two requests
// coalesce into one sweep exactly when every field matches: same model,
// same conditioning (canonical string), same chain schedule, same seed.
// Anything else would change the answer, so it gets its own chain.
type batchKey struct {
	digest  string
	kind    queryKind
	conds   string
	burnIn  int
	thin    int
	samples int
	seed    uint64
}

// flowResult is what a batch delivers to each member request.
type flowResult struct {
	Prob       float64   // kindFlow: Pr[source ~> sink | conds]
	Community  []float64 // kindCommunity: Pr[source ~> v] per node
	BatchSize  int       // requests served by the sweep
	Lanes      int       // distinct lanes the sweep carried
	Acceptance float64   // chain's post-burn-in acceptance rate
	Err        error
}

// member is one request waiting on a batch: its lane in the sweep, its
// cancellation context, the cache key to fill on success, and a
// 1-buffered channel the batch delivers on (the single send never
// blocks, even if the requester has already given up).
type member struct {
	lane     int
	ctx      context.Context
	cacheKey string
	done     chan flowResult
}

// pendingBatch accumulates members during the batching window. Lanes
// are deduplicated: two identical queries share a lane, so a budget's
// worth of identical requests still fits one sweep with one lane
// occupied.
type pendingBatch struct {
	key       batchKey
	model     *core.ICM
	conds     []core.FlowCondition
	pairs     []mh.FlowPair
	laneIndex map[mh.FlowPair]int
	members   []*member
	flushed   bool
	full      chan struct{} // closed on flush; wakes the window collector
}

// batcher coalesces concurrent same-chain queries into wide-lane
// sweeps of up to laneBudget distinct queries. A batch flushes when its
// lane set fills the budget or when the batching window expires,
// whichever comes first; flushed batches run on a bounded worker pool,
// each as one W-word lane sweep per thinned sample. The window timer
// comes from the injected Clock, so tests drive flushes
// deterministically.
type batcher struct {
	window     time.Duration
	laneBudget int
	clock      Clock
	metrics    *Metrics
	cache      *lruCache

	mu      sync.Mutex
	pending map[batchKey]*pendingBatch
	jobs    chan *pendingBatch

	collectors sync.WaitGroup
	workers    sync.WaitGroup
	draining   bool
	drainOnce  sync.Once
}

func newBatcher(window time.Duration, workers, queueCap, laneBudget int, clock Clock, m *Metrics, cache *lruCache) *batcher {
	b := &batcher{
		window:     window,
		laneBudget: laneBudget,
		clock:      clock,
		metrics:    m,
		cache:      cache,
		pending:    make(map[batchKey]*pendingBatch),
		jobs:       make(chan *pendingBatch, queueCap),
	}
	m.queueDepth.Store(func() int { return len(b.jobs) })
	for i := 0; i < workers; i++ {
		b.workers.Add(1)
		go b.worker()
	}
	return b
}

// join registers a query on the batch identified by key, creating the
// batch (and its window collector) if none is pending, and returns the
// member whose done channel will deliver the result. pair carries the
// query: (source, sink) for kindFlow, (source, source) for
// kindCommunity.
func (b *batcher) join(ctx context.Context, key batchKey, model *core.ICM, conds []core.FlowCondition, pair mh.FlowPair, cacheKey string) (*member, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.draining {
		return nil, ErrDraining
	}
	pb, ok := b.pending[key]
	if !ok {
		pb = &pendingBatch{
			key:       key,
			model:     model,
			conds:     conds,
			laneIndex: make(map[mh.FlowPair]int),
			full:      make(chan struct{}),
		}
		b.pending[key] = pb
		b.collectors.Add(1)
		go b.collect(pb)
	}
	lane, ok := pb.laneIndex[pair]
	if !ok {
		lane = len(pb.pairs)
		pb.laneIndex[pair] = lane
		pb.pairs = append(pb.pairs, pair)
	}
	m := &member{lane: lane, ctx: ctx, cacheKey: cacheKey, done: make(chan flowResult, 1)}
	pb.members = append(pb.members, m)
	if len(pb.pairs) == b.laneBudget {
		b.flushLocked(pb)
	}
	return m, nil
}

// collect is the per-batch window goroutine: it flushes the batch when
// the window expires, unless a lane-full (or drain) flush got there
// first.
func (b *batcher) collect(pb *pendingBatch) {
	defer b.collectors.Done()
	timer := b.clock.After(b.window)
	select {
	case <-timer:
		b.mu.Lock()
		if !pb.flushed {
			b.flushLocked(pb)
		}
		b.mu.Unlock()
	case <-pb.full:
	}
}

// flushLocked (b.mu held) retires the batch from the pending map and
// hands it to the worker pool; if the queue is saturated every member
// is refused with ErrOverloaded rather than blocking the caller.
func (b *batcher) flushLocked(pb *pendingBatch) {
	pb.flushed = true
	delete(b.pending, pb.key)
	close(pb.full)
	select {
	case b.jobs <- pb:
	default:
		b.metrics.Rejected.Add(int64(len(pb.members)))
		for _, m := range pb.members {
			m.done <- flowResult{Err: ErrOverloaded}
		}
	}
}

func (b *batcher) worker() {
	defer b.workers.Done()
	for pb := range b.jobs {
		b.execute(pb)
	}
}

// execute runs one flushed batch: a fresh chain seeded from the batch
// key, one wide-lane sweep per thinned sample (the auto-width batch
// estimators size the lane mask to cover every pair in a single
// sweep, since the lane budget never exceeds mh.MaxLanes), cooperative
// abort once every member has cancelled, cache fill, then per-member
// delivery.
func (b *batcher) execute(pb *pendingBatch) {
	b.metrics.Batches.Add(1)
	b.metrics.BatchedLanes.Add(int64(len(pb.pairs)))
	b.metrics.BatchedRequests.Add(int64(len(pb.members)))

	// The chain keeps running while at least one member still wants the
	// answer; when the last one cancels, the Interrupt hook stops the
	// sweep between thinned samples. The hook consumes no randomness, so
	// surviving members' estimates are unaffected by co-batched
	// cancellations.
	live := new(atomic.Int64)
	live.Store(int64(len(pb.members)))
	stops := make([]func() bool, len(pb.members))
	for i, m := range pb.members {
		stops[i] = context.AfterFunc(m.ctx, func() { live.Add(-1) })
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	opts := mh.Options{
		BurnIn:    pb.key.burnIn,
		Thin:      pb.key.thin,
		Samples:   pb.key.samples,
		Interrupt: func() bool { return live.Load() <= 0 },
	}
	s, err := mh.NewSampler(pb.model, pb.conds, rng.New(pb.key.seed))
	if err != nil {
		b.deliverError(pb, err)
		return
	}

	var probs []float64
	var comms [][]float64
	switch pb.key.kind {
	case kindFlow:
		probs, err = mh.FlowProbBatchOn(s, pb.pairs, opts)
	case kindCommunity:
		sources := make([]graph.NodeID, len(pb.pairs))
		for i, p := range pb.pairs {
			sources[i] = p.Source
		}
		comms, err = mh.CommunityFlowProbsBatchOn(s, sources, opts)
	}
	if err != nil {
		b.deliverError(pb, err)
		return
	}
	acc := s.PostBurnInAcceptanceRate()
	b.metrics.setAcceptance(acc)

	res := flowResult{BatchSize: len(pb.members), Lanes: len(pb.pairs), Acceptance: acc}
	for _, m := range pb.members {
		r := res
		if pb.key.kind == kindFlow {
			r.Prob = probs[m.lane]
			b.cache.Add(m.cacheKey, r.Prob)
		} else {
			r.Community = comms[m.lane]
			b.cache.Add(m.cacheKey, r.Community)
		}
		m.done <- r
	}
}

// deliverError fans a batch-level failure out to every member. An
// all-members-cancelled interrupt is the expected outcome of client
// timeouts, not a server fault, so it doesn't count toward Errors.
func (b *batcher) deliverError(pb *pendingBatch, err error) {
	if !errors.Is(err, mh.ErrInterrupted) {
		b.metrics.Errors.Add(1)
	}
	for _, m := range pb.members {
		m.done <- flowResult{Err: err}
	}
}

// drain stops admission, flushes every pending batch, and blocks until
// the workers finish the backlog. Idempotent; later calls return once
// the first drain completes.
func (b *batcher) drain() {
	b.drainOnce.Do(func() {
		b.mu.Lock()
		b.draining = true
		for _, pb := range b.pending {
			b.flushLocked(pb)
		}
		b.mu.Unlock()
		b.collectors.Wait()
		close(b.jobs)
	})
	b.workers.Wait()
}
