package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
)

// Batching errors surfaced to handlers (mapped to 503s).
var (
	// ErrDraining is returned to requests arriving after shutdown began.
	ErrDraining = errors.New("serve: server draining")
	// ErrOverloaded is returned when the worker queue is saturated and a
	// flushed batch cannot be enqueued.
	ErrOverloaded = errors.New("serve: worker queue saturated")
)

// queryKind separates end-to-end flow queries, community sweeps, and
// impact (cascade-size) queries; the three use different estimators and
// cannot share lanes.
type queryKind int8

const (
	kindFlow queryKind = iota
	kindCommunity
	kindImpact
)

// batchKey identifies the chain a query must run on. Two requests
// coalesce into one sweep exactly when every field matches: same model,
// same conditioning (canonical string), same chain schedule, same seed.
// Anything else would change the answer, so it gets its own chain.
type batchKey struct {
	digest  string
	kind    queryKind
	conds   string
	burnIn  int
	thin    int
	samples int
	seed    uint64
}

// flowResult is what a batch delivers to each member request.
type flowResult struct {
	Prob       float64   // kindFlow: Pr[source ~> sink | conds]
	Community  []float64 // kindCommunity: Pr[source ~> v] per node
	Impact     []float64 // kindImpact: normalized cascade-size histogram
	BatchSize  int       // requests served by the sweep
	Lanes      int       // distinct lanes the sweep carried
	Acceptance float64   // chain's post-burn-in acceptance rate
	Err        error
}

// member is one request waiting on a batch: its lane in the sweep, its
// cancellation context, the cache key to fill on success, and a
// 1-buffered channel the batch delivers on (the single send never
// blocks, even if the requester has already given up).
type member struct {
	lane int
	//flowlint:ignore ctxleak -- queued request carries its caller's cancellation into the batch that serves it
	ctx      context.Context
	cacheKey string
	done     chan flowResult
}

// pendingBatch accumulates members during the batching window. Lanes
// are deduplicated: two identical queries share a lane (or, for impact,
// a lane span), so a budget's worth of identical requests still fits one
// sweep with one lane occupied. Flow and community queries occupy one
// lane each (pairs/laneIndex); impact queries occupy one lane per
// distinct source of their canonical source set (sets/setIndex), and
// lanes tracks the running total either way.
type pendingBatch struct {
	key       batchKey
	model     *core.ICM
	conds     []core.FlowCondition
	pairs     []mh.FlowPair
	laneIndex map[mh.FlowPair]int
	sets      [][]graph.NodeID
	setIndex  map[string]int
	lanes     int
	members   []*member
	flushed   bool
	full      chan struct{} // closed on flush; wakes the window collector
}

// batcher coalesces concurrent same-chain queries into wide-lane
// sweeps of up to laneBudget distinct queries. A batch flushes when its
// lane set fills the budget or when the batching window expires,
// whichever comes first; flushed batches run on a bounded worker pool,
// each as one W-word lane sweep per thinned sample. The window timer
// comes from the injected Clock, so tests drive flushes
// deterministically.
type batcher struct {
	window     time.Duration
	laneBudget int
	clock      Clock
	metrics    *Metrics
	cache      *lruCache

	mu      sync.Mutex
	pending map[batchKey]*pendingBatch
	jobs    chan *pendingBatch

	collectors sync.WaitGroup
	workers    sync.WaitGroup
	draining   bool
	drainOnce  sync.Once
}

func newBatcher(window time.Duration, workers, queueCap, laneBudget int, clock Clock, m *Metrics, cache *lruCache) *batcher {
	b := &batcher{
		window:     window,
		laneBudget: laneBudget,
		clock:      clock,
		metrics:    m,
		cache:      cache,
		pending:    make(map[batchKey]*pendingBatch),
		jobs:       make(chan *pendingBatch, queueCap),
	}
	m.queueDepth.Store(func() int { return len(b.jobs) })
	for i := 0; i < workers; i++ {
		b.workers.Add(1)
		go b.worker()
	}
	return b
}

// join registers a query on the batch identified by key, creating the
// batch (and its window collector) if none is pending, and returns the
// member whose done channel will deliver the result. pair carries the
// query for kindFlow ((source, sink)) and kindCommunity ((source,
// source)); for kindImpact the query is sources — the canonical
// (deduplicated, sorted) source set — keyed by sourcesKey, and pair is
// ignored.
func (b *batcher) join(ctx context.Context, key batchKey, model *core.ICM, conds []core.FlowCondition, pair mh.FlowPair, sources []graph.NodeID, sourcesKey, cacheKey string) (*member, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.draining {
		return nil, ErrDraining
	}
	pb, ok := b.pending[key]
	if !ok {
		pb = &pendingBatch{
			key:       key,
			model:     model,
			conds:     conds,
			laneIndex: make(map[mh.FlowPair]int),
			setIndex:  make(map[string]int),
			full:      make(chan struct{}),
		}
		b.pending[key] = pb
		b.collectors.Add(1)
		go b.collect(pb)
	}
	var lane int
	if key.kind == kindImpact {
		if lane, ok = pb.setIndex[sourcesKey]; !ok {
			lane = len(pb.sets)
			pb.setIndex[sourcesKey] = lane
			pb.sets = append(pb.sets, sources)
			pb.lanes += len(sources)
		}
	} else {
		if lane, ok = pb.laneIndex[pair]; !ok {
			lane = len(pb.pairs)
			pb.laneIndex[pair] = lane
			pb.pairs = append(pb.pairs, pair)
			pb.lanes++
		}
	}
	m := &member{lane: lane, ctx: ctx, cacheKey: cacheKey, done: make(chan flowResult, 1)}
	pb.members = append(pb.members, m)
	if pb.lanes >= b.laneBudget {
		b.flushLocked(pb)
	}
	return m, nil
}

// collect is the per-batch window goroutine: it flushes the batch when
// the window expires, unless a lane-full (or drain) flush got there
// first.
func (b *batcher) collect(pb *pendingBatch) {
	defer b.collectors.Done()
	timer := b.clock.After(b.window)
	select {
	case <-timer:
		b.mu.Lock()
		if !pb.flushed {
			b.flushLocked(pb)
		}
		b.mu.Unlock()
	case <-pb.full:
	}
}

// flushLocked (b.mu held) retires the batch from the pending map and
// hands it to the worker pool; if the queue is saturated every member
// is refused with ErrOverloaded rather than blocking the caller.
func (b *batcher) flushLocked(pb *pendingBatch) {
	pb.flushed = true
	delete(b.pending, pb.key)
	close(pb.full)
	select {
	case b.jobs <- pb:
	default:
		b.metrics.Rejected.Add(int64(len(pb.members)))
		for _, m := range pb.members {
			m.done <- flowResult{Err: ErrOverloaded}
		}
	}
}

func (b *batcher) worker() {
	defer b.workers.Done()
	for pb := range b.jobs {
		b.execute(pb)
	}
}

// execute runs one flushed batch: a fresh chain seeded from the batch
// key, one wide-lane sweep per thinned sample (the auto-width batch
// estimators size the lane mask to cover every pair in a single
// sweep, since the lane budget never exceeds mh.MaxLanes), cooperative
// abort once every member has cancelled, cache fill, then per-member
// delivery.
func (b *batcher) execute(pb *pendingBatch) {
	b.metrics.Batches.Add(1)
	b.metrics.BatchedLanes.Add(int64(pb.lanes))
	b.metrics.BatchedRequests.Add(int64(len(pb.members)))

	// The chain keeps running while at least one member still wants the
	// answer; when the last one cancels, the Interrupt hook stops the
	// sweep between thinned samples. The hook consumes no randomness, so
	// surviving members' estimates are unaffected by co-batched
	// cancellations.
	live := new(atomic.Int64)
	live.Store(int64(len(pb.members)))
	stops := make([]func() bool, len(pb.members))
	for i, m := range pb.members {
		stops[i] = context.AfterFunc(m.ctx, func() { live.Add(-1) })
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	opts := mh.Options{
		BurnIn:    pb.key.burnIn,
		Thin:      pb.key.thin,
		Samples:   pb.key.samples,
		Interrupt: func() bool { return live.Load() <= 0 },
	}
	s, err := mh.NewSampler(pb.model, pb.conds, rng.New(pb.key.seed))
	if err != nil {
		b.deliverError(pb, err)
		return
	}

	var probs []float64
	var comms [][]float64
	var hists [][]float64
	switch pb.key.kind {
	case kindFlow:
		probs, err = mh.FlowProbBatchOn(s, pb.pairs, opts)
	case kindCommunity:
		sources := make([]graph.NodeID, len(pb.pairs))
		for i, p := range pb.pairs {
			sources[i] = p.Source
		}
		comms, err = mh.CommunityFlowProbsBatchOn(s, sources, opts)
	case kindImpact:
		var impacts [][]int
		impacts, err = mh.ImpactDistributionBatchOn(s, pb.sets, opts)
		if err == nil {
			hists = make([][]float64, len(pb.sets))
			for i, samples := range impacts {
				// Sets arrive deduplicated, so the largest possible impact
				// is NumNodes - len(set).
				hists[i] = impactHist(samples, pb.model.NumNodes()-len(pb.sets[i])+1)
			}
		}
	}
	if err != nil {
		b.deliverError(pb, err)
		return
	}
	acc := s.PostBurnInAcceptanceRate()
	b.metrics.setAcceptance(acc)
	b.metrics.addLaneStats(s.LaneStats())

	res := flowResult{BatchSize: len(pb.members), Lanes: pb.lanes, Acceptance: acc}
	for _, m := range pb.members {
		r := res
		switch pb.key.kind {
		case kindFlow:
			r.Prob = probs[m.lane]
			b.cache.Add(m.cacheKey, r.Prob)
		case kindCommunity:
			r.Community = comms[m.lane]
			b.cache.Add(m.cacheKey, r.Community)
		case kindImpact:
			r.Impact = hists[m.lane]
			b.cache.Add(m.cacheKey, r.Impact)
		}
		m.done <- r
	}
}

// impactHist folds per-sample impact counts into a normalized histogram
// over 0..length-1 new activations.
func impactHist(samples []int, length int) []float64 {
	hist := make([]float64, length)
	for _, imp := range samples {
		if imp < 0 || imp >= length {
			//flowlint:invariant the estimator counts activations over a deduplicated source set, so 0 <= impact <= n - |set| by construction
			panic("serve: impact sample out of range")
		}
		hist[imp]++
	}
	for i := range hist {
		hist[i] /= float64(len(samples))
	}
	return hist
}

// deliverError fans a batch-level failure out to every member. An
// all-members-cancelled interrupt is the expected outcome of client
// timeouts, not a server fault, so it doesn't count toward Errors.
func (b *batcher) deliverError(pb *pendingBatch, err error) {
	if !errors.Is(err, mh.ErrInterrupted) {
		b.metrics.Errors.Add(1)
	}
	for _, m := range pb.members {
		m.done <- flowResult{Err: err}
	}
}

// drain stops admission, flushes every pending batch, and blocks until
// the workers finish the backlog. Idempotent; later calls return once
// the first drain completes.
func (b *batcher) drain() {
	b.drainOnce.Do(func() {
		b.mu.Lock()
		b.draining = true
		for _, pb := range b.pending {
			b.flushLocked(pb)
		}
		b.mu.Unlock()
		b.collectors.Wait()
		close(b.jobs)
	})
	b.workers.Wait()
}
