// Package serve is the flowserve inference service: an HTTP layer that
// answers flow-probability, community, and impact (cascade-size) queries
// against trained ICMs by coalescing concurrent same-chain requests into
// wide-lane batched Metropolis-Hastings sweeps (mh.FlowProbBatch) of up
// to LaneBudget queries (default 512, one W-word sweep per thinned
// sample). Requests that share a (model, conditions, chain schedule,
// seed) tuple arriving within the batching window ride one chain; an LRU
// cache short-circuits repeats.
//
// /impact additionally fronts the sampled path with the analytic
// sizedist engine: when the cascade-size law is exactly computable
// (forests, DAGs within the frontier width, cyclic graphs within the
// loop-conditioning budget) the answer is served synchronously with no
// chain at all, and mode=auto falls back to the batched MH estimator
// only when the analytic engine cannot be exact.
//
// Determinism contract: batching, caching, and co-batched cancellation
// never change a query's answer. The chain's randomness is independent
// of the lane set, so a request's estimate is a pure function of
// (model digest, query, conditions, BurnIn, Thin, Samples, seed) — a
// single-request batch is bit-identical to scalar mh.FlowProb.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/sizedist"
)

// Model is one servable ICM. Digest is computed by NewServer when left
// empty.
type Model struct {
	Name   string
	ICM    *core.ICM
	Digest string
}

// Config parameterises a Server. Zero values get sensible defaults from
// NewServer; only Models is required.
type Config struct {
	// Models to serve, addressed by the ?model= query parameter. With a
	// single model the parameter may be omitted.
	Models []Model
	// Window is how long a freshly opened batch waits for co-batchable
	// requests before flushing (default 5ms). A batch whose LaneBudget
	// lanes fill flushes immediately.
	Window time.Duration
	// LaneBudget is how many distinct queries one batch may coalesce
	// before it flushes (default 512). Rounded up to a multiple of 64
	// (the sweep packs 64 lanes per mask word) and capped at
	// mh.MaxLanes; a full budget still runs as ONE wide-lane sweep per
	// thinned sample.
	LaneBudget int
	// Workers bounds concurrent chain sweeps (default 2).
	Workers int
	// QueueCap bounds flushed batches awaiting a worker (default 64);
	// past it, requests are refused with 503 rather than queued.
	QueueCap int
	// CacheSize is the LRU result-cache capacity in entries
	// (default 1024; negative disables caching).
	CacheSize int
	// DefaultSamples / MaxSamples bound the ?samples= parameter
	// (defaults 2000 / 50000).
	DefaultSamples int
	MaxSamples     int
	// DefaultSketchSamples is the thinned chain sample count /maximize
	// draws RR roots from when ?samples= is absent (default 64; RR roots
	// average over states, so far fewer chain samples are needed than a
	// point estimate wants).
	DefaultSketchSamples int
	// MaxSketchSets bounds the /maximize pool size: ?samples= times
	// ?roots= may not exceed it (default 65536; the pool holds one bit
	// per (node, set) pair).
	MaxSketchSets int
	// DefaultSeed is the chain seed when ?seed= is absent (default 1).
	DefaultSeed uint64
	// DefaultTimeout is the per-request deadline when ?timeout= is
	// absent (default 30s).
	DefaultTimeout time.Duration
	// Clock drives the batching window; nil means the wall clock.
	Clock Clock
}

func (c *Config) applyDefaults() {
	if c.Window <= 0 {
		c.Window = 5 * time.Millisecond
	}
	if c.LaneBudget <= 0 {
		c.LaneBudget = 512
	}
	if r := c.LaneBudget % mh.LaneWidth; r != 0 {
		c.LaneBudget += mh.LaneWidth - r
	}
	if c.LaneBudget > mh.MaxLanes {
		c.LaneBudget = mh.MaxLanes
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.DefaultSamples <= 0 {
		c.DefaultSamples = 2000
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 50000
	}
	if c.DefaultSketchSamples <= 0 {
		c.DefaultSketchSamples = 64
	}
	if c.MaxSketchSets <= 0 {
		c.MaxSketchSets = 65536
	}
	if c.DefaultSeed == 0 {
		c.DefaultSeed = 1
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = RealClock()
	}
}

// Server routes flow queries into the batcher. Build with NewServer,
// mount via Handler, stop with Drain.
type Server struct {
	cfg      Config
	models   map[string]Model
	only     string // sole model name when len(models) == 1
	metrics  *Metrics
	cache    *lruCache
	batcher  *batcher
	mux      *http.ServeMux
	draining atomic.Bool
}

// NewServer validates cfg, fills defaults, computes missing model
// digests, and starts the worker pool.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("serve: no models configured")
	}
	cfg.applyDefaults()
	s := &Server{cfg: cfg, models: make(map[string]Model, len(cfg.Models))}
	for i := range cfg.Models {
		m := cfg.Models[i]
		if m.Name == "" || m.ICM == nil {
			return nil, fmt.Errorf("serve: model %d needs a name and an ICM", i)
		}
		if _, dup := s.models[m.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate model name %q", m.Name)
		}
		if m.Digest == "" {
			m.Digest = ModelDigest(m.ICM)
		}
		s.models[m.Name] = m
	}
	if len(cfg.Models) == 1 {
		s.only = cfg.Models[0].Name
	}
	s.metrics = &Metrics{}
	s.metrics.laneBudget.Store(int64(cfg.LaneBudget))
	s.cache = newLRUCache(cfg.CacheSize)
	s.batcher = newBatcher(cfg.Window, cfg.Workers, cfg.QueueCap, cfg.LaneBudget, cfg.Clock, s.metrics, s.cache)
	publishExpvar(s.metrics)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /flow", s.handleFlow)
	mux.HandleFunc("GET /community", s.handleCommunity)
	mux.HandleFunc("GET /impact", s.handleImpact)
	mux.HandleFunc("GET /maximize", s.handleMaximize)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's live counter set.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Drain stops admitting queries (healthz flips to draining, joins are
// refused) and blocks until every in-flight and pending batch has been
// executed and delivered. Call once, on shutdown.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.batcher.drain()
}

// query carries one parsed, validated request.
type query struct {
	model      Model
	kind       queryKind
	source     graph.NodeID
	sink       graph.NodeID // kindFlow only
	sources    []graph.NodeID
	sourcesKey string // kindImpact: canonical (sorted distinct) source set
	mode       string // kindImpact: "auto" | "analytic" | "sampled"
	conds      []core.FlowCondition
	condKey    string
	opts       mh.Options
	seed       uint64
	timeout    time.Duration
}

// httpError is a client-side parse/validation failure with its status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// parseQuery extracts and validates the parameters shared by /flow and
// /community.
func (s *Server) parseQuery(r *http.Request, kind queryKind) (*query, *httpError) {
	q := &query{kind: kind}
	vals := r.URL.Query()

	name := vals.Get("model")
	if name == "" {
		if s.only == "" {
			return nil, badRequest("model parameter required (serving %d models)", len(s.models))
		}
		name = s.only
	}
	m, ok := s.models[name]
	if !ok {
		return nil, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("unknown model %q", name)}
	}
	q.model = m
	n := m.ICM.NumNodes()

	node := func(param string) (graph.NodeID, *httpError) {
		raw := vals.Get(param)
		if raw == "" {
			return 0, badRequest("%s parameter required", param)
		}
		v, err := strconv.Atoi(raw)
		if err != nil {
			return 0, badRequest("%s: %v", param, err)
		}
		if v < 0 || v >= n {
			return 0, badRequest("%s %d out of range [0, %d)", param, v, n)
		}
		return graph.NodeID(v), nil
	}
	if kind == kindImpact {
		srcs, err := ParseSources(vals.Get("sources"))
		if err != nil {
			return nil, badRequest("sources: %v", err)
		}
		if len(srcs) == 0 {
			return nil, badRequest("sources parameter required")
		}
		for _, src := range srcs {
			if int(src) < 0 || int(src) >= n {
				return nil, badRequest("sources: node %d out of range [0, %d)", src, n)
			}
		}
		// Canonical sorted-distinct form: the impact law depends only on
		// the SET, so "3,1,3" and "1,3" share a lane and a cache line.
		distinct, _ := core.DedupSources(n, srcs)
		sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
		q.sources = distinct
		q.sourcesKey = sourcesKey(distinct)
		switch mode := vals.Get("mode"); mode {
		case "", "auto":
			q.mode = "auto"
		case "analytic", "sampled":
			q.mode = mode
		default:
			return nil, badRequest("mode %q: want auto, analytic, or sampled", mode)
		}
	} else {
		var herr *httpError
		if q.source, herr = node("source"); herr != nil {
			return nil, herr
		}
		if kind == kindFlow {
			if q.sink, herr = node("sink"); herr != nil {
				return nil, herr
			}
		}
	}

	conds, err := ParseConds(vals.Get("cond"))
	if err != nil {
		return nil, badRequest("cond: %v", err)
	}
	for _, c := range conds {
		if int(c.Source) < 0 || int(c.Source) >= n || int(c.Sink) < 0 || int(c.Sink) >= n {
			return nil, badRequest("cond %d>%d references a node out of range [0, %d)", c.Source, c.Sink, n)
		}
	}
	q.conds = conds
	q.condKey = condsKey(conds)

	samples := s.cfg.DefaultSamples
	if raw := vals.Get("samples"); raw != "" {
		if samples, err = strconv.Atoi(raw); err != nil {
			return nil, badRequest("samples: %v", err)
		}
		if samples <= 0 || samples > s.cfg.MaxSamples {
			return nil, badRequest("samples %d out of range [1, %d]", samples, s.cfg.MaxSamples)
		}
	}
	q.seed = s.cfg.DefaultSeed
	if raw := vals.Get("seed"); raw != "" {
		if q.seed, err = strconv.ParseUint(raw, 10, 64); err != nil {
			return nil, badRequest("seed: %v", err)
		}
	}
	q.timeout = s.cfg.DefaultTimeout
	if raw := vals.Get("timeout"); raw != "" {
		if q.timeout, err = time.ParseDuration(raw); err != nil {
			return nil, badRequest("timeout: %v", err)
		}
		if q.timeout <= 0 {
			return nil, badRequest("timeout must be positive")
		}
	}

	// Chain schedule matches what a scalar mh.FlowProb caller would use
	// for this model, so single-request batches are bit-identical to the
	// library answer.
	q.opts = mh.DefaultOptions(m.ICM.NumEdges())
	q.opts.Samples = samples
	return q, nil
}

func (q *query) batchKey() batchKey {
	return batchKey{
		digest:  q.model.Digest,
		kind:    q.kind,
		conds:   q.condKey,
		burnIn:  q.opts.BurnIn,
		thin:    q.opts.Thin,
		samples: q.opts.Samples,
		seed:    q.seed,
	}
}

func (q *query) cacheKey() string {
	switch q.kind {
	case kindCommunity:
		return fmt.Sprintf("%s|community|%d|%d|%s|%d|%d|%d|%d",
			q.model.Digest, q.source, q.sink, q.condKey,
			q.opts.BurnIn, q.opts.Thin, q.opts.Samples, q.seed)
	case kindImpact:
		return fmt.Sprintf("%s|impact|%s|%s|%d|%d|%d|%d",
			q.model.Digest, q.sourcesKey, q.condKey,
			q.opts.BurnIn, q.opts.Thin, q.opts.Samples, q.seed)
	default:
		return fmt.Sprintf("%s|flow|%d|%d|%s|%d|%d|%d|%d",
			q.model.Digest, q.source, q.sink, q.condKey,
			q.opts.BurnIn, q.opts.Thin, q.opts.Samples, q.seed)
	}
}

// analyticCacheKey keys the analytic /impact path: the exact law depends
// only on the model and the source set — no chain schedule, seed, or
// sample count — so analytic entries are shared across all of them.
func (q *query) analyticCacheKey() string {
	return fmt.Sprintf("%s|impact-analytic|%s", q.model.Digest, q.sourcesKey)
}

// dispatch joins the query's batch and waits for its result or the
// request deadline; returned *httpError is ready to write.
func (s *Server) dispatch(r *http.Request, q *query) (flowResult, *httpError) {
	ctx, cancel := context.WithTimeout(r.Context(), q.timeout)
	defer cancel()
	pair := mh.FlowPair{Source: q.source, Sink: q.sink}
	if q.kind == kindCommunity {
		pair.Sink = q.source
	}
	m, err := s.batcher.join(ctx, q.batchKey(), q.model.ICM, q.conds, pair, q.sources, q.sourcesKey, q.cacheKey())
	if err != nil {
		return flowResult{}, &httpError{status: http.StatusServiceUnavailable, msg: err.Error()}
	}
	select {
	case res := <-m.done:
		if res.Err != nil {
			return flowResult{}, s.mapBatchError(ctx, res.Err)
		}
		return res, nil
	case <-ctx.Done():
		s.metrics.Timeouts.Add(1)
		return flowResult{}, &httpError{status: http.StatusGatewayTimeout,
			msg: fmt.Sprintf("deadline exceeded after %v", q.timeout)}
	}
}

func (s *Server) mapBatchError(ctx context.Context, err error) *httpError {
	switch {
	case errors.Is(err, mh.ErrInterrupted) && ctx.Err() != nil:
		s.metrics.Timeouts.Add(1)
		return &httpError{status: http.StatusGatewayTimeout, msg: err.Error()}
	case errors.Is(err, ErrDraining), errors.Is(err, ErrOverloaded):
		return &httpError{status: http.StatusServiceUnavailable, msg: err.Error()}
	case errors.Is(err, mh.ErrUnsatisfiable):
		return &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	default:
		return &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
}

type flowResponse struct {
	Model      string  `json:"model"`
	Source     int     `json:"source"`
	Sink       int     `json:"sink"`
	Cond       string  `json:"cond,omitempty"`
	Prob       float64 `json:"prob"`
	Samples    int     `json:"samples"`
	Seed       uint64  `json:"seed"`
	Cached     bool    `json:"cached"`
	BatchSize  int     `json:"batch_size,omitempty"`
	Lanes      int     `json:"lanes,omitempty"`
	Acceptance float64 `json:"acceptance_rate,omitempty"`
}

func (s *Server) handleFlow(w http.ResponseWriter, r *http.Request) {
	s.metrics.FlowRequests.Add(1)
	q, herr := s.parseQuery(r, kindFlow)
	if herr != nil {
		writeError(w, herr)
		return
	}
	resp := flowResponse{
		Model: q.model.Name, Source: int(q.source), Sink: int(q.sink),
		Cond: q.condKey, Samples: q.opts.Samples, Seed: q.seed,
	}
	if v, ok := s.cache.Get(q.cacheKey()); ok {
		s.metrics.CacheHits.Add(1)
		resp.Prob, resp.Cached = v.(float64), true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.metrics.CacheMisses.Add(1)
	res, herr := s.dispatch(r, q)
	if herr != nil {
		writeError(w, herr)
		return
	}
	resp.Prob = res.Prob
	resp.BatchSize, resp.Lanes, resp.Acceptance = res.BatchSize, res.Lanes, res.Acceptance
	writeJSON(w, http.StatusOK, resp)
}

type communityEntry struct {
	Node int     `json:"node"`
	Prob float64 `json:"prob"`
}

type communityResponse struct {
	Model      string           `json:"model"`
	Source     int              `json:"source"`
	Cond       string           `json:"cond,omitempty"`
	Samples    int              `json:"samples"`
	Seed       uint64           `json:"seed"`
	Cached     bool             `json:"cached"`
	Top        []communityEntry `json:"top"`
	BatchSize  int              `json:"batch_size,omitempty"`
	Lanes      int              `json:"lanes,omitempty"`
	Acceptance float64          `json:"acceptance_rate,omitempty"`
}

func (s *Server) handleCommunity(w http.ResponseWriter, r *http.Request) {
	s.metrics.CommunityRequests.Add(1)
	q, herr := s.parseQuery(r, kindCommunity)
	if herr != nil {
		writeError(w, herr)
		return
	}
	top := 10
	if raw := r.URL.Query().Get("top"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			writeError(w, badRequest("top must be a positive integer"))
			return
		}
		top = v
	}
	resp := communityResponse{
		Model: q.model.Name, Source: int(q.source),
		Cond: q.condKey, Samples: q.opts.Samples, Seed: q.seed,
	}
	// The cache stores the full per-node vector so ?top= never splits
	// cache entries.
	if v, ok := s.cache.Get(q.cacheKey()); ok {
		s.metrics.CacheHits.Add(1)
		resp.Cached = true
		resp.Top = topFlows(v.([]float64), q.source, top)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.metrics.CacheMisses.Add(1)
	res, herr := s.dispatch(r, q)
	if herr != nil {
		writeError(w, herr)
		return
	}
	resp.Top = topFlows(res.Community, q.source, top)
	resp.BatchSize, resp.Lanes, resp.Acceptance = res.BatchSize, res.Lanes, res.Acceptance
	writeJSON(w, http.StatusOK, resp)
}

// topFlows ranks the community vector, dropping the source itself and
// zero-probability nodes, ties broken by node id for a deterministic
// response body.
func topFlows(probs []float64, source graph.NodeID, top int) []communityEntry {
	out := make([]communityEntry, 0, top)
	for v, p := range probs {
		if graph.NodeID(v) != source && p > 0 {
			out = append(out, communityEntry{Node: v, Prob: p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		//flowlint:ignore floatcmp -- sort tiebreak: both probabilities are k/Samples quotients from the same sweep, equal iff their hit counts are; no rounding tolerance is meaningful here
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].Node < out[j].Node
	})
	if len(out) > top {
		out = out[:top]
	}
	return out
}

// impactResponse is the /impact payload. Method labels the estimator
// that produced Dist — a sizedist.Method name for the analytic path,
// "mh-sampled" for the batched chain — and Exact reports whether Dist is
// the exact law (sampled and bounded-analytic answers are not).
type impactResponse struct {
	Model      string    `json:"model"`
	Sources    []int     `json:"sources"`
	Cond       string    `json:"cond,omitempty"`
	Mode       string    `json:"mode"`
	Method     string    `json:"method"`
	Exact      bool      `json:"exact"`
	Mean       float64   `json:"mean"`
	Dist       []float64 `json:"dist"`
	Samples    int       `json:"samples,omitempty"`
	Seed       uint64    `json:"seed,omitempty"`
	Cached     bool      `json:"cached"`
	BatchSize  int       `json:"batch_size,omitempty"`
	Lanes      int       `json:"lanes,omitempty"`
	Acceptance float64   `json:"acceptance_rate,omitempty"`
}

// impactAnalytic is the cached form of an analytic /impact answer.
type impactAnalytic struct {
	method string
	exact  bool
	dist   []float64
}

// handleImpact serves the cascade-size distribution of a source set.
// mode=analytic demands the sizedist engine (422 when intractable, 400
// when conditioned — the analytic law is unconditional); mode=sampled
// demands the batched MH estimator; mode=auto (the default) serves the
// analytic answer when it is exact and falls back to sampling otherwise.
// The analytic path runs synchronously — no chain, no batch — and its
// cache entries ignore the chain schedule entirely.
func (s *Server) handleImpact(w http.ResponseWriter, r *http.Request) {
	s.metrics.ImpactRequests.Add(1)
	q, herr := s.parseQuery(r, kindImpact)
	if herr != nil {
		writeError(w, herr)
		return
	}
	if q.mode == "analytic" && len(q.conds) > 0 {
		writeError(w, badRequest("mode=analytic does not support cond: the analytic engine computes the unconditional law"))
		return
	}
	resp := impactResponse{
		Model: q.model.Name, Sources: nodeInts(q.sources), Cond: q.condKey,
	}
	if q.mode != "sampled" && len(q.conds) == 0 {
		if v, ok := s.cache.Get(q.analyticCacheKey()); ok {
			// Inexact entries are cached too, so auto-mode repeats on a
			// loop-heavy model skip straight to sampling instead of
			// re-deriving the condensation bound every request.
			entry := v.(impactAnalytic)
			if entry.exact || q.mode == "analytic" {
				s.metrics.CacheHits.Add(1)
				s.metrics.ImpactAnalytic.Add(1)
				resp.Mode, resp.Method, resp.Exact, resp.Cached = "analytic", entry.method, entry.exact, true
				resp.Dist, resp.Mean = entry.dist, distMean(entry.dist)
				writeJSON(w, http.StatusOK, resp)
				return
			}
		} else {
			res, err := sizedist.Compute(q.model.ICM, q.sources, sizedist.DefaultOptions())
			if err == nil {
				s.cache.Add(q.analyticCacheKey(), impactAnalytic{method: res.Method.String(), exact: res.Exact, dist: res.Dist})
			}
			switch {
			case err == nil && (res.Exact || q.mode == "analytic"):
				s.metrics.CacheMisses.Add(1)
				s.metrics.ImpactAnalytic.Add(1)
				resp.Mode, resp.Method, resp.Exact = "analytic", res.Method.String(), res.Exact
				resp.Dist, resp.Mean = res.Dist, res.Mean()
				writeJSON(w, http.StatusOK, resp)
				return
			case q.mode == "analytic":
				writeError(w, &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()})
				return
			}
		}
		// mode=auto with an inexact (or intractable) analytic answer:
		// fall through to the sampled estimator.
	}
	resp.Mode, resp.Method = "sampled", "mh-sampled"
	resp.Samples, resp.Seed = q.opts.Samples, q.seed
	if v, ok := s.cache.Get(q.cacheKey()); ok {
		s.metrics.CacheHits.Add(1)
		s.metrics.ImpactSampled.Add(1)
		resp.Cached = true
		resp.Dist = v.([]float64)
		resp.Mean = distMean(resp.Dist)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.metrics.CacheMisses.Add(1)
	res, herr := s.dispatch(r, q)
	if herr != nil {
		writeError(w, herr)
		return
	}
	s.metrics.ImpactSampled.Add(1)
	resp.Dist = res.Impact
	resp.Mean = distMean(resp.Dist)
	resp.BatchSize, resp.Lanes, resp.Acceptance = res.BatchSize, res.Lanes, res.Acceptance
	writeJSON(w, http.StatusOK, resp)
}

// nodeInts renders a node slice for a JSON payload.
func nodeInts(nodes []graph.NodeID) []int {
	out := make([]int, len(nodes))
	for i, v := range nodes {
		out[i] = int(v)
	}
	return out
}

// distMean is the expected impact of a normalized size histogram.
func distMean(dist []float64) float64 {
	mean := 0.0
	for k, p := range dist {
		mean += float64(k) * p
	}
	return mean
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, herr *httpError) {
	writeJSON(w, herr.status, map[string]string{"error": herr.msg})
}

// ParseConds parses comma-separated flow conditions — "u>v=1" (flow
// known present) or "u>v=0" (known absent) — into core form. An empty
// string is no conditions. Shared with the flowquery CLI.
func ParseConds(s string) ([]core.FlowCondition, error) {
	if s == "" {
		return nil, nil
	}
	var out []core.FlowCondition
	for _, part := range strings.Split(s, ",") {
		var c core.FlowCondition
		uv, req, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("condition %q: want u>v=0|1", part)
		}
		u, v, ok := strings.Cut(uv, ">")
		if !ok {
			return nil, fmt.Errorf("condition %q: want u>v=0|1", part)
		}
		un, err := strconv.Atoi(strings.TrimSpace(u))
		if err != nil {
			return nil, fmt.Errorf("condition %q: %w", part, err)
		}
		vn, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return nil, fmt.Errorf("condition %q: %w", part, err)
		}
		switch strings.TrimSpace(req) {
		case "1":
			c.Require = true
		case "0":
			c.Require = false
		default:
			return nil, fmt.Errorf("condition %q: requirement must be 0 or 1", part)
		}
		c.Source, c.Sink = graph.NodeID(un), graph.NodeID(vn)
		out = append(out, c)
	}
	return out, nil
}

// ParseSources parses a comma-separated node-id list ("3,1,7") into
// node IDs. Whitespace around entries is tolerated; an empty string is
// an empty set. Range validation is the caller's job (it needs the
// model). Shared with the flowquery CLI.
func ParseSources(s string) ([]graph.NodeID, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]graph.NodeID, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("source %q: %w", part, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("source %d: must be non-negative", v)
		}
		out = append(out, graph.NodeID(v))
	}
	return out, nil
}

// sourcesKey renders a canonical (already sorted, distinct) source set
// for batch and cache keys.
func sourcesKey(sources []graph.NodeID) string {
	parts := make([]string, len(sources))
	for i, v := range sources {
		parts[i] = strconv.Itoa(int(v))
	}
	return strings.Join(parts, ",")
}

// condsKey renders conditions in canonical sorted form, so two requests
// listing the same conditions in different orders share a batch and a
// cache line.
func condsKey(conds []core.FlowCondition) string {
	if len(conds) == 0 {
		return ""
	}
	parts := make([]string, len(conds))
	for i, c := range conds {
		req := 0
		if c.Require {
			req = 1
		}
		parts[i] = fmt.Sprintf("%d>%d=%d", c.Source, c.Sink, req)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
