package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"infoflow/internal/core"
	"infoflow/internal/graph"
)

// ModelDigest returns a stable 64-bit FNV-1a digest of an ICM's
// structure and parameters: node count, every edge endpoint pair in
// EdgeID order, and the raw bits of every activation probability. Two
// models with the same digest answer every flow query identically, so
// the digest is the model component of batch and cache keys — a
// retrained or edited model changes digest and can never alias a stale
// cache entry.
func ModelDigest(m *core.ICM) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(m.NumNodes()))
	put(uint64(m.NumEdges()))
	for id := 0; id < m.NumEdges(); id++ {
		e := m.G.Edge(graph.EdgeID(id))
		put(uint64(e.From))
		put(uint64(e.To))
		put(math.Float64bits(m.P[id]))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
