package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
)

// startServer builds a Server over a fake clock and mounts it on an
// httptest server. The fake clock never advances on its own, so batches
// flush only on lane-full, explicit Advance, or Drain.
func startServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	cfg := Config{
		Models:         []Model{{Name: "m", ICM: serveICM(3, 20, 60)}},
		Window:         time.Hour,
		Workers:        2,
		QueueCap:       8,
		DefaultSamples: 100,
		DefaultTimeout: 10 * time.Second,
		Clock:          clock,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts, clock
}

func getJSON(t *testing.T, url string, out any) (status int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding response: %v", url, err)
	}
	return resp.StatusCode
}

// TestServerBurstCoalesces is the headline acceptance check: 64
// concurrent same-model /flow requests (distinct pairs) against a
// 64-lane budget must be served by one lane-full sweep — the occupancy
// metric proves the coalescing. (TestServerLaneBudget covers bursts
// beyond 64 lanes.)
func TestServerBurstCoalesces(t *testing.T) {
	srv, ts, _ := startServer(t, func(c *Config) {
		c.Models = []Model{{Name: "m", ICM: serveICM(5, 70, 200)}}
		c.DefaultSamples = 50
		c.LaneBudget = mh.LaneWidth
	})
	var wg sync.WaitGroup
	resps := make([]flowResponse, mh.LaneWidth)
	codes := make([]int, mh.LaneWidth)
	for i := 0; i < mh.LaneWidth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/flow?source=%d&sink=%d", ts.URL, i%8, 10+i/8)
			codes[i] = getJSON(t, url, &resps[i])
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	met := srv.Metrics()
	if got := met.Batches.Load(); got > 2 {
		t.Errorf("burst of %d requests took %d sweeps, want <= 2", mh.LaneWidth, got)
	}
	if got := met.BatchedRequests.Load(); got != mh.LaneWidth {
		t.Errorf("BatchedRequests = %d, want %d", got, mh.LaneWidth)
	}
	if occ := met.Occupancy(); occ < mh.LaneWidth/2 {
		t.Errorf("batch occupancy = %.1f, want >= %d", occ, mh.LaneWidth/2)
	}
	// Co-batched answers must still equal scalar FlowProb (spot-check —
	// the full 64-way identity is covered at the batcher layer).
	m := srv.models["m"].ICM
	opts := mh.DefaultOptions(m.NumEdges())
	opts.Samples = 50
	for _, i := range []int{0, 17, 42, 63} {
		want, err := mh.FlowProb(m, graph.NodeID(resps[i].Source), graph.NodeID(resps[i].Sink), nil, opts, rng.New(srv.cfg.DefaultSeed))
		if err != nil {
			t.Fatal(err)
		}
		if resps[i].Prob != want {
			t.Errorf("request %d: prob %v != scalar %v", i, resps[i].Prob, want)
		}
	}
}

// TestServerFlowBitIdentity: one /flow request through the full HTTP
// path equals scalar mh.FlowProb bit-for-bit.
func TestServerFlowBitIdentity(t *testing.T) {
	srv, ts, clock := startServer(t, nil)
	var resp flowResponse
	var status int
	done := make(chan struct{})
	go func() {
		defer close(done)
		status = getJSON(t, ts.URL+"/flow?source=2&sink=9&samples=150&seed=42", &resp)
	}()
	waitUntil(t, "window collector to arm", func() bool { return clock.Waiters() > 0 })
	clock.Advance(time.Hour)
	<-done
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	m := srv.models["m"].ICM
	opts := mh.DefaultOptions(m.NumEdges())
	opts.Samples = 150
	want, err := mh.FlowProb(m, 2, 9, nil, opts, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Prob != want {
		t.Errorf("served prob %v != mh.FlowProb %v (must be bit-identical)", resp.Prob, want)
	}
	if resp.Cached || resp.BatchSize != 1 || resp.Lanes != 1 {
		t.Errorf("cached/batch/lanes = %v/%d/%d, want false/1/1", resp.Cached, resp.BatchSize, resp.Lanes)
	}
}

// TestServerCacheHit: repeating a query is served from cache with the
// identical probability and no new sweep.
func TestServerCacheHit(t *testing.T) {
	srv, ts, clock := startServer(t, nil)
	url := ts.URL + "/flow?source=1&sink=7&samples=80&seed=5"
	var first flowResponse
	done := make(chan struct{})
	go func() {
		defer close(done)
		getJSON(t, url, &first)
	}()
	waitUntil(t, "window collector to arm", func() bool { return clock.Waiters() > 0 })
	clock.Advance(time.Hour)
	<-done

	batches := srv.Metrics().Batches.Load()
	var second flowResponse
	if status := getJSON(t, url, &second); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !second.Cached {
		t.Error("second identical query not served from cache")
	}
	if second.Prob != first.Prob {
		t.Errorf("cached prob %v != fresh prob %v", second.Prob, first.Prob)
	}
	if got := srv.Metrics().Batches.Load(); got != batches {
		t.Errorf("cache hit ran a sweep: batches %d -> %d", batches, got)
	}
	if hits := srv.Metrics().CacheHits.Load(); hits != 1 {
		t.Errorf("CacheHits = %d, want 1", hits)
	}
}

// TestServerCommunity: a /community response matches the library's
// community estimator and respects ?top=.
func TestServerCommunity(t *testing.T) {
	srv, ts, clock := startServer(t, nil)
	var resp communityResponse
	var status int
	done := make(chan struct{})
	go func() {
		defer close(done)
		status = getJSON(t, ts.URL+"/community?source=4&samples=120&seed=9&top=5", &resp)
	}()
	waitUntil(t, "window collector to arm", func() bool { return clock.Waiters() > 0 })
	clock.Advance(time.Hour)
	<-done
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	m := srv.models["m"].ICM
	opts := mh.DefaultOptions(m.NumEdges())
	opts.Samples = 120
	probs, err := mh.CommunityFlowProbs(m, 4, nil, opts, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	want := topFlows(probs, 4, 5)
	if len(resp.Top) != len(want) {
		t.Fatalf("top has %d entries, want %d", len(resp.Top), len(want))
	}
	for i := range want {
		if resp.Top[i] != want[i] {
			t.Errorf("top[%d] = %+v, want %+v", i, resp.Top[i], want[i])
		}
	}
}

// TestServerTimeout: a request whose deadline passes before its batch
// flushes gets 504 and counts toward the timeout metric.
func TestServerTimeout(t *testing.T) {
	srv, ts, _ := startServer(t, nil) // window never fires: the batch cannot flush
	var resp map[string]string
	status := getJSON(t, ts.URL+"/flow?source=0&sink=1&timeout=30ms", &resp)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", status)
	}
	if got := srv.Metrics().Timeouts.Load(); got != 1 {
		t.Errorf("Timeouts = %d, want 1", got)
	}
}

// TestServerDrain: after Drain, queries and health checks report the
// server as unavailable.
func TestServerDrain(t *testing.T) {
	_, ts, _ := startServer(t, nil)
	var ok map[string]string
	if status := getJSON(t, ts.URL+"/healthz", &ok); status != http.StatusOK || ok["status"] != "ok" {
		t.Fatalf("healthz before drain: %d %v", status, ok)
	}
	// Drain via the same path the SIGTERM handler uses.
	srv2, ts2, _ := startServer(t, nil)
	srv2.Drain()
	var resp map[string]string
	if status := getJSON(t, ts2.URL+"/healthz", &resp); status != http.StatusServiceUnavailable || resp["status"] != "draining" {
		t.Errorf("healthz after drain: %d %v, want 503 draining", status, resp)
	}
	if status := getJSON(t, ts2.URL+"/flow?source=0&sink=1", &resp); status != http.StatusServiceUnavailable {
		t.Errorf("flow after drain: %d, want 503", status)
	}
}

// TestServerBadRequests: parse and validation failures map to the right
// status codes.
func TestServerBadRequests(t *testing.T) {
	_, ts, _ := startServer(t, func(c *Config) { c.MaxSamples = 1000 })
	cases := []struct {
		path string
		want int
	}{
		{"/flow?sink=1", http.StatusBadRequest},                         // missing source
		{"/flow?source=0", http.StatusBadRequest},                       // missing sink
		{"/flow?source=0&sink=99", http.StatusBadRequest},               // sink out of range
		{"/flow?source=-1&sink=1", http.StatusBadRequest},               // negative source
		{"/flow?source=0&sink=1&model=nope", http.StatusNotFound},       // unknown model
		{"/flow?source=0&sink=1&samples=100000", http.StatusBadRequest}, // over MaxSamples
		{"/flow?source=0&sink=1&samples=0", http.StatusBadRequest},
		{"/flow?source=0&sink=1&cond=3-7", http.StatusBadRequest},    // malformed condition
		{"/flow?source=0&sink=1&cond=3>99=1", http.StatusBadRequest}, // condition out of range
		{"/flow?source=0&sink=1&timeout=-1s", http.StatusBadRequest},
		{"/community?top=5", http.StatusBadRequest},           // missing source
		{"/community?source=0&top=-2", http.StatusBadRequest}, // bad top
	}
	for _, tc := range cases {
		var resp map[string]string
		if status := getJSON(t, ts.URL+tc.path, &resp); status != tc.want {
			t.Errorf("GET %s: status %d, want %d (%v)", tc.path, status, tc.want, resp)
		}
	}
}

// TestServerCondCanonicalisation: condition order must not split the
// cache — "a,b" and "b,a" are one cache line.
func TestServerCondCanonicalisation(t *testing.T) {
	srv, ts, clock := startServer(t, nil)
	var first flowResponse
	done := make(chan struct{})
	go func() {
		defer close(done)
		getJSON(t, ts.URL+"/flow?source=0&sink=9&cond=1>2=1,3>4=0", &first)
	}()
	waitUntil(t, "window collector to arm", func() bool { return clock.Waiters() > 0 })
	clock.Advance(time.Hour)
	<-done
	var second flowResponse
	if status := getJSON(t, ts.URL+"/flow?source=0&sink=9&cond=3>4=0,1>2=1", &second); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !second.Cached || second.Prob != first.Prob {
		t.Errorf("reordered conditions missed the cache (cached=%v, %v vs %v)", second.Cached, second.Prob, first.Prob)
	}
	if srv.Metrics().CacheHits.Load() != 1 {
		t.Errorf("CacheHits = %d, want 1", srv.Metrics().CacheHits.Load())
	}
}

// TestServerMetricsEndpoint: /metrics exposes the flowserve expvar with
// the advertised gauges.
func TestServerMetricsEndpoint(t *testing.T) {
	_, ts, _ := startServer(t, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	raw, ok := payload["flowserve"]
	if !ok {
		t.Fatal("expvar payload has no flowserve entry")
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"batch_occupancy", "cache_hit_rate", "queue_depth", "acceptance_rate", "lane_budget", "lane_utilization",
		"lane_replays", "lane_repairs", "lane_rebuilds", "lane_overflow_rebuilds", "lane_flush_rebuilds",
		"lane_replay_rate", "lane_repair_rate", "lane_rebuild_rate"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("flowserve expvar missing %q", k)
		}
	}
}

// TestServerLaneBudgetRounding pins the Config.LaneBudget normalisation:
// default 512, round up to a multiple of 64, cap at mh.MaxLanes.
func TestServerLaneBudgetRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 512},
		{-3, 512},
		{64, 64},
		{100, 128},
		{512, 512},
		{mh.MaxLanes + 1, mh.MaxLanes},
		{1 << 20, mh.MaxLanes},
	} {
		srv, err := NewServer(Config{
			Models:     []Model{{Name: "m", ICM: serveICM(3, 20, 60)}},
			LaneBudget: tc.in,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := srv.cfg.LaneBudget; got != tc.want {
			t.Errorf("LaneBudget %d normalised to %d, want %d", tc.in, got, tc.want)
		}
		if got := srv.Metrics().LaneBudget(); got != tc.want {
			t.Errorf("Metrics().LaneBudget() after config %d = %d, want %d", tc.in, got, tc.want)
		}
		srv.Drain()
	}
}

// TestServerLaneBudgetBurst: a burst wider than one 64-lane word (130
// distinct pairs against a 128-lane budget) coalesces into at most two
// wide sweeps — one lane-full flush at the budget plus the drain-time
// remainder — and lane utilization reflects the fill against the
// budget, not against 64.
func TestServerLaneBudgetBurst(t *testing.T) {
	const budget = 2 * mh.LaneWidth
	srv, ts, _ := startServer(t, func(c *Config) {
		c.Models = []Model{{Name: "m", ICM: serveICM(5, 200, 600)}}
		c.DefaultSamples = 30
		c.LaneBudget = budget
		c.Workers = 4
	})
	var wg sync.WaitGroup
	codes := make([]int, budget)
	for i := 0; i < budget; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp flowResponse
			url := fmt.Sprintf("%s/flow?source=%d&sink=%d", ts.URL, i%16, 20+i/16)
			codes[i] = getJSON(t, url, &resp)
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	met := srv.Metrics()
	if got := met.Batches.Load(); got != 1 {
		t.Errorf("burst of %d distinct pairs took %d sweeps, want 1 (budget %d)", budget, got, budget)
	}
	if got := met.BatchedLanes.Load(); got != budget {
		t.Errorf("BatchedLanes = %d, want %d", got, budget)
	}
	if util := met.LaneUtilization(); util != 1.0 {
		t.Errorf("lane utilization = %v, want 1.0 for a lane-full flush", util)
	}
}

// TestServerPprof: the pprof index is mounted.
func TestServerPprof(t *testing.T) {
	_, ts, _ := startServer(t, nil)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", resp.StatusCode)
	}
}

// TestParseCondsRejectsGarbage exercises the exported parser directly.
func TestParseCondsRejectsGarbage(t *testing.T) {
	good, err := ParseConds(" 3>7=1 , 3>9=0 ")
	if err != nil || len(good) != 2 || !good[0].Require || good[1].Require {
		t.Fatalf("ParseConds = %+v, %v", good, err)
	}
	for _, bad := range []string{"3>7", "3-7=1", "a>b=1", "3>7=2", ">=1"} {
		if _, err := ParseConds(bad); err == nil {
			t.Errorf("ParseConds(%q) accepted garbage", bad)
		}
	}
	if got, err := ParseConds(""); err != nil || got != nil {
		t.Errorf("ParseConds(\"\") = %v, %v; want nil, nil", got, err)
	}
}
