package experiments

import (
	"fmt"
	"strings"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
	"infoflow/internal/twitter"
	"infoflow/internal/unattrib"
)

// AblationConfig parameterises the design-choice ablations DESIGN.md
// calls out: the weighted flip proposal of §III-C versus a uniform
// proposal, and the omnipotent outside-world user of §V-D versus
// omitting it.
type AblationConfig struct {
	Seed uint64
	// Proposal ablation: model size and chain budget.
	Nodes, Edges int
	Budget       mh.Options
	Queries      int
	// Omnipotent ablation: corpus and learning settings.
	Twitter   twitter.Config
	TrainFrac float64
	Radius    int
	Bayes     unattrib.BayesOptions
	MH        mh.Options
}

// AblationPaper returns the full-scale configuration.
func AblationPaper() AblationConfig {
	return AblationConfig{
		Seed:  77,
		Nodes: 50, Edges: 200,
		Budget:  mh.Options{BurnIn: 1000, Thin: 50, Samples: 2000},
		Queries: 40,
		Twitter: twitter.DefaultConfig(), TrainFrac: 0.7, Radius: 4,
		Bayes: unattrib.BayesOptions{BurnIn: 200, Thin: 2, Samples: 400, Step: 0.08},
		MH:    mh.Options{BurnIn: 2000, Thin: 50, Samples: 1500},
	}
}

// AblationSmall returns a fast configuration for tests.
func AblationSmall() AblationConfig {
	c := AblationPaper()
	c.Nodes, c.Edges = 15, 50
	c.Budget = mh.Options{BurnIn: 300, Thin: 20, Samples: 800}
	c.Queries = 12
	tw := twitter.DefaultConfig()
	tw.NumUsers = 300
	tw.NumTweets = 0
	tw.NumHashtags = 0
	tw.NumURLs = 120
	c.Twitter = tw
	c.Radius = 3
	c.Bayes = unattrib.BayesOptions{BurnIn: 100, Thin: 1, Samples: 150, Step: 0.1}
	c.MH = mh.Options{BurnIn: 500, Thin: 20, Samples: 500}
	return c
}

// AblationResult reports both ablations.
type AblationResult struct {
	// Proposal ablation at a fixed chain budget.
	WeightedAcceptance, UniformAcceptance float64
	WeightedMAE, UniformMAE               float64 // vs direct-sampling reference
	// Omnipotent ablation: mean community-flow probability from the
	// source with and without the omnipotent user in the learned graph.
	MeanFlowWithOmni, MeanFlowNoOmni float64
}

// String renders both comparisons.
func (r *AblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation 1: §III-C weighted flip proposal vs uniform proposal (same budget)\n")
	fmt.Fprintf(&b, "  weighted: acceptance %.3f, MAE vs reference %.4f\n", r.WeightedAcceptance, r.WeightedMAE)
	fmt.Fprintf(&b, "  uniform:  acceptance %.3f, MAE vs reference %.4f\n", r.UniformAcceptance, r.UniformMAE)
	b.WriteString("Ablation 2: omnipotent outside-world user in unattributed learning\n")
	fmt.Fprintf(&b, "  mean source-to-community flow with omnipotent: %.4f\n", r.MeanFlowWithOmni)
	fmt.Fprintf(&b, "  mean source-to-community flow without:         %.4f\n", r.MeanFlowNoOmni)
	b.WriteString("  (the paper: omitting the omnipotent user increases flow probabilities marginally)\n")
	return b.String()
}

// Ablation runs both studies.
func Ablation(cfg AblationConfig) (*AblationResult, error) {
	res := &AblationResult{}
	if err := proposalAblation(cfg, res); err != nil {
		return nil, err
	}
	if err := omnipotentAblation(cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// proposalAblation estimates the same random flow queries with both
// proposals at an identical budget and scores them against long direct
// sampling.
func proposalAblation(cfg AblationConfig, res *AblationResult) error {
	r := rng.New(cfg.Seed)
	bm := core.GenerateBetaICM(r, cfg.Nodes, cfg.Edges, 1, 20, 1, 20)
	m := bm.ExpectedICM()
	var accW, accU float64
	var maeW, maeU float64
	for q := 0; q < cfg.Queries; q++ {
		u := graph.NodeID(r.Intn(cfg.Nodes))
		v := graph.NodeID(r.Intn(cfg.Nodes))
		for v == u {
			v = graph.NodeID(r.Intn(cfg.Nodes))
		}
		ref := mh.DirectFlowProb(m, u, v, 40000, r)
		run := func(uniform bool) (float64, float64, error) {
			s, err := mh.NewSampler(m, nil, r.Fork())
			if err != nil {
				return 0, 0, err
			}
			s.SetUniformProposal(uniform)
			hits := 0
			err = s.Run(cfg.Budget, func(x core.PseudoState) {
				if m.HasFlow(u, v, x) {
					hits++
				}
			})
			if err != nil {
				return 0, 0, err
			}
			return float64(hits) / float64(cfg.Budget.Samples), s.AcceptanceRate(), nil
		}
		est, acc, err := run(false)
		if err != nil {
			return err
		}
		accW += acc / float64(cfg.Queries)
		maeW += abs(est-ref) / float64(cfg.Queries)
		est, acc, err = run(true)
		if err != nil {
			return err
		}
		accU += acc / float64(cfg.Queries)
		maeU += abs(est-ref) / float64(cfg.Queries)
	}
	res.WeightedAcceptance, res.UniformAcceptance = accW, accU
	res.WeightedMAE, res.UniformMAE = maeW, maeU
	return nil
}

// omnipotentAblation learns URL edge probabilities twice — with the
// omnipotent outside-world user absorbing externally-caused activations,
// and without it (so those activations attribute to real edges) — and
// compares the source-to-community flow levels each learned model
// implies. The paper reports that omitting the omnipotent user increases
// flow probabilities marginally.
func omnipotentAblation(cfg AblationConfig, res *AblationResult) error {
	r := rng.New(cfg.Seed + 1)
	d, err := twitter.Generate(cfg.Twitter, r)
	if err != nil {
		return err
	}
	lab, err := NewTagFlowLab(d, twitter.MentionURLs, cfg.TrainFrac)
	if err != nil {
		return err
	}
	withOmni, err := lab.LearnWithOptions(cfg.Radius, cfg.Bayes, true, r)
	if err != nil {
		return err
	}
	noOmni, err := lab.LearnWithOptions(cfg.Radius, cfg.Bayes, false, r)
	if err != nil {
		return err
	}
	flowsWith, err := withOmni.CommunityFlow(withOmni.OursMean, cfg.MH, r)
	if err != nil {
		return err
	}
	flowsNo, err := noOmni.CommunityFlow(noOmni.OursMean, cfg.MH, r)
	if err != nil {
		return err
	}
	// Both models share the same sub-graph (node mappings included), so
	// per-node flows are directly comparable.
	nUsers := 0
	for i, old := range withOmni.ToOld {
		if old == d.Omnipotent || old == lab.Source {
			continue
		}
		res.MeanFlowWithOmni += flowsWith[i]
		res.MeanFlowNoOmni += flowsNo[i]
		nUsers++
	}
	if nUsers > 0 {
		res.MeanFlowWithOmni /= float64(nUsers)
		res.MeanFlowNoOmni /= float64(nUsers)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
