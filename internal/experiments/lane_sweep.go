package experiments

import (
	"fmt"
	"strings"
	"time"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
)

// LaneSweepConfig parameterises the lane-width sweep: the SAME fixed
// set of flow queries answered by mh.FlowProbBatchWide at each mask
// width W, so the table isolates what width buys — fewer sweeps per
// thinned sample (ceil(Queries/64W) chunks), each sweep touching W
// words per edge. The estimates are width-invariant by contract, and
// the run verifies that while timing it.
type LaneSweepConfig struct {
	Seed    uint64
	Nodes   int   // graph size (paper's §IV-C timing scale: 6000)
	Edges   int   // paper: 14000
	Queries int   // fixed total flow queries (paper sweep: 512)
	Widths  []int // lane-mask widths in words, each 1..mh.MaxLaneWords
	MH      mh.Options
	// Clock supplies the timestamps bracketing each measurement; nil
	// uses time.Now. Injectable so the timing columns are testable and
	// wall-clock reads stay explicit (the fig6 idiom).
	Clock func() time.Time
}

// LaneSweepPaper returns the §IV-C-scale configuration: 512 queries at
// every width from one word (eight chunked sweeps per sample) to eight
// (one wide sweep per sample).
func LaneSweepPaper() LaneSweepConfig {
	return LaneSweepConfig{
		Seed: 65, Nodes: 6000, Edges: 14000, Queries: 512,
		Widths: []int{1, 2, 3, 4, 5, 6, 7, 8},
		MH:     mh.Options{BurnIn: 2000, Thin: 200, Samples: 200},
	}
}

// LaneSweepSmall returns a fast configuration for tests.
func LaneSweepSmall() LaneSweepConfig {
	return LaneSweepConfig{
		Seed: 65, Nodes: 300, Edges: 800, Queries: 128,
		Widths: []int{1, 2},
		MH:     mh.Options{BurnIn: 200, Thin: 20, Samples: 60},
	}
}

// LaneSweepRow is one width's measurement.
type LaneSweepRow struct {
	Words    int           // lane-mask width W
	Chunks   int           // sweeps per thinned sample at this width
	Total    time.Duration // whole batched run
	PerQuery time.Duration // Total / Queries
}

// LaneSweepResult reports the width table and the cross-width estimate
// agreement check.
type LaneSweepResult struct {
	Queries   int
	Samples   int
	Rows      []LaneSweepRow
	Identical bool // every width produced bit-identical estimates
}

// String renders the width table.
func (r *LaneSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lane-width sweep: %d flow queries, %d samples, one shared chain per width\n", r.Queries, r.Samples)
	fmt.Fprintf(&b, "%5s %7s %7s %14s %14s\n", "W", "lanes", "chunks", "total", "per-query")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%5d %7d %7d %14v %14v\n",
			row.Words, row.Words*mh.LaneWidth, row.Chunks, row.Total, row.PerQuery)
	}
	fmt.Fprintf(&b, "estimates bit-identical across widths: %v\n", r.Identical)
	return b.String()
}

// RunLaneSweep measures the table.
func RunLaneSweep(cfg LaneSweepConfig) (*LaneSweepResult, error) {
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	r := rng.New(cfg.Seed)
	g := graph.Random(r, cfg.Nodes, cfg.Edges)
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = r.Float64()
	}
	m, err := core.NewICM(g, p)
	if err != nil {
		return nil, err
	}
	pairs := make([]mh.FlowPair, cfg.Queries)
	for i := range pairs {
		u := graph.NodeID(r.Intn(cfg.Nodes))
		v := graph.NodeID(r.Intn(cfg.Nodes))
		for v == u {
			v = graph.NodeID(r.Intn(cfg.Nodes))
		}
		pairs[i] = mh.FlowPair{Source: u, Sink: v}
	}
	res := &LaneSweepResult{Queries: cfg.Queries, Samples: cfg.MH.Samples, Identical: true}
	var ref []float64
	for _, w := range cfg.Widths {
		lanesPer := w * mh.LaneWidth
		start := now()
		est, err := mh.FlowProbBatchWide(m, pairs, nil, cfg.MH, w, rng.New(cfg.Seed+1))
		if err != nil {
			return nil, fmt.Errorf("lanes: width %d: %w", w, err)
		}
		total := now().Sub(start)
		res.Rows = append(res.Rows, LaneSweepRow{
			Words:    w,
			Chunks:   (cfg.Queries + lanesPer - 1) / lanesPer,
			Total:    total,
			PerQuery: total / time.Duration(cfg.Queries),
		})
		if ref == nil {
			ref = est
		} else {
			for i := range est {
				//flowlint:ignore floatcmp -- the width-invariance contract is exact: same chain, same hit counts, so the k/Samples quotients must be bit-identical
				if est[i] != ref[i] {
					res.Identical = false
				}
			}
		}
	}
	return res, nil
}
