package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one registered experiment at either scale and returns
// a printable result.
type Runner struct {
	Name        string
	Description string
	// Run executes the experiment; small selects the fast configuration.
	Run func(small bool) (fmt.Stringer, error)
}

// Registry lists every reproducible table and figure by its paper label.
func Registry() []Runner {
	runners := []Runner{
		{
			Name:        "fig1",
			Description: "MH bucket calibration on synthetic betaICMs",
			Run: func(small bool) (fmt.Stringer, error) {
				return Fig1(pick(small, Fig1Small, Fig1Paper))
			},
		},
		{
			Name:        "fig2",
			Description: "bucket experiments on attributed Twitter evidence (radius 1-2, 0/5 known flows)",
			Run: func(small bool) (fmt.Stringer, error) {
				return Fig2(pick(small, Fig2Small, Fig2Paper))
			},
		},
		{
			Name:        "fig3",
			Description: "uncertainty: nested-MH flow distribution vs empirical beta",
			Run: func(small bool) (fmt.Stringer, error) {
				return Fig3(pick(small, Fig3Small, Fig3Paper))
			},
		},
		{
			Name:        "fig4",
			Description: "predicted vs actual tweet impact (retweet counts)",
			Run: func(small bool) (fmt.Stringer, error) {
				return Fig4(pick(small, Fig4Small, Fig4Paper))
			},
		},
		{
			Name:        "fig5",
			Description: "random walk with restart bucket experiment (baseline)",
			Run: func(small bool) (fmt.Stringer, error) {
				return Fig5(pick(small, Fig5Small, Fig5Paper))
			},
		},
		{
			Name:        "fig6",
			Description: "per-sample cost, ours vs Goyal, with and without summarisation",
			Run: func(small bool) (fmt.Stringer, error) {
				return Fig6(pick(small, Fig6Small, Fig6Paper))
			},
		},
		{
			Name:        "fig7",
			Description: "RMSE vs evidence volume for Our/Goyal/Filtered/Saito",
			Run: func(small bool) (fmt.Stringer, error) {
				return Fig7(pick(small, Fig7Small, Fig7Paper))
			},
		},
		{
			Name:        "fig8",
			Description: "URL flow prediction, ours vs Goyal, radius 4-5",
			Run: func(small bool) (fmt.Stringer, error) {
				return RunTag(pick(small, Fig8Small, Fig8Paper))
			},
		},
		{
			Name:        "fig9",
			Description: "hashtag flow prediction (substantially harder), ours vs Goyal",
			Run: func(small bool) (fmt.Stringer, error) {
				return RunTag(pick(small, Fig9Small, Fig9Paper))
			},
		},
		{
			Name:        "fig10",
			Description: "URL flow with gaussian edge-uncertainty sampling (30 graphs)",
			Run: func(small bool) (fmt.Stringer, error) {
				return Fig10(pick(small, Fig10Small, Fig10Paper))
			},
		},
		{
			Name:        "fig11",
			Description: "Saito EM restarts vs joint-Bayes MCMC on Table II",
			Run: func(small bool) (fmt.Stringer, error) {
				return Fig11(pick(small, Fig11Small, Fig11Paper))
			},
		},
		{
			Name:        "ablation",
			Description: "design ablations: weighted vs uniform proposal; omnipotent user on/off",
			Run: func(small bool) (fmt.Stringer, error) {
				return Ablation(pick(small, AblationSmall, AblationPaper))
			},
		},
		{
			Name:        "batch",
			Description: "batched 64-lane multi-query estimation vs one chain per pair (timing)",
			Run: func(small bool) (fmt.Stringer, error) {
				return RunBatch(pick(small, BatchSmall, BatchPaper))
			},
		},
		{
			Name:        "influence",
			Description: "influence maximization: RIS-sketch selection vs MC-greedy CELF, seed quality and wall-clock (timing)",
			Run: func(small bool) (fmt.Stringer, error) {
				return RunInfluence(pick(small, InfluenceSmall, InfluencePaper))
			},
		},
		{
			Name:        "lanes",
			Description: "lane-width sweep: fixed query set at mask widths W=1..8, per-query cost (timing)",
			Run: func(small bool) (fmt.Stringer, error) {
				return RunLaneSweep(pick(small, LaneSweepSmall, LaneSweepPaper))
			},
		},
		{
			Name:        "repair",
			Description: "condensation-repair sweep: replay/repair/rebuild rates and speedup vs baseline at thinning 1/10/100 (timing)",
			Run: func(small bool) (fmt.Stringer, error) {
				return RunRepairSweep(pick(small, RepairSweepSmall, RepairSweepPaper))
			},
		},
		{
			Name:        "sizedist",
			Description: "analytic cascade-size law vs sampled MH impact: TV agreement and paired timings",
			Run: func(small bool) (fmt.Stringer, error) {
				return RunSizedist(pick(small, SizedistSmall, SizedistPaper))
			},
		},
		{
			Name:        "table1",
			Description: "example evidence summary",
			Run:         func(bool) (fmt.Stringer, error) { return TableI(), nil },
		},
		{
			Name:        "table2",
			Description: "multimodal example evidence summary",
			Run:         func(bool) (fmt.Stringer, error) { return TableII(), nil },
		},
		{
			Name:        "table3",
			Description: "accuracy measures (normalised likelihood and Brier) across experiments",
			Run: func(small bool) (fmt.Stringer, error) {
				return Table3(pick(small, Table3Small, Table3Paper))
			},
		},
	}
	sort.Slice(runners, func(i, j int) bool { return runners[i].Name < runners[j].Name })
	return runners
}

// Lookup finds a runner by name.
func Lookup(name string) (Runner, bool) {
	for _, r := range Registry() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

func pick[T any](small bool, smallFn, paperFn func() T) T {
	if small {
		return smallFn()
	}
	return paperFn()
}
