package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/influence"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
)

// InfluenceConfig parameterises the influence-maximization comparison:
// the RIS-sketch pipeline (reverse-reachability pool + lazy-greedy
// maximum coverage) against the classic Monte-Carlo CELF baseline, both
// selecting K seeds from the same top-degree candidate restriction on
// the same model. Both seed sets are then scored with one independent
// Monte-Carlo evaluator so the quality column compares like with like.
type InfluenceConfig struct {
	Seed       uint64
	Nodes      int     // graph size (paper's §IV-C timing scale: 6000)
	Edges      int     // paper: 14000
	PMin, PMax float64 // activation probabilities drawn uniformly from [PMin, PMax)
	K          int     // seed budget
	Candidates int     // top-out-degree candidate restriction; <= 0 means all nodes
	MCSamples  int     // cascades per MC-greedy spread evaluation
	Eval       int     // cascades per final independent quality evaluation
	Chain      mh.Options
	Roots      int // RR roots per thinned chain sample
	// Clock supplies the timestamps bracketing each measurement; nil
	// uses time.Now. Injectable so the timing columns are testable and
	// wall-clock reads stay explicit (the fig6 idiom).
	Clock func() time.Time
}

// InfluencePaper returns the §IV-C-scale configuration the speedup gate
// also runs: near-critical activation probabilities (cascades large
// enough that seed choice matters), 256 thinned states × 256 roots.
func InfluencePaper() InfluenceConfig {
	const edges = 14000
	return InfluenceConfig{
		Seed: 67, Nodes: 6000, Edges: edges, PMin: 0.2, PMax: 0.6,
		K: 10, Candidates: 128, MCSamples: 200, Eval: 2000,
		Chain: mh.Options{BurnIn: 2 * edges, Thin: edges / 8, Samples: 256},
		Roots: 256,
	}
}

// InfluenceSmall returns a fast configuration for tests.
func InfluenceSmall() InfluenceConfig {
	return InfluenceConfig{
		Seed: 67, Nodes: 200, Edges: 500, PMin: 0.2, PMax: 0.6,
		K: 3, Candidates: 24, MCSamples: 40, Eval: 300,
		Chain: mh.Options{BurnIn: 400, Thin: 100, Samples: 32},
		Roots: 64,
	}
}

// InfluenceResult reports both selections, their independently evaluated
// spreads, and the wall-clock comparison.
type InfluenceResult struct {
	K            int
	RRSets       int
	SketchSeeds  []graph.NodeID
	MCSeeds      []graph.NodeID
	SketchSpread float64 // independent MC evaluation of the sketch set
	MCSpread     float64 // same evaluator on the MC-greedy set
	SketchTime   time.Duration
	MCTime       time.Duration
	Evaluations  int // spread estimations the MC-greedy CELF performed
}

// Speedup is the wall-clock ratio MC-greedy / sketch.
func (r *InfluenceResult) Speedup() float64 {
	if r.SketchTime <= 0 {
		return 0
	}
	return float64(r.MCTime) / float64(r.SketchTime)
}

// String renders the comparison table.
func (r *InfluenceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Influence maximization, k=%d: RIS sketch (%d RR sets) vs MC-greedy CELF (%d evaluations)\n",
		r.K, r.RRSets, r.Evaluations)
	fmt.Fprintf(&b, "%10s %14s %12s  seeds\n", "backend", "wall-clock", "eval spread")
	fmt.Fprintf(&b, "%10s %14v %12.1f  %v\n", "sketch", r.SketchTime, r.SketchSpread, r.SketchSeeds)
	fmt.Fprintf(&b, "%10s %14v %12.1f  %v\n", "mc-greedy", r.MCTime, r.MCSpread, r.MCSeeds)
	fmt.Fprintf(&b, "speedup: %.1fx\n", r.Speedup())
	return b.String()
}

// RunInfluence measures the comparison.
func RunInfluence(cfg InfluenceConfig) (*InfluenceResult, error) {
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	r := rng.New(cfg.Seed)
	g := graph.Random(r, cfg.Nodes, cfg.Edges)
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = cfg.PMin + (cfg.PMax-cfg.PMin)*r.Float64()
	}
	m, err := core.NewICM(g, p)
	if err != nil {
		return nil, err
	}
	var candidates []graph.NodeID
	if cfg.Candidates > 0 && cfg.Candidates < cfg.Nodes {
		candidates = topOutDegree(m, cfg.Candidates)
	}
	res := &InfluenceResult{K: cfg.K}

	start := now()
	sk, pool, err := influence.Maximize(m, cfg.K, nil, nil, influence.SketchOptions{
		Chain: cfg.Chain, RootsPerSample: cfg.Roots, Candidates: candidates,
	}, rng.New(cfg.Seed+1))
	if err != nil {
		return nil, fmt.Errorf("influence: sketch backend: %w", err)
	}
	res.SketchTime = now().Sub(start)
	res.SketchSeeds, res.RRSets = sk.Seeds, pool.NumSets

	start = now()
	mc, err := influence.Greedy(m, cfg.K, influence.Options{Samples: cfg.MCSamples, Candidates: candidates}, rng.New(cfg.Seed+2))
	if err != nil {
		return nil, fmt.Errorf("influence: mc-greedy backend: %w", err)
	}
	res.MCTime = now().Sub(start)
	res.MCSeeds, res.Evaluations = mc.Seeds, mc.Evaluations

	res.SketchSpread = influence.Spread(m, sk.Seeds, cfg.Eval, rng.New(cfg.Seed+3))
	res.MCSpread = influence.Spread(m, mc.Seeds, cfg.Eval, rng.New(cfg.Seed+4))
	return res, nil
}

// topOutDegree returns the k nodes with the largest out-degree, ties
// broken by node ID.
func topOutDegree(m *core.ICM, k int) []graph.NodeID {
	nodes := make([]graph.NodeID, m.NumNodes())
	for v := range nodes {
		nodes[v] = graph.NodeID(v)
	}
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := len(m.G.OutEdges(nodes[i])), len(m.G.OutEdges(nodes[j]))
		if di != dj {
			return di > dj
		}
		return nodes[i] < nodes[j]
	})
	return nodes[:k]
}
