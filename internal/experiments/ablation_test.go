package experiments

import "testing"

func TestAblation(t *testing.T) {
	res, err := Ablation(AblationSmall())
	if err != nil {
		t.Fatal(err)
	}
	// §III-C design claim: the weighted proposal accepts more and, at an
	// identical budget, estimates at least as accurately.
	if res.WeightedAcceptance <= res.UniformAcceptance {
		t.Errorf("weighted acceptance %v <= uniform %v",
			res.WeightedAcceptance, res.UniformAcceptance)
	}
	if res.WeightedMAE > res.UniformMAE*1.5 {
		t.Errorf("weighted MAE %v much worse than uniform %v",
			res.WeightedMAE, res.UniformMAE)
	}
	// §V-D: omitting the omnipotent user increases flow probabilities.
	if res.MeanFlowNoOmni < res.MeanFlowWithOmni {
		t.Errorf("no-omnipotent mean flow %v below with-omnipotent %v",
			res.MeanFlowNoOmni, res.MeanFlowWithOmni)
	}
	if res.String() == "" {
		t.Error("empty report")
	}
}
