package experiments

import (
	"fmt"
	"strings"

	"infoflow/internal/bucket"
	"infoflow/internal/dist"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
	"infoflow/internal/twitter"
	"infoflow/internal/unattrib"
)

// Fig10Config parameterises the edge-uncertainty repetition of the URL
// experiment (§V-D, Fig. 10): instead of point estimates, each of
// Graphs sampled models draws every edge probability from a gaussian
// approximation (mean, stddev) of its posterior, smoothing the flow
// probabilities.
type Fig10Config struct {
	Seed      uint64
	Twitter   twitter.Config
	TrainFrac float64
	Radius    int
	// Graphs is the number of independently sampled graphs (paper: 30).
	Graphs int
	Bins   int
	Bayes  unattrib.BayesOptions
	MH     mh.Options
}

// Fig10Paper returns the paper-scale configuration.
func Fig10Paper() Fig10Config {
	return Fig10Config{
		Seed:      10,
		Twitter:   twitter.DefaultConfig(),
		TrainFrac: 0.7,
		Radius:    4,
		Graphs:    30,
		Bins:      30,
		Bayes:     unattrib.BayesOptions{BurnIn: 200, Thin: 2, Samples: 400, Step: 0.08},
		MH:        mh.Options{BurnIn: 1000, Thin: 40, Samples: 600},
	}
}

// Fig10Small returns a fast configuration for tests.
func Fig10Small() Fig10Config {
	c := Fig10Paper()
	tw := twitter.DefaultConfig()
	tw.NumUsers = 300
	tw.NumTweets = 0
	tw.NumHashtags = 0
	tw.NumURLs = 120
	c.Twitter = tw
	c.Radius = 3
	c.Graphs = 8
	c.Bins = 10
	c.Bayes = unattrib.BayesOptions{BurnIn: 100, Thin: 1, Samples: 150, Step: 0.1}
	c.MH = mh.Options{BurnIn: 300, Thin: 15, Samples: 300}
	return c
}

// Fig10Result is the pooled bucket analysis across sampled graphs.
type Fig10Result struct {
	Analysis *bucket.Result
	All      bucket.Metrics
	Middle   bucket.Metrics
	Pairs    int
	Graphs   int
}

// String renders the analysis.
func (r *Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: URL bucket experiment with %d graphs sampled from the gaussian edge approximation (%d pairs)\n",
		r.Graphs, r.Pairs)
	b.WriteString(r.Analysis.String())
	fmt.Fprintf(&b, "normalised likelihood: %.6f (middle %.6f), Brier: %.6f (middle %.6f)\n",
		r.All.NormalisedLikelihood, r.Middle.NormalisedLikelihood, r.All.Brier, r.Middle.Brier)
	return b.String()
}

// Fig10 runs the experiment.
func Fig10(cfg Fig10Config) (*Fig10Result, error) {
	r := rng.New(cfg.Seed)
	d, err := twitter.Generate(cfg.Twitter, r)
	if err != nil {
		return nil, err
	}
	lab, err := NewTagFlowLab(d, twitter.MentionURLs, cfg.TrainFrac)
	if err != nil {
		return nil, err
	}
	model, err := lab.Learn(cfg.Radius, cfg.Bayes, r)
	if err != nil {
		return nil, err
	}
	exp := &bucket.Experiment{}
	for g := 0; g < cfg.Graphs; g++ {
		probs := make([]float64, len(model.OursMean))
		for id := range probs {
			probs[id] = dist.NewNormal(model.OursMean[id], model.OursStd[id]).SampleUnit(r)
		}
		flows, err := model.CommunityFlow(probs, cfg.MH, r)
		if err != nil {
			return nil, err
		}
		lab.TestPairsFromSource(model, func(v int32, active bool) {
			exp.MustAdd(flows[v], active)
		})
	}
	if exp.Len() == 0 {
		return nil, fmt.Errorf("fig10: no pairs")
	}
	analysis, err := exp.Analyze(cfg.Bins)
	if err != nil {
		return nil, err
	}
	all, err := exp.Compute()
	if err != nil {
		return nil, err
	}
	middle, err := exp.ComputeMiddle()
	if err != nil {
		middle = bucket.Metrics{}
	}
	return &Fig10Result{
		Analysis: analysis, All: all, Middle: middle,
		Pairs: exp.Len(), Graphs: cfg.Graphs,
	}, nil
}
