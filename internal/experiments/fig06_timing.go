package experiments

import (
	"fmt"
	"strings"
	"time"

	"infoflow/internal/graph"
	"infoflow/internal/rng"
	"infoflow/internal/unattrib"
)

// Fig6Config parameterises the running-time comparison of §V-C (Fig. 6):
// the cost of drawing one sample of our method's core computation (a
// posterior log-density evaluation over the summary) versus Goyal et
// al.'s full credit computation, with and without the cost of
// summarising the raw evidence.
type Fig6Config struct {
	Seed uint64
	// Cases sweeps problem sizes: incident parents and raw objects.
	Cases []Fig6Case
	// Reps repeats each measurement for a stable average.
	Reps int
	// Clock supplies the timestamps bracketing each measurement; nil
	// uses time.Now. Injectable so the timing columns are testable and
	// the only wall-clock read in the experiment suite is explicit.
	Clock func() time.Time
}

// Fig6Case is one problem size.
type Fig6Case struct {
	Parents int
	Objects int
}

// Fig6Paper returns the paper-scale configuration.
func Fig6Paper() Fig6Config {
	return Fig6Config{
		Seed: 6,
		Cases: []Fig6Case{
			{4, 1000}, {4, 10000}, {4, 100000},
			{8, 1000}, {8, 10000}, {8, 100000},
			{12, 10000}, {16, 10000},
		},
		Reps: 20,
	}
}

// Fig6Small returns a fast configuration for tests.
func Fig6Small() Fig6Config {
	return Fig6Config{
		Seed:  6,
		Cases: []Fig6Case{{4, 1000}, {8, 1000}},
		Reps:  5,
	}
}

// Fig6Point is one measured case.
type Fig6Point struct {
	Case Fig6Case
	// UniqueCharacteristics is the summary size omega.
	UniqueCharacteristics int
	// OursCore is the time for one posterior-density sweep over the
	// summary (our per-sample core computation).
	OursCore time.Duration
	// GoyalCore is Goyal et al.'s full credit pass over the summary.
	GoyalCore time.Duration
	// Summarise is the one-off cost of building the summary from raw
	// traces; amortised over samples it shrinks toward zero.
	Summarise time.Duration
}

// Fig6Result collects the sweep.
type Fig6Result struct {
	Points []Fig6Point
}

// String renders the timing table (Figure 6 plots ours-vs-Goyal; the
// same numbers are reported here as rows).
func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: per-sample cost, ours vs Goyal (durations are per draw)\n")
	fmt.Fprintf(&b, "%8s %9s %7s %12s %12s %12s\n",
		"parents", "objects", "omega", "ours core", "goyal core", "summarise")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %9d %7d %12v %12v %12v\n",
			p.Case.Parents, p.Case.Objects, p.UniqueCharacteristics,
			p.OursCore, p.GoyalCore, p.Summarise)
	}
	return b.String()
}

// Fig6 measures the sweep. Wall-clock absolute numbers differ from the
// paper's 2011 Python/PyMC setup by construction; the comparison of
// interest is the relative scaling (ours grows with omega = unique
// characteristics, Goyal's with the same summary; summarisation is a
// one-off O(objects) pass).
func Fig6(cfg Fig6Config) (*Fig6Result, error) {
	if cfg.Reps <= 0 {
		return nil, fmt.Errorf("fig6: non-positive reps")
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	r := rng.New(cfg.Seed)
	res := &Fig6Result{}
	for _, c := range cfg.Cases {
		truth := make([]float64, c.Parents)
		for j := range truth {
			truth[j] = r.Uniform(0.1, 0.9)
		}
		// Raw traces for the summarisation cost.
		traces := make([]unattrib.Trace, 0, c.Objects)
		sinkID := graph.NodeID(c.Parents)
		g := graph.New(c.Parents + 1)
		for j := 0; j < c.Parents; j++ {
			g.MustAddEdge(graph.NodeID(j), sinkID)
		}
		for o := 0; o < c.Objects; o++ {
			tr := unattrib.Trace{}
			surv := 1.0
			for j := 0; j < c.Parents; j++ {
				if r.Bernoulli(0.6) {
					tr[graph.NodeID(j)] = 0
					surv *= 1 - truth[j]
				}
			}
			if len(tr) == 0 {
				tr[graph.NodeID(r.Intn(c.Parents))] = 0
				continue
			}
			if r.Bernoulli(1 - surv) {
				tr[sinkID] = 1
			}
			traces = append(traces, tr)
		}
		var point Fig6Point
		point.Case = c
		// Summarisation cost.
		var sum *unattrib.Summary
		start := now()
		for rep := 0; rep < cfg.Reps; rep++ {
			sums, err := unattrib.BuildSummaries(g, traces)
			if err != nil {
				return nil, err
			}
			sum = sums[sinkID]
		}
		point.Summarise = now().Sub(start) / time.Duration(cfg.Reps)
		point.UniqueCharacteristics = len(sum.Rows)
		// Our core computation: one log-likelihood sweep (the dominant
		// cost of each MCMC proposal over the summarised evidence).
		p := make([]float64, c.Parents)
		for j := range p {
			p[j] = 0.5
		}
		start = now()
		acc := 0.0
		for rep := 0; rep < cfg.Reps*100; rep++ {
			acc += unattrib.LogLikelihood(sum, p)
		}
		point.OursCore = now().Sub(start) / time.Duration(cfg.Reps*100)
		_ = acc
		// Goyal's core computation: the full credit pass.
		start = now()
		for rep := 0; rep < cfg.Reps*100; rep++ {
			_ = unattrib.Goyal(sum)
		}
		point.GoyalCore = now().Sub(start) / time.Duration(cfg.Reps*100)
		res.Points = append(res.Points, point)
	}
	return res, nil
}
