package experiments

import (
	"fmt"
	"strings"

	"infoflow/internal/bucket"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
	"infoflow/internal/twitter"
	"infoflow/internal/unattrib"
)

// TagConfig parameterises the URL (Fig. 8) and hashtag (Fig. 9) flow
// prediction experiments of §V-D.
type TagConfig struct {
	Seed      uint64
	Twitter   twitter.Config
	Kind      twitter.MentionKind
	TrainFrac float64
	Radii     []int // paper: 4 and 5
	Bins      int
	Bayes     unattrib.BayesOptions
	MH        mh.Options
}

// Fig8Paper returns the paper-scale URL configuration.
func Fig8Paper() TagConfig {
	return TagConfig{
		Seed:      8,
		Twitter:   twitter.DefaultConfig(),
		Kind:      twitter.MentionURLs,
		TrainFrac: 0.7,
		Radii:     []int{4, 5},
		Bins:      30,
		Bayes:     unattrib.BayesOptions{BurnIn: 200, Thin: 2, Samples: 400, Step: 0.08},
		MH:        mh.Options{BurnIn: 2000, Thin: 50, Samples: 1500},
	}
}

// Fig9Paper returns the paper-scale hashtag configuration.
func Fig9Paper() TagConfig {
	c := Fig8Paper()
	c.Seed = 9
	c.Kind = twitter.MentionHashtags
	return c
}

// tagSmall shrinks a config for tests.
func tagSmall(c TagConfig) TagConfig {
	tw := twitter.DefaultConfig()
	tw.NumUsers = 300
	tw.NumTweets = 0
	tw.NumHashtags = 120
	tw.NumURLs = 120
	c.Twitter = tw
	c.Radii = []int{3}
	c.Bins = 10
	c.Bayes = unattrib.BayesOptions{BurnIn: 100, Thin: 1, Samples: 150, Step: 0.1}
	c.MH = mh.Options{BurnIn: 500, Thin: 20, Samples: 500}
	return c
}

// Fig8Small returns a fast URL configuration for tests.
func Fig8Small() TagConfig { return tagSmall(Fig8Paper()) }

// Fig9Small returns a fast hashtag configuration for tests.
func Fig9Small() TagConfig { return tagSmall(Fig9Paper()) }

// TagCell is one panel: a radius and a learning method.
type TagCell struct {
	Radius   int
	Method   string // "ours" or "goyal"
	Analysis *bucket.Result
	All      bucket.Metrics
	Middle   bucket.Metrics
	Pairs    int
	Objects  int
}

// TagResult collects the panels of Figure 8 or 9.
type TagResult struct {
	Kind  twitter.MentionKind
	Cells []TagCell
}

// String renders the per-panel analyses.
func (r *TagResult) String() string {
	var b strings.Builder
	name := "URLs (Figure 8)"
	if r.Kind == twitter.MentionHashtags {
		name = "hashtags (Figure 9)"
	}
	fmt.Fprintf(&b, "Measuring the flow of %s\n", name)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "\n(radius %d, %s; %d objects, %d pairs)\n", c.Radius, c.Method, c.Objects, c.Pairs)
		b.WriteString(c.Analysis.String())
		fmt.Fprintf(&b, "normalised likelihood: %.6f (middle %.6f), Brier: %.6f (middle %.6f)\n",
			c.All.NormalisedLikelihood, c.Middle.NormalisedLikelihood, c.All.Brier, c.Middle.Brier)
	}
	return b.String()
}

// RunTag executes the experiment for the configured mention kind: learn
// edge probabilities on radius sub-graphs by both methods, estimate
// source-to-community flows, and bucket them against held-out mentions.
func RunTag(cfg TagConfig) (*TagResult, error) {
	r := rng.New(cfg.Seed)
	d, err := twitter.Generate(cfg.Twitter, r)
	if err != nil {
		return nil, err
	}
	lab, err := NewTagFlowLab(d, cfg.Kind, cfg.TrainFrac)
	if err != nil {
		return nil, err
	}
	res := &TagResult{Kind: cfg.Kind}
	for _, radius := range cfg.Radii {
		model, err := lab.Learn(radius, cfg.Bayes, r)
		if err != nil {
			return nil, err
		}
		for _, method := range []string{"ours", "goyal"} {
			probs := model.OursMean
			if method == "goyal" {
				probs = model.Goyal
			}
			flows, err := model.CommunityFlow(probs, cfg.MH, r)
			if err != nil {
				return nil, err
			}
			exp := &bucket.Experiment{}
			objects := lab.TestPairsFromSource(model, func(v int32, active bool) {
				exp.MustAdd(flows[v], active)
			})
			if exp.Len() == 0 {
				continue
			}
			cell, err := finishTagCell(exp, cfg.Bins, radius, method, objects)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, *cell)
		}
	}
	if len(res.Cells) == 0 {
		return nil, fmt.Errorf("tag experiment produced no pairs")
	}
	return res, nil
}

func finishTagCell(exp *bucket.Experiment, bins, radius int, method string, objects int) (*TagCell, error) {
	analysis, err := exp.Analyze(bins)
	if err != nil {
		return nil, err
	}
	all, err := exp.Compute()
	if err != nil {
		return nil, err
	}
	middle, err := exp.ComputeMiddle()
	if err != nil {
		middle = bucket.Metrics{}
	}
	return &TagCell{
		Radius: radius, Method: method,
		Analysis: analysis, All: all, Middle: middle,
		Pairs: exp.Len(), Objects: objects,
	}, nil
}
