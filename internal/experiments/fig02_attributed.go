package experiments

import (
	"fmt"
	"strings"

	"infoflow/internal/bucket"
	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
	"infoflow/internal/twitter"
)

// Fig2Config parameterises the Twitter attributed-evidence bucket
// experiments (§IV-C, Fig. 2): calibration of flow predictions from a
// betaICM trained on recovered retweet chains, on radius-1 and radius-2
// sub-graphs around focus users, with and without known-flow conditions.
type Fig2Config struct {
	Seed uint64
	// Twitter is the corpus configuration.
	Twitter twitter.Config
	// TrainFrac splits cascades into train/test.
	TrainFrac float64
	// FocusUsers is the number of "interesting" users (paper: 50).
	FocusUsers int
	// TweetsPerUser caps held-out cascades per focus (paper: 100).
	TweetsPerUser int
	// Radii are the sub-graph radii to run (paper: 1 and 2).
	Radii []int
	// KnownFlows are the condition counts to run (paper: 0 and 5).
	KnownFlows []int
	Bins       int
	MH         mh.Options
}

// Fig2Paper returns the paper-scale configuration.
func Fig2Paper() Fig2Config {
	return Fig2Config{
		Seed:          2,
		Twitter:       twitter.DefaultConfig(),
		TrainFrac:     0.7,
		FocusUsers:    50,
		TweetsPerUser: 100,
		Radii:         []int{1, 2},
		KnownFlows:    []int{0, 5},
		Bins:          30,
		MH:            mh.Options{BurnIn: 1000, Thin: 60, Samples: 400},
	}
}

// Fig2Small returns a fast configuration for tests.
func Fig2Small() Fig2Config {
	c := Fig2Paper()
	tw := twitter.DefaultConfig()
	tw.NumUsers = 250
	tw.NumTweets = 600
	tw.NumHashtags = 0
	tw.NumURLs = 0
	c.Twitter = tw
	c.FocusUsers = 8
	c.TweetsPerUser = 25
	c.Bins = 10
	c.MH = mh.Options{BurnIn: 300, Thin: 30, Samples: 200}
	return c
}

// Fig2Cell is one panel of Figure 2 (a radius x condition-count cell).
type Fig2Cell struct {
	Radius     int
	KnownFlows int
	Analysis   *bucket.Result
	All        bucket.Metrics
	Middle     bucket.Metrics
	Pairs      int
}

// Fig2Result collects all panels plus corpus bookkeeping.
type Fig2Result struct {
	Cells []Fig2Cell
	Stats twitter.Stats
	// RecoveredOriginals is the preprocessing recovery count (the paper's
	// 10M -> 10.8M growth in miniature).
	RecoveredOriginals int
}

// String renders each panel's calibration table.
func (r *Fig2Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 2: bucket experiments on attributed Twitter evidence\n")
	b.WriteString(r.Stats.String())
	fmt.Fprintf(&b, "recovered originals during preprocessing: %d\n", r.RecoveredOriginals)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "\n(radius %d, %d known flows, %d pairs)\n", c.Radius, c.KnownFlows, c.Pairs)
		b.WriteString(c.Analysis.String())
		fmt.Fprintf(&b, "normalised likelihood: %.6f (middle %.6f), Brier: %.6f (middle %.6f)\n",
			c.All.NormalisedLikelihood, c.Middle.NormalisedLikelihood, c.All.Brier, c.Middle.Brier)
	}
	return b.String()
}

// Fig2 runs the experiment.
func Fig2(cfg Fig2Config) (*Fig2Result, error) {
	r := rng.New(cfg.Seed)
	lab, err := NewTwitterLab(cfg.Twitter, cfg.TrainFrac, r)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{
		Stats:              lab.Dataset.Stats(),
		RecoveredOriginals: lab.Extraction.RecoveredOriginals,
	}
	focuses := lab.Dataset.InterestingUsers(cfg.FocusUsers)
	for _, radius := range cfg.Radii {
		for _, known := range cfg.KnownFlows {
			exp, pairs, err := fig2Cell(cfg, lab, focuses, radius, known, r)
			if err != nil {
				return nil, err
			}
			if pairs == 0 {
				continue
			}
			analysis, err := exp.Analyze(cfg.Bins)
			if err != nil {
				return nil, err
			}
			all, err := exp.Compute()
			if err != nil {
				return nil, err
			}
			middle, err := exp.ComputeMiddle()
			if err != nil {
				middle = bucket.Metrics{}
			}
			res.Cells = append(res.Cells, Fig2Cell{
				Radius: radius, KnownFlows: known,
				Analysis: analysis, All: all, Middle: middle, Pairs: pairs,
			})
		}
	}
	return res, nil
}

// fig2Cell gathers (estimate, outcome) pairs for one panel: for each
// focus user's held-out cascades, a random sink in the radius sub-graph
// is tested for actually having retweeted (outcome), against the MH flow
// estimate from the trained sub-model (optionally conditioned on other
// observed flows of the same cascade).
func fig2Cell(cfg Fig2Config, lab *TwitterLab, focuses []twitter.UserID, radius, known int, r *rng.RNG) (*bucket.Experiment, int, error) {
	exp := &bucket.Experiment{}
	pairs := 0
	for _, focus := range focuses {
		nodes := lab.RealFlow.NodesWithinUndirected(focus, radius)
		if len(nodes) < 2 {
			continue
		}
		sub, _, toNew := lab.Trained.Subgraph(nodes)
		subICM := sub.ExpectedICM()
		focusSub := toNew[focus]
		cascades := lab.TestCascadesFrom(focus)
		if len(cascades) > cfg.TweetsPerUser {
			cascades = cascades[:cfg.TweetsPerUser]
		}
		if known == 0 && len(cascades) > 0 {
			// Unconditioned cells query one shared sub-model for every
			// cascade of the focus, so a single batched chain answers them
			// all — 64 flows per lane sweep instead of one chain per tweet.
			// Conditioned cells stay on the scalar path: each cascade's
			// observed flows constrain a different posterior, which cannot
			// share a chain (see DESIGN.md §9).
			batch := make([]mh.FlowPair, len(cascades))
			outcomes := make([]bool, len(cascades))
			for i, obj := range cascades {
				sinkIdx := r.Intn(len(nodes)-1) + 1
				sink := nodes[sinkIdx]
				_, outcomes[i] = obj.ActiveTime[sink]
				batch[i] = mh.FlowPair{Source: focusSub, Sink: toNew[sink]}
			}
			ps, err := mh.FlowProbBatch(subICM, batch, nil, cfg.MH, r)
			if err != nil {
				return nil, 0, err
			}
			for i, p := range ps {
				exp.MustAdd(p, outcomes[i])
				pairs++
			}
			continue
		}
		for _, obj := range cascades {
			// Random sink within the sub-graph, distinct from focus.
			sinkIdx := r.Intn(len(nodes)-1) + 1 // nodes[0] is the focus (BFS order)
			sink := nodes[sinkIdx]
			_, sinkActive := obj.ActiveTime[sink]
			conds := fig2Conditions(lab, obj, nodes, toNew, focus, sink, known, r)
			p, err := mh.FlowProb(subICM, focusSub, toNew[sink], conds, cfg.MH, r)
			if err != nil {
				// Conditions can be unsatisfiable under the trained
				// sub-model (e.g. an observed flow along an edge the
				// training set never saw); the paper's noisy setting
				// simply yields no estimate for that tweet.
				continue
			}
			exp.MustAdd(p, sinkActive)
			pairs++
		}
	}
	return exp, pairs, nil
}

// fig2Conditions picks up to `known` random sub-graph users (excluding
// focus and sink) and conditions on their observed activity for this
// cascade — flows known to have happened or not.
func fig2Conditions(lab *TwitterLab, obj twitter.ObjectTruth, nodes []graph.NodeID, toNew []graph.NodeID, focus, sink twitter.UserID, known int, r *rng.RNG) []core.FlowCondition {
	if known == 0 {
		return nil
	}
	var conds []core.FlowCondition
	perm := r.Perm(len(nodes))
	for _, idx := range perm {
		if len(conds) == known {
			break
		}
		w := nodes[idx]
		if w == focus || w == sink {
			continue
		}
		_, active := obj.ActiveTime[w]
		conds = append(conds, core.FlowCondition{
			Source:  toNew[focus],
			Sink:    toNew[w],
			Require: active,
		})
	}
	return conds
}
