package experiments

import (
	"fmt"
	"strings"

	"infoflow/internal/rng"
	"infoflow/internal/unattrib"
)

// Fig11Config parameterises the EM-versus-Bayes comparison of the
// Appendix (Fig. 11) on the Table II evidence.
type Fig11Config struct {
	Seed uint64
	// Restarts is the number of random EM restarts (paper: 1000).
	Restarts int
	// EMIters is the fixed EM budget (paper: 200).
	EMIters int
	// BayesSamples is the number of MCMC posterior samples (paper: 1000).
	BayesSamples int
}

// Fig11Paper returns the paper-scale configuration.
func Fig11Paper() Fig11Config {
	return Fig11Config{Seed: 11, Restarts: 1000, EMIters: 200, BayesSamples: 1000}
}

// Fig11Small returns a fast configuration for tests.
func Fig11Small() Fig11Config {
	return Fig11Config{Seed: 11, Restarts: 150, EMIters: 60, BayesSamples: 400}
}

// Fig11Result holds both point clouds over (A, B) and (A, C).
type Fig11Result struct {
	// EM[i] is the converged-or-budget-stopped estimate of restart i:
	// [A, B, C].
	EM [][]float64
	// Bayes[i] is one posterior sample: [A, B, C].
	Bayes [][]float64
}

// String renders ASCII scatter plots of both clouds, matching the
// Figure 11 panels (B vs A and A vs C), plus spread statistics.
func (r *Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 11: Saito EM restarts vs joint-Bayes MCMC on Table II\n")
	b.WriteString("EM restarts (fixed budget), B vs A:\n")
	b.WriteString(scatter(r.EM, 0, 1))
	b.WriteString("EM restarts (fixed budget), A vs C:\n")
	b.WriteString(scatter(r.EM, 2, 0))
	b.WriteString("joint-Bayes MCMC samples, B vs A:\n")
	b.WriteString(scatter(r.Bayes, 0, 1))
	b.WriteString("joint-Bayes MCMC samples, A vs C:\n")
	b.WriteString(scatter(r.Bayes, 2, 0))
	fmt.Fprintf(&b, "EM spread (max-min per coord): %v\nBayes spread: %v\n",
		spread(r.EM), spread(r.Bayes))
	return b.String()
}

// scatter renders points (rows[i][xIdx], rows[i][yIdx]) on a 30x12 grid
// over [0, 0.6] x [0, 0.6], the axis range of the paper's panels.
func scatter(rows [][]float64, xIdx, yIdx int) string {
	const (
		w, h = 30, 12
		span = 0.6
	)
	grid := make([][]rune, h)
	for y := range grid {
		grid[y] = []rune(strings.Repeat(".", w))
	}
	for _, row := range rows {
		x := int(row[xIdx] / span * float64(w))
		y := int(row[yIdx] / span * float64(h))
		if x < 0 || y < 0 || x >= w || y >= h {
			continue
		}
		grid[h-1-y][x] = '*'
	}
	var b strings.Builder
	for _, line := range grid {
		b.WriteString("  ")
		b.WriteString(string(line))
		b.WriteByte('\n')
	}
	return b.String()
}

func spread(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	n := len(rows[0])
	lo := make([]float64, n)
	hi := make([]float64, n)
	copy(lo, rows[0])
	copy(hi, rows[0])
	for _, row := range rows {
		for j, v := range row {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	out := make([]float64, n)
	for j := range out {
		out[j] = hi[j] - lo[j]
	}
	return out
}

// Fig11 runs both procedures on the Table II summary.
func Fig11(cfg Fig11Config) (*Fig11Result, error) {
	r := rng.New(cfg.Seed)
	table := unattrib.TableII()
	em, err := unattrib.SaitoRelaxedRestarts(table, cfg.Restarts,
		unattrib.SaitoOptions{MaxIter: cfg.EMIters, Tol: 1e-12}, r)
	if err != nil {
		return nil, err
	}
	opts := unattrib.DefaultBayesOptions()
	opts.Samples = cfg.BayesSamples
	post, err := unattrib.JointBayes(table, opts, r)
	if err != nil {
		return nil, err
	}
	return &Fig11Result{EM: em, Bayes: post.Samples}, nil
}
