package experiments

import (
	"strings"
	"testing"
	"time"
)

// The experiment tests run every driver at Small scale and assert the
// SHAPE claims of the paper: who wins, what is calibrated, what degrades.

func TestFig1Calibrated(t *testing.T) {
	res, err := Fig1(Fig1Small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Analysis.NonEmpty < 3 {
		t.Fatalf("only %d non-empty bins", res.Analysis.NonEmpty)
	}
	// The paper's claim: estimates predominantly within the 95% CI.
	if res.Analysis.Coverage < 0.7 {
		t.Errorf("MH coverage = %v, expected well-calibrated", res.Analysis.Coverage)
	}
	if res.All.Brier > 0.25 {
		t.Errorf("MH Brier = %v, too poor", res.All.Brier)
	}
	if !strings.Contains(res.String(), "Figure 1") {
		t.Error("report missing title")
	}
}

func TestFig5RWRWorseThanMH(t *testing.T) {
	mhRes, err := Fig1(Fig1Small())
	if err != nil {
		t.Fatal(err)
	}
	rwrRes, err := Fig5(Fig5Small())
	if err != nil {
		t.Fatal(err)
	}
	// §IV-E: RWR is a similarity, not a probability — clearly worse
	// calibration and accuracy than the MH estimates.
	if rwrRes.All.Brier <= mhRes.All.Brier {
		t.Errorf("RWR Brier %v <= MH Brier %v", rwrRes.All.Brier, mhRes.All.Brier)
	}
	if rwrRes.All.NormalisedLikelihood >= mhRes.All.NormalisedLikelihood {
		t.Errorf("RWR NL %v >= MH NL %v",
			rwrRes.All.NormalisedLikelihood, mhRes.All.NormalisedLikelihood)
	}
	if rwrRes.Analysis.Coverage >= mhRes.Analysis.Coverage {
		t.Errorf("RWR coverage %v >= MH coverage %v",
			rwrRes.Analysis.Coverage, mhRes.Analysis.Coverage)
	}
}

func TestFig2CellsProduced(t *testing.T) {
	res, err := Fig2(Fig2Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) < 3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	seen := map[[2]int]bool{}
	for _, c := range res.Cells {
		seen[[2]int{c.Radius, c.KnownFlows}] = true
		if c.Pairs == 0 {
			t.Errorf("cell r%d c%d empty", c.Radius, c.KnownFlows)
		}
		// Trained-model estimates should beat coin-flipping.
		if c.All.Brier > 0.3 {
			t.Errorf("cell r%d c%d Brier = %v", c.Radius, c.KnownFlows, c.All.Brier)
		}
	}
	if !seen[[2]int{1, 0}] || !seen[[2]int{2, 0}] {
		t.Errorf("missing unconditioned radius cells: %v", seen)
	}
	if res.RecoveredOriginals == 0 {
		t.Error("preprocessing recovered no originals despite drops")
	}
}

func TestFig3UncertaintyMirrored(t *testing.T) {
	res, err := Fig3(Fig3Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no pairs")
	}
	for _, p := range res.Pairs {
		if len(p.ModelSamples) == 0 {
			t.Fatal("no model samples")
		}
		// §IV-D claim: the model mirrors the uncertainty in the evidence
		// — means should be in the same region.
		diff := p.ModelFit.Mean() - p.Empirical.Mean()
		if diff < -0.35 || diff > 0.35 {
			t.Errorf("pair %d->%d: model mean %v far from empirical %v",
				p.Source, p.Sink, p.ModelFit.Mean(), p.Empirical.Mean())
		}
	}
}

func TestFig4ImpactShapes(t *testing.T) {
	res, err := Fig4(Fig4Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predicted) == 0 || len(res.Actual) == 0 {
		t.Fatal("empty histograms")
	}
	if res.PredictedMean < 0 || res.ActualMean < 0 {
		t.Fatal("negative means")
	}
	// §IV-D: the sampler predicts a similar RANGE of impact (we don't
	// assert the overestimation the paper attributes to its data
	// collection, only that the prediction is in the same regime).
	if res.PredictedMean > 10*(res.ActualMean+1) {
		t.Errorf("predicted mean %v wildly above actual %v", res.PredictedMean, res.ActualMean)
	}
	if !strings.Contains(res.String(), "retweets") {
		t.Error("report missing content")
	}
}

func TestFig6TimingSane(t *testing.T) {
	res, err := Fig6(Fig6Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.OursCore <= 0 || p.GoyalCore <= 0 || p.Summarise <= 0 {
			t.Errorf("non-positive durations: %+v", p)
		}
		// omega = O(min(2^n, objects)).
		maxOmega := 1 << p.Case.Parents
		if p.UniqueCharacteristics > maxOmega || p.UniqueCharacteristics > p.Case.Objects {
			t.Errorf("omega = %d out of bounds", p.UniqueCharacteristics)
		}
	}
}

func TestFig6InjectedClock(t *testing.T) {
	// With a fake clock ticking a fixed step per read, every duration
	// column is fully determined: (reads between start and stop) * step
	// divided by the rep count of that measurement.
	cfg := Fig6Small()
	const step = time.Millisecond
	var ticks int
	cfg.Clock = func() time.Time {
		ticks++
		return time.Unix(0, int64(ticks)*int64(step))
	}
	res, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		// Each measurement brackets its loop with exactly two reads.
		if want := step / time.Duration(cfg.Reps); p.Summarise != want {
			t.Errorf("summarise = %v, want %v", p.Summarise, want)
		}
		if want := step / time.Duration(cfg.Reps*100); p.OursCore != want || p.GoyalCore != want {
			t.Errorf("cores = %v/%v, want %v", p.OursCore, p.GoyalCore, want)
		}
	}
	if ticks != 6*len(res.Points) {
		t.Errorf("clock read %d times, want %d", ticks, 6*len(res.Points))
	}
}

func TestFig7OursBeatsGoyalWithEvidence(t *testing.T) {
	res, err := Fig7(Fig7Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != len(Fig7Truths) {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	for pi, panel := range res.Panels {
		last := panel.Points[len(panel.Points)-1]
		first := panel.Points[0]
		// Our method refines with evidence.
		if last.Ours >= first.Ours {
			t.Errorf("panel %d: ours did not improve (%v -> %v)", pi, first.Ours, last.Ours)
		}
		// At high evidence, ours clearly beats Goyal (whose bias floors
		// its accuracy) on every panel.
		if last.Ours >= last.Goyal {
			t.Errorf("panel %d at %d objects: ours %v >= goyal %v",
				pi, last.Objects, last.Ours, last.Goyal)
		}
		if last.OursCILo > last.OursCIHi {
			t.Errorf("panel %d: inverted CI", pi)
		}
	}
}

func TestFig8vs9URLsEasierThanHashtags(t *testing.T) {
	urls, err := RunTag(Fig8Small())
	if err != nil {
		t.Fatal(err)
	}
	tags, err := RunTag(Fig9Small())
	if err != nil {
		t.Fatal(err)
	}
	ourBrier := func(r *TagResult) (float64, bool) {
		for _, c := range r.Cells {
			if c.Method == "ours" {
				return c.All.Brier, true
			}
		}
		return 0, false
	}
	ub, ok1 := ourBrier(urls)
	hb, ok2 := ourBrier(tags)
	if !ok1 || !ok2 {
		t.Fatalf("missing ours cells: urls %v tags %v", ok1, ok2)
	}
	// §V-D: substantially poorer performance at predicting hashtag flows
	// (they enter the network at many independent points).
	if hb <= ub {
		t.Errorf("hashtag Brier %v <= URL Brier %v; expected hashtags harder", hb, ub)
	}
}

func TestFig8OursVsGoyal(t *testing.T) {
	res, err := RunTag(Fig8Small())
	if err != nil {
		t.Fatal(err)
	}
	var ours, goyal *TagCell
	for i := range res.Cells {
		switch res.Cells[i].Method {
		case "ours":
			ours = &res.Cells[i]
		case "goyal":
			goyal = &res.Cells[i]
		}
	}
	if ours == nil || goyal == nil {
		t.Fatal("missing method cells")
	}
	// §V-D: "in practice our model for learning edge probabilities is
	// more accurate". Per the paper's Table III discussion, the
	// informative comparison is over MIDDLE values: Goyal's zero
	// estimates on no-evidence edges flood the all-values metric with
	// trivially correct negatives (the paper saw the same wash-out).
	if ours.Middle.NormalisedLikelihood <= goyal.Middle.NormalisedLikelihood {
		t.Errorf("ours middle NL %v <= goyal middle NL %v",
			ours.Middle.NormalisedLikelihood, goyal.Middle.NormalisedLikelihood)
	}
}

func TestFig10Runs(t *testing.T) {
	res, err := Fig10(Fig10Small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 || res.Graphs != Fig10Small().Graphs {
		t.Fatalf("pairs=%d graphs=%d", res.Pairs, res.Graphs)
	}
	if !strings.Contains(res.String(), "Figure 10") {
		t.Error("report missing title")
	}
}

func TestFig11EMScattersBayesCharacterises(t *testing.T) {
	res, err := Fig11(Fig11Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EM) != Fig11Small().Restarts || len(res.Bayes) != Fig11Small().BayesSamples {
		t.Fatalf("sizes: em=%d bayes=%d", len(res.EM), len(res.Bayes))
	}
	emSpread := spread(res.EM)
	wide := false
	for _, s := range emSpread {
		if s > 0.1 {
			wide = true
		}
	}
	if !wide {
		t.Errorf("budgeted EM restarts did not scatter: %v", emSpread)
	}
	for _, row := range res.Bayes {
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("posterior sample out of range: %v", row)
			}
		}
	}
	out := res.String()
	if !strings.Contains(out, "*") {
		t.Error("scatter plots empty")
	}
}

func TestTableRendering(t *testing.T) {
	t1 := TableI().String()
	if !strings.Contains(t1, "B,C") || !strings.Contains(t1, "50") {
		t.Errorf("Table I rendering:\n%s", t1)
	}
	t2 := TableII().String()
	if !strings.Contains(t2, "A,B,C") || !strings.Contains(t2, "75") {
		t.Errorf("Table II rendering:\n%s", t2)
	}
}

func TestRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, r := range Registry() {
		if r.Name == "" || r.Description == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if names[r.Name] {
			t.Fatalf("duplicate runner %s", r.Name)
		}
		names[r.Name] = true
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "table1", "table2", "table3",
		"ablation", "influence"} {
		if !names[want] {
			t.Errorf("missing runner %s", want)
		}
	}
	if _, ok := Lookup("fig1"); !ok {
		t.Error("lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("lookup invented a runner")
	}
}

// TestSizedistAgreement: on fixtures where the analytic law is exact,
// the sampled MH impact histogram must land within a small total
// variation of it — the two estimator families agree far beyond the
// enumeration limit.
func TestSizedistAgreement(t *testing.T) {
	res, err := RunSizedist(SizedistSmall())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	wantMethods := map[string]string{
		"tree":           "forest",
		"layered-dag":    "frontier-dp",
		"layered-cyclic": "loop-conditioning",
	}
	for _, row := range res.Rows {
		if row.Method != wantMethods[row.Name] {
			t.Errorf("%s: method %q, want %q", row.Name, row.Method, wantMethods[row.Name])
		}
		// MH samples are correlated, so the TV of a 400-sample histogram
		// is generous; 0.25 still catches a wrong law outright.
		if row.TV > 0.25 {
			t.Errorf("%s: TV %v too large", row.Name, row.TV)
		}
		if row.AnalyticMean <= 0 {
			t.Errorf("%s: analytic mean %v, fixture degenerate", row.Name, row.AnalyticMean)
		}
	}
	if !strings.Contains(res.String(), "sizedist") || !strings.Contains(res.String(), "frontier-dp") {
		t.Errorf("report malformed:\n%s", res)
	}
}

// TestSizedistInjectedClock: the timing columns are pure functions of
// the injected clock — two reads bracket the analytic solve, one more
// closes the sampled run.
func TestSizedistInjectedClock(t *testing.T) {
	cfg := SizedistSmall()
	const step = time.Millisecond
	var ticks int
	cfg.Clock = func() time.Time {
		ticks++
		return time.Unix(0, int64(ticks)*int64(step))
	}
	res, err := RunSizedist(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.AnalyticTime != step || row.SampledTime != step {
			t.Errorf("%s: times %v/%v, want %v each", row.Name, row.AnalyticTime, row.SampledTime, step)
		}
	}
	if ticks != 3*len(res.Rows) {
		t.Errorf("clock read %d times, want %d", ticks, 3*len(res.Rows))
	}
}
