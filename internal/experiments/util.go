package experiments

import "infoflow/internal/dist"

// quantile is a thin alias over dist.Quantile for readability in the
// drivers.
func quantile(xs []float64, p float64) float64 {
	return dist.Quantile(xs, p)
}
