package experiments

import (
	"fmt"
	"strings"
	"time"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
)

// RepairSweepConfig parameterises the condensation-repair sweep: the
// SAME fixed set of flow queries answered at each thinning interval,
// once with incremental repair enabled (the default engine) and once
// with it disabled (the replay-or-rebuild baseline). Thinning is the
// lever that matters: at Thin=1 almost every sweep sees a one-flip
// delta the repair path absorbs locally, while at Thin=100 the changed
// region approaches the whole graph and both modes converge on the
// shared push-pass floor. The table reports where each disposition
// (replay / repair / rebuild) lands and what repair buys end to end.
type RepairSweepConfig struct {
	Seed    uint64
	Nodes   int   // graph size (paper's §IV-C timing scale: 6000)
	Edges   int   // paper: 14000
	Queries int   // fixed flow queries, one 64-lane chunk per 64
	Thins   []int // thinning intervals to sweep
	Samples int   // thinned samples per run
	// Clock supplies the timestamps bracketing each measurement; nil
	// uses time.Now (the fig6/lanes idiom).
	Clock func() time.Time
}

// RepairSweepPaper returns the §IV-C-scale configuration.
func RepairSweepPaper() RepairSweepConfig {
	return RepairSweepConfig{
		Seed: 83, Nodes: 6000, Edges: 14000, Queries: 64,
		Thins: []int{1, 10, 100}, Samples: 200,
	}
}

// RepairSweepSmall returns a fast configuration for tests.
func RepairSweepSmall() RepairSweepConfig {
	return RepairSweepConfig{
		Seed: 83, Nodes: 300, Edges: 800, Queries: 64,
		Thins: []int{1, 10}, Samples: 60,
	}
}

// RepairSweepRow is one thinning interval's paired measurement.
type RepairSweepRow struct {
	Thin        int
	Repair      time.Duration // whole batched run, repair enabled
	Baseline    time.Duration // same run, repair disabled
	PerSample   time.Duration // Repair / Samples
	Speedup     float64       // Baseline / Repair
	Replays     int64
	Repairs     int64
	Rebuilds    int64
	ReplayRate  float64
	RepairRate  float64
	RebuildRate float64
	Overflows   int64 // flip-log windows that overflowed (wants 0)
	Identical   bool  // repair and baseline estimates bit-identical
}

// RepairSweepResult reports the thinning table.
type RepairSweepResult struct {
	Queries int
	Samples int
	Rows    []RepairSweepRow
}

// String renders the thinning table.
func (r *RepairSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Condensation-repair sweep: %d flow queries, %d samples per run, repair vs replay-or-rebuild baseline\n", r.Queries, r.Samples)
	fmt.Fprintf(&b, "%6s %12s %12s %12s %8s %8s %8s %8s %10s\n",
		"thin", "repair", "baseline", "per-sample", "speedup", "replay%", "repair%", "rebuild%", "identical")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %12v %12v %12v %7.2fx %7.1f%% %7.1f%% %7.1f%% %10v\n",
			row.Thin, row.Repair, row.Baseline, row.PerSample, row.Speedup,
			100*row.ReplayRate, 100*row.RepairRate, 100*row.RebuildRate, row.Identical)
	}
	return b.String()
}

// repairSweepRun executes one batched run and returns its duration and
// the sampler (for the engine counters). Repair is enabled or disabled
// before any engine exists, so the whole run uses one mode.
func repairSweepRun(m *core.ICM, pairs []mh.FlowPair, opts mh.Options, seed uint64, repair bool, now func() time.Time) (time.Duration, *mh.Sampler, []float64, error) {
	s, err := mh.NewSampler(m, nil, rng.New(seed))
	if err != nil {
		return 0, nil, nil, err
	}
	if !repair {
		s.SetLaneRepairLimit(0)
	}
	start := now()
	est, err := mh.FlowProbBatchOn(s, pairs, opts)
	if err != nil {
		return 0, nil, nil, err
	}
	return now().Sub(start), s, est, nil
}

// RunRepairSweep measures the table.
func RunRepairSweep(cfg RepairSweepConfig) (*RepairSweepResult, error) {
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	r := rng.New(cfg.Seed)
	g := graph.Random(r, cfg.Nodes, cfg.Edges)
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = r.Float64()
	}
	m, err := core.NewICM(g, p)
	if err != nil {
		return nil, err
	}
	pairs := make([]mh.FlowPair, cfg.Queries)
	for i := range pairs {
		u := graph.NodeID(r.Intn(cfg.Nodes))
		v := graph.NodeID(r.Intn(cfg.Nodes))
		for v == u {
			v = graph.NodeID(r.Intn(cfg.Nodes))
		}
		pairs[i] = mh.FlowPair{Source: u, Sink: v}
	}
	res := &RepairSweepResult{Queries: cfg.Queries, Samples: cfg.Samples}
	for _, thin := range cfg.Thins {
		opts := mh.Options{BurnIn: 4 * thin, Thin: thin, Samples: cfg.Samples}
		repairDur, s, est, err := repairSweepRun(m, pairs, opts, cfg.Seed+1, true, now)
		if err != nil {
			return nil, fmt.Errorf("repair: thin %d: %w", thin, err)
		}
		baseDur, _, ref, err := repairSweepRun(m, pairs, opts, cfg.Seed+1, false, now)
		if err != nil {
			return nil, fmt.Errorf("repair: thin %d baseline: %w", thin, err)
		}
		row := RepairSweepRow{
			Thin:      thin,
			Repair:    repairDur,
			Baseline:  baseDur,
			PerSample: repairDur / time.Duration(cfg.Samples),
			Overflows: s.FlipLogOverflows(),
			Identical: true,
		}
		if repairDur > 0 {
			row.Speedup = float64(baseDur) / float64(repairDur)
		}
		st := s.LaneStats()
		row.Replays, row.Repairs, row.Rebuilds = st.Replays, st.Repairs, st.Rebuilds
		if total := st.Replays + st.Repairs + st.Rebuilds; total > 0 {
			row.ReplayRate = float64(st.Replays) / float64(total)
			row.RepairRate = float64(st.Repairs) / float64(total)
			row.RebuildRate = float64(st.Rebuilds) / float64(total)
		}
		for i := range est {
			//flowlint:ignore floatcmp -- the repair contract is exact: repaired condensations are bit-identical to rebuilt ones, so the hit counts (and the k/Samples quotients) must match bit for bit
			if est[i] != ref[i] {
				row.Identical = false
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
