package experiments

import (
	"fmt"
	"strings"
	"time"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
	"infoflow/internal/sizedist"
)

// SizedistConfig parameterises the estimator-family comparison: the same
// impact query answered by the analytic cascade-size engine
// (internal/sizedist) and by the sampled MH estimator, on fixtures where
// the analytic law is exact — a forest, a layered DAG, and a layered
// graph with injected reciprocal-edge loops. It is the engineering
// companion to the §IV-D impact experiment: total-variation agreement
// validates the sampler far beyond the enumeration limit, and the paired
// timings show what the closed form saves.
type SizedistConfig struct {
	Seed uint64
	// TreeNodes sizes the random-forest fixture.
	TreeNodes int
	// Depth/Width/Fanin shape the layered-DAG fixture.
	Depth, Width, Fanin int
	// LoopPairs reciprocal edges are added to a second layered fixture to
	// exercise the loop-conditioning path.
	LoopPairs int
	MH        mh.Options
	// Clock supplies the timestamps bracketing each measurement; nil
	// uses time.Now. Injectable so the timing columns are testable and
	// wall-clock reads stay explicit (the fig6 idiom).
	Clock func() time.Time
}

// SizedistPaper returns the scale-matched configuration (fixtures 10-40x
// past core.MaxEnumEdges, the regime the conformance gate targets).
func SizedistPaper() SizedistConfig {
	return SizedistConfig{
		Seed: 12, TreeNodes: 800, Depth: 50, Width: 4, Fanin: 2, LoopPairs: 2,
		MH: mh.Options{BurnIn: 2000, Thin: 200, Samples: 2000},
	}
}

// SizedistSmall returns a fast configuration for tests.
func SizedistSmall() SizedistConfig {
	return SizedistConfig{
		Seed: 12, TreeNodes: 120, Depth: 12, Width: 3, Fanin: 2, LoopPairs: 1,
		MH: mh.Options{BurnIn: 200, Thin: 20, Samples: 400},
	}
}

// SizedistRow is one fixture's comparison.
type SizedistRow struct {
	Name         string
	Nodes, Edges int
	Method       string // analytic method label
	TV           float64
	AnalyticMean float64
	SampledMean  float64
	AnalyticTime time.Duration
	SampledTime  time.Duration
}

// SizedistResult holds the comparison table.
type SizedistResult struct {
	Samples int
	Rows    []SizedistRow
}

// String renders the comparison table.
func (r *SizedistResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sizedist: analytic law vs %d-sample MH impact estimate\n", r.Samples)
	fmt.Fprintf(&b, "%-16s %6s %6s %-18s %8s %9s %9s %12s %12s\n",
		"fixture", "nodes", "edges", "method", "tv", "mean(an)", "mean(mh)", "t(analytic)", "t(sampled)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %6d %6d %-18s %8.4f %9.3f %9.3f %12v %12v\n",
			row.Name, row.Nodes, row.Edges, row.Method, row.TV,
			row.AnalyticMean, row.SampledMean, row.AnalyticTime, row.SampledTime)
	}
	return b.String()
}

// RunSizedist executes the comparison.
func RunSizedist(cfg SizedistConfig) (*SizedistResult, error) {
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	type fixture struct {
		name string
		m    *core.ICM
	}
	fixtures := []fixture{
		{"tree", sizedistTree(rng.NewStream(cfg.Seed, 0), cfg.TreeNodes)},
		{"layered-dag", sizedistLayered(rng.NewStream(cfg.Seed, 1), cfg.Depth, cfg.Width, cfg.Fanin, 0)},
		{"layered-cyclic", sizedistLayered(rng.NewStream(cfg.Seed, 2), cfg.Depth, cfg.Width, cfg.Fanin, cfg.LoopPairs)},
	}
	res := &SizedistResult{Samples: cfg.MH.Samples}
	for i, f := range fixtures {
		sources := []graph.NodeID{0}
		t0 := now()
		exact, err := sizedist.Compute(f.m, sources, sizedist.DefaultOptions())
		t1 := now()
		if err != nil {
			return nil, fmt.Errorf("sizedist: %s: %w", f.name, err)
		}
		if !exact.Exact {
			return nil, fmt.Errorf("sizedist: %s fixture is not analytically exact (method %s)", f.name, exact.Method)
		}
		impacts, err := mh.ImpactDistribution(f.m, sources, nil, cfg.MH, rng.NewStream(cfg.Seed, uint64(100+i)))
		t2 := now()
		if err != nil {
			return nil, fmt.Errorf("sizedist: %s: %w", f.name, err)
		}
		sampled := make([]float64, len(exact.Dist))
		for _, imp := range impacts {
			sampled[imp]++
		}
		tv := 0.0
		sMean := 0.0
		for k := range sampled {
			sampled[k] /= float64(len(impacts))
			sMean += float64(k) * sampled[k]
			d := exact.Dist[k] - sampled[k]
			if d < 0 {
				d = -d
			}
			tv += d / 2
		}
		res.Rows = append(res.Rows, SizedistRow{
			Name: f.name, Nodes: f.m.NumNodes(), Edges: f.m.NumEdges(),
			Method: exact.Method.String(), TV: tv,
			AnalyticMean: exact.Mean(), SampledMean: sMean,
			AnalyticTime: t1.Sub(t0), SampledTime: t2.Sub(t1),
		})
	}
	return res, nil
}

// sizedistTree builds a random tree ICM rooted at node 0.
func sizedistTree(r *rng.RNG, n int) *core.ICM {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(graph.NodeID(r.Intn(v)), graph.NodeID(v))
	}
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = 0.1 + 0.8*r.Float64()
	}
	return core.MustNewICM(g, p)
}

// sizedistLayered builds a depth x width layered DAG (each node draws
// fanin parents from the previous layer, plus a chain from node 0), with
// loopPairs reciprocal back-edges injected inside layers to force the
// loop-conditioning path.
func sizedistLayered(r *rng.RNG, depth, width, fanin, loopPairs int) *core.ICM {
	n := depth * width
	g := graph.New(n)
	node := func(d, w int) graph.NodeID { return graph.NodeID(d*width + w) }
	for d := 1; d < depth; d++ {
		for w := 0; w < width; w++ {
			for k := 0; k < fanin; k++ {
				u := node(d-1, r.Intn(width))
				if !g.HasEdge(u, node(d, w)) {
					g.MustAddEdge(u, node(d, w))
				}
			}
		}
	}
	if depth > 1 && !g.HasEdge(node(0, 0), node(1, 0)) {
		g.MustAddEdge(node(0, 0), node(1, 0)) // the source always reaches layer 1
	}
	for i := 0; i < loopPairs; i++ {
		d := 1 + (i*7)%(depth-1)
		u, v := node(d, 0), node(d, 1%width)
		if u != v && !g.HasEdge(u, v) && !g.HasEdge(v, u) {
			g.MustAddEdge(u, v)
			g.MustAddEdge(v, u)
		}
	}
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = 0.15 + 0.7*r.Float64()
	}
	return core.MustNewICM(g, p)
}
