package experiments

import (
	"fmt"
	"strings"

	"infoflow/internal/bucket"
	"infoflow/internal/unattrib"
)

// Table3Config bundles the sub-experiment configurations whose metrics
// the paper's Table III collects.
type Table3Config struct {
	Fig1 Fig1Config
	Fig5 Fig5Config
	Fig2 Fig2Config
	Fig8 TagConfig
}

// Table3Paper returns the paper-scale configuration.
func Table3Paper() Table3Config {
	return Table3Config{Fig1: Fig1Paper(), Fig5: Fig5Paper(), Fig2: Fig2Paper(), Fig8: Fig8Paper()}
}

// Table3Small returns a fast configuration for tests.
func Table3Small() Table3Config {
	return Table3Config{Fig1: Fig1Small(), Fig5: Fig5Small(), Fig2: Fig2Small(), Fig8: Fig8Small()}
}

// Table3Row is one line of Table III.
type Table3Row struct {
	Experiment string
	All        bucket.Metrics
	Middle     bucket.Metrics
}

// Table3Result is the assembled table.
type Table3Result struct {
	Rows []Table3Row
}

// String renders the table in the paper's layout: normalised likelihood
// and Brier, each over all values and middle values.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table III: accuracy measures\n")
	fmt.Fprintf(&b, "%-28s %12s %12s %12s %12s\n",
		"experiment", "NL (all)", "NL (middle)", "Brier (all)", "Brier (mid)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %12.6f %12.6f %12.6f %12.6f\n",
			row.Experiment,
			row.All.NormalisedLikelihood, row.Middle.NormalisedLikelihood,
			row.All.Brier, row.Middle.Brier)
	}
	return b.String()
}

// Table3 runs the constituent experiments and assembles their metrics.
func Table3(cfg Table3Config) (*Table3Result, error) {
	res := &Table3Result{}
	f1, err := Fig1(cfg.Fig1)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table3Row{"MH Test (Fig 1)", f1.All, f1.Middle})
	f5, err := Fig5(cfg.Fig5)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table3Row{"RWR (Fig 5)", f5.All, f5.Middle})
	f2, err := Fig2(cfg.Fig2)
	if err != nil {
		return nil, err
	}
	for _, cell := range f2.Cells {
		res.Rows = append(res.Rows, Table3Row{
			fmt.Sprintf("retweets r%d c%d (Fig 2)", cell.Radius, cell.KnownFlows),
			cell.All, cell.Middle,
		})
	}
	f8, err := RunTag(cfg.Fig8)
	if err != nil {
		return nil, err
	}
	for _, cell := range f8.Cells {
		name := "MC"
		if cell.Method == "goyal" {
			name = "Goyal"
		}
		res.Rows = append(res.Rows, Table3Row{
			fmt.Sprintf("%s (radius %d) (Fig 8)", name, cell.Radius),
			cell.All, cell.Middle,
		})
	}
	return res, nil
}

// TableIResult and TableIIResult expose the paper's example summaries
// through the experiment registry.
type tableResult struct {
	title   string
	summary *unattrib.Summary
}

// String renders the summary rows in the paper's table layout.
func (t *tableResult) String() string {
	var b strings.Builder
	b.WriteString(t.title + "\n")
	fmt.Fprintf(&b, "%-4s %-12s %8s %8s\n", "id", "characteristic", "count", "leaks")
	for i, row := range t.summary.Rows {
		var names []string
		for j := range t.summary.Parents {
			if row.Set.Has(j) {
				names = append(names, string('A'+rune(j)))
			}
		}
		fmt.Fprintf(&b, "%-4d %-12s %8d %8d\n", i+1, strings.Join(names, ","), row.Count, row.Leaks)
	}
	return b.String()
}

// TableI returns the rendered Table I example.
func TableI() fmt.Stringer {
	return &tableResult{"Table I: example evidence summary (sink k; parents A, B, C)", unattrib.TableI()}
}

// TableII returns the rendered Table II example.
func TableII() fmt.Stringer {
	return &tableResult{"Table II: multimodal example evidence summary", unattrib.TableII()}
}
