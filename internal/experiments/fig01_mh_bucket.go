// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver takes a config struct (with a Paper()
// constructor at publication scale and a Small() constructor for quick
// runs and tests), executes the experiment, and returns a result value
// whose String method renders the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"strings"

	"infoflow/internal/bucket"
	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
)

// Fig1Config parameterises the basic bucket experiment of §IV-C (Fig. 1):
// Metropolis-Hastings flow estimates on synthetic betaICMs, calibrated
// against sampled outcomes.
type Fig1Config struct {
	Seed   uint64
	Models int // number of synthetic betaICMs (paper: 2000)
	Nodes  int // per model (paper: 50)
	Edges  int // per model (paper: 200)
	Bins   int // bucket count (paper: 30)
	// Beta parameter ranges; the paper draws a, b ~ U(1, 20).
	ALo, AHi, BLo, BHi float64
	// PairsPerModel is how many random flows are tested per model, all
	// answered by one batched chain. 1 (the default when zero) is the
	// paper's protocol; larger values amortise the chain's burn-in and
	// thinning across up to 64 flows per lane sweep.
	PairsPerModel int
	MH            mh.Options
}

// Fig1Paper returns the paper-scale configuration.
func Fig1Paper() Fig1Config {
	return Fig1Config{
		Seed: 1, Models: 2000, Nodes: 50, Edges: 200, Bins: 30,
		ALo: 1, AHi: 20, BLo: 1, BHi: 20,
		MH: mh.Options{BurnIn: 2000, Thin: 100, Samples: 600},
	}
}

// Fig1Small returns a fast configuration for tests.
func Fig1Small() Fig1Config {
	c := Fig1Paper()
	c.Models = 120
	c.Nodes = 15
	c.Edges = 40
	c.Bins = 10
	c.MH = mh.Options{BurnIn: 400, Thin: 40, Samples: 300}
	return c
}

// Fig1Result is the calibration analysis plus the Table III measures for
// the "MH Test" row.
type Fig1Result struct {
	Analysis *bucket.Result
	All      bucket.Metrics
	Middle   bucket.Metrics
}

// String renders the calibration table and volume plot of Figure 1.
func (r *Fig1Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 1: Metropolis-Hastings bucket experiment (synthetic betaICMs)\n")
	b.WriteString(r.Analysis.String())
	b.WriteString(r.Analysis.VolumePlot())
	fmt.Fprintf(&b, "normalised likelihood: %.6f (middle %.6f), Brier: %.6f (middle %.6f)\n",
		r.All.NormalisedLikelihood, r.Middle.NormalisedLikelihood, r.All.Brier, r.Middle.Brier)
	return b.String()
}

// Fig1 runs the experiment: for each synthetic betaICM, sample a
// point-probability ICM and an active state from it, test random
// source/sink flows, estimate the same flows by batched MH on the
// betaICM's expected ICM, and bucket the (estimate, outcome) pairs. All
// flows of one model share a single chain via FlowProbBatch; with
// PairsPerModel = 1 the run is bit-identical to per-pair FlowProb.
func Fig1(cfg Fig1Config) (*Fig1Result, error) {
	r := rng.New(cfg.Seed)
	perModel := cfg.PairsPerModel
	if perModel <= 0 {
		perModel = 1
	}
	var exp bucket.Experiment
	pairs := make([]mh.FlowPair, perModel)
	outcomes := make([]bool, perModel)
	for i := 0; i < cfg.Models; i++ {
		bm := core.GenerateBetaICM(r, cfg.Nodes, cfg.Edges, cfg.ALo, cfg.AHi, cfg.BLo, cfg.BHi)
		sampled := bm.SampleICM(r)
		for k := range pairs {
			u := graph.NodeID(r.Intn(cfg.Nodes))
			v := graph.NodeID(r.Intn(cfg.Nodes))
			for v == u {
				v = graph.NodeID(r.Intn(cfg.Nodes))
			}
			pairs[k] = mh.FlowPair{Source: u, Sink: v}
		}
		state := sampled.SamplePseudoState(r)
		for k, pair := range pairs {
			outcomes[k] = sampled.HasFlow(pair.Source, pair.Sink, state)
		}
		ps, err := mh.FlowProbBatch(bm.ExpectedICM(), pairs, nil, cfg.MH, r)
		if err != nil {
			return nil, fmt.Errorf("fig1 model %d: %w", i, err)
		}
		for k, p := range ps {
			exp.MustAdd(p, outcomes[k])
		}
	}
	analysis, err := exp.Analyze(cfg.Bins)
	if err != nil {
		return nil, err
	}
	all, err := exp.Compute()
	if err != nil {
		return nil, err
	}
	middle, err := exp.ComputeMiddle()
	if err != nil {
		// All estimates at an extreme is legal, if unexpected; report
		// zero-valued middle metrics.
		middle = bucket.Metrics{}
	}
	return &Fig1Result{Analysis: analysis, All: all, Middle: middle}, nil
}
