package experiments

import (
	"fmt"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
	"infoflow/internal/twitter"
	"infoflow/internal/unattrib"
)

// TwitterLab bundles the shared setup of the Twitter experiments
// (§IV and §V-D): one generated corpus, a train/test split of the
// retweet cascades, and a betaICM trained on the attributed evidence
// recovered from the train tweets.
type TwitterLab struct {
	Dataset *twitter.Dataset
	// RealFlow is the flow graph restricted to real users (node IDs
	// unchanged); attributed retweet experiments never involve the
	// omnipotent node.
	RealFlow *graph.DiGraph
	// Trained is the betaICM over RealFlow trained on recovered
	// attributed evidence from the train split.
	Trained *core.BetaICM
	// Extraction reports the preprocessing bookkeeping.
	Extraction *twitter.AttributedResult
	// TrainCut is the index into Dataset.Retweets separating train
	// (before) from test (after) cascades.
	TrainCut int
	// TrainTweets and TestTweets are the corpus split.
	TrainTweets, TestTweets []twitter.Tweet
}

// NewTwitterLab generates a corpus and trains the attributed model.
func NewTwitterLab(cfg twitter.Config, trainFrac float64, r *rng.RNG) (*TwitterLab, error) {
	d, err := twitter.Generate(cfg, r)
	if err != nil {
		return nil, err
	}
	lab := &TwitterLab{Dataset: d}
	sub, _, _ := d.Flow.Subgraph(d.RealUsers())
	lab.RealFlow = sub
	lab.TrainTweets, lab.TestTweets = d.SplitTweets(trainFrac)
	lab.TrainCut = int(float64(len(d.Retweets)) * trainFrac)
	lab.Extraction = twitter.ExtractAttributed(lab.RealFlow, lab.TrainTweets)
	lab.Trained = core.NewBetaICM(lab.RealFlow)
	// Chain-recovered evidence attributes each retweet to one parent, so
	// the other incident edges of an already-active child are censored,
	// not failed: the censored training rule avoids deflating them.
	if err := lab.Trained.TrainAttributedCensored(&lab.Extraction.Evidence); err != nil {
		return nil, fmt.Errorf("twitterlab: training: %w", err)
	}
	return lab, nil
}

// TestCascades returns the held-out retweet objects.
func (l *TwitterLab) TestCascades() []twitter.ObjectTruth {
	return l.Dataset.Retweets[l.TrainCut:]
}

// TestCascadesFrom returns held-out cascades originating at the given
// focus user.
func (l *TwitterLab) TestCascadesFrom(focus twitter.UserID) []twitter.ObjectTruth {
	var out []twitter.ObjectTruth
	for _, obj := range l.TestCascades() {
		if obj.Seeds[0] == focus {
			out = append(out, obj)
		}
	}
	return out
}

// remapTrace translates a trace's node IDs through toNew, dropping nodes
// outside the subgraph.
func remapTrace(tr unattrib.Trace, toNew []graph.NodeID) unattrib.Trace {
	out := unattrib.Trace{}
	for u, t := range tr {
		if int(u) < len(toNew) && toNew[u] >= 0 {
			out[toNew[u]] = t
		}
	}
	return out
}
