package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestRepairSweepSaneAndIdentical(t *testing.T) {
	res, err := RunRepairSweep(RepairSweepSmall())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Repair <= 0 || row.Baseline <= 0 || row.PerSample <= 0 {
			t.Errorf("thin=%d: non-positive durations %+v", row.Thin, row)
		}
		total := row.Replays + row.Repairs + row.Rebuilds
		if total == 0 {
			t.Errorf("thin=%d: no sweeps recorded", row.Thin)
		}
		if sum := row.ReplayRate + row.RepairRate + row.RebuildRate; sum < 0.999 || sum > 1.001 {
			t.Errorf("thin=%d: disposition rates sum to %v, want 1", row.Thin, sum)
		}
		if row.Overflows != 0 {
			t.Errorf("thin=%d: %d flip-log overflows under the derived default cap, want 0", row.Thin, row.Overflows)
		}
		// The repair contract is exact, not statistical: repaired
		// condensations are bit-identical to rebuilt ones, so both
		// modes see the same reach sets on the same chain.
		if !row.Identical {
			t.Errorf("thin=%d: repair and baseline estimates differ", row.Thin)
		}
	}
	// At Thin=1 the one-flip delta keeps the repair path busy: the
	// engine must be doing something other than rebuilding every sweep.
	if r := res.Rows[0]; r.ReplayRate+r.RepairRate == 0 {
		t.Errorf("thin=1: every sweep rebuilt (replay %v, repair %v)", r.ReplayRate, r.RepairRate)
	}
	out := res.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "rebuild%") {
		t.Errorf("report missing content:\n%s", out)
	}
}

func TestRepairSweepInjectedClock(t *testing.T) {
	cfg := RepairSweepSmall()
	const step = time.Millisecond
	var ticks int
	cfg.Clock = func() time.Time {
		ticks++
		return time.Unix(0, int64(ticks)*int64(step))
	}
	res, err := RunRepairSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each thinning interval brackets two runs with two reads apiece.
	for _, row := range res.Rows {
		if row.Repair != step || row.Baseline != step {
			t.Errorf("thin=%d: durations = %v/%v, want %v each", row.Thin, row.Repair, row.Baseline, step)
		}
	}
	if want := 4 * len(cfg.Thins); ticks != want {
		t.Errorf("clock read %d times, want %d", ticks, want)
	}
}
