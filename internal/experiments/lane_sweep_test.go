package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestLaneSweepSaneAndIdentical(t *testing.T) {
	res, err := RunLaneSweep(LaneSweepSmall())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	// 128 queries: W=1 → 2 chunks, W=2 → 1 chunk.
	if res.Rows[0].Chunks != 2 || res.Rows[1].Chunks != 1 {
		t.Errorf("chunks = %d/%d, want 2/1", res.Rows[0].Chunks, res.Rows[1].Chunks)
	}
	for _, row := range res.Rows {
		if row.Total <= 0 || row.PerQuery <= 0 {
			t.Errorf("W=%d: non-positive durations %+v", row.Words, row)
		}
	}
	// The width-invariance contract is exact, not statistical: every
	// width runs the same chain on the same seed.
	if !res.Identical {
		t.Errorf("estimates differ across widths")
	}
	out := res.String()
	if !strings.Contains(out, "per-query") || !strings.Contains(out, "bit-identical") {
		t.Errorf("report missing content:\n%s", out)
	}
}

func TestLaneSweepInjectedClock(t *testing.T) {
	cfg := LaneSweepSmall()
	const step = time.Millisecond
	var ticks int
	cfg.Clock = func() time.Time {
		ticks++
		return time.Unix(0, int64(ticks)*int64(step))
	}
	res, err := RunLaneSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each width brackets its run with exactly two reads.
	for _, row := range res.Rows {
		if row.Total != step {
			t.Errorf("W=%d: total = %v, want %v", row.Words, row.Total, step)
		}
	}
	if want := 2 * len(cfg.Widths); ticks != want {
		t.Errorf("clock read %d times, want %d", ticks, want)
	}
}
