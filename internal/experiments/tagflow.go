package experiments

import (
	"fmt"
	"sort"

	"infoflow/internal/core"
	"infoflow/internal/dist"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
	"infoflow/internal/twitter"
	"infoflow/internal/unattrib"
)

// tagObject is one hashtag/URL object with its observable trace and
// test outcome set.
type tagObject struct {
	label string
	trace unattrib.Trace
}

// TagFlowLab is the shared pipeline of the §V-D experiments (Figs 8-10):
// a corpus, per-kind activation traces split into train/test, and — per
// (source, radius) — edge probabilities learned by the joint-Bayes
// method (with uncertainty) and by Goyal's credit rule on the radius
// sub-graph including the omnipotent user.
type TagFlowLab struct {
	Dataset *twitter.Dataset
	Kind    twitter.MentionKind
	Train   []tagObject
	Test    []tagObject
	// Source is the user originating the most test objects (the paper's
	// "interesting user" originator).
	Source twitter.UserID
}

// NewTagFlowLab generates the corpus (unless given one) and splits the
// traces.
func NewTagFlowLab(d *twitter.Dataset, kind twitter.MentionKind, trainFrac float64) (*TagFlowLab, error) {
	traces := twitter.ExtractTraces(d.Tweets, kind)
	if len(traces) == 0 {
		return nil, fmt.Errorf("tagflow: no traces of the requested kind")
	}
	labels := make([]string, 0, len(traces))
	for label := range traces {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	cut := int(float64(len(labels)) * trainFrac)
	lab := &TagFlowLab{Dataset: d, Kind: kind}
	for i, label := range labels {
		obj := tagObject{label: label, trace: traces[label]}
		if i < cut {
			lab.Train = append(lab.Train, obj)
		} else {
			lab.Test = append(lab.Test, obj)
		}
	}
	// Originator of a trace = its earliest mentioner; the source is the
	// user originating the most test objects.
	counts := map[twitter.UserID]int{}
	for _, obj := range lab.Test {
		counts[originator(obj.trace)]++
	}
	best, bestN := twitter.UserID(-1), -1
	for u, n := range counts {
		if n > bestN || (n == bestN && u < best) {
			best, bestN = u, n
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("tagflow: no test objects")
	}
	lab.Source = best
	return lab, nil
}

func originator(tr unattrib.Trace) twitter.UserID {
	best, bestT := twitter.UserID(-1), 0
	first := true
	for u, t := range tr {
		if first || t < bestT || (t == bestT && u < best) {
			best, bestT = u, t
			first = false
		}
	}
	return best
}

// TagFlowModel is the learned sub-graph model for one (source, radius):
// the sub-graph (with node mappings), per-edge posterior means and
// standard deviations from joint Bayes, and Goyal's point estimates.
type TagFlowModel struct {
	Sub          *graph.DiGraph
	ToOld, ToNew []graph.NodeID
	SourceSub    graph.NodeID
	OursMean     []float64 // by sub EdgeID
	OursStd      []float64
	Goyal        []float64
}

// Learn builds the model for the lab's source at the given radius: the
// directed radius-neighbourhood of the source plus the omnipotent user,
// with summaries built from train traces (omnipotent active first in
// every trace) and edges learned per sink by both methods. Edges with no
// evidence get the empirical-Bayes fallback mean for ours and 0 (no
// credit) for Goyal.
func (l *TagFlowLab) Learn(radius int, bayes unattrib.BayesOptions, r *rng.RNG) (*TagFlowModel, error) {
	return l.LearnWithOptions(radius, bayes, true, r)
}

// LearnWithOptions is Learn with the omnipotent outside-world user made
// optional: with includeOmnipotent=false, traces are used as observed
// (no always-active external parent), so activations with no visible
// cause attribute entirely to real edges — the ablation the paper
// reports as increasing flow probabilities marginally.
func (l *TagFlowLab) LearnWithOptions(radius int, bayes unattrib.BayesOptions, includeOmnipotent bool, r *rng.RNG) (*TagFlowModel, error) {
	flow := l.Dataset.Flow
	nodes := flow.NodesWithin(l.Source, radius)
	hasOmni := false
	for _, v := range nodes {
		if v == l.Dataset.Omnipotent {
			hasOmni = true
		}
	}
	if !hasOmni {
		nodes = append(nodes, l.Dataset.Omnipotent)
	}
	sub, toOld, toNew := flow.Subgraph(nodes)
	m := &TagFlowModel{
		Sub: sub, ToOld: toOld, ToNew: toNew,
		SourceSub: toNew[l.Source],
		OursMean:  make([]float64, sub.NumEdges()),
		OursStd:   make([]float64, sub.NumEdges()),
		Goyal:     make([]float64, sub.NumEdges()),
	}
	// observed marks edges whose parent appeared in at least one
	// characteristic for its sink. Unobserved edges carry no information;
	// leaving them at the uniform-prior mean 0.5 would let them percolate
	// (0.5 x typical out-degree >> 1) and inflate every flow estimate, so
	// they instead receive the empirical-Bayes fallback: the average
	// learned mean over observed edges (see DESIGN.md).
	observed := make([]bool, sub.NumEdges())
	remapped := make([]unattrib.Trace, 0, len(l.Train))
	for _, obj := range l.Train {
		tr := obj.trace
		if includeOmnipotent {
			tr = twitter.WithOmnipotent(tr, l.Dataset.Omnipotent)
		}
		rt := remapTrace(tr, toNew)
		if len(rt) > 0 {
			remapped = append(remapped, rt)
		}
	}
	sums, err := unattrib.BuildSummaries(sub, remapped)
	if err != nil {
		return nil, err
	}
	sinks := make([]graph.NodeID, 0, len(sums))
	for sink := range sums {
		sinks = append(sinks, sink)
	}
	sort.Slice(sinks, func(i, j int) bool { return sinks[i] < sinks[j] })
	// Informed base prior (the paper's "prior ... inferred from the
	// data"): a beta with small equivalent sample size centred on the
	// pooled per-exposure activation rate across all sinks. Without it,
	// edges with one or two ambiguous observations sit near the uniform
	// prior's mean 0.5 and jointly inflate every flow estimate.
	base := pooledPrior(sums)
	for _, sink := range sinks {
		s := sums[sink]
		if len(s.Rows) == 0 {
			continue
		}
		post, err := unattrib.JointBayesWithPrior(s, base, bayes, r)
		if err != nil {
			return nil, fmt.Errorf("tagflow: sink %d: %w", sink, err)
		}
		goyal := unattrib.Goyal(s)
		parentSeen := make([]bool, len(s.Parents))
		for _, row := range s.Rows {
			for j := range s.Parents {
				if row.Set.Has(j) {
					parentSeen[j] = true
				}
			}
		}
		for j, parent := range s.Parents {
			id, ok := sub.EdgeID(parent, sink)
			if !ok {
				return nil, fmt.Errorf("tagflow: missing edge %d->%d", parent, sink)
			}
			if !parentSeen[j] {
				continue
			}
			observed[id] = true
			m.OursMean[id] = post.Mean[j]
			m.OursStd[id] = post.StdDev[j]
			m.Goyal[id] = goyal[j]
		}
	}
	// Empirical-Bayes fallback for unobserved edges.
	meanSum, stdSum, n := 0.0, 0.0, 0
	for id, ok := range observed {
		if ok {
			meanSum += m.OursMean[id]
			stdSum += m.OursStd[id]
			n++
		}
	}
	fallbackMean, fallbackStd := 0.5, 0.2887 // uniform prior if nothing observed
	if n > 0 {
		fallbackMean = meanSum / float64(n)
		fallbackStd = stdSum / float64(n)
	}
	for id, ok := range observed {
		if !ok {
			m.OursMean[id] = fallbackMean
			m.OursStd[id] = fallbackStd
			m.Goyal[id] = 0 // Goyal's rule assigns no credit without evidence
		}
	}
	return m, nil
}

// pooledPrior fits a beta prior (equivalent sample size 6) to the pooled
// activation rate: total leak credit per parent exposure, Goyal-style,
// across every sink's summary.
func pooledPrior(sums map[graph.NodeID]*unattrib.Summary) dist.Beta {
	// Accumulate in sorted sink order: float addition is not
	// associative, and the map's randomized iteration order would make
	// the pooled prior differ bit-for-bit between runs.
	ids := make([]graph.NodeID, 0, len(sums))
	for id := range sums {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	exposure, credit := 0.0, 0.0
	for _, id := range ids {
		for _, row := range sums[id].Rows {
			// Each observation exposes |J| parent edges and carries at
			// most one unit of leak credit split among them.
			exposure += float64(row.Count * row.Set.Size())
			credit += float64(row.Leaks)
		}
	}
	//flowlint:ignore floatcmp -- exposure is a sum of non-negative counts; exact zero means no evidence at all
	if exposure == 0 {
		return dist.Uniform()
	}
	rate := credit / exposure
	if rate <= 0 {
		rate = 1 / (exposure + 1)
	}
	if rate >= 1 {
		rate = 1 - 1e-6
	}
	const ess = 6
	return dist.NewBeta(rate*ess+1e-3, (1-rate)*ess+1e-3)
}

// CommunityFlow estimates, by MH on an ICM with the given edge
// probabilities, the source-to-community flow probabilities over the
// sub-graph. It rides the batched lane engine; a one-source batch is
// bit-identical to CommunityFlowProbs on the same RNG.
func (m *TagFlowModel) CommunityFlow(p []float64, opts mh.Options, r *rng.RNG) ([]float64, error) {
	probs, err := m.CommunityFlows([]graph.NodeID{m.SourceSub}, p, opts, r)
	if err != nil {
		return nil, err
	}
	return probs[0], nil
}

// CommunityFlows is the multi-source form: one chain on the sub-graph
// ICM answers every listed source's community flows, 64 sources per
// lane sweep. Sources are sub-graph node IDs; the result is indexed
// [source][subNode].
func (m *TagFlowModel) CommunityFlows(sources []graph.NodeID, p []float64, opts mh.Options, r *rng.RNG) ([][]float64, error) {
	icm, err := core.NewICM(m.Sub, p)
	if err != nil {
		return nil, err
	}
	return mh.CommunityFlowProbsBatch(icm, sources, nil, opts, r)
}

// TestPairsFromSource yields, for each test object originated by the
// lab's source, the outcome per sub-graph user, calling visit(subNode,
// active). The omnipotent user and the source itself are skipped.
func (l *TagFlowLab) TestPairsFromSource(m *TagFlowModel, visit func(subNode graph.NodeID, active bool)) int {
	objects := 0
	for _, obj := range l.Test {
		if originator(obj.trace) != l.Source {
			continue
		}
		objects++
		for i, old := range m.ToOld {
			subNode := graph.NodeID(i)
			if old == l.Dataset.Omnipotent || old == l.Source {
				continue
			}
			_, active := obj.trace[old]
			visit(subNode, active)
		}
	}
	return objects
}
