package experiments

import (
	"fmt"
	"strings"

	"infoflow/internal/bucket"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
	"infoflow/internal/unattrib"
)

// Fig7Truths are the four ground-truth edge-probability sets of
// Figure 7's panels: (a) and (c) without skew, (b) and (d) with one
// skewed (small) probability.
var Fig7Truths = [][]float64{
	{0.68, 0.73, 0.85},
	{0.15, 0.68, 0.83},
	{0.82, 0.83, 0.92, 0.92},
	{0.06, 0.69, 0.74, 0.76},
}

// Fig7Config parameterises the RMSE-versus-evidence comparison of the
// four unattributed estimators (§V-C, Fig. 7).
type Fig7Config struct {
	Seed uint64
	// ObjectCounts is the evidence-size sweep (the x axis, log scale in
	// the paper: 1 .. 10^4).
	ObjectCounts []int
	// Repeats averages the RMSE over independently generated evidence.
	Repeats int
	// ParentActiveProb is the probability each incident parent is active
	// for an object when generating evidence.
	ParentActiveProb float64
	Bayes            unattrib.BayesOptions
	Saito            unattrib.SaitoOptions
}

// Fig7Paper returns the paper-scale configuration.
func Fig7Paper() Fig7Config {
	return Fig7Config{
		Seed:             7,
		ObjectCounts:     []int{1, 3, 10, 30, 100, 300, 1000, 3000, 10000},
		Repeats:          10,
		ParentActiveProb: 0.6,
		Bayes:            unattrib.DefaultBayesOptions(),
		Saito:            unattrib.DefaultSaitoOptions(),
	}
}

// Fig7Small returns a fast configuration for tests.
func Fig7Small() Fig7Config {
	c := Fig7Paper()
	c.ObjectCounts = []int{10, 100, 1000}
	c.Repeats = 3
	c.Bayes.Samples = 600
	c.Bayes.BurnIn = 200
	return c
}

// Fig7Point is the measured RMSE of each method at one evidence size,
// with the joint-Bayes posterior credible band (the paper's dashed 95%
// lines).
type Fig7Point struct {
	Objects  int
	Ours     float64
	Goyal    float64
	Filtered float64
	Saito    float64
	// OursCILo/Hi is the RMSE recomputed at the pointwise 2.5% and 97.5%
	// posterior quantiles, averaged over repeats.
	OursCILo, OursCIHi float64
}

// Fig7Panel is one truth set's curve.
type Fig7Panel struct {
	Truth  []float64
	Points []Fig7Point
}

// Fig7Result collects all panels.
type Fig7Result struct {
	Panels []Fig7Panel
}

// String renders the per-panel RMSE tables.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: RMSE of trained graph fragments versus ground truth\n")
	for _, panel := range r.Panels {
		fmt.Fprintf(&b, "truth %v\n", panel.Truth)
		fmt.Fprintf(&b, "%8s %9s %9s %9s %9s %19s\n", "objects", "ours", "goyal", "filtered", "saito", "ours 95% band")
		for _, p := range panel.Points {
			fmt.Fprintf(&b, "%8d %9.4f %9.4f %9.4f %9.4f [%8.4f,%8.4f]\n",
				p.Objects, p.Ours, p.Goyal, p.Filtered, p.Saito, p.OursCILo, p.OursCIHi)
		}
	}
	return b.String()
}

// fig7Evidence synthesises one summary: each object activates each
// parent independently with activeProb (re-drawn until non-empty), and
// the sink leaks with the ICM joint probability of the active set.
func fig7Evidence(r *rng.RNG, truth []float64, objects int, activeProb float64) *unattrib.Summary {
	parents := make([]graph.NodeID, len(truth))
	for j := range parents {
		parents[j] = graph.NodeID(j)
	}
	s, err := unattrib.NewSummary(graph.NodeID(len(truth)), parents)
	if err != nil {
		//flowlint:invariant unreachable: the synthetic parent set is built within MaxParents
		panic(err)
	}
	for o := 0; o < objects; o++ {
		var set unattrib.CharBits
		for set == 0 {
			for j := range truth {
				if r.Bernoulli(activeProb) {
					set = set.With(j)
				}
			}
		}
		surv := 1.0
		for j := range truth {
			if set.Has(j) {
				surv *= 1 - truth[j]
			}
		}
		s.Observe(set, r.Bernoulli(1-surv))
	}
	return s
}

// Fig7 runs the sweep for every truth panel.
func Fig7(cfg Fig7Config) (*Fig7Result, error) {
	res := &Fig7Result{}
	r := rng.New(cfg.Seed)
	for _, truth := range Fig7Truths {
		panel := Fig7Panel{Truth: truth}
		for _, objects := range cfg.ObjectCounts {
			var pt Fig7Point
			pt.Objects = objects
			for rep := 0; rep < cfg.Repeats; rep++ {
				s := fig7Evidence(r, truth, objects, cfg.ParentActiveProb)
				post, err := unattrib.JointBayes(s, cfg.Bayes, r)
				if err != nil {
					return nil, fmt.Errorf("fig7 truth %v objects %d: %w", truth, objects, err)
				}
				add := func(dst *float64, est []float64) error {
					v, err := bucket.RMSE(est, truth)
					if err != nil {
						return err
					}
					*dst += v / float64(cfg.Repeats)
					return nil
				}
				if err := add(&pt.Ours, post.Mean); err != nil {
					return nil, err
				}
				if err := add(&pt.Goyal, unattrib.Goyal(s)); err != nil {
					return nil, err
				}
				if err := add(&pt.Filtered, unattrib.FilteredMeans(s)); err != nil {
					return nil, err
				}
				init := make([]float64, len(truth))
				for j := range init {
					init[j] = 0.5
				}
				saito, _, err := unattrib.SaitoRelaxed(s, init, cfg.Saito)
				if err != nil {
					return nil, err
				}
				if err := add(&pt.Saito, saito); err != nil {
					return nil, err
				}
				lo, hi := posteriorBandRMSE(post, truth)
				pt.OursCILo += lo / float64(cfg.Repeats)
				pt.OursCIHi += hi / float64(cfg.Repeats)
			}
			panel.Points = append(panel.Points, pt)
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}

// posteriorBandRMSE computes the RMSE at the pointwise 2.5% and 97.5%
// posterior quantiles of each edge, mirroring the dashed uncertainty
// band of Figure 7.
func posteriorBandRMSE(post *unattrib.Posterior, truth []float64) (lo, hi float64) {
	nP := len(truth)
	qLo := make([]float64, nP)
	qHi := make([]float64, nP)
	col := make([]float64, len(post.Samples))
	for j := 0; j < nP; j++ {
		for i, row := range post.Samples {
			col[i] = row[j]
		}
		qLo[j] = quantile(col, 0.025)
		qHi[j] = quantile(col, 0.975)
	}
	l, err := bucket.RMSE(qLo, truth)
	if err != nil {
		return 0, 0
	}
	h, err := bucket.RMSE(qHi, truth)
	if err != nil {
		return 0, 0
	}
	if l > h {
		l, h = h, l
	}
	return l, h
}
