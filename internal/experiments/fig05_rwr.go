package experiments

import (
	"fmt"
	"strings"

	"infoflow/internal/bucket"
	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
	"infoflow/internal/rwr"
)

// Fig5Config parameterises the RWR baseline bucket experiment (§IV-E,
// Fig. 5): identical setup to Figure 1, but the "probability" estimate is
// a random-walk-with-restart similarity score.
type Fig5Config struct {
	Seed               uint64
	Models             int
	Nodes              int
	Edges              int
	Bins               int
	ALo, AHi, BLo, BHi float64
	RWR                rwr.Options
}

// Fig5Paper returns the paper-scale configuration.
func Fig5Paper() Fig5Config {
	return Fig5Config{
		Seed: 5, Models: 2000, Nodes: 50, Edges: 200, Bins: 30,
		ALo: 1, AHi: 20, BLo: 1, BHi: 20,
		RWR: rwr.DefaultOptions(),
	}
}

// Fig5Small returns a fast configuration for tests.
func Fig5Small() Fig5Config {
	c := Fig5Paper()
	c.Models = 250
	c.Nodes = 15
	c.Edges = 40
	c.Bins = 10
	return c
}

// Fig5Result is the RWR calibration analysis plus Table III measures for
// the "RWR" row.
type Fig5Result struct {
	Analysis *bucket.Result
	All      bucket.Metrics
	Middle   bucket.Metrics
}

// String renders the Figure 5 analysis.
func (r *Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: random walk with restart bucket experiment\n")
	b.WriteString(r.Analysis.String())
	fmt.Fprintf(&b, "normalised likelihood: %.6f (middle %.6f), Brier: %.6f (middle %.6f)\n",
		r.All.NormalisedLikelihood, r.Middle.NormalisedLikelihood, r.All.Brier, r.Middle.Brier)
	return b.String()
}

// Fig5 runs the experiment. RWR scores lie in [0,1] by construction
// (they are components of a distribution), so they can be bucketed
// directly; the point of the figure is that they are badly calibrated as
// probabilities.
func Fig5(cfg Fig5Config) (*Fig5Result, error) {
	r := rng.New(cfg.Seed)
	var exp bucket.Experiment
	for i := 0; i < cfg.Models; i++ {
		bm := core.GenerateBetaICM(r, cfg.Nodes, cfg.Edges, cfg.ALo, cfg.AHi, cfg.BLo, cfg.BHi)
		sampled := bm.SampleICM(r)
		u := graph.NodeID(r.Intn(cfg.Nodes))
		v := graph.NodeID(r.Intn(cfg.Nodes))
		for v == u {
			v = graph.NodeID(r.Intn(cfg.Nodes))
		}
		state := sampled.SamplePseudoState(r)
		z := sampled.HasFlow(u, v, state)
		expected := bm.ExpectedICM()
		score, err := rwr.Score(expected.G, expected.P, u, v, cfg.RWR)
		if err != nil {
			return nil, fmt.Errorf("fig5 model %d: %w", i, err)
		}
		exp.MustAdd(score, z)
	}
	analysis, err := exp.Analyze(cfg.Bins)
	if err != nil {
		return nil, err
	}
	all, err := exp.Compute()
	if err != nil {
		return nil, err
	}
	middle, err := exp.ComputeMiddle()
	if err != nil {
		middle = bucket.Metrics{}
	}
	return &Fig5Result{Analysis: analysis, All: all, Middle: middle}, nil
}
