package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestInfluenceComparisonSane(t *testing.T) {
	res, err := RunInfluence(InfluenceSmall())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SketchSeeds) != res.K || len(res.MCSeeds) != res.K {
		t.Fatalf("seed counts %d/%d, want %d", len(res.SketchSeeds), len(res.MCSeeds), res.K)
	}
	if res.RRSets != 32*64 {
		t.Errorf("rr sets = %d, want 2048", res.RRSets)
	}
	if res.SketchSpread < float64(res.K) || res.MCSpread < float64(res.K) {
		t.Errorf("evaluated spreads %v/%v below the seed count %d", res.SketchSpread, res.MCSpread, res.K)
	}
	if res.Evaluations < 24 {
		t.Errorf("mc-greedy evaluations = %d, want at least one per candidate", res.Evaluations)
	}
	out := res.String()
	for _, want := range []string{"sketch", "mc-greedy", "speedup", "RR sets"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestInfluenceComparisonDeterministic(t *testing.T) {
	a, err := RunInfluence(InfluenceSmall())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunInfluence(InfluenceSmall())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.SketchSeeds {
		if a.SketchSeeds[i] != b.SketchSeeds[i] {
			t.Fatalf("sketch seeds diverged across runs: %v vs %v", a.SketchSeeds, b.SketchSeeds)
		}
	}
	for i := range a.MCSeeds {
		if a.MCSeeds[i] != b.MCSeeds[i] {
			t.Fatalf("mc seeds diverged across runs: %v vs %v", a.MCSeeds, b.MCSeeds)
		}
	}
	if a.SketchSpread != b.SketchSpread || a.MCSpread != b.MCSpread {
		t.Fatalf("evaluated spreads diverged: %v/%v vs %v/%v", a.SketchSpread, a.MCSpread, b.SketchSpread, b.MCSpread)
	}
}

func TestInfluenceComparisonInjectedClock(t *testing.T) {
	cfg := InfluenceSmall()
	const step = time.Millisecond
	var ticks int
	cfg.Clock = func() time.Time {
		ticks++
		return time.Unix(0, int64(ticks)*int64(step))
	}
	res, err := RunInfluence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each backend brackets its run with exactly two reads.
	if res.SketchTime != step || res.MCTime != step {
		t.Errorf("durations %v/%v, want %v each", res.SketchTime, res.MCTime, step)
	}
	if ticks != 4 {
		t.Errorf("clock read %d times, want 4", ticks)
	}
	if res.Speedup() != 1 {
		t.Errorf("speedup = %v, want 1 under the stepped clock", res.Speedup())
	}
}
