package experiments

import (
	"fmt"
	"strings"

	"infoflow/internal/dist"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
	"infoflow/internal/twitter"
)

// Fig3Config parameterises the uncertainty experiment (§IV-D, Fig. 3):
// does the nested-MH distribution over flow probabilities from the
// trained betaICM match the empirical beta distribution observed in the
// evidence itself?
type Fig3Config struct {
	Seed      uint64
	Twitter   twitter.Config
	TrainFrac float64
	// Pairs is how many (source, sink) pairs to examine (paper shows 2).
	Pairs int
	// Models is the number of ICMs sampled from the betaICM (paper:
	// ~100).
	Models int
	MH     mh.Options
}

// Fig3Paper returns the paper-scale configuration.
func Fig3Paper() Fig3Config {
	return Fig3Config{
		Seed: 3, Twitter: twitter.DefaultConfig(), TrainFrac: 0.7,
		Pairs: 2, Models: 100,
		MH: mh.Options{BurnIn: 500, Thin: 30, Samples: 300},
	}
}

// Fig3Small returns a fast configuration for tests.
func Fig3Small() Fig3Config {
	c := Fig3Paper()
	tw := twitter.DefaultConfig()
	tw.NumUsers = 250
	tw.NumTweets = 800
	tw.NumHashtags = 0
	tw.NumURLs = 0
	c.Twitter = tw
	c.Models = 40
	c.MH = mh.Options{BurnIn: 200, Thin: 20, Samples: 200}
	return c
}

// Fig3Pair is one panel: a direct source->sink relationship, the
// empirical beta over the retweet rate in training data, and the
// nested-MH sample of flow probabilities from the trained model.
type Fig3Pair struct {
	Source, Sink twitter.UserID
	// Empirical is Beta(1+successes, 1+failures) counted directly from
	// the training cascades where Source was active.
	Empirical dist.Beta
	// ModelSamples are the nested-MH flow probabilities.
	ModelSamples []float64
	// ModelFit is a beta moment-matched to ModelSamples (the paper's
	// dashed curve).
	ModelFit dist.Beta
}

// Fig3Result collects the pairs.
type Fig3Result struct {
	Pairs []Fig3Pair
}

// String reports, per pair, the empirical and model distributions.
func (r *Fig3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3: uncertainty captured by the trained betaICM\n")
	for _, p := range r.Pairs {
		s := dist.Summarize(p.ModelSamples)
		fmt.Fprintf(&b, "pair %d->%d: empirical %v (mean %.3f sd %.3f); model samples mean %.3f sd %.3f; fit %v\n",
			p.Source, p.Sink, p.Empirical, p.Empirical.Mean(), p.Empirical.StdDev(),
			s.Mean, s.StdDev(), p.ModelFit)
	}
	return b.String()
}

// Fig3 runs the experiment: pick frequent tweeters with a directly
// connected sink, compare empirical vs nested-MH distributions.
func Fig3(cfg Fig3Config) (*Fig3Result, error) {
	r := rng.New(cfg.Seed)
	lab, err := NewTwitterLab(cfg.Twitter, cfg.TrainFrac, r)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{}
	for _, focus := range lab.Dataset.InterestingUsers(cfg.Pairs * 4) {
		if len(res.Pairs) == cfg.Pairs {
			break
		}
		children := lab.RealFlow.Children(focus)
		if len(children) == 0 {
			continue
		}
		sink := children[r.Intn(len(children))]
		// Empirical rate: over training cascades with focus active, did
		// sink activate?
		succ, fail := 0, 0
		for i := 0; i < lab.TrainCut; i++ {
			obj := lab.Dataset.Retweets[i]
			if _, ok := obj.ActiveTime[focus]; !ok {
				continue
			}
			if _, ok := obj.ActiveTime[sink]; ok {
				succ++
			} else {
				fail++
			}
		}
		if succ+fail < 5 {
			continue // not enough direct evidence to compare against
		}
		empirical := dist.Uniform().ObserveCounts(succ, fail)
		// Nested MH on the radius-2 sub-model around the focus.
		nodes := lab.RealFlow.NodesWithinUndirected(focus, 2)
		sub, _, toNew := lab.Trained.Subgraph(nodes)
		if toNew[sink] < 0 {
			continue
		}
		samples, err := mh.NestedFlowProb(sub, toNew[focus], toNew[sink], nil, cfg.Models, cfg.MH, r)
		if err != nil {
			return nil, err
		}
		res.Pairs = append(res.Pairs, Fig3Pair{
			Source:       focus,
			Sink:         sink,
			Empirical:    empirical,
			ModelSamples: samples,
			ModelFit:     dist.FitBetaToSamples(samples),
		})
	}
	if len(res.Pairs) == 0 {
		return nil, fmt.Errorf("fig3: no source/sink pair with enough direct evidence")
	}
	return res, nil
}
