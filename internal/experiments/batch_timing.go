package experiments

import (
	"fmt"
	"strings"
	"time"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
)

// BatchConfig parameterises the batched-estimator timing comparison: the
// same flow queries against one ICM answered two ways — one FlowProb
// chain per pair (how PR 1 experiments ran) versus a single chain whose
// thinned samples are interrogated by 64-lane reachability sweeps
// (FlowProbBatch). It is the engineering companion to Fig. 6: not a
// figure from the paper, but the measurement justifying the batched path
// the drivers now use.
type BatchConfig struct {
	Seed  uint64
	Nodes int // graph size (paper's §IV-C timing scale: 6000)
	Edges int // paper: 14000
	Pairs int // flow queries sharing the model (64 = one lane sweep)
	MH    mh.Options
	// Clock supplies the timestamps bracketing each measurement; nil
	// uses time.Now. Injectable so the timing columns are testable and
	// wall-clock reads stay explicit (the fig6 idiom).
	Clock func() time.Time
}

// BatchPaper returns the §IV-C-scale configuration.
func BatchPaper() BatchConfig {
	return BatchConfig{
		Seed: 64, Nodes: 6000, Edges: 14000, Pairs: 64,
		MH: mh.Options{BurnIn: 2000, Thin: 200, Samples: 200},
	}
}

// BatchSmall returns a fast configuration for tests.
func BatchSmall() BatchConfig {
	return BatchConfig{
		Seed: 64, Nodes: 300, Edges: 800, Pairs: 64,
		MH: mh.Options{BurnIn: 200, Thin: 20, Samples: 100},
	}
}

// BatchResult reports both timings and an estimate-agreement figure.
type BatchResult struct {
	Pairs      int
	Samples    int
	Sequential time.Duration // total for Pairs independent FlowProb chains
	Batched    time.Duration // total for one FlowProbBatch chain
	// MeanAbsDiff is the mean |sequential - batched| estimate gap: the
	// two paths run different chains, so they agree statistically (to
	// Monte-Carlo error), not exactly.
	MeanAbsDiff float64
}

// String renders the comparison table.
func (r *BatchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Batched estimation: %d flow queries, %d samples each\n", r.Pairs, r.Samples)
	fmt.Fprintf(&b, "%-28s %12v\n", "sequential (one chain/pair):", r.Sequential)
	fmt.Fprintf(&b, "%-28s %12v\n", "batched (one shared chain):", r.Batched)
	if r.Batched > 0 {
		fmt.Fprintf(&b, "%-28s %11.1fx\n", "speedup:", float64(r.Sequential)/float64(r.Batched))
	}
	fmt.Fprintf(&b, "%-28s %12.4f\n", "mean |estimate gap|:", r.MeanAbsDiff)
	return b.String()
}

// RunBatch measures the comparison.
func RunBatch(cfg BatchConfig) (*BatchResult, error) {
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	r := rng.New(cfg.Seed)
	g := graph.Random(r, cfg.Nodes, cfg.Edges)
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = r.Float64()
	}
	m, err := core.NewICM(g, p)
	if err != nil {
		return nil, err
	}
	pairs := make([]mh.FlowPair, cfg.Pairs)
	for i := range pairs {
		u := graph.NodeID(r.Intn(cfg.Nodes))
		v := graph.NodeID(r.Intn(cfg.Nodes))
		for v == u {
			v = graph.NodeID(r.Intn(cfg.Nodes))
		}
		pairs[i] = mh.FlowPair{Source: u, Sink: v}
	}
	seqEst := make([]float64, len(pairs))
	seqRNG := rng.New(cfg.Seed + 1)
	start := now()
	for i, pair := range pairs {
		est, err := mh.FlowProb(m, pair.Source, pair.Sink, nil, cfg.MH, seqRNG.Fork())
		if err != nil {
			return nil, fmt.Errorf("batch: sequential pair %d: %w", i, err)
		}
		seqEst[i] = est
	}
	seqDur := now().Sub(start)
	start = now()
	batchEst, err := mh.FlowProbBatch(m, pairs, nil, cfg.MH, rng.New(cfg.Seed+2))
	if err != nil {
		return nil, fmt.Errorf("batch: batched run: %w", err)
	}
	batchDur := now().Sub(start)
	gap := 0.0
	for i := range pairs {
		gap += abs(seqEst[i] - batchEst[i])
	}
	return &BatchResult{
		Pairs:       cfg.Pairs,
		Samples:     cfg.MH.Samples,
		Sequential:  seqDur,
		Batched:     batchDur,
		MeanAbsDiff: gap / float64(len(pairs)),
	}, nil
}
