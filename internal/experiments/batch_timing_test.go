package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestBatchTimingSaneAndAgrees(t *testing.T) {
	res, err := RunBatch(BatchSmall())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sequential <= 0 || res.Batched <= 0 {
		t.Errorf("non-positive durations: %+v", res)
	}
	// Different chains agree only statistically; with 100 samples per
	// estimate the mean gap stays well inside Monte-Carlo error.
	if res.MeanAbsDiff > 0.2 {
		t.Errorf("mean estimate gap %v between sequential and batched paths", res.MeanAbsDiff)
	}
	out := res.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "batched") {
		t.Errorf("report missing content:\n%s", out)
	}
}

func TestBatchTimingInjectedClock(t *testing.T) {
	cfg := BatchSmall()
	const step = time.Millisecond
	var ticks int
	cfg.Clock = func() time.Time {
		ticks++
		return time.Unix(0, int64(ticks)*int64(step))
	}
	res, err := RunBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each path brackets its run with exactly two reads.
	if res.Sequential != step || res.Batched != step {
		t.Errorf("durations = %v/%v, want %v each", res.Sequential, res.Batched, step)
	}
	if ticks != 4 {
		t.Errorf("clock read %d times, want 4", ticks)
	}
}
