package experiments

import (
	"fmt"
	"strings"

	"infoflow/internal/dist"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
	"infoflow/internal/twitter"
)

// Fig4Config parameterises the impact experiment (§IV-D, Fig. 4):
// compare the trained model's predicted distribution of retweet counts
// for a user's tweets against the counts observed in held-out data.
type Fig4Config struct {
	Seed      uint64
	Twitter   twitter.Config
	TrainFrac float64
	// Models is the number of ICMs sampled from the betaICM for the
	// posterior predictive.
	Models int
	// Radius bounds the sub-graph around the focus user.
	Radius int
	MH     mh.Options
}

// Fig4Paper returns the paper-scale configuration.
func Fig4Paper() Fig4Config {
	return Fig4Config{
		Seed: 4, Twitter: twitter.DefaultConfig(), TrainFrac: 0.7,
		// Radius 6 effectively covers a hub's whole reachable set; a
		// tighter radius truncates the predicted impact of exactly the
		// high-impact users the experiment focuses on.
		Models: 40, Radius: 6,
		MH: mh.Options{BurnIn: 500, Thin: 40, Samples: 250},
	}
}

// Fig4Small returns a fast configuration for tests.
func Fig4Small() Fig4Config {
	c := Fig4Paper()
	tw := twitter.DefaultConfig()
	tw.NumUsers = 250
	tw.NumTweets = 800
	tw.NumHashtags = 0
	tw.NumURLs = 0
	c.Twitter = tw
	c.Models = 15
	c.MH = mh.Options{BurnIn: 200, Thin: 20, Samples: 150}
	return c
}

// Fig4Result holds the two histograms of Figure 4.
type Fig4Result struct {
	Focus twitter.UserID
	// Predicted[k] counts predicted impacts of k retweeting users.
	Predicted []int
	// Actual[k] counts held-out cascades with k retweeting users.
	Actual []int
	// PredictedMean and ActualMean summarise the histograms.
	PredictedMean, ActualMean float64
}

// String renders both histograms side by side on a log-style scale.
func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: impact of tweets by %s (number of retweeting users)\n",
		twitter.FormatUser(r.Focus))
	maxLen := len(r.Predicted)
	if len(r.Actual) > maxLen {
		maxLen = len(r.Actual)
	}
	fmt.Fprintf(&b, "%9s %12s %12s\n", "retweets", "predicted", "actual")
	for k := 0; k < maxLen; k++ {
		p, a := 0, 0
		if k < len(r.Predicted) {
			p = r.Predicted[k]
		}
		if k < len(r.Actual) {
			a = r.Actual[k]
		}
		fmt.Fprintf(&b, "%9d %12d %12d\n", k, p, a)
	}
	fmt.Fprintf(&b, "means: predicted %.3f, actual %.3f\n", r.PredictedMean, r.ActualMean)
	return b.String()
}

// Fig4 runs the experiment on the most active user with held-out
// cascades.
func Fig4(cfg Fig4Config) (*Fig4Result, error) {
	r := rng.New(cfg.Seed)
	lab, err := NewTwitterLab(cfg.Twitter, cfg.TrainFrac, r)
	if err != nil {
		return nil, err
	}
	var focus twitter.UserID = -1
	var actualImpacts []int
	for _, u := range lab.Dataset.InterestingUsers(20) {
		objs := lab.TestCascadesFrom(u)
		if len(objs) < 3 {
			continue
		}
		focus = u
		for _, obj := range objs {
			actualImpacts = append(actualImpacts, len(obj.ActiveTime)-1)
		}
		break
	}
	if focus < 0 {
		return nil, fmt.Errorf("fig4: no focus user with held-out cascades")
	}
	nodes := lab.RealFlow.NodesWithinUndirected(focus, cfg.Radius)
	sub, _, toNew := lab.Trained.Subgraph(nodes)
	predicted, err := mh.NestedImpact(sub, []twitter.UserID{toNew[focus]}, cfg.Models, cfg.MH, r)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{
		Focus:     focus,
		Predicted: dist.IntHistogram(predicted),
		Actual:    dist.IntHistogram(actualImpacts),
	}
	res.PredictedMean = meanOfInts(predicted)
	res.ActualMean = meanOfInts(actualImpacts)
	return res, nil
}

func meanOfInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}
