package testkit

import (
	"fmt"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

// Family names a seeded random-graph family used to generate conformance
// cases. The three families cover the structures the paper's experiments
// draw on: uniform random graphs (§IV-A), preferential-attachment follow
// graphs (the Twitter-like shape of §IV-C), and DAGs (where Eq. 2's
// recursion is closest to exact).
type Family int

const (
	Uniform Family = iota
	Preferential
	DAG
)

// Families lists every graph family, in generation order.
var Families = []Family{Uniform, Preferential, DAG}

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case Uniform:
		return "uniform"
	case Preferential:
		return "preferential"
	case DAG:
		return "dag"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// NewModel draws a small ICM from the family: structure from the seeded
// generator, edge probabilities uniform in [0.15, 0.85] (extreme
// probabilities slow chain mixing and push ground truths against the
// boundary, where conformance bands degenerate). Sizes are chosen so the
// graphs stay within core.MaxEnumEdges and exhaustive enumeration is
// cheap.
func NewModel(f Family, r *rng.RNG) *core.ICM {
	var g *graph.DiGraph
	switch f {
	case Uniform:
		g = graph.Random(r, 7, 14)
	case Preferential:
		// n=7, 2 edges per arriving node: at most 11 base edges plus 11
		// reciprocal ones, safely under core.MaxEnumEdges.
		g = graph.PreferentialAttachment(r, 7, 2, 0.25)
	case DAG:
		g = graph.RandomDAG(r, 8, 14)
	default:
		//flowlint:invariant unreachable: every Family value is enumerated above
		panic(fmt.Sprintf("testkit: unknown family %d", int(f)))
	}
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = r.Uniform(0.15, 0.85)
	}
	return core.MustNewICM(g, p)
}

// Case is one conformance scenario: a small model, a flow query, optional
// flow conditions, and the enumeration ground truth.
type Case struct {
	Name         string
	Model        *core.ICM
	Source, Sink graph.NodeID
	Conds        []core.FlowCondition
	// Exact is the ground-truth probability by exhaustive pseudo-state
	// enumeration (Eq. 5 computed exactly; conditional when Conds is set).
	Exact float64
	// Recursive is Eq. 2's recursive evaluation of the unconditioned
	// query. It is exact when the sink's parent flows are edge-disjoint
	// and an upper bound otherwise (see core.RecursiveFlowProb); it is -1
	// for conditioned cases, which the recursion does not cover.
	Recursive float64
}

// Cases generates the standard conformance suite deterministically from
// seed: one unconditioned and one conditioned case per family. Queries
// are selected so the ground truth lies strictly inside (0.05, 0.95) —
// boundary probabilities make binomial bands degenerate and are covered
// by direct unit tests instead.
func Cases(seed uint64) []Case {
	var cases []Case
	for _, f := range Families {
		cases = append(cases, UnconditionedCase(f, seed))
		cases = append(cases, ConditionedCase(f, seed))
	}
	return cases
}

// UnconditionedCases is the marginal-only half of Cases, one case per
// family.
func UnconditionedCases(seed uint64) []Case {
	var cases []Case
	for _, f := range Families {
		cases = append(cases, UnconditionedCase(f, seed))
	}
	return cases
}

// maxModelDraws bounds the deterministic rejection loop over models; the
// acceptance criteria hold for most draws, so hitting the bound means the
// selection constraints themselves are broken.
const maxModelDraws = 64

// UnconditionedCase deterministically builds a marginal flow query on the
// family with ground truth inside (0.05, 0.95).
func UnconditionedCase(f Family, seed uint64) Case {
	r := rng.NewStream(seed, uint64(f))
	for try := 0; try < maxModelDraws; try++ {
		m := NewModel(f, r.Fork())
		source, ok := pickSource(m)
		if !ok {
			continue
		}
		sink, exact, ok := pickSink(m, source, -1)
		if !ok {
			continue
		}
		return Case{
			Name:      fmt.Sprintf("%s/marginal/seed=%d", f, seed),
			Model:     m,
			Source:    source,
			Sink:      sink,
			Exact:     exact,
			Recursive: m.RecursiveFlowProb(source, sink),
		}
	}
	//flowlint:invariant test-harness exhaustion: seeds are chosen so an admissible case exists
	panic(fmt.Sprintf("testkit: no admissible unconditioned case for %s with seed %d", f, seed))
}

// ConditionedCase deterministically builds a conditioned flow query on
// the family: the condition requires a flow from the source to an
// intermediate node with P(C) inside (0.2, 0.95), and the queried
// conditional probability lies inside (0.05, 0.95).
func ConditionedCase(f Family, seed uint64) Case {
	r := rng.NewStream(seed, uint64(f)+uint64(len(Families)))
	for try := 0; try < maxModelDraws; try++ {
		m := NewModel(f, r.Fork())
		source, ok := pickSource(m)
		if !ok {
			continue
		}
		condSink, pc, ok := pickSink(m, source, -1)
		if !ok || pc <= 0.2 || pc >= 0.95 {
			continue
		}
		conds := []core.FlowCondition{{Source: source, Sink: condSink, Require: true}}
		sink, exact, ok := pickConditionalSink(m, source, condSink, conds)
		if !ok {
			continue
		}
		return Case{
			Name:      fmt.Sprintf("%s/conditioned/seed=%d", f, seed),
			Model:     m,
			Source:    source,
			Sink:      sink,
			Conds:     conds,
			Exact:     exact,
			Recursive: -1,
		}
	}
	//flowlint:invariant test-harness exhaustion: seeds are chosen so an admissible case exists
	panic(fmt.Sprintf("testkit: no admissible conditioned case for %s with seed %d", f, seed))
}

// pickSource returns the lowest-ID node that can reach anything at all.
func pickSource(m *core.ICM) (graph.NodeID, bool) {
	for v := 0; v < m.NumNodes(); v++ {
		if m.G.OutDegree(graph.NodeID(v)) > 0 {
			return graph.NodeID(v), true
		}
	}
	return 0, false
}

// pickSink scans all sinks (except the source and skip) and returns the
// one whose exact flow probability is admissible and closest to 1/2 —
// the point of maximum discrimination power for a binomial band.
func pickSink(m *core.ICM, source, skip graph.NodeID) (graph.NodeID, float64, bool) {
	best := graph.NodeID(-1)
	bestP := 0.0
	for v := 0; v < m.NumNodes(); v++ {
		sink := graph.NodeID(v)
		if sink == source || sink == skip {
			continue
		}
		p := m.EnumFlowProb([]graph.NodeID{source}, sink)
		if p <= 0.05 || p >= 0.95 {
			continue
		}
		if best < 0 || abs(p-0.5) < abs(bestP-0.5) {
			best, bestP = sink, p
		}
	}
	return best, bestP, best >= 0
}

// pickConditionalSink is pickSink under flow conditions.
func pickConditionalSink(m *core.ICM, source, skip graph.NodeID, conds []core.FlowCondition) (graph.NodeID, float64, bool) {
	best := graph.NodeID(-1)
	bestP := 0.0
	for v := 0; v < m.NumNodes(); v++ {
		sink := graph.NodeID(v)
		if sink == source || sink == skip {
			continue
		}
		p, err := m.EnumConditionalFlowProb([]graph.NodeID{source}, sink, conds)
		if err != nil || p <= 0.05 || p >= 0.95 {
			continue
		}
		if best < 0 || abs(p-0.5) < abs(bestP-0.5) {
			best, bestP = sink, p
		}
	}
	return best, bestP, best >= 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
