package testkit

import (
	"strings"
	"testing"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
	"infoflow/internal/sizedist"
)

// iidImpactEstimator samples impacts by direct iid cascade simulation —
// exactly multinomial draws from the true law, so it must pass the gate
// even at ESS=1.
func iidImpactEstimator(m *core.ICM, sources []graph.NodeID, samples int, seed uint64) ([]int, error) {
	r := rng.New(seed)
	out := make([]int, samples)
	for i := range out {
		out[i] = m.SampleCascade(r, sources).NumNewlyActive()
	}
	return out, nil
}

func TestDistGatePassesUnbiasedSampler(t *testing.T) {
	var cases []DistCase
	for _, f := range Families {
		r := rng.NewStream(911, uint64(f))
		m := NewModel(f, r)
		cases = append(cases, EnumOracleCase(f.String(), m, []graph.NodeID{0}))
	}
	tol := DistTolerance{Samples: 6000, ESS: 1, Alpha: 1e-6, MinExpected: 5}
	rep, err := RunDistributionConformance(cases, iidImpactEstimator, tol, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("unbiased iid sampler failed the gate:\n%s", rep)
	}
}

func TestDistGateRejectsBiasedSampler(t *testing.T) {
	// Power check: a sampler that halves every impact must fail.
	biased := func(m *core.ICM, sources []graph.NodeID, samples int, seed uint64) ([]int, error) {
		out, err := iidImpactEstimator(m, sources, samples, seed)
		for i := range out {
			out[i] /= 2
		}
		return out, err
	}
	r := rng.NewStream(912, 0)
	m := NewModel(Uniform, r)
	cases := []DistCase{EnumOracleCase("biased", m, []graph.NodeID{0})}
	tol := DistTolerance{Samples: 6000, ESS: 1, Alpha: 1e-6, MinExpected: 5}
	rep, err := RunDistributionConformance(cases, biased, tol, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("biased sampler passed the gate:\n%s", rep)
	}
	if len(rep.Failures()) != 1 {
		t.Errorf("failures = %d, want 1", len(rep.Failures()))
	}
}

func TestDistGateSkipsBeyondEnumLimit(t *testing.T) {
	// An enum-oracle case past MaxEnumEdges must skip-and-report, not
	// panic, fail, or invoke the estimator.
	r := rng.New(913)
	g := graph.Random(r, 12, core.MaxEnumEdges+10)
	p := make([]float64, g.NumEdges())
	for i := range p {
		p[i] = 0.5
	}
	m := core.MustNewICM(g, p)
	c := EnumOracleCase("too-big", m, []graph.NodeID{0})
	if c.SkipReason == "" {
		t.Fatal("expected a skip reason past MaxEnumEdges")
	}
	called := false
	est := func(*core.ICM, []graph.NodeID, int, uint64) ([]int, error) {
		called = true
		return nil, nil
	}
	small := EnumOracleCase("small", core.MustNewICM(graph.Path(3), []float64{0.5, 0.5}), []graph.NodeID{0})
	rep, err := RunDistributionConformance([]DistCase{c, small}, iidImpactEstimator, DefaultDistTolerance(2000), 5)
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("estimator was invoked for a skipped case")
	}
	if !rep.OK() {
		t.Fatalf("run with one skipped case should pass:\n%s", rep)
	}
	if len(rep.Skipped()) != 1 {
		t.Errorf("skipped = %d, want 1", len(rep.Skipped()))
	}
	if !strings.Contains(rep.String(), "SKIP") {
		t.Errorf("report does not surface the skip:\n%s", rep)
	}
	_ = est
}

func TestDistGateRejectsOutOfRangeImpact(t *testing.T) {
	bad := func(m *core.ICM, sources []graph.NodeID, samples int, seed uint64) ([]int, error) {
		out := make([]int, samples)
		out[0] = m.NumNodes() + 5 // impossible impact
		return out, nil
	}
	cases := []DistCase{EnumOracleCase("range", core.MustNewICM(graph.Path(3), []float64{0.5, 0.5}), []graph.NodeID{0})}
	rep, err := RunDistributionConformance(cases, bad, DefaultDistTolerance(100), 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || rep.Results[0].Err == nil {
		t.Fatalf("out-of-range impact must fail the case:\n%s", rep)
	}
}

func TestScaleDistCasesBeyondEnum(t *testing.T) {
	cases, err := ScaleDistCases(31)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 3 {
		t.Fatalf("cases = %d, want >= 3", len(cases))
	}
	labels := map[string]bool{}
	for _, c := range cases {
		if c.Model.NumEdges() <= 10*core.MaxEnumEdges {
			t.Errorf("%s: %d edges not beyond 10x MaxEnumEdges", c.Name, c.Model.NumEdges())
		}
		sum := 0.0
		for _, p := range c.Oracle {
			sum += p
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			t.Errorf("%s: oracle sums to %v", c.Name, sum)
		}
		labels[c.OracleLabel] = true
	}
	for _, want := range []string{"forest", "frontier-dp", "loop-conditioning"} {
		if !labels[want] {
			t.Errorf("no scale case uses the %s oracle (got %v)", want, labels)
		}
	}
	// The gate itself must pass an iid sampler on the scale fixtures.
	rep, err := RunDistributionConformance(cases, iidImpactEstimator,
		DistTolerance{Samples: 4000, ESS: 1, Alpha: 1e-6, MinExpected: 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("iid sampler failed on scale fixtures:\n%s", rep)
	}
}

func TestSizedistOracleRefusesInexact(t *testing.T) {
	// MC is never an oracle.
	r := rng.New(914)
	g, p := layeredFixture(r, 2, 20, 10)
	m := core.MustNewICM(g, p)
	_, err := SizedistOracleCase("mc", m, []graph.NodeID{0},
		sizedist.Options{MaxWidth: 4, MCSamples: 100})
	if err == nil {
		t.Fatal("inexact sizedist result accepted as oracle")
	}
}

// TestGoldenSizeDistVectors pins the analytic engine's output on the
// family fixtures and a downsampled scale fixture into the golden
// corpus (additive; regenerate with -update-golden).
func TestGoldenSizeDistVectors(t *testing.T) {
	type vector struct {
		Name   string    `json:"name"`
		Method string    `json:"method"`
		Mean   float64   `json:"mean"`
		Dist   []float64 `json:"dist"`
	}
	var vectors []vector
	for _, f := range Families {
		r := rng.NewStream(915, uint64(f))
		m := NewModel(f, r)
		res, err := sizedist.Compute(m, []graph.NodeID{0}, sizedist.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		vectors = append(vectors, vector{
			Name:   f.String(),
			Method: res.Method.String(),
			Mean:   Round(res.Mean(), 10),
			Dist:   RoundSlice(res.Dist, 10),
		})
	}
	r := rng.NewStream(915, 99)
	g, p := layeredFixture(r, 12, 3, 2)
	m := core.MustNewICM(g, p)
	res, err := sizedist.Compute(m, []graph.NodeID{0}, sizedist.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vectors = append(vectors, vector{
		Name:   "layered-12x3",
		Method: res.Method.String(),
		Mean:   Round(res.Mean(), 10),
		Dist:   RoundSlice(res.Dist, 10),
	})
	Golden(t, "sizedist_vectors", vectors)
}
