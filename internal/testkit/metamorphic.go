package testkit

import (
	"fmt"
	"math"

	"infoflow/internal/core"
	"infoflow/internal/dist"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

// CheckMonotonicity verifies the basic comparative static of the flow
// model: raising any single edge's activation probability by delta must
// not decrease the exact flow probability (a coupling argument — every
// pseudo-state carrying the flow remains at least as likely). Violations
// indicate a broken evaluator, not sampling noise, so the check is exact
// up to enumeration round-off.
func CheckMonotonicity(m *core.ICM, source, sink graph.NodeID, delta float64) error {
	if delta <= 0 {
		return fmt.Errorf("testkit: non-positive delta %v", delta)
	}
	base := m.EnumFlowProb([]graph.NodeID{source}, sink)
	for id := 0; id < m.NumEdges(); id++ {
		bumped := m.P[id] + delta
		if bumped > 1 {
			bumped = 1
		}
		p := append([]float64(nil), m.P...)
		p[graph.EdgeID(id)] = bumped
		raised := core.MustNewICM(m.G, p)
		got := raised.EnumFlowProb([]graph.NodeID{source}, sink)
		if got < base-1e-12 {
			e := m.G.Edge(graph.EdgeID(id))
			return fmt.Errorf("testkit: raising edge %d->%d from %.4f to %.4f dropped Pr[%d~>%d] from %.12f to %.12f",
				e.From, e.To, m.P[id], bumped, source, sink, base, got)
		}
	}
	return nil
}

// CheckConditioningConsistency verifies the law of total probability
// linking the conditioned semantics of Eqs. 6–8 to the marginal of
// Eq. 5: P(A) = P(A|C)·P(C) + P(A|¬C)·(1−P(C)), with every term computed
// by exhaustive enumeration. A is the flow source ~> sink and C the given
// flow condition.
func CheckConditioningConsistency(m *core.ICM, source, sink graph.NodeID, c core.FlowCondition) error {
	q := m.EnumFlowProb([]graph.NodeID{c.Source}, c.Sink)
	pC := q
	if !c.Require {
		pC = 1 - q
	}
	pA := m.EnumFlowProb([]graph.NodeID{source}, sink)
	total := 0.0
	if pC > 0 {
		pAC, err := m.EnumConditionalFlowProb([]graph.NodeID{source}, sink, []core.FlowCondition{c})
		if err != nil {
			return fmt.Errorf("testkit: conditioning on C: %w", err)
		}
		total += pAC * pC
	}
	if pC < 1 {
		notC := c
		notC.Require = !c.Require
		pAnC, err := m.EnumConditionalFlowProb([]graph.NodeID{source}, sink, []core.FlowCondition{notC})
		if err != nil {
			return fmt.Errorf("testkit: conditioning on not-C: %w", err)
		}
		total += pAnC * (1 - pC)
	}
	if math.Abs(total-pA) > 1e-9 {
		return fmt.Errorf("testkit: total probability violated for %d~>%d given %+v: decomposed %.12f vs marginal %.12f",
			source, sink, c, total, pA)
	}
	return nil
}

// CheckRecursionUpperBound verifies the FKG relationship documented on
// core.RecursiveFlowProb: Eq. 2's recursion treats parent flows as
// independent where they are positively associated, so it may
// overestimate but must never undershoot the enumeration truth.
func CheckRecursionUpperBound(m *core.ICM, source graph.NodeID) error {
	for v := 0; v < m.NumNodes(); v++ {
		sink := graph.NodeID(v)
		if sink == source {
			continue
		}
		rec := m.RecursiveFlowProb(source, sink)
		enum := m.EnumFlowProb([]graph.NodeID{source}, sink)
		if rec < enum-1e-9 {
			return fmt.Errorf("testkit: recursion undershoots enumeration for %d~>%d: %.12f < %.12f",
				source, sink, rec, enum)
		}
	}
	return nil
}

// maxSizePMFEdges bounds CascadeSizePMF's 2^m enumeration.
const maxSizePMFEdges = 20

// CascadeSizePMF returns the exact distribution of the number of active
// nodes when information flows from sources, by exhaustive pseudo-state
// enumeration under the live-edge law: entry k is P(|active| = k). This
// is the closed-form cascade-size target in the spirit of Burkholz &
// Quackenbush's distributional analyses, specialised to exact small-graph
// enumeration.
func CascadeSizePMF(m *core.ICM, sources []graph.NodeID) []float64 {
	me := m.NumEdges()
	if me > maxSizePMFEdges {
		//flowlint:invariant documented size limit: PMF enumeration is exponential beyond maxSizePMFEdges
		panic(fmt.Sprintf("testkit: CascadeSizePMF on %d edges exceeds limit %d", me, maxSizePMFEdges))
	}
	pmf := make([]float64, m.NumNodes()+1)
	x := core.NewPseudoState(me)
	var rec func(i int, logp float64)
	rec = func(i int, logp float64) {
		if math.IsInf(logp, -1) {
			return
		}
		if i == me {
			n := 0
			for _, a := range m.ActiveNodes(sources, x) {
				if a {
					n++
				}
			}
			pmf[n] += math.Exp(logp)
			return
		}
		x[i] = true
		rec(i+1, logp+math.Log(m.P[i]))
		x[i] = false
		rec(i+1, logp+math.Log1p(-m.P[i]))
	}
	rec(0, 0)
	return pmf
}

// CheckCascadeSizes draws cascades from m's round-based sampler and
// tests the empirical size counts against the exact live-edge PMF, one
// two-sided binomial test per size at level alpha/(#sizes) (Bonferroni).
// Passing ties SampleCascade's dynamics to the pseudo-state law the
// samplers estimate under — the equivalence every estimator relies on.
func CheckCascadeSizes(m *core.ICM, sources []graph.NodeID, samples int, alpha float64, r *rng.RNG) error {
	if samples <= 0 || alpha <= 0 || alpha >= 1 {
		return fmt.Errorf("testkit: invalid samples=%d alpha=%v", samples, alpha)
	}
	pmf := CascadeSizePMF(m, sources)
	counts := make([]int, len(pmf))
	for i := 0; i < samples; i++ {
		counts[m.SampleCascade(r, sources).NumActive()]++
	}
	return CheckSizeCounts(pmf, counts, samples, alpha)
}

// CheckSizeCounts is CheckCascadeSizes' decision rule on pre-drawn
// counts: counts[k] cascades of size k out of samples draws, tested
// against pmf with per-size two-sided binomial tests at level
// alpha/len(pmf). Exposed so power self-tests can feed it counts drawn
// from a deliberately wrong model.
func CheckSizeCounts(pmf []float64, counts []int, samples int, alpha float64) error {
	if len(counts) != len(pmf) {
		return fmt.Errorf("testkit: %d counts for %d sizes", len(counts), len(pmf))
	}
	bonf := alpha / float64(len(pmf))
	for k, p := range pmf {
		pv := dist.NewBinomial(samples, p).TwoSidedPValue(counts[k])
		if pv < bonf {
			return fmt.Errorf("testkit: cascade size %d: observed %d/%d samples vs exact P=%.6f (p-value %.3g < %.3g)",
				k, counts[k], samples, p, pv, bonf)
		}
	}
	return nil
}
