package testkit

import (
	"errors"
	"fmt"
	"strings"

	"infoflow/internal/core"
	"infoflow/internal/dist"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
	"infoflow/internal/sizedist"
)

// DistEstimator is a sampling impact-distribution estimator under
// conformance test: it must return one impact value (number of
// non-source activated nodes) per output sample, deterministically for
// a fixed seed. mh.ImpactDistribution adapts to this shape in one line.
type DistEstimator func(m *core.ICM, sources []graph.NodeID, samples int, seed uint64) ([]int, error)

// DistTolerance derives a multinomial acceptance gate from Pearson's
// chi-square test: the sampled impact histogram is compared against the
// oracle distribution and rejected only when the discrepancy is
// statistically significant evidence of bias at level Alpha, with the
// sample count discounted by ESS for residual MCMC autocorrelation.
type DistTolerance struct {
	// Samples is the nominal number of impact samples requested.
	Samples int
	// ESS in (0, 1] discounts Samples (and the observed counts) for
	// autocorrelation between thinned output samples; 1 means iid.
	ESS float64
	// Alpha is the significance level of the chi-square test.
	Alpha float64
	// MinExpected is the minimum ESS-discounted expected count per
	// chi-square bucket; adjacent impact buckets are pooled until each
	// pool reaches it, the standard validity condition for Pearson's
	// statistic.
	MinExpected float64
}

// DefaultDistTolerance returns the standard gate. ESS 0.35 is more
// conservative than the binomial bands' 0.5 because the chi-square
// statistic aggregates every bucket's autocorrelation rather than one
// indicator's; Alpha 1e-6 keeps the false-positive rate of a multi-case
// run negligible while a systematically shifted histogram at
// samples ≥ 4000 still fails with overwhelming power.
func DefaultDistTolerance(samples int) DistTolerance {
	return DistTolerance{Samples: samples, ESS: 0.35, Alpha: 1e-6, MinExpected: 5}
}

func (tol DistTolerance) validate() error {
	if tol.Samples <= 0 || tol.ESS <= 0 || tol.ESS > 1 || tol.Alpha <= 0 || tol.Alpha >= 1 || tol.MinExpected <= 0 {
		return fmt.Errorf("testkit: invalid distribution tolerance %+v", tol)
	}
	return nil
}

// ChiSquare computes the pooled Pearson statistic of observed impact
// samples against the oracle distribution: counts are scaled by ESS,
// adjacent buckets pooled until each pool's expected count reaches
// MinExpected, and the p-value read from the chi-square survival
// function with (#pools − 1) degrees of freedom. An impact outside
// [0, len(oracle)) is an indexing-contract violation and returns an
// error. With fewer than two pools the test is vacuous (p = 1).
func (tol DistTolerance) ChiSquare(oracle []float64, impacts []int) (stat float64, df int, p float64, err error) {
	counts := make([]float64, len(oracle))
	for _, k := range impacts {
		if k < 0 || k >= len(oracle) {
			return 0, 0, 0, fmt.Errorf("testkit: impact %d outside oracle range [0,%d)", k, len(oracle))
		}
		counts[k]++
	}
	effN := float64(len(impacts)) * tol.ESS
	type pool struct{ obs, exp float64 }
	var pools []pool
	var cur pool
	for k := range oracle {
		cur.obs += counts[k] * tol.ESS
		cur.exp += oracle[k] * effN
		if cur.exp >= tol.MinExpected {
			pools = append(pools, cur)
			cur = pool{}
		}
	}
	// Fold an underweight tail into the last complete pool so every
	// pool satisfies the validity condition. If nothing reached
	// MinExpected the test is vacuous.
	if cur.obs > 0 || cur.exp > 0 {
		if len(pools) == 0 {
			pools = append(pools, cur)
		} else {
			pools[len(pools)-1].obs += cur.obs
			pools[len(pools)-1].exp += cur.exp
		}
	}
	df = len(pools) - 1
	if df < 1 {
		return 0, df, 1, nil
	}
	for _, pl := range pools {
		d := pl.obs - pl.exp
		stat += d * d / pl.exp
	}
	return stat, df, dist.ChiSquareSurvival(stat, df), nil
}

// DistCase is one distribution-conformance scenario: a model, a source
// set, and an oracle impact distribution with its provenance. A
// non-empty SkipReason marks a case whose oracle could not be built
// (e.g. enumeration past core.MaxEnumEdges); such cases are reported as
// skipped rather than failing the run.
type DistCase struct {
	Name        string
	Model       *core.ICM
	Sources     []graph.NodeID
	Oracle      []float64
	OracleLabel string
	SkipReason  string
}

// EnumOracleCase builds a case whose oracle is exact pseudo-state
// enumeration, degrading to a skipped case (carrying the typed limit
// error's message) when the model exceeds core.MaxEnumEdges.
func EnumOracleCase(name string, m *core.ICM, sources []graph.NodeID) DistCase {
	c := DistCase{Name: name, Model: m, Sources: sources}
	oracle, err := m.EnumImpactDistribution(sources)
	if err != nil {
		var limit *core.EnumLimitError
		if errors.As(err, &limit) {
			c.SkipReason = limit.Error()
			return c
		}
		c.SkipReason = err.Error()
		return c
	}
	c.Oracle = oracle
	c.OracleLabel = "enum"
	return c
}

// SizedistOracleCase builds a case whose oracle is the analytic
// size-distribution engine. Only exact analytic methods qualify as
// ground truth; an approximate or infeasible result is an error, since
// a conformance gate against an approximation would be meaningless.
func SizedistOracleCase(name string, m *core.ICM, sources []graph.NodeID, opts sizedist.Options) (DistCase, error) {
	res, err := sizedist.Compute(m, sources, opts)
	if err != nil {
		return DistCase{}, fmt.Errorf("testkit: sizedist oracle for %s: %w", name, err)
	}
	if !res.Exact {
		return DistCase{}, fmt.Errorf("testkit: sizedist oracle for %s: method %v is not exact", name, res.Method)
	}
	return DistCase{
		Name:        name,
		Model:       m,
		Sources:     sources,
		Oracle:      res.Dist,
		OracleLabel: res.Method.String(),
	}, nil
}

// ScaleDistCases builds the standard beyond-enumeration suite: three
// graphs 10–100× past core.MaxEnumEdges whose impact laws the analytic
// engine still computes exactly — a large random out-tree (forest
// convolution), a deep layered DAG (frontier DP), and the same layered
// shape with reciprocal pairs spliced in (loop conditioning). Edge
// probabilities stay inside [0.2, 0.8] so the MH chains mix well.
func ScaleDistCases(seed uint64) ([]DistCase, error) {
	var cases []DistCase

	r := rng.NewStream(seed, 0)
	const treeN = 800
	g := graph.New(treeN)
	p := make([]float64, 0, treeN-1)
	for v := 1; v < treeN; v++ {
		g.MustAddEdge(graph.NodeID(r.Intn(v)), graph.NodeID(v))
		p = append(p, r.Uniform(0.2, 0.8))
	}
	c, err := SizedistOracleCase(fmt.Sprintf("tree-%dn/seed=%d", treeN, seed),
		core.MustNewICM(g, p), []graph.NodeID{0}, sizedist.DefaultOptions())
	if err != nil {
		return nil, err
	}
	cases = append(cases, c)

	r = rng.NewStream(seed, 1)
	g, p = layeredFixture(r, 50, 4, 2)
	c, err = SizedistOracleCase(fmt.Sprintf("layered-50x4/seed=%d", seed),
		core.MustNewICM(g, p), []graph.NodeID{0}, sizedist.DefaultOptions())
	if err != nil {
		return nil, err
	}
	cases = append(cases, c)

	r = rng.NewStream(seed, 2)
	g, p = layeredFixture(r, 45, 3, 2)
	// Two reciprocal pairs make the graph cyclic with four loop edges.
	for _, v := range []graph.NodeID{7, 61} {
		g.MustAddEdge(v, v+1)
		p = append(p, r.Uniform(0.3, 0.7))
		g.MustAddEdge(v+1, v)
		p = append(p, r.Uniform(0.3, 0.7))
	}
	c, err = SizedistOracleCase(fmt.Sprintf("layered-cyclic-45x3/seed=%d", seed),
		core.MustNewICM(g, p), []graph.NodeID{0}, sizedist.DefaultOptions())
	if err != nil {
		return nil, err
	}
	cases = append(cases, c)

	for i := range cases {
		if m := cases[i].Model.NumEdges(); m <= 10*core.MaxEnumEdges {
			return nil, fmt.Errorf("testkit: scale case %s has only %d edges, not beyond 10x enumeration", cases[i].Name, m)
		}
	}
	return cases, nil
}

// layeredFixture builds node 0 feeding depth layers of width nodes,
// each drawing fanin in-edges from the previous layer; the frontier
// stays within two layers, so the DP width is bounded by 2·width.
func layeredFixture(r *rng.RNG, depth, width, fanin int) (*graph.DiGraph, []float64) {
	g := graph.New(1 + depth*width)
	var p []float64
	prev := []graph.NodeID{0}
	next := graph.NodeID(1)
	for d := 0; d < depth; d++ {
		layer := make([]graph.NodeID, 0, width)
		for i := 0; i < width; i++ {
			v := next
			next++
			layer = append(layer, v)
			k := fanin
			if k > len(prev) {
				k = len(prev)
			}
			for _, idx := range r.Sample(len(prev), k) {
				g.MustAddEdge(prev[idx], v)
				p = append(p, r.Uniform(0.2, 0.8))
			}
		}
		prev = layer
	}
	return g, p
}

// DistCaseResult is the outcome of one distribution comparison.
type DistCaseResult struct {
	Case    DistCase
	Stat    float64
	DF      int
	PValue  float64
	OK      bool
	Skipped bool
	Err     error
}

// DistReport is the outcome of a distribution-conformance run.
type DistReport struct {
	Tol     DistTolerance
	Results []DistCaseResult
}

// OK reports whether every non-skipped case passed and at least one
// case actually ran.
func (r *DistReport) OK() bool {
	ran := 0
	for _, res := range r.Results {
		if res.Skipped {
			continue
		}
		if !res.OK {
			return false
		}
		ran++
	}
	return ran > 0
}

// Failures returns the failing (non-skipped) case results.
func (r *DistReport) Failures() []DistCaseResult {
	var out []DistCaseResult
	for _, res := range r.Results {
		if !res.Skipped && !res.OK {
			out = append(out, res)
		}
	}
	return out
}

// Skipped returns the skipped case results.
func (r *DistReport) Skipped() []DistCaseResult {
	var out []DistCaseResult
	for _, res := range r.Results {
		if res.Skipped {
			out = append(out, res)
		}
	}
	return out
}

// String renders the run as a fixed-width table.
func (r *DistReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dist-conformance (samples=%d ess=%.2f alpha=%.2g minExp=%.1f)\n",
		r.Tol.Samples, r.Tol.ESS, r.Tol.Alpha, r.Tol.MinExpected)
	fmt.Fprintf(&b, "%-34s %-16s %6s %9s %4s %10s  %s\n",
		"case", "oracle", "edges", "stat", "df", "p-value", "ok")
	for _, res := range r.Results {
		if res.Skipped {
			fmt.Fprintf(&b, "%-34s SKIP: %s\n", res.Case.Name, res.Case.SkipReason)
			continue
		}
		if res.Err != nil {
			fmt.Fprintf(&b, "%-34s error: %v\n", res.Case.Name, res.Err)
			continue
		}
		mark := "FAIL"
		if res.OK {
			mark = "ok"
		}
		fmt.Fprintf(&b, "%-34s %-16s %6d %9.2f %4d %10.3g  %s\n",
			res.Case.Name, res.Case.OracleLabel, res.Case.Model.NumEdges(),
			res.Stat, res.DF, res.PValue, mark)
	}
	return b.String()
}

// RunDistributionConformance runs est on every case with a per-case
// deterministic seed derived from seed and gates each sampled impact
// histogram against its case's oracle with the pooled chi-square test.
// Cases with a SkipReason are reported but neither run nor failed; an
// estimator or indexing error fails the case rather than the run.
func RunDistributionConformance(cases []DistCase, est DistEstimator, tol DistTolerance, seed uint64) (*DistReport, error) {
	if err := tol.validate(); err != nil {
		return nil, err
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("testkit: no distribution-conformance cases")
	}
	rep := &DistReport{Tol: tol}
	for i, c := range cases {
		if c.SkipReason != "" {
			rep.Results = append(rep.Results, DistCaseResult{Case: c, Skipped: true})
			continue
		}
		caseSeed := seed + uint64(i)*0x9e3779b97f4a7c15
		impacts, err := est(c.Model, c.Sources, tol.Samples, caseSeed)
		res := DistCaseResult{Case: c, Err: err}
		if err == nil {
			res.Stat, res.DF, res.PValue, res.Err = tol.ChiSquare(c.Oracle, impacts)
			if res.Err == nil {
				res.OK = res.PValue >= tol.Alpha
			}
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}
