// Package testkit is the statistical verification subsystem for the
// infoflow samplers and learners. The paper's central claim (§III, §IV)
// is that Metropolis-Hastings pseudo-state estimates converge to the
// exact recursive flow probability of Eq. 2; this package turns that
// claim into an automated gate so a silent bias introduced by a future
// change is caught, not shipped.
//
// It provides three layers, all reusable from any package's tests:
//
//   - A conformance harness (conformance.go): seeded families of small
//     random graphs (uniform, preferential-attachment, DAG) whose flow
//     probabilities are known exactly by brute-force pseudo-state
//     enumeration, plus acceptance bands derived from exact binomial
//     confidence intervals — an estimate fails only when it is
//     statistically significant evidence of bias, never because a fixed
//     epsilon was tripped by sampling noise.
//
//   - Metamorphic property checks (metamorphic.go): monotonicity of flow
//     probability under edge-probability increase, the law of total
//     probability linking the conditioned estimators of Eqs. 6–8 to the
//     marginal, the FKG upper-bound relation between Eq. 2's recursion
//     and the enumeration truth, and agreement of the cascade-size
//     distribution between the round-based cascade sampler and the
//     live-edge (pseudo-state) law.
//
//   - A golden-corpus helper (golden.go): pinned-seed regression files
//     under testdata/golden with a -update-golden regeneration flag, so
//     any behavioural drift in estimators or learners shows up as a
//     reviewable diff.
//
//   - A distribution-conformance harness (distconformance.go): pooled
//     chi-square gates that compare a sampled impact histogram against
//     an oracle distribution — exact enumeration on small graphs
//     (skip-and-report past core.MaxEnumEdges via the typed
//     core.EnumLimitError), and the analytic sizedist engine on graphs
//     10–100× beyond the enumeration limit (ScaleDistCases), where the
//     MH impact estimator previously had no exact coverage at all.
//
// testkit deliberately imports only core, graph, dist, rng and the
// analytic sizedist engine — not the sampler packages — so sampler
// packages' own internal tests can import it without a cycle and plug
// their estimators in via the Estimator / DistEstimator adapter types.
package testkit
