package testkit

import (
	"fmt"
	"math"
	"strings"

	"infoflow/internal/core"
	"infoflow/internal/dist"
	"infoflow/internal/graph"
)

// Estimator is a sampling flow-probability estimator under conformance
// test. It must estimate Pr[source ~> sink | conds] for the given model
// from the requested number of output samples, deterministically for a
// fixed seed. Both mh.FlowProb and mh.FlowProbChains adapt to this shape
// in one line.
type Estimator func(m *core.ICM, source, sink graph.NodeID, conds []core.FlowCondition, samples int, seed uint64) (float64, error)

// Tolerance derives acceptance bands from exact binomial confidence
// intervals rather than fixed epsilons: an estimate is rejected only when
// its implied hit count is statistically significant evidence of bias at
// level Alpha, given an ESS-discounted sample count.
type Tolerance struct {
	// Samples is the nominal number of output samples the estimator is
	// asked to draw.
	Samples int
	// ESS in (0, 1] discounts Samples for residual autocorrelation
	// between thinned MCMC output samples; 1 means independent draws.
	ESS float64
	// Alpha is the two-sided significance level per comparison.
	Alpha float64
}

// DefaultTolerance returns the standard band: ESS 0.5 is conservative
// for chains thinned at ~2m steps (the measured lag-1 autocorrelation of
// the mh samplers at that thinning is near zero), and Alpha 1e-5 keeps
// the false-positive rate of a full conformance run below about one in
// ten thousand while a +0.05 bias at samples ≥ 6000 is still rejected
// with overwhelming power.
func DefaultTolerance(samples int) Tolerance {
	return Tolerance{Samples: samples, ESS: 0.5, Alpha: 1e-5}
}

func (tol Tolerance) validate() error {
	if tol.Samples <= 0 || tol.ESS <= 0 || tol.ESS > 1 || tol.Alpha <= 0 || tol.Alpha >= 1 {
		return fmt.Errorf("testkit: invalid tolerance %+v", tol)
	}
	return nil
}

// EffSamples returns the ESS-discounted sample count the band is built
// on.
func (tol Tolerance) EffSamples() int {
	n := int(float64(tol.Samples)*tol.ESS + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// PValue returns the exact two-sided binomial tail probability of seeing
// an estimate at least as far from exact as observed, under the null
// hypothesis that the estimator is unbiased and its estimate is a mean
// of EffSamples independent Bernoulli(exact) draws.
func (tol Tolerance) PValue(exact, estimate float64) float64 {
	n := tol.EffSamples()
	k := int(math.Round(estimate * float64(n)))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return dist.NewBinomial(n, exact).TwoSidedPValue(k)
}

// Accept reports whether estimate is statistically consistent with the
// exact value under the band.
func (tol Tolerance) Accept(exact, estimate float64) bool {
	return tol.PValue(exact, estimate) >= tol.Alpha
}

// Band returns the interval of estimates Accept would pass around exact —
// the realised tolerance band, for reporting and band-width assertions.
func (tol Tolerance) Band(exact float64) (lo, hi float64) {
	n := tol.EffSamples()
	b := dist.NewBinomial(n, exact)
	kLo, kHi := -1, -1
	for k := 0; k <= n; k++ {
		if b.TwoSidedPValue(k) >= tol.Alpha {
			if kLo < 0 {
				kLo = k
			}
			kHi = k
		}
	}
	if kLo < 0 {
		// Degenerate band (can only happen for extreme alpha); collapse
		// to the exact point.
		return exact, exact
	}
	return float64(kLo) / float64(n), float64(kHi) / float64(n)
}

// CaseResult is the outcome of one conformance comparison.
type CaseResult struct {
	Case     Case
	Estimate float64
	PValue   float64
	OK       bool
	Err      error
}

// Report is the outcome of a conformance run.
type Report struct {
	Tol     Tolerance
	Results []CaseResult
}

// OK reports whether every case passed.
func (r *Report) OK() bool {
	for _, res := range r.Results {
		if !res.OK {
			return false
		}
	}
	return len(r.Results) > 0
}

// Failures returns the failing case results.
func (r *Report) Failures() []CaseResult {
	var out []CaseResult
	for _, res := range r.Results {
		if !res.OK {
			out = append(out, res)
		}
	}
	return out
}

// String renders the run as a fixed-width table: per case the ground
// truth, the estimate, the realised band, and the p-value.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance (samples=%d ess=%.2f alpha=%.2g)\n",
		r.Tol.Samples, r.Tol.ESS, r.Tol.Alpha)
	fmt.Fprintf(&b, "%-34s %8s %8s %19s %10s  %s\n",
		"case", "exact", "estimate", "band", "p-value", "ok")
	for _, res := range r.Results {
		if res.Err != nil {
			fmt.Fprintf(&b, "%-34s error: %v\n", res.Case.Name, res.Err)
			continue
		}
		lo, hi := r.Tol.Band(res.Case.Exact)
		mark := "FAIL"
		if res.OK {
			mark = "ok"
		}
		fmt.Fprintf(&b, "%-34s %8.4f %8.4f [%8.4f,%8.4f] %10.3g  %s\n",
			res.Case.Name, res.Case.Exact, res.Estimate, lo, hi, res.PValue, mark)
	}
	return b.String()
}

// RunConformance runs est on every case with a per-case deterministic
// seed derived from seed and checks each estimate against its case's
// enumeration ground truth under tol. An estimator error fails the case
// rather than the run.
func RunConformance(cases []Case, est Estimator, tol Tolerance, seed uint64) (*Report, error) {
	if err := tol.validate(); err != nil {
		return nil, err
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("testkit: no conformance cases")
	}
	rep := &Report{Tol: tol}
	for i, c := range cases {
		caseSeed := seed + uint64(i)*0x9e3779b97f4a7c15
		got, err := est(c.Model, c.Source, c.Sink, c.Conds, tol.Samples, caseSeed)
		res := CaseResult{Case: c, Estimate: got, Err: err}
		if err == nil {
			res.PValue = tol.PValue(c.Exact, got)
			res.OK = res.PValue >= tol.Alpha
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}
