package testkit

import (
	"strings"
	"testing"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
)

// binomialEstimator simulates a sampler whose per-sample hit probability
// is the enumeration truth shifted by bias: the cleanest way to hand the
// harness a sampler with a precisely known defect.
func binomialEstimator(bias float64) Estimator {
	return func(m *core.ICM, source, sink graph.NodeID, conds []core.FlowCondition, samples int, seed uint64) (float64, error) {
		var p float64
		var err error
		if len(conds) == 0 {
			p = m.EnumFlowProb([]graph.NodeID{source}, sink)
		} else {
			p, err = m.EnumConditionalFlowProb([]graph.NodeID{source}, sink, conds)
			if err != nil {
				return 0, err
			}
		}
		p += bias
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		r := rng.New(seed)
		hits := 0
		for i := 0; i < samples; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		return float64(hits) / float64(samples), nil
	}
}

func TestCasesAreWellFormed(t *testing.T) {
	cases := Cases(1)
	if len(cases) != 2*len(Families) {
		t.Fatalf("got %d cases, want %d", len(cases), 2*len(Families))
	}
	for _, c := range cases {
		if c.Model.NumEdges() > core.MaxEnumEdges {
			t.Errorf("%s: %d edges exceeds enumeration limit", c.Name, c.Model.NumEdges())
		}
		if c.Exact <= 0.05 || c.Exact >= 0.95 {
			t.Errorf("%s: ground truth %v outside (0.05, 0.95)", c.Name, c.Exact)
		}
		if c.Source == c.Sink {
			t.Errorf("%s: source == sink", c.Name)
		}
		if len(c.Conds) == 0 {
			// The FKG relationship: the recursion never undershoots.
			if c.Recursive < c.Exact-1e-9 {
				t.Errorf("%s: recursion %v undershoots enumeration %v", c.Name, c.Recursive, c.Exact)
			}
		} else if c.Recursive != -1 {
			t.Errorf("%s: conditioned case carries recursion value %v", c.Name, c.Recursive)
		}
	}
}

func TestCasesDeterministic(t *testing.T) {
	a, b := Cases(7), Cases(7)
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Exact != b[i].Exact ||
			a[i].Source != b[i].Source || a[i].Sink != b[i].Sink {
			t.Fatalf("case %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Cases(8)
	same := true
	for i := range a {
		if a[i].Exact != c[i].Exact {
			same = false
		}
	}
	if same {
		t.Error("seeds 7 and 8 generated identical ground truths")
	}
}

// TestConformanceAcceptsCalibratedSampler: a sampler drawing from the
// true distribution must pass the whole suite. Its estimate noise comes
// from the full sample count while the band is built on the
// ESS-discounted count, so this holds with wide margin.
func TestConformanceAcceptsCalibratedSampler(t *testing.T) {
	rep, err := RunConformance(Cases(3), binomialEstimator(0), DefaultTolerance(20000), 11)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("calibrated sampler rejected:\n%s", rep)
	}
}

// TestConformanceDetectsBiasedSampler is the harness's power self-test:
// a sampler with a +0.05 bias (and its negative twin) must be flagged on
// every case — the acceptance criterion that makes the suite a real gate
// against silently biased future optimisations.
func TestConformanceDetectsBiasedSampler(t *testing.T) {
	for _, bias := range []float64{+0.05, -0.05} {
		rep, err := RunConformance(Cases(3), binomialEstimator(bias), DefaultTolerance(20000), 11)
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() {
			t.Fatalf("bias %+.2f not detected:\n%s", bias, rep)
		}
		if got := len(rep.Failures()); got != len(rep.Results) {
			t.Errorf("bias %+.2f: only %d/%d cases failed:\n%s", bias, got, len(rep.Results), rep)
		}
	}
}

// TestConformanceMHFlowProb drives the real single-chain MH estimator
// through the harness: the paper's §III claim as an automated gate.
func TestConformanceMHFlowProb(t *testing.T) {
	est := func(m *core.ICM, source, sink graph.NodeID, conds []core.FlowCondition, samples int, seed uint64) (float64, error) {
		opts := mh.Options{BurnIn: 800, Thin: 2 * m.NumEdges(), Samples: samples}
		return mh.FlowProb(m, source, sink, conds, opts, rng.New(seed))
	}
	rep, err := RunConformance(Cases(5), est, DefaultTolerance(6000), 23)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("mh.FlowProb failed conformance:\n%s", rep)
	}
}

// TestConformanceUniformProposalAblation: the ablation chain (uniform
// flip proposal) has the same stationary distribution, so it must also
// pass — a cross-check that the harness gates on correctness, not on the
// specific proposal.
func TestConformanceUniformProposalAblation(t *testing.T) {
	est := func(m *core.ICM, source, sink graph.NodeID, conds []core.FlowCondition, samples int, seed uint64) (float64, error) {
		s, err := mh.NewSampler(m, conds, rng.New(seed))
		if err != nil {
			return 0, err
		}
		s.SetUniformProposal(true)
		opts := mh.Options{BurnIn: 800, Thin: 3 * m.NumEdges(), Samples: samples}
		hits := 0
		err = s.Run(opts, func(x core.PseudoState) {
			if m.HasFlow(source, sink, x) {
				hits++
			}
		})
		if err != nil {
			return 0, err
		}
		return float64(hits) / float64(opts.Samples), nil
	}
	rep, err := RunConformance(UnconditionedCases(5), est, DefaultTolerance(6000), 29)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("uniform-proposal ablation failed conformance:\n%s", rep)
	}
}

func TestToleranceBandAndPValueAgree(t *testing.T) {
	tol := DefaultTolerance(4000)
	for _, exact := range []float64{0.1, 0.33, 0.5, 0.77} {
		lo, hi := tol.Band(exact)
		if !(lo < exact && exact < hi) {
			t.Errorf("band [%v,%v] does not contain exact %v", lo, hi, exact)
		}
		// Just inside the band is accepted, well outside is rejected.
		if !tol.Accept(exact, exact) {
			t.Errorf("exact value rejected at %v", exact)
		}
		if tol.Accept(exact, hi+0.02) || tol.Accept(exact, lo-0.02) {
			t.Errorf("estimates outside band [%v,%v] accepted at %v", lo, hi, exact)
		}
	}
}

func TestRunConformanceValidation(t *testing.T) {
	cases := UnconditionedCases(1)
	if _, err := RunConformance(cases, binomialEstimator(0), Tolerance{}, 1); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := RunConformance(nil, binomialEstimator(0), DefaultTolerance(100), 1); err == nil {
		t.Error("empty case list accepted")
	}
	// An estimator error fails its case and is carried in the report.
	bad := func(*core.ICM, graph.NodeID, graph.NodeID, []core.FlowCondition, int, uint64) (float64, error) {
		return 0, errTest
	}
	rep, err := RunConformance(cases, bad, DefaultTolerance(100), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("erroring estimator passed")
	}
	if !strings.Contains(rep.String(), "error:") {
		t.Errorf("report does not surface the error:\n%s", rep)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "estimator exploded" }
