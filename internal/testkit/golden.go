package testkit

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden is registered once for every test binary importing
// testkit; run `go test <pkg> -update-golden` to regenerate that
// package's golden corpus after an intentional behaviour change.
var updateGolden = flag.Bool("update-golden", false,
	"rewrite golden files under testdata/golden instead of comparing")

// Golden compares got — canonicalised through indented JSON — against
// testdata/golden/<name>.json relative to the calling test's package
// directory. A mismatch fails the test with both serialisations; with
// -update-golden the file is (re)written instead, so intentional drift
// becomes a reviewable diff in the committed corpus.
func Golden(t *testing.T, name string, got any) {
	t.Helper()
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatalf("testkit: marshal golden %q: %v", name, err)
	}
	data = append(data, '\n')
	path := filepath.Join("testdata", "golden", name+".json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("testkit: create golden dir: %v", err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("testkit: write golden %s: %v", path, err)
		}
		t.Logf("testkit: wrote %s (%d bytes)", path, len(data))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("testkit: read golden %s (run with -update-golden to create it): %v", path, err)
	}
	if !bytes.Equal(want, data) {
		t.Errorf("testkit: %q drifted from the golden corpus.\n--- got ---\n%s--- want (%s) ---\n%s"+
			"If the change is intentional, regenerate with -update-golden and review the diff.",
			name, data, path, want)
	}
}

// Round quantises x to the given number of decimal digits. Golden corpus
// builders round derived floats so the corpus pins ~10 significant
// digits of behaviour while staying insensitive to sub-ulp libm
// differences across platforms.
func Round(x float64, digits int) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	scale := math.Pow(10, float64(digits))
	return math.Round(x*scale) / scale
}

// RoundSlice applies Round elementwise, returning a new slice.
func RoundSlice(xs []float64, digits int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = Round(x, digits)
	}
	return out
}
