package testkit

import (
	"strings"
	"testing"

	"infoflow/internal/core"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

func TestMonotonicityAcrossFamilies(t *testing.T) {
	for _, c := range UnconditionedCases(2) {
		if err := CheckMonotonicity(c.Model, c.Source, c.Sink, 0.1); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestMonotonicityRejectsBadDelta(t *testing.T) {
	c := UnconditionedCase(Uniform, 2)
	if err := CheckMonotonicity(c.Model, c.Source, c.Sink, 0); err == nil {
		t.Error("zero delta accepted")
	}
}

func TestConditioningConsistencyAcrossFamilies(t *testing.T) {
	for _, c := range Cases(4) {
		if len(c.Conds) == 0 {
			continue
		}
		if err := CheckConditioningConsistency(c.Model, c.Source, c.Sink, c.Conds[0]); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		// The negated condition must satisfy the identity too.
		neg := c.Conds[0]
		neg.Require = !neg.Require
		if err := CheckConditioningConsistency(c.Model, c.Source, c.Sink, neg); err != nil {
			t.Errorf("%s (negated): %v", c.Name, err)
		}
	}
}

func TestRecursionUpperBoundAcrossFamilies(t *testing.T) {
	for _, c := range UnconditionedCases(6) {
		if err := CheckRecursionUpperBound(c.Model, c.Source); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestCascadeSizePMFIsADistribution(t *testing.T) {
	for _, c := range UnconditionedCases(8) {
		pmf := CascadeSizePMF(c.Model, []graph.NodeID{c.Source})
		sum := 0.0
		for k, p := range pmf {
			if p < 0 || p > 1 {
				t.Errorf("%s: pmf[%d] = %v", c.Name, k, p)
			}
			sum += p
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			t.Errorf("%s: pmf sums to %v", c.Name, sum)
		}
		// The source is always active, so size 0 has zero mass.
		if pmf[0] != 0 {
			t.Errorf("%s: P(size=0) = %v", c.Name, pmf[0])
		}
	}
}

// TestCascadeSizesMatchEnumeration ties the round-based cascade sampler
// to the live-edge pseudo-state law on every family.
func TestCascadeSizesMatchEnumeration(t *testing.T) {
	r := rng.New(99)
	for _, c := range UnconditionedCases(8) {
		if err := CheckCascadeSizes(c.Model, []graph.NodeID{c.Source}, 20000, 1e-6, r.Fork()); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

// TestCascadeSizesDetectWrongModel is the distributional power
// self-test: sampling from a perturbed model against the original PMF
// must be flagged.
func TestCascadeSizesDetectWrongModel(t *testing.T) {
	c := UnconditionedCase(Uniform, 8)
	m := c.Model
	p := append([]float64(nil), m.P...)
	for i := range p {
		p[i] += 0.14 // within [0.15, 0.85] + 0.14 <= 0.99
	}
	perturbed := core.MustNewICM(m.G, p)
	// The law of the ORIGINAL model, tested against counts drawn from
	// the perturbed one.
	pmf := CascadeSizePMF(m, []graph.NodeID{c.Source})
	r := rng.New(100)
	const samples = 20000
	counts := make([]int, len(pmf))
	for i := 0; i < samples; i++ {
		counts[perturbed.SampleCascade(r, []graph.NodeID{c.Source}).NumActive()]++
	}
	if err := CheckSizeCounts(pmf, counts, samples, 1e-6); err == nil {
		t.Error("cascade-size check failed to flag a +0.14 probability perturbation")
	}
	// Counts drawn from the correct model pass the same rule.
	correct := make([]int, len(pmf))
	for i := 0; i < samples; i++ {
		correct[m.SampleCascade(r, []graph.NodeID{c.Source}).NumActive()]++
	}
	if err := CheckSizeCounts(pmf, correct, samples, 1e-6); err != nil {
		t.Errorf("correct model flagged: %v", err)
	}
}

// TestCheckCascadeSizesValidation covers the parameter guard rails.
func TestCheckCascadeSizesValidation(t *testing.T) {
	c := UnconditionedCase(Uniform, 8)
	r := rng.New(1)
	if err := CheckCascadeSizes(c.Model, []graph.NodeID{c.Source}, 0, 0.01, r); err == nil ||
		!strings.Contains(err.Error(), "invalid") {
		t.Errorf("bad samples accepted: %v", err)
	}
	if err := CheckCascadeSizes(c.Model, []graph.NodeID{c.Source}, 100, 0, r); err == nil {
		t.Error("bad alpha accepted")
	}
}
