package testkit

import (
	"testing"

	"infoflow/internal/core"
	"infoflow/internal/ctic"
	"infoflow/internal/dist"
	"infoflow/internal/graph"
	"infoflow/internal/mh"
	"infoflow/internal/rng"
	"infoflow/internal/unattrib"
)

// The golden regression corpus: pinned seeds through the estimators and
// learners, serialised under testdata/golden. Any behavioural drift in
// core/mh/unattrib/ctic — an RNG consumption change, a reordered loop, a
// tweaked proposal — shows up as a corpus diff. Regenerate intentionally
// with:
//
//	go test ./internal/testkit -run TestGolden -update-golden
//
// and review the diff like any other code change.

const goldenDigits = 9

type goldenEstimate struct {
	Name           string  `json:"name"`
	Exact          float64 `json:"exact"`
	Recursive      float64 `json:"recursive"`
	FlowProb       float64 `json:"flow_prob"`
	FlowProbChains float64 `json:"flow_prob_chains"`
}

func TestGoldenFlowEstimates(t *testing.T) {
	var out []goldenEstimate
	for _, c := range Cases(2026) {
		opts := mh.Options{BurnIn: 500, Thin: 2 * c.Model.NumEdges(), Samples: 3000}
		single, err := mh.FlowProb(c.Model, c.Source, c.Sink, c.Conds, opts, rng.New(41))
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		chains, err := mh.FlowProbChains(c.Model, c.Source, c.Sink, c.Conds, opts, 4, 43)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		out = append(out, goldenEstimate{
			Name:           c.Name,
			Exact:          Round(c.Exact, goldenDigits),
			Recursive:      Round(c.Recursive, goldenDigits),
			FlowProb:       Round(single, goldenDigits),
			FlowProbChains: Round(chains, goldenDigits),
		})
	}
	Golden(t, "flow_estimates", out)
}

type goldenBetaEdge struct {
	From  graph.NodeID `json:"from"`
	To    graph.NodeID `json:"to"`
	Alpha float64      `json:"alpha"`
	Beta  float64      `json:"beta"`
}

func TestGoldenBetaICMPosterior(t *testing.T) {
	r := rng.New(707)
	m := NewModel(Uniform, r)
	bm := core.NewBetaICM(m.G)
	// 60 attributed cascades from rotating single sources.
	d := &core.AttributedEvidence{}
	for i := 0; i < 60; i++ {
		src := graph.NodeID(i % m.NumNodes())
		d.Add(core.FromCascade(m.SampleCascade(r, []graph.NodeID{src})))
	}
	if err := bm.TrainAttributed(d); err != nil {
		t.Fatal(err)
	}
	out := make([]goldenBetaEdge, bm.NumEdges())
	for id, b := range bm.B {
		e := bm.G.Edge(graph.EdgeID(id))
		out[id] = goldenBetaEdge{From: e.From, To: e.To, Alpha: b.Alpha, Beta: b.Beta}
	}
	Golden(t, "betaicm_posterior", out)
}

type goldenCTIC struct {
	Parents        []graph.NodeID `json:"parents"`
	KTruth         []float64      `json:"k_truth"`
	RTruth         []float64      `json:"r_truth"`
	KMean          []float64      `json:"k_mean"`
	KStd           []float64      `json:"k_std"`
	RMean          []float64      `json:"r_mean"`
	RStd           []float64      `json:"r_std"`
	AcceptanceRate float64        `json:"acceptance_rate"`
}

func TestGoldenCTICLearner(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	kTruth := []float64{0.8, 0.3}
	rTruth := []float64{2, 1}
	model, err := ctic.New(g, kTruth, rTruth)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(909)
	var eps []ctic.Episode
	sourceSets := [][]graph.NodeID{{0}, {1}, {0, 1}}
	for i := 0; i < 240; i++ {
		eps = append(eps, model.Simulate(r, sourceSets[i%len(sourceSets)], 4))
	}
	opts := ctic.LearnOptions{
		BurnIn: 200, Thin: 2, Samples: 400,
		StepK: 0.1, StepR: 0.3,
		PriorK:      dist.Uniform(),
		PriorRShape: 1.5, PriorRScale: 2,
	}
	post, err := ctic.Learn(2, []graph.NodeID{0, 1}, eps, opts, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	Golden(t, "ctic_learner", goldenCTIC{
		Parents:        post.Parents,
		KTruth:         kTruth,
		RTruth:         rTruth,
		KMean:          RoundSlice(post.KMean, goldenDigits),
		KStd:           RoundSlice(post.KStd, goldenDigits),
		RMean:          RoundSlice(post.RMean, goldenDigits),
		RStd:           RoundSlice(post.RStd, goldenDigits),
		AcceptanceRate: Round(post.AcceptanceRate, goldenDigits),
	})
}

type goldenUnattrib struct {
	Sink           graph.NodeID `json:"sink"`
	Mean           []float64    `json:"mean"`
	StdDev         []float64    `json:"std_dev"`
	AcceptanceRate float64      `json:"acceptance_rate"`
}

func TestGoldenUnattribPosterior(t *testing.T) {
	s := unattrib.TableI()
	opts := unattrib.BayesOptions{BurnIn: 400, Thin: 3, Samples: 800, Step: 0.08}
	post, err := unattrib.JointBayes(s, opts, rng.New(313))
	if err != nil {
		t.Fatal(err)
	}
	Golden(t, "unattrib_posterior", goldenUnattrib{
		Sink:           s.Sink,
		Mean:           RoundSlice(post.Mean, goldenDigits),
		StdDev:         RoundSlice(post.StdDev, goldenDigits),
		AcceptanceRate: Round(post.AcceptanceRate, goldenDigits),
	})
}
