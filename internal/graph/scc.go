package graph

// StronglyConnectedComponents returns Tarjan's SCC decomposition: a
// component label per node (labels dense in [0, count), in reverse
// topological order of the condensation: an edge between components
// always goes from a higher label to a lower one) and the component
// count.
//
// SCCs matter for flow analysis: within a strongly connected component
// every pair of nodes can exchange information, so component structure
// bounds which end-to-end flows are possible at all, and the
// condensation is the natural unit for coarse leakage audits.
func (g *DiGraph) StronglyConnectedComponents() (labels []int, count int) {
	n := g.NumNodes()
	labels = make([]int, n)
	for v := range labels {
		labels[v] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for v := range index {
		index[v] = -1
	}
	next := 0
	var stack []NodeID

	// Iterative Tarjan: each frame tracks the node and the position in
	// its out-edge list.
	type frame struct {
		v    NodeID
		edge int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{v: NodeID(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, NodeID(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			out := g.out[f.v]
			if f.edge < len(out) {
				w := g.edges[out[f.edge]].To
				f.edge++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Post-order: pop the frame, fold lowlink into the parent,
			// and emit a component if v is a root.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					labels[w] = count
					if w == v {
						break
					}
				}
				count++
			}
		}
	}
	return labels, count
}

// CondensedDAG returns the condensation of the graph: one node per
// strongly connected component, with an edge between components
// whenever any original edge crosses them. It is always acyclic.
func (g *DiGraph) CondensedDAG() (dag *DiGraph, labels []int) {
	labels, count := g.StronglyConnectedComponents()
	dag = New(count)
	for _, e := range g.edges {
		a, b := labels[e.From], labels[e.To]
		if a != b && !dag.HasEdge(NodeID(a), NodeID(b)) {
			dag.MustAddEdge(NodeID(a), NodeID(b))
		}
	}
	return dag, labels
}
