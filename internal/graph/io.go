package graph

import (
	"encoding/json"
	"fmt"
	"io"

	"infoflow/internal/jsonx"
)

// jsonGraph is the serialised wire form: node count plus a flat edge
// list in EdgeID order, so per-edge payloads serialised alongside line up
// after decoding.
type jsonGraph struct {
	Nodes int        `json:"nodes"`
	Edges [][2]int32 `json:"edges"`
}

// MarshalJSON implements json.Marshaler.
func (g *DiGraph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Nodes: g.NumNodes(), Edges: make([][2]int32, g.NumEdges())}
	for i, e := range g.edges {
		jg.Edges[i] = [2]int32{e.From, e.To}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *DiGraph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return jsonx.Wrap("graph: decode", err)
	}
	if jg.Nodes < 0 {
		return fmt.Errorf("graph: negative node count %d", jg.Nodes)
	}
	fresh := New(jg.Nodes)
	for i, e := range jg.Edges {
		if _, err := fresh.AddEdge(e[0], e[1]); err != nil {
			return fmt.Errorf("graph: edge %d: %w", i, err)
		}
	}
	*g = *fresh
	return nil
}

// Write encodes the graph as JSON to w.
func (g *DiGraph) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(g)
}

// Read decodes a JSON-encoded graph from r.
func Read(r io.Reader) (*DiGraph, error) {
	g := New(0)
	if err := json.NewDecoder(r).Decode(g); err != nil {
		return nil, jsonx.Wrap("graph: decode", err)
	}
	return g, nil
}
