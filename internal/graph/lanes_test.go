package graph

import (
	"testing"

	"infoflow/internal/bitset"
	"infoflow/internal/rng"
)

// packedMask draws a random active-edge mask in both representations,
// reusing scratch_test's randomMask for the scalar one.
func packedMask(r *rng.RNG, m int, p float64) ([]bool, bitset.Set) {
	mask := randomMask(r, m, p)
	return mask, bitset.FromBools(nil, mask)
}

// TestReachableBitsMatchesScalar proves the packed-mask BFS agrees
// bit-for-bit with ReachableInto on random graphs and masks.
func TestReachableBitsMatchesScalar(t *testing.T) {
	r := rng.New(31)
	sc := NewScratch(0)
	var packedDst bitset.Set
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(59)
		g := randomTestGraph(r, n, r.Intn(3*n))
		mask, packed := packedMask(r, g.NumEdges(), r.Float64())
		nSrc := 1 + r.Intn(3)
		sources := make([]NodeID, nSrc)
		for i := range sources {
			sources[i] = NodeID(r.Intn(n))
		}
		want := g.ReachableInto(sources, mask, sc, nil)
		packedDst = g.ReachableBitsInto(sources, packed, sc, packedDst)
		for v := 0; v < n; v++ {
			if packedDst.Test(v) != want[v] {
				t.Fatalf("trial %d: node %d packed=%v scalar=%v (sources %v)",
					trial, v, packedDst.Test(v), want[v], sources)
			}
		}
	}
}

// TestHasPathBitsMatchesScalar proves the packed-mask bidirectional
// search agrees with HasPathScratch (and hence HasPath) everywhere.
func TestHasPathBitsMatchesScalar(t *testing.T) {
	r := rng.New(32)
	sc := NewScratch(0)
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(49)
		g := randomTestGraph(r, n, r.Intn(3*n))
		mask, packed := packedMask(r, g.NumEdges(), r.Float64())
		for q := 0; q < 20; q++ {
			u := NodeID(r.Intn(n))
			v := NodeID(r.Intn(n))
			want := g.HasPathScratch(u, v, mask, sc)
			if got := g.HasPathBits(u, v, packed, sc); got != want {
				t.Fatalf("trial %d: %d~>%d packed=%v scalar=%v", trial, u, v, got, want)
			}
		}
	}
}

// TestReachLanesMatchesScalar proves the 64-lane sweep agrees lane by
// lane with one scalar ReachableInto per source, across random graphs,
// masks, and every lane count 1..64.
func TestReachLanesMatchesScalar(t *testing.T) {
	r := rng.New(33)
	sc := NewScratch(0)
	var reach []uint64
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(59)
		g := randomTestGraph(r, n, r.Intn(3*n))
		mask, packed := packedMask(r, g.NumEdges(), r.Float64())
		lanes := 1 + trial%64 // sweep the lane counts across trials
		seeds := make([]NodeID, lanes)
		seedBits := make([]uint64, lanes)
		for l := range seeds {
			seeds[l] = NodeID(r.Intn(n))
			seedBits[l] = 1 << uint(l)
		}
		reach = g.ReachLanesInto(seeds, seedBits, packed, sc, reach)
		if len(reach) != n {
			t.Fatalf("trial %d: reach length %d, want %d", trial, len(reach), n)
		}
		for l := 0; l < lanes; l++ {
			want := g.ReachableInto([]NodeID{seeds[l]}, mask, sc, nil)
			for v := 0; v < n; v++ {
				got := reach[v]>>uint(l)&1 != 0
				if got != want[v] {
					t.Fatalf("trial %d lane %d (seed %d): node %d lane=%v scalar=%v",
						trial, l, seeds[l], v, got, want[v])
				}
			}
		}
		// No lane above the seeded ones may ever light up.
		if lanes < 64 {
			for v, w := range reach {
				if w>>uint(lanes) != 0 {
					t.Fatalf("trial %d: node %d carries unseeded lane bits %#x", trial, v, w)
				}
			}
		}
	}
}

// TestReachLanesSharedAndMergedLanes exercises the non-bijective
// seedings the contract allows: several nodes on one lane and several
// lanes on one node.
func TestReachLanesSharedAndMergedLanes(t *testing.T) {
	r := rng.New(34)
	sc := NewScratch(0)
	n := 40
	g := Random(r, n, 120)
	mask, packed := packedMask(r, g.NumEdges(), 0.5)
	// Lane 0 seeded at nodes 1 and 2; node 3 seeded with lanes 1 and 2.
	reach := g.ReachLanesInto(
		[]NodeID{1, 2, 3},
		[]uint64{1, 1, 0b110},
		packed, sc, nil)
	multi := g.ReachableInto([]NodeID{1, 2}, mask, sc, nil)
	single := g.ReachableInto([]NodeID{3}, mask, sc, nil)
	for v := 0; v < n; v++ {
		if got := reach[v]&1 != 0; got != multi[v] {
			t.Fatalf("node %d shared lane 0 = %v, scalar multi-source = %v", v, got, multi[v])
		}
		for _, l := range []uint{1, 2} {
			if got := reach[v]>>l&1 != 0; got != single[v] {
				t.Fatalf("node %d lane %d = %v, scalar = %v", v, l, got, single[v])
			}
		}
	}
}

// TestLaneKernelsZeroAlloc pins the steady-state zero-allocation claim
// for all three packed kernels once scratch and buffers are warm.
func TestLaneKernelsZeroAlloc(t *testing.T) {
	r := rng.New(35)
	n := 400
	g := Random(r, n, 1200)
	_, packed := packedMask(r, g.NumEdges(), 0.4)
	sc := NewScratch(n)
	dst := bitset.New(n)
	reach := make([]uint64, n)
	seeds := make([]NodeID, 64)
	seedBits := make([]uint64, 64)
	for l := range seeds {
		seeds[l] = NodeID(r.Intn(n))
		seedBits[l] = 1 << uint(l)
	}
	sources := []NodeID{0}
	// Warm every retained buffer.
	dst = g.ReachableBitsInto(sources, packed, sc, dst)
	reach = g.ReachLanesInto(seeds, seedBits, packed, sc, reach)
	g.HasPathBits(0, NodeID(n-1), packed, sc)
	if allocs := testing.AllocsPerRun(50, func() {
		dst = g.ReachableBitsInto(sources, packed, sc, dst)
		g.HasPathBits(0, NodeID(n-1), packed, sc)
		reach = g.ReachLanesInto(seeds, seedBits, packed, sc, reach)
	}); allocs != 0 {
		t.Errorf("packed kernels allocate %v per run, want 0", allocs)
	}
}

// BenchmarkReachLanes64 measures one 64-lane sweep on the §IV-C-scale
// graph — the per-sample cost of answering 64 batched flow queries.
func BenchmarkReachLanes64(b *testing.B) {
	r := rng.New(2)
	g := Random(r, 6000, 14000)
	_, packed := packedMask(r, g.NumEdges(), 0.5)
	sc := NewScratch(g.NumNodes())
	seeds := make([]NodeID, 64)
	seedBits := make([]uint64, 64)
	for l := range seeds {
		seeds[l] = NodeID(r.Intn(g.NumNodes()))
		seedBits[l] = 1 << uint(l)
	}
	reach := make([]uint64, g.NumNodes())
	reach = g.ReachLanesInto(seeds, seedBits, packed, sc, reach)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reach = g.ReachLanesInto(seeds, seedBits, packed, sc, reach)
	}
}

// BenchmarkReachableBits measures the packed single-source sweep against
// which the []bool variant in traverse benchmarks compares.
func BenchmarkReachableBits(b *testing.B) {
	r := rng.New(2)
	g := Random(r, 6000, 14000)
	_, packed := packedMask(r, g.NumEdges(), 0.5)
	sc := NewScratch(g.NumNodes())
	dst := bitset.New(g.NumNodes())
	sources := []NodeID{0}
	dst = g.ReachableBitsInto(sources, packed, sc, dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = g.ReachableBitsInto(sources, packed, sc, dst)
	}
}
