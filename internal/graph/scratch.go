package graph

import "infoflow/internal/bitset"

// Scratch is reusable breadth-first-search state for the mask-based
// traversal variants (ReachableInto, HasPathScratch). It exists so the
// Metropolis-Hastings hot path — which runs one traversal per condition
// check and per thinned output sample — performs zero allocations in
// steady state.
//
// The visited set is an epoch-stamped array: stamp[v] records the epoch
// of the last traversal that visited v, so "reset" is a single epoch
// increment instead of an O(n) clear. Queues are retained between
// traversals and only grow (to at most n entries each), so after the
// first few traversals every call runs entirely in pre-owned memory.
//
// A Scratch is not safe for concurrent use; give each goroutine its own
// (Sampler owns one per chain for exactly this reason). A single Scratch
// may be shared freely across graphs and traversal kinds — it grows to
// the largest node count it has seen.
type Scratch struct {
	stamp []uint32 // stamp[v] == mark ⇒ v visited in the current traversal
	epoch uint32   // even; forward mark = epoch, backward mark = epoch+1
	queue []NodeID // forward BFS queue, capacity retained across calls
	back  []NodeID // backward BFS queue for bidirectional search

	// inq marks nodes currently on the Tarjan stack of the lane sweep
	// (ReachLanesInto). Packed, because its whole-set reset is a
	// word-wise clear.
	inq bitset.Set

	// Lane-sweep (ReachLanesInto) state: the sweep condenses the active
	// subgraph reachable from the seeds into strongly connected
	// components (all nodes of an SCC share one reach word) and
	// propagates lane masks over the condensation in topological order,
	// touching each active edge exactly twice (once in Tarjan's DFS,
	// once in the propagation pass). All buffers are retained across
	// calls; dfsIdx/dfsLow/comp are refilled with -1 per sweep (a memset
	// — cheaper than the re-queueing a monotone worklist pays when lanes
	// merge inside a large SCC).
	dfsIdx    []int32  // Tarjan discovery index, -1 = unvisited
	dfsLow    []int32  // Tarjan lowlink
	comp      []int32  // SCC id per node, -1 = unreachable from seeds
	dfsEdge   []int32  // per-DFS-stack-frame out-edge cursor
	sccNodes  []NodeID // nodes grouped by SCC, in emission order
	sccStart  []int32  // sccNodes offsets per SCC (+ end sentinel)
	compReach []uint64 // lane mask per SCC (64-lane sweep)
	compWide  []uint64 // W-word lane masks per SCC (wide sweep)
}

// NewScratch returns scratch state sized for graphs of up to n nodes.
// It grows transparently if later used with a larger graph.
func NewScratch(n int) *Scratch {
	return &Scratch{
		stamp: make([]uint32, n),
		queue: make([]NodeID, 0, n),
		back:  make([]NodeID, 0, n),
	}
}

// tempScratch backs a single traversal called with a nil Scratch: the
// queues start empty and grow only to the visited frontier, which for the
// early-exiting searches is usually far smaller than n.
func tempScratch(n int) *Scratch {
	return &Scratch{stamp: make([]uint32, n)}
}

// begin opens a new traversal over n nodes and returns the forward and
// backward visit marks. Stamps are lazily re-zeroed only when the graph
// outgrows the stamp array or the 32-bit epoch wraps (once per ~2^31
// traversals).
func (sc *Scratch) begin(n int) (fwd, bwd uint32) {
	if len(sc.stamp) < n {
		sc.stamp = make([]uint32, n)
		sc.epoch = 0
	}
	if sc.epoch > ^uint32(0)-2 {
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 0
	}
	sc.epoch += 2
	return sc.epoch, sc.epoch + 1
}

// beginLanes opens a lane-propagation sweep over n nodes: it sizes the
// on-stack marker and the Tarjan arrays, clears the marker word-wise,
// and refills the index/component arrays with -1. Kept separate from
// begin because lane sweeps never touch the epoch stamps.
func (sc *Scratch) beginLanes(n int) {
	sc.beginCondense(n)
	if len(sc.comp) < n {
		sc.comp = make([]int32, n)
	}
	for i := 0; i < n; i++ {
		sc.comp[i] = -1
	}
}

// beginCondense opens a condensation pass over n nodes: it sizes the
// on-stack marker and the Tarjan index arrays, clears the marker
// word-wise and refills the discovery indices with -1. The component
// array is the caller's (the wide-lane engine caches its own across
// sweeps), so unlike beginLanes it is not touched here.
func (sc *Scratch) beginCondense(n int) {
	if sc.inq.Cap() < n {
		sc.inq = bitset.New(n)
	} else {
		sc.inq.Reset()
	}
	if len(sc.dfsIdx) < n {
		sc.dfsIdx = make([]int32, n)
		sc.dfsLow = make([]int32, n)
	}
	for i := 0; i < n; i++ {
		sc.dfsIdx[i] = -1
	}
}

// ReachableInto is the mask-based, allocation-free variant of Reachable:
// active is a dense edge mask indexed by EdgeID (a pseudo-state slots in
// directly), sc holds the reusable traversal state, and dst receives the
// result. If sc is nil a temporary Scratch is allocated; if dst is nil or
// of the wrong length a fresh slice is allocated. dst must not alias
// active. The returned slice is dst (or its replacement), with dst[v]
// true iff v is a source or reachable from one across active edges —
// exactly Reachable's contract.
//
//flowlint:hotpath
func (g *DiGraph) ReachableInto(sources []NodeID, active []bool, sc *Scratch, dst []bool) []bool {
	n := g.NumNodes()
	if sc == nil {
		sc = tempScratch(n)
	}
	if len(dst) != n {
		//flowlint:ignore hotpath -- documented cold fallback when the caller passes no dst; steady-state callers reuse theirs
		dst = make([]bool, n)
	} else {
		for i := range dst {
			dst[i] = false
		}
	}
	mark, _ := sc.begin(n)
	stamp := sc.stamp
	queue := sc.queue[:0]
	for _, s := range sources {
		if stamp[s] != mark {
			stamp[s] = mark
			dst[s] = true
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, id := range g.out[v] {
			if !active[id] {
				continue
			}
			w := g.edges[id].To
			if stamp[w] != mark {
				stamp[w] = mark
				dst[w] = true
				queue = append(queue, w)
			}
		}
	}
	sc.queue = queue[:0]
	return dst
}

// HasPathScratch is the mask-based, allocation-free variant of HasPath:
// it reports whether sink is reachable from source across edges whose
// mask entry is true. If sc is nil a temporary Scratch is allocated.
//
// Unlike HasPath it searches bidirectionally — expanding whichever of the
// forward (out-edges from source) and backward (in-edges from sink)
// frontiers is currently smaller, and declaring a path the moment the two
// meet. On the sparse random graphs the samplers walk, the frontiers meet
// after visiting O(√m) edges rather than O(m), which is where most of the
// per-sample speedup over the closure API comes from. The answer is
// identical to HasPath's for every input.
//
//flowlint:hotpath
func (g *DiGraph) HasPathScratch(source, sink NodeID, active []bool, sc *Scratch) bool {
	if source == sink {
		return true
	}
	n := g.NumNodes()
	if sc == nil {
		sc = tempScratch(n)
	}
	fwd, bwd := sc.begin(n)
	stamp := sc.stamp
	stamp[source] = fwd
	stamp[sink] = bwd
	fq := append(sc.queue[:0], source)
	bq := append(sc.back[:0], sink)
	fhead, bhead := 0, 0
	met := false
	for !met {
		fpend, bpend := len(fq)-fhead, len(bq)-bhead
		if fpend == 0 || bpend == 0 {
			// One search exhausted its reachable set without touching the
			// other's marks: no path.
			break
		}
		if fpend <= bpend {
			v := fq[fhead]
			fhead++
			for _, id := range g.out[v] {
				if !active[id] {
					continue
				}
				w := g.edges[id].To
				if stamp[w] == bwd {
					met = true
					break
				}
				if stamp[w] != fwd {
					stamp[w] = fwd
					fq = append(fq, w)
				}
			}
		} else {
			v := bq[bhead]
			bhead++
			for _, id := range g.in[v] {
				if !active[id] {
					continue
				}
				w := g.edges[id].From
				if stamp[w] == fwd {
					met = true
					break
				}
				if stamp[w] != bwd {
					stamp[w] = bwd
					bq = append(bq, w)
				}
			}
		}
	}
	sc.queue = fq[:0]
	sc.back = bq[:0]
	return met
}
