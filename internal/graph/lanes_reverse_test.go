package graph

import (
	"testing"

	"infoflow/internal/bitset"
	"infoflow/internal/rng"
)

// transposed rebuilds g with every edge u->v re-added as v->u, in
// EdgeID order. Insertion order assigns dense EdgeIDs, so edge id in
// the transpose corresponds to edge id in g and the same packed active
// mask describes the same pseudo-state in both orientations. A simple
// digraph transposes to a simple digraph, so no AddEdge can fail.
func transposed(t *testing.T, g *DiGraph) *DiGraph {
	t.Helper()
	gt := New(g.NumNodes())
	for _, e := range g.Edges() {
		if _, err := gt.AddEdge(e.To, e.From); err != nil {
			t.Fatalf("transpose AddEdge(%d, %d): %v", e.To, e.From, err)
		}
	}
	return gt
}

// TestReachLanesWideReverseMatchesTransposedForward is the differential
// gate for the reverse sweep: on random graphs and masks, the reverse
// wide sweep over g must be bit-for-bit identical to the forward wide
// sweep over the explicitly transposed graph, across widths 1–16 words
// and ragged lane counts that leave the top word partly empty. This is
// the exact contract the RR-sketch builder leans on — lane L of the
// reverse result IS root_L's reverse-reachability set.
func TestReachLanesWideReverseMatchesTransposedForward(t *testing.T) {
	r := rng.New(53)
	sc, scRef := NewScratch(0), NewScratch(0)
	reach, want := &bitset.LaneMatrix{}, &bitset.LaneMatrix{}
	laneCounts := []int{1, 63, 64, 65, 100, 128, 200, 256, 300, 511, 512, 700, 1000, 1024}
	for trial := 0; trial < 42; trial++ {
		n := 2 + r.Intn(59)
		g := randomTestGraph(r, n, r.Intn(3*n))
		gt := transposed(t, g)
		_, packed := packedMask(r, g.NumEdges(), r.Float64())
		lanes := laneCounts[trial%len(laneCounts)]
		roots, rootBits := wideSeeding(r, n, lanes)

		g.ReachLanesWideReverseInto(roots, rootBits, packed, sc, reach)
		gt.ReachLanesWideInto(roots, rootBits, packed, scRef, want)

		for v := 0; v < n; v++ {
			got, ref := reach.Row(v), want.Row(v)
			for j := range ref {
				if got[j] != ref[j] {
					t.Fatalf("trial %d (n=%d m=%d lanes=%d): node %d word %d: reverse %#x != transposed forward %#x",
						trial, n, g.NumEdges(), lanes, v, j, got[j], ref[j])
				}
			}
		}
	}
}

// TestReachLanesWideReverseMatchesScalar cross-checks each lane of the
// reverse sweep against a scalar ReachableInto on the transposed graph:
// node u carries lane L iff u reaches roots[L] across active edges in
// g, i.e. iff roots[L] reaches u in the transpose. Independent of the
// wide differential above, this pins the semantics to first principles.
func TestReachLanesWideReverseMatchesScalar(t *testing.T) {
	r := rng.New(54)
	sc, scRef := NewScratch(0), NewScratch(0)
	reach := &bitset.LaneMatrix{}
	var fwd []bool
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(40)
		g := randomTestGraph(r, n, r.Intn(3*n))
		gt := transposed(t, g)
		mask, packed := packedMask(r, g.NumEdges(), r.Float64())
		lanes := 1 + r.Intn(70)
		roots, rootBits := wideSeeding(r, n, lanes)

		g.ReachLanesWideReverseInto(roots, rootBits, packed, sc, reach)
		for l := 0; l < lanes; l++ {
			fwd = gt.ReachableInto([]NodeID{roots[l]}, mask, scRef, fwd)
			for v := 0; v < n; v++ {
				if got := reach.TestBit(v, l); got != fwd[v] {
					t.Fatalf("trial %d lane %d (root %d): node %d: reverse says %v, scalar transpose says %v",
						trial, l, roots[l], v, got, fwd[v])
				}
			}
		}
	}
}

// TestReachLanesWideReverseSharedLanes checks the merged-lane contract:
// two roots seeded with the same lane produce the union of their RR
// sets, exactly as in the forward sweep.
func TestReachLanesWideReverseSharedLanes(t *testing.T) {
	r := rng.New(55)
	sc := NewScratch(0)
	shared, a, b := &bitset.LaneMatrix{}, &bitset.LaneMatrix{}, &bitset.LaneMatrix{}
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(40)
		g := randomTestGraph(r, n, r.Intn(3*n))
		_, packed := packedMask(r, g.NumEdges(), r.Float64())
		u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))

		both := bitset.NewLaneMatrix(2, 1)
		both.SetBit(0, 0)
		both.SetBit(1, 0)
		g.ReachLanesWideReverseInto([]NodeID{u, v}, both, packed, sc, shared)

		one := bitset.NewLaneMatrix(1, 1)
		one.SetBit(0, 0)
		g.ReachLanesWideReverseInto([]NodeID{u}, one, packed, sc, a)
		g.ReachLanesWideReverseInto([]NodeID{v}, one, packed, sc, b)

		for x := 0; x < n; x++ {
			wantBit := a.TestBit(x, 0) || b.TestBit(x, 0)
			if got := shared.TestBit(x, 0); got != wantBit {
				t.Fatalf("trial %d: node %d: shared lane %v, union of singles %v", trial, x, got, wantBit)
			}
		}
	}
}

// TestReachLanesWideReverseZeroAlloc pins the steady-state allocation
// contract: once the scratch and the reach matrix have their shape,
// repeated reverse sweeps (mask churn included) allocate nothing.
func TestReachLanesWideReverseZeroAlloc(t *testing.T) {
	r := rng.New(56)
	n := 400
	g := Random(r, n, 1200)
	m := g.NumEdges()
	_, packed := packedMask(r, m, 0.4)
	roots, rootBits := wideSeeding(r, n, 512)
	sc := NewScratch(n)
	reach := &bitset.LaneMatrix{}
	for warm := 0; warm < 5; warm++ {
		packed.Flip(r.Intn(m))
		g.ReachLanesWideReverseInto(roots, rootBits, packed, sc, reach)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		packed.Flip(r.Intn(m))
		g.ReachLanesWideReverseInto(roots, rootBits, packed, sc, reach)
	}); allocs != 0 {
		t.Errorf("steady-state reverse sweep allocates %v per run, want 0", allocs)
	}
}

// BenchmarkReachLanesWideReverse measures one 8-word (512-root)
// reverse sweep on the §IV-C-scale graph — the per-sample cost of
// materialising 512 RR sets for the sketch pool. Directly comparable
// to BenchmarkReachLanesWide: same graph, same width, opposite
// orientation.
func BenchmarkReachLanesWideReverse(b *testing.B) {
	r := rng.New(2)
	g := Random(r, 6000, 14000)
	_, packed := packedMask(r, g.NumEdges(), 0.5)
	sc := NewScratch(g.NumNodes())
	roots, rootBits := wideSeeding(r, g.NumNodes(), 512)
	reach := &bitset.LaneMatrix{}
	g.ReachLanesWideReverseInto(roots, rootBits, packed, sc, reach)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ReachLanesWideReverseInto(roots, rootBits, packed, sc, reach)
	}
}
