package graph

import "infoflow/internal/bitset"

// This file is the bit-parallel tier of the traversal engine. The
// scalar tier (scratch.go) answers one reachability question per O(n+m)
// sweep over a []bool edge mask; here the active-edge mask is a packed
// bitset.Set (the sampler's pseudo-state shadow slots in directly), the
// visited set is the packed destination itself, and ReachLanesInto
// propagates up to 64 independent source lanes through a single sweep —
// each node carries a uint64 of "reached by lane L" bits, so one thinned
// Metropolis-Hastings sample can answer 64 flow queries at once.

// ReachableBitsInto is ReachableInto with both the active-edge mask and
// the destination packed: dst[v/64] bit v%64 is set iff v is a source or
// reachable from one across edges whose bit in active is set. dst
// doubles as the visited set, so the per-call reset is a word-wise clear
// (n/64 stores) instead of the []bool variant's n. If sc is nil a
// temporary Scratch is allocated; if dst cannot hold NumNodes bits a
// fresh set is allocated. The returned set is dst (or its replacement).
//
//flowlint:hotpath
func (g *DiGraph) ReachableBitsInto(sources []NodeID, active bitset.Set, sc *Scratch, dst bitset.Set) bitset.Set {
	n := g.NumNodes()
	if sc == nil {
		sc = tempScratch(n)
	}
	if dst.Cap() < n {
		//flowlint:ignore hotpath -- documented cold fallback when the caller passes no dst; steady-state callers reuse theirs
		dst = bitset.New(n)
	} else {
		dst.Reset()
	}
	queue := sc.queue[:0]
	for _, s := range sources {
		if !dst.Test(int(s)) {
			dst.Set(int(s))
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, id := range g.out[v] {
			if !active.Test(int(id)) {
				continue
			}
			w := g.edges[id].To
			if !dst.Test(int(w)) {
				dst.Set(int(w))
				queue = append(queue, w)
			}
		}
	}
	sc.queue = queue[:0]
	return dst
}

// HasPathBits is HasPathScratch with a packed active-edge mask: it
// reports whether sink is reachable from source across edges whose bit
// in active is set, searching bidirectionally with early exit. The
// visited sets stay epoch-stamped (not packed) because the bidirectional
// search touches only O(sqrt m) nodes in the common case — an O(1)
// epoch bump beats even a word-wise clear there.
//
//flowlint:hotpath
func (g *DiGraph) HasPathBits(source, sink NodeID, active bitset.Set, sc *Scratch) bool {
	if source == sink {
		return true
	}
	n := g.NumNodes()
	if sc == nil {
		sc = tempScratch(n)
	}
	fwd, bwd := sc.begin(n)
	stamp := sc.stamp
	stamp[source] = fwd
	stamp[sink] = bwd
	fq := append(sc.queue[:0], source)
	bq := append(sc.back[:0], sink)
	fhead, bhead := 0, 0
	met := false
	for !met {
		fpend, bpend := len(fq)-fhead, len(bq)-bhead
		if fpend == 0 || bpend == 0 {
			break
		}
		if fpend <= bpend {
			v := fq[fhead]
			fhead++
			for _, id := range g.out[v] {
				if !active.Test(int(id)) {
					continue
				}
				w := g.edges[id].To
				if stamp[w] == bwd {
					met = true
					break
				}
				if stamp[w] != fwd {
					stamp[w] = fwd
					fq = append(fq, w)
				}
			}
		} else {
			v := bq[bhead]
			bhead++
			for _, id := range g.in[v] {
				if !active.Test(int(id)) {
					continue
				}
				w := g.edges[id].From
				if stamp[w] == fwd {
					met = true
					break
				}
				if stamp[w] != bwd {
					stamp[w] = bwd
					bq = append(bq, w)
				}
			}
		}
	}
	sc.queue = fq[:0]
	sc.back = bq[:0]
	return met
}

// ReachLanesInto runs the 64-lane bit-parallel reachability sweep: seed
// node seeds[k] is OR-seeded with the lane bits seedBits[k], and on
// return reach[v] has lane bit L set iff v is reachable (across edges
// whose bit in active is set) from some node seeded with L — with every
// seed counting as reaching itself, matching Reachable's contract. One
// sweep therefore answers up to 64 single-source reachability queries:
// lane assignment is the caller's, and seeding several nodes with the
// same lane or one node with several lanes are both legal.
//
// The sweep condenses the active subgraph reachable from the seeds into
// strongly connected components with one iterative Tarjan pass (every
// node of an SCC has the same reach word by definition), then pushes
// lane masks over the condensation in topological order — ancestors
// before descendants, so each SCC's mask is final when it propagates
// and each active edge is touched exactly twice in total. A naive
// monotone worklist instead re-processes a node every time lanes
// merging inside a large component reach it on different frontiers;
// near the percolation threshold the samplers operate at, that costs
// ~8x more pops on the §IV-C reference graph. If sc is nil a temporary
// Scratch is allocated; if reach is not exactly NumNodes long a fresh
// slice is allocated. The returned slice is reach (or its replacement).
//
//flowlint:hotpath
func (g *DiGraph) ReachLanesInto(seeds []NodeID, seedBits []uint64, active bitset.Set, sc *Scratch, reach []uint64) []uint64 {
	n := g.NumNodes()
	if sc == nil {
		sc = tempScratch(n)
	}
	if len(reach) != n {
		//flowlint:ignore hotpath -- documented cold fallback when the caller passes no reach buffer; steady-state callers reuse theirs
		reach = make([]uint64, n)
	} else {
		for i := range reach {
			reach[i] = 0
		}
	}
	sc.beginLanes(n)
	idx, low, comp := sc.dfsIdx, sc.dfsLow, sc.comp
	onStack := sc.inq
	tstack := sc.back[:0]  // Tarjan's SCC stack
	dfsN := sc.queue[:0]   // DFS stack: frame f visits node dfsN[f]
	dfsE := sc.dfsEdge[:0] // ... with out-edge cursor dfsE[f]
	nodes := sc.sccNodes[:0]
	starts := sc.sccStart[:0]
	var next int32
	for _, root := range seeds {
		if idx[root] != -1 {
			continue
		}
		idx[root], low[root] = next, next
		next++
		onStack.Set(int(root))
		tstack = append(tstack, root)
		dfsN = append(dfsN, root)
		dfsE = append(dfsE, 0)
		for len(dfsN) > 0 {
			f := len(dfsN) - 1
			v := dfsN[f]
			if ei := dfsE[f]; int(ei) < len(g.out[v]) {
				dfsE[f]++
				id := g.out[v][ei]
				if !active.Test(int(id)) {
					continue
				}
				w := g.edges[id].To
				if idx[w] == -1 {
					idx[w], low[w] = next, next
					next++
					onStack.Set(int(w))
					tstack = append(tstack, w)
					dfsN = append(dfsN, w)
					dfsE = append(dfsE, 0)
				} else if onStack.Test(int(w)) && low[v] > idx[w] {
					low[v] = idx[w]
				}
				continue
			}
			dfsN = dfsN[:f]
			dfsE = dfsE[:f]
			if f > 0 {
				if p := dfsN[f-1]; low[p] > low[v] {
					low[p] = low[v]
				}
			}
			if low[v] == idx[v] {
				// v roots an SCC: pop it. Tarjan emits SCCs descendants
				// first, so emission order reversed is topological.
				c := int32(len(starts))
				starts = append(starts, int32(len(nodes)))
				for {
					w := tstack[len(tstack)-1]
					tstack = tstack[:len(tstack)-1]
					onStack.Clear(int(w))
					comp[w] = c
					nodes = append(nodes, w)
					if w == v {
						break
					}
				}
			}
		}
	}
	nComp := len(starts)
	starts = append(starts, int32(len(nodes)))
	compReach := sc.compReach[:0]
	for c := 0; c < nComp; c++ {
		compReach = append(compReach, 0)
	}
	for k, v := range seeds {
		if seedBits[k] != 0 {
			compReach[comp[v]] |= seedBits[k]
		}
	}
	for c := nComp - 1; c >= 0; c-- {
		lanes := compReach[c]
		if lanes == 0 {
			continue
		}
		for i := starts[c]; i < starts[c+1]; i++ {
			v := nodes[i]
			reach[v] = lanes
			for _, id := range g.out[v] {
				if !active.Test(int(id)) {
					continue
				}
				compReach[comp[g.edges[id].To]] |= lanes
			}
		}
	}
	sc.back = tstack[:0]
	sc.queue = dfsN[:0]
	sc.dfsEdge = dfsE[:0]
	sc.sccNodes = nodes[:0]
	sc.sccStart = starts[:0]
	sc.compReach = compReach[:0]
	return reach
}
