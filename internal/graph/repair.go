package graph

import (
	"infoflow/internal/bitset"
)

// This file is the incremental tier of the wide-lane engine: instead of
// the replay-or-rebuild dichotomy (any flip that touches the condensed
// region forces a full Tarjan pass), the LaneEngine repairs its cached
// condensation locally. The repair machinery rests on one property of
// the push pass: the reach matrix it produces depends only on which
// nodes are mutually strongly connected and on the order being
// topological, not on which valid topological order, nor on component
// ids, nor on whether the structure carries stale components that no
// longer receive any lane mask (their rows are reset, not read). Any
// sequence of structure edits that keeps the condensation an SCC
// partition of the live region (or a superset of it) with a valid
// topological order therefore yields reach matrices bit-identical to a
// fresh rebuild.
//
// Per-sweep repair runs four passes over the net flip set:
//
//  0. cancel   — per-edge parity over the flip log; an edge flipped an
//                even number of times (flip-then-flip-back, common in
//                MH) is dropped before any structural work.
//  1. split    — a net removal inside one component first looks for a
//                bidirectional replacement-path certificate between the
//                removed edge's endpoints under the final mask; a hit
//                proves the component still strongly connected (with
//                every removal certified, substituting the certified
//                detours into any old cycle closes it again) and skips
//                all structural work. Otherwise a bounded Tarjan over
//                the component's members re-partitions it and splices
//                the fragments into the component's old slot in the
//                order (fragment-relative order from Tarjan emission).
//  2. grow     — a net insertion (u, v) with v outside the structure
//                runs a bounded Tarjan over the unreached cone from v
//                and splices the new components right after comp(u);
//                their out-edges are scanned for order violations,
//                which queue as pending back-edges.
//  3. insert   — net insertions against the cached order (and the
//                pending edges from pass 2) run two-sided Pearce-Kelly
//                maintenance each: a forward search over components
//                from comp(v) and a backward search from comp(u), both
//                pruned to the affected key interval and interleaved
//                by work spent, so an insertion costs about twice the
//                SMALLER of the two sides — a short back-edge into the
//                giant component's interval resolves from its cheap
//                side instead of scanning the giant. If the finished
//                side met the opposite endpoint the edge closes a
//                cycle and a Tarjan restricted to that side merges the
//                components on it; otherwise that side's block slides
//                across the interval. Processing is sequential, so each
//                step restores the topological invariant with respect
//                to every edge except the still-pending ones. An
//                insertion whose forward search exceeds its own small
//                budget (a long-range back-edge whose affected interval
//                spans much of the order) is not repaired structurally:
//                it is deferred into a persistent violation set instead
//                (see below), which keeps pass 3 bounded by the truly
//                local edits.
//
// Deferred violations relax the invariant from "the order is
// topological" to "the order is topological for every active edge
// outside the violation set". The push tolerates the violated edges by
// a monotone fixpoint: after the ordered pass (which skips them), each
// violated edge's source-component mask is checked against its
// target's; a missing bit is OR'd across and the growth is propagated
// breadth-first through all active out-edges until stable, then the
// grown components rewrite their member rows. Reachability is a least
// fixpoint of monotone OR-propagation, so the result is exact for any
// processing order — the SCC/topological machinery is only a
// single-pass-convergence device, and a violated edge usually costs one
// W-word subset test per sweep (its transfer happened the sweep it was
// deferred). Components mutually reachable only through a violated edge
// stay unmerged; their masks still equalise through the fixpoint. The
// violation set self-cleans during the push scan (edges that turned
// off, became intra-component after a merge, or became forward after
// reordering are dropped) and is cleared by any rebuild; when it grows
// past a cap, the next repairing sweep flushes the debt with one full
// rebuild.
//
// Everything else is free: removals with u outside the structure or
// between two components (an inter-component edge lies on no cycle and
// removals cannot invalidate a topological order), insertions with u
// unreached, intra-component, or agreeing with the order. Unreached
// targets of a "free" insertion are still found when a later grow
// reaches u, because grows traverse the live mask.
//
// The fallback lattice: an incomplete flip log, a changed seed set, a
// mask-signature mismatch, a violation set over its cap, or the
// per-sweep repair budget running out abandons the repair (possibly
// mid-edit — the structure may be left inconsistent) and falls back to
// a full rebuild, which re-derives every cached field from the live
// mask, clears the violation set, and is therefore always safe.

// orderKeyGap is the spacing between adjacent topological-order keys
// after a rebuild or renumbering. Midpoint insertion halves a gap per
// insert, so a fresh gap absorbs ~40 inserts between two fixed
// neighbours before a renumber; renumbering is O(components) and
// amortises away.
const orderKeyGap = 1 << 40

// flushEvery is the scheduled-rebuild cadence, counted in repair
// (structure-editing) sweeps. Repair is conservative about garbage: a
// region that becomes unreachable stays in the structure with zero
// lanes, recycled component ids scatter along the order, and the
// violation backlog only drains by drip. All three inflate the push
// scan, the Pearce-Kelly search space, and compWide's cache footprint.
// A scheduled full rebuild flushes the accumulated debt and resets the
// structure to the minimal reachable region with ids laid out
// sequentially along the order. Counting repairs (not sweeps) keeps
// replay-heavy workloads at small thinning intervals nearly flush-free
// while bounding the rebuild rate at 1/flushEvery under sustained
// churn, inside the 10% budget the serving path gates on.
const flushEvery = 16

// edgeSkip bits. The hot scans (Pearce-Kelly searches, the merge
// Tarjans, the ordered push) all skip the same three edge classes:
// inactive edges, order-violating edges parked in the violation set,
// and pass-3 edges not yet inserted. Folding the three into one byte
// per edge turns three scattered loads per edge slot into one.
const (
	skipInactive = 1 << 0 // mirrors the shadow mask, flipped in flipShadow
	skipVio      = 1 << 1 // mirrors membership in e.vio
	skipPending  = 1 << 2 // pass-3 not-yet-inserted edges
)

// pkSearchBudget bounds each side of one Pearce-Kelly insertion's
// search (in work units: nodes plus edge slots examined). An insertion
// whose cheaper side exceeds it is abandoned — the search is read-only, so abandonment is free — and
// the edge is deferred into the violation set instead of repaired
// structurally. Local edits (a fragment re-merging with the giant
// component it split from, short back-edges) complete far below this;
// the budget exists for the rare monster whose affected interval
// spans a large slice of the order with a huge component interior to
// it, where the search must scan that component's members. Deferral is
// latency smoothing, not a resting state: a persistently violated
// bridge edge makes the push fixpoint re-propagate its whole
// downstream cone every sweep, so the drip pass re-attempts the splice
// with the sweep's leftover budget until the backlog drains.
const pkSearchBudget = 4096

// pkChunk is the work-unit granularity of the interleaved two-sided
// search: a side runs one chunk, then yields to the side with less
// work spent. Big components' member scans pause at chunk boundaries
// (a resumable cursor), so a search rooted next to the giant component
// cannot burn its whole per-side cap before the cheap opposite side —
// often a few hundred units for a fragment re-merge — gets to finish.
const pkChunk = 128

// vioBackoff is how many sweeps a deferred edge waits in the violation
// set before the drip pass re-attempts its splice. A monster back-edge
// probe costs up to ~2x the per-insertion cap even to give up on, so
// re-probing one every sweep would dominate the repair budget; backing
// off amortises the probe while MH flip-backs usually retire the edge
// in the meantime. The edge stays exactly covered by the push fixpoint
// throughout.
const vioBackoff = 16

// vioCapDefault bounds the violation set. Each deferred edge costs one
// W-word subset test per sweep, so the scan stays in the microseconds
// at this size; past the cap the next repairing sweep flushes the
// accumulated debt with one full rebuild, which restores an exact
// topological order. At typical deferral rates this makes rebuilds a
// small percentage of sweeps rather than the common case.
const vioCapDefault = 512

// LaneEngine caches the SCC condensation of (active mask, seed set)
// across wide-lane sweeps, repairing it in place when the recorded
// flips permit and rebuilding it otherwise. It exists for the thinned
// Metropolis-Hastings sampling loop, where consecutive sweeps differ by
// the accepted flips of one thinning interval: a replayed or repaired
// sweep skips the full Tarjan pass and pays only the push plus
// O(changed region) repair work.
//
// As a guard against unreported mutation, the engine keeps a shadow
// copy of the active mask and a position-mixed XOR signature over it,
// both updated per net flip; a sweep whose expected signature disagrees
// with the live mask's falls back to a full rebuild. This is the
// differential invariant backing the reuse path: tracked flips and the
// live mask must tell the same story, or the cache is not trusted.
//
// The reach matrix handed to Sweep must be the same buffer sweep over
// sweep: reused structure rewrites only rows inside the condensed
// region and relies on rows outside it still being zero from the last
// full rebuild. A LaneEngine is not safe for concurrent use.
type LaneEngine struct {
	g *DiGraph

	valid  bool
	seeds  []NodeID   // seed set of the cached condensation
	shadow bitset.Set // engine's view of the active mask
	sig    uint64     // maskSig(shadow), maintained per net flip

	// The repairable condensation. Component ids are slots in the
	// per-component arrays, recycled through freeComps; nodes outside
	// the structure carry comp == -1 and never re-enter it except
	// through a grow or a rebuild.
	comp       []int32  // per node: component id, -1 outside the structure
	memberHead []NodeID // per comp: first member, -1 when unused
	memberTail []NodeID // per comp: last member
	memberNext []NodeID // per node: next member of the same component
	orderNext  []int32  // per comp: topological order list, ancestors first
	orderPrev  []int32
	orderKey   []uint64 // per comp: strictly increasing along the order list
	compSize   []int32  // per comp: member count (merge-survivor selection)
	clean      []bool   // per comp: member reach rows known to be zero
	orderHead  int32
	orderTail  int32
	maxComp    int32   // component ids live in [0, maxComp)
	freeComps  []int32 // recycled ids
	orderSeq   []int32 // derived per sweep: component ids in order

	compWide []uint64 // per comp: W-word lane mask (push scratch)

	// Rebuild scratch handed to condenseInto.
	rbNodes  []NodeID
	rbStarts []int32

	// Repair scratch — retained across sweeps, epoch-stamped where a
	// per-op reset would otherwise cost O(n) or O(components).
	flipParity []uint8  // per edge: net-flip parity of the current log
	touched    []EdgeID // edges seen in the current log (parity reset list)
	netOn      []EdgeID
	netOff     []EdgeID
	pending    []EdgeID // order-violating insertions awaiting pass 3
	dirty      []int32  // components with a net internal removal
	compEpoch  uint32
	compMark   []uint32 // per comp: dirty / forward-set membership stamp
	bMark      []uint32 // per comp: backward-set membership stamp
	compIdxAt  []uint32 // per comp: fixpoint ever-grown stamp
	compIdx    []int32  // per comp: dense index in fQueue (under compMark)
	compLow    []int32  // per comp: dense index in bQueue (under bMark)
	nodeEpoch  uint32
	nodeSeen   []uint32 // per node: Tarjan discovery stamp
	nodeIdx    []int32
	nodeLow    []int32
	nodeOnStk  []bool
	tnStack    []NodeID // node-Tarjan DFS stack
	teStack    []int32  // ... per-frame edge cursor
	tsStack    []NodeID // ... SCC stack
	emitNodes  []NodeID // node-Tarjan emission buffer
	emitStarts []int32
	emitComps  []int32 // merge-Tarjan emission buffer (real comp ids)
	emitCStart []int32
	fQueue     []int32 // Pearce-Kelly forward-search queue (and result set)
	bQueue     []int32 // Pearce-Kelly backward-search queue (and result set)
	fEdgeS     []int32 // dense component edges recorded by the forward search
	fEdgeT     []int32
	bEdgeS     []int32 // ... and by the backward search (real direction)
	bEdgeT     []int32
	dnStart    []int32  // dense merge-Tarjan scratch: CSR offsets,
	dnEdge     []int32  // ... targets,
	dnPos      []int32  // ... per-node edge cursor,
	dnIdx      []int32  // ... discovery index (0 = unvisited),
	dnLow      []int32  // ... lowlink,
	dnStk      []int32  // ... DFS stack,
	dnScc      []int32  // ... SCC stack,
	dnOnStk    []bool   // ... on-SCC-stack flags
	certF      []NodeID // split-certificate forward BFS queue
	certB      []NodeID // split-certificate backward BFS queue
	memScratch []NodeID // member collection / Tarjan roots

	// Deferred order violations: active back-edges whose structural
	// repair was over the per-insertion search budget. The push
	// tolerates them by fixpoint iteration (see the file comment).
	vio          []EdgeID
	edgeSkip     []uint8 // per edge: skip bits for the hot scans
	vioUntil     []int64 // per edge: sweep before which the drip skips it
	sweepSeq     int64   // repair-attempt counter (drip backoff clock)
	vioCap       int     // violation-set size that forces a rebuild
	pkCap        int     // per-insertion Pearce-Kelly search budget
	segOrder     []int32 // pkInsert: merged-segment representatives, in order
	sinceRebuild int     // repair sweeps since the last full rebuild
	grownQ       []int32 // push fixpoint worklist
	grown        []int32 // components whose mask grew during the fixpoint

	work int // repair work spent this sweep (nodes + edge slots)
	// prevWide holds the previous sweep's per-component lane masks and
	// prevAt stamps the components whose member rows are known to hold
	// exactly that mask (same reach buffer, membership untouched since).
	// push skips the member-row copy for a component whose recomputed
	// mask matches its stamped previous mask — on the repair path the
	// matrix persists across sweeps, so unchanged regions cost only the
	// out-edge ORs. Any membership edit (linkMembers, mergeComps) or row
	// reset clears the stamp; a reach reshape bumps prevEpoch, voiding
	// every stamp at once.
	prevWide  []uint64
	prevAt    []uint32
	prevEpoch uint32

	repairLimit int // budget per sweep; <= 0 disables repair entirely
	mutated     bool

	rebuilds         int64
	replays          int64
	repairs          int64
	overflowRebuilds int64
	budgetBails      int64
	vioRebuilds      int64
	flushRebuilds    int64
	splits           int64
	merges           int64
	grows            int64
	deferrals        int64
	cancelled        int64
}

// LaneEngineStats is a snapshot of the engine's sweep-outcome and
// repair-operation counters. Replays + Repairs + Rebuilds equals the
// number of Sweep calls; the remaining fields subdivide causes.
type LaneEngineStats struct {
	Replays  int64 // sweeps that reused the cached structure unchanged
	Repairs  int64 // sweeps that repaired the structure locally
	Rebuilds int64 // sweeps that ran a full Tarjan rebuild

	OverflowRebuilds  int64 // rebuilds forced by an incomplete flip log
	BudgetBails       int64 // repairs abandoned over the work budget
	ViolationRebuilds int64 // rebuilds flushing a full violation set
	FlushRebuilds     int64 // scheduled rebuilds flushing dead components

	Splits         int64 // components split by an internal removal
	Merges         int64 // component groups merged by a back-edge cycle
	Grows          int64 // insertions that extended the structure
	Deferrals      int64 // back-edges deferred into the violation set
	CancelledFlips int64 // flip-log entries eliminated by parity dedup
}

// NewLaneEngine returns an engine for g with an empty cache and the
// default repair budget (proportional to a full rebuild's work, so a
// pathological repair can never cost more than the rebuild it avoids).
func NewLaneEngine(g *DiGraph) *LaneEngine {
	limit := 4 * (g.NumNodes() + g.NumEdges())
	if limit < 4*pkSearchBudget {
		// Floor for small graphs, where the proportional budget would
		// not cover even one legitimate split or merge.
		limit = 4 * pkSearchBudget
	}
	return &LaneEngine{g: g, repairLimit: limit, pkCap: limit / 2, vioCap: vioCapDefault, prevEpoch: 1}
}

// SetRepairLimit sets the per-sweep repair work budget (measured in
// nodes plus edge slots examined). A repair that exceeds it is
// abandoned for a full rebuild; limit <= 0 disables repair entirely,
// restoring the replay-or-rebuild behaviour (useful as a baseline).
func (e *LaneEngine) SetRepairLimit(limit int) { e.repairLimit = limit }

// Invalidate drops the cached condensation; the next Sweep recomputes
// it. Call it when the active mask may have changed in ways not
// reported to Sweep (the signature guard would catch the drift anyway,
// but an explicit invalidation documents the boundary and skips the
// doomed repair attempt).
func (e *LaneEngine) Invalidate() { e.valid = false }

// Stats returns the engine's counters.
func (e *LaneEngine) Stats() LaneEngineStats {
	return LaneEngineStats{
		Replays:           e.replays,
		Repairs:           e.repairs,
		Rebuilds:          e.rebuilds,
		OverflowRebuilds:  e.overflowRebuilds,
		BudgetBails:       e.budgetBails,
		ViolationRebuilds: e.vioRebuilds,
		FlushRebuilds:     e.flushRebuilds,
		Splits:            e.splits,
		Merges:            e.merges,
		Grows:             e.grows,
		Deferrals:         e.deferrals,
		CancelledFlips:    e.cancelled,
	}
}

// Rebuilds returns the number of sweeps that recomputed the
// condensation from scratch.
func (e *LaneEngine) Rebuilds() int64 { return e.rebuilds }

// Replays returns the number of sweeps that reused the cached
// condensation without modifying it.
func (e *LaneEngine) Replays() int64 { return e.replays }

// Repairs returns the number of sweeps that repaired the cached
// condensation in place.
func (e *LaneEngine) Repairs() int64 { return e.repairs }

// wordSig is the signature contribution of mask word i holding value w:
// a splitmix-style avalanche of the word value offset by a word-index
// multiplier, so equal words at different positions contribute
// unrelated values (the old rotl-by-index fold had period 64 in the
// word index and collided sparse masks 64 words apart).
//
//flowlint:hotpath
func wordSig(w uint64, i int) uint64 {
	x := w + (uint64(i)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// maskSig folds the active mask into a position-mixed XOR signature.
// Flipping one bit of word i toggles exactly the before/after wordSig
// contributions of that word, which is how flipShadow maintains it
// incrementally.
//
//flowlint:hotpath
func maskSig(active bitset.Set) uint64 {
	var h uint64
	for i, w := range active {
		h ^= wordSig(w, i)
	}
	return h
}

// flipShadow toggles edge id's bit in the shadow mask and updates the
// incremental signature to match.
//
//flowlint:hotpath
func (e *LaneEngine) flipShadow(id EdgeID) {
	i := int(id) >> 6
	e.sig ^= wordSig(e.shadow[i], i)
	e.shadow[i] ^= 1 << (uint(id) & 63)
	e.sig ^= wordSig(e.shadow[i], i)
	e.edgeSkip[id] ^= skipInactive
}

// Sweep outcomes (internal).
const (
	outcomeRebuild = iota
	outcomeReplay
	outcomeRepair
)

// Sweep computes the same result as ReachLanesWideInto for the current
// active mask, reusing the cached condensation when possible. flips
// lists the edges whose activity bit was toggled since the previous
// Sweep, in any order, with repeated entries cancelling (a double flip
// is a net no-op and is eliminated before repair); flipsComplete
// reports whether that list is exhaustive — pass false whenever
// tracking was interrupted or overflowed, which forces a full rebuild.
// reach must be the same buffer across sweeps (see the type comment).
// If sc is nil a temporary Scratch is allocated.
//
//flowlint:hotpath
func (e *LaneEngine) Sweep(seeds []NodeID, seedBits *bitset.LaneMatrix, active bitset.Set, flips []EdgeID, flipsComplete bool, sc *Scratch, reach *bitset.LaneMatrix) {
	g := e.g
	n := g.NumNodes()
	if sc == nil {
		sc = tempScratch(n)
	}
	W := seedBits.W
	resized := reach.Rows != n || reach.W != W
	if resized {
		//flowlint:ignore hotpath -- documented cold fallback on first use or shape change; steady-state callers keep the shape
		reach.Resize(n, W)
		e.prevEpoch++
		if e.prevEpoch == 0 {
			e.prevEpoch = 1
		}
	}
	outcome := outcomeRebuild
	switch {
	case !e.valid || !sameSeeds(e.seeds, seeds) || len(e.shadow) != len(active):
	case !flipsComplete:
		e.overflowRebuilds++
	case e.repairLimit > 0 && e.sinceRebuild >= flushEvery:
		// Scheduled flush: see flushEvery.
		e.flushRebuilds++
	default:
		outcome = e.repair(active, flips)
	}
	switch outcome {
	case outcomeReplay:
		e.replays++
	case outcomeRepair:
		e.repairs++
		e.sinceRebuild++
	default:
		e.rebuilds++
		e.sinceRebuild = 0
		if !resized {
			reach.Reset()
		}
		e.rebuild(seeds, active, sc)
	}
	e.orderSeq = e.orderSeq[:0]
	for c := e.orderHead; c != -1; c = e.orderNext[c] {
		e.orderSeq = append(e.orderSeq, c)
	}
	e.compWide = growCompWide(e.compWide, int(e.maxComp)*W)
	e.prevWide = growPrevWide(e.prevWide, int(e.maxComp)*W)
	e.push(seeds, seedBits, active, reach)
}

// rebuild recomputes every cached field from the live mask via one full
// condenseInto pass. It is the universal fallback: repair may abandon
// the structure mid-edit, and rebuild reads none of it.
//
//flowlint:hotpath
func (e *LaneEngine) rebuild(seeds []NodeID, active bitset.Set, sc *Scratch) {
	g := e.g
	e.comp, e.rbNodes, e.rbStarts = g.condenseInto(seeds, active, sc, e.comp, e.rbNodes[:0], e.rbStarts[:0])
	nComp := len(e.rbStarts) - 1
	e.ensureCompCap(nComp)
	e.ensureNodeCap(g.NumNodes(), g.NumEdges())
	e.maxComp = int32(nComp)
	e.freeComps = e.freeComps[:0]
	// Tarjan emits descendants first, so the topological order list is
	// the component ids in reverse: head = nComp-1, tail = 0.
	for c := 0; c < nComp; c++ {
		e.linkMembers(int32(c), e.rbNodes[e.rbStarts[c]:e.rbStarts[c+1]])
		e.clean[c] = true
		e.orderNext[c] = int32(c) - 1
		e.orderPrev[c] = int32(c) + 1
		e.orderKey[c] = uint64(nComp-c) * orderKeyGap
	}
	if nComp == 0 {
		e.orderHead, e.orderTail = -1, -1
	} else {
		e.orderHead, e.orderTail = int32(nComp-1), 0
		e.orderPrev[nComp-1] = -1
	}
	for id := range e.edgeSkip {
		b := uint8(0)
		if !active.Test(id) {
			b = skipInactive
		}
		e.edgeSkip[id] = b
	}
	e.vio = e.vio[:0]
	e.seeds = append(e.seeds[:0], seeds...)
	e.shadow = append(e.shadow[:0], active...)
	e.sig = maskSig(active)
	e.valid = true
}

// repair applies one thinning interval's net flips to the cached
// condensation. It returns outcomeReplay when the net flips were all
// structure-preserving, outcomeRepair when the structure was edited,
// and outcomeRebuild when the signature disagreed or the work budget
// ran out (in which case the structure may be inconsistent and the
// caller must rebuild).
//
//flowlint:hotpath
func (e *LaneEngine) repair(active bitset.Set, flips []EdgeID) int {
	g := e.g
	e.sweepSeq++
	// Pass 0: parity dedup. The live mask already reflects the flips,
	// so an odd-parity edge's final state is active.Test.
	e.touched = e.touched[:0]
	for _, id := range flips {
		if e.flipParity[id] == 0 {
			e.touched = append(e.touched, id)
		}
		e.flipParity[id] ^= 1
	}
	e.netOn, e.netOff = e.netOn[:0], e.netOff[:0]
	for _, id := range e.touched {
		p := e.flipParity[id]
		e.flipParity[id] = 0
		if p == 0 {
			continue
		}
		e.flipShadow(id)
		if active.Test(int(id)) {
			e.netOn = append(e.netOn, id)
		} else {
			e.netOff = append(e.netOff, id)
		}
	}
	net := len(e.netOn) + len(e.netOff)
	e.cancelled += int64(len(flips) - net)
	if e.sig != maskSig(active) {
		// Unreported mutation: the flip log and the live mask disagree.
		return outcomeRebuild
	}
	if net == 0 {
		return outcomeReplay
	}
	if len(e.vio) >= e.vioCap {
		// The violation set is full: flush the accumulated debt with
		// one rebuild, which restores an exact topological order.
		e.vioRebuilds++
		return outcomeRebuild
	}
	if e.repairLimit <= 0 {
		// Repair disabled: the historical replay-or-rebuild scan. Any
		// net flip that would need structural work forces a rebuild.
		for _, id := range e.netOff {
			if e.comp[g.edges[id].From] != -1 {
				return outcomeRebuild
			}
		}
		for _, id := range e.netOn {
			ed := g.edges[id]
			cu, cv := e.comp[ed.From], e.comp[ed.To]
			if cu != -1 && (cv == -1 || e.orderKey[cu] > e.orderKey[cv]) {
				return outcomeRebuild
			}
		}
		return outcomeReplay
	}
	e.work = 0
	e.mutated = false

	// Pass 1: splits. A net removal strictly inside one component may
	// break it apart; removals between components or outside the
	// structure are free (an inter-component edge lies on no cycle, and
	// removals never invalidate a topological order).
	e.compEpoch++
	e.dirty = e.dirty[:0]
	for _, id := range e.netOff {
		ed := g.edges[id]
		cu := e.comp[ed.From]
		if cu == -1 || cu != e.comp[ed.To] {
			continue
		}
		if e.compMark[cu] == e.compEpoch {
			continue // already scheduled for a split pass
		}
		if e.certifyIntraRemoval(ed.From, ed.To, cu, active) {
			continue
		}
		e.compMark[cu] = e.compEpoch
		e.dirty = append(e.dirty, cu)
	}
	for _, c := range e.dirty {
		if !e.splitComp(c, active) {
			e.budgetBails++
			return outcomeRebuild
		}
	}

	// Pass 2: grows and back-edge collection. Components are resolved
	// live, so earlier grows and splits are visible to later flips.
	e.pending = e.pending[:0]
	for _, id := range e.netOn {
		ed := g.edges[id]
		cu, cv := e.comp[ed.From], e.comp[ed.To]
		switch {
		case cu == -1:
			// u unreached: the push never traverses the edge. If a later
			// grow reaches u it traverses the live mask and finds it then.
		case cv == -1:
			if !e.growFrom(cu, ed.To, active) {
				e.budgetBails++
				return outcomeRebuild
			}
		case cu == cv:
			// Intra-component: no new reachability, no new cycle.
		case e.orderKey[cu] > e.orderKey[cv]:
			e.pending = append(e.pending, id)
		}
	}

	// Pass 3 budgets: one insertion may spend pkCap on its search, but
	// the pass as a whole aims at half the sweep budget so a burst of
	// long-range back-edges smears across sweeps (the fixpoint covers
	// the deferred tail exactly in the meantime) instead of spiking one
	// sweep's latency.
	softLimit := e.repairLimit / 2

	// Pass 3: sequential Pearce-Kelly insertion of the order-violating
	// edges. Each step restores the topological invariant with respect
	// to every edge inserted so far, so a cycle missed at one edge's
	// turn is found at a later edge's turn. Critically, the searches
	// must not traverse the still-pending edges: every edge they do see
	// is forward, which confines the searched set to the (key(cv),
	// key(cu)] interval instead of letting it escape downward through a
	// future back-edge into an unrelated region.
	for _, id := range e.pending {
		e.edgeSkip[id] |= skipPending
	}
	for _, id := range e.pending {
		e.edgeSkip[id] &^= skipPending // this edge is now being inserted
		res := pkDefer
		if e.work <= softLimit {
			res = e.pkInsert(id, active)
		}
		switch res {
		case pkDone:
		case pkDefer:
			if e.edgeSkip[id]&skipVio == 0 {
				e.edgeSkip[id] |= skipVio
				e.vio = append(e.vio, id)
			}
			e.vioUntil[id] = e.sweepSeq + vioBackoff
			e.deferrals++
			e.mutated = true
		default: // pkBudget
			e.budgetBails++
			return outcomeRebuild
		}
	}

	// Pass 4: drip-splice the violation backlog with the budget pass 3
	// left over. An entry that resolved on its own (its endpoints
	// merged, or a reorder made it forward) just drops; one whose
	// search is still over its cap goes back on backoff, so a stuck
	// monster is re-probed every vioBackoff sweeps instead of every
	// sweep, and never starves the entries behind it.
	if len(e.vio) > 0 && e.work < softLimit {
		kept := e.vio[:0]
		for i, id := range e.vio {
			if e.work >= softLimit {
				kept = append(kept, e.vio[i:]...)
				break
			}
			if !active.Test(int(id)) {
				// Netted off earlier this sweep; the push scan would
				// drop it anyway, and splicing an inactive edge could
				// merge components no live cycle joins.
				e.edgeSkip[id] &^= skipVio
				continue
			}
			if e.vioUntil[id] > e.sweepSeq {
				kept = append(kept, id)
				continue
			}
			res := e.pkInsert(id, active)
			if res == pkBudget {
				e.budgetBails++
				return outcomeRebuild
			}
			if res == pkDefer {
				e.vioUntil[id] = e.sweepSeq + vioBackoff
				kept = append(kept, id)
				continue
			}
			e.edgeSkip[id] &^= skipVio
		}
		e.vio = kept
	}
	if !e.mutated {
		return outcomeReplay
	}
	return outcomeRepair
}

// splitComp re-partitions one component under the final mask after a
// net internal removal: a bounded Tarjan over its members, splicing the
// fragments into the component's old order slot (fragment-relative
// order from Tarjan emission, which also accounts for net insertions
// between members). Returns false when the work budget ran out.
//
//flowlint:hotpath
func (e *LaneEngine) splitComp(c int32, active bitset.Set) bool {
	e.memScratch = e.memScratch[:0]
	for v := e.memberHead[c]; v != -1; v = e.memberNext[v] {
		e.memScratch = append(e.memScratch, v)
	}
	e.work += len(e.memScratch)
	if e.work > e.repairLimit {
		return false
	}
	if !e.tarjanNodes(e.memScratch, c, active) {
		return false
	}
	segs := len(e.emitStarts) - 1
	if segs == 1 {
		// Still one SCC: the removal left a cycle through every member.
		return true
	}
	prev := e.orderPrev[c]
	wasClean := e.clean[c]
	e.orderRemove(c)
	e.freeComp(c)
	// Reverse emission order = ancestors first; chain the fragments in
	// after the old slot's predecessor.
	after := prev
	for s := segs - 1; s >= 0; s-- {
		id := e.allocComp()
		e.linkMembers(id, e.emitNodes[e.emitStarts[s]:e.emitStarts[s+1]])
		e.clean[id] = wasClean
		e.orderInsertAfter(after, id)
		after = id
	}
	e.splits++
	e.mutated = true
	return true
}

// growFrom extends the structure along a net insertion (u, v) with v
// outside it: a bounded Tarjan over the unreached cone from v under the
// live mask, splicing the new components right after comp(u) = cu.
// Old active edges cannot enter the cone (their sources were reached at
// rebuild time, so their targets were too), so the only in-edges are
// the triggering insertion (satisfied by placement) and other net
// insertions (checked at their own pass-2 turn); out-edges into older
// components are scanned here and queued as pending back-edges when
// they violate the order.
//
//flowlint:hotpath
func (e *LaneEngine) growFrom(cu int32, v NodeID, active bitset.Set) bool {
	g := e.g
	e.memScratch = append(e.memScratch[:0], v)
	if !e.tarjanNodes(e.memScratch, -1, active) {
		return false
	}
	segs := len(e.emitStarts) - 1
	after := cu
	for s := segs - 1; s >= 0; s-- {
		id := e.allocComp()
		e.linkMembers(id, e.emitNodes[e.emitStarts[s]:e.emitStarts[s+1]])
		// Nodes outside the structure kept zero rows since the last
		// rebuild, so new components start clean.
		e.clean[id] = true
		e.orderInsertAfter(after, id)
		after = id
	}
	// Back-target scan: any active edge out of the cone lands in the
	// structure (otherwise the Tarjan would have explored through it).
	for _, x := range e.emitNodes {
		cx := e.comp[x]
		for _, id := range g.out[x] {
			e.work++
			if !active.Test(int(id)) {
				continue
			}
			t := e.comp[g.edges[id].To]
			if t != cx && e.orderKey[t] < e.orderKey[cx] {
				e.pending = append(e.pending, id)
			}
		}
	}
	if e.work > e.repairLimit {
		return false
	}
	e.grows++
	e.mutated = true
	return true
}

// Pearce-Kelly insertion results.
const (
	pkDone   = iota // topological invariant restored
	pkDefer         // search over its budget; defer to the violation set
	pkBudget        // per-sweep work budget ran out; rebuild
)

// Two-sided search side states (internal to pkInsert).
const (
	sideRunning = iota
	sideOver    // this side exceeded the per-insertion cap
	sideClear   // queue drained without reaching the opposite endpoint
	sideFound   // queue drained; the opposite endpoint was reached
)

// certBudget bounds one split certificate's bidirectional search (in
// work units). Replacement paths inside a strongly connected component
// are short — two balls of ~sqrt(edges) meet — so a certificate either
// succeeds quickly or the component probably really did split and the
// Tarjan pass was needed anyway.
const certBudget = 512

// certifyIntraRemoval reports whether u still reaches v inside
// component c under the final mask after the net removal of edge
// (u, v): a bidirectional BFS restricted to c's members — forward ball
// from u, backward ball from v over the reverse adjacency — expanding
// the smaller frontier until the balls meet (certified), one side is
// exhausted (definitely split), or the budget runs out (inconclusive).
// Only a meet certifies; the other two outcomes fall through to the
// full split Tarjan. Certificates for multiple removals in the same
// component compose: each certified path lies in the final mask, so it
// avoids every removed edge, and substituting the detours into any old
// intra-component cycle closes it under the final mask.
//
//flowlint:hotpath
func (e *LaneEngine) certifyIntraRemoval(u, v NodeID, c int32, active bitset.Set) bool {
	g := e.g
	e.nodeEpoch += 2
	fe, be := e.nodeEpoch-1, e.nodeEpoch
	e.certF = append(e.certF[:0], u)
	e.certB = append(e.certB[:0], v)
	e.nodeSeen[u] = fe
	e.nodeSeen[v] = be
	cfi, cbi := 0, 0
	spent := 0
	for cfi < len(e.certF) && cbi < len(e.certB) {
		if spent > certBudget {
			return false
		}
		if len(e.certF)-cfi <= len(e.certB)-cbi {
			x := e.certF[cfi]
			cfi++
			for _, id := range g.out[x] {
				spent++
				e.work++
				if !active.Test(int(id)) {
					continue
				}
				w := g.edges[id].To
				if e.comp[w] != c || e.nodeSeen[w] == fe {
					continue
				}
				if e.nodeSeen[w] == be {
					return true
				}
				e.nodeSeen[w] = fe
				e.certF = append(e.certF, w)
			}
		} else {
			x := e.certB[cbi]
			cbi++
			for _, id := range g.in[x] {
				spent++
				e.work++
				if !active.Test(int(id)) {
					continue
				}
				w := g.edges[id].From
				if e.comp[w] != c || e.nodeSeen[w] == be {
					continue
				}
				if e.nodeSeen[w] == fe {
					return true
				}
				e.nodeSeen[w] = be
				e.certB = append(e.certB, w)
			}
		}
	}
	return false
}

// pkInsert restores the topological invariant for one order-violating
// insertion (u, v) with two interleaved component searches: forward
// from cv = comp(v) over out-edges pruned to keys <= key(cu), and
// backward from cu = comp(u) over in-edges pruned to keys >= key(cv).
// Whichever side drains its queue first decides the outcome — the
// searches are exact within the interval (every non-excluded active
// edge is forward, so neither can escape it), so "forward side done
// without reaching cu" and "backward side done without reaching cv"
// are equivalent no-cycle verdicts, and the mutation that follows
// moves or merges the completed side only. Sides run in pkChunk-sized
// slices, always resuming the one with less work spent — member scans
// pause mid-component — which bounds an insertion at about twice its
// SMALLER side even when the larger side is rooted next to the giant
// component. Neither endpoint's own members are ever scanned: every
// non-excluded edge out of cu is forward (key > key(cu)) and every one
// into cv is from key < key(cv), so neither can extend its search —
// which is what keeps a fragment-vs-giant insertion proportional to
// the fragment.
//
// No cycle: the completed side's block slides across the interval (the
// forward set moves just after cu, or the backward set — which pruning
// confines to keys strictly above key(cv), except cu's own key — moves
// just before cv), preserving internal relative order. Cycle: a Tarjan
// restricted to the completed side merges the components on it; the
// backward variant runs on the reverse adjacency and therefore emits
// groups directly in forward topological order. A search whose cheaper
// side exceeds the per-insertion cap returns pkDefer before mutating
// anything — the search phase is read-only, so the caller can hand the
// edge to the violation set and move on.
//
//flowlint:hotpath
func (e *LaneEngine) pkInsert(id EdgeID, active bitset.Set) int {
	g := e.g
	ed := g.edges[id]
	cu, cv := e.comp[ed.From], e.comp[ed.To]
	if cu == cv || e.orderKey[cu] < e.orderKey[cv] {
		// An earlier repair already satisfied the edge.
		return pkDone
	}
	low, high := e.orderKey[cv], e.orderKey[cu]
	e.compEpoch++
	epoch := e.compEpoch
	e.fQueue = append(e.fQueue[:0], cv)
	e.compMark[cv] = epoch
	e.compIdx[cv] = 0
	e.bQueue = append(e.bQueue[:0], cu)
	e.bMark[cu] = epoch
	e.compLow[cu] = 0
	e.fEdgeS, e.fEdgeT = e.fEdgeS[:0], e.fEdgeT[:0]
	e.bEdgeS, e.bEdgeT = e.bEdgeS[:0], e.bEdgeT[:0]
	fqi, bqi := 0, 0
	fWork, bWork := 0, 0
	fState, bState := sideRunning, sideRunning
	fFound, bFound := false, false
	// Resumable scan cursors: the component a side is mid-scan in (-1
	// when between components), its dense index in that side's queue,
	// and the next member to visit.
	fCur, bCur := int32(-1), int32(-1)
	fCurIdx, bCurIdx := int32(-1), int32(-1)
	var fMem, bMem NodeID
	for {
		if e.work > e.repairLimit {
			return pkBudget
		}
		if fState == sideRunning && fCur == -1 && fqi == len(e.fQueue) {
			fState = sideClear
			if fFound {
				fState = sideFound
			}
		}
		if bState == sideRunning && bCur == -1 && bqi == len(e.bQueue) {
			bState = sideClear
			if bFound {
				bState = sideFound
			}
		}
		if fState >= sideClear || bState >= sideClear {
			break
		}
		if fState == sideOver && bState == sideOver {
			// Long-range back-edge: both sides of the affected interval
			// are too wide to splice cheaply. Nothing has been mutated;
			// defer it.
			return pkDefer
		}
		if fState == sideRunning && (bState != sideRunning || fWork <= bWork) {
			budget := fWork + pkChunk
			for fWork < budget {
				if fCur == -1 {
					if fqi == len(e.fQueue) {
						break
					}
					c := e.fQueue[fqi]
					fqi++
					if c == cu {
						// cu needs no member scan: every non-excluded
						// edge out of it is forward (key > key(cu)), so
						// none can extend the search.
						fFound = true
						continue
					}
					fCur, fMem = c, e.memberHead[c]
					fCurIdx = int32(fqi - 1)
				}
				for fMem != -1 && fWork < budget {
					x := fMem
					fMem = e.memberNext[x]
					e.work++
					fWork++
					for _, eid := range g.out[x] {
						e.work++
						fWork++
						if e.edgeSkip[eid] != 0 {
							continue
						}
						t := e.comp[g.edges[eid].To]
						if t == fCur || t == -1 {
							continue
						}
						if e.compMark[t] == epoch {
							// Already-searched target: record the
							// component edge for the merge Tarjan
							// (dense ids are queue positions).
							e.fEdgeS = append(e.fEdgeS, fCurIdx)
							e.fEdgeT = append(e.fEdgeT, e.compIdx[t])
							continue
						}
						if e.orderKey[t] > high {
							continue
						}
						e.compMark[t] = epoch
						e.compIdx[t] = int32(len(e.fQueue))
						e.fEdgeS = append(e.fEdgeS, fCurIdx)
						e.fEdgeT = append(e.fEdgeT, e.compIdx[t])
						e.fQueue = append(e.fQueue, t)
					}
				}
				if fMem == -1 {
					fCur = -1
				}
			}
			if fWork > e.pkCap {
				fState = sideOver
			}
		} else {
			budget := bWork + pkChunk
			for bWork < budget {
				if bCur == -1 {
					if bqi == len(e.bQueue) {
						break
					}
					c := e.bQueue[bqi]
					bqi++
					if c == cv {
						// Mirror: every non-excluded edge into cv comes
						// from a key < key(cv), pruned — except the
						// inserted edge itself, from the root cu.
						bFound = true
						continue
					}
					bCur, bMem = c, e.memberHead[c]
					bCurIdx = int32(bqi - 1)
				}
				for bMem != -1 && bWork < budget {
					x := bMem
					bMem = e.memberNext[x]
					e.work++
					bWork++
					for _, eid := range g.in[x] {
						e.work++
						bWork++
						if e.edgeSkip[eid] != 0 {
							continue
						}
						t := e.comp[g.edges[eid].From]
						if t == bCur || t == -1 {
							continue
						}
						if e.bMark[t] == epoch {
							// Mirror: the recorded pair keeps the real
							// edge direction, t into the scanned comp.
							e.bEdgeS = append(e.bEdgeS, e.compLow[t])
							e.bEdgeT = append(e.bEdgeT, bCurIdx)
							continue
						}
						if e.orderKey[t] < low {
							continue
						}
						e.bMark[t] = epoch
						e.compLow[t] = int32(len(e.bQueue))
						e.bEdgeS = append(e.bEdgeS, int32(len(e.bQueue)))
						e.bEdgeT = append(e.bEdgeT, bCurIdx)
						e.bQueue = append(e.bQueue, t)
					}
				}
				if bMem == -1 {
					bCur = -1
				}
			}
			if bWork > e.pkCap {
				bState = sideOver
			}
		}
	}
	// Exactly one side completed (the loop breaks immediately), except
	// when both drain on the same check — then both verdicts agree
	// (both exact), and either is applied. Clear before Found is an
	// arbitrary preference between equivalent completions.
	switch {
	case fState == sideClear:
		// Pure reorder: slide the forward block after cu, in its
		// current relative order. Every edge out of the block goes to a
		// key > key(cu) (a smaller-keyed target would have been
		// searched), and no component sits between cu and its order
		// successor, so the move creates no new violations.
		e.sortByKey(e.fQueue)
		for _, c := range e.fQueue {
			e.orderRemove(c)
		}
		e.orderInsertBlockAfter(cu, e.fQueue)
		e.mutated = true
		return pkDone
	case bState == sideClear:
		// Mirror reorder: slide the backward block (everything in the
		// interval that reaches cu, cu included) just before cv. Every
		// edge into the block comes from a key < key(cv) or from inside
		// it (a key in the interval reaching the block would itself be
		// in the block), and the block lands after every such source,
		// so the move creates no new violations.
		e.sortByKey(e.bQueue)
		for _, c := range e.bQueue {
			e.orderRemove(c)
		}
		e.orderInsertBlockAfter(e.orderPrev[cv], e.bQueue)
		e.mutated = true
		return pkDone
	case fState == sideFound:
		// Cycle: the interleaved search already visited every edge of
		// the affected subgraph and recorded it as dense index pairs;
		// close the cycle with the inserted edge itself (cu -> cv) and
		// condense the recorded graph directly — no re-walk of member
		// lists or adjacency.
		e.fEdgeS = append(e.fEdgeS, e.compIdx[cu])
		e.fEdgeT = append(e.fEdgeT, 0)
		if !e.pkMergeSegs(e.fQueue, e.fEdgeS, e.fEdgeT) {
			return pkBudget
		}
		// Components strictly between cu's nearest non-searched
		// predecessor and cu are all in the searched set, so the whole
		// set reinserts there without disturbing anything outside it.
		insertAfter := e.orderPrev[cu]
		for insertAfter != -1 && e.compMark[insertAfter] == epoch {
			e.work++
			insertAfter = e.orderPrev[insertAfter]
		}
		for _, c := range e.fQueue {
			e.orderRemove(c)
		}
		e.spliceSegs(insertAfter)
		e.mutated = true
		return pkDone
	default: // bState == sideFound
		// Mirror cycle from the source side. The backward set sits
		// entirely at keys above key(cv) (pruning), so cv's order
		// predecessor is outside it and the set reinserts right at
		// cv's old slot.
		e.bEdgeS = append(e.bEdgeS, 0)
		e.bEdgeT = append(e.bEdgeT, e.compLow[cv])
		if !e.pkMergeSegs(e.bQueue, e.bEdgeS, e.bEdgeT) {
			return pkBudget
		}
		insertAfter := e.orderPrev[cv]
		for _, c := range e.bQueue {
			e.orderRemove(c)
		}
		e.spliceSegs(insertAfter)
		e.mutated = true
		return pkDone
	}
}

// mergeComps fuses one Tarjan-emitted group of components (a new cycle
// through the inserted edge) into its largest member component,
// relinking only the smaller components' member lists — merging a
// fragment back into the giant costs O(fragment), not O(giant).
//
//flowlint:hotpath
func (e *LaneEngine) mergeComps(group []int32) int32 {
	nc := group[0]
	for _, c := range group[1:] {
		if e.compSize[c] > e.compSize[nc] {
			nc = c
		}
	}
	e.prevAt[nc] = 0
	cl := e.clean[nc]
	for _, c := range group {
		if c == nc {
			continue
		}
		cl = cl && e.clean[c]
		for v := e.memberHead[c]; v != -1; v = e.memberNext[v] {
			e.work++
			e.comp[v] = nc
		}
		e.memberNext[e.memberTail[nc]] = e.memberHead[c]
		e.memberTail[nc] = e.memberTail[c]
		e.compSize[nc] += e.compSize[c]
		e.freeComp(c)
	}
	e.clean[nc] = cl
	e.merges++
	return nc
}

// tarjanNodes runs a bounded iterative Tarjan over the nodes filtered
// by `within` (a component id to re-partition, or -1 for the unreached
// cone of a grow), starting from roots, over active edges. Emitted
// SCCs (descendants first) land in emitNodes/emitStarts. Returns false
// when the work budget runs out; the epoch-stamped discovery arrays
// make abandonment free, and the explicit on-stack bits are unwound so
// the next run starts consistent.
//
//flowlint:hotpath
func (e *LaneEngine) tarjanNodes(roots []NodeID, within int32, active bitset.Set) bool {
	g := e.g
	e.nodeEpoch++
	epoch := e.nodeEpoch
	e.emitNodes, e.emitStarts = e.emitNodes[:0], e.emitStarts[:0]
	tstack := e.tsStack[:0]
	dfsN := e.tnStack[:0]
	dfsE := e.teStack[:0]
	var next int32
	for _, root := range roots {
		if e.nodeSeen[root] == epoch {
			continue
		}
		e.nodeSeen[root] = epoch
		e.nodeIdx[root], e.nodeLow[root] = next, next
		next++
		e.nodeOnStk[root] = true
		tstack = append(tstack, root)
		dfsN = append(dfsN, root)
		dfsE = append(dfsE, 0)
		for len(dfsN) > 0 {
			if e.work > e.repairLimit {
				for _, w := range tstack {
					e.nodeOnStk[w] = false
				}
				e.tsStack, e.tnStack, e.teStack = tstack[:0], dfsN[:0], dfsE[:0]
				return false
			}
			f := len(dfsN) - 1
			v := dfsN[f]
			out := g.out[v]
			descended := false
			for ei := dfsE[f]; int(ei) < len(out); ei++ {
				id := out[ei]
				e.work++
				if !active.Test(int(id)) {
					continue
				}
				w := g.edges[id].To
				if e.nodeSeen[w] == epoch {
					if e.nodeOnStk[w] && e.nodeIdx[w] < e.nodeLow[v] {
						e.nodeLow[v] = e.nodeIdx[w]
					}
					continue
				}
				if e.comp[w] != within {
					continue
				}
				dfsE[f] = ei + 1
				e.nodeSeen[w] = epoch
				e.nodeIdx[w], e.nodeLow[w] = next, next
				next++
				e.nodeOnStk[w] = true
				tstack = append(tstack, w)
				dfsN = append(dfsN, w)
				dfsE = append(dfsE, 0)
				descended = true
				break
			}
			if descended {
				continue
			}
			dfsN = dfsN[:f]
			dfsE = dfsE[:f]
			if f > 0 {
				p := dfsN[f-1]
				if e.nodeLow[v] < e.nodeLow[p] {
					e.nodeLow[p] = e.nodeLow[v]
				}
			}
			if e.nodeLow[v] == e.nodeIdx[v] {
				e.emitStarts = append(e.emitStarts, int32(len(e.emitNodes)))
				for {
					w := tstack[len(tstack)-1]
					tstack = tstack[:len(tstack)-1]
					e.nodeOnStk[w] = false
					e.emitNodes = append(e.emitNodes, w)
					e.work++
					if w == v {
						break
					}
				}
			}
		}
	}
	e.emitStarts = append(e.emitStarts, int32(len(e.emitNodes)))
	e.tsStack, e.tnStack, e.teStack = tstack[:0], dfsN[:0], dfsE[:0]
	return true
}

// pkMergeSegs condenses the component subgraph recorded by the
// Pearce-Kelly search: queue lists the searched components (dense id =
// queue position) and es/et the in-interval component edges among them
// in real direction, including the closing pair for the inserted edge.
// A flat iterative Tarjan over that compact graph finds the merged
// groups without re-walking member lists or node adjacency — the
// search already paid for every pointer chase, so the merge runs on
// arrays it can stream. Groups land in emitComps/emitCStart as real
// component ids, in reverse topological order of the condensed
// subgraph (Tarjan emits an SCC only after everything it reaches).
//
// Every group except the new cycle is necessarily a singleton — any
// multi-component SCC among searched components would have been a
// cycle in the order before this insertion — but the Tarjan does not
// rely on that; it simply emits whatever the recorded graph contains.
//
//flowlint:hotpath
func (e *LaneEngine) pkMergeSegs(queue []int32, es, et []int32) bool {
	nq := len(queue)
	e.work += nq + len(es)
	if e.work > e.repairLimit {
		return false
	}
	e.dnStart = growDense(e.dnStart, nq+1)
	e.dnIdx = growDense(e.dnIdx, nq)
	e.dnLow = growDense(e.dnLow, nq)
	e.dnPos = growDense(e.dnPos, nq)
	e.dnOnStk = growDenseBool(e.dnOnStk, nq)
	e.dnEdge = growDense(e.dnEdge, len(es))
	start, pos := e.dnStart, e.dnPos
	for i := 0; i <= nq; i++ {
		start[i] = 0
	}
	for _, s := range es {
		start[s+1]++
	}
	for i := 1; i <= nq; i++ {
		start[i] += start[i-1]
	}
	copy(pos, start[:nq])
	for k, s := range es {
		e.dnEdge[pos[s]] = et[k]
		pos[s]++
	}
	idx, low := e.dnIdx, e.dnLow
	for i := range idx {
		idx[i] = 0
	}
	e.emitComps, e.emitCStart = e.emitComps[:0], e.emitCStart[:0]
	var next int32
	stk := e.dnStk[:0]
	scc := e.dnScc[:0]
	for r := 0; r < nq; r++ {
		if idx[r] != 0 {
			continue
		}
		stk = append(stk, int32(r))
		for len(stk) > 0 {
			v := stk[len(stk)-1]
			if idx[v] == 0 {
				next++
				idx[v], low[v] = next, next
				pos[v] = start[v]
				scc = append(scc, v)
				e.dnOnStk[v] = true
			}
			descended := false
			for p := pos[v]; p < start[v+1]; p++ {
				w := e.dnEdge[p]
				if idx[w] == 0 {
					// Resume here after the child completes; the
					// re-examination then updates low via the
					// on-stack branch, and the pop below folds the
					// child's final lowlink in regardless.
					pos[v] = p
					stk = append(stk, w)
					descended = true
					break
				}
				if e.dnOnStk[w] && idx[w] < low[v] {
					low[v] = idx[w]
				}
			}
			if descended {
				continue
			}
			pos[v] = start[v+1]
			stk = stk[:len(stk)-1]
			if len(stk) > 0 {
				p := stk[len(stk)-1]
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == idx[v] {
				e.emitCStart = append(e.emitCStart, int32(len(e.emitComps)))
				for {
					t := scc[len(scc)-1]
					scc = scc[:len(scc)-1]
					e.dnOnStk[t] = false
					e.emitComps = append(e.emitComps, queue[t])
					if t == v {
						break
					}
				}
			}
		}
	}
	e.emitCStart = append(e.emitCStart, int32(len(e.emitComps)))
	e.dnStk, e.dnScc = stk[:0], scc[:0]
	return true
}

// spliceSegs merges each emitted group and chains the results after
// insertAfter in forward topological order (emission order is reverse
// topological, so segments splice back to front).
//
//flowlint:hotpath
func (e *LaneEngine) spliceSegs(insertAfter int32) {
	segs := len(e.emitCStart) - 1
	e.segOrder = e.segOrder[:0]
	for s := segs - 1; s >= 0; s-- {
		seg := e.emitComps[e.emitCStart[s]:e.emitCStart[s+1]]
		c := seg[0]
		if len(seg) > 1 {
			c = e.mergeComps(seg)
		}
		e.segOrder = append(e.segOrder, c)
	}
	e.orderInsertBlockAfter(insertAfter, e.segOrder)
}

// push is the engine-side topological lane push: seed rows OR into
// their components' W-word masks, components propagate along the
// derived order (ancestors first), members copy their component's mask
// into their reach rows. A component whose mask is zero this sweep
// resets its members' rows unless they are known clean already — that
// lazily erases regions the mask changes carved off, keeping the
// matrix bit-identical to a fresh rebuild without a full Reset.
//
// Edges in the violation set are skipped by the ordered pass (they
// point backward, so their OR would land after the target was already
// emitted) and resolved afterwards by fixpointViolations; components
// whose masks grow there rewrite their member rows in a final patch
// pass. The composition is exact because reachability is the least
// fixpoint of monotone OR-propagation over active edges, independent of
// processing order — the ordered pass is merely the single-pass
// convergence fast path for the non-violated subgraph.
//
//flowlint:hotpath
func (e *LaneEngine) push(seeds []NodeID, seedBits *bitset.LaneMatrix, active bitset.Set, reach *bitset.LaneMatrix) {
	g := e.g
	W := seedBits.W
	compWide := e.compWide
	for k, v := range seeds {
		dst := compWide[int(e.comp[v])*W:]
		for j, w := range seedBits.Row(k) {
			dst[j] |= w
		}
	}
	for _, c := range e.orderSeq {
		base := int(c) * W
		row := compWide[base : base+W : base+W]
		var lanes uint64
		for _, w := range row {
			lanes |= w
		}
		if lanes == 0 {
			if !e.clean[c] {
				for v := e.memberHead[c]; v != -1; v = e.memberNext[v] {
					reach.ResetRow(int(v))
				}
				e.clean[c] = true
				e.prevAt[c] = 0
			}
			continue
		}
		same := !e.clean[c] && e.prevAt[c] == e.prevEpoch
		if same {
			for j, w := range row {
				if e.prevWide[base+j] != w {
					same = false
					break
				}
			}
		}
		e.clean[c] = false
		if same {
			// Members' rows already hold this exact mask from the previous
			// sweep; only the downstream ORs are needed.
			for v := e.memberHead[c]; v != -1; v = e.memberNext[v] {
				for _, id := range g.out[v] {
					if e.edgeSkip[id] != 0 {
						continue
					}
					dst := compWide[int(e.comp[g.edges[id].To])*W:]
					for j, w := range row {
						dst[j] |= w
					}
				}
			}
			continue
		}
		copy(e.prevWide[base:base+W], row)
		e.prevAt[c] = e.prevEpoch
		for v := e.memberHead[c]; v != -1; v = e.memberNext[v] {
			copy(reach.Row(int(v)), row)
			for _, id := range g.out[v] {
				if e.edgeSkip[id] != 0 {
					continue
				}
				dst := compWide[int(e.comp[g.edges[id].To])*W:]
				for j, w := range row {
					dst[j] |= w
				}
			}
		}
	}
	if len(e.vio) > 0 {
		e.fixpointViolations(active, W, reach)
	}
}

// fixpointViolations resolves the deferred order violations after the
// ordered pass: each violated edge's source-component mask is OR'd into
// its target's when bits are missing, growths propagate breadth-first
// through all active out-edges until stable, and every component that
// grew rewrites its member rows. The scan also compacts the set,
// dropping edges that turned off, became intra-component (a merge
// absorbed both endpoints), or became forward (a reorder repaired them
// as a side effect) — forward edges are dropped only after their
// one-off transfer, since the ordered pass skipped them this sweep.
//
//flowlint:hotpath
func (e *LaneEngine) fixpointViolations(active bitset.Set, W int, reach *bitset.LaneMatrix) {
	g := e.g
	compWide := e.compWide
	e.compEpoch++
	epoch := e.compEpoch
	e.grownQ = e.grownQ[:0]
	e.grown = e.grown[:0]
	kept := e.vio[:0]
	for _, id := range e.vio {
		ed := g.edges[id]
		cu, cv := e.comp[ed.From], e.comp[ed.To]
		if !active.Test(int(id)) || cu == cv {
			e.edgeSkip[id] &^= skipVio
			continue
		}
		src := compWide[int(cu)*W : int(cu)*W+W]
		dst := compWide[int(cv)*W : int(cv)*W+W]
		var missing uint64
		for j, w := range src {
			missing |= w &^ dst[j]
		}
		if missing != 0 {
			for j, w := range src {
				dst[j] |= w
			}
			if e.compMark[cv] != epoch {
				e.compMark[cv] = epoch
				e.grownQ = append(e.grownQ, cv)
			}
			if e.compIdxAt[cv] != epoch {
				e.compIdxAt[cv] = epoch
				e.grown = append(e.grown, cv)
			}
		}
		if e.orderKey[cu] < e.orderKey[cv] {
			e.edgeSkip[id] &^= skipVio
			continue
		}
		kept = append(kept, id)
	}
	e.vio = kept
	// Breadth-first closure over the components whose masks grew. The
	// worklist dedups with compMark while a component is queued and
	// clears the mark on dequeue, so a later regrowth re-enqueues it;
	// compIdxAt separately stamps ever-grown components exactly once for
	// the row patch pass.
	for qi := 0; qi < len(e.grownQ); qi++ {
		c := e.grownQ[qi]
		e.compMark[c] = 0
		base := int(c) * W
		row := compWide[base : base+W : base+W]
		for v := e.memberHead[c]; v != -1; v = e.memberNext[v] {
			for _, id := range g.out[v] {
				if !active.Test(int(id)) {
					continue
				}
				t := e.comp[g.edges[id].To]
				if t == c {
					continue
				}
				dst := compWide[int(t)*W:]
				var missing uint64
				for j, w := range row {
					missing |= w &^ dst[j]
				}
				if missing == 0 {
					continue
				}
				for j, w := range row {
					dst[j] |= w
				}
				if e.compMark[t] != epoch {
					e.compMark[t] = epoch
					e.grownQ = append(e.grownQ, t)
				}
				if e.compIdxAt[t] != epoch {
					e.compIdxAt[t] = epoch
					e.grown = append(e.grown, t)
				}
			}
		}
	}
	for _, c := range e.grown {
		base := int(c) * W
		row := compWide[base : base+W : base+W]
		// A grown mask is nonzero by construction (it absorbed missing
		// bits), so its members' rows are rewritten, not reset. The stamp
		// is refreshed with the grown mask: the rewrite leaves every
		// member row holding exactly this value.
		e.clean[c] = false
		copy(e.prevWide[base:base+W], row)
		e.prevAt[c] = e.prevEpoch
		for v := e.memberHead[c]; v != -1; v = e.memberNext[v] {
			copy(reach.Row(int(v)), row)
		}
	}
}

// linkMembers builds component c's member list from nodes and assigns
// their component ids.
//
//flowlint:hotpath
func (e *LaneEngine) linkMembers(c int32, members []NodeID) {
	prev := NodeID(-1)
	for _, v := range members {
		e.comp[v] = c
		if prev == -1 {
			e.memberHead[c] = v
		} else {
			e.memberNext[prev] = v
		}
		prev = v
	}
	e.memberNext[prev] = -1
	e.memberTail[c] = prev
	e.compSize[c] = int32(len(members))
	e.prevAt[c] = 0
}

// allocComp returns a fresh component id (recycled when possible) with
// an empty member list.
//
//flowlint:hotpath
func (e *LaneEngine) allocComp() int32 {
	var c int32
	if k := len(e.freeComps); k > 0 {
		c = e.freeComps[k-1]
		e.freeComps = e.freeComps[:k-1]
	} else {
		c = e.maxComp
		e.maxComp++
		e.ensureCompCap(int(e.maxComp))
	}
	e.memberHead[c] = -1
	e.memberTail[c] = -1
	e.clean[c] = false
	return c
}

// freeComp recycles a component id. The slot's stale fields are fully
// reinitialised on reuse.
//
//flowlint:hotpath
func (e *LaneEngine) freeComp(c int32) {
	e.freeComps = append(e.freeComps, c)
}

// orderRemove unlinks component c from the topological order list.
func (e *LaneEngine) orderRemove(c int32) {
	p, nx := e.orderPrev[c], e.orderNext[c]
	if p == -1 {
		e.orderHead = nx
	} else {
		e.orderNext[p] = nx
	}
	if nx == -1 {
		e.orderTail = p
	} else {
		e.orderPrev[nx] = p
	}
}

// orderInsertAfter links component c into the order right after
// `after` (-1 inserts at the head) and assigns it a key strictly
// between its new neighbours', renumbering the whole list in the rare
// case the midpoint gap is exhausted.
//
//flowlint:hotpath
func (e *LaneEngine) orderInsertAfter(after, c int32) {
	var nx int32
	if after == -1 {
		nx = e.orderHead
		e.orderHead = c
	} else {
		nx = e.orderNext[after]
		e.orderNext[after] = c
	}
	e.orderPrev[c] = after
	e.orderNext[c] = nx
	if nx == -1 {
		e.orderTail = c
	} else {
		e.orderPrev[nx] = c
	}
	var lo uint64
	if after != -1 {
		lo = e.orderKey[after]
	}
	hi := lo + 2*orderKeyGap
	if nx != -1 {
		hi = e.orderKey[nx]
	}
	if hi-lo < 2 {
		e.renumberKeys()
		return
	}
	e.orderKey[c] = lo + (hi-lo)/2
}

// renumberKeys reassigns evenly spaced keys along the order list.
//
// orderInsertBlockAfter splices comps, in sequence, into the order
// right after `after`, spreading their keys evenly across the gap to
// the old successor. One-at-a-time midpoint insertion halves the gap
// per comp, so a block reinsertion at a single point — which is what
// every Pearce-Kelly move and merge does — would hit an O(components)
// renumber every ~40 comps; the bulk splice pays at most one.
//
//flowlint:hotpath
//flowlint:hotpath
func (e *LaneEngine) orderInsertBlockAfter(after int32, comps []int32) {
	if len(comps) == 0 {
		return
	}
	var nx int32
	if after == -1 {
		nx = e.orderHead
	} else {
		nx = e.orderNext[after]
	}
	prev := after
	for _, c := range comps {
		if prev == -1 {
			e.orderHead = c
		} else {
			e.orderNext[prev] = c
		}
		e.orderPrev[c] = prev
		prev = c
	}
	last := comps[len(comps)-1]
	e.orderNext[last] = nx
	if nx == -1 {
		e.orderTail = last
	} else {
		e.orderPrev[nx] = last
	}
	var lo uint64
	if after != -1 {
		lo = e.orderKey[after]
	}
	hi := lo + 2*orderKeyGap*uint64(len(comps))
	if nx != -1 {
		hi = e.orderKey[nx]
	}
	step := (hi - lo) / uint64(len(comps)+1)
	if step == 0 {
		e.renumberKeys()
		return
	}
	k := lo
	for _, c := range comps {
		k += step
		e.orderKey[c] = k
	}
}

func (e *LaneEngine) renumberKeys() {
	var i uint64 = 1
	for c := e.orderHead; c != -1; c = e.orderNext[c] {
		e.orderKey[c] = i * orderKeyGap
		i++
		e.work++
	}
}

// sortByKey shell-sorts component ids in place by their order keys
// (allocation-free; the sorted block is typically small).
//
//flowlint:hotpath
func (e *LaneEngine) sortByKey(a []int32) {
	key := e.orderKey
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			c := a[i]
			j := i
			for ; j >= gap && key[a[j-gap]] > key[c]; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = c
		}
	}
}

// ensureCompCap grows the per-component arrays to hold at least n ids.
func (e *LaneEngine) ensureCompCap(n int) {
	if n <= len(e.memberHead) {
		return
	}
	if n < 2*len(e.memberHead) {
		n = 2 * len(e.memberHead)
	}
	grow := func(old []int32) []int32 {
		s := make([]int32, n)
		copy(s, old)
		return s
	}
	e.memberHead = append(make([]NodeID, 0, n), e.memberHead...)[:n]
	e.memberTail = append(make([]NodeID, 0, n), e.memberTail...)[:n]
	e.orderNext = grow(e.orderNext)
	e.orderPrev = grow(e.orderPrev)
	e.compIdx = grow(e.compIdx)
	e.compLow = grow(e.compLow)
	e.compSize = grow(e.compSize)
	e.orderKey = append(make([]uint64, 0, n), e.orderKey...)[:n]
	e.clean = append(make([]bool, 0, n), e.clean...)[:n]
	e.compMark = append(make([]uint32, 0, n), e.compMark...)[:n]
	e.bMark = append(make([]uint32, 0, n), e.bMark...)[:n]
	e.compIdxAt = append(make([]uint32, 0, n), e.compIdxAt...)[:n]
	e.prevAt = append(make([]uint32, 0, n), e.prevAt...)[:n]
}

// growDense returns buf resliced to n entries, reallocating when the
// capacity falls short. Contents are unspecified — pkMergeSegs
// overwrites every entry it reads.
func growDense(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	c := 2 * cap(buf)
	if c < n {
		c = n
	}
	return make([]int32, n, c)
}

// growDenseBool is growDense for the on-stack flags, which rely on the
// all-false resting state: fresh allocations start false and the
// Tarjan pops every flag it sets.
func growDenseBool(buf []bool, n int) []bool {
	if cap(buf) >= n {
		return buf[:n]
	}
	c := 2 * cap(buf)
	if c < n {
		c = n
	}
	return make([]bool, n, c)
}

// ensureNodeCap grows the per-node and per-edge arrays.
func (e *LaneEngine) ensureNodeCap(n, m int) {
	if n > len(e.memberNext) {
		e.memberNext = make([]NodeID, n)
		e.nodeIdx = make([]int32, n)
		e.nodeLow = make([]int32, n)
		e.nodeSeen = make([]uint32, n)
		e.nodeOnStk = make([]bool, n)
		e.nodeEpoch = 0
	}
	if m > len(e.flipParity) {
		e.flipParity = make([]uint8, m)
		e.edgeSkip = make([]uint8, m)
		e.vioUntil = make([]int64, m)
	}
}

// sameSeeds reports whether the cached seed slice matches the sweep's,
// element for element. The condensation depends on the seed set, so a
// changed seed list cannot reuse it.
//
//flowlint:hotpath
func sameSeeds(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
