package graph

import (
	"testing"
	"testing/quick"

	"infoflow/internal/rng"
)

func TestSCCSimpleCycle(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0) // cycle 0-1-2
	g.MustAddEdge(2, 3) // 3 downstream
	labels, count := g.StronglyConnectedComponents()
	if count != 2 {
		t.Fatalf("count = %d (labels %v)", count, labels)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("cycle split: %v", labels)
	}
	if labels[3] == labels[0] {
		t.Fatalf("downstream merged: %v", labels)
	}
}

func TestSCCDAGIsAllSingletons(t *testing.T) {
	r := rng.New(1)
	g := RandomDAG(r, 12, 30)
	_, count := g.StronglyConnectedComponents()
	if count != 12 {
		t.Fatalf("DAG components = %d", count)
	}
}

func TestSCCCompleteGraphIsOne(t *testing.T) {
	g := Complete(5)
	_, count := g.StronglyConnectedComponents()
	if count != 1 {
		t.Fatalf("complete graph components = %d", count)
	}
}

// TestSCCMatchesMutualReachability: u and v share a component iff each
// reaches the other.
func TestSCCMatchesMutualReachability(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := r.Intn(8) + 2
		m := r.Intn(n*(n-1) + 1)
		g := Random(r, n, m)
		labels, _ := g.StronglyConnectedComponents()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				mutual := g.HasPath(NodeID(u), NodeID(v), AllEdges) &&
					g.HasPath(NodeID(v), NodeID(u), AllEdges)
				if (labels[u] == labels[v]) != mutual {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCondensedDAGAcyclicAndEdgePreserving(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := rng.New(uint64(seed) + 555)
		n := r.Intn(10) + 2
		m := r.Intn(n*(n-1) + 1)
		g := Random(r, n, m)
		dag, labels := g.CondensedDAG()
		if !dag.IsAcyclic() {
			return false
		}
		// Every cross-component original edge appears in the DAG.
		for _, e := range g.Edges() {
			a, b := labels[e.From], labels[e.To]
			if a != b && !dag.HasEdge(NodeID(a), NodeID(b)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSCCLabelsReverseTopological(t *testing.T) {
	// Tarjan labels components in reverse topological order: every DAG
	// edge goes from a higher label to a lower one.
	r := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		g := Random(r, 10, 40)
		dag, _ := g.CondensedDAG()
		for _, e := range dag.Edges() {
			if e.From <= e.To {
				t.Fatalf("condensation edge %v not reverse-topological", e)
			}
		}
	}
}

func TestSCCDeepRecursionSafe(t *testing.T) {
	// A 50k-node path would overflow a recursive Tarjan; the iterative
	// version must handle it.
	g := Path(50000)
	_, count := g.StronglyConnectedComponents()
	if count != 50000 {
		t.Fatalf("path components = %d", count)
	}
}
