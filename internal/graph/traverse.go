package graph

// AllEdges is an edge predicate accepting every edge; passing it to the
// traversal functions yields plain graph reachability.
func AllEdges(EdgeID) bool { return true }

// Reachable returns the set of nodes reachable from sources by traversing
// only edges for which active returns true. Sources themselves are always
// included. This is exactly the derivation of an active-state from a
// pseudo-state in §III-A: i-active nodes are those reachable from the
// source set across i-active edges.
//
// The result is a dense boolean slice indexed by NodeID. Runs in
// O(n + m).
func (g *DiGraph) Reachable(sources []NodeID, active func(EdgeID) bool) []bool {
	seen := make([]bool, g.NumNodes())
	queue := make([]NodeID, 0, len(sources))
	for _, s := range sources {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	// Pop via an index head: re-slicing (queue = queue[1:]) walks the
	// backing array forward so append can never reuse the freed prefix,
	// forcing reallocations mid-traversal.
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, id := range g.out[v] {
			if !active(id) {
				continue
			}
			w := g.edges[id].To
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// HasPath reports whether sink is reachable from source across edges for
// which active returns true. It is Reachable with early exit, used as the
// flow indicator I(u, v; x) of Equation (5).
func (g *DiGraph) HasPath(source, sink NodeID, active func(EdgeID) bool) bool {
	if source == sink {
		return true
	}
	seen := make([]bool, g.NumNodes())
	seen[source] = true
	queue := []NodeID{source}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, id := range g.out[v] {
			if !active(id) {
				continue
			}
			w := g.edges[id].To
			if w == sink {
				return true
			}
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}

// NodesWithin returns the nodes at distance <= radius from focus,
// following edges out of each node (the direction information flows). The
// focus itself is included and the result is in BFS order.
func (g *DiGraph) NodesWithin(focus NodeID, radius int) []NodeID {
	return g.bfsWithin(focus, radius, false)
}

// NodesWithinUndirected returns the nodes at undirected distance <=
// radius from focus, treating each edge as bidirectional. This matches
// the paper's sub-graph selection "such that all users are no more than
// distance n from this focus".
func (g *DiGraph) NodesWithinUndirected(focus NodeID, radius int) []NodeID {
	return g.bfsWithin(focus, radius, true)
}

func (g *DiGraph) bfsWithin(focus NodeID, radius int, undirected bool) []NodeID {
	type item struct {
		v NodeID
		d int
	}
	seen := make([]bool, g.NumNodes())
	seen[focus] = true
	order := []NodeID{focus}
	queue := []item{{focus, 0}}
	push := func(w NodeID, d int) {
		if !seen[w] {
			seen[w] = true
			order = append(order, w)
			queue = append(queue, item{w, d})
		}
	}
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		if it.d == radius {
			continue
		}
		for _, id := range g.out[it.v] {
			push(g.edges[id].To, it.d+1)
		}
		if undirected {
			for _, id := range g.in[it.v] {
				push(g.edges[id].From, it.d+1)
			}
		}
	}
	return order
}

// TopoSort returns a topological order of the nodes, or ok=false if the
// graph has a cycle. Used by generators that need DAG structure and by
// tests of the exact evaluator.
func (g *DiGraph) TopoSort() (order []NodeID, ok bool) {
	indeg := make([]int, g.NumNodes())
	for _, e := range g.edges {
		indeg[e.To]++
	}
	queue := make([]NodeID, 0, g.NumNodes())
	for v := range indeg {
		if indeg[v] == 0 {
			queue = append(queue, NodeID(v))
		}
	}
	order = make([]NodeID, 0, g.NumNodes())
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		order = append(order, v)
		for _, id := range g.out[v] {
			w := g.edges[id].To
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order, len(order) == g.NumNodes()
}

// IsAcyclic reports whether the graph has no directed cycles.
func (g *DiGraph) IsAcyclic() bool {
	_, ok := g.TopoSort()
	return ok
}
