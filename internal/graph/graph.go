// Package graph provides the directed-graph substrate underlying every
// model in the infoflow library: an Independent Cascade Model is a
// directed graph whose nodes are information repositories and whose edges
// are routes information may traverse (§II of the paper).
//
// The representation is edge-centric: edges carry dense integer IDs in
// [0, NumEdges), because the samplers manipulate m-bit pseudo-states and
// per-edge weights indexed by EdgeID. Adjacency lists store edge IDs, so
// both the endpoints and any per-edge payload (activation probability,
// beta parameters, pseudo-state bit) are a single array lookup away.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node; IDs are dense in [0, NumNodes).
type NodeID = int32

// EdgeID identifies an edge; IDs are dense in [0, NumEdges) in insertion
// order.
type EdgeID = int32

// Edge is a directed edge From -> To.
type Edge struct {
	From, To NodeID
}

// DiGraph is a simple directed graph (no self-loops, no parallel edges).
// The zero value is an empty graph ready for use.
type DiGraph struct {
	edges []Edge
	out   [][]EdgeID // out[v] = IDs of edges leaving v
	in    [][]EdgeID // in[v] = IDs of edges entering v
	index map[Edge]EdgeID
}

// New returns a graph with n isolated nodes.
func New(n int) *DiGraph {
	g := &DiGraph{
		out:   make([][]EdgeID, n),
		in:    make([][]EdgeID, n),
		index: make(map[Edge]EdgeID),
	}
	return g
}

// NumNodes returns the number of nodes.
func (g *DiGraph) NumNodes() int { return len(g.out) }

// NumEdges returns the number of edges.
func (g *DiGraph) NumEdges() int { return len(g.edges) }

// AddNode appends a new isolated node and returns its ID.
func (g *DiGraph) AddNode() NodeID {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return NodeID(len(g.out) - 1)
}

// AddEdge inserts the edge u -> v and returns its ID. It returns an error
// for out-of-range endpoints, self-loops, and duplicate edges.
func (g *DiGraph) AddEdge(u, v NodeID) (EdgeID, error) {
	if err := g.checkNode(u); err != nil {
		return 0, err
	}
	if err := g.checkNode(v); err != nil {
		return 0, err
	}
	if u == v {
		return 0, fmt.Errorf("graph: self-loop on node %d", u)
	}
	e := Edge{u, v}
	if id, ok := g.index[e]; ok {
		return id, fmt.Errorf("graph: duplicate edge %d->%d", u, v)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, e)
	g.out[u] = append(g.out[u], id)
	g.in[v] = append(g.in[v], id)
	g.index[e] = id
	return id, nil
}

// MustAddEdge is AddEdge that panics on error; intended for construction
// of known-good graphs in tests and generators.
func (g *DiGraph) MustAddEdge(u, v NodeID) EdgeID {
	id, err := g.AddEdge(u, v)
	if err != nil {
		//flowlint:invariant Must* wrapper: the caller asserts the edge is valid and new
		panic(err)
	}
	return id
}

func (g *DiGraph) checkNode(v NodeID) error {
	if v < 0 || int(v) >= len(g.out) {
		return fmt.Errorf("graph: node %d out of range [0,%d)", v, len(g.out))
	}
	return nil
}

// Edge returns the endpoints of edge id. It panics on out-of-range IDs.
func (g *DiGraph) Edge(id EdgeID) Edge { return g.edges[id] }

// EdgeID returns the ID of edge u -> v if it exists.
func (g *DiGraph) EdgeID(u, v NodeID) (EdgeID, bool) {
	id, ok := g.index[Edge{u, v}]
	return id, ok
}

// HasEdge reports whether the edge u -> v exists.
func (g *DiGraph) HasEdge(u, v NodeID) bool {
	_, ok := g.index[Edge{u, v}]
	return ok
}

// OutEdges returns the IDs of edges leaving v. The returned slice is
// owned by the graph and must not be modified.
func (g *DiGraph) OutEdges(v NodeID) []EdgeID { return g.out[v] }

// InEdges returns the IDs of edges entering v. The returned slice is
// owned by the graph and must not be modified.
func (g *DiGraph) InEdges(v NodeID) []EdgeID { return g.in[v] }

// OutDegree returns the number of edges leaving v.
func (g *DiGraph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree returns the number of edges entering v.
func (g *DiGraph) InDegree(v NodeID) int { return len(g.in[v]) }

// Edges returns a copy of the edge list, indexed by EdgeID.
func (g *DiGraph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Parents returns the distinct nodes with an edge into v, sorted.
func (g *DiGraph) Parents(v NodeID) []NodeID {
	ps := make([]NodeID, 0, len(g.in[v]))
	for _, id := range g.in[v] {
		ps = append(ps, g.edges[id].From)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// Children returns the distinct nodes with an edge from v, sorted.
func (g *DiGraph) Children(v NodeID) []NodeID {
	cs := make([]NodeID, 0, len(g.out[v]))
	for _, id := range g.out[v] {
		cs = append(cs, g.edges[id].To)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}

// Clone returns a deep copy of g.
func (g *DiGraph) Clone() *DiGraph {
	c := New(g.NumNodes())
	for _, e := range g.edges {
		c.MustAddEdge(e.From, e.To)
	}
	return c
}

// Subgraph returns the subgraph induced by keep (any order, no
// duplicates), along with the mapping from new node IDs to original IDs.
// Edge IDs in the subgraph are fresh and dense. toNew maps original IDs
// to new ones (-1 for dropped nodes).
func (g *DiGraph) Subgraph(keep []NodeID) (sub *DiGraph, toOld []NodeID, toNew []NodeID) {
	toNew = make([]NodeID, g.NumNodes())
	for i := range toNew {
		toNew[i] = -1
	}
	toOld = make([]NodeID, len(keep))
	copy(toOld, keep)
	for newID, oldID := range toOld {
		if toNew[oldID] != -1 {
			//flowlint:invariant documented contract: the Subgraph keep set must not repeat nodes
			panic(fmt.Sprintf("graph: duplicate node %d in Subgraph keep set", oldID))
		}
		toNew[oldID] = NodeID(newID)
	}
	sub = New(len(keep))
	for _, e := range g.edges {
		u, v := toNew[e.From], toNew[e.To]
		if u >= 0 && v >= 0 {
			sub.MustAddEdge(u, v)
		}
	}
	return sub, toOld, toNew
}

// String implements fmt.Stringer with a compact structural description.
func (g *DiGraph) String() string {
	return fmt.Sprintf("DiGraph(n=%d, m=%d)", g.NumNodes(), g.NumEdges())
}
