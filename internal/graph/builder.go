package graph

import (
	"fmt"

	"infoflow/internal/rng"
)

// Random returns a graph with n nodes and m distinct directed edges
// chosen uniformly at random (no self-loops). This is the synthetic
// structure generator of §IV-A: "creates n nodes, and adds m random
// edges". It panics if m exceeds n(n-1).
func Random(r *rng.RNG, n, m int) *DiGraph {
	maxEdges := n * (n - 1)
	if m > maxEdges {
		//flowlint:invariant documented contract: the requested edge count must fit the graph
		panic(fmt.Sprintf("graph: cannot place %d edges on %d nodes (max %d)", m, n, maxEdges))
	}
	g := New(n)
	if m == 0 {
		return g
	}
	// For dense requests, sample by shuffling all possible edges; for
	// sparse ones, rejection-sample. The cutover keeps both paths fast.
	if m*3 >= maxEdges {
		all := make([]Edge, 0, maxEdges)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v {
					all = append(all, Edge{NodeID(u), NodeID(v)})
				}
			}
		}
		r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		for _, e := range all[:m] {
			g.MustAddEdge(e.From, e.To)
		}
		return g
	}
	for g.NumEdges() < m {
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
	}
	return g
}

// RandomDAG returns an acyclic graph with n nodes and m edges: edges are
// sampled uniformly among pairs (u, v) with u < v under a random node
// relabelling, so the topological order is hidden but guaranteed.
func RandomDAG(r *rng.RNG, n, m int) *DiGraph {
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		//flowlint:invariant documented contract: the requested edge count must fit a DAG
		panic(fmt.Sprintf("graph: cannot place %d acyclic edges on %d nodes (max %d)", m, n, maxEdges))
	}
	rank := r.Perm(n) // rank[v] = position of v in the hidden topo order
	g := New(n)
	for g.NumEdges() < m {
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		if u == v {
			continue
		}
		if rank[u] > rank[v] {
			u, v = v, u
		}
		if g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
	}
	return g
}

// PreferentialAttachment generates a follow-graph-like structure: nodes
// arrive one at a time and each creates edgesPerNode edges toward
// existing nodes chosen with probability proportional to in-degree + 1
// (so early nodes become hubs, giving the heavy-tailed degree
// distribution characteristic of social networks such as Twitter).
// Reciprocal edges are added independently with probability reciprocity.
func PreferentialAttachment(r *rng.RNG, n, edgesPerNode int, reciprocity float64) *DiGraph {
	if n < 2 {
		//flowlint:invariant documented contract: preferential attachment needs at least 2 nodes
		panic("graph: PreferentialAttachment needs at least 2 nodes")
	}
	g := New(n)
	// targets holds one entry per (in-degree + 1) unit of attractiveness;
	// sampling uniformly from it realises preferential attachment.
	targets := make([]NodeID, 0, n*(edgesPerNode+1))
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		k := edgesPerNode
		if k > v {
			k = v
		}
		added := make(map[NodeID]bool, k)
		for len(added) < k {
			t := targets[r.Intn(len(targets))]
			if t == NodeID(v) || added[t] {
				// Fall back to a uniform node to guarantee progress on
				// tiny prefixes where targets is saturated with duplicates.
				t = NodeID(r.Intn(v))
				if added[t] {
					continue
				}
			}
			added[t] = true
			g.MustAddEdge(NodeID(v), t)
			targets = append(targets, t)
			if r.Bernoulli(reciprocity) && !g.HasEdge(t, NodeID(v)) {
				g.MustAddEdge(t, NodeID(v))
			}
		}
		targets = append(targets, NodeID(v))
	}
	return g
}

// Complete returns the complete directed graph on n nodes (both
// directions of every pair), useful for exhaustive small-scale tests.
func Complete(n int) *DiGraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				g.MustAddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return g
}

// Path returns the directed path v0 -> v1 -> ... -> v(n-1).
func Path(n int) *DiGraph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(NodeID(v), NodeID(v+1))
	}
	return g
}
