package graph

import (
	"bytes"
	"testing"
	"testing/quick"

	"infoflow/internal/rng"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	id, err := g.AddEdge(0, 1)
	if err != nil || id != 0 {
		t.Fatalf("AddEdge = (%d, %v)", id, err)
	}
	id, err = g.AddEdge(1, 2)
	if err != nil || id != 1 {
		t.Fatalf("AddEdge = (%d, %v)", id, err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("sizes = (%d, %d)", g.NumNodes(), g.NumEdges())
	}
	if e := g.Edge(0); e.From != 0 || e.To != 1 {
		t.Fatalf("edge 0 = %+v", e)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if id, ok := g.EdgeID(1, 2); !ok || id != 1 {
		t.Fatalf("EdgeID = (%d, %v)", id, ok)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	if _, err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	g.MustAddEdge(0, 1)
	if _, err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := g.AddEdge(0, 5); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative accepted")
	}
}

func TestAddNode(t *testing.T) {
	g := New(0)
	if v := g.AddNode(); v != 0 {
		t.Fatalf("first node = %d", v)
	}
	if v := g.AddNode(); v != 1 {
		t.Fatalf("second node = %d", v)
	}
	g.MustAddEdge(0, 1)
	if g.NumEdges() != 1 {
		t.Fatal("edge after AddNode failed")
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(3, 1)
	if g.OutDegree(0) != 2 || g.InDegree(1) != 2 || g.InDegree(0) != 0 {
		t.Fatal("degrees wrong")
	}
	ps := g.Parents(1)
	if len(ps) != 2 || ps[0] != 0 || ps[1] != 3 {
		t.Fatalf("parents = %v", ps)
	}
	cs := g.Children(0)
	if len(cs) != 2 || cs[0] != 1 || cs[1] != 2 {
		t.Fatalf("children = %v", cs)
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	c := g.Clone()
	c.MustAddEdge(1, 2)
	if g.NumEdges() != 1 || c.NumEdges() != 2 {
		t.Fatal("clone not independent")
	}
}

func TestSubgraph(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(0, 4)
	sub, toOld, toNew := g.Subgraph([]NodeID{1, 2, 3})
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("subgraph = %v", sub)
	}
	// Edge 1->2 maps to 0->1; edge 2->3 maps to 1->2.
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Fatal("subgraph edges wrong")
	}
	if toOld[0] != 1 || toNew[2] != 1 || toNew[0] != -1 {
		t.Fatalf("mappings: toOld=%v toNew=%v", toOld, toNew)
	}
}

func TestEdgesCopy(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	es := g.Edges()
	es[0] = Edge{1, 0}
	if g.Edge(0).From != 0 {
		t.Fatal("Edges() exposed internal state")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := rng.New(1)
	g := Random(r, 20, 60)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes changed: %v vs %v", got, g)
	}
	for id := EdgeID(0); int(id) < g.NumEdges(); id++ {
		if got.Edge(id) != g.Edge(id) {
			t.Fatalf("edge %d changed", id)
		}
	}
}

func TestJSONRejectsBadGraph(t *testing.T) {
	for _, s := range []string{
		`{"nodes":2,"edges":[[0,0]]}`,       // self-loop
		`{"nodes":2,"edges":[[0,5]]}`,       // out of range
		`{"nodes":-1,"edges":[]}`,           // negative nodes
		`{"nodes":2,"edges":[[0,1],[0,1]]}`, // duplicate
	} {
		g := New(0)
		if err := g.UnmarshalJSON([]byte(s)); err == nil {
			t.Errorf("accepted invalid graph %s", s)
		}
	}
}

func TestEdgeIDsDenseProperty(t *testing.T) {
	r := rng.New(2)
	err := quick.Check(func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		n := rr.Intn(15) + 2
		maxM := n * (n - 1)
		m := rr.Intn(maxM + 1)
		g := Random(r, n, m)
		if g.NumEdges() != m {
			return false
		}
		// Every edge ID round-trips through the index.
		for id := EdgeID(0); int(id) < m; id++ {
			e := g.Edge(id)
			got, ok := g.EdgeID(e.From, e.To)
			if !ok || got != id {
				return false
			}
		}
		// Degree sums match edge count.
		outSum, inSum := 0, 0
		for v := 0; v < n; v++ {
			outSum += g.OutDegree(NodeID(v))
			inSum += g.InDegree(NodeID(v))
		}
		return outSum == m && inSum == m
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
