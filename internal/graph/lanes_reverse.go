package graph

import (
	"infoflow/internal/bitset"
)

// This file is the reverse tier of the wide-lane reachability engine:
// the same two-pass sweep as ReachLanesWideInto — an iterative Tarjan
// condensation followed by a topological lane-mask push — but run over
// the graph's IN-edges, so lane masks propagate from each root to every
// node that can REACH it across active edges. One reverse sweep from a
// batch of up to 64*W sampled roots therefore materialises that many
// reverse-reachability (RR) sketch sets at once, which is exactly the
// kernel the RIS-style influence-maximization estimator needs: node u
// carries root lane L on return iff u ~> root_L in the sampled
// pseudo-state, i.e. iff u belongs to root_L's RR set.
//
// The reverse sweep deliberately reuses the graph's existing in-edge
// adjacency (g.in, maintained since construction) rather than
// materialising a transposed CSR per call; the Tarjan pass reads
// g.edges[id].From where the forward pass reads .To, and the SCC
// structure it discovers is identical to the forward condensation of
// the transposed graph (an SCC is direction-invariant; only the
// emission order flips to "ancestors in reverse orientation first").

// condenseReverseInto is condenseInto over in-edges: one iterative
// Tarjan pass over the subgraph of active edges REVERSE-reachable from
// roots, writing the SCC id of each reached node into comp (-1
// elsewhere), the nodes grouped by SCC in emission order into nodes,
// and the per-SCC offsets (plus an end sentinel) into starts. Tarjan
// emits SCCs descendants-in-reverse-orientation first, so iterating
// starts in reverse visits components ancestors (in the reverse
// orientation) first — the push order pushLanesWideReverse needs.
//
//flowlint:hotpath
func (g *DiGraph) condenseReverseInto(roots []NodeID, active bitset.Set, sc *Scratch, comp []int32, nodes []NodeID, starts []int32) ([]int32, []NodeID, []int32) {
	n := g.NumNodes()
	sc.beginCondense(n)
	if len(comp) < n {
		//flowlint:ignore hotpath -- grows once per scratch (or graph-size change), then reused for good
		comp = make([]int32, n)
	}
	comp = comp[:n]
	for i := range comp {
		comp[i] = -1
	}
	idx, low := sc.dfsIdx, sc.dfsLow
	onStack := sc.inq
	tstack := sc.back[:0]  // Tarjan's SCC stack
	dfsN := sc.queue[:0]   // DFS stack: frame f visits node dfsN[f]
	dfsE := sc.dfsEdge[:0] // ... with in-edge cursor dfsE[f]
	var next int32
	for _, root := range roots {
		if idx[root] != -1 {
			continue
		}
		idx[root], low[root] = next, next
		next++
		onStack.Set(int(root))
		tstack = append(tstack, root)
		dfsN = append(dfsN, root)
		dfsE = append(dfsE, 0)
		for len(dfsN) > 0 {
			f := len(dfsN) - 1
			v := dfsN[f]
			if ei := dfsE[f]; int(ei) < len(g.in[v]) {
				dfsE[f]++
				id := g.in[v][ei]
				if !active.Test(int(id)) {
					continue
				}
				w := g.edges[id].From
				if idx[w] == -1 {
					idx[w], low[w] = next, next
					next++
					onStack.Set(int(w))
					tstack = append(tstack, w)
					dfsN = append(dfsN, w)
					dfsE = append(dfsE, 0)
				} else if onStack.Test(int(w)) && low[v] > idx[w] {
					low[v] = idx[w]
				}
				continue
			}
			dfsN = dfsN[:f]
			dfsE = dfsE[:f]
			if f > 0 {
				if p := dfsN[f-1]; low[p] > low[v] {
					low[p] = low[v]
				}
			}
			if low[v] == idx[v] {
				c := int32(len(starts))
				starts = append(starts, int32(len(nodes)))
				for {
					w := tstack[len(tstack)-1]
					tstack = tstack[:len(tstack)-1]
					onStack.Clear(int(w))
					comp[w] = c
					nodes = append(nodes, w)
					if w == v {
						break
					}
				}
			}
		}
	}
	starts = append(starts, int32(len(nodes)))
	sc.back = tstack[:0]
	sc.queue = dfsN[:0]
	sc.dfsEdge = dfsE[:0]
	return comp, nodes, starts
}

// pushLanesWideReverse propagates W-word lane masks over a reverse
// condensation: compWide (one W-word row per SCC, zeroed by the caller)
// is seeded from roots/rootBits, then components are visited in reverse
// emission order, each reached node's reach row overwritten with its
// component's mask and every active IN-edge ORing the mask into the
// source node's component. Each active edge within the condensed region
// is touched exactly once.
//
//flowlint:hotpath
func (g *DiGraph) pushLanesWideReverse(roots []NodeID, rootBits *bitset.LaneMatrix, active bitset.Set, comp []int32, nodes []NodeID, starts []int32, compWide []uint64, reach *bitset.LaneMatrix) {
	W := rootBits.W
	for k, v := range roots {
		src := rootBits.Row(k)
		dst := compWide[int(comp[v])*W:]
		for j, w := range src {
			dst[j] |= w
		}
	}
	for c := len(starts) - 2; c >= 0; c-- {
		row := compWide[c*W : c*W+W : c*W+W]
		var lanes uint64
		for _, w := range row {
			lanes |= w
		}
		if lanes == 0 {
			continue
		}
		for i := starts[c]; i < starts[c+1]; i++ {
			v := nodes[i]
			copy(reach.Row(int(v)), row)
			for _, id := range g.in[v] {
				if !active.Test(int(id)) {
					continue
				}
				dst := compWide[int(comp[g.edges[id].From])*W:]
				for j, w := range row {
					dst[j] |= w
				}
			}
		}
	}
}

// ReachLanesWideReverseInto is the reverse-orientation counterpart of
// ReachLanesWideInto: root roots[k] is OR-seeded with the W-word lane
// row rootBits.Row(k), and on return reach.Row(u) has lane bit L set
// iff u can reach (across edges whose bit in active is set) some node
// seeded with L — every root counting as reaching itself. Equivalently,
// lane L of the result is the reverse-reachability set of the nodes
// carrying L, which is bit-for-bit what the forward sweep computes on
// the transposed graph (same node IDs, each edge u->v re-added as
// v->u under the same EdgeID). One sweep answers up to 64*rootBits.W
// RR-set queries; lane assignment is the caller's, and shared or merged
// lanes are legal exactly as in the forward sweep. reach is resized to
// (NumNodes, rootBits.W) and overwritten. If sc is nil a temporary
// Scratch is allocated.
//
//flowlint:hotpath
func (g *DiGraph) ReachLanesWideReverseInto(roots []NodeID, rootBits *bitset.LaneMatrix, active bitset.Set, sc *Scratch, reach *bitset.LaneMatrix) {
	n := g.NumNodes()
	if sc == nil {
		sc = tempScratch(n)
	}
	W := rootBits.W
	if reach.Rows != n || reach.W != W {
		//flowlint:ignore hotpath -- documented cold fallback on first use or shape change; steady-state callers keep the shape
		reach.Resize(n, W)
	} else {
		reach.Reset()
	}
	comp, nodes, starts := g.condenseReverseInto(roots, active, sc, sc.comp, sc.sccNodes[:0], sc.sccStart[:0])
	sc.comp = comp
	compWide := growCompWide(sc.compWide, (len(starts)-1)*W)
	g.pushLanesWideReverse(roots, rootBits, active, comp, nodes, starts, compWide, reach)
	sc.sccNodes = nodes[:0]
	sc.sccStart = starts[:0]
	sc.compWide = compWide[:0]
}
