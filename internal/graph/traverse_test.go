package graph

import (
	"testing"
	"testing/quick"

	"infoflow/internal/rng"
)

func TestReachableAllEdges(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	seen := g.Reachable([]NodeID{0}, AllEdges)
	want := []bool{true, true, true, false, false}
	for v, w := range want {
		if seen[v] != w {
			t.Fatalf("seen = %v", seen)
		}
	}
}

func TestReachableMultiSource(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	seen := g.Reachable([]NodeID{0, 2}, AllEdges)
	for v := 0; v < 4; v++ {
		if !seen[v] {
			t.Fatalf("node %d not reached", v)
		}
	}
}

func TestReachableRespectsMask(t *testing.T) {
	g := New(3)
	e01 := g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	seen := g.Reachable([]NodeID{0}, func(id EdgeID) bool { return id != e01 })
	if seen[1] || seen[2] {
		t.Fatalf("masked edge traversed: %v", seen)
	}
}

func TestHasPath(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	if !g.HasPath(0, 2, AllEdges) {
		t.Error("path 0->2 missed")
	}
	if g.HasPath(2, 0, AllEdges) {
		t.Error("reverse path invented")
	}
	if !g.HasPath(3, 3, AllEdges) {
		t.Error("trivial self path missed")
	}
}

func TestHasPathCycle(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	g.MustAddEdge(1, 2)
	if !g.HasPath(0, 2, AllEdges) {
		t.Error("cycle broke reachability")
	}
	if g.HasPath(2, 1, AllEdges) {
		t.Error("bogus path through cycle")
	}
}

func TestHasPathMatchesReachable(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := r.Intn(12) + 2
		m := r.Intn(n*(n-1) + 1)
		g := Random(r, n, m)
		// Random edge mask.
		mask := make([]bool, m)
		for i := range mask {
			mask[i] = r.Bernoulli(0.5)
		}
		active := func(id EdgeID) bool { return mask[id] }
		u := NodeID(r.Intn(n))
		seen := g.Reachable([]NodeID{u}, active)
		for v := 0; v < n; v++ {
			if g.HasPath(u, NodeID(v), active) != seen[v] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNodesWithin(t *testing.T) {
	g := Path(5) // 0->1->2->3->4
	got := g.NodesWithin(1, 2)
	want := map[NodeID]bool{1: true, 2: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("NodesWithin = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected node %d", v)
		}
	}
}

func TestNodesWithinUndirected(t *testing.T) {
	g := Path(5)
	got := g.NodesWithinUndirected(2, 1)
	want := map[NodeID]bool{1: true, 2: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("NodesWithinUndirected = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected node %d", v)
		}
	}
}

func TestNodesWithinZeroRadius(t *testing.T) {
	g := Complete(4)
	got := g.NodesWithin(2, 0)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("radius 0 = %v", got)
	}
}

func TestTopoSort(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("DAG reported cyclic")
	}
	pos := make(map[NodeID]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("order %v violates edge %v", order, e)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	if _, ok := g.TopoSort(); ok {
		t.Fatal("cycle not detected")
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic wrong")
	}
}

func TestRandomDAGIsAcyclic(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := r.Intn(15) + 2
		m := r.Intn(n*(n-1)/2 + 1)
		g := RandomDAG(r, n, m)
		return g.NumEdges() == m && g.IsAcyclic()
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	r := rng.New(9)
	g := PreferentialAttachment(r, 500, 3, 0.2)
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() < 3*497 {
		t.Fatalf("edges = %d, too few", g.NumEdges())
	}
	// Heavy tail: the maximum in-degree should far exceed the mean.
	maxIn, sumIn := 0, 0
	for v := 0; v < 500; v++ {
		d := g.InDegree(NodeID(v))
		sumIn += d
		if d > maxIn {
			maxIn = d
		}
	}
	mean := float64(sumIn) / 500
	if float64(maxIn) < 4*mean {
		t.Errorf("max in-degree %d not heavy-tailed vs mean %.1f", maxIn, mean)
	}
}

func TestCompleteAndPath(t *testing.T) {
	c := Complete(4)
	if c.NumEdges() != 12 {
		t.Fatalf("complete edges = %d", c.NumEdges())
	}
	p := Path(4)
	if p.NumEdges() != 3 || !p.HasPath(0, 3, AllEdges) {
		t.Fatal("path graph wrong")
	}
}

func BenchmarkReachable(b *testing.B) {
	r := rng.New(1)
	g := Random(r, 6000, 14000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reachable([]NodeID{0}, AllEdges)
	}
}
