package graph

import (
	"infoflow/internal/bitset"
)

// This file is the wide tier of the bit-parallel reachability engine:
// where lanes.go carries one uint64 of lanes per node (64 queries per
// sweep), here every node carries a W-word row of a bitset.LaneMatrix,
// so one sweep over one sampled pseudo-state answers up to 64*W
// single-source reachability queries. The sweep itself is the same
// two-pass structure as ReachLanesInto — an iterative Tarjan
// condensation of the active subgraph followed by a topological
// lane-mask push — but each touched edge ORs W words instead of one.
//
// On top of the one-shot sweep, LaneEngine amortises the condensation
// across consecutive sweeps of a slowly changing mask: between thinned
// Metropolis-Hastings samples only a handful of accepted flips alter
// the active set, and most of those provably cannot change the
// condensation's structure, so the engine replays the cached component
// order and pays only the push pass.

// condenseInto runs one iterative Tarjan pass over the subgraph of
// active edges reachable from seeds, writing the SCC id of each reached
// node into comp (-1 elsewhere), the nodes grouped by SCC in emission
// order into nodes, and the per-SCC offsets (plus an end sentinel) into
// starts. Tarjan emits SCCs descendants first, so iterating the starts
// in reverse visits components in topological order, ancestors before
// descendants. comp is grown and refilled with -1 here; nodes and
// starts are appended to from length zero. All three are returned (the
// caller's buffers, or their replacements).
//
//flowlint:hotpath
func (g *DiGraph) condenseInto(seeds []NodeID, active bitset.Set, sc *Scratch, comp []int32, nodes []NodeID, starts []int32) ([]int32, []NodeID, []int32) {
	n := g.NumNodes()
	sc.beginCondense(n)
	if len(comp) < n {
		//flowlint:ignore hotpath -- grows once per engine (or graph-size change), then reused for good
		comp = make([]int32, n)
	}
	comp = comp[:n]
	for i := range comp {
		comp[i] = -1
	}
	idx, low := sc.dfsIdx, sc.dfsLow
	onStack := sc.inq
	tstack := sc.back[:0]  // Tarjan's SCC stack
	dfsN := sc.queue[:0]   // DFS stack: frame f visits node dfsN[f]
	dfsE := sc.dfsEdge[:0] // ... with out-edge cursor dfsE[f]
	var next int32
	for _, root := range seeds {
		if idx[root] != -1 {
			continue
		}
		idx[root], low[root] = next, next
		next++
		onStack.Set(int(root))
		tstack = append(tstack, root)
		dfsN = append(dfsN, root)
		dfsE = append(dfsE, 0)
		for len(dfsN) > 0 {
			f := len(dfsN) - 1
			v := dfsN[f]
			if ei := dfsE[f]; int(ei) < len(g.out[v]) {
				dfsE[f]++
				id := g.out[v][ei]
				if !active.Test(int(id)) {
					continue
				}
				w := g.edges[id].To
				if idx[w] == -1 {
					idx[w], low[w] = next, next
					next++
					onStack.Set(int(w))
					tstack = append(tstack, w)
					dfsN = append(dfsN, w)
					dfsE = append(dfsE, 0)
				} else if onStack.Test(int(w)) && low[v] > idx[w] {
					low[v] = idx[w]
				}
				continue
			}
			dfsN = dfsN[:f]
			dfsE = dfsE[:f]
			if f > 0 {
				if p := dfsN[f-1]; low[p] > low[v] {
					low[p] = low[v]
				}
			}
			if low[v] == idx[v] {
				c := int32(len(starts))
				starts = append(starts, int32(len(nodes)))
				for {
					w := tstack[len(tstack)-1]
					tstack = tstack[:len(tstack)-1]
					onStack.Clear(int(w))
					comp[w] = c
					nodes = append(nodes, w)
					if w == v {
						break
					}
				}
			}
		}
	}
	starts = append(starts, int32(len(nodes)))
	sc.back = tstack[:0]
	sc.queue = dfsN[:0]
	sc.dfsEdge = dfsE[:0]
	return comp, nodes, starts
}

// pushLanesWide propagates W-word lane masks over a condensation in
// topological order: compWide (one W-word row per SCC, zeroed by the
// caller) is seeded from seeds/seedBits, then components are visited
// ancestors first, each reached node's reach row overwritten with its
// component's mask and every active out-edge ORing the mask into the
// target component. Each active edge within the condensed region is
// touched exactly once here.
//
// Rows of components no lane reaches are left alone when zeroStale is
// false (a freshly cleared reach matrix) and explicitly re-zeroed when
// it is true (a replayed matrix whose region rows may hold the previous
// sweep's masks). Rows outside the region are never written: the caller
// guarantees they are already zero.
//
//flowlint:hotpath
func (g *DiGraph) pushLanesWide(seeds []NodeID, seedBits *bitset.LaneMatrix, active bitset.Set, comp []int32, nodes []NodeID, starts []int32, compWide []uint64, reach *bitset.LaneMatrix, zeroStale bool) {
	W := seedBits.W
	for k, v := range seeds {
		src := seedBits.Row(k)
		dst := compWide[int(comp[v])*W:]
		for j, w := range src {
			dst[j] |= w
		}
	}
	for c := len(starts) - 2; c >= 0; c-- {
		row := compWide[c*W : c*W+W : c*W+W]
		var lanes uint64
		for _, w := range row {
			lanes |= w
		}
		if lanes == 0 {
			if zeroStale {
				for i := starts[c]; i < starts[c+1]; i++ {
					reach.ResetRow(int(nodes[i]))
				}
			}
			continue
		}
		for i := starts[c]; i < starts[c+1]; i++ {
			v := nodes[i]
			copy(reach.Row(int(v)), row)
			for _, id := range g.out[v] {
				if !active.Test(int(id)) {
					continue
				}
				dst := compWide[int(comp[g.edges[id].To])*W:]
				for j, w := range row {
					dst[j] |= w
				}
			}
		}
	}
}

// growCompWide returns buf resliced (and zeroed) to hold words uint64s,
// growing it when the capacity falls short.
//
//flowlint:hotpath
func growCompWide(buf []uint64, words int) []uint64 {
	if cap(buf) < words {
		// Geometric headroom: the component count creeps upward between
		// flush rebuilds, and an exact-fit allocation here would turn
		// every new high-water mark into a fresh allocation.
		c := 2 * cap(buf)
		if c < words {
			c = words
		}
		//flowlint:ignore hotpath -- grows to the SCC-count high-water mark, then reused for good
		return make([]uint64, words, c)
	}
	buf = buf[:words]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// growPrevWide returns buf grown to hold at least words uint64s,
// preserving existing contents — validity of each component's stored
// mask is tracked separately (LaneEngine.prevAt), so stale words are
// harmless.
//
//flowlint:hotpath
func growPrevWide(buf []uint64, words int) []uint64 {
	if len(buf) >= words {
		return buf
	}
	if cap(buf) >= words {
		// The region past the old length is still zero from the original
		// allocation; validity is tracked per component regardless.
		return buf[:cap(buf)]
	}
	c := 2 * cap(buf)
	if c < words {
		c = words
	}
	//flowlint:ignore hotpath -- grows to the SCC-count high-water mark, then reused for good
	nb := make([]uint64, c)
	copy(nb, buf)
	return nb
}

// ReachLanesWideInto is the W-word generalisation of ReachLanesInto:
// seed node seeds[k] is OR-seeded with the W-word lane row seedBits.Row(k),
// and on return reach.Row(v) has lane bit L set iff v is reachable
// (across edges whose bit in active is set) from some node seeded with
// L — every seed counting as reaching itself. One sweep answers up to
// 64*seedBits.W single-source reachability queries; lane assignment is
// the caller's, and shared or merged lanes are legal exactly as in the
// one-word sweep. reach is resized to (NumNodes, seedBits.W) and
// overwritten. If sc is nil a temporary Scratch is allocated.
//
//flowlint:hotpath
func (g *DiGraph) ReachLanesWideInto(seeds []NodeID, seedBits *bitset.LaneMatrix, active bitset.Set, sc *Scratch, reach *bitset.LaneMatrix) {
	n := g.NumNodes()
	if sc == nil {
		sc = tempScratch(n)
	}
	W := seedBits.W
	if reach.Rows != n || reach.W != W {
		//flowlint:ignore hotpath -- documented cold fallback on first use or shape change; steady-state callers keep the shape
		reach.Resize(n, W)
	} else {
		reach.Reset()
	}
	comp, nodes, starts := g.condenseInto(seeds, active, sc, sc.comp, sc.sccNodes[:0], sc.sccStart[:0])
	sc.comp = comp
	compWide := growCompWide(sc.compWide, (len(starts)-1)*W)
	g.pushLanesWide(seeds, seedBits, active, comp, nodes, starts, compWide, reach, false)
	sc.sccNodes = nodes[:0]
	sc.sccStart = starts[:0]
	sc.compWide = compWide[:0]
}
