package graph

import (
	"math/bits"

	"infoflow/internal/bitset"
)

// This file is the wide tier of the bit-parallel reachability engine:
// where lanes.go carries one uint64 of lanes per node (64 queries per
// sweep), here every node carries a W-word row of a bitset.LaneMatrix,
// so one sweep over one sampled pseudo-state answers up to 64*W
// single-source reachability queries. The sweep itself is the same
// two-pass structure as ReachLanesInto — an iterative Tarjan
// condensation of the active subgraph followed by a topological
// lane-mask push — but each touched edge ORs W words instead of one.
//
// On top of the one-shot sweep, LaneEngine amortises the condensation
// across consecutive sweeps of a slowly changing mask: between thinned
// Metropolis-Hastings samples only a handful of accepted flips alter
// the active set, and most of those provably cannot change the
// condensation's structure, so the engine replays the cached component
// order and pays only the push pass.

// condenseInto runs one iterative Tarjan pass over the subgraph of
// active edges reachable from seeds, writing the SCC id of each reached
// node into comp (-1 elsewhere), the nodes grouped by SCC in emission
// order into nodes, and the per-SCC offsets (plus an end sentinel) into
// starts. Tarjan emits SCCs descendants first, so iterating the starts
// in reverse visits components in topological order, ancestors before
// descendants. comp is grown and refilled with -1 here; nodes and
// starts are appended to from length zero. All three are returned (the
// caller's buffers, or their replacements).
//
//flowlint:hotpath
func (g *DiGraph) condenseInto(seeds []NodeID, active bitset.Set, sc *Scratch, comp []int32, nodes []NodeID, starts []int32) ([]int32, []NodeID, []int32) {
	n := g.NumNodes()
	sc.beginCondense(n)
	if len(comp) < n {
		//flowlint:ignore hotpath -- grows once per engine (or graph-size change), then reused for good
		comp = make([]int32, n)
	}
	comp = comp[:n]
	for i := range comp {
		comp[i] = -1
	}
	idx, low := sc.dfsIdx, sc.dfsLow
	onStack := sc.inq
	tstack := sc.back[:0]  // Tarjan's SCC stack
	dfsN := sc.queue[:0]   // DFS stack: frame f visits node dfsN[f]
	dfsE := sc.dfsEdge[:0] // ... with out-edge cursor dfsE[f]
	var next int32
	for _, root := range seeds {
		if idx[root] != -1 {
			continue
		}
		idx[root], low[root] = next, next
		next++
		onStack.Set(int(root))
		tstack = append(tstack, root)
		dfsN = append(dfsN, root)
		dfsE = append(dfsE, 0)
		for len(dfsN) > 0 {
			f := len(dfsN) - 1
			v := dfsN[f]
			if ei := dfsE[f]; int(ei) < len(g.out[v]) {
				dfsE[f]++
				id := g.out[v][ei]
				if !active.Test(int(id)) {
					continue
				}
				w := g.edges[id].To
				if idx[w] == -1 {
					idx[w], low[w] = next, next
					next++
					onStack.Set(int(w))
					tstack = append(tstack, w)
					dfsN = append(dfsN, w)
					dfsE = append(dfsE, 0)
				} else if onStack.Test(int(w)) && low[v] > idx[w] {
					low[v] = idx[w]
				}
				continue
			}
			dfsN = dfsN[:f]
			dfsE = dfsE[:f]
			if f > 0 {
				if p := dfsN[f-1]; low[p] > low[v] {
					low[p] = low[v]
				}
			}
			if low[v] == idx[v] {
				c := int32(len(starts))
				starts = append(starts, int32(len(nodes)))
				for {
					w := tstack[len(tstack)-1]
					tstack = tstack[:len(tstack)-1]
					onStack.Clear(int(w))
					comp[w] = c
					nodes = append(nodes, w)
					if w == v {
						break
					}
				}
			}
		}
	}
	starts = append(starts, int32(len(nodes)))
	sc.back = tstack[:0]
	sc.queue = dfsN[:0]
	sc.dfsEdge = dfsE[:0]
	return comp, nodes, starts
}

// pushLanesWide propagates W-word lane masks over a condensation in
// topological order: compWide (one W-word row per SCC, zeroed by the
// caller) is seeded from seeds/seedBits, then components are visited
// ancestors first, each reached node's reach row overwritten with its
// component's mask and every active out-edge ORing the mask into the
// target component. Each active edge within the condensed region is
// touched exactly once here.
//
// Rows of components no lane reaches are left alone when zeroStale is
// false (a freshly cleared reach matrix) and explicitly re-zeroed when
// it is true (a replayed matrix whose region rows may hold the previous
// sweep's masks). Rows outside the region are never written: the caller
// guarantees they are already zero.
//
//flowlint:hotpath
func (g *DiGraph) pushLanesWide(seeds []NodeID, seedBits *bitset.LaneMatrix, active bitset.Set, comp []int32, nodes []NodeID, starts []int32, compWide []uint64, reach *bitset.LaneMatrix, zeroStale bool) {
	W := seedBits.W
	for k, v := range seeds {
		src := seedBits.Row(k)
		dst := compWide[int(comp[v])*W:]
		for j, w := range src {
			dst[j] |= w
		}
	}
	for c := len(starts) - 2; c >= 0; c-- {
		row := compWide[c*W : c*W+W : c*W+W]
		var lanes uint64
		for _, w := range row {
			lanes |= w
		}
		if lanes == 0 {
			if zeroStale {
				for i := starts[c]; i < starts[c+1]; i++ {
					reach.ResetRow(int(nodes[i]))
				}
			}
			continue
		}
		for i := starts[c]; i < starts[c+1]; i++ {
			v := nodes[i]
			copy(reach.Row(int(v)), row)
			for _, id := range g.out[v] {
				if !active.Test(int(id)) {
					continue
				}
				dst := compWide[int(comp[g.edges[id].To])*W:]
				for j, w := range row {
					dst[j] |= w
				}
			}
		}
	}
}

// growCompWide returns buf resliced (and zeroed) to hold words uint64s,
// growing it when the capacity falls short.
//
//flowlint:hotpath
func growCompWide(buf []uint64, words int) []uint64 {
	if cap(buf) < words {
		//flowlint:ignore hotpath -- grows to the SCC-count high-water mark, then reused for good
		return make([]uint64, words)
	}
	buf = buf[:words]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// ReachLanesWideInto is the W-word generalisation of ReachLanesInto:
// seed node seeds[k] is OR-seeded with the W-word lane row seedBits.Row(k),
// and on return reach.Row(v) has lane bit L set iff v is reachable
// (across edges whose bit in active is set) from some node seeded with
// L — every seed counting as reaching itself. One sweep answers up to
// 64*seedBits.W single-source reachability queries; lane assignment is
// the caller's, and shared or merged lanes are legal exactly as in the
// one-word sweep. reach is resized to (NumNodes, seedBits.W) and
// overwritten. If sc is nil a temporary Scratch is allocated.
//
//flowlint:hotpath
func (g *DiGraph) ReachLanesWideInto(seeds []NodeID, seedBits *bitset.LaneMatrix, active bitset.Set, sc *Scratch, reach *bitset.LaneMatrix) {
	n := g.NumNodes()
	if sc == nil {
		sc = tempScratch(n)
	}
	W := seedBits.W
	if reach.Rows != n || reach.W != W {
		//flowlint:ignore hotpath -- documented cold fallback on first use or shape change; steady-state callers keep the shape
		reach.Resize(n, W)
	} else {
		reach.Reset()
	}
	comp, nodes, starts := g.condenseInto(seeds, active, sc, sc.comp, sc.sccNodes[:0], sc.sccStart[:0])
	sc.comp = comp
	compWide := growCompWide(sc.compWide, (len(starts)-1)*W)
	g.pushLanesWide(seeds, seedBits, active, comp, nodes, starts, compWide, reach, false)
	sc.sccNodes = nodes[:0]
	sc.sccStart = starts[:0]
	sc.compWide = compWide[:0]
}

// LaneEngine caches the SCC condensation of (active mask, seed set)
// across wide-lane sweeps and replays it when the mask changes it saw
// cannot have altered the condensation. It exists for the thinned
// Metropolis-Hastings sampling loop, where consecutive sweeps differ by
// a handful of accepted single-edge flips: a replayed sweep skips the
// Tarjan pass entirely and pays only the topological push — O(active
// edges in the condensed region) instead of O(Tarjan + push).
//
// A recorded flip of edge (u, v) is structure-preserving iff:
//
//   - turned ON with u outside the condensed region: nothing reaches u,
//     so the edge is never traversed;
//   - turned ON with comp[u] == comp[v]: an intra-SCC edge adds no
//     reachability and no cycle;
//   - turned ON with both endpoints in the region and comp[u] emitted
//     after comp[v] (comp ids are Tarjan emission order, descendants
//     first): the edge agrees with the cached topological order, so it
//     cannot merge SCCs — any new cycle would need some edge pointing
//     the other way — and it cannot grow the region, v being reachable
//     already. The push pass reads the live mask, so the lanes it now
//     carries propagate correctly;
//   - turned OFF with u outside the region: the edge was never
//     traversed, so removing it changes nothing.
//
// Every other flip (removal inside the region, insertion reaching an
// unreached node or pointing against the cached order) forces a full
// recompute, as does any change of seed set. As a guard against
// unreported mutation, the engine keeps a position-mixed XOR signature
// of the active mask, updated incrementally per recorded flip; a replay
// whose expected signature disagrees with the live mask's falls back to
// a full recompute. This is the differential invariant backing the
// reuse path: tracked flips and the live mask must tell the same story,
// or the cache is not trusted.
//
// The reach matrix handed to Sweep must be the same buffer sweep over
// sweep: replays rewrite only rows inside the condensed region and rely
// on rows outside it still being zero from the last full recompute. A
// LaneEngine is not safe for concurrent use.
type LaneEngine struct {
	g *DiGraph

	valid  bool
	seeds  []NodeID // seed set of the cached condensation
	comp   []int32
	nodes  []NodeID
	starts []int32
	sig    uint64 // expected maskSig of the active mask

	compWide []uint64

	rebuilds int64
	replays  int64
}

// NewLaneEngine returns an engine for g with an empty cache.
func NewLaneEngine(g *DiGraph) *LaneEngine { return &LaneEngine{g: g} }

// Invalidate drops the cached condensation; the next Sweep recomputes
// it. Call it when the active mask may have changed in ways not
// reported to Sweep (the signature guard would catch the drift anyway,
// but an explicit invalidation documents the boundary and skips the
// doomed safety scan).
func (e *LaneEngine) Invalidate() { e.valid = false }

// Rebuilds returns the number of sweeps that recomputed the
// condensation; Replays the number that reused it.
func (e *LaneEngine) Rebuilds() int64 { return e.rebuilds }

// Replays returns the number of sweeps that reused the cached
// condensation.
func (e *LaneEngine) Replays() int64 { return e.replays }

// maskSig folds the active mask into a position-mixed XOR signature:
// flipping bit b of word i toggles exactly flipSig's contribution for
// that edge, so the signature updates incrementally per flip.
//
//flowlint:hotpath
func maskSig(active bitset.Set) uint64 {
	var h uint64
	for i, w := range active {
		h ^= bits.RotateLeft64(w, i&63)
	}
	return h
}

// flipSig is the signature contribution of edge id's bit.
//
//flowlint:hotpath
func flipSig(id EdgeID) uint64 {
	return bits.RotateLeft64(1<<(uint(id)&63), (int(id)>>6)&63)
}

// Sweep computes the same result as ReachLanesWideInto for the current
// active mask, reusing the cached condensation when possible. flips
// lists the edges whose activity bit was toggled since the previous
// Sweep, in any order, with repeated entries cancelling (a double flip
// is a net no-op but may still conservatively force a recompute);
// flipsComplete reports whether that list is exhaustive — pass false
// whenever tracking was interrupted or overflowed, which forces a full
// recompute. reach must be the same buffer across sweeps (see the type
// comment). If sc is nil a temporary Scratch is allocated.
//
//flowlint:hotpath
func (e *LaneEngine) Sweep(seeds []NodeID, seedBits *bitset.LaneMatrix, active bitset.Set, flips []EdgeID, flipsComplete bool, sc *Scratch, reach *bitset.LaneMatrix) {
	g := e.g
	n := g.NumNodes()
	if sc == nil {
		sc = tempScratch(n)
	}
	W := seedBits.W
	resized := reach.Rows != n || reach.W != W
	if resized {
		//flowlint:ignore hotpath -- documented cold fallback on first use or shape change; steady-state callers keep the shape
		reach.Resize(n, W)
	}
	replay := e.valid && flipsComplete && sameSeeds(e.seeds, seeds)
	if replay {
		for _, id := range flips {
			e.sig ^= flipSig(id)
			ed := g.edges[id]
			cu, cv := e.comp[ed.From], e.comp[ed.To]
			if active.Test(int(id)) {
				if cu != -1 && (cv == -1 || cu < cv) {
					replay = false
					break
				}
			} else if cu != -1 {
				replay = false
				break
			}
		}
		if replay && e.sig != maskSig(active) {
			replay = false
		}
	}
	if replay {
		e.replays++
	} else {
		e.rebuilds++
		if !resized {
			reach.Reset()
		}
		e.comp, e.nodes, e.starts = g.condenseInto(seeds, active, sc, e.comp, e.nodes[:0], e.starts[:0])
		e.seeds = append(e.seeds[:0], seeds...)
		e.sig = maskSig(active)
		e.valid = true
	}
	e.compWide = growCompWide(e.compWide, (len(e.starts)-1)*W)
	g.pushLanesWide(seeds, seedBits, active, e.comp, e.nodes, e.starts, e.compWide, reach, replay)
}

// sameSeeds reports whether the cached seed slice matches the sweep's,
// element for element. The condensation depends on the seed set, so a
// changed seed list cannot reuse it.
//
//flowlint:hotpath
func sameSeeds(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
