package graph_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"infoflow/internal/graph"
)

// fuzzNodeLimit skips inputs whose declared node count would make the
// decoder allocate adjacency structures wildly out of proportion to the
// input size — a memory-amplification hazard, not a parsing bug.
const fuzzNodeLimit = 1 << 16

// declaredNodes probes data for a "nodes" field without building the
// graph. A probe error means the real decoder fails before allocating,
// so the input is safe to hand over either way.
func declaredNodes(data []byte) (int64, bool) {
	var probe struct {
		Nodes int64 `json:"nodes"`
	}
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&probe); err != nil {
		return 0, false
	}
	return probe.Nodes, true
}

// FuzzReadRoundTrip asserts that graph.Read never panics and that every
// accepted input reaches an encode/decode fixed point: the first
// re-encoding is canonical, so decoding and encoding it again must
// reproduce it byte for byte.
func FuzzReadRoundTrip(f *testing.F) {
	seed := func(g *graph.DiGraph) {
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(graph.New(0))
	seed(graph.Path(4))
	seed(graph.Complete(3))
	f.Add([]byte(`{"nodes":3,"edges":[[0,1],[1,2],[2,0]]}`))
	f.Add([]byte(`{"nodes":-1}`))
	f.Add([]byte(`{"nodes":2,"edges":[[0,5]]}`))
	f.Add([]byte(`{"nodes":1e99}`))
	f.Add([]byte(`{"nodes":`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if n, ok := declaredNodes(data); ok && (n < 0 || n > fuzzNodeLimit) {
			t.Skip("node count out of fuzzing bounds")
		}
		g, err := graph.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc1 bytes.Buffer
		if err := g.Write(&enc1); err != nil {
			t.Fatalf("encode accepted graph: %v", err)
		}
		g2, err := graph.Read(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-decode own encoding: %v\nencoding: %s", err, enc1.Bytes())
		}
		var enc2 bytes.Buffer
		if err := g2.Write(&enc2); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("encode/decode not a fixed point:\nfirst:  %s\nsecond: %s", enc1.Bytes(), enc2.Bytes())
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("shape drift: %d/%d nodes, %d/%d edges",
				g.NumNodes(), g2.NumNodes(), g.NumEdges(), g2.NumEdges())
		}
	})
}
