package graph

import (
	"math/bits"
	"os"
	"testing"
	"time"

	"infoflow/internal/bitset"
	"infoflow/internal/rng"
)

// checkEngineInvariants verifies the full internal contract of a valid
// engine after a sweep: the order list is a consistent doubly linked
// list with strictly increasing keys; the member lists partition
// exactly the nodes with comp != -1; the structure is closed under
// active edges; every inter-component active edge outside the
// violation set agrees with the order; the violation set holds exactly
// the marked edges, each active, inter-component and order-violating;
// the cached partition is exactly the SCC partition of the
// structure-induced active subgraph minus the violated edges; and
// clean components hold zero reach rows.
func checkEngineInvariants(t *testing.T, e *LaneEngine, active bitset.Set, reach *bitset.LaneMatrix) {
	t.Helper()
	if !e.valid {
		return
	}
	g := e.g
	n := g.NumNodes()
	inOrder := make(map[int32]bool)
	prev := int32(-1)
	var prevKey uint64
	count := 0
	for c := e.orderHead; c != -1; c = e.orderNext[c] {
		if e.orderPrev[c] != prev {
			t.Fatalf("order list: prev of %d is %d, want %d", c, e.orderPrev[c], prev)
		}
		if inOrder[c] {
			t.Fatalf("order list: component %d appears twice", c)
		}
		inOrder[c] = true
		if count > 0 && e.orderKey[c] <= prevKey {
			t.Fatalf("order keys not strictly increasing at component %d", c)
		}
		prevKey = e.orderKey[c]
		prev = c
		if count++; count > n+1 {
			t.Fatalf("order list longer than node count: corrupt links")
		}
	}
	if e.orderTail != prev {
		t.Fatalf("order tail is %d, want %d", e.orderTail, prev)
	}
	memberOf := make([]int32, n)
	for i := range memberOf {
		memberOf[i] = -1
	}
	structure := make([]NodeID, 0, n)
	for c := range inOrder {
		cnt := 0
		for v := e.memberHead[c]; v != -1; v = e.memberNext[v] {
			if e.comp[v] != c {
				t.Fatalf("node %d on member list of %d but comp=%d", v, c, e.comp[v])
			}
			if memberOf[v] != -1 {
				t.Fatalf("node %d on two member lists", v)
			}
			memberOf[v] = c
			structure = append(structure, v)
			if cnt++; cnt > n {
				t.Fatalf("member list of %d is cyclic", c)
			}
		}
		if cnt == 0 {
			t.Fatalf("component %d in order with empty member list", c)
		}
	}
	for v := 0; v < n; v++ {
		if (e.comp[v] != -1) != (memberOf[v] != -1) || (memberOf[v] != -1 && memberOf[v] != e.comp[v]) {
			t.Fatalf("node %d: comp=%d but member list says %d", v, e.comp[v], memberOf[v])
		}
	}
	// Closure and order agreement over active edges (violated edges are
	// exempt from order agreement — that is their definition).
	for _, v := range structure {
		cv := e.comp[v]
		for _, id := range g.out[v] {
			if !active.Test(int(id)) {
				continue
			}
			w := g.edges[id].To
			cw := e.comp[w]
			if cw == -1 {
				t.Fatalf("active edge %d->%d leaves the structure", v, w)
			}
			if cw != cv && e.edgeSkip[id]&skipVio == 0 && e.orderKey[cv] >= e.orderKey[cw] {
				t.Fatalf("active edge %d->%d violates the order (%d !< %d)", v, w, cv, cw)
			}
		}
	}
	// Violation-set consistency: vio and the skipVio bits agree, and
	// every kept entry is an active, inter-component, order-violating
	// edge (the push scan drops everything else). The skipInactive bits
	// must mirror the live mask exactly.
	marked := 0
	for id, b := range e.edgeSkip {
		if b&skipVio != 0 {
			marked++
		}
		if b&skipInactive != 0 == active.Test(id) {
			t.Fatalf("edgeSkip inactive bit for edge %d disagrees with the mask", id)
		}
	}
	if marked != len(e.vio) {
		t.Fatalf("edgeSkip has %d vio bits but vio holds %d edges", marked, len(e.vio))
	}
	for _, id := range e.vio {
		if e.edgeSkip[id]&skipVio == 0 {
			t.Fatalf("violation edge %d not marked", id)
		}
		ed := g.edges[id]
		cu, cv := e.comp[ed.From], e.comp[ed.To]
		if !active.Test(int(id)) || cu == -1 || cu == cv || e.orderKey[cu] < e.orderKey[cv] {
			t.Fatalf("violation edge %d (%d->%d) is not an active inter-component back-edge", id, ed.From, ed.To)
		}
	}
	// Exact SCC partition of the structure-induced subgraph minus the
	// violated edges (components mutually reachable only through a
	// violated edge intentionally stay unmerged).
	sc := NewScratch(n)
	maskSansVio := append(bitset.Set(nil), active...)
	for _, id := range e.vio {
		maskSansVio.Clear(int(id))
	}
	fresh, _, _ := g.condenseInto(structure, maskSansVio, sc, nil, nil, nil)
	c2f := make(map[int32]int32)
	f2c := make(map[int32]int32)
	for _, v := range structure {
		fc := fresh[v]
		cc := e.comp[v]
		if fc == -1 {
			t.Fatalf("structure node %d unreached in fresh condensation", v)
		}
		if want, ok := c2f[cc]; ok && want != fc {
			t.Fatalf("cached component %d spans fresh SCCs %d and %d", cc, want, fc)
		}
		if want, ok := f2c[fc]; ok && want != cc {
			t.Fatalf("fresh SCC %d spans cached components %d and %d", fc, want, cc)
		}
		c2f[cc] = fc
		f2c[fc] = cc
	}
	// Clean components hold zero rows.
	for c := range inOrder {
		if !e.clean[c] {
			continue
		}
		for v := e.memberHead[c]; v != -1; v = e.memberNext[v] {
			for _, w := range reach.Row(int(v)) {
				if w != 0 {
					t.Fatalf("clean component %d has nonzero reach row at node %d", c, v)
				}
			}
		}
	}
}

func assertSweepMatches(t *testing.T, g *DiGraph, seeds []NodeID, seedBits *bitset.LaneMatrix, active bitset.Set, got, want *bitset.LaneMatrix, sc *Scratch, ctx string) {
	t.Helper()
	g.ReachLanesWideInto(seeds, seedBits, active, sc, want)
	for v := 0; v < g.NumNodes(); v++ {
		gr, wr := got.Row(v), want.Row(v)
		for j := range wr {
			if gr[j] != wr[j] {
				t.Fatalf("%s: reach mismatch at node %d word %d: got %x want %x", ctx, v, j, gr[j], wr[j])
			}
		}
	}
}

// TestLaneEngineRepairDifferential is the adversarial soak: random
// graphs, random flip batches of wildly varying size (with the
// occasional incomplete log and the occasional unreported mutation),
// every sweep checked word-identical against a fresh rebuild and the
// engine's internal invariants checked in full. Across the trials all
// repair paths — split, merge, grow, reorder, cancel, overflow — must
// fire.
func TestLaneEngineRepairDifferential(t *testing.T) {
	r := rng.New(99)
	var total LaneEngineStats
	for trial := 0; trial < 10; trial++ {
		n := 24 + r.Intn(160)
		g := Random(r, n, n+r.Intn(3*n))
		m := g.NumEdges()
		_, active := packedMask(r, m, 0.3+0.4*r.Float64())
		lanes := 64 * (1 + r.Intn(4))
		seeds, seedBits := wideSeeding(r, n, lanes)
		sc := NewScratch(n)
		e := NewLaneEngine(g)
		reach := &bitset.LaneMatrix{}
		ref := &bitset.LaneMatrix{}
		log := make([]EdgeID, 0, 2*m)
		sweeps := int64(0)
		for i := 0; i < 160; i++ {
			var k int
			switch r.Intn(6) {
			case 0:
				k = 0
			case 1:
				k = 1
			case 2:
				k = 2 + r.Intn(6)
			case 3:
				k = 10 + r.Intn(30)
			case 4:
				k = m / 2 // huge batch: exercises the budget bail
			default:
				k = 3
			}
			log = flipSome(r, active, m, k, log[:0])
			complete := true
			switch r.Intn(12) {
			case 0:
				complete = false // overflow path
			case 1:
				active.Flip(r.Intn(m)) // unreported mutation: signature must catch it
			}
			e.Sweep(seeds, seedBits, active, log, complete, sc, reach)
			sweeps++
			assertSweepMatches(t, g, seeds, seedBits, active, reach, ref, sc, "soak")
			checkEngineInvariants(t, e, active, reach)
		}
		st := e.Stats()
		if st.Replays+st.Repairs+st.Rebuilds != sweeps {
			t.Fatalf("trial %d: outcomes %d+%d+%d != %d sweeps", trial, st.Replays, st.Repairs, st.Rebuilds, sweeps)
		}
		total.Replays += st.Replays
		total.Repairs += st.Repairs
		total.Rebuilds += st.Rebuilds
		total.OverflowRebuilds += st.OverflowRebuilds
		total.BudgetBails += st.BudgetBails
		total.Splits += st.Splits
		total.Merges += st.Merges
		total.Grows += st.Grows
		total.CancelledFlips += st.CancelledFlips
	}
	t.Logf("soak totals: %+v", total)
	if total.Repairs == 0 || total.Splits == 0 || total.Merges == 0 || total.Grows == 0 {
		t.Fatalf("soak never exercised a repair path: %+v", total)
	}
	if total.CancelledFlips == 0 || total.OverflowRebuilds == 0 {
		t.Fatalf("soak never exercised cancel/overflow: %+v", total)
	}
}

// TestLaneEngineRepairTinyBudget re-runs a soak with a budget so small
// that most repairs abandon mid-edit, proving the rebuild fallback
// recovers from any half-applied repair state.
func TestLaneEngineRepairTinyBudget(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 4; trial++ {
		n := 30 + r.Intn(90)
		g := Random(r, n, 2*n)
		m := g.NumEdges()
		_, active := packedMask(r, m, 0.5)
		seeds, seedBits := wideSeeding(r, n, 128)
		sc := NewScratch(n)
		e := NewLaneEngine(g)
		e.SetRepairLimit(3 + r.Intn(20))
		reach := &bitset.LaneMatrix{}
		ref := &bitset.LaneMatrix{}
		log := make([]EdgeID, 0, 64)
		for i := 0; i < 120; i++ {
			log = flipSome(r, active, m, 1+r.Intn(8), log[:0])
			e.Sweep(seeds, seedBits, active, log, true, sc, reach)
			assertSweepMatches(t, g, seeds, seedBits, active, reach, ref, sc, "tiny-budget")
			checkEngineInvariants(t, e, active, reach)
		}
		if e.Stats().BudgetBails == 0 {
			t.Fatalf("trial %d: tiny budget never bailed", trial)
		}
	}
}

// line builds a directed path 0->1->...->n-1 plus the extra edges, and
// returns the graph with every edge id resolvable by endpoints.
func mustEdge(t *testing.T, g *DiGraph, from, to NodeID) EdgeID {
	t.Helper()
	for _, id := range g.out[from] {
		if g.edges[id].To == to {
			return id
		}
	}
	t.Fatalf("no edge %d->%d", from, to)
	return -1
}

func buildEngine(t *testing.T, g *DiGraph, lanes int, activeBits ...int) (*LaneEngine, []NodeID, *bitset.LaneMatrix, bitset.Set, *Scratch, *bitset.LaneMatrix) {
	t.Helper()
	n := g.NumNodes()
	active := make(bitset.Set, (g.NumEdges()+63)/64)
	for _, b := range activeBits {
		active.Set(b)
	}
	seeds := []NodeID{0}
	seedBits := &bitset.LaneMatrix{}
	seedBits.Resize(1, (lanes+63)/64)
	seedBits.SetBit(0, 0)
	sc := NewScratch(n)
	e := NewLaneEngine(g)
	reach := &bitset.LaneMatrix{}
	e.Sweep(seeds, seedBits, active, nil, true, sc, reach)
	return e, seeds, seedBits, active, sc, reach
}

// TestLaneEngineRepairPaths drives each repair path on a handcrafted
// graph and asserts the specific operation counters fire.
func TestLaneEngineRepairPaths(t *testing.T) {
	mk := func() *DiGraph {
		g := New(6)
		// 0->1->2->0 cycle; 2->3 bridge; 3->4; 4->2 back; 4->5 (to grow later).
		for _, ed := range [][2]NodeID{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}, {4, 5}} {
			g.MustAddEdge(ed[0], ed[1])
		}
		return g
	}

	t.Run("split", func(t *testing.T) {
		g := mk()
		all := []int{0, 1, 2, 3, 4, 5, 6}
		e, seeds, seedBits, active, sc, reach := buildEngine(t, g, 64, all...)
		off := mustEdge(t, g, 1, 2)
		active.Clear(int(off))
		e.Sweep(seeds, seedBits, active, []EdgeID{off}, true, sc, reach)
		st := e.Stats()
		if st.Splits == 0 || st.Repairs != 1 {
			t.Fatalf("want a split repair, got %+v", st)
		}
		ref := &bitset.LaneMatrix{}
		assertSweepMatches(t, g, seeds, seedBits, active, reach, ref, sc, "split")
		checkEngineInvariants(t, e, active, reach)
	})

	t.Run("merge", func(t *testing.T) {
		g := mk()
		// Start without 4->2: chain of components. Turning it on closes
		// a cycle {2,3,4} against the cached order.
		bitsOn := []int{}
		back := mustEdge(t, g, 4, 2)
		for id := 0; id < g.NumEdges(); id++ {
			if EdgeID(id) != back {
				bitsOn = append(bitsOn, id)
			}
		}
		e, seeds, seedBits, active, sc, reach := buildEngine(t, g, 64, bitsOn...)
		active.Set(int(back))
		e.Sweep(seeds, seedBits, active, []EdgeID{back}, true, sc, reach)
		st := e.Stats()
		if st.Merges == 0 || st.Repairs != 1 {
			t.Fatalf("want a merge repair, got %+v", st)
		}
		ref := &bitset.LaneMatrix{}
		assertSweepMatches(t, g, seeds, seedBits, active, reach, ref, sc, "merge")
		checkEngineInvariants(t, e, active, reach)
	})

	t.Run("grow", func(t *testing.T) {
		g := mk()
		grow := mustEdge(t, g, 4, 5)
		bitsOn := []int{}
		for id := 0; id < g.NumEdges(); id++ {
			if EdgeID(id) != grow {
				bitsOn = append(bitsOn, id)
			}
		}
		e, seeds, seedBits, active, sc, reach := buildEngine(t, g, 64, bitsOn...)
		active.Set(int(grow))
		e.Sweep(seeds, seedBits, active, []EdgeID{grow}, true, sc, reach)
		st := e.Stats()
		if st.Grows == 0 || st.Repairs != 1 {
			t.Fatalf("want a grow repair, got %+v", st)
		}
		ref := &bitset.LaneMatrix{}
		assertSweepMatches(t, g, seeds, seedBits, active, reach, ref, sc, "grow")
		checkEngineInvariants(t, e, active, reach)
	})

	t.Run("cancel", func(t *testing.T) {
		g := mk()
		all := []int{0, 1, 2, 3, 4, 5, 6}
		e, seeds, seedBits, active, sc, reach := buildEngine(t, g, 64, all...)
		off := mustEdge(t, g, 1, 2)
		// Flip off and back on: net no-op, must replay with no repair.
		active.Flip(int(off))
		active.Flip(int(off))
		e.Sweep(seeds, seedBits, active, []EdgeID{off, off}, true, sc, reach)
		st := e.Stats()
		if st.CancelledFlips != 2 || st.Replays != 1 || st.Repairs != 0 {
			t.Fatalf("want a cancelled replay, got %+v", st)
		}
	})

	t.Run("overflow", func(t *testing.T) {
		g := mk()
		all := []int{0, 1, 2, 3, 4, 5, 6}
		e, seeds, seedBits, active, sc, reach := buildEngine(t, g, 64, all...)
		e.Sweep(seeds, seedBits, active, nil, false, sc, reach)
		st := e.Stats()
		if st.OverflowRebuilds != 1 || st.Rebuilds != 2 {
			t.Fatalf("want an overflow rebuild, got %+v", st)
		}
	})

	t.Run("budget", func(t *testing.T) {
		g := mk()
		all := []int{0, 1, 2, 3, 4, 5, 6}
		e, seeds, seedBits, active, sc, reach := buildEngine(t, g, 64, all...)
		e.SetRepairLimit(1)
		off := mustEdge(t, g, 1, 2)
		active.Clear(int(off))
		e.Sweep(seeds, seedBits, active, []EdgeID{off}, true, sc, reach)
		st := e.Stats()
		if st.BudgetBails != 1 || st.Rebuilds != 2 {
			t.Fatalf("want a budget bail, got %+v", st)
		}
		ref := &bitset.LaneMatrix{}
		assertSweepMatches(t, g, seeds, seedBits, active, reach, ref, sc, "budget")
	})
}

// TestMaskSigIndexMixing is the collision regression for the hardened
// signature: under the old rotl-by-index fold, a single bit in word 0
// and the same bit in word 64 produced identical signatures (the
// rotation count has period 64), so 64-word-aligned edge pairs were
// mutually invisible to the guard. The splitmix word-index mix must
// separate them.
func TestMaskSigIndexMixing(t *testing.T) {
	a := make(bitset.Set, 65)
	b := make(bitset.Set, 65)
	a[0] = 1 << 5
	b[64] = 1 << 5
	oldSig := func(s bitset.Set) uint64 {
		var h uint64
		for i, w := range s {
			h ^= bits.RotateLeft64(w, i&63)
		}
		return h
	}
	if oldSig(a) != oldSig(b) {
		t.Fatalf("precondition lost: the rotl fold no longer collides these masks")
	}
	if maskSig(a) == maskSig(b) {
		t.Fatalf("maskSig still collides word-0 and word-64 single-bit masks")
	}
	// And the incremental path must agree with the full fold.
	g := Random(rng.New(3), 200, 800)
	_, active := packedMask(rng.New(4), g.NumEdges(), 0.5)
	e := NewLaneEngine(g)
	e.ensureNodeCap(g.NumNodes(), g.NumEdges())
	e.shadow = append(e.shadow[:0], active...)
	e.sig = maskSig(active)
	r := rng.New(5)
	for i := 0; i < 500; i++ {
		id := EdgeID(r.Intn(g.NumEdges()))
		active.Flip(int(id))
		e.flipShadow(id)
		if e.sig != maskSig(active) {
			t.Fatalf("incremental signature diverged after %d flips", i+1)
		}
	}
}

// TestLaneEngineRepairZeroAlloc gates the repair path's steady state at
// zero allocations per sweep, with flip batches large enough that
// splits, grows and merges actually run.
func TestLaneEngineRepairZeroAlloc(t *testing.T) {
	r := rng.New(46)
	n := 800
	g := Random(r, n, 2400)
	m := g.NumEdges()
	_, active := packedMask(r, m, 0.4)
	seeds, seedBits := wideSeeding(r, n, 512)
	sc := NewScratch(n)
	e := NewLaneEngine(g)
	reach := &bitset.LaneMatrix{}
	log := make([]EdgeID, 0, 64)
	e.Sweep(seeds, seedBits, active, nil, true, sc, reach)
	for warm := 0; warm < 60; warm++ {
		log = flipSome(r, active, m, 20, log[:0])
		e.Sweep(seeds, seedBits, active, log, true, sc, reach)
	}
	before := e.Stats()
	if allocs := testing.AllocsPerRun(100, func() {
		log = flipSome(r, active, m, 20, log[:0])
		e.Sweep(seeds, seedBits, active, log, true, sc, reach)
	}); allocs != 0 {
		t.Errorf("steady-state repair sweep allocates %v per run, want 0", allocs)
	}
	after := e.Stats()
	if after.Repairs == before.Repairs {
		t.Fatalf("alloc gate never hit the repair path: %+v -> %+v", before, after)
	}
}

// TestLaneEngineRepairGateRates is the deterministic half of the CI
// gate: at the §IV-C benchmark scale with ~100 flips per sweep, the
// rebuild rate must stay at or below 10% (it is ~100% without repair).
func TestLaneEngineRepairGateRates(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-scale gate skipped in -short")
	}
	r := rng.New(2)
	g := Random(r, 6000, 14000)
	m := g.NumEdges()
	_, active := packedMask(r, m, 0.5)
	sc := NewScratch(g.NumNodes())
	seeds, seedBits := wideSeeding(r, g.NumNodes(), 512)
	e := NewLaneEngine(g)
	reach := &bitset.LaneMatrix{}
	log := make([]EdgeID, 0, 128)
	e.Sweep(seeds, seedBits, active, nil, true, sc, reach)
	const sweeps = 200
	for i := 0; i < sweeps; i++ {
		log = flipSome(r, active, m, 100, log[:0])
		e.Sweep(seeds, seedBits, active, log, true, sc, reach)
	}
	st := e.Stats()
	if st.Replays+st.Repairs+st.Rebuilds != sweeps+1 {
		t.Fatalf("outcome counters inconsistent: %+v over %d sweeps", st, sweeps+1)
	}
	rebuildRate := float64(st.Rebuilds-1) / float64(sweeps) // first sweep's build excluded
	t.Logf("rates over %d sweeps at 100 flips: repair=%.3f replay=%.3f rebuild=%.3f (stats %+v)",
		sweeps, float64(st.Repairs)/sweeps, float64(st.Replays)/sweeps, rebuildRate, st)
	if rebuildRate > 0.10 {
		t.Fatalf("rebuild rate %.3f exceeds the 10%% gate", rebuildRate)
	}
	if st.Repairs == 0 {
		t.Fatalf("gate run never repaired: %+v", st)
	}
}

// TestLaneEngineRepairGateSpeedup is the timing half of the CI gate,
// opt-in via FLOWBENCH_REPAIR_GATE=1 (bench-smoke sets it; local and
// race runs skip, timing under instrumentation means nothing).
//
// Thresholds reflect where the repair win actually lives. At 10 flips
// per sweep the changed region is small and repair beats the
// repair-disabled baseline decisively (measured ~1.7x; gated at 1.3x).
// At 100 flips per sweep on the 6K/14K graph the flips touch most of
// the condensation and the shared push pass (~half of either path's
// cost) bounds the ratio near parity — the gate only requires that
// repair never LOSES to the rebuild it replaced (0.85x, noise floor).
func TestLaneEngineRepairGateSpeedup(t *testing.T) {
	if os.Getenv("FLOWBENCH_REPAIR_GATE") == "" {
		t.Skip("set FLOWBENCH_REPAIR_GATE=1 to run the timing gate")
	}
	run := func(limit, thin int) time.Duration {
		r := rng.New(2)
		g := Random(r, 6000, 14000)
		m := g.NumEdges()
		_, active := packedMask(r, m, 0.5)
		sc := NewScratch(g.NumNodes())
		seeds, seedBits := wideSeeding(r, g.NumNodes(), 512)
		e := NewLaneEngine(g)
		if limit >= 0 {
			e.SetRepairLimit(limit)
		}
		reach := &bitset.LaneMatrix{}
		log := make([]EdgeID, 0, 128)
		e.Sweep(seeds, seedBits, active, nil, true, sc, reach)
		for i := 0; i < 20; i++ { // warm the scratch high-water marks
			log = flipSome(r, active, m, thin, log[:0])
			e.Sweep(seeds, seedBits, active, log, true, sc, reach)
		}
		start := time.Now()
		for i := 0; i < 150; i++ {
			log = flipSome(r, active, m, thin, log[:0])
			e.Sweep(seeds, seedBits, active, log, true, sc, reach)
		}
		return time.Since(start)
	}
	for _, tc := range []struct {
		thin    int
		minGain float64
	}{
		{10, 1.3},
		{100, 0.85},
	} {
		baseline := run(0, tc.thin) // repair disabled: the historical rebuild path
		repaired := run(-1, tc.thin)
		ratio := float64(baseline) / float64(repaired)
		t.Logf("thin=%d: baseline=%v repaired=%v ratio=%.2fx", tc.thin, baseline, repaired, ratio)
		if ratio < tc.minGain {
			t.Errorf("thin=%d: repair speedup %.2fx below the %.2fx gate", tc.thin, ratio, tc.minGain)
		}
	}
}

// benchLaneEngineThinned measures the engine at a given thinning
// interval (flips per sweep) on the §IV-C-scale graph with 512 lanes,
// reporting the sweep-outcome rates alongside ns/op.
func benchLaneEngineThinned(b *testing.B, flips int, repairLimit int) {
	r := rng.New(2)
	g := Random(r, 6000, 14000)
	m := g.NumEdges()
	_, active := packedMask(r, m, 0.5)
	sc := NewScratch(g.NumNodes())
	seeds, seedBits := wideSeeding(r, g.NumNodes(), 512)
	e := NewLaneEngine(g)
	if repairLimit >= 0 {
		e.SetRepairLimit(repairLimit)
	}
	reach := &bitset.LaneMatrix{}
	log := make([]EdgeID, 0, 2*flips+8)
	e.Sweep(seeds, seedBits, active, nil, true, sc, reach)
	for i := 0; i < 10; i++ {
		log = flipSome(r, active, m, flips, log[:0])
		e.Sweep(seeds, seedBits, active, log, true, sc, reach)
	}
	before := e.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log = flipSome(r, active, m, flips, log[:0])
		e.Sweep(seeds, seedBits, active, log, true, sc, reach)
	}
	b.StopTimer()
	st := e.Stats()
	total := float64(st.Replays + st.Repairs + st.Rebuilds - before.Replays - before.Repairs - before.Rebuilds)
	b.ReportMetric(float64(st.Replays-before.Replays)/total, "replay-rate")
	b.ReportMetric(float64(st.Repairs-before.Repairs)/total, "repair-rate")
	b.ReportMetric(float64(st.Rebuilds-before.Rebuilds)/total, "rebuild-rate")
}

func BenchmarkLaneEngineSweepThinned1(b *testing.B)   { benchLaneEngineThinned(b, 1, -1) }
func BenchmarkLaneEngineSweepThinned10(b *testing.B)  { benchLaneEngineThinned(b, 10, -1) }
func BenchmarkLaneEngineSweepThinned100(b *testing.B) { benchLaneEngineThinned(b, 100, -1) }

// BenchmarkLaneEngineSweepThinned100Rebuild is the historical
// replay-or-rebuild engine (repair disabled) on the same workload: the
// baseline the acceptance criterion's >=2x is measured against.
func BenchmarkLaneEngineSweepThinned100Rebuild(b *testing.B) { benchLaneEngineThinned(b, 100, 0) }
