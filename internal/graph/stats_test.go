package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"infoflow/internal/rng"
)

func TestDegreeStatsBasics(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	out := g.OutDegreeStats()
	if out.Min != 0 || out.Max != 2 || math.Abs(out.Mean-2.0/3) > 1e-12 {
		t.Fatalf("out stats = %+v", out)
	}
	in := g.InDegreeStats()
	if in.Max != 1 || math.Abs(in.Mean-2.0/3) > 1e-12 {
		t.Fatalf("in stats = %+v", in)
	}
}

func TestDegreeStatsEmpty(t *testing.T) {
	if st := New(0).OutDegreeStats(); st.Mean != 0 || st.Gini != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestGiniUniformVsHub(t *testing.T) {
	// A cycle has perfectly uniform degrees: Gini 0.
	cycle := New(6)
	for v := 0; v < 6; v++ {
		cycle.MustAddEdge(NodeID(v), NodeID((v+1)%6))
	}
	if gi := cycle.OutDegreeStats().Gini; math.Abs(gi) > 1e-12 {
		t.Errorf("cycle Gini = %v", gi)
	}
	// A star concentrates everything on the hub.
	star := New(7)
	for v := 1; v < 7; v++ {
		star.MustAddEdge(0, NodeID(v))
	}
	if gi := star.OutDegreeStats().Gini; gi < 0.8 {
		t.Errorf("star Gini = %v", gi)
	}
	// Preferential attachment sits in between but clearly above uniform.
	r := rng.New(1)
	pa := PreferentialAttachment(r, 800, 3, 0.2)
	if gi := pa.InDegreeStats().Gini; gi < 0.3 {
		t.Errorf("PA in-degree Gini = %v, want heavy-tailed", gi)
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 1) // 0,1,2 weakly connected
	g.MustAddEdge(3, 4) // 3,4
	// 5 isolated
	labels, count := g.WeaklyConnectedComponents()
	if count != 3 {
		t.Fatalf("components = %d (labels %v)", count, labels)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("labels = %v", labels)
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatalf("labels = %v", labels)
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatalf("labels = %v", labels)
	}
}

func TestWeaklyConnectedWholeGraph(t *testing.T) {
	r := rng.New(2)
	g := PreferentialAttachment(r, 200, 2, 0)
	_, count := g.WeaklyConnectedComponents()
	if count != 1 {
		t.Fatalf("PA graph has %d components", count)
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "test", []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`digraph "test"`, "n0 -> n1", `label="0.500"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if err := g.WriteDOT(&buf, "bad", []float64{1, 2}); err == nil {
		t.Error("wrong weight count accepted")
	}
	buf.Reset()
	if err := g.WriteDOT(&buf, "plain", nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "label") {
		t.Error("unexpected labels without weights")
	}
}
