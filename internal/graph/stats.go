package graph

import (
	"fmt"
	"io"
	"sort"
)

// DegreeStats summarises a degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// Gini is the Gini coefficient of the distribution: 0 for perfectly
	// uniform degrees, approaching 1 for extreme hub concentration. The
	// Twitter substrate's tests assert a heavy tail through it.
	Gini float64
}

// OutDegreeStats returns statistics of the out-degree distribution.
func (g *DiGraph) OutDegreeStats() DegreeStats { return degreeStats(g, true) }

// InDegreeStats returns statistics of the in-degree distribution.
func (g *DiGraph) InDegreeStats() DegreeStats { return degreeStats(g, false) }

func degreeStats(g *DiGraph, out bool) DegreeStats {
	n := g.NumNodes()
	if n == 0 {
		return DegreeStats{}
	}
	degrees := make([]int, n)
	total := 0
	for v := 0; v < n; v++ {
		d := g.InDegree(NodeID(v))
		if out {
			d = g.OutDegree(NodeID(v))
		}
		degrees[v] = d
		total += d
	}
	sort.Ints(degrees)
	st := DegreeStats{
		Min:  degrees[0],
		Max:  degrees[n-1],
		Mean: float64(total) / float64(n),
	}
	if total > 0 {
		// Gini over the sorted degrees.
		weighted := 0.0
		for i, d := range degrees {
			weighted += float64(2*(i+1)-n-1) * float64(d)
		}
		st.Gini = weighted / (float64(n) * float64(total))
	}
	return st
}

// WeaklyConnectedComponents returns the component label of every node
// (labels dense in [0, count)) and the number of components, treating
// edges as undirected.
func (g *DiGraph) WeaklyConnectedComponents() (labels []int, count int) {
	n := g.NumNodes()
	labels = make([]int, n)
	for v := range labels {
		labels[v] = -1
	}
	for v := 0; v < n; v++ {
		if labels[v] != -1 {
			continue
		}
		queue := []NodeID{NodeID(v)}
		labels[v] = count
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			push := func(w NodeID) {
				if labels[w] == -1 {
					labels[w] = count
					queue = append(queue, w)
				}
			}
			for _, id := range g.out[u] {
				push(g.edges[id].To)
			}
			for _, id := range g.in[u] {
				push(g.edges[id].From)
			}
		}
		count++
	}
	return labels, count
}

// WriteDOT renders the graph in Graphviz DOT format. If weights is
// non-nil it must have one entry per edge and is emitted as the edge
// label (useful for eyeballing learned models).
func (g *DiGraph) WriteDOT(w io.Writer, name string, weights []float64) error {
	if weights != nil && len(weights) != g.NumEdges() {
		return fmt.Errorf("graph: %d weights for %d edges", len(weights), g.NumEdges())
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.NumNodes(); v++ {
		if _, err := fmt.Fprintf(w, "  n%d;\n", v); err != nil {
			return err
		}
	}
	for id, e := range g.edges {
		if weights != nil {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%.3f\"];\n", e.From, e.To, weights[id]); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", e.From, e.To); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
