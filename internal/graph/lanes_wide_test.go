package graph

import (
	"testing"

	"infoflow/internal/bitset"
	"infoflow/internal/rng"
)

// wideSeeding draws `lanes` random seed nodes with the identity lane
// assignment (seed k carries lane k) at the smallest width that fits.
func wideSeeding(r *rng.RNG, n, lanes int) ([]NodeID, *bitset.LaneMatrix) {
	w := (lanes + 63) / 64
	seeds := make([]NodeID, lanes)
	seedBits := bitset.NewLaneMatrix(lanes, w)
	for l := range seeds {
		seeds[l] = NodeID(r.Intn(n))
		seedBits.SetBit(l, l)
	}
	return seeds, seedBits
}

// TestReachLanesWideMatchesScalar proves the W-word sweep agrees lane by
// lane with one scalar ReachableInto per seed, across random graphs,
// masks, widths W ∈ {1, 2, 4, 8} and ragged lane counts that leave the
// top word partly empty (65, 511, ...).
func TestReachLanesWideMatchesScalar(t *testing.T) {
	r := rng.New(41)
	sc := NewScratch(0)
	reach := &bitset.LaneMatrix{}
	laneCounts := []int{1, 63, 64, 65, 100, 128, 200, 256, 300, 511, 512}
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(59)
		g := randomTestGraph(r, n, r.Intn(3*n))
		mask, packed := packedMask(r, g.NumEdges(), r.Float64())
		lanes := laneCounts[trial%len(laneCounts)]
		seeds, seedBits := wideSeeding(r, n, lanes)
		g.ReachLanesWideInto(seeds, seedBits, packed, sc, reach)
		if reach.Rows != n || reach.W != seedBits.W {
			t.Fatalf("trial %d: reach shaped %dx%d, want %dx%d", trial, reach.Rows, reach.W, n, seedBits.W)
		}
		for l := 0; l < lanes; l++ {
			want := g.ReachableInto([]NodeID{seeds[l]}, mask, sc, nil)
			for v := 0; v < n; v++ {
				if got := reach.TestBit(v, l); got != want[v] {
					t.Fatalf("trial %d lane %d (seed %d): node %d lane=%v scalar=%v",
						trial, l, seeds[l], v, got, want[v])
				}
			}
		}
		// No lane above the seeded ones may ever light up.
		for v := 0; v < n; v++ {
			for l := lanes; l < reach.Lanes(); l++ {
				if reach.TestBit(v, l) {
					t.Fatalf("trial %d: node %d carries unseeded lane %d", trial, v, l)
				}
			}
		}
	}
}

// TestReachLanesWideMatches64Lane pins the W=1 wide sweep bit-identical
// to the one-word ReachLanesInto on the same seeding — same Tarjan, same
// push, so the words must be equal, not merely equivalent.
func TestReachLanesWideMatches64Lane(t *testing.T) {
	r := rng.New(42)
	sc := NewScratch(0)
	var narrow []uint64
	reach := &bitset.LaneMatrix{}
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(79)
		g := randomTestGraph(r, n, r.Intn(4*n))
		_, packed := packedMask(r, g.NumEdges(), r.Float64())
		lanes := 1 + r.Intn(64)
		seeds, seedBits := wideSeeding(r, n, lanes)
		narrowBits := make([]uint64, lanes)
		for l := range narrowBits {
			narrowBits[l] = 1 << uint(l)
		}
		narrow = g.ReachLanesInto(seeds, narrowBits, packed, sc, narrow)
		g.ReachLanesWideInto(seeds, seedBits, packed, sc, reach)
		for v := 0; v < n; v++ {
			if got := reach.Row(v)[0]; got != narrow[v] {
				t.Fatalf("trial %d: node %d wide word %#x != 64-lane word %#x", trial, v, got, narrow[v])
			}
		}
	}
}

// flipSome toggles k random edge bits in the live mask and records them
// in the flip log (with occasional duplicates, which the engine must
// treat as cancelling).
func flipSome(r *rng.RNG, active bitset.Set, m, k int, log []EdgeID) []EdgeID {
	for j := 0; j < k; j++ {
		id := EdgeID(r.Intn(m))
		active.Flip(int(id))
		log = append(log, id)
		if r.Bernoulli(0.1) { // duplicate: net no-op on the mask and the sig
			active.Flip(int(id))
			log = append(log, id)
		}
	}
	return log
}

// TestLaneEngineMatchesFullSweep is the condensation-reuse invariant
// gate: across adversarial flip sequences (random small flip sets, with
// duplicates), every engine Sweep must be bit-identical to a from-scratch
// ReachLanesWideInto on the same mask, and the run must exercise BOTH
// the replay and the rebuild path.
func TestLaneEngineMatchesFullSweep(t *testing.T) {
	r := rng.New(43)
	sc, scRef := NewScratch(0), NewScratch(0)
	for trial := 0; trial < 8; trial++ {
		n := 30 + r.Intn(80)
		g := randomTestGraph(r, n, 2*n+r.Intn(3*n))
		m := g.NumEdges()
		_, active := packedMask(r, m, 0.25+0.4*r.Float64())
		lanes := []int{1, 64, 65, 130, 511}[trial%5]
		seeds, seedBits := wideSeeding(r, n, lanes)
		e := NewLaneEngine(g)
		reach := &bitset.LaneMatrix{}
		want := &bitset.LaneMatrix{}
		var log []EdgeID
		for step := 0; step < 60; step++ {
			e.Sweep(seeds, seedBits, active, log, true, sc, reach)
			g.ReachLanesWideInto(seeds, seedBits, active, scRef, want)
			for v := 0; v < n; v++ {
				got, ref := reach.Row(v), want.Row(v)
				for j := range ref {
					if got[j] != ref[j] {
						t.Fatalf("trial %d step %d: node %d word %d engine %#x != full sweep %#x (replays %d rebuilds %d)",
							trial, step, v, j, got[j], ref[j], e.Replays(), e.Rebuilds())
					}
				}
			}
			log = flipSome(r, active, m, 1+r.Intn(3), log[:0])
		}
		if e.Replays() == 0 {
			t.Errorf("trial %d (n=%d lanes=%d): no sweep replayed the condensation", trial, n, lanes)
		}
		if e.Rebuilds() == 0 {
			t.Errorf("trial %d (n=%d lanes=%d): no sweep rebuilt the condensation", trial, n, lanes)
		}
	}
}

// TestLaneEngineSignatureGuard mutates the mask WITHOUT reporting the
// flip: the incremental signature must disagree with the live mask, the
// engine must fall back to a full rebuild, and the result must still be
// exact. This is the differential invariant doing its job.
func TestLaneEngineSignatureGuard(t *testing.T) {
	r := rng.New(44)
	sc := NewScratch(0)
	n := 50
	g := randomTestGraph(r, n, 150)
	_, active := packedMask(r, g.NumEdges(), 0.5)
	seeds, seedBits := wideSeeding(r, n, 70)
	e := NewLaneEngine(g)
	reach, want := &bitset.LaneMatrix{}, &bitset.LaneMatrix{}
	e.Sweep(seeds, seedBits, active, nil, true, sc, reach)
	before := e.Rebuilds()
	// Unreported mutation: empty flip log claims nothing changed.
	active.Flip(3)
	e.Sweep(seeds, seedBits, active, nil, true, sc, reach)
	if e.Rebuilds() != before+1 {
		t.Fatalf("unreported mutation: rebuilds %d, want %d (signature guard must fire)", e.Rebuilds(), before+1)
	}
	g.ReachLanesWideInto(seeds, seedBits, active, sc, want)
	for v := 0; v < n; v++ {
		got, ref := reach.Row(v), want.Row(v)
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("node %d word %d: engine %#x != full sweep %#x after guarded rebuild", v, j, got[j], ref[j])
			}
		}
	}
}

// TestLaneEngineRebuildTriggers pins the remaining forced-rebuild paths:
// an incomplete flip log, a changed seed set, and Invalidate.
func TestLaneEngineRebuildTriggers(t *testing.T) {
	r := rng.New(45)
	sc := NewScratch(0)
	n := 40
	g := randomTestGraph(r, n, 120)
	_, active := packedMask(r, g.NumEdges(), 0.5)
	seeds, seedBits := wideSeeding(r, n, 10)
	e := NewLaneEngine(g)
	reach := &bitset.LaneMatrix{}
	e.Sweep(seeds, seedBits, active, nil, true, sc, reach)

	e.Sweep(seeds, seedBits, active, nil, false, sc, reach) // incomplete log
	if e.Replays() != 0 {
		t.Errorf("incomplete flip log replayed the condensation")
	}
	other := append([]NodeID{}, seeds...)
	other[0] = (other[0] + 1) % NodeID(n)
	e.Sweep(other, seedBits, active, nil, true, sc, reach) // changed seeds
	if e.Replays() != 0 {
		t.Errorf("changed seed set replayed the condensation")
	}
	e.Invalidate()
	e.Sweep(other, seedBits, active, nil, true, sc, reach) // explicit invalidation
	if e.Replays() != 0 {
		t.Errorf("invalidated engine replayed the condensation")
	}
	if got := e.Rebuilds(); got != 4 {
		t.Errorf("rebuilds = %d, want 4", got)
	}
	// And after all that, an honest no-change sweep replays again.
	e.Sweep(other, seedBits, active, nil, true, sc, reach)
	if e.Replays() != 1 {
		t.Errorf("clean follow-up sweep did not replay (replays %d)", e.Replays())
	}
}

// TestLaneEngineZeroAlloc pins the steady-state zero-allocation claim
// for engine sweeps — replayed and rebuilt alike — once buffers are warm.
func TestLaneEngineZeroAlloc(t *testing.T) {
	r := rng.New(46)
	n := 400
	g := Random(r, n, 1200)
	m := g.NumEdges()
	_, active := packedMask(r, m, 0.4)
	seeds, seedBits := wideSeeding(r, n, 512)
	sc := NewScratch(n)
	e := NewLaneEngine(g)
	reach := &bitset.LaneMatrix{}
	log := make([]EdgeID, 0, 8)
	e.Sweep(seeds, seedBits, active, nil, true, sc, reach)
	for warm := 0; warm < 10; warm++ {
		log = flipSome(r, active, m, 2, log[:0])
		e.Sweep(seeds, seedBits, active, log, true, sc, reach)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		log = flipSome(r, active, m, 2, log[:0])
		e.Sweep(seeds, seedBits, active, log, true, sc, reach)
	}); allocs != 0 {
		t.Errorf("steady-state engine sweep allocates %v per run, want 0", allocs)
	}
}

// BenchmarkReachLanesWide measures one 8-word (512-lane) from-scratch
// sweep on the §IV-C-scale graph — the per-sample cost of answering 512
// batched flow queries without condensation reuse. Compare ns/op against
// 8× BenchmarkReachLanes64 for the width win.
func BenchmarkReachLanesWide(b *testing.B) {
	r := rng.New(2)
	g := Random(r, 6000, 14000)
	_, packed := packedMask(r, g.NumEdges(), 0.5)
	sc := NewScratch(g.NumNodes())
	seeds, seedBits := wideSeeding(r, g.NumNodes(), 512)
	reach := &bitset.LaneMatrix{}
	g.ReachLanesWideInto(seeds, seedBits, packed, sc, reach)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ReachLanesWideInto(seeds, seedBits, packed, sc, reach)
	}
}

// BenchmarkLaneEngineSweep measures the engine's replay path at 512
// lanes: the mask differs by two reported flips per sweep, so most
// sweeps skip the Tarjan pass. Compare against BenchmarkReachLanesWide
// for the condensation-reuse win.
func BenchmarkLaneEngineSweep(b *testing.B) {
	r := rng.New(2)
	g := Random(r, 6000, 14000)
	m := g.NumEdges()
	_, packed := packedMask(r, m, 0.5)
	sc := NewScratch(g.NumNodes())
	seeds, seedBits := wideSeeding(r, g.NumNodes(), 512)
	e := NewLaneEngine(g)
	reach := &bitset.LaneMatrix{}
	log := make([]EdgeID, 0, 4)
	e.Sweep(seeds, seedBits, packed, nil, true, sc, reach)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log = flipSome(r, packed, m, 2, log[:0])
		e.Sweep(seeds, seedBits, packed, log, true, sc, reach)
	}
	b.ReportMetric(float64(e.Replays())/float64(e.Replays()+e.Rebuilds()), "replay-rate")
}
