package graph

import (
	"testing"

	"infoflow/internal/rng"
)

// randomTestGraph returns a random graph with n nodes and about m edges,
// clamping m to what a simple digraph on n nodes can hold.
func randomTestGraph(r *rng.RNG, n, m int) *DiGraph {
	if max := n * (n - 1); m > max {
		m = max
	}
	return Random(r, n, m)
}

// randomMask builds a random edge mask with the given density.
func randomMask(r *rng.RNG, m int, density float64) []bool {
	mask := make([]bool, m)
	for i := range mask {
		mask[i] = r.Bernoulli(density)
	}
	return mask
}

// TestReachableIntoMatchesReachable cross-checks the mask-based variant
// against the closure API on random graphs, reusing one Scratch and one
// destination slice across every trial to exercise the epoch reset.
func TestReachableIntoMatchesReachable(t *testing.T) {
	r := rng.New(11)
	sc := NewScratch(0)
	var dst []bool
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(20)
		m := r.Intn(3 * n)
		g := randomTestGraph(r, n, m)
		mask := randomMask(r, g.NumEdges(), 0.5)
		sources := []NodeID{NodeID(r.Intn(n))}
		if r.Bernoulli(0.5) {
			sources = append(sources, NodeID(r.Intn(n)), sources[0])
		}
		want := g.Reachable(sources, func(id EdgeID) bool { return mask[id] })
		dst = g.ReachableInto(sources, mask, sc, dst)
		if len(dst) != n {
			t.Fatalf("trial %d: result length %d want %d", trial, len(dst), n)
		}
		for v := range want {
			if dst[v] != want[v] {
				t.Fatalf("trial %d: node %d: ReachableInto %v, Reachable %v",
					trial, v, dst[v], want[v])
			}
		}
	}
}

// TestHasPathScratchMatchesHasPath verifies the bidirectional search
// agrees with the forward closure search for every node pair.
func TestHasPathScratchMatchesHasPath(t *testing.T) {
	r := rng.New(12)
	sc := NewScratch(0)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(14)
		g := randomTestGraph(r, n, r.Intn(3*n))
		mask := randomMask(r, g.NumEdges(), 0.4)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := g.HasPath(NodeID(u), NodeID(v), func(id EdgeID) bool { return mask[id] })
				got := g.HasPathScratch(NodeID(u), NodeID(v), mask, sc)
				if got != want {
					t.Fatalf("trial %d: %d~>%d: scratch %v, closure %v", trial, u, v, got, want)
				}
			}
		}
	}
}

// TestScratchNilAndGrowth covers the convenience paths: nil scratch, nil
// dst, and reuse of one Scratch across graphs of increasing size.
func TestScratchNilAndGrowth(t *testing.T) {
	r := rng.New(13)
	sc := NewScratch(2)
	for _, n := range []int{3, 8, 40} {
		g := randomTestGraph(r, n, 2*n)
		mask := randomMask(r, g.NumEdges(), 0.6)
		want := g.Reachable([]NodeID{0}, func(id EdgeID) bool { return mask[id] })
		got := g.ReachableInto([]NodeID{0}, mask, sc, nil)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("n=%d node %d: %v vs %v", n, v, got[v], want[v])
			}
		}
		// nil scratch allocates a temporary one.
		got2 := g.ReachableInto([]NodeID{0}, mask, nil, nil)
		for v := range want {
			if got2[v] != want[v] {
				t.Fatalf("nil scratch n=%d node %d: %v vs %v", n, v, got2[v], want[v])
			}
		}
		if g.HasPathScratch(0, NodeID(n-1), mask, nil) != want[n-1] {
			t.Fatalf("nil scratch HasPathScratch n=%d disagrees", n)
		}
	}
}

// TestScratchEpochWrap drives the epoch counter across its wrap point
// and checks traversals stay correct (stale stamps must not read as
// visited after the wrap resets them).
func TestScratchEpochWrap(t *testing.T) {
	r := rng.New(14)
	g := Random(r, 12, 30)
	mask := randomMask(r, g.NumEdges(), 0.5)
	want := g.Reachable([]NodeID{0}, func(id EdgeID) bool { return mask[id] })
	sc := NewScratch(g.NumNodes())
	// Fill stamps with a traversal, then force the wrap.
	g.ReachableInto([]NodeID{0}, mask, sc, nil)
	sc.epoch = ^uint32(0) - 1
	for i := 0; i < 4; i++ {
		got := g.ReachableInto([]NodeID{0}, mask, sc, nil)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("post-wrap traversal %d: node %d: %v vs %v", i, v, got[v], want[v])
			}
		}
		if g.HasPathScratch(0, 11, mask, sc) != want[11] {
			t.Fatalf("post-wrap HasPathScratch %d disagrees", i)
		}
	}
}

// TestTraversalZeroAlloc pins the steady-state contract: with a warmed
// Scratch and destination slice, neither variant allocates.
func TestTraversalZeroAlloc(t *testing.T) {
	r := rng.New(15)
	g := Random(r, 200, 800)
	mask := randomMask(r, g.NumEdges(), 0.5)
	sc := NewScratch(g.NumNodes())
	dst := make([]bool, g.NumNodes())
	sources := []NodeID{0, 7}
	// Warm the queues.
	g.ReachableInto(sources, mask, sc, dst)
	g.HasPathScratch(0, 199, mask, sc)
	if allocs := testing.AllocsPerRun(50, func() {
		dst = g.ReachableInto(sources, mask, sc, dst)
	}); allocs != 0 {
		t.Errorf("ReachableInto allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		g.HasPathScratch(0, 199, mask, sc)
	}); allocs != 0 {
		t.Errorf("HasPathScratch allocates %v per run, want 0", allocs)
	}
}
