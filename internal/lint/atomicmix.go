package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicmixCheck flags struct fields that are accessed through
// sync/atomic functions in one place and through plain loads or stores
// in another. The atomic calls buy nothing once any access bypasses
// them: the plain access races the atomic ones, and the race detector
// only catches it when both sides happen to run under -race. The fix
// is to make every access atomic — or better, to change the field to
// an atomic.Int64-style typed value so the compiler enforces it.
//
// The analysis is package-scoped: it first collects every field whose
// address is passed to a sync/atomic function anywhere in the package,
// then reports each plain (non-atomic) access to one of those fields.
var atomicmixCheck = &Check{
	Name: "atomicmix",
	Desc: "fields accessed via sync/atomic must never also be accessed plainly",
	Run:  runAtomicmix,
}

func runAtomicmix(p *Pass) {
	info := p.Pkg.Info

	// Pass 1: fields used atomically, and the exact selector nodes that
	// appear as &field arguments to atomic calls (so pass 2 can skip
	// them).
	atomicAt := make(map[*types.Var]token.Pos)
	atomicArg := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			obj := calleeObj(info, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if v := selectedField(info, sel); v != nil {
				if prev, seen := atomicAt[v]; !seen || call.Pos() < prev {
					atomicAt[v] = call.Pos()
				}
				atomicArg[sel] = true
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}

	// Pass 2: every other access to those fields is a plain load/store
	// racing the atomic ones.
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArg[sel] {
				return true
			}
			v := selectedField(info, sel)
			if v == nil {
				return true
			}
			atomicPos, mixed := atomicAt[v]
			if !mixed {
				return true
			}
			p.Reportf(sel.Pos(), "field %s is accessed atomically elsewhere (line %d) but plainly here: the plain access races every atomic one; use sync/atomic for all accesses or switch the field to an atomic typed value",
				v.Name(), p.Pkg.Fset.Position(atomicPos).Line)
			return true
		})
	}
}

// selectedField resolves a selector to the struct field it reads or
// writes, or nil when it selects something else (a method, a package
// member, a type).
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
