package lint

import (
	"go/ast"
	"go/types"
)

// determinismCheck enforces the PR-1 reproducibility guarantee at the
// source level: inside the protected packages every random draw must
// come from internal/rng (whose PCG streams are release-independent),
// no code may read the wall clock, and no map may be ranged over —
// Go randomizes map iteration order per run, so any map-range whose
// effects can reach an RNG draw, sampler output, or serialized bytes
// silently breaks bit-identical replay. Map ranges that are provably
// order-insensitive (commutative folds, sorted afterwards) are
// suppressed case by case with a reasoned //flowlint:ignore.
//
// Wall-clock reads are additionally banned in internal/experiments and
// the cmd/ trees, where timing must flow through an injectable clock so
// experiment output stays seed-reproducible.
var determinismCheck = &Check{
	Name: "determinism",
	Desc: "forbid math/rand, wall-clock reads and map-range iteration where reproducibility is guaranteed",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	protected := isProtectedPkg(p.Pkg.Path)
	clockBanned := isClockBannedPkg(p.Pkg.Path)
	if !protected && !clockBanned {
		return
	}
	for _, f := range p.Pkg.Files {
		if protected {
			// The import ban covers test files too: a math/rand draw in a
			// test makes the test itself unreproducible.
			for _, imp := range f.Ast.Imports {
				switch imp.Path.Value {
				case `"math/rand"`, `"math/rand/v2"`:
					p.Reportf(imp.Pos(),
						"import of %s in determinism-protected package %s: draw from internal/rng (forked streams) instead",
						imp.Path.Value, p.Pkg.Path)
				}
			}
		}
		if f.Test {
			continue
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !clockBanned {
					return true
				}
				obj := calleeObj(p.Pkg.Info, n)
				if isPkgFunc(obj, "time", "Now") || isPkgFunc(obj, "time", "Since") {
					p.Reportf(n.Pos(),
						"wall-clock read time.%s in %s: inject a clock (func() time.Time field defaulting to time.Now) so runs are reproducible",
						obj.Name(), p.Pkg.Path)
				}
			case *ast.RangeStmt:
				if !protected {
					return true
				}
				tv, ok := p.Pkg.Info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					p.Reportf(n.Pos(),
						"map-range in determinism-protected package %s: iteration order is randomized per run; iterate sorted keys or suppress with a reason if order cannot reach output",
						p.Pkg.Path)
				}
			}
			return true
		})
	}
}
