package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"infoflow/internal/lint/cfg"
)

// maporderCheck is the flow-sensitive strengthening of the determinism
// check for packages outside the protected core (where map ranging is
// banned outright). Go randomizes map iteration order on purpose, so a
// map-range loop is only safe when nothing downstream observes the
// order. Two patterns do observe it:
//
//   - accumulating floats across iterations (`sum += m[k]`): float
//     addition is not associative, so the same map yields different
//     sums on different runs — bit-level nondeterminism that poisons
//     golden tests and cross-run comparisons;
//
//   - appending to a slice that is then used unsorted: the slice's
//     element order is the iteration order. The check builds the
//     function's CFG and walks forward from the loop's exit block — if
//     every path sorts the slice (a sort.* or slices.Sort* call taking
//     it) before any other use, the order is laundered and the loop is
//     clean; a path that uses the slice first is reported.
//
// Integer accumulation, per-key writes into another map, and slices
// that are sorted on every path are all order-independent and pass.
var maporderCheck = &Check{
	Name: "maporder",
	Desc: "map iteration order must not leak into float sums or unsorted output",
	Run:  runMaporder,
}

func runMaporder(p *Pass) {
	if isProtectedPkg(p.Pkg.Path) {
		// The determinism check bans map ranging outright there.
		return
	}
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		for _, fb := range funcBodies(f) {
			checkMapRanges(p, fb)
		}
	}
}

func checkMapRanges(p *Pass, fb funcBody) {
	// Find this body's own map-range loops first; the CFG is only
	// built when one appends to an outer slice.
	var ranges []*ast.RangeStmt
	inspectShallow(fb.body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			if t := p.Pkg.Info.TypeOf(r.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ranges = append(ranges, r)
				}
			}
		}
		return true
	})
	if len(ranges) == 0 {
		return
	}

	var g *cfg.Graph
	for _, r := range ranges {
		checkFloatAccum(p, fb, r)
		appends := appendTargets(p, fb, r)
		if len(appends) == 0 {
			continue
		}
		if g == nil {
			g = cfg.New(fb.body)
		}
		loop := g.LoopOf(r)
		if loop == nil {
			continue // range inside a nested literal; analyzed there
		}
		for _, tgt := range appends {
			if use := firstUnsortedUse(p, g, loop, tgt.obj); use.IsValid() {
				p.Reportf(tgt.pos, "%s: appending to %s while ranging over a map, and %s is used unsorted afterwards (line %d): element order is the randomized iteration order; sort it first",
					fb.name, tgt.obj.Name(), tgt.obj.Name(), p.Pkg.Fset.Position(use).Line)
			}
		}
	}
}

// checkFloatAccum reports float += / -= accumulation into a variable
// declared outside the loop body.
func checkFloatAccum(p *Pass, fb funcBody, r *ast.RangeStmt) {
	info := p.Pkg.Info
	inspectShallow(r.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) || len(as.Lhs) != 1 {
			return true
		}
		lhs := ast.Unparen(as.Lhs[0])
		t := info.TypeOf(lhs)
		if t == nil || !isFloatKind(t) {
			return true
		}
		switch lhs := lhs.(type) {
		case *ast.IndexExpr:
			// Per-key accumulation into another container: each key's
			// sum sees its own additions in program order.
			return true
		case *ast.Ident:
			obj := info.Uses[lhs]
			if obj == nil {
				obj = info.Defs[lhs]
			}
			if obj != nil && r.Body.Pos() <= obj.Pos() && obj.Pos() < r.Body.End() {
				return true // loop-local accumulator dies each iteration
			}
		}
		p.Reportf(as.Pos(), "%s: float accumulation across a map range: iteration order is randomized and float addition is not associative, so the sum differs run to run; collect and sort the keys first",
			fb.name)
		return true
	})
}

func isFloatKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// appendTarget is one `s = append(s, ...)` inside a map-range body
// whose target s is declared outside the loop.
type appendTarget struct {
	obj types.Object
	pos token.Pos
}

func appendTargets(p *Pass, fb funcBody, r *ast.RangeStmt) []appendTarget {
	info := p.Pkg.Info
	var out []appendTarget
	inspectShallow(r.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" {
			return true
		}
		if obj := info.Uses[fn]; obj == nil || obj.Pkg() != nil {
			return true // shadowed append
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil || (r.Body.Pos() <= obj.Pos() && obj.Pos() < r.Body.End()) {
			return true // loop-local slice; its order dies with the iteration
		}
		out = append(out, appendTarget{obj: obj, pos: as.Pos()})
		return true
	})
	return out
}

// firstUnsortedUse walks the CFG forward from the loop's exit and
// returns the position of the first use of obj on a path where no sort
// call laundered the order first, or NoPos when every path sorts
// before use (or never uses it).
func firstUnsortedUse(p *Pass, g *cfg.Graph, loop *cfg.Loop, obj types.Object) token.Pos {
	visited := make(map[*cfg.Block]bool)
	var bad token.Pos
	var walk func(b *cfg.Block)
	walk = func(b *cfg.Block) {
		if visited[b] || bad.IsValid() {
			return
		}
		visited[b] = true
		for _, n := range b.Nodes {
			if nodeSortsObj(p, n, obj) {
				return // order laundered; this path is clean
			}
			if pos := nodeUsesObj(p, n, obj); pos.IsValid() {
				bad = pos
				return
			}
		}
		if b.Kind == cfg.KindSelect || b.Kind == cfg.KindForHead || b.Kind == cfg.KindRangeHead {
			// Head nodes were scanned above; comm/iteration details
			// live in successor blocks.
		}
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(loop.Exit)
	return bad
}

// nodeSortsObj reports whether n contains a sort.*/slices.Sort* call
// taking obj as an argument.
func nodeSortsObj(p *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeObj(p.Pkg.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		path := callee.Pkg().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if identUses(p, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// nodeUsesObj returns the position of the first identifier in n that
// resolves to obj, or NoPos.
func nodeUsesObj(p *Pass, n ast.Node, obj types.Object) token.Pos {
	pos := token.NoPos
	ast.Inspect(n, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
			pos = id.Pos()
		}
		return !pos.IsValid()
	})
	return pos
}

// identUses reports whether expr (possibly a larger expression)
// references obj anywhere.
func identUses(p *Pass, e ast.Expr, obj types.Object) bool {
	return nodeUsesObj(p, e, obj).IsValid()
}
