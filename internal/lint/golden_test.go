package lint

import (
	"regexp"
	"strings"
	"testing"
)

// The golden harness, in the style of analysistest: every fixture file
// under testdata/src marks its expected findings with trailing
//
//	// want `regex` [`regex` ...]
//
// comments, one backquoted regex per expected diagnostic on that line.
// The test fails on any unmatched want and on any diagnostic no want
// claims, so fixtures document the checks' exact true-positive and
// true-negative behavior.

// wantSpec is one expectation parsed from a fixture comment.
type wantSpec struct {
	file string
	line int
	re   *regexp.Regexp
}

func TestGoldenFixtures(t *testing.T) {
	mod, err := LoadFixtureTree("testdata/src", "../..")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod.Pkgs, Checks())
	wants := collectWants(t, mod)
	if len(wants) == 0 {
		t.Fatal("no want comments found under testdata/src")
	}

	claimed := make([]bool, len(diags))
	matchedChecks := make(map[string]bool)
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if claimed[i] || d.File != w.file || d.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				claimed[i] = true
				matchedChecks[d.Check] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !claimed[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}

	// The fixture corpus must hold at least one true positive per check.
	for _, c := range Checks() {
		if !matchedChecks[c.Name] {
			t.Errorf("no fixture exercises a true positive for check %q", c.Name)
		}
	}
}

// TestMisplacedHotpath loads a separate tree whose directive diagnostic
// lands on the directive's own line, where no want comment can sit.
func TestMisplacedHotpath(t *testing.T) {
	mod, err := LoadFixtureTree("testdata/misplaced", "")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod.Pkgs, Checks())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Check != "hotpath" || !strings.Contains(d.Message, "misplaced //flowlint:hotpath") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestDirectiveDiagnostics checks that grammar violations surface as
// "directive" findings through Run — including the attempt to suppress
// the grammar checker itself, which is rejected as an unknown check.
func TestDirectiveDiagnostics(t *testing.T) {
	mod, err := LoadFixtureTree("testdata/baddirectives", "")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod.Pkgs, Checks())
	expected := []string{
		"//flowlint:ignore requires a reason",
		`//flowlint:ignore of unknown check "nosuchcheck"`,
		`unknown //flowlint directive "frobnicate"`,
		"//flowlint:ignore needs a check name",
		"//flowlint:hotpath takes no arguments",
		`//flowlint:ignore of unknown check "directive"`,
	}
	if len(diags) != len(expected) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(expected), diags)
	}
	for _, d := range diags {
		if d.Check != "directive" {
			t.Errorf("diagnostic carries check %q, want \"directive\": %s", d.Check, d)
		}
	}
	for _, want := range expected {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic contains %q in %v", want, diags)
		}
	}
}

// collectWants scans every fixture file for want comments.
func collectWants(t *testing.T, mod *Module) []wantSpec {
	t.Helper()
	var wants []wantSpec
	seen := make(map[string]bool)
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			if seen[f.Name] {
				continue
			}
			seen[f.Name] = true
			for _, group := range f.Ast.Comments {
				for _, c := range group.List {
					body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(body, "want ")
					if !ok {
						continue
					}
					line := mod.Fset.Position(c.Slash).Line
					for _, pat := range splitWantPatterns(t, f.Name, line, rest) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", f.Name, line, pat, err)
						}
						wants = append(wants, wantSpec{file: f.Name, line: line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// splitWantPatterns parses the backquoted regexes of one want comment.
func splitWantPatterns(t *testing.T, file string, line int, rest string) []string {
	t.Helper()
	var pats []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		if rest[0] != '`' {
			t.Fatalf("%s:%d: want patterns must be backquoted, got %q", file, line, rest)
		}
		end := strings.IndexByte(rest[1:], '`')
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want pattern %q", file, line, rest)
		}
		pats = append(pats, rest[1:1+end])
		rest = strings.TrimSpace(rest[end+2:])
	}
	return pats
}
