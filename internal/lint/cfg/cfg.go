// Package cfg builds per-function control-flow graphs over go/ast for
// the flow-sensitive flowlint checks (locksafe, ctxleak, maporder).
// Construction is purely syntactic — no type information — so one
// builder serves real packages and fixture trees alike; clients that
// need types resolve them against the nodes the blocks carry.
//
// The graph is a list of basic blocks connected by directed edges.
// Each block holds the "simple" nodes control passes through in order:
// expressions (if/for/switch conditions, range operands) and simple
// statements (assignments, sends, calls, defer, go, return). Compound
// statements never appear as nodes; they are desugared into blocks and
// edges:
//
//   - if/else become a condition block branching to then/else blocks
//     that re-join afterwards;
//   - for and range become head/body/exit blocks with back edges
//     (break/continue, labeled or not, target the right blocks);
//   - switch/type-switch become a tag block fanning out to one block
//     per case, with fallthrough edges between case bodies;
//   - select becomes a head block (Kind KindSelect) fanning out to one
//     block per comm clause — the comm operation itself blocks at the
//     head, so the head is where a "blocks here" analysis should look,
//     and a head whose select carries no default clause may block
//     forever;
//   - return and panic(...) terminate their block with an edge to the
//     synthetic Exit block (Term records which); os.Exit and
//     log.Fatal* terminate the same way;
//   - goto edges resolve through their labels, forward or backward.
//
// Function literals are opaque: a FuncLit appears inside whatever node
// contains it and its body is NOT part of the enclosing function's
// graph — analyses build a separate graph per literal.
package cfg

import (
	"go/ast"
)

// Term classifies how a block's control leaves it.
type Term uint8

const (
	// TermNone: control falls through to the block's successors.
	TermNone Term = iota
	// TermReturn: the block ends in a return (explicit or the implicit
	// fall-off-the-end return) and its edge leads to Exit.
	TermReturn
	// TermPanic: the block ends in panic(...), os.Exit or log.Fatal*;
	// its edge leads to Exit but no deferred cleanup contract applies
	// to ordinary callers.
	TermPanic
)

// Kind classifies what a block desugars.
type Kind uint8

const (
	// KindPlain is an ordinary straight-line block.
	KindPlain Kind = iota
	// KindForHead is a for-loop head: its nodes end with the loop
	// condition (if any) and its two successors are body and exit.
	KindForHead
	// KindRangeHead is a range-loop head: its nodes end with the range
	// operand expression; Ctrl is the *ast.RangeStmt.
	KindRangeHead
	// KindSelect is a select head; Ctrl is the *ast.SelectStmt. The
	// comm operations block here, one successor per clause.
	KindSelect
)

// Block is one basic block.
type Block struct {
	Index int
	Kind  Kind
	// Ctrl is the compound statement a non-plain block desugars
	// (*ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt), nil for plain
	// blocks.
	Ctrl ast.Stmt
	// Nodes are the simple statements and expressions control passes
	// through, in order. Nested function literals inside a node belong
	// to their own graph.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	Term  Term
}

// Loop records the blocks a for/range statement desugars to.
type Loop struct {
	Stmt ast.Stmt // *ast.ForStmt or *ast.RangeStmt
	Head *Block
	Body *Block
	// Exit is where control lands when the loop finishes or breaks.
	Exit *Block
}

// Graph is one function body's control-flow graph.
type Graph struct {
	Entry *Block
	// Exit is the synthetic sink every return/panic block feeds.
	Exit   *Block
	Blocks []*Block
	// Loops indexes the desugared loops by their source statement, in
	// source order.
	Loops []*Loop
}

// LoopOf returns the Loop desugared from stmt, or nil.
func (g *Graph) LoopOf(stmt ast.Stmt) *Loop {
	for _, l := range g.Loops {
		if l.Stmt == stmt {
			return l
		}
	}
	return nil
}

// New builds the control-flow graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: make(map[string]*Block), gotos: make(map[string][]*Block)}
	g.Entry = b.block()
	g.Exit = b.block()
	b.cur = g.Entry
	b.stmt(body)
	// Falling off the end is an implicit return.
	if b.cur.Term == TermNone {
		b.cur.Term = TermReturn
		b.edge(b.cur, g.Exit)
	}
	// A goto whose label never materialized cannot occur in
	// type-checked code; dangling entries are simply dropped.
	return g
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label string // enclosing label, "" if none
	brk   *Block // break target (nil: break does not bind here)
	cont  *Block // continue target (nil for switch/select)
}

type builder struct {
	g     *Graph
	cur   *Block
	stack []frame
	// label pending for the immediately following for/range/switch,
	// consumed by the construct that binds it.
	pendingLabel string
	labels       map[string]*Block   // label → its block
	gotos        map[string][]*Block // unresolved forward gotos
	// fallthroughTo is the next case body while building a switch case.
	fallthroughTo *Block
}

func (b *builder) block() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a simple node to the current block.
func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// terminate ends the current block with an edge to Exit and opens an
// unreachable continuation.
func (b *builder) terminate(t Term) {
	b.cur.Term = t
	b.edge(b.cur, b.g.Exit)
	b.cur = b.block()
}

// jump ends the current block with an edge to target (break, continue,
// goto) and opens an unreachable continuation.
func (b *builder) jump(target *Block) {
	b.edge(b.cur, target)
	b.cur = b.block()
}

// takeLabel consumes the label pending for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.stmt(s.Init)
		b.add(s.Cond)
		head := b.cur
		after := b.block()
		thenB := b.block()
		b.edge(head, thenB)
		b.cur = thenB
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			elseB := b.block()
			b.edge(head, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(head, after)
		}
		b.cur = after
	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		head := b.block()
		head.Kind = KindForHead
		head.Ctrl = s
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.block()
		after := b.block()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		cont := head
		if s.Post != nil {
			cont = b.block()
			prev := b.cur
			b.cur = cont
			b.stmt(s.Post)
			b.edge(b.cur, head)
			b.cur = prev
		}
		b.g.Loops = append(b.g.Loops, &Loop{Stmt: s, Head: head, Body: body, Exit: after})
		b.stack = append(b.stack, frame{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		b.stack = b.stack[:len(b.stack)-1]
		b.edge(b.cur, cont)
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.block()
		head.Kind = KindRangeHead
		head.Ctrl = s
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s.X)
		body := b.block()
		after := b.block()
		b.edge(head, body)
		b.edge(head, after)
		b.g.Loops = append(b.g.Loops, &Loop{Stmt: s, Head: head, Body: body, Exit: after})
		b.stack = append(b.stack, frame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.stack = b.stack[:len(b.stack)-1]
		b.edge(b.cur, head)
		b.cur = after
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Body)
		// s.Assign's type assertion carries no control flow worth a
		// node of its own; clients that care about the bound variable
		// read it off the clause bodies' uses.
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		if len(head.Nodes) > 0 || head.Kind != KindPlain {
			head = b.block()
			b.edge(b.cur, head)
		}
		head.Kind = KindSelect
		head.Ctrl = s
		after := b.block()
		b.stack = append(b.stack, frame{label: label, brk: after})
		for _, cl := range s.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			clause := b.block()
			b.edge(head, clause)
			b.cur = clause
			for _, st := range comm.Body {
				b.stmt(st)
			}
			b.edge(b.cur, after)
		}
		b.stack = b.stack[:len(b.stack)-1]
		if len(s.Body.List) == 0 {
			// An empty select blocks forever.
			head.Term = TermPanic
			b.edge(head, b.g.Exit)
		}
		b.cur = after
	case *ast.LabeledStmt:
		target := b.block()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		for _, from := range b.gotos[s.Label.Name] {
			b.edge(from, target)
		}
		delete(b.gotos, s.Label.Name)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(TermReturn)
	case *ast.ExprStmt:
		b.add(s)
		if terminates(s.X) {
			b.terminate(TermPanic)
		}
	case *ast.DeferStmt, *ast.GoStmt, *ast.AssignStmt, *ast.SendStmt,
		*ast.IncDecStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.add(s)
	default:
		// Anything unrecognized is carried as an opaque node so its
		// expressions stay visible to analyses.
		b.add(s)
	}
}

// switchStmt desugars switch and type-switch: a tag block fanning out
// to one block per case, fallthrough edges between case bodies, and an
// implicit edge past the switch when no default exists.
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.stmt(init)
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	after := b.block()
	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.block()
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.stack = append(b.stack, frame{label: label, brk: after})
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = after
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.fallthroughTo = nil
		b.edge(b.cur, after)
	}
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = after
}

// branch wires break, continue, goto and fallthrough.
func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.stack) - 1; i >= 0; i-- {
			f := b.stack[i]
			if f.brk != nil && (label == "" || f.label == label) {
				b.jump(f.brk)
				return
			}
		}
	case "continue":
		for i := len(b.stack) - 1; i >= 0; i-- {
			f := b.stack[i]
			if f.cont != nil && (label == "" || f.label == label) {
				b.jump(f.cont)
				return
			}
		}
	case "goto":
		if target, ok := b.labels[label]; ok {
			b.jump(target)
			return
		}
		from := b.cur
		b.gotos[label] = append(b.gotos[label], from)
		b.cur = b.block()
		return
	case "fallthrough":
		if b.fallthroughTo != nil {
			b.jump(b.fallthroughTo)
			return
		}
	}
	// A branch that binds to nothing (malformed source); treat as a
	// no-op so the graph stays connected.
}

// terminates reports whether the expression statement never returns:
// the panic builtin, os.Exit, runtime.Goexit, or log.Fatal*. Matching
// is syntactic — cfg has no type information — which is the accepted
// imprecision of this layer.
func terminates(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fun.Sel.Name == "Fatal" ||
			fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}
