package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses a function body and returns its graph.
func buildFunc(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// reachableTerms counts reachable blocks by terminator.
func reachableTerms(g *Graph) map[Term]int {
	counts := make(map[Term]int)
	for _, b := range g.Reachable() {
		if b != g.Exit {
			counts[b.Term]++
		}
	}
	return counts
}

func TestStraightLineImplicitReturn(t *testing.T) {
	g := buildFunc(t, "x := 1\n_ = x")
	if g.Entry.Term != TermReturn {
		t.Errorf("entry term = %v, want TermReturn (implicit)", g.Entry.Term)
	}
	if len(g.Entry.Nodes) != 2 {
		t.Errorf("entry holds %d nodes, want 2", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Errorf("entry should feed Exit directly")
	}
}

func TestIfElseJoins(t *testing.T) {
	g := buildFunc(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x")
	// entry(cond) → then, else; both → join → exit.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2", len(g.Entry.Succs))
	}
	join := g.Entry.Succs[0].Succs[0]
	if g.Entry.Succs[1].Succs[0] != join {
		t.Errorf("then and else do not re-join")
	}
	if join.Term != TermReturn {
		t.Errorf("join term = %v, want TermReturn", join.Term)
	}
}

func TestIfWithoutElseBranchesPast(t *testing.T) {
	g := buildFunc(t, "x := 1\nif x > 0 {\nx = 2\n}\n_ = x")
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2 (then, after)", len(g.Entry.Succs))
	}
}

func TestForLoopShape(t *testing.T) {
	g := buildFunc(t, "s := 0\nfor i := 0; i < 10; i++ {\ns += i\n}\n_ = s")
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(g.Loops))
	}
	l := g.Loops[0]
	if l.Head.Kind != KindForHead {
		t.Errorf("head kind = %v, want KindForHead", l.Head.Kind)
	}
	if len(l.Head.Succs) != 2 {
		t.Errorf("head has %d successors, want 2 (body, exit)", len(l.Head.Succs))
	}
	// The body must cycle back to the head through the post block.
	post := l.Body.Succs[0]
	if len(post.Succs) != 1 || post.Succs[0] != l.Head {
		t.Errorf("body does not cycle back to the head via post")
	}
	if _, ok := l.Stmt.(*ast.ForStmt); !ok {
		t.Errorf("loop stmt is %T, want *ast.ForStmt", l.Stmt)
	}
}

func TestInfiniteLoopExitUnreachable(t *testing.T) {
	g := buildFunc(t, "for {\n_ = 1\n}")
	l := g.Loops[0]
	for _, b := range g.Reachable() {
		if b == l.Exit {
			t.Errorf("exit of `for {}` should be unreachable")
		}
	}
}

func TestBreakAndContinueTargets(t *testing.T) {
	g := buildFunc(t, "for i := 0; i < 10; i++ {\nif i == 3 {\nbreak\n}\nif i == 2 {\ncontinue\n}\n_ = i\n}")
	l := g.Loops[0]
	brk := 0
	for _, b := range g.Reachable() {
		for _, s := range b.Succs {
			if s == l.Exit {
				brk++
			}
		}
	}
	// Head→exit plus the break edge.
	if brk != 2 {
		t.Errorf("%d edges into loop exit, want 2 (cond false, break)", brk)
	}
	// The continue targets the post block (i++), which is the head's
	// sole non-entry predecessor chain: the post block must have at
	// least 2 predecessors (body fall-through + continue).
	var post *Block
	for _, p := range l.Head.Preds {
		if p != g.Entry && len(p.Succs) == 1 && p.Succs[0] == l.Head {
			post = p
		}
	}
	if post == nil {
		t.Fatal("no post block cycling into the head")
	}
	if len(post.Preds) < 2 {
		t.Errorf("post block has %d predecessors, want >= 2 (body end + continue)", len(post.Preds))
	}
}

func TestLabeledBreak(t *testing.T) {
	g := buildFunc(t, "outer:\nfor i := 0; i < 3; i++ {\nfor j := 0; j < 3; j++ {\nif j == i {\nbreak outer\n}\n}\n}\n_ = 1")
	if len(g.Loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(g.Loops))
	}
	outer := g.Loops[0]
	// Some block inside the inner loop must edge straight to the outer
	// loop's exit.
	found := false
	for _, b := range g.Reachable() {
		for _, s := range b.Succs {
			if s == outer.Exit && b != outer.Head {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no labeled-break edge to the outer loop exit")
	}
}

func TestRangeDesugaring(t *testing.T) {
	g := buildFunc(t, "xs := []int{1, 2}\nt := 0\nfor _, v := range xs {\nt += v\n}\n_ = t")
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(g.Loops))
	}
	l := g.Loops[0]
	if l.Head.Kind != KindRangeHead {
		t.Errorf("head kind = %v, want KindRangeHead", l.Head.Kind)
	}
	if g.LoopOf(l.Stmt) != l {
		t.Errorf("LoopOf does not find the range loop")
	}
	// Head carries the range operand and branches to body and exit.
	if len(l.Head.Nodes) != 1 {
		t.Errorf("range head holds %d nodes, want 1 (the operand)", len(l.Head.Nodes))
	}
	if len(l.Head.Succs) != 2 {
		t.Errorf("range head has %d successors, want 2", len(l.Head.Succs))
	}
	if l.Body.Succs[0] != l.Head {
		t.Errorf("range body does not cycle back to the head")
	}
}

func TestReturnAndPanicTerminate(t *testing.T) {
	g := buildFunc(t, "x := 1\nif x > 0 {\nreturn\n}\npanic(\"boom\")")
	terms := reachableTerms(g)
	if terms[TermReturn] != 1 {
		t.Errorf("%d return blocks, want 1", terms[TermReturn])
	}
	if terms[TermPanic] != 1 {
		t.Errorf("%d panic blocks, want 1", terms[TermPanic])
	}
}

func TestOsExitTerminates(t *testing.T) {
	g := buildFunc(t, "os.Exit(2)\n_ = 1")
	terms := reachableTerms(g)
	if terms[TermPanic] != 1 {
		t.Errorf("os.Exit did not terminate its block: %v", terms)
	}
	// The statement after os.Exit is unreachable.
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.AssignStmt); ok {
				t.Errorf("unreachable assignment %v is in a reachable block", es)
			}
		}
	}
}

func TestSwitchFanOutAndFallthrough(t *testing.T) {
	g := buildFunc(t, "x := 1\nswitch x {\ncase 1:\nx = 10\nfallthrough\ncase 2:\nx = 20\ndefault:\nx = 30\n}\n_ = x")
	// The head fans out to three case blocks; with a default there is
	// no head→after edge.
	if len(g.Entry.Succs) != 3 {
		t.Fatalf("switch head has %d successors, want 3", len(g.Entry.Succs))
	}
	case1 := g.Entry.Succs[0]
	case2 := g.Entry.Succs[1]
	// case1 falls through into case2's body.
	found := false
	for _, s := range case1.Succs {
		if s == case2 {
			found = true
		}
	}
	if !found {
		t.Errorf("fallthrough edge from case 1 to case 2 missing")
	}
}

func TestSwitchWithoutDefaultSkips(t *testing.T) {
	g := buildFunc(t, "x := 1\nswitch x {\ncase 1:\nx = 10\n}\n_ = x")
	// head → case, after.
	if len(g.Entry.Succs) != 2 {
		t.Errorf("switch head has %d successors, want 2 (case, after)", len(g.Entry.Succs))
	}
}

func TestSelectHead(t *testing.T) {
	g := buildFunc(t, "ch := make(chan int)\ndone := make(chan struct{})\nselect {\ncase v := <-ch:\n_ = v\ncase <-done:\nreturn\n}\n_ = 1")
	var head *Block
	for _, b := range g.Reachable() {
		if b.Kind == KindSelect {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no KindSelect block")
	}
	if _, ok := head.Ctrl.(*ast.SelectStmt); !ok {
		t.Fatalf("select head Ctrl is %T", head.Ctrl)
	}
	if len(head.Succs) != 2 {
		t.Errorf("select head has %d successors, want 2 (one per clause)", len(head.Succs))
	}
}

func TestGotoBackward(t *testing.T) {
	g := buildFunc(t, "i := 0\nagain:\ni++\nif i < 3 {\ngoto again\n}\n_ = i")
	// The goto must produce a cycle: some reachable block's successor
	// list contains a block with a smaller index.
	cyclic := false
	for _, b := range g.Reachable() {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit {
				cyclic = true
			}
		}
	}
	if !cyclic {
		t.Errorf("backward goto produced no cycle")
	}
}

func TestDeferAndGoAreNodes(t *testing.T) {
	g := buildFunc(t, "defer f()\ngo f()\n_ = 1")
	var defers, gos int
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			switch n.(type) {
			case *ast.DeferStmt:
				defers++
			case *ast.GoStmt:
				gos++
			}
		}
	}
	if defers != 1 || gos != 1 {
		t.Errorf("defer/go nodes = %d/%d, want 1/1", defers, gos)
	}
}

func TestForwardReachingFacts(t *testing.T) {
	// Count assignments along each path; the branch facts join at the
	// merge with max, so the exit sees the longer (then) path's count.
	g := buildFunc(t, "x := 1\nif x > 0 {\nx = 2\nx = 3\n} else {\nx = 4\n}\n_ = x")
	counts := func(b *Block) int {
		n := 0
		for _, nd := range b.Nodes {
			if _, ok := nd.(*ast.AssignStmt); ok {
				n++
			}
		}
		return n
	}
	type fact struct{ n int }
	in, _ := Forward(g, &fact{},
		func(f *fact) *fact { c := *f; return &c },
		func(dst, src *fact) (*fact, bool) {
			if src.n > dst.n {
				dst.n = src.n
				return dst, true
			}
			return dst, false
		},
		func(b *Block, f *fact) { f.n += counts(b) },
	)
	// x := 1 and _ = x are define/blank assigns: 2 on the spine, plus
	// 2 in the then branch = 4 on the max path into exit.
	if got := in[g.Exit].n; got != 4 {
		t.Errorf("assignments reaching exit = %d, want 4 (max path)", got)
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	// A loop must reach a fixpoint, not iterate forever: saturating
	// join at 10.
	g := buildFunc(t, "for i := 0; i < 5; i++ {\n_ = i\n}")
	type fact struct{ n int }
	in, _ := Forward(g, &fact{},
		func(f *fact) *fact { c := *f; return &c },
		func(dst, src *fact) (*fact, bool) {
			if src.n > dst.n && dst.n < 10 {
				dst.n = src.n
				if dst.n > 10 {
					dst.n = 10
				}
				return dst, true
			}
			return dst, false
		},
		func(b *Block, f *fact) {
			if f.n < 10 {
				f.n++
			}
		},
	)
	if in[g.Exit] == nil {
		t.Fatal("no fact reached exit")
	}
}
