package cfg

// Forward runs a forward worklist dataflow analysis over the blocks
// reachable from g.Entry and returns the fixpoint facts at each
// block's entry and exit. The client supplies the lattice:
//
//   - entry is the fact at function entry;
//   - clone returns an independent copy of a fact (facts are shared
//     across edges only through clone, so transfer may mutate freely);
//   - join merges src into dst and reports whether dst changed; it is
//     the lattice least-upper-bound and must be monotone for the
//     worklist to terminate;
//   - transfer folds one block's nodes into a fact in place.
//
// Unreachable blocks get no facts; a client that reports from the
// result should iterate g.Blocks and skip blocks absent from the maps.
func Forward[F any](
	g *Graph,
	entry F,
	clone func(F) F,
	join func(dst, src F) (F, bool),
	transfer func(b *Block, f F),
) (in, out map[*Block]F) {
	in = make(map[*Block]F, len(g.Blocks))
	out = make(map[*Block]F, len(g.Blocks))
	in[g.Entry] = entry

	queued := make([]bool, len(g.Blocks))
	work := []*Block{g.Entry}
	queued[g.Entry.Index] = true
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		queued[blk.Index] = false

		f := clone(in[blk])
		transfer(blk, f)
		out[blk] = f

		for _, s := range blk.Succs {
			changed := false
			if cur, ok := in[s]; ok {
				in[s], changed = join(cur, f)
			} else {
				in[s] = clone(f)
				changed = true
			}
			if changed && !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in, out
}

// Reachable returns the blocks reachable from g.Entry in index order.
func (g *Graph) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	seen[g.Entry.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	var out []*Block
	for _, blk := range g.Blocks {
		if seen[blk.Index] {
			out = append(out, blk)
		}
	}
	return out
}
