package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseDirectiveGrammar(t *testing.T) {
	known := KnownChecks()
	cases := []struct {
		rest    string // text after "//flowlint:"
		verb    string
		check   string
		reason  string
		problem string // substring of the expected grammar diagnostic
	}{
		{rest: "hotpath", verb: "hotpath"},
		{rest: "hotpath now", problem: "takes no arguments"},
		{rest: "invariant", verb: "invariant"},
		{rest: "invariant n is always positive", verb: "invariant", reason: "n is always positive"},
		{rest: "ignore floatcmp -- exact sentinel", verb: "ignore", check: "floatcmp", reason: "exact sentinel"},
		{rest: "ignore floatcmp --   padded   ", verb: "ignore", check: "floatcmp", reason: "padded"},
		{rest: "ignore floatcmp", problem: "requires a reason"},
		{rest: "ignore floatcmp --", problem: "requires a reason"},
		{rest: "ignore floatcmp -- ", problem: "requires a reason"},
		{rest: "ignore", problem: "needs a check name"},
		{rest: "ignore -- just a reason", problem: "needs a check name"},
		{rest: "ignore nosuchcheck -- reason", problem: `unknown check "nosuchcheck"`},
		{rest: "ignore directive -- reason", problem: `unknown check "directive"`},
		{rest: "ignore floatcmp hotpath -- reason", problem: "exactly one check"},
		{rest: "", problem: "empty //flowlint directive"},
		{rest: "frobnicate", problem: `unknown //flowlint directive "frobnicate"`},
	}
	for _, tc := range cases {
		d, problem := parseDirective(tc.rest, known)
		if tc.problem != "" {
			if problem == "" || !strings.Contains(problem, tc.problem) {
				t.Errorf("parseDirective(%q) problem = %q, want containing %q", tc.rest, problem, tc.problem)
			}
			continue
		}
		if problem != "" {
			t.Errorf("parseDirective(%q) unexpectedly failed: %s", tc.rest, problem)
			continue
		}
		if d.Verb != tc.verb || d.Check != tc.check || d.Reason != tc.reason {
			t.Errorf("parseDirective(%q) = {%q %q %q}, want {%q %q %q}",
				tc.rest, d.Verb, d.Check, d.Reason, tc.verb, tc.check, tc.reason)
		}
	}
}

func TestDirectiveTargeting(t *testing.T) {
	src := `package p

func f(m map[int]int) int {
	x := 1 //flowlint:ignore floatcmp -- trailing form annotates its own line
	//flowlint:ignore determinism -- standalone form annotates the next line
	for range m {
	}
	if x < 0 {
		//flowlint:invariant x starts at 1 and never decreases
		panic("unreachable")
	}
	return x
}
`
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	fd := parseDirectives(fset, af, []byte(src), KnownChecks())
	if len(fd.diags) != 0 {
		t.Fatalf("unexpected grammar diagnostics: %v", fd.diags)
	}
	if !fd.ignored(4, "floatcmp") {
		t.Error("trailing ignore does not annotate its own line")
	}
	if fd.ignored(4, "determinism") {
		t.Error("ignore suppresses a check it does not name")
	}
	if !fd.ignored(6, "determinism") {
		t.Error("standalone ignore does not annotate the following line")
	}
	if fd.ignored(5, "determinism") {
		t.Error("standalone ignore annotates its own line")
	}
	if !fd.invariant(10) {
		t.Error("invariant does not annotate the guarded panic line")
	}
	if fd.invariant(9) {
		t.Error("invariant annotates its own comment line")
	}
}
