package lint

import (
	"go/ast"
	"go/token"
)

// ctxleakCheck enforces the two context disciplines the serving stack
// depends on for clean shutdown:
//
//   - context.Context does not belong in struct fields. A stored
//     context outlives the call that created it, silently pins that
//     call's deadline and values, and makes cancellation scope
//     invisible at the use site. Pass contexts as parameters; the rare
//     legitimate carrier (a queued request bundling its caller's
//     cancellation) must say so with a reasoned //flowlint:ignore.
//
//   - a loop in a context-carrying function must consult its context.
//     A worker loop that blocks on channels or sleeps without ever
//     touching ctx cannot be cancelled: shutdown hangs on it. Any
//     reference to the context inside the loop body (a ctx.Done()
//     select arm, ctx.Err() poll, or passing ctx to a callee that
//     checks it) satisfies the rule.
//
// Blocking is attributed to the innermost enclosing loop, so a nested
// uncancellable loop is reported once, at the loop that actually
// spins.
var ctxleakCheck = &Check{
	Name: "ctxleak",
	Desc: "contexts must be passed, not stored; blocking loops must consult their context",
	Run:  runCtxleak,
}

func runCtxleak(p *Pass) {
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		checkCtxFields(p, f)
		for _, fb := range funcBodies(f) {
			checkCtxLoops(p, fb)
		}
	}
}

// checkCtxFields reports struct fields of type context.Context.
func checkCtxFields(p *Pass, f *File) {
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			t := p.Pkg.Info.TypeOf(field.Type)
			if t == nil || !isContextType(t) {
				continue
			}
			p.Reportf(field.Pos(), "context.Context stored in a struct field: the context outlives its call and hides cancellation scope; pass it as a parameter instead")
		}
		return true
	})
}

// checkCtxLoops reports loops that block without consulting the
// function's context parameter.
func checkCtxLoops(p *Pass, fb funcBody) {
	if !hasContextParam(p, fb) {
		return
	}

	// Collect this body's own loops (not those of nested literals,
	// which are analyzed as bodies in their own right).
	type loopInfo struct {
		pos    token.Pos
		body   *ast.BlockStmt
		blocks bool
	}
	var loops []*loopInfo
	inspectShallow(fb.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, &loopInfo{pos: n.Pos(), body: n.Body})
		case *ast.RangeStmt:
			loops = append(loops, &loopInfo{pos: n.Pos(), body: n.Body})
		}
		return true
	})
	if len(loops) == 0 {
		return
	}

	// Attribute each blocking operation to its innermost enclosing
	// loop. Loops were collected in Inspect (pre-)order, so the last
	// loop whose body spans the position is the innermost.
	attribute := func(pos token.Pos) {
		var innermost *loopInfo
		for _, l := range loops {
			if l.body.Pos() <= pos && pos < l.body.End() {
				innermost = l
			}
		}
		if innermost != nil {
			innermost.blocks = true
		}
	}
	inspectShallow(fb.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			attribute(n.Arrow)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				attribute(n.OpPos)
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				attribute(n.Pos())
			}
		case *ast.CallExpr:
			if obj := calleeObj(p.Pkg.Info, n); isPkgFunc(obj, "time", "Sleep") {
				attribute(n.Pos())
				return true
			}
			if tn, m, ok := syncMethodName(p.Pkg.Info, n); ok &&
				((tn == "WaitGroup" && m == "Wait") || (tn == "Cond" && m == "Wait")) {
				attribute(n.Pos())
			}
		}
		return true
	})

	for _, l := range loops {
		if !l.blocks || referencesContext(p, l.body) {
			continue
		}
		p.Reportf(l.pos, "%s: loop blocks without consulting its context: cancellation cannot interrupt it and shutdown hangs; add a ctx.Done() select arm or a ctx.Err() check",
			fb.name)
	}
}

// hasContextParam reports whether the function declares a
// context.Context parameter.
func hasContextParam(p *Pass, fb funcBody) bool {
	var params *ast.FieldList
	switch {
	case fb.decl != nil:
		params = fb.decl.Type.Params
	case fb.lit != nil:
		params = fb.lit.Type.Params
	}
	if params == nil {
		return false
	}
	for _, field := range params.List {
		if t := p.Pkg.Info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// referencesContext reports whether any identifier in the subtree has
// context.Context type — a Done() arm, an Err() poll, or ctx handed to
// a callee all qualify.
func referencesContext(p *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if t := p.Pkg.Info.TypeOf(id); t != nil && isContextType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}
