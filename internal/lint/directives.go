package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //flowlint directive grammar. Three verbs exist:
//
//	//flowlint:hotpath
//	    On a function's doc comment: the function body must stay free
//	    of allocating constructs (see the hotpath check).
//
//	//flowlint:invariant [description]
//	    On (or immediately above) a statement: marks an unreachable
//	    guard. The guarded line is exempt from panicfree and hotpath.
//
//	//flowlint:ignore <check> -- <reason>
//	    Suppresses findings of <check> on the annotated line. The
//	    reason is mandatory and the check name must be registered;
//	    violations of the grammar are themselves diagnostics (check
//	    name "directive") and are never suppressible.
//
// A directive written as a trailing comment applies to its own line; a
// directive on a line of its own (or in a doc comment group) applies to
// the first line after its comment group.
const directivePrefix = "//flowlint:"

// Directive is one parsed //flowlint comment.
type Directive struct {
	Verb   string // "hotpath", "invariant" or "ignore"
	Check  string // for ignore: the suppressed check
	Reason string // for ignore (mandatory) and invariant (optional)
	Pos    token.Pos
	Target int // source line the directive governs
}

// FileDirectives indexes the directives of one file.
type FileDirectives struct {
	ignores    map[int]map[string]*Directive // target line → check → directive
	invariants map[int]*Directive            // target line → directive
	hotpaths   []*Directive
	diags      []Diagnostic
}

// ignored reports whether findings of check on line are suppressed.
func (fd *FileDirectives) ignored(line int, check string) bool {
	return fd.ignores[line][check] != nil
}

// invariant reports whether line carries an invariant annotation.
func (fd *FileDirectives) invariant(line int) bool {
	return fd.invariants[line] != nil
}

// parseDirectives scans a parsed file's comments for //flowlint
// directives. src is the file's source bytes (used to tell trailing
// comments from whole-line comments); known is the set of registered
// check names an ignore directive may reference.
func parseDirectives(fset *token.FileSet, f *ast.File, src []byte, known map[string]bool) *FileDirectives {
	fd := &FileDirectives{
		ignores:    make(map[int]map[string]*Directive),
		invariants: make(map[int]*Directive),
	}
	for _, group := range f.Comments {
		groupEnd := fset.Position(group.End()).Line
		for _, c := range group.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Slash)
			target := groupEnd + 1
			if trailingComment(src, fset, c.Slash) {
				target = pos.Line
			}
			d, problem := parseDirective(text[len(directivePrefix):], known)
			if problem != "" {
				fd.diags = append(fd.diags, Diagnostic{
					File:    pos.Filename,
					Line:    pos.Line,
					Col:     pos.Column,
					Check:   "directive",
					Message: problem,
				})
				continue
			}
			d.Pos = c.Slash
			d.Target = target
			switch d.Verb {
			case "hotpath":
				fd.hotpaths = append(fd.hotpaths, d)
			case "invariant":
				fd.invariants[target] = d
			case "ignore":
				m := fd.ignores[target]
				if m == nil {
					m = make(map[string]*Directive)
					fd.ignores[target] = m
				}
				m[d.Check] = d
			}
		}
	}
	return fd
}

// parseDirective parses the text after "//flowlint:". It returns the
// directive, or a non-empty problem description when the text violates
// the grammar.
func parseDirective(rest string, known map[string]bool) (*Directive, string) {
	verb, args, _ := strings.Cut(rest, " ")
	verb = strings.TrimSpace(verb)
	args = strings.TrimSpace(args)
	switch verb {
	case "hotpath":
		if args != "" {
			return nil, "//flowlint:hotpath takes no arguments"
		}
		return &Directive{Verb: verb}, ""
	case "invariant":
		return &Directive{Verb: verb, Reason: args}, ""
	case "ignore":
		check, reason, ok := strings.Cut(args, "--")
		check = strings.TrimSpace(check)
		reason = strings.TrimSpace(reason)
		if check == "" {
			return nil, "//flowlint:ignore needs a check name: //flowlint:ignore <check> -- <reason>"
		}
		if strings.ContainsAny(check, " \t") {
			return nil, "//flowlint:ignore suppresses exactly one check: //flowlint:ignore <check> -- <reason>"
		}
		if !known[check] {
			return nil, "//flowlint:ignore of unknown check " + quoted(check)
		}
		if !ok || reason == "" {
			return nil, "//flowlint:ignore requires a reason: //flowlint:ignore " + check + " -- <reason>"
		}
		return &Directive{Verb: verb, Check: check, Reason: reason}, ""
	case "":
		return nil, "empty //flowlint directive"
	default:
		return nil, "unknown //flowlint directive " + quoted(verb)
	}
}

// quoted quotes a token for a diagnostic message.
func quoted(s string) string { return `"` + s + `"` }

// trailingComment reports whether the comment starting at pos has
// non-whitespace source text before it on its line — i.e. it annotates
// the code on its own line rather than the line below.
func trailingComment(src []byte, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	off := p.Offset
	for off > 0 {
		ch := src[off-1]
		if ch == '\n' {
			return false
		}
		if ch != ' ' && ch != '\t' {
			return true
		}
		off--
	}
	return false
}
