package lint

import "testing"

// TestSelfApplication runs the full check registry over this module's
// own source tree. The analyzer must hold itself (and everything else
// in the repo) to the invariants it enforces: any finding here means
// either a real defect slipped in or a check regressed into a false
// positive — both are failures.
func TestSelfApplication(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source")
	}
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod.Pkgs, Checks())
	for _, d := range diags {
		t.Errorf("self-application finding: %s", d)
	}
}

// BenchmarkLintModule pins the cost of a full analyzer run (all checks,
// every package, parallel across GOMAXPROCS). Loading and typechecking
// happen once outside the timed region: the benchmark isolates Run.
func BenchmarkLintModule(b *testing.B) {
	mod, err := LoadModule("../..")
	if err != nil {
		b.Fatal(err)
	}
	checks := Checks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(mod.Pkgs, checks); len(diags) != 0 {
			b.Fatalf("module is not lint-clean: %s", diags[0])
		}
	}
}
