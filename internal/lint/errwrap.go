package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// errwrapCheck enforces the PR-2 codec error hygiene: in a package's
// codec files (codec.go, io.go, *_io.go, *_codec.go) every function
// that returns an error and performs a JSON decode must route its
// failures through internal/jsonx, whose Wrap annotates the failing
// operation and byte offset. A decode function with no jsonx.Wrap call
// can return a bare decoder error that is undiagnosable in production
// logs and breaks the fuzzers' offset assertions.
var errwrapCheck = &Check{
	Name: "errwrap",
	Desc: "codec decode functions must annotate errors via internal/jsonx",
	Run:  runErrwrap,
}

// isCodecFile reports whether base names a codec surface file.
func isCodecFile(base string) bool {
	return base == "codec.go" || base == "io.go" ||
		strings.HasSuffix(base, "_io.go") || strings.HasSuffix(base, "_codec.go")
}

func runErrwrap(p *Pass) {
	for _, f := range p.Pkg.Files {
		if f.Test || !isCodecFile(filepath.Base(f.Name)) {
			continue
		}
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !returnsError(p, fd) {
				continue
			}
			decodes, wraps := scanDecodeCalls(p, fd.Body)
			if decodes && !wraps {
				p.Reportf(fd.Name.Pos(),
					"%s decodes JSON and returns error without routing it through jsonx.Wrap: failures lose their operation and byte offset",
					fd.Name.Name)
			}
		}
	}
}

// returnsError reports whether the function's results include error.
func returnsError(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		if t := typeOf(p.Pkg.Info, r.Type); t != nil && isErrorType(t) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// scanDecodeCalls reports whether the body contains a JSON decode call
// and whether it contains a jsonx.Wrap call.
func scanDecodeCalls(p *Pass, body *ast.BlockStmt) (decodes, wraps bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(p.Pkg.Info, call)
		switch {
		case isPkgFunc(obj, "encoding/json", "Unmarshal"):
			decodes = true
		case isJSONDecoderDecode(obj):
			decodes = true
		case isPkgFunc(obj, "internal/jsonx", "Wrap"):
			wraps = true
		}
		return true
	})
	return decodes, wraps
}

// isJSONDecoderDecode reports whether obj is the Decode (or Token)
// method of *encoding/json.Decoder.
func isJSONDecoderDecode(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || (fn.Name() != "Decode" && fn.Name() != "Token") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := derefNamed(sig.Recv().Type())
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "encoding/json" && named.Obj().Name() == "Decoder"
}

// derefNamed unwraps a pointer to its named element type, if any.
func derefNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
