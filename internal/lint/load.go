package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a loaded source tree: every package found under its root,
// parsed and type-checked without any tooling beyond the stdlib.
type Module struct {
	Path string // module path from go.mod ("" for fixture trees)
	Dir  string
	Fset *token.FileSet
	Pkgs []*Package
}

// Package is one analysis unit. A package's in-package _test.go files
// are type-checked together with its compiled files (as `go test`
// compiles them); an external foo_test package forms its own unit whose
// Path carries a "_test" suffix.
type Package struct {
	Path    string // import path of the unit
	ModPath string // module path the unit belongs to
	Dir     string
	Fset    *token.FileSet
	Files   []*File
	Types   *types.Package
	Info    *types.Info
}

// File is one parsed source file.
type File struct {
	Name       string // path as given to the parser
	Ast        *ast.File
	Src        []byte
	Test       bool // a _test.go file
	Directives *FileDirectives
}

// LoadModule loads the module rooted at dir: it discovers every
// package directory (skipping testdata, hidden directories and
// sub-modules), parses all sources, and type-checks each unit. Stdlib
// imports are type-checked from $GOROOT/src by the stdlib source
// importer, so no export data or external tooling is required.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	ld := newLoader()
	ld.addRoot(modPath, abs)
	return ld.loadAll(modPath, abs)
}

// LoadFixtureTree loads an analysistest-style fixture tree: every
// directory under root holding .go files becomes a package whose import
// path is its path relative to root. moduleDir names a real module the
// fixtures may import from (resolved by that module's own path), so
// fixtures can reference e.g. infoflow/internal/jsonx.
func LoadFixtureTree(root, moduleDir string) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	ld := newLoader()
	ld.addRoot("", absRoot)
	if moduleDir != "" {
		absMod, err := filepath.Abs(moduleDir)
		if err != nil {
			return nil, err
		}
		modPath, err := modulePath(filepath.Join(absMod, "go.mod"))
		if err != nil {
			return nil, err
		}
		ld.addRoot(modPath, absMod)
	}
	return ld.loadAll("", absRoot)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// root maps an import-path prefix to a directory tree.
type root struct {
	modPath string // "" matches any path not claimed by another root
	dir     string
}

// loader resolves and type-checks packages on demand. Resolution of a
// module-internal import recursively type-checks the imported package's
// compiled (non-test) files; anything else is delegated to the stdlib
// source importer.
type loader struct {
	fset     *token.FileSet
	std      types.Importer
	roots    []root
	parsed   map[string]*pkgFiles      // import path → parsed dir
	compiled map[string]*types.Package // import path → non-test type-check
	checking map[string]bool           // cycle guard
}

// pkgFiles is one parsed package directory, files split the way the go
// tool splits them.
type pkgFiles struct {
	path    string
	modPath string
	dir     string
	name    string // package name of the compiled files
	nonTest []*File
	inTest  []*File // _test.go files in package <name>
	extTest []*File // _test.go files in package <name>_test
}

func newLoader() *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		parsed:   make(map[string]*pkgFiles),
		compiled: make(map[string]*types.Package),
		checking: make(map[string]bool),
	}
}

func (ld *loader) addRoot(modPath, dir string) {
	ld.roots = append(ld.roots, root{modPath: modPath, dir: dir})
}

// loadAll walks the tree of the root identified by modPath/dir, parses
// every package, and type-checks every analysis unit.
func (ld *loader) loadAll(modPath, dir string) (*Module, error) {
	mod := &Module{Path: modPath, Dir: dir, Fset: ld.fset}
	var pkgDirs []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := d.Name()
		if path != dir && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
			return filepath.SkipDir
		}
		if path != dir {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				pkgDirs = append(pkgDirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(pkgDirs)
	for _, pdir := range pkgDirs {
		rel, err := filepath.Rel(dir, pdir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			sub := filepath.ToSlash(rel)
			if path == "" {
				path = sub
			} else {
				path += "/" + sub
			}
		}
		pf, err := ld.parseDir(path, modPath, pdir)
		if err != nil {
			return nil, err
		}
		units, err := ld.checkUnits(pf)
		if err != nil {
			return nil, err
		}
		mod.Pkgs = append(mod.Pkgs, units...)
	}
	return mod, nil
}

// parseDir parses every .go file of one package directory (memoized).
func (ld *loader) parseDir(path, modPath, dir string) (*pkgFiles, error) {
	if pf, ok := ld.parsed[path]; ok {
		return pf, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pf := &pkgFiles{path: path, modPath: modPath, dir: dir}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		af, err := parser.ParseFile(ld.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", full, err)
		}
		f := &File{
			Name:       full,
			Ast:        af,
			Src:        src,
			Test:       strings.HasSuffix(name, "_test.go"),
			Directives: parseDirectives(ld.fset, af, src, KnownChecks()),
		}
		pkgName := af.Name.Name
		switch {
		case f.Test && strings.HasSuffix(pkgName, "_test"):
			pf.extTest = append(pf.extTest, f)
		case f.Test:
			pf.inTest = append(pf.inTest, f)
		default:
			if pf.name != "" && pf.name != pkgName {
				return nil, fmt.Errorf("lint: %s: packages %s and %s in one directory", dir, pf.name, pkgName)
			}
			pf.name = pkgName
			pf.nonTest = append(pf.nonTest, f)
		}
	}
	ld.parsed[path] = pf
	return pf, nil
}

// Import resolves an import path for go/types: module-internal paths
// are type-checked from source through this loader, everything else
// falls through to the stdlib source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	for _, r := range ld.roots {
		if r.modPath == "" {
			continue
		}
		if path != r.modPath && !strings.HasPrefix(path, r.modPath+"/") {
			continue
		}
		dir := r.dir
		if path != r.modPath {
			dir = filepath.Join(r.dir, filepath.FromSlash(strings.TrimPrefix(path, r.modPath+"/")))
		}
		return ld.compile(path, r.modPath, dir)
	}
	return ld.std.Import(path)
}

// compile type-checks the compiled (non-test) files of one package,
// memoized, for use as an import.
func (ld *loader) compile(path, modPath, dir string) (*types.Package, error) {
	if pkg, ok := ld.compiled[path]; ok {
		return pkg, nil
	}
	if ld.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	ld.checking[path] = true
	defer delete(ld.checking, path)
	pf, err := ld.parseDir(path, modPath, dir)
	if err != nil {
		return nil, err
	}
	if len(pf.nonTest) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, _, err := ld.typecheck(path, pf.nonTest)
	if err != nil {
		return nil, err
	}
	ld.compiled[path] = pkg
	return pkg, nil
}

// checkUnits builds the analysis units of one parsed directory: the
// package together with its in-package tests, plus the external test
// package when present.
func (ld *loader) checkUnits(pf *pkgFiles) ([]*Package, error) {
	var units []*Package
	if len(pf.nonTest) > 0 {
		files := append(append([]*File{}, pf.nonTest...), pf.inTest...)
		tpkg, info, err := ld.typecheck(pf.path, files)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			Path: pf.path, ModPath: pf.modPath, Dir: pf.dir,
			Fset: ld.fset, Files: files, Types: tpkg, Info: info,
		})
	}
	if len(pf.extTest) > 0 {
		tpkg, info, err := ld.typecheck(pf.path+"_test", pf.extTest)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			Path: pf.path + "_test", ModPath: pf.modPath, Dir: pf.dir,
			Fset: ld.fset, Files: pf.extTest, Types: tpkg, Info: info,
		})
	}
	return units, nil
}

// typecheck runs go/types over one set of files.
func (ld *loader) typecheck(path string, files []*File) (*types.Package, *types.Info, error) {
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.Ast
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, asts, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return pkg, info, nil
}
