package lint

import (
	"go/ast"
	"go/types"
)

// panicfreeCheck keeps library packages panic-disciplined: a panic that
// escapes the module's internal packages takes down whatever service
// embeds the library, so every panic site must either be rewritten to
// return an error or be explicitly claimed as an unreachable invariant
// guard with //flowlint:invariant (optionally stating the invariant).
// The annotation is the review contract: it asserts the condition can
// only fire on memory corruption or a bug in this package, never on
// caller input.
var panicfreeCheck = &Check{
	Name: "panicfree",
	Desc: "no panic in library packages except //flowlint:invariant guards",
	Run:  runPanicfree,
}

func runPanicfree(p *Pass) {
	if !p.Pkg.isLibraryPkg() {
		return
	}
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := p.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				p.Reportf(call.Pos(),
					"panic in library package %s: return an error, or mark the line //flowlint:invariant if it is an unreachable guard",
					p.Pkg.Path)
			}
			return true
		})
	}
}
