// Package m hosts a hotpath directive bound to nothing.
package m

//flowlint:hotpath
var Limit = 8
