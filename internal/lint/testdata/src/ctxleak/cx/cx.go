// Package cx exercises the ctxleak context-discipline check.
package cx

import (
	"context"
	"time"
)

type task struct {
	ctx  context.Context // want `context\.Context stored in a struct field`
	name string
}

type queued struct {
	//flowlint:ignore ctxleak -- carries the enqueuing caller's cancellation into the worker pool
	ctx  context.Context
	name string
}

// Spin blocks on the channel forever with no way to cancel.
func Spin(ctx context.Context, ch chan int) {
	for { // want `loop blocks without consulting its context`
		<-ch
	}
}

// Pump consults ctx on every iteration and is clean.
func Pump(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ch:
		case <-ctx.Done():
			return
		}
	}
}

// Poll sleeps in a loop that never checks ctx.
func Poll(ctx context.Context, probe func() bool) {
	for !probe() { // want `loop blocks without consulting its context`
		time.Sleep(time.Millisecond)
	}
}

// Tick checks ctx.Err between sleeps and is clean.
func Tick(ctx context.Context, probe func() bool) {
	for !probe() {
		if ctx.Err() != nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// Drain ranges a channel that closes at shutdown; documented.
func Drain(ctx context.Context, ch chan int) {
	//flowlint:ignore ctxleak -- shutdown drain: producers close ch, the range ends on close
	for v := range ch {
		_ = v
	}
}

// Busy loops without blocking; nothing for cancellation to interrupt,
// so the loop rule does not apply.
func Busy(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
