// Package mh mirrors a determinism-protected import path: the checks
// match by path suffix, so this fixture inherits internal/mh's rules.
package mh

import (
	"math/rand" // want `import of "math/rand" in determinism-protected package`
	"time"
)

// Clock declares the injectable default without calling it; referencing
// time.Now as a value is allowed.
var Clock func() time.Time = time.Now

// Draw uses the forbidden global RNG.
func Draw() float64 {
	return rand.Float64()
}

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want `wall-clock read time\.Now`
}

// Sum folds a map in randomized iteration order.
func Sum(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // want `map-range in determinism-protected package`
		total += v
	}
	return total
}

// SumIgnored carries a reasoned suppression and stays clean.
func SumIgnored(m map[int]float64) float64 {
	total := 0.0
	//flowlint:ignore determinism -- addition is commutative; order cannot reach the result
	for _, v := range m {
		total += v
	}
	return total
}
