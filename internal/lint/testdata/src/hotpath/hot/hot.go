// Package hot exercises the hotpath allocation rules.
package hot

import "fmt"

// Scratch is reusable caller-owned state.
type Scratch struct {
	queue []int
}

func release(sc *Scratch) { sc.queue = sc.queue[:0] }

func sink(v interface{}) { _ = v }

// Grow allocates a fresh slice and appends onto it.
//
//flowlint:hotpath
func Grow(sc *Scratch, n int) []int {
	buf := make([]int, 0, n) // want `make allocates on the hot path`
	for i := 0; i < n; i++ {
		buf = append(buf, i) // want `append to a slice not derived from caller-owned scratch state`
	}
	return buf
}

// Fill reuses caller scratch; appends amortize into its capacity.
//
//flowlint:hotpath
func Fill(sc *Scratch, n int) {
	q := sc.queue[:0]
	for i := 0; i < n; i++ {
		q = append(q, i)
	}
	sc.queue = q[:0]
}

// Literal returns a composite literal.
//
//flowlint:hotpath
func Literal() []int {
	return []int{1, 2} // want `composite literal allocates on the hot path`
}

// Visit builds a closure.
//
//flowlint:hotpath
func Visit(f func(int)) {
	g := func(i int) { f(i) } // want `closure literal allocates on the hot path`
	g(0)
}

// Deferred defers cleanup.
//
//flowlint:hotpath
func Deferred(sc *Scratch) {
	defer release(sc) // want `defer allocates and delays work on the hot path`
}

// Report formats on the hot path.
//
//flowlint:hotpath
func Report(x int) string {
	return fmt.Sprintf("x=%d", x) // want `fmt\.Sprintf call on the hot path`
}

// Box demonstrates both conversion flavors: the explicit conversion is
// flagged, and re-passing the resulting interface value is not.
//
//flowlint:hotpath
func Box(x int) {
	v := any(x) // want `conversion to interface boxes its operand`
	sink(v)
	sink(x) // want `implicitly boxed into interface`
}
