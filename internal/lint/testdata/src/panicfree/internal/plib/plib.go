// Package plib exercises the panic ban in library packages.
package plib

import "fmt"

// Explode panics on caller input.
func Explode(n int) {
	if n > 0 {
		panic(fmt.Sprintf("plib: boom %d", n)) // want `panic in library package`
	}
}

// Guard carries an invariant annotation and stays clean.
func Guard(n int) {
	if n < 0 {
		//flowlint:invariant documented contract: n is non-negative
		panic("plib: negative n")
	}
}
