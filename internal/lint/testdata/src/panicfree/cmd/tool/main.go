// Command tool shows that panicfree covers only library packages.
package main

func main() {
	panic("tool: commands may crash loudly")
}
