package codecpkg

import "encoding/json"

// DecodeElsewhere lives outside the codec surface files, so the check
// does not apply.
func DecodeElsewhere(data []byte) (*payload, error) {
	var p payload
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	return &p, nil
}
