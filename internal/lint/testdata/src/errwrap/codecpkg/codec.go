// Package codecpkg exercises codec error hygiene.
package codecpkg

import (
	"encoding/json"

	"infoflow/internal/jsonx"
)

type payload struct {
	N int `json:"n"`
}

// DecodeBare returns the raw decoder error.
func DecodeBare(data []byte) (*payload, error) { // want `DecodeBare decodes JSON and returns error without routing it through jsonx\.Wrap`
	var p payload
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// DecodeWrapped annotates failures and stays clean.
func DecodeWrapped(data []byte) (*payload, error) {
	var p payload
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, jsonx.Wrap("codecpkg: decode payload", err)
	}
	return &p, nil
}
