// Package mo exercises the maporder flow-sensitive determinism check.
package mo

import "sort"

// Sum leaks iteration order through non-associative float addition.
func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation across a map range`
	}
	return total
}

// Keys sorts before any other use, laundering the order.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Unsorted returns elements in randomized iteration order.
func Unsorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // want `used unsorted afterwards`
	}
	return out
}

// PerKey accumulates into a per-key slot; each key sees its own
// additions in program order, so order cannot leak.
func PerKey(m map[string]float64, by map[string]float64) {
	for k, v := range m {
		by[k] += v
	}
}

// IntSum is associative and order-independent.
func IntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Checksum tolerates the wobble and says why.
func Checksum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//flowlint:ignore maporder -- diagnostic-only rough magnitude; exact bits never compared
		total += v
	}
	return total
}
