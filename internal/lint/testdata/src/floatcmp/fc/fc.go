// Package fc exercises exact float comparisons.
package fc

// Close compares measured floats exactly.
func Close(a, b float64) bool {
	return a == b // want `exact float comparison \(==\)`
}

// Differs uses != between floats.
func Differs(a, b float32) bool {
	return a != b // want `exact float comparison \(!=\)`
}

// Sentinel carries a reasoned suppression and stays clean.
func Sentinel(p float64) bool {
	//flowlint:ignore floatcmp -- 1 is an exact sentinel assigned, never computed
	return p == 1
}

// Same compares integers, which is fine.
func Same(a, b int) bool { return a == b }

const eps = 1e-9

// constCmp folds at compile time and is exempt.
func constCmp() bool { return eps == 1e-9 }
