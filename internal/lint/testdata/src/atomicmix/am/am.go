// Package am exercises the atomicmix mixed-access check.
package am

import "sync/atomic"

type counter struct {
	hits  int64
	total int64
	plain int64
}

// Inc updates hits atomically.
func (c *counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

// Read bypasses the atomics Inc relies on.
func (c *counter) Read() int64 {
	return c.hits // want `accessed atomically elsewhere .* but plainly here`
}

// Bump and Load agree on atomic access for total.
func (c *counter) Bump() {
	atomic.AddInt64(&c.total, 1)
}

// Load reads total atomically; consistent, so clean.
func (c *counter) Load() int64 {
	return atomic.LoadInt64(&c.total)
}

// PlainOnly never uses atomics for plain, so there is no mix.
func (c *counter) PlainOnly() int64 {
	c.plain++
	return c.plain
}

// Snapshot reads total plainly but under a documented quiescence
// guarantee.
func (c *counter) Snapshot() int64 {
	//flowlint:ignore atomicmix -- called after all writers have joined; no concurrent access
	return c.total
}
