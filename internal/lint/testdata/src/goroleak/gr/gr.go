// Package gr exercises the goroleak goroutine-lifecycle check.
package gr

import (
	"context"
	"sync"
)

// Fire spawns with no lifecycle at all.
func Fire(job func()) {
	go job() // want `goroutine has no visible lifecycle`
}

// Tracked registers with the WaitGroup before spawning.
func Tracked(wg *sync.WaitGroup, job func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		job()
	}()
}

// AddInside registers from inside the goroutine, racing Wait.
func AddInside(wg *sync.WaitGroup, job func()) {
	go func() {
		wg.Add(1) // want `WaitGroup\.Add inside the goroutine races its own Wait`
		defer wg.Done()
		job()
	}()
}

// CtxArg hands the goroutine a cancellation handle.
func CtxArg(ctx context.Context, worker func(context.Context)) {
	go worker(ctx)
}

// ChanBody reports completion on a channel.
func ChanBody(job func() error) <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- job() }()
	return errc
}

// CloseBody signals by closing a done channel.
func CloseBody(job func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		job()
		close(done)
	}()
	return done
}

// Detach is a documented fire-and-forget.
func Detach(job func()) {
	//flowlint:ignore goroleak -- best-effort metrics flush; process exit reaps it
	go job()
}
