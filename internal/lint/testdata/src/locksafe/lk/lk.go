// Package lk exercises the locksafe lock-discipline analysis.
package lk

import (
	"sync"
	"time"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	vals map[string]int
	done chan struct{}
}

// Lookup leaks the lock on the not-found return path.
func (s *store) Lookup(k string) (int, bool) {
	s.mu.Lock() // want `locked here but not unlocked on the return path`
	v, ok := s.vals[k]
	if !ok {
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// Get releases via defer on every path and is clean.
func (s *store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[k]
}

// Relock acquires a lock already held on the same path.
func (s *store) Relock() {
	s.mu.Lock()
	s.mu.Lock() // want `already held on this path .* self-deadlocks`
	s.mu.Unlock()
}

// Flush sends on a channel while holding the lock.
func (s *store) Flush() {
	s.mu.Lock()
	s.done <- struct{}{} // want `channel send may block while s\.mu is held`
	s.mu.Unlock()
}

// Nap sleeps under the lock; the deferred unlock keeps the exit clean
// but not the blocking call.
func (s *store) Nap() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep may block while s\.mu is held`
}

// Count releases the read lock on only one branch.
func (s *store) Count(flag bool) int {
	s.rw.RLock() // want `locked here but not unlocked on the return path`
	n := len(s.vals)
	if flag {
		s.rw.RUnlock()
	}
	return n
}

// Snapshot copies the whole store, mutex included.
func Snapshot(s *store) {
	cp := *s // want `copies .* mutex`
	_ = cp
}

// BeginScan intentionally returns holding the lock; the protocol is
// documented on the acquisition.
func (s *store) BeginScan() {
	//flowlint:ignore locksafe -- scan protocol: caller must call EndScan to release
	s.mu.Lock()
}

// EndScan is BeginScan's counterpart; it only releases, so the
// analysis has nothing to track.
func (s *store) EndScan() {
	s.mu.Unlock()
}

// Balanced unlocks explicitly on both branches and is clean.
func (s *store) Balanced(flag bool) int {
	s.mu.Lock()
	if flag {
		n := len(s.vals)
		s.mu.Unlock()
		return n
	}
	s.mu.Unlock()
	return 0
}
