// Package b exercises the directive grammar diagnostics.
package b

//flowlint:ignore floatcmp
func MissingReason() {}

//flowlint:ignore nosuchcheck -- the check name must be registered
func UnknownCheck() {}

//flowlint:frobnicate
func UnknownVerb() {}

//flowlint:ignore
func MissingCheck() {}

//flowlint:hotpath with args
func HotpathArgs() {}

//flowlint:ignore directive -- grammar findings themselves cannot be silenced
func SuppressTheSuppressor() {}
