// Package lint is a stdlib-only static analyzer for the infoflow
// module: it loads every package from source with go/parser and
// go/types (no golang.org/x/tools dependency) and runs a registry of
// domain checks that machine-enforce the invariants the test suite can
// only spot-check — deterministic sampling (no math/rand, no wall
// clocks, no map-iteration order reaching chain output), zero-alloc
// hot paths (//flowlint:hotpath functions stay free of allocating
// constructs), float comparison hygiene, codec error annotation via
// internal/jsonx, and panic-free library code.
//
// Findings are suppressible only with an explicit, reasoned directive:
//
//	//flowlint:ignore <check> -- <reason>
//
// See directives.go for the grammar and DESIGN.md §8 for the catalog.
package lint

import (
	"fmt"
	"go/token"
	"runtime"
	"sort"
	"sync"
)

// Diagnostic is one finding: a position, the check that produced it,
// and a human-readable message. The JSON form (flowlint -json) is an
// array of these objects.
type Diagnostic struct {
	File    string `json:"file"` // path as loaded (absolute for module loads)
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one registered analysis. Run inspects the pass's package and
// reports findings through pass.Reportf.
type Check struct {
	Name string // the name used in //flowlint:ignore directives
	Desc string
	Run  func(*Pass)
}

// Pass carries one package through one check.
type Pass struct {
	Pkg   *Package
	check string
	diags []Diagnostic
}

// Reportf records a finding of the current check at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	where := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		File:    where.Filename,
		Line:    where.Line,
		Col:     where.Column,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes every check over every package and returns the surviving
// diagnostics: findings on lines carrying a matching //flowlint:ignore
// directive are dropped, panicfree/hotpath findings on
// //flowlint:invariant lines are dropped, and directive parse errors are
// appended (those are never suppressible). The result is sorted by
// file, line, column, check.
//
// Packages are analyzed concurrently, up to GOMAXPROCS at a time:
// checks only read the (already typechecked) package units, and each
// package's findings land in its own slot, so the merged, sorted output
// is byte-identical to a serial run.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	perPkg := make([][]Diagnostic, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perPkg[i] = runPackage(pkg, checks)
		}(i, pkg)
	}
	wg.Wait()

	var out []Diagnostic
	for _, diags := range perPkg {
		out = append(out, diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return out
}

// runPackage runs every check over one package and applies its
// suppression directives.
func runPackage(pkg *Package, checks []*Check) []Diagnostic {
	pass := &Pass{Pkg: pkg}
	for _, c := range checks {
		pass.check = c.Name
		c.Run(pass)
	}
	out := filterSuppressed(pkg, pass.diags)
	for _, f := range pkg.Files {
		out = append(out, f.Directives.diags...)
	}
	return out
}

// filterSuppressed applies the per-line suppression directives of the
// package's files to the raw findings.
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	byFile := make(map[string]*FileDirectives, len(pkg.Files))
	for _, f := range pkg.Files {
		byFile[f.Name] = f.Directives
	}
	var out []Diagnostic
	for _, d := range diags {
		fd := byFile[d.File]
		if fd != nil {
			if fd.ignored(d.Line, d.Check) {
				continue
			}
			// An invariant annotation marks a guard that only fires when
			// the program is already broken: the guarded panic is exempt
			// from panicfree, and the guard line is exempt from hotpath
			// (a cold unreachable branch cannot cost allocations).
			if (d.Check == "panicfree" || d.Check == "hotpath") && fd.invariant(d.Line) {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}
