package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatcmpCheck forbids exact equality between floating-point
// expressions in non-test code. The library's estimators agree with
// exact enumeration only statistically, and rounding differs across
// evaluation orders, so `a == b` on two computed floats is almost
// always a latent bug — compare with a tolerance, or compare against
// an exact sentinel that is assigned (not computed) and annotate the
// site with a reasoned //flowlint:ignore. Test files are exempt:
// golden and conformance tests intentionally assert bit-exact replay.
var floatcmpCheck = &Check{
	Name: "floatcmp",
	Desc: "no ==/!= between floating-point expressions outside tests",
	Run:  runFloatcmp,
}

func runFloatcmp(p *Pass) {
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := p.Pkg.Info.Types[be.X], p.Pkg.Info.Types[be.Y]
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant-folded at compile time
			}
			p.Reportf(be.OpPos,
				"exact float comparison (%s): computed floats differ by rounding; use a tolerance or justify the sentinel with //flowlint:ignore",
				be.Op)
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
