package lint

import (
	"go/ast"
	"go/token"
)

// goroleakCheck flags `go` statements that spawn goroutines with no
// visible lifecycle: nothing ties the goroutine's lifetime to a
// WaitGroup, a context, or a channel, so nothing can wait for it, stop
// it, or learn that it finished. Such goroutines leak on shutdown and
// silently swallow their own failures.
//
// A goroutine counts as lifecycle-managed when any of the following
// holds:
//
//   - a WaitGroup.Add call appears earlier in the same function body
//     (the spawn participates in an Add/Done/Wait protocol);
//   - the spawned call receives a context.Context or a channel-typed
//     argument (the caller retains a cancellation or signalling handle);
//   - the goroutine body (for `go func() {...}()`) communicates: it
//     sends on, receives from, or closes a channel, runs a select,
//     consults a context, or calls WaitGroup.Done.
//
// Calling WaitGroup.Add *inside* the goroutine body is reported
// unconditionally: the spawner can reach Wait before the goroutine is
// scheduled, so Wait returns while work is still running — the exact
// race Add-before-go exists to prevent.
var goroleakCheck = &Check{
	Name: "goroleak",
	Desc: "goroutines must have a visible lifecycle (WaitGroup, context, or channel coupling)",
	Run:  runGoroleak,
}

func runGoroleak(p *Pass) {
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		for _, fb := range funcBodies(f) {
			checkGoStmts(p, fb)
		}
	}
}

func checkGoStmts(p *Pass, fb funcBody) {
	// Source positions of WaitGroup.Add calls made directly by this
	// body (not inside nested literals, which run on their own
	// schedule).
	var addPositions []token.Pos
	inspectShallow(fb.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if tn, m, ok := syncMethodName(p.Pkg.Info, call); ok && tn == "WaitGroup" && m == "Add" {
				addPositions = append(addPositions, call.Pos())
			}
		}
		return true
	})
	addBefore := func(pos token.Pos) bool {
		for _, ap := range addPositions {
			if ap < pos {
				return true
			}
		}
		return false
	}

	inspectShallow(fb.body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		// The goroutine body is a nested function; inspectShallow will
		// not descend into it, so examine it explicitly here.
		if lit, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit); isLit {
			if pos, found := firstWaitGroupAdd(p, lit.Body); found {
				p.Reportf(pos, "WaitGroup.Add inside the goroutine races its own Wait: the spawner can reach Wait before this runs; call Add before the go statement")
				return true
			}
			if bodyHasLifecycle(p, lit.Body) {
				return true
			}
		}
		if addBefore(g.Pos()) || callHasLifecycleArgs(p, g.Call) {
			return true
		}
		p.Reportf(g.Pos(), "goroutine has no visible lifecycle: no WaitGroup.Add before the spawn, no context or channel argument, and no channel use in the body; nothing can wait for it or stop it")
		return true
	})
}

// firstWaitGroupAdd finds a WaitGroup.Add call anywhere in a goroutine
// body (including nested literals: Add still races Wait from there).
func firstWaitGroupAdd(p *Pass, body *ast.BlockStmt) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if tn, m, ok := syncMethodName(p.Pkg.Info, call); ok && tn == "WaitGroup" && m == "Add" {
				pos, found = call.Pos(), true
				return false
			}
		}
		return true
	})
	return pos, found
}

// callHasLifecycleArgs reports whether the spawned call is handed a
// context or a channel — a handle the caller can use to stop it or
// hear from it.
func callHasLifecycleArgs(p *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if t := p.Pkg.Info.TypeOf(arg); t != nil && (isContextType(t) || isChanType(t)) {
			return true
		}
	}
	return false
}

// bodyHasLifecycle reports whether a goroutine body visibly
// communicates: channel send/receive/close, select, a context value,
// or WaitGroup.Done.
func bodyHasLifecycle(p *Pass, body *ast.BlockStmt) bool {
	info := p.Pkg.Info
	has := false
	ast.Inspect(body, func(n ast.Node) bool {
		if has {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt, *ast.RangeStmt:
			if r, isRange := n.(*ast.RangeStmt); isRange {
				if t := info.TypeOf(r.X); t == nil || !isChanType(t) {
					return true
				}
			}
			has = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				has = true
			}
		case *ast.CallExpr:
			if tn, m, ok := syncMethodName(info, n); ok && tn == "WaitGroup" && m == "Done" {
				has = true
				return false
			}
			if id, isIdent := ast.Unparen(n.Fun).(*ast.Ident); isIdent && id.Name == "close" {
				if obj := info.Uses[id]; obj != nil && obj.Pkg() == nil {
					has = true
				}
			}
		case *ast.Ident:
			if t := info.TypeOf(n); t != nil && isContextType(t) {
				has = true
			}
		}
		return !has
	})
	return has
}
