package lint

import (
	"go/ast"
	"go/types"
)

// Shared type- and AST-resolution helpers for the concurrency-
// discipline checks (locksafe, goroleak, atomicmix, ctxleak) built on
// the internal/lint/cfg layer.

// inspectShallow walks n like ast.Inspect but does not descend into
// function literals: a FuncLit's body executes on its own schedule (a
// goroutine, a callback, a deferred closure), so its statements never
// belong to the enclosing function's flow.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// funcBodies yields every function body of a file — declarations and
// function literals — each paired with a display name. Literal bodies
// are analyzed as functions in their own right.
type funcBody struct {
	name string
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
}

func funcBodies(f *File) []funcBody {
	var out []funcBody
	for _, decl := range f.Ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, funcBody{name: funcDisplayName(fd), decl: fd, body: fd.Body})
	}
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, funcBody{name: "func literal", lit: lit, body: lit.Body})
		}
		return true
	})
	return out
}

// syncMethod resolves a call to a method of a sync package type
// (Mutex.Lock, WaitGroup.Add, Cond.Wait, ...) and returns the receiver
// expression, the receiver type name, and the method name.
func syncMethod(info *types.Info, call *ast.CallExpr) (recv ast.Expr, typeName, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	selection, found := info.Selections[sel]
	if !found {
		return nil, "", "", false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", "", false
	}
	named := derefNamed(selection.Recv())
	if named == nil {
		// The receiver may be a local type embedding the sync type;
		// resolve through the method's own receiver instead.
		sig, isSig := fn.Type().(*types.Signature)
		if !isSig || sig.Recv() == nil {
			return nil, "", "", false
		}
		named = derefNamed(sig.Recv().Type())
		if named == nil {
			return nil, "", "", false
		}
	}
	return sel.X, named.Obj().Name(), fn.Name(), true
}

// syncMethodName resolves just the sync type and method of a call, for
// receivers reached through embedding.
func syncMethodName(info *types.Info, call *ast.CallExpr) (typeName, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection, found := info.Selections[sel]
	if !found {
		return "", "", false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	named := derefNamed(sig.Recv().Type())
	if named == nil {
		return "", "", false
	}
	return named.Obj().Name(), fn.Name(), true
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isNamedSyncType reports whether t (not a pointer) is the named sync
// type sync.<name>.
func isNamedSyncType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// isMutexValue reports whether t is a sync.Mutex or sync.RWMutex value
// type (not a pointer to one).
func isMutexValue(t types.Type) bool {
	return isNamedSyncType(t, "Mutex") || isNamedSyncType(t, "RWMutex")
}

// containsMutex reports whether a value of type t embeds a mutex by
// value (directly, or through nested struct/array fields), so copying
// the value copies lock state.
func containsMutex(t types.Type) bool {
	return containsMutexRec(t, make(map[types.Type]bool))
}

func containsMutexRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isMutexValue(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutexRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutexRec(u.Elem(), seen)
	}
	return false
}

// selectHasDefault reports whether a select statement carries a
// default clause (and therefore cannot block).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// rootIdentObj resolves the object of the leftmost identifier of a
// selector/index/star chain (`b.mu` → b's object), or nil.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
