package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathCheck machine-enforces the PR-1 zero-alloc guarantee: a
// function whose doc comment carries //flowlint:hotpath (the MH step,
// the scratch traversals, the Fenwick ops) must not contain constructs
// that allocate on the steady-state path — make/new, composite
// literals, append onto slices that are not derived from caller-owned
// scratch state, closure literals, defer/go, fmt calls, or conversions
// of concrete values to interfaces (which box). Cold fallback branches
// (nil-scratch temporaries) carry a reasoned //flowlint:ignore; guard
// panics carry //flowlint:invariant, which exempts their line here too.
//
// The check is intraprocedural by design: the benchmarks' AllocsPerRun
// gates remain the end-to-end authority, this catches the regression at
// review time instead of benchmark time.
var hotpathCheck = &Check{
	Name: "hotpath",
	Desc: "//flowlint:hotpath functions must stay free of allocating constructs",
	Run:  runHotpath,
}

func runHotpath(p *Pass) {
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		// Directives seen inside some function's doc comment; the rest
		// are misplaced and reported, so an annotation that silently
		// binds to nothing cannot pass review.
		attached := make(map[*Directive]bool)
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			hot := false
			if fd.Doc != nil {
				for _, d := range f.Directives.hotpaths {
					if d.Pos >= fd.Doc.Pos() && d.Pos < fd.Doc.End() {
						attached[d] = true
						hot = true
					}
				}
			}
			if hot && fd.Body != nil {
				checkHotFunc(p, fd)
			}
		}
		for _, d := range f.Directives.hotpaths {
			if !attached[d] {
				p.Reportf(d.Pos, "misplaced //flowlint:hotpath: it must appear in a function's doc comment")
			}
		}
	}
}

// checkHotFunc walks one annotated function body.
func checkHotFunc(p *Pass, fn *ast.FuncDecl) {
	owned := ownedVars(p, fn)
	seeds := make(map[types.Object]bool, len(owned))
	for obj := range owned {
		seeds[obj] = true
	}
	name := funcDisplayName(fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "%s: closure literal allocates on the hot path", name)
			return false // its body is priced into the closure
		case *ast.DeferStmt:
			p.Reportf(n.Pos(), "%s: defer allocates and delays work on the hot path", name)
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "%s: goroutine launch on the hot path", name)
		case *ast.CompositeLit:
			p.Reportf(n.Pos(), "%s: composite literal allocates on the hot path", name)
		case *ast.AssignStmt:
			trackOwnership(p, n, owned, seeds)
		case *ast.CallExpr:
			checkHotCall(p, name, n, owned)
		}
		return true
	})
}

// checkHotCall vets one call expression inside a hot function.
func checkHotCall(p *Pass, name string, call *ast.CallExpr, owned map[types.Object]bool) {
	info := p.Pkg.Info
	// Builtins and conversions first: they carry no *types.Func object.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				p.Reportf(call.Pos(), "%s: %s allocates on the hot path", name, b.Name())
			case "append":
				if len(call.Args) > 0 && !derivedFromOwned(info, call.Args[0], owned) {
					p.Reportf(call.Pos(), "%s: append to a slice not derived from caller-owned scratch state may grow and allocate", name)
				}
			case "panic":
				// The panic itself is panicfree's concern; here only the
				// boxing of its argument is priced.
				if len(call.Args) == 1 && boxes(info, call.Args[0]) {
					p.Reportf(call.Pos(), "%s: panic argument is boxed into an interface", name)
				}
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Explicit conversion T(x).
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			p.Reportf(call.Pos(), "%s: conversion to interface boxes its operand", name)
		}
		return
	}
	obj := calleeObj(info, call)
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		p.Reportf(call.Pos(), "%s: fmt.%s call on the hot path (formats, boxes and allocates)", name, obj.Name())
		return
	}
	// Implicit interface conversions at the call boundary.
	sig, ok := typeOf(info, call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) && boxes(info, arg) {
			p.Reportf(arg.Pos(), "%s: argument is implicitly boxed into interface %s", name, pt)
		}
	}
}

// boxes reports whether passing arg to an interface-typed slot boxes a
// concrete value at run time (an untyped nil or an already-interface
// value does not).
func boxes(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// typeOf is info.Types[...].Type with a nil guard.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// ownedVars seeds the ownership map: the receiver and every parameter
// are caller-owned, so slices reached through them (sc.queue, t.sums)
// are reusable scratch state an append may legitimately grow.
func ownedVars(p *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, id := range field.Names {
				if obj := p.Pkg.Info.Defs[id]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	addField(fn.Recv)
	if fn.Type.Params != nil {
		addField(fn.Type.Params)
	}
	return owned
}

// trackOwnership propagates ownership through simple assignments, so
// `queue := sc.queue[:0]` makes queue an owned alias while
// `tmp := make([]T, n)` leaves tmp fresh. Parameters and the receiver
// (seeds) keep ownership even when reassigned: the lazy-init fallback
// `if sc == nil { sc = tempScratch(n) }` replaces the scratch with a
// fresh one whose appends allocate only within that same cold call.
func trackOwnership(p *Pass, as *ast.AssignStmt, owned, seeds map[types.Object]bool) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id]
		}
		if obj == nil || seeds[obj] {
			continue
		}
		owned[obj] = derivedFromOwned(p.Pkg.Info, as.Rhs[i], owned)
	}
}

// derivedFromOwned reports whether expr is rooted in caller-owned state:
// a parameter or receiver, a field/index/slice of one, or an append onto
// one. Everything else — fresh makes, literals, calls — is not.
func derivedFromOwned(info *types.Info, expr ast.Expr, owned map[types.Object]bool) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			return obj != nil && owned[obj]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
					expr = e.Args[0]
					continue
				}
			}
			return false
		default:
			return false
		}
	}
}

// funcDisplayName renders Recv.Method or Func for messages.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var b strings.Builder
	b.WriteString(typeText(fd.Recv.List[0].Type))
	b.WriteByte('.')
	b.WriteString(fd.Name.Name)
	return b.String()
}

// typeText renders a receiver type expression compactly.
func typeText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return typeText(e.X)
	case *ast.IndexExpr:
		return typeText(e.X)
	}
	return "?"
}
