package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Checks returns the full registry, in reporting order.
func Checks() []*Check {
	return []*Check{
		determinismCheck,
		hotpathCheck,
		floatcmpCheck,
		errwrapCheck,
		panicfreeCheck,
		locksafeCheck,
		goroleakCheck,
		atomicmixCheck,
		ctxleakCheck,
		maporderCheck,
	}
}

// KnownChecks is the set of names a //flowlint:ignore directive may
// reference.
func KnownChecks() map[string]bool {
	return map[string]bool{
		"determinism": true,
		"hotpath":     true,
		"floatcmp":    true,
		"errwrap":     true,
		"panicfree":   true,
		"locksafe":    true,
		"goroleak":    true,
		"atomicmix":   true,
		"ctxleak":     true,
		"maporder":    true,
	}
}

// protectedSuffixes are the packages whose outputs must be bit-identical
// for a given seed: the RNG itself, the MH sampler, the model core, and
// the two learners whose estimates feed reported numbers. Matching is by
// import-path suffix so fixture packages can opt in by mirroring the
// layout.
var protectedSuffixes = []string{
	"internal/rng",
	"internal/mh",
	"internal/core",
	"internal/unattrib",
	"internal/ctic",
}

// hasPathSuffix reports whether path ends with the given slash-separated
// suffix on a segment boundary.
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pathHasSegment reports whether path contains seg as a whole segment.
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// isProtectedPkg reports whether the unit belongs to the determinism-
// protected set. A foo_test external unit inherits foo's protection.
func isProtectedPkg(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, s := range protectedSuffixes {
		if hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

// isClockBannedPkg reports whether wall-clock reads are forbidden in the
// unit: the protected set plus the experiment drivers and the CLIs,
// whose outputs must be reproducible given a seed.
func isClockBannedPkg(path string) bool {
	return isProtectedPkg(path) ||
		hasPathSuffix(strings.TrimSuffix(path, "_test"), "internal/experiments") ||
		pathHasSegment(path, "cmd")
}

// isLibraryPkg reports whether the unit is library code (as opposed to a
// command, example, or test-only package): the module root or anything
// under an internal directory.
func (p *Package) isLibraryPkg() bool {
	if strings.HasSuffix(p.Path, "_test") {
		return false
	}
	return p.Path == p.ModPath || pathHasSegment(p.Path, "internal")
}

// calleeObj resolves the object a call expression invokes, or nil for
// builtins, conversions and indirect calls through function values.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // qualified identifier pkg.Func
	}
	return nil
}

// isPkgFunc reports whether obj is the function pkgPath.name, matching
// pkgPath by suffix so module-qualified paths (infoflow/internal/jsonx)
// match their short form.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return hasPathSuffix(obj.Pkg().Path(), pkgPath)
}
