package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"

	"infoflow/internal/lint/cfg"
)

// locksafeCheck is the flow-sensitive lock-discipline analysis: it
// tracks sync.Mutex/RWMutex acquisitions through each function's
// control-flow graph (internal/lint/cfg) and reports
//
//   - a lock acquired on some path but not released on every return
//     path (defer-aware: `defer mu.Unlock()` — directly or inside a
//     deferred closure — releases on all exits downstream of the
//     defer);
//   - re-acquiring a lock already held on the same path, which
//     self-deadlocks (Go mutexes are not reentrant);
//   - blocking while a lock is held: channel sends/receives, selects
//     without a default, WaitGroup.Wait, Cond.Wait and time.Sleep all
//     stall every other goroutine contending for the lock — and can
//     deadlock outright when the unblocking party needs that lock;
//   - copying a mutex (or a value embedding one) — the copy shares no
//     state with the original, so code locking the copy excludes
//     nobody.
//
// The analysis is intraprocedural: a helper that locks for its caller
// (or unlocks a caller's lock) trips the exit check by design and
// carries a reasoned //flowlint:ignore naming the protocol. Panic
// exits are exempt — invariant guards fire only on broken state, where
// lock hygiene is moot.
var locksafeCheck = &Check{
	Name: "locksafe",
	Desc: "mutexes must be released on every return path and never held across blocking operations",
	Run:  runLocksafe,
}

func runLocksafe(p *Pass) {
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		checkMutexCopies(p, f)
		for _, fb := range funcBodies(f) {
			analyzeLocks(p, fb)
		}
	}
}

// lockState is the per-path state of one mutex.
type lockState struct {
	pos      token.Pos // the Lock/RLock site that acquired it
	read     bool      // held via RLock
	deferred bool      // an Unlock/RUnlock is deferred on this path
}

// lockFact maps a lock's canonical receiver expression (types.ExprString
// of `b.mu` etc.) to its state. Presence means "held on at least one
// path reaching here".
type lockFact map[string]*lockState

func cloneLockFact(f lockFact) lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		c := *v
		out[k] = &c
	}
	return out
}

// joinLockFact merges src into dst: a lock held on either path is
// held-on-some; a deferred release survives the join only if both
// paths deferred it. Both moves are monotone, so the worklist
// terminates.
func joinLockFact(dst, src lockFact) (lockFact, bool) {
	changed := false
	for k, v := range src {
		d, ok := dst[k]
		if !ok {
			c := *v
			dst[k] = &c
			changed = true
			continue
		}
		if d.deferred && !v.deferred {
			d.deferred = false
			changed = true
		}
		if d.read && !v.read {
			d.read = false
			changed = true
		}
	}
	return dst, changed
}

// analyzeLocks runs the dataflow over one function body.
func analyzeLocks(p *Pass, fb funcBody) {
	// Cheap pre-pass: skip bodies that never touch a sync lock.
	touches := false
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if tn, m, ok := syncMethodName(p.Pkg.Info, call); ok &&
				(tn == "Mutex" || tn == "RWMutex") && isLockMethodName(m) {
				touches = true
			}
		}
		return !touches
	})
	if !touches {
		return
	}

	g := cfg.New(fb.body)
	transfer := func(b *cfg.Block, f lockFact) { lockTransfer(p, fb.name, b, f, false) }
	in, out := cfg.Forward(g, make(lockFact), cloneLockFact, joinLockFact, transfer)

	// Reporting pass: replay each reachable block once, with reporting
	// on, from its fixpoint entry fact.
	for _, b := range g.Blocks {
		f, ok := in[b]
		if !ok {
			continue
		}
		lockTransfer(p, fb.name, b, cloneLockFact(f), true)
	}

	// Exit discipline: a lock still held (and not deferred-released) in
	// the out-fact of a return block leaks on that path. One finding
	// per acquisition site, reported at the Lock call so the
	// suppression (when the protocol is intentional) sits on the
	// acquiring line.
	type leak struct {
		key       string
		returnPos token.Pos
	}
	leaks := make(map[token.Pos]leak)
	for _, b := range g.Blocks {
		f, ok := out[b]
		if !ok || b.Term != cfg.TermReturn {
			continue
		}
		for key, st := range f {
			if st.deferred {
				continue
			}
			if _, dup := leaks[st.pos]; !dup {
				leaks[st.pos] = leak{key: key, returnPos: returnPosOf(b)}
			}
		}
	}
	positions := make([]token.Pos, 0, len(leaks))
	for pos := range leaks {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	for _, pos := range positions {
		l := leaks[pos]
		where := "the end of the function"
		if l.returnPos.IsValid() {
			where = "line " + strconv.Itoa(p.Pkg.Fset.Position(l.returnPos).Line)
		}
		p.Reportf(pos, "%s: %s is locked here but not unlocked on the return path through %s; unlock on every path or defer the unlock",
			fb.name, l.key, where)
	}
}

// returnPosOf finds the position of the block's return statement, or
// NoPos for the implicit fall-off-the-end return.
func returnPosOf(b *cfg.Block) token.Pos {
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		if r, ok := b.Nodes[i].(*ast.ReturnStmt); ok {
			return r.Pos()
		}
	}
	return token.NoPos
}

// lockTransfer folds one block into the fact; with report set it also
// emits diagnostics (the dataflow pass runs it silently, possibly many
// times; the reporting pass runs it exactly once per reachable block).
func lockTransfer(p *Pass, name string, b *cfg.Block, f lockFact, report bool) {
	for _, n := range b.Nodes {
		if d, ok := n.(*ast.DeferStmt); ok {
			for _, key := range deferredUnlocks(p.Pkg.Info, d) {
				if st := f[key]; st != nil {
					st.deferred = true
				}
			}
			continue
		}
		inspectShallow(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				lockCall(p, name, n, f, report)
			case *ast.SendStmt:
				reportBlocked(p, name, n.Arrow, "channel send", f, report)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					reportBlocked(p, name, n.OpPos, "channel receive", f, report)
				}
			}
			return true
		})
	}
	if b.Kind == cfg.KindSelect {
		if sel, ok := b.Ctrl.(*ast.SelectStmt); ok && !selectHasDefault(sel) {
			reportBlocked(p, name, sel.Pos(), "select without default", f, report)
		}
	}
}

// lockCall updates the fact for one call: Lock/RLock acquire,
// Unlock/RUnlock release, and the known blocking calls report when a
// lock is held.
func lockCall(p *Pass, name string, call *ast.CallExpr, f lockFact, report bool) {
	if recv, tn, m, ok := syncMethod(p.Pkg.Info, call); ok {
		switch {
		case (tn == "Mutex" || tn == "RWMutex") && (m == "Lock" || m == "RLock"):
			key := types.ExprString(ast.Unparen(recv))
			read := m == "RLock"
			if st := f[key]; st != nil && report && !(st.read && read) {
				p.Reportf(call.Pos(), "%s: %s.%s while %s is already held on this path (locked at line %d): Go locks are not reentrant, this self-deadlocks",
					name, key, m, key, p.Pkg.Fset.Position(st.pos).Line)
			}
			f[key] = &lockState{pos: call.Pos(), read: read}
		case (tn == "Mutex" || tn == "RWMutex") && (m == "Unlock" || m == "RUnlock"):
			key := types.ExprString(ast.Unparen(recv))
			delete(f, key)
		case tn == "WaitGroup" && m == "Wait":
			reportBlocked(p, name, call.Pos(), "WaitGroup.Wait", f, report)
		case tn == "Cond" && m == "Wait":
			reportBlocked(p, name, call.Pos(), "Cond.Wait", f, report)
		}
		return
	}
	if obj := calleeObj(p.Pkg.Info, call); isPkgFunc(obj, "time", "Sleep") {
		reportBlocked(p, name, call.Pos(), "time.Sleep", f, report)
	}
}

// reportBlocked emits a held-across-blocking-operation finding for
// every lock currently held, in deterministic key order.
func reportBlocked(p *Pass, name string, pos token.Pos, what string, f lockFact, report bool) {
	if !report || len(f) == 0 {
		return
	}
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.Reportf(pos, "%s: %s may block while %s is held (locked at line %d): contenders stall and the unblocking party may need the lock",
			name, what, k, p.Pkg.Fset.Position(f[k].pos).Line)
	}
}

// isLockMethodName reports whether m participates in lock state.
func isLockMethodName(m string) bool {
	switch m {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return true
	}
	return false
}

// deferredUnlocks extracts the lock keys a defer releases: `defer
// mu.Unlock()` directly, or any unlock calls inside a deferred
// closure's body.
func deferredUnlocks(info *types.Info, d *ast.DeferStmt) []string {
	var keys []string
	record := func(call *ast.CallExpr) {
		if recv, tn, m, ok := syncMethod(info, call); ok &&
			(tn == "Mutex" || tn == "RWMutex") && (m == "Unlock" || m == "RUnlock") {
			keys = append(keys, types.ExprString(ast.Unparen(recv)))
		}
	}
	record(d.Call)
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				record(call)
			}
			return true
		})
	}
	return keys
}

// checkMutexCopies reports assignments and calls that copy a mutex (or
// a value whose type embeds one) by value.
func checkMutexCopies(p *Pass, f *File) {
	info := p.Pkg.Info
	describe := func(t types.Type) string {
		if isMutexValue(t) {
			return "a " + t.String() + " value"
		}
		return t.String() + " (which embeds a mutex by value)"
	}
	checkExpr := func(e ast.Expr, context string) {
		e = ast.Unparen(e)
		switch e.(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			// A fresh literal or a call result is a new value, not a
			// copy of live lock state.
			return
		}
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil || tv.IsType() {
			return
		}
		if isMutexValue(tv.Type) || containsMutex(tv.Type) {
			p.Reportf(e.Pos(), "%s copies %s: the copy shares no lock state with the original; use a pointer",
				context, describe(tv.Type))
		}
	}
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				// Assigning to the blank identifier discards the
				// value; no copy escapes.
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				checkExpr(rhs, "assignment")
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			for _, arg := range n.Args {
				checkExpr(arg, "call argument")
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if sl, isSlice := tv.Type.Underlying().(*types.Slice); isSlice && containsMutex(sl.Elem()) && n.Value != nil {
					p.Reportf(n.Value.Pos(), "range copies %s per iteration: the copy shares no lock state with the original; range over indices instead",
						describe(sl.Elem()))
				}
			}
		}
		return true
	})
}
