// Package bucket implements the paper's "bucket experiment" (§IV-C,
// adapted from Troncoso and Danezis): a calibration test for probability
// estimators. Each trial pairs an estimated probability p with a boolean
// outcome z; pairs are bucketed by estimate into B equal-width bins, and
// within each bin the empirical outcome rate — as a beta distribution
// with its 95% confidence interval — is compared against the bin's mean
// estimate. A well-calibrated estimator's mean falls inside the interval
// about 95% of the time.
//
// The package also provides the accuracy measures of the paper's
// Table III: the Brier probability score and the normalised likelihood
// (geometric mean of the probability assigned to the realised outcome),
// each over all pairs and over "middle values" only (estimates not
// exactly 0 or 1).
package bucket

import (
	"fmt"
	"math"

	"infoflow/internal/dist"
)

// Pair is one trial: an estimated flow probability and the empirically
// observed outcome.
type Pair struct {
	Estimate float64
	Outcome  bool
}

// Experiment accumulates pairs.
type Experiment struct {
	Pairs []Pair
}

// Add records a trial. Estimates outside [0,1] are rejected.
func (e *Experiment) Add(estimate float64, outcome bool) error {
	if estimate < 0 || estimate > 1 || math.IsNaN(estimate) {
		return fmt.Errorf("bucket: estimate %v outside [0,1]", estimate)
	}
	e.Pairs = append(e.Pairs, Pair{estimate, outcome})
	return nil
}

// MustAdd is Add that panics on error, for generator-driven experiments
// whose estimates are probabilities by construction.
func (e *Experiment) MustAdd(estimate float64, outcome bool) {
	if err := e.Add(estimate, outcome); err != nil {
		//flowlint:invariant Must* wrapper: the caller asserts the estimate is a probability
		panic(err)
	}
}

// Len returns the number of recorded pairs.
func (e *Experiment) Len() int { return len(e.Pairs) }

// Bin is one bucket of the calibration analysis.
type Bin struct {
	// Lo and Hi bound the estimates bucketed here: [Lo, Hi).
	Lo, Hi float64
	// Count is the number of pairs, Positives how many had Outcome true.
	Count     int
	Positives int
	// MeanEstimate is the average estimate of the bin's pairs.
	MeanEstimate float64
	// Empirical is the beta distribution over the bin's true outcome
	// rate: Beta(1 + positives, count - positives + 1).
	Empirical dist.Beta
	// CILo and CIHi bound the central 95% interval of Empirical.
	CILo, CIHi float64
	// InCI reports whether MeanEstimate falls inside [CILo, CIHi] — the
	// "cross vs dot" distinction in the paper's figures.
	InCI bool
}

// Result is a completed bucket analysis.
type Result struct {
	Bins []Bin
	// Coverage is the fraction of non-empty bins whose mean estimate lies
	// within the bin's 95% interval; calibrated estimators score ~0.95.
	Coverage float64
	// NonEmpty is the number of bins containing at least one pair.
	NonEmpty int
}

// Analyze buckets the experiment's pairs into nBins equal-width bins
// over [0,1] (the paper uses 30) and computes per-bin empirical betas and
// confidence intervals. Estimates exactly equal to 1 land in the top bin.
func (e *Experiment) Analyze(nBins int) (*Result, error) {
	if nBins <= 0 {
		return nil, fmt.Errorf("bucket: non-positive bin count %d", nBins)
	}
	if len(e.Pairs) == 0 {
		return nil, fmt.Errorf("bucket: no pairs recorded")
	}
	res := &Result{Bins: make([]Bin, nBins)}
	width := 1.0 / float64(nBins)
	for j := range res.Bins {
		res.Bins[j].Lo = float64(j) * width
		res.Bins[j].Hi = float64(j+1) * width
	}
	sums := make([]float64, nBins)
	for _, p := range e.Pairs {
		j := int(p.Estimate / width)
		if j >= nBins {
			j = nBins - 1
		}
		b := &res.Bins[j]
		b.Count++
		if p.Outcome {
			b.Positives++
		}
		sums[j] += p.Estimate
	}
	inCI := 0
	for j := range res.Bins {
		b := &res.Bins[j]
		if b.Count == 0 {
			continue
		}
		res.NonEmpty++
		b.MeanEstimate = sums[j] / float64(b.Count)
		// The paper's construction: alpha = 1 + sum(z), beta = |bin| -
		// alpha + 2 = failures + 1.
		b.Empirical = dist.NewBeta(float64(1+b.Positives), float64(b.Count-b.Positives+1))
		b.CILo, b.CIHi = b.Empirical.ConfidenceInterval(0.95)
		b.InCI = b.MeanEstimate >= b.CILo && b.MeanEstimate <= b.CIHi
		if b.InCI {
			inCI++
		}
	}
	if res.NonEmpty > 0 {
		res.Coverage = float64(inCI) / float64(res.NonEmpty)
	}
	return res, nil
}
