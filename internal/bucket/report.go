package bucket

import (
	"fmt"
	"math"
	"strings"
)

// String renders the analysis as a fixed-width table mirroring the
// information in the paper's calibration figures: per-bin mean estimate,
// empirical mean with its 95% interval, volumes, and the in-interval
// marker ("x" for the paper's cross = inside, "o" for dot = outside).
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s %9s %9s %19s %8s %8s  %s\n",
		"bin", "est.mean", "emp.mean", "95% CI", "count", "pos", "in")
	for _, bin := range r.Bins {
		if bin.Count == 0 {
			continue
		}
		mark := "o"
		if bin.InCI {
			mark = "x"
		}
		fmt.Fprintf(&b, "[%.3f,%.3f) %9.4f %9.4f [%8.4f,%8.4f] %8d %8d  %s\n",
			bin.Lo, bin.Hi, bin.MeanEstimate, bin.Empirical.Mean(),
			bin.CILo, bin.CIHi, bin.Count, bin.Positives, mark)
	}
	fmt.Fprintf(&b, "coverage: %.3f over %d non-empty bins\n", r.Coverage, r.NonEmpty)
	return b.String()
}

// VolumePlot renders the companion volume chart (the right/bottom plots
// of Figures 1, 2, 8, 9): per bin, the number of estimates and how many
// were positive flows, on a log-scaled ASCII bar.
func (r *Result) VolumePlot() string {
	var b strings.Builder
	maxCount := 1
	for _, bin := range r.Bins {
		if bin.Count > maxCount {
			maxCount = bin.Count
		}
	}
	scale := func(n int) int {
		if n <= 0 {
			return 0
		}
		// Log-scaled to 40 columns, min 1 for non-zero.
		w := int(40 * log2(float64(n+1)) / log2(float64(maxCount+1)))
		if w < 1 {
			w = 1
		}
		return w
	}
	fmt.Fprintf(&b, "%-13s %8s %8s  %s\n", "bin", "count", "pos", "volume (#) / positives (+), log scale")
	for _, bin := range r.Bins {
		if bin.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%.3f,%.3f) %8d %8d  %s\n", bin.Lo, bin.Hi, bin.Count, bin.Positives,
			strings.Repeat("#", scale(bin.Count))+"\n"+strings.Repeat(" ", 33)+strings.Repeat("+", scale(bin.Positives)))
	}
	return b.String()
}

func log2(x float64) float64 { return math.Log2(x) }
