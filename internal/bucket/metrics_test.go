package bucket

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestComputeHandValues checks the Table III measures against values
// worked by hand over a mixed-outcome triple.
func TestComputeHandValues(t *testing.T) {
	e := &Experiment{}
	e.MustAdd(0.8, true)
	e.MustAdd(0.4, false)
	e.MustAdd(0.5, true)
	m, err := e.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 3 {
		t.Errorf("count = %d", m.Count)
	}
	// Geometric mean of the probabilities assigned to the realised
	// outcomes: (0.8, 0.6, 0.5).
	wantNL := math.Pow(0.8*0.6*0.5, 1.0/3.0)
	if !almostEqual(m.NormalisedLikelihood, wantNL, 1e-12) {
		t.Errorf("normalised likelihood = %v, want %v", m.NormalisedLikelihood, wantNL)
	}
	// Mean of (0.2^2, 0.4^2, 0.5^2).
	wantBrier := (0.04 + 0.16 + 0.25) / 3
	if !almostEqual(m.Brier, wantBrier, 1e-12) {
		t.Errorf("brier = %v, want %v", m.Brier, wantBrier)
	}
}

// TestComputeClampExactValue pins the clamp to its documented constant
// at both ends: certain-and-wrong predictions contribute exactly
// ClampEps (resp. 1-ClampEps) to the geometric mean.
func TestComputeClampExactValue(t *testing.T) {
	e := &Experiment{}
	e.MustAdd(1, false) // assigned probability 0 to the outcome
	e.MustAdd(0, false) // assigned probability 1 to the outcome
	m, err := e.Compute()
	if err != nil {
		t.Fatal(err)
	}
	wantNL := math.Sqrt(ClampEps * (1 - ClampEps))
	if !almostEqual(m.NormalisedLikelihood, wantNL, 1e-12) {
		t.Errorf("clamped likelihood = %v, want %v", m.NormalisedLikelihood, wantNL)
	}
	// Brier uses the raw estimates: ((1-0)^2 + 0^2)/2.
	if !almostEqual(m.Brier, 0.5, 1e-12) {
		t.Errorf("brier = %v, want 0.5", m.Brier)
	}
}

func TestComputeEmpty(t *testing.T) {
	e := &Experiment{}
	if _, err := e.Compute(); err == nil {
		t.Error("metrics over zero pairs accepted")
	}
}

func TestMustAddPanics(t *testing.T) {
	e := &Experiment{}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd did not panic on bad estimate")
		}
		if e.Len() != 0 {
			t.Errorf("rejected estimate recorded: len=%d", e.Len())
		}
	}()
	e.MustAdd(2, true)
}

func TestRMSEIdenticalVectors(t *testing.T) {
	if v, err := RMSE([]float64{0.3, 0.7}, []float64{0.3, 0.7}); err != nil || v != 0 {
		t.Errorf("identical vectors: %v, %v", v, err)
	}
}
