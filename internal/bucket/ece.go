package bucket

import "fmt"

// ECE returns the Expected Calibration Error over nBins equal-width
// bins: the bin-size-weighted mean absolute gap between each bin's mean
// estimate and its empirical outcome rate. It is the scalar companion to
// the bucket plots — 0 for a perfectly calibrated estimator — and is
// reported alongside the paper's coverage statistic because coverage
// saturates (every bin misses) once pair counts grow large enough to
// shrink the confidence intervals below any systematic bias.
func (e *Experiment) ECE(nBins int) (float64, error) {
	res, err := e.Analyze(nBins)
	if err != nil {
		return 0, err
	}
	total := 0
	weighted := 0.0
	for _, b := range res.Bins {
		if b.Count == 0 {
			continue
		}
		empirical := float64(b.Positives) / float64(b.Count)
		gap := b.MeanEstimate - empirical
		if gap < 0 {
			gap = -gap
		}
		weighted += gap * float64(b.Count)
		total += b.Count
	}
	if total == 0 {
		return 0, fmt.Errorf("bucket: no pairs for ECE")
	}
	return weighted / float64(total), nil
}
