package bucket

import (
	"strings"
	"testing"
)

// reportExperiment builds a small deterministic experiment: a
// well-populated low bin, a deliberately miscalibrated high bin, and
// everything else empty.
func reportExperiment(t *testing.T) *Result {
	t.Helper()
	e := &Experiment{}
	// Bin [0.2,0.3): 20 pairs at 0.25, 5 positive — calibrated.
	for i := 0; i < 20; i++ {
		e.MustAdd(0.25, i < 5)
	}
	// Bin [0.9,1.0]: 10 pairs at 0.95, none positive — badly off.
	for i := 0; i < 10; i++ {
		e.MustAdd(0.95, false)
	}
	res, err := e.Analyze(10)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestResultString(t *testing.T) {
	res := reportExperiment(t)
	s := res.String()
	// One header, one row per non-empty bin, one coverage line.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if want := 1 + res.NonEmpty + 1; len(lines) != want {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), want, s)
	}
	if !strings.Contains(lines[0], "est.mean") || !strings.Contains(lines[0], "95% CI") {
		t.Errorf("header missing columns: %q", lines[0])
	}
	// The calibrated bin renders the paper's cross, the miscalibrated one
	// the dot.
	if !strings.Contains(s, "[0.200,0.300)") {
		t.Errorf("low bin label missing:\n%s", s)
	}
	var lowMark, highMark string
	for _, ln := range lines[1 : len(lines)-1] {
		fields := strings.Fields(ln)
		mark := fields[len(fields)-1]
		switch {
		case strings.HasPrefix(ln, "[0.200"):
			lowMark = mark
		case strings.HasPrefix(ln, "[0.900"):
			highMark = mark
		}
	}
	if lowMark != "x" {
		t.Errorf("calibrated bin marked %q, want x:\n%s", lowMark, s)
	}
	if highMark != "o" {
		t.Errorf("miscalibrated bin marked %q, want o:\n%s", highMark, s)
	}
	if !strings.Contains(lines[len(lines)-1], "coverage: 0.500 over 2 non-empty bins") {
		t.Errorf("coverage line wrong: %q", lines[len(lines)-1])
	}
}

func TestVolumePlot(t *testing.T) {
	res := reportExperiment(t)
	s := res.VolumePlot()
	if !strings.Contains(s, "volume (#)") {
		t.Errorf("header missing:\n%s", s)
	}
	// Two non-empty bins, each contributing a # bar and a + bar line.
	if got := strings.Count(s, "[0."); got != 2 {
		t.Errorf("%d bin rows, want 2:\n%s", got, s)
	}
	if !strings.Contains(s, "#") {
		t.Errorf("no volume bars:\n%s", s)
	}
	// The fuller bin gets the wider bar; the all-negative bin draws no +.
	var lowBar, highBar int
	for _, ln := range strings.Split(s, "\n") {
		if strings.HasPrefix(ln, "[0.200") {
			lowBar = strings.Count(ln, "#")
		}
		if strings.HasPrefix(ln, "[0.900") {
			highBar = strings.Count(ln, "#")
		}
	}
	if lowBar <= highBar {
		t.Errorf("bar widths %d (n=20) vs %d (n=10) not ordered:\n%s", lowBar, highBar, s)
	}
}
