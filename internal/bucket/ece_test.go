package bucket

import (
	"math"
	"testing"

	"infoflow/internal/rng"
)

func TestECEPerfectlyCalibrated(t *testing.T) {
	r := rng.New(50)
	var e Experiment
	for i := 0; i < 100000; i++ {
		p := r.Float64()
		e.MustAdd(p, r.Bernoulli(p))
	}
	ece, err := e.ECE(20)
	if err != nil {
		t.Fatal(err)
	}
	if ece > 0.02 {
		t.Errorf("calibrated ECE = %v", ece)
	}
}

func TestECEBiasedEstimator(t *testing.T) {
	r := rng.New(51)
	var e Experiment
	for i := 0; i < 50000; i++ {
		p := r.Float64()
		// Estimator reports p but outcomes follow p/2: gap ~ mean(p)/2.
		e.MustAdd(p, r.Bernoulli(p/2))
	}
	ece, err := e.ECE(20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ece-0.25) > 0.03 {
		t.Errorf("biased ECE = %v, want ~0.25", ece)
	}
}

func TestECEKnownValue(t *testing.T) {
	var e Experiment
	// One bin: estimates 0.9, half the outcomes true -> gap 0.4.
	e.MustAdd(0.9, true)
	e.MustAdd(0.9, false)
	ece, err := e.ECE(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ece-0.4) > 1e-12 {
		t.Errorf("ECE = %v want 0.4", ece)
	}
}

func TestECEEmpty(t *testing.T) {
	var e Experiment
	if _, err := e.ECE(10); err == nil {
		t.Error("empty experiment produced an ECE")
	}
}
