package bucket

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"infoflow/internal/rng"
)

func TestAddValidation(t *testing.T) {
	var e Experiment
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if err := e.Add(bad, true); err == nil {
			t.Errorf("estimate %v accepted", bad)
		}
	}
	if err := e.Add(0, false); err != nil {
		t.Errorf("0 rejected: %v", err)
	}
	if err := e.Add(1, true); err != nil {
		t.Errorf("1 rejected: %v", err)
	}
	if e.Len() != 2 {
		t.Errorf("len = %d", e.Len())
	}
}

func TestAnalyzeBinning(t *testing.T) {
	var e Experiment
	e.MustAdd(0.05, true)
	e.MustAdd(0.05, false)
	e.MustAdd(0.95, true)
	e.MustAdd(1.0, true) // exact 1 lands in top bin
	res, err := e.Analyze(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bins[0].Count != 2 || res.Bins[0].Positives != 1 {
		t.Fatalf("bin0 = %+v", res.Bins[0])
	}
	if res.Bins[9].Count != 2 || res.Bins[9].Positives != 2 {
		t.Fatalf("bin9 = %+v", res.Bins[9])
	}
	if res.NonEmpty != 2 {
		t.Fatalf("nonempty = %d", res.NonEmpty)
	}
	// Paper's beta construction: bin0 has 1 positive of 2 ->
	// Beta(2, 2).
	if res.Bins[0].Empirical.Alpha != 2 || res.Bins[0].Empirical.Beta != 2 {
		t.Fatalf("empirical = %v", res.Bins[0].Empirical)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var e Experiment
	if _, err := e.Analyze(10); err == nil {
		t.Error("empty experiment analyzed")
	}
	e.MustAdd(0.5, true)
	if _, err := e.Analyze(0); err == nil {
		t.Error("zero bins accepted")
	}
}

// TestCalibratedEstimatorCovered: pairs generated with truthful
// probabilities should have high coverage; a biased estimator should
// not.
func TestCalibratedEstimatorCovered(t *testing.T) {
	r := rng.New(40)
	var good, biased Experiment
	for i := 0; i < 30000; i++ {
		p := r.Float64()
		outcome := r.Bernoulli(p)
		good.MustAdd(p, outcome)
		// Biased: report sqrt(p) instead of p.
		biased.MustAdd(math.Sqrt(p), outcome)
	}
	gres, err := good.Analyze(30)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := biased.Analyze(30)
	if err != nil {
		t.Fatal(err)
	}
	if gres.Coverage < 0.85 {
		t.Errorf("calibrated coverage = %v", gres.Coverage)
	}
	if bres.Coverage > gres.Coverage-0.3 {
		t.Errorf("biased coverage %v not clearly below calibrated %v", bres.Coverage, gres.Coverage)
	}
}

func TestMetricsKnownValues(t *testing.T) {
	var e Experiment
	e.MustAdd(0.8, true)
	e.MustAdd(0.8, false)
	m, err := e.Compute()
	if err != nil {
		t.Fatal(err)
	}
	// Brier: ((0.8-1)^2 + (0.8-0)^2)/2 = (0.04+0.64)/2 = 0.34.
	if math.Abs(m.Brier-0.34) > 1e-12 {
		t.Errorf("brier = %v", m.Brier)
	}
	// NL: sqrt(0.8 * 0.2) = 0.4.
	if math.Abs(m.NormalisedLikelihood-0.4) > 1e-9 {
		t.Errorf("nl = %v", m.NormalisedLikelihood)
	}
	if m.Count != 2 {
		t.Errorf("count = %d", m.Count)
	}
}

func TestMetricsClampExtremes(t *testing.T) {
	var e Experiment
	e.MustAdd(1, false) // certain prediction, wrong
	e.MustAdd(0.5, true)
	m, err := e.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if m.NormalisedLikelihood <= 0 {
		t.Errorf("nl zeroed out: %v", m.NormalisedLikelihood)
	}
	// Brier is computed on the raw estimate: (1-0)^2 contributes fully.
	if math.Abs(m.Brier-(1+0.25)/2) > 1e-12 {
		t.Errorf("brier = %v", m.Brier)
	}
}

func TestComputeMiddleDropsExtremes(t *testing.T) {
	var e Experiment
	e.MustAdd(0, false)
	e.MustAdd(1, true)
	e.MustAdd(0.6, true)
	all, err := e.Compute()
	if err != nil {
		t.Fatal(err)
	}
	mid, err := e.ComputeMiddle()
	if err != nil {
		t.Fatal(err)
	}
	if all.Count != 3 || mid.Count != 1 {
		t.Fatalf("counts: all %d mid %d", all.Count, mid.Count)
	}
	if math.Abs(mid.NormalisedLikelihood-0.6) > 1e-12 {
		t.Errorf("middle nl = %v", mid.NormalisedLikelihood)
	}
	// All extremes correct: all-values NL must exceed middle NL here.
	if all.NormalisedLikelihood <= mid.NormalisedLikelihood {
		t.Errorf("all %v <= middle %v", all.NormalisedLikelihood, mid.NormalisedLikelihood)
	}
}

func TestComputeMiddleEmpty(t *testing.T) {
	var e Experiment
	e.MustAdd(0, false)
	if _, err := e.ComputeMiddle(); err == nil {
		t.Error("middle metrics over empty set accepted")
	}
}

func TestBetterEstimatorBetterMetrics(t *testing.T) {
	// The truthful estimator must beat a constant estimator on both
	// measures.
	r := rng.New(41)
	var truthful, constant Experiment
	for i := 0; i < 20000; i++ {
		p := r.Float64()
		z := r.Bernoulli(p)
		truthful.MustAdd(p, z)
		constant.MustAdd(0.5, z)
	}
	mt, err := truthful.Compute()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := constant.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if mt.Brier >= mc.Brier {
		t.Errorf("brier: truthful %v vs constant %v", mt.Brier, mc.Brier)
	}
	if mt.NormalisedLikelihood <= mc.NormalisedLikelihood {
		t.Errorf("nl: truthful %v vs constant %v", mt.NormalisedLikelihood, mc.NormalisedLikelihood)
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{0, 1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Sqrt(0.5)) > 1e-12 {
		t.Errorf("rmse = %v", got)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestBrierBounds(t *testing.T) {
	err := quick.Check(func(seed uint16, n uint8) bool {
		r := rng.New(uint64(seed))
		var e Experiment
		for i := 0; i < int(n%50)+1; i++ {
			e.MustAdd(r.Float64(), r.Bernoulli(0.5))
		}
		m, err := e.Compute()
		if err != nil {
			return false
		}
		return m.Brier >= 0 && m.Brier <= 1 &&
			m.NormalisedLikelihood > 0 && m.NormalisedLikelihood <= 1
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReportRendering(t *testing.T) {
	var e Experiment
	e.MustAdd(0.1, false)
	e.MustAdd(0.9, true)
	res, err := e.Analyze(10)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "coverage") || !strings.Contains(s, "[0.900,1.000)") {
		t.Errorf("report missing content:\n%s", s)
	}
	v := res.VolumePlot()
	if !strings.Contains(v, "#") {
		t.Errorf("volume plot missing bars:\n%s", v)
	}
}
