package bucket

import (
	"fmt"
	"math"
)

// ClampEps is the probability clamp the paper's accuracy appendix applies
// before computing the normalised likelihood: predictions of exactly 0 or
// 1 would otherwise zero out the entire geometric mean when a single
// outcome disagrees.
const ClampEps = 1e-6

// Metrics holds the Table III accuracy measures for one experiment.
type Metrics struct {
	// NormalisedLikelihood is the geometric mean over pairs of the
	// probability the estimate assigned to the realised outcome (clamped
	// to [ClampEps, 1-ClampEps]); closer to 1 is better.
	NormalisedLikelihood float64
	// Brier is the mean squared difference between estimate and outcome;
	// closer to 0 is better.
	Brier float64
	// Count is the number of pairs the measures were computed over.
	Count int
}

// Compute returns the metrics over all of the experiment's pairs.
func (e *Experiment) Compute() (Metrics, error) {
	return computeMetrics(e.Pairs)
}

// ComputeMiddle returns the metrics over the "middle values" only —
// pairs whose estimate is not exactly 0 or 1 — the second column group of
// Table III, introduced because near-certain predictions otherwise wash
// out the differences between methods.
func (e *Experiment) ComputeMiddle() (Metrics, error) {
	middle := make([]Pair, 0, len(e.Pairs))
	for _, p := range e.Pairs {
		//flowlint:ignore floatcmp -- 0 and 1 are exact sentinel estimates from degenerate pairs, never rounded values
		if p.Estimate != 0 && p.Estimate != 1 {
			middle = append(middle, p)
		}
	}
	return computeMetrics(middle)
}

func computeMetrics(pairs []Pair) (Metrics, error) {
	if len(pairs) == 0 {
		return Metrics{}, fmt.Errorf("bucket: no pairs for metrics")
	}
	logSum := 0.0
	brier := 0.0
	for _, p := range pairs {
		est := p.Estimate
		if est < ClampEps {
			est = ClampEps
		}
		if est > 1-ClampEps {
			est = 1 - ClampEps
		}
		var z float64
		if p.Outcome {
			z = 1
			logSum += math.Log(est)
		} else {
			logSum += math.Log1p(-est)
		}
		d := p.Estimate - z
		brier += d * d
	}
	n := float64(len(pairs))
	return Metrics{
		NormalisedLikelihood: math.Exp(logSum / n),
		Brier:                brier / n,
		Count:                len(pairs),
	}, nil
}

// RMSE returns the root mean squared error between two equal-length
// vectors, the Figure 7 comparison measure between trained and
// ground-truth activation probabilities.
func RMSE(estimate, truth []float64) (float64, error) {
	if len(estimate) != len(truth) {
		return 0, fmt.Errorf("bucket: RMSE length mismatch %d vs %d", len(estimate), len(truth))
	}
	if len(estimate) == 0 {
		return 0, fmt.Errorf("bucket: RMSE of empty vectors")
	}
	ss := 0.0
	for i := range estimate {
		d := estimate[i] - truth[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(estimate))), nil
}
