package unattrib

import (
	"fmt"
	"math"

	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

// SaitoOptions configures the EM estimators.
type SaitoOptions struct {
	MaxIter int
	Tol     float64 // L-infinity convergence tolerance on the estimates
}

// DefaultSaitoOptions matches the paper's Figure 11 setting of a fixed
// 200-iteration budget with early exit on convergence.
func DefaultSaitoOptions() SaitoOptions {
	return SaitoOptions{MaxIter: 200, Tol: 1e-9}
}

// SaitoRelaxed runs the paper's Appendix modification of Saito et al.'s
// expectation-maximization on an evidence summary: activation-time
// adjacency is relaxed to "implicated parents were active before the
// child", and the evidence is the summarised (characteristic, count,
// leaks) table. Starting from init (one value per local parent; values
// must lie in (0,1)), it iterates
//
//	E: P_J = 1 - prod_{v in J}(1 - k_v)
//	M: k_v = [ sum_{J: v in J} L_J * k_v / P_J ] / [ sum_{J: v in J} n_J ]
//
// until convergence, returning the point estimates and the iteration
// count. EM converges to a local maximum of the likelihood; the Figure 11
// experiment shows the Table II summary has several.
func SaitoRelaxed(s *Summary, init []float64, opts SaitoOptions) ([]float64, int, error) {
	n := len(s.Parents)
	if len(init) != n {
		return nil, 0, fmt.Errorf("unattrib: init length %d for %d parents", len(init), n)
	}
	if opts.MaxIter <= 0 {
		return nil, 0, fmt.Errorf("unattrib: non-positive MaxIter")
	}
	k := make([]float64, n)
	for j, v := range init {
		if v <= 0 || v >= 1 {
			return nil, 0, fmt.Errorf("unattrib: init[%d]=%v outside (0,1)", j, v)
		}
		k[j] = v
	}
	// Denominators are constant: total observations where v was active.
	denom := make([]float64, n)
	for _, r := range s.Rows {
		for j := 0; j < n; j++ {
			if r.Set.Has(j) {
				denom[j] += float64(r.Count)
			}
		}
	}
	next := make([]float64, n)
	iter := 0
	for ; iter < opts.MaxIter; iter++ {
		for j := range next {
			next[j] = 0
		}
		for _, r := range s.Rows {
			if r.Leaks == 0 {
				continue
			}
			pJ := jointProb(r.Set, k)
			if pJ <= 0 {
				continue // no active parent can explain the leak yet
			}
			for j := 0; j < n; j++ {
				if r.Set.Has(j) {
					next[j] += float64(r.Leaks) * k[j] / pJ
				}
			}
		}
		maxDelta := 0.0
		for j := 0; j < n; j++ {
			var v float64
			if denom[j] > 0 {
				v = next[j] / denom[j]
			} else {
				v = k[j] // no evidence: parameter retains its value
			}
			if d := math.Abs(v - k[j]); d > maxDelta {
				maxDelta = d
			}
			k[j] = v
		}
		if maxDelta < opts.Tol {
			iter++
			break
		}
	}
	return k, iter, nil
}

// SaitoRelaxedRestarts runs SaitoRelaxed from uniformly random
// initialisations and returns every converged solution, one per restart —
// the procedure behind Figure 11(a).
func SaitoRelaxedRestarts(s *Summary, restarts int, opts SaitoOptions, r *rng.RNG) ([][]float64, error) {
	out := make([][]float64, 0, restarts)
	for t := 0; t < restarts; t++ {
		init := make([]float64, len(s.Parents))
		for j := range init {
			init[j] = r.Uniform(0.01, 0.99)
		}
		k, _, err := SaitoRelaxed(s, init, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// SaitoOriginal is Saito et al.'s original discrete-time EM: a parent v
// is implicated in child w's activation only if v was active at exactly
// t_w - 1, and an observation of v active at time t with w not active at
// t+1 counts as a failed trial of edge (v, w). It consumes raw traces
// (not summaries, which discard timing) for the edges into one sink.
//
// The estimates are indexed by the parents slice. Parents never active in
// any trace keep their initial value.
func SaitoOriginal(g *graph.DiGraph, sink graph.NodeID, parents []graph.NodeID, traces []Trace, init []float64, opts SaitoOptions) ([]float64, int, error) {
	n := len(parents)
	if len(init) != n {
		return nil, 0, fmt.Errorf("unattrib: init length %d for %d parents", len(init), n)
	}
	if opts.MaxIter <= 0 {
		return nil, 0, fmt.Errorf("unattrib: non-positive MaxIter")
	}
	k := make([]float64, n)
	copy(k, init)
	// Precompute, per trace: the set of parents active at exactly
	// t_sink - 1 (positive instance with that implicated set), and for
	// each parent whether it was active-but-not-followed (failed trial).
	type instance struct {
		implicated CharBits // parents active at t_sink - 1 (positive case)
		positive   bool
		trials     CharBits // parents whose edge trial happened
	}
	instances := make([]instance, 0, len(traces))
	for _, tr := range traces {
		var inst instance
		tSink, sinkActive := tr[sink]
		for j, p := range parents {
			tp, ok := tr[p]
			if !ok {
				continue
			}
			if sinkActive {
				if tp == tSink-1 {
					inst.implicated = inst.implicated.With(j)
					inst.trials = inst.trials.With(j)
				} else if tp < tSink-1 {
					// Active earlier but sink did not activate at tp+1:
					// that trial failed.
					inst.trials = inst.trials.With(j)
				}
			} else {
				inst.trials = inst.trials.With(j)
			}
		}
		inst.positive = sinkActive && inst.implicated != 0
		if inst.trials != 0 {
			instances = append(instances, inst)
		}
	}
	denom := make([]float64, n)
	for _, inst := range instances {
		for j := 0; j < n; j++ {
			if inst.trials.Has(j) {
				denom[j]++
			}
		}
	}
	next := make([]float64, n)
	iter := 0
	for ; iter < opts.MaxIter; iter++ {
		for j := range next {
			next[j] = 0
		}
		for _, inst := range instances {
			if !inst.positive {
				continue
			}
			pS := jointProb(inst.implicated, k)
			if pS <= 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if inst.implicated.Has(j) {
					next[j] += k[j] / pS
				}
			}
		}
		maxDelta := 0.0
		for j := 0; j < n; j++ {
			var v float64
			if denom[j] > 0 {
				v = next[j] / denom[j]
			} else {
				v = k[j]
			}
			if d := math.Abs(v - k[j]); d > maxDelta {
				maxDelta = d
			}
			k[j] = v
		}
		if maxDelta < opts.Tol {
			iter++
			break
		}
	}
	return k, iter, nil
}
