package unattrib

import (
	"math"

	"infoflow/internal/graph"
)

// LogLikelihoodTraces evaluates the evidence log likelihood for one sink
// directly from raw traces — one Bernoulli term per object — without
// summarising. It exists to validate (and benchmark against) the
// summary path: §V-B claims the summary is a sufficient statistic, so
// LogLikelihood(summary, p) must equal this value exactly for the same
// evidence; the test suite asserts that, and the Figure 6 benchmarks
// quantify what summarisation saves (omega binomial terms instead of m
// Bernoulli terms).
func LogLikelihoodTraces(sink graph.NodeID, parents []graph.NodeID, traces []Trace, p []float64) float64 {
	ll := 0.0
	for _, tr := range traces {
		tSink, sinkActive := tr[sink]
		surv := 1.0
		any := false
		for j, parent := range parents {
			tp, ok := tr[parent]
			if !ok {
				continue
			}
			if sinkActive && tp >= tSink {
				continue
			}
			any = true
			surv *= 1 - p[j]
		}
		if !any {
			continue // no potential cause: carries no edge information
		}
		pJ := 1 - surv
		if sinkActive {
			if pJ <= 0 {
				return math.Inf(-1)
			}
			ll += math.Log(pJ)
		} else {
			if pJ >= 1 {
				return math.Inf(-1)
			}
			ll += math.Log1p(-pJ)
		}
	}
	return ll
}
