package unattrib_test

import (
	"bytes"
	"testing"

	"infoflow/internal/unattrib"
)

// FuzzReadSummariesRoundTrip asserts that unattrib.ReadSummaries never
// panics and that every accepted input reaches an encode/decode fixed
// point. ReadSummaries canonicalises on the way in (rows sorted, merged
// by characteristic, sinks sorted on encode), so the first re-encoding
// must survive another decode/encode cycle byte for byte.
func FuzzReadSummariesRoundTrip(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"sink":3,"parents":[0,1],"rows":[{"set":0,"count":5,"leaks":0},{"set":3,"count":7,"leaks":6}]}]`))
	f.Add([]byte(`[{"sink":1,"parents":[0],"rows":[{"set":1,"count":2,"leaks":3}]}]`))
	f.Add([]byte(`[{"sink":1,"parents":[0],"rows":[]},{"sink":1,"parents":[0],"rows":[]}]`))
	f.Add([]byte(`[{"sink":2,"parents":[0,1],"rows":[{"set":9,"count":1,"leaks":0}]}]`))
	f.Add([]byte(`[{"sink":`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sums, err := unattrib.ReadSummaries(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc1 bytes.Buffer
		if err := unattrib.WriteSummaries(&enc1, sums); err != nil {
			t.Fatalf("encode accepted summaries: %v", err)
		}
		sums2, err := unattrib.ReadSummaries(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-decode own encoding: %v\nencoding: %s", err, enc1.Bytes())
		}
		var enc2 bytes.Buffer
		if err := unattrib.WriteSummaries(&enc2, sums2); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("encode/decode not a fixed point:\nfirst:  %s\nsecond: %s", enc1.Bytes(), enc2.Bytes())
		}
	})
}
