package unattrib

import "infoflow/internal/dist"

// Filtered is the paper's filtered baseline (§V-C): treat each
// unambiguous observation (exactly one active incident parent) as
// attributed evidence for that single edge, and discard every ambiguous
// observation. The result is a beta distribution per local parent,
// starting from the uniform prior — identical to UnambiguousPriors, named
// separately because it IS the estimator here rather than a prior.
func Filtered(s *Summary) []dist.Beta {
	return UnambiguousPriors(s)
}

// FilteredMeans returns the filtered estimator's point estimates (beta
// means), convenient for RMSE comparisons against the other methods.
func FilteredMeans(s *Summary) []float64 {
	betas := Filtered(s)
	out := make([]float64, len(betas))
	for j, b := range betas {
		out[j] = b.Mean()
	}
	return out
}
