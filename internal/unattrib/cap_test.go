package unattrib

import (
	"testing"

	"infoflow/internal/graph"
)

// TestBuildSummariesCapsHubParents: a sink with more than MaxParents
// ever-active parents keeps the most active ones and reports the drop.
func TestBuildSummariesCapsHubParents(t *testing.T) {
	const nParents = MaxParents + 10
	g := graph.New(nParents + 1)
	sink := graph.NodeID(nParents)
	for j := 0; j < nParents; j++ {
		g.MustAddEdge(graph.NodeID(j), sink)
	}
	// Parent j is active in j+1 traces, so low-index parents are the
	// least active and must be the ones dropped.
	var traces []Trace
	for o := 0; o < nParents+1; o++ {
		tr := Trace{}
		for j := 0; j < nParents; j++ {
			if j+1 > o {
				tr[graph.NodeID(j)] = 0
			}
		}
		if len(tr) > 0 {
			traces = append(traces, tr)
		}
	}
	sums, err := BuildSummaries(g, traces)
	if err != nil {
		t.Fatal(err)
	}
	s := sums[sink]
	if len(s.Parents) != MaxParents {
		t.Fatalf("parents = %d, want %d", len(s.Parents), MaxParents)
	}
	if s.DroppedParents != 10 {
		t.Fatalf("dropped = %d, want 10", s.DroppedParents)
	}
	// The dropped parents are exactly the 10 least active (lowest j).
	for _, p := range s.Parents {
		if int(p) < 10 {
			t.Fatalf("least-active parent %d retained", p)
		}
	}
}

// TestBuildSummariesDropsInactiveParents: never-active parents vanish
// from the summary without counting as dropped.
func TestBuildSummariesDropsInactiveParents(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	traces := []Trace{{0: 0, 2: 1}}
	sums, err := BuildSummaries(g, traces)
	if err != nil {
		t.Fatal(err)
	}
	s := sums[2]
	if len(s.Parents) != 1 || s.Parents[0] != 0 {
		t.Fatalf("parents = %v", s.Parents)
	}
	if s.DroppedParents != 0 {
		t.Fatalf("dropped = %d", s.DroppedParents)
	}
}
