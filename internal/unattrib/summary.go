// Package unattrib implements §V of the paper: learning ICM activation
// probabilities from unattributed evidence, where each observation tells
// us only which nodes held an information object and when — not which
// edge carried it.
//
// Everything operates per sink node k (the ICM factorises that way, §V-B):
// the evidence for k is summarised as a table of characteristics — sets
// of k's incident parents that were active before k — with, for each
// characteristic, the number of times it was observed and the number of
// times k then became active ("leaked"). The summary is a sufficient
// statistic: the likelihood is one Binomial per characteristic instead of
// one Bernoulli per object.
//
// Four estimators are provided, matching the paper's comparison:
//
//   - JointBayes: the paper's contribution — MCMC over the joint
//     posterior of all incident edge probabilities (beta priors from the
//     unambiguous rows times binomial likelihoods).
//   - Goyal: the credit rule of Goyal et al.
//   - Saito (original discrete-time) and SaitoRelaxed (the paper's
//     appendix modification using summaries): EM maximum likelihood.
//   - Filtered: attributed-style beta counting restricted to unambiguous
//     observations, discarding the rest.
package unattrib

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"infoflow/internal/graph"
)

// MaxParents bounds the number of incident parents per sink; a
// characteristic is a bitset in a uint64.
const MaxParents = 64

// CharBits is a characteristic: bit j set means local parent j was active
// before the sink.
type CharBits uint64

// Has reports whether local parent j is in the characteristic.
func (c CharBits) Has(j int) bool { return c&(1<<uint(j)) != 0 }

// With returns the characteristic with local parent j added.
func (c CharBits) With(j int) CharBits { return c | 1<<uint(j) }

// Size returns the number of parents in the characteristic.
func (c CharBits) Size() int { return bits.OnesCount64(uint64(c)) }

// Single returns the index of the only parent in an unambiguous
// characteristic, and whether the characteristic is unambiguous.
func (c CharBits) Single() (int, bool) {
	if c.Size() != 1 {
		return 0, false
	}
	return bits.TrailingZeros64(uint64(c)), true
}

// Row is one line of an evidence summary (the paper's Table I): a
// characteristic, the number of times it was observed (n_J), and the
// number of those in which the sink became active (L_J).
type Row struct {
	Set   CharBits
	Count int // n_J
	Leaks int // L_J
}

// Summary is the evidence summary for a single sink: its incident
// parents (in fixed local order) and the observed characteristic rows.
type Summary struct {
	Sink    graph.NodeID
	Parents []graph.NodeID // local index -> graph node
	Rows    []Row
	// DroppedParents counts incident parents excluded from the summary
	// because the sink's ever-active parent set exceeded MaxParents (see
	// BuildSummaries); only the least active parents are dropped.
	DroppedParents int
}

// NewSummary starts an empty summary for a sink with the given parents.
func NewSummary(sink graph.NodeID, parents []graph.NodeID) (*Summary, error) {
	if len(parents) > MaxParents {
		return nil, fmt.Errorf("unattrib: sink %d has %d parents, limit %d", sink, len(parents), MaxParents)
	}
	return &Summary{Sink: sink, Parents: append([]graph.NodeID(nil), parents...)}, nil
}

// Observe records one observation: the characteristic of active parents
// and whether the sink leaked. Empty characteristics carry no information
// about k's incident edges and are ignored.
func (s *Summary) Observe(set CharBits, leaked bool) {
	if set == 0 {
		return
	}
	for i := range s.Rows {
		if s.Rows[i].Set == set {
			s.Rows[i].Count++
			if leaked {
				s.Rows[i].Leaks++
			}
			return
		}
	}
	r := Row{Set: set, Count: 1}
	if leaked {
		r.Leaks = 1
	}
	s.Rows = append(s.Rows, r)
}

// AddRow records a pre-aggregated row (e.g. the paper's Table I and
// Table II examples), merging with an existing row for the same
// characteristic.
func (s *Summary) AddRow(set CharBits, count, leaks int) error {
	if set == 0 {
		return fmt.Errorf("unattrib: empty characteristic")
	}
	if count < 0 || leaks < 0 || leaks > count {
		return fmt.Errorf("unattrib: invalid row count=%d leaks=%d", count, leaks)
	}
	hi := 64
	if len(s.Parents) < hi {
		hi = len(s.Parents)
	}
	if uint64(set)>>uint(hi) != 0 {
		return fmt.Errorf("unattrib: characteristic %b references parent beyond %d", set, len(s.Parents))
	}
	for i := range s.Rows {
		if s.Rows[i].Set == set {
			if s.Rows[i].Count > math.MaxInt-count {
				return fmt.Errorf("unattrib: row count overflow for characteristic %b", set)
			}
			s.Rows[i].Count += count
			s.Rows[i].Leaks += leaks
			return nil
		}
	}
	s.Rows = append(s.Rows, Row{Set: set, Count: count, Leaks: leaks})
	return nil
}

// NumObservations returns the total observation count across rows.
func (s *Summary) NumObservations() int {
	n := 0
	for _, r := range s.Rows {
		n += r.Count
	}
	return n
}

// ParentIndex returns the local index of a parent node.
func (s *Summary) ParentIndex(v graph.NodeID) (int, bool) {
	for i, p := range s.Parents {
		if p == v {
			return i, true
		}
	}
	return 0, false
}

// sortRows orders rows by characteristic for deterministic iteration.
func (s *Summary) sortRows() {
	sort.Slice(s.Rows, func(i, j int) bool { return s.Rows[i].Set < s.Rows[j].Set })
}

// Trace is the unattributed observation of one information object: the
// time (any monotone clock; cascade rounds work) at which each node
// became active. Nodes absent from the map never activated.
type Trace map[graph.NodeID]int

// BuildSummaries aggregates traces into one summary per sink that has at
// least one incident edge in g. Per the paper (§V-B): if the sink became
// active, the observed characteristic is the set of parents active
// strictly before it; otherwise it is the set of parents active at the
// latest time in the data. Sinks that activate with no previously-active
// parent (external arrivals) contribute nothing for that object.
//
// Each summary's parent set is restricted to the parents that are active
// in at least one trace: a never-active parent appears in no
// characteristic, so its posterior would equal its prior regardless, and
// dropping it keeps characteristics within the MaxParents bitset bound
// on hub sinks. If even the ever-active set exceeds MaxParents, the
// least-active parents are dropped and counted in DroppedParents.
func BuildSummaries(g *graph.DiGraph, traces []Trace) (map[graph.NodeID]*Summary, error) {
	out := make(map[graph.NodeID]*Summary)
	for v := 0; v < g.NumNodes(); v++ {
		sink := graph.NodeID(v)
		if g.InDegree(sink) == 0 {
			continue
		}
		all := g.Parents(sink)
		// First pass: how often is each incident parent active at all?
		activity := make([]int, len(all))
		for _, tr := range traces {
			for j, p := range all {
				if _, ok := tr[p]; ok {
					activity[j]++
				}
			}
		}
		idx := make([]int, 0, len(all))
		for j, c := range activity {
			if c > 0 {
				idx = append(idx, j)
			}
		}
		sort.Slice(idx, func(a, b int) bool {
			if activity[idx[a]] != activity[idx[b]] {
				return activity[idx[a]] > activity[idx[b]]
			}
			return all[idx[a]] < all[idx[b]]
		})
		dropped := 0
		if len(idx) > MaxParents {
			dropped = len(idx) - MaxParents
			idx = idx[:MaxParents]
		}
		parents := make([]graph.NodeID, len(idx))
		for i, j := range idx {
			parents[i] = all[j]
		}
		// Deterministic local order.
		sort.Slice(parents, func(a, b int) bool { return parents[a] < parents[b] })
		sum, err := NewSummary(sink, parents)
		if err != nil {
			return nil, err
		}
		sum.DroppedParents = dropped
		out[sink] = sum
	}
	for _, tr := range traces {
		//flowlint:ignore determinism -- each sink's summary only accumulates its own commutative counts; visit order cannot reach the result
		for sink, sum := range out {
			tSink, sinkActive := tr[sink]
			var set CharBits
			for j, p := range sum.Parents {
				tp, ok := tr[p]
				if !ok {
					continue
				}
				if sinkActive {
					if tp < tSink {
						set = set.With(j)
					}
				} else {
					set = set.With(j)
				}
			}
			sum.Observe(set, sinkActive)
		}
	}
	//flowlint:ignore determinism -- sortRows normalizes each summary independently; visit order cannot reach the result
	for _, sum := range out {
		sum.sortRows()
	}
	return out, nil
}

// TableI returns the paper's Table I example summary: sink k with
// incident nodes A, B, C (local indices 0, 1, 2) and rows
//
//	A B C  count leaks
//	1 1 0     5     1
//	0 1 1    50    15
//	1 0 1    10     2
func TableI() *Summary {
	s, err := NewSummary(3, []graph.NodeID{0, 1, 2})
	if err != nil {
		//flowlint:invariant unreachable: the fixed example table is valid by construction
		panic(err)
	}
	must := func(e error) {
		if e != nil {
			//flowlint:invariant unreachable: the fixed example table is valid by construction
			panic(e)
		}
	}
	must(s.AddRow(CharBits(0b011), 5, 1))
	must(s.AddRow(CharBits(0b110), 50, 15))
	must(s.AddRow(CharBits(0b101), 10, 2))
	return s
}

// TableII returns the paper's Table II example, whose likelihood surface
// is multimodal (the Appendix's EM-vs-Bayes illustration):
//
//	A B C  count leaks
//	1 1 0   100    50
//	0 1 1   100    50
//	1 1 1   100    75
func TableII() *Summary {
	s, err := NewSummary(3, []graph.NodeID{0, 1, 2})
	if err != nil {
		//flowlint:invariant unreachable: the fixed example table is valid by construction
		panic(err)
	}
	must := func(e error) {
		if e != nil {
			//flowlint:invariant unreachable: the fixed example table is valid by construction
			panic(e)
		}
	}
	must(s.AddRow(CharBits(0b011), 100, 50))
	must(s.AddRow(CharBits(0b110), 100, 50))
	must(s.AddRow(CharBits(0b111), 100, 75))
	return s
}
