package unattrib

import (
	"bytes"
	"strings"
	"testing"

	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

func TestSummariesRoundTrip(t *testing.T) {
	r := rng.New(500)
	g := graph.Random(r, 10, 30)
	var traces []Trace
	for o := 0; o < 200; o++ {
		tr := Trace{}
		for v := 0; v < 10; v++ {
			if r.Bernoulli(0.3) {
				tr[graph.NodeID(v)] = r.Intn(5)
			}
		}
		if len(tr) > 0 {
			traces = append(traces, tr)
		}
	}
	orig, err := BuildSummaries(g, traces)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSummaries(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSummaries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("sinks: %d vs %d", len(got), len(orig))
	}
	for sink, o := range orig {
		g2 := got[sink]
		if g2 == nil {
			t.Fatalf("missing sink %d", sink)
		}
		if len(g2.Parents) != len(o.Parents) || len(g2.Rows) != len(o.Rows) {
			t.Fatalf("sink %d shape changed", sink)
		}
		for i := range o.Rows {
			if g2.Rows[i] != o.Rows[i] {
				t.Fatalf("sink %d row %d: %+v vs %+v", sink, i, g2.Rows[i], o.Rows[i])
			}
		}
		// The likelihood — the thing that matters — must be identical.
		p := make([]float64, len(o.Parents))
		for j := range p {
			p[j] = r.Uniform(0.05, 0.95)
		}
		if LogLikelihood(o, p) != LogLikelihood(g2, p) {
			t.Fatalf("sink %d likelihood changed", sink)
		}
	}
}

func TestReadSummariesRejectsInvalid(t *testing.T) {
	for _, s := range []string{
		`[{"sink":1,"parents":[0],"rows":[{"set":0,"count":1,"leaks":0}]}]`,       // empty set
		`[{"sink":1,"parents":[0],"rows":[{"set":1,"count":1,"leaks":5}]}]`,       // leaks>count
		`[{"sink":1,"parents":[0],"rows":[{"set":4,"count":1,"leaks":0}]}]`,       // out-of-range parent
		`[{"sink":1,"parents":[0],"rows":[]},{"sink":1,"parents":[0],"rows":[]}]`, // duplicate sink
		`not json`,
	} {
		if _, err := ReadSummaries(strings.NewReader(s)); err == nil {
			t.Errorf("accepted %s", s)
		}
	}
}
