package unattrib

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"infoflow/internal/graph"
	"infoflow/internal/jsonx"
)

// jsonSummary is the wire form of one sink's evidence summary.
type jsonSummary struct {
	Sink           graph.NodeID   `json:"sink"`
	Parents        []graph.NodeID `json:"parents"`
	DroppedParents int            `json:"dropped_parents,omitempty"`
	Rows           []jsonRow      `json:"rows"`
}

type jsonRow struct {
	Set   uint64 `json:"set"`
	Count int    `json:"count"`
	Leaks int    `json:"leaks"`
}

// WriteSummaries serialises a per-sink summary map as JSON (sorted by
// sink for determinism).
func WriteSummaries(w io.Writer, sums map[graph.NodeID]*Summary) error {
	sinks := make([]graph.NodeID, 0, len(sums))
	//flowlint:ignore determinism -- key collection is sorted on the next line, so map order never reaches the serialized bytes
	for sink := range sums {
		sinks = append(sinks, sink)
	}
	sort.Slice(sinks, func(i, j int) bool { return sinks[i] < sinks[j] })
	out := make([]jsonSummary, 0, len(sinks))
	for _, sink := range sinks {
		s := sums[sink]
		js := jsonSummary{Sink: s.Sink, Parents: s.Parents, DroppedParents: s.DroppedParents}
		for _, row := range s.Rows {
			js.Rows = append(js.Rows, jsonRow{Set: uint64(row.Set), Count: row.Count, Leaks: row.Leaks})
		}
		out = append(out, js)
	}
	return json.NewEncoder(w).Encode(out)
}

// ReadSummaries deserialises summaries written by WriteSummaries,
// revalidating every row.
func ReadSummaries(r io.Reader) (map[graph.NodeID]*Summary, error) {
	var in []jsonSummary
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, jsonx.Wrap("unattrib: decode summaries", err)
	}
	out := make(map[graph.NodeID]*Summary, len(in))
	for _, js := range in {
		if _, dup := out[js.Sink]; dup {
			return nil, fmt.Errorf("unattrib: duplicate sink %d", js.Sink)
		}
		s, err := NewSummary(js.Sink, js.Parents)
		if err != nil {
			return nil, err
		}
		s.DroppedParents = js.DroppedParents
		for _, row := range js.Rows {
			if err := s.AddRow(CharBits(row.Set), row.Count, row.Leaks); err != nil {
				return nil, fmt.Errorf("unattrib: sink %d: %w", js.Sink, err)
			}
		}
		s.sortRows()
		out[js.Sink] = s
	}
	return out, nil
}
