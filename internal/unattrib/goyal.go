package unattrib

// Goyal estimates edge probabilities by the credit rule of Goyal et al.
// (§V-B): every observation in which the sink became active distributes
// one unit of credit equally among the parents active before it
// (credit = k_o / |J_o|), and each edge's probability is its total credit
// divided by the number of observations in which its parent was active.
//
// The paper characterises this as "only a rule of thumb" that biases
// probabilities toward the mean of all edges incident on the sink; the
// Figure 7 experiments quantify that bias. The result is indexed by the
// summary's local parent order.
func Goyal(s *Summary) []float64 {
	n := len(s.Parents)
	credit := make([]float64, n)
	activeObs := make([]float64, n) // |{o : j in J_o}|
	for _, r := range s.Rows {
		size := float64(r.Set.Size())
		for j := 0; j < n; j++ {
			if !r.Set.Has(j) {
				continue
			}
			activeObs[j] += float64(r.Count)
			credit[j] += float64(r.Leaks) / size
		}
	}
	p := make([]float64, n)
	for j := range p {
		if activeObs[j] > 0 {
			p[j] = credit[j] / activeObs[j]
		}
	}
	return p
}
