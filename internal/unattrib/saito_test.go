package unattrib

import (
	"math"
	"testing"

	"infoflow/internal/dist"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

func TestGoyalTableI(t *testing.T) {
	// Table I: rows {A,B}:5/1, {B,C}:50/15, {A,C}:10/2.
	// credit_A = 1/2 + 2/2 = 1.5; active_A = 15 -> p_A = 0.1
	// credit_B = 1/2 + 15/2 = 8; active_B = 55 -> p_B = 8/55
	// credit_C = 15/2 + 2/2 = 8.5; active_C = 60 -> p_C = 8.5/60
	p := Goyal(TableI())
	want := []float64{0.1, 8.0 / 55, 8.5 / 60}
	for j := range want {
		if math.Abs(p[j]-want[j]) > 1e-12 {
			t.Errorf("Goyal[%d] = %v want %v", j, p[j], want[j])
		}
	}
}

func TestGoyalUnambiguousExact(t *testing.T) {
	// Purely unambiguous evidence: Goyal reduces to the empirical rate.
	s, _ := NewSummary(9, []graph.NodeID{0})
	s.AddRow(0b1, 40, 10)
	p := Goyal(s)
	if math.Abs(p[0]-0.25) > 1e-12 {
		t.Errorf("p = %v want 0.25", p[0])
	}
}

func TestGoyalBiasTowardMean(t *testing.T) {
	// Skewed truth {0.9, 0.1} with mostly joint observations: Goyal
	// splits credit equally and pulls both edges toward the middle.
	r := rng.New(30)
	truth := []float64{0.9, 0.1}
	s, _ := NewSummary(9, []graph.NodeID{0, 1})
	for o := 0; o < 5000; o++ {
		set := CharBits(0b11)
		s.Observe(set, r.Bernoulli(jointProb(set, truth)))
	}
	p := Goyal(s)
	// Equal credit forces p[0] == p[1] here; both near (1-0.09)/2-ish.
	if math.Abs(p[0]-p[1]) > 1e-9 {
		t.Errorf("joint-only evidence should give equal credit: %v", p)
	}
	if p[0] > 0.6 {
		t.Errorf("Goyal failed to show its mean bias: %v", p)
	}
}

func TestSaitoRelaxedUnambiguousMatchesMLE(t *testing.T) {
	// With only unambiguous rows EM converges to leaks/count in one step.
	s, _ := NewSummary(9, []graph.NodeID{0, 1})
	s.AddRow(0b01, 50, 20)
	s.AddRow(0b10, 80, 60)
	k, iters, err := SaitoRelaxed(s, []float64{0.5, 0.5}, DefaultSaitoOptions())
	if err != nil {
		t.Fatal(err)
	}
	if iters > 5 {
		t.Errorf("iterations = %d", iters)
	}
	if math.Abs(k[0]-0.4) > 1e-9 || math.Abs(k[1]-0.75) > 1e-9 {
		t.Errorf("k = %v", k)
	}
}

func TestSaitoRelaxedRecoversTruth(t *testing.T) {
	r := rng.New(31)
	truth := []float64{0.7, 0.3, 0.5}
	s := synthSummary(r, truth, 8000)
	k, _, err := SaitoRelaxed(s, []float64{0.5, 0.5, 0.5}, DefaultSaitoOptions())
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range truth {
		if math.Abs(k[j]-want) > 0.08 {
			t.Errorf("edge %d: EM %v, truth %v", j, k[j], want)
		}
	}
}

func TestSaitoRelaxedIncreasesLikelihood(t *testing.T) {
	// EM's defining property: the likelihood never decreases.
	r := rng.New(32)
	truth := []float64{0.6, 0.4}
	s := synthSummary(r, truth, 500)
	k := []float64{0.3, 0.8}
	prev := LogLikelihood(s, k)
	for step := 0; step < 30; step++ {
		next, _, err := SaitoRelaxed(s, k, SaitoOptions{MaxIter: 1, Tol: 0})
		if err != nil {
			t.Fatal(err)
		}
		ll := LogLikelihood(s, next)
		if ll < prev-1e-9 {
			t.Fatalf("step %d: likelihood decreased %v -> %v", step, prev, ll)
		}
		prev = ll
		copy(k, next)
	}
}

func TestSaitoRelaxedValidation(t *testing.T) {
	s := TableI()
	if _, _, err := SaitoRelaxed(s, []float64{0.5}, DefaultSaitoOptions()); err == nil {
		t.Error("wrong init length accepted")
	}
	if _, _, err := SaitoRelaxed(s, []float64{0, 0.5, 0.5}, DefaultSaitoOptions()); err == nil {
		t.Error("boundary init accepted")
	}
	if _, _, err := SaitoRelaxed(s, []float64{0.5, 0.5, 0.5}, SaitoOptions{}); err == nil {
		t.Error("zero MaxIter accepted")
	}
}

// TestSaitoRestartsOnTableII reproduces the Figure 11 setup: EM restarts
// with the paper's fixed iteration budget scatter widely, because the
// Table II likelihood has a long ridge EM crawls along slowly.
//
// Reproduction finding: Table II as printed has a UNIQUE maximum-
// likelihood solution (A, B, C) = (0.5, 0, 0.5) — every restart reaches
// it given enough iterations — so the Figure 11(a) scatter is
// non-convergence at the fixed 200-iteration budget rather than genuinely
// distinct local maxima. The spread collapses as the budget grows, which
// this test asserts, along with convergence to the analytic solution.
func TestSaitoRestartsOnTableII(t *testing.T) {
	r := rng.New(33)
	spread := func(iters, restarts int) float64 {
		sols, err := SaitoRelaxedRestarts(TableII(), restarts,
			SaitoOptions{MaxIter: iters, Tol: 1e-12}, r)
		if err != nil {
			t.Fatal(err)
		}
		width := 0.0
		for j := 0; j < 3; j++ {
			lo, hi := 1.0, 0.0
			for _, k := range sols {
				if k[j] < lo {
					lo = k[j]
				}
				if k[j] > hi {
					hi = k[j]
				}
			}
			if hi-lo > width {
				width = hi - lo
			}
		}
		return width
	}
	atBudget := spread(50, 200) // scattered, as in Fig. 11(a)
	converged := spread(20000, 50)
	if atBudget < 0.1 {
		t.Errorf("budgeted EM spread = %v, expected wide scatter", atBudget)
	}
	if converged > 0.01 {
		t.Errorf("fully converged EM spread = %v, expected collapse", converged)
	}
	// The unique MLE.
	sols, err := SaitoRelaxedRestarts(TableII(), 1, SaitoOptions{MaxIter: 50000, Tol: 1e-13}, r)
	if err != nil {
		t.Fatal(err)
	}
	k := sols[0]
	if math.Abs(k[0]-0.5) > 0.01 || k[1] > 0.01 || math.Abs(k[2]-0.5) > 0.01 {
		t.Errorf("converged solution = %v, want (0.5, 0, 0.5)", k)
	}
}

func TestSaitoOriginalSimpleChain(t *testing.T) {
	// Graph 0->2, 1->2. Traces crafted so parent 0 is implicated twice
	// (once leaking at t+1) and parent 1 has one failed trial.
	g := graph.New(3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	parents := g.Parents(2)
	traces := []Trace{
		{0: 0, 2: 1}, // 0 active at t=0, sink at t=1: positive, S={0}
		{0: 0},       // 0 active, sink never: failed trial for 0
		{1: 0},       // 1 active, sink never: failed trial for 1
	}
	k, _, err := SaitoOriginal(g, 2, parents, traces, []float64{0.5, 0.5}, DefaultSaitoOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Edge 0: one success, one failure -> 0.5. Edge 1: one failure -> 0.
	if math.Abs(k[0]-0.5) > 1e-9 {
		t.Errorf("k0 = %v", k[0])
	}
	if k[1] != 0 {
		t.Errorf("k1 = %v", k[1])
	}
}

func TestSaitoOriginalIgnoresLateParents(t *testing.T) {
	// Parent active two steps before the sink: under the original
	// discrete-time assumption it is a failed trial, not a cause.
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	traces := []Trace{
		{0: 0, 1: 2}, // gap of 2: trial failed at t=1; activation unexplained
	}
	k, _, err := SaitoOriginal(g, 1, g.Parents(1), traces, []float64{0.5}, DefaultSaitoOptions())
	if err != nil {
		t.Fatal(err)
	}
	if k[0] != 0 {
		t.Errorf("k = %v; late parent should not receive credit", k[0])
	}
}

func TestSaitoOriginalVsRelaxedOnRoundData(t *testing.T) {
	// When cascades really do propagate one round per step (as ICM
	// cascade rounds do), the two estimators see compatible evidence and
	// should land near the truth and near each other.
	r := rng.New(34)
	truth := []float64{0.6, 0.35}
	g := graph.New(3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	var traces []Trace
	for o := 0; o < 6000; o++ {
		tr := Trace{}
		leak := false
		if r.Bernoulli(0.7) {
			tr[0] = 0
			if r.Bernoulli(truth[0]) {
				leak = true
			}
		}
		if r.Bernoulli(0.7) {
			tr[1] = 0
			if r.Bernoulli(truth[1]) {
				leak = true
			}
		}
		if leak {
			tr[2] = 1
		}
		if len(tr) > 0 {
			traces = append(traces, tr)
		}
	}
	orig, _, err := SaitoOriginal(g, 2, g.Parents(2), traces, []float64{0.5, 0.5}, DefaultSaitoOptions())
	if err != nil {
		t.Fatal(err)
	}
	sums, err := BuildSummaries(g, traces)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, _, err := SaitoRelaxed(sums[2], []float64{0.5, 0.5}, DefaultSaitoOptions())
	if err != nil {
		t.Fatal(err)
	}
	for j := range truth {
		if math.Abs(orig[j]-truth[j]) > 0.08 {
			t.Errorf("original[%d] = %v truth %v", j, orig[j], truth[j])
		}
		if math.Abs(relaxed[j]-truth[j]) > 0.08 {
			t.Errorf("relaxed[%d] = %v truth %v", j, relaxed[j], truth[j])
		}
	}
}

func TestFilteredMatchesUnambiguousCounting(t *testing.T) {
	s, _ := NewSummary(9, []graph.NodeID{0, 1})
	s.AddRow(0b01, 10, 4)
	s.AddRow(0b11, 1000, 900) // ambiguous flood: must be ignored
	betas := Filtered(s)
	if betas[0] != (dist.Beta{Alpha: 5, Beta: 7}) {
		t.Errorf("filtered[0] = %v", betas[0])
	}
	if betas[1] != dist.Uniform() {
		t.Errorf("filtered[1] = %v", betas[1])
	}
	means := FilteredMeans(s)
	if math.Abs(means[0]-5.0/12) > 1e-12 || means[1] != 0.5 {
		t.Errorf("means = %v", means)
	}
}
