package unattrib

import (
	"fmt"
	"math"

	"infoflow/internal/dist"
	"infoflow/internal/rng"
)

// BayesOptions configures the joint-Bayes MCMC sampler.
type BayesOptions struct {
	BurnIn  int     // discarded initial steps (whole-vector sweeps)
	Thin    int     // sweeps between retained samples
	Samples int     // number of retained posterior samples
	Step    float64 // random-walk proposal width on each coordinate
}

// DefaultBayesOptions returns settings that mix well on the paper's
// per-sink problems (a handful of incident edges).
func DefaultBayesOptions() BayesOptions {
	return BayesOptions{BurnIn: 500, Thin: 5, Samples: 2000, Step: 0.08}
}

func (o BayesOptions) validate() error {
	if o.BurnIn < 0 || o.Thin <= 0 || o.Samples <= 0 || o.Step <= 0 {
		return fmt.Errorf("unattrib: invalid bayes options %+v", o)
	}
	return nil
}

// Posterior holds the joint-Bayes estimate for one sink: per-edge
// posterior samples plus summary statistics. Samples[i][j] is the i-th
// retained sample of local parent j's edge probability.
type Posterior struct {
	Summary *Summary
	Samples [][]float64
	// Mean and StdDev are per local parent index.
	Mean   []float64
	StdDev []float64
	// AcceptanceRate of the coordinate proposals, for diagnostics.
	AcceptanceRate float64
}

// Betas returns per-edge beta distributions moment-matched to the
// posterior samples — the edge-marginal approximation the paper stores
// for its Figure 8-10 experiments.
func (p *Posterior) Betas() []dist.Beta {
	out := make([]dist.Beta, len(p.Mean))
	for j := range out {
		v := p.StdDev[j] * p.StdDev[j]
		out[j] = dist.FitBetaMoments(p.Mean[j], v)
	}
	return out
}

// Normals returns per-edge (mean, stddev) gaussian approximations, used
// by the Figure 10 edge-uncertainty experiment.
func (p *Posterior) Normals() []dist.Normal {
	out := make([]dist.Normal, len(p.Mean))
	for j := range out {
		out[j] = dist.NewNormal(p.Mean[j], p.StdDev[j])
	}
	return out
}

// Correlation returns the posterior correlation matrix of the edge
// probabilities — the joint structure the paper highlights as something
// point estimators cannot provide ("can even indicate if some edges are
// positively or negatively correlated"). Entry [i][j] is the Pearson
// correlation of parents i and j across the posterior samples; edges
// with zero posterior variance report 0 off-diagonal.
func (p *Posterior) Correlation() [][]float64 {
	nP := len(p.Mean)
	out := make([][]float64, nP)
	for i := range out {
		out[i] = make([]float64, nP)
		out[i][i] = 1
	}
	if len(p.Samples) < 2 {
		return out
	}
	n := float64(len(p.Samples))
	for i := 0; i < nP; i++ {
		for j := i + 1; j < nP; j++ {
			cov := 0.0
			for _, row := range p.Samples {
				cov += (row[i] - p.Mean[i]) * (row[j] - p.Mean[j])
			}
			cov /= n
			denom := p.StdDev[i] * p.StdDev[j]
			if denom > 0 {
				c := cov / denom
				out[i][j], out[j][i] = c, c
			}
		}
	}
	return out
}

// UnambiguousPriors derives the per-edge beta priors of §V-B: counts from
// the unambiguous characteristics only (a single active incident node),
// defaulting to the uniform Beta(1,1) where no such evidence exists.
func UnambiguousPriors(s *Summary) []dist.Beta {
	return UnambiguousPriorsWith(s, dist.Uniform())
}

// UnambiguousPriorsWith is UnambiguousPriors on top of an arbitrary base
// prior. The paper notes its model "uses an informed prior ... to
// restrict edge probabilities when accurate prior information is given
// or inferred from the data"; passing e.g. a beta matched to the pooled
// network-wide activation rate realises that on sparse evidence.
func UnambiguousPriorsWith(s *Summary, base dist.Beta) []dist.Beta {
	priors := make([]dist.Beta, len(s.Parents))
	for j := range priors {
		priors[j] = base
	}
	for _, r := range s.Rows {
		if j, ok := r.Set.Single(); ok {
			priors[j] = priors[j].ObserveCounts(r.Leaks, r.Count-r.Leaks)
		}
	}
	return priors
}

// LogLikelihood evaluates the summary's log likelihood under edge
// probabilities p (Equation (9) up to the constant binomial
// coefficients): for each characteristic J, L_J successes out of n_J
// trials of the joint probability p_J = 1 - prod_{j in J}(1 - p_j).
func LogLikelihood(s *Summary, p []float64) float64 {
	ll := 0.0
	for _, r := range s.Rows {
		pJ := jointProb(r.Set, p)
		if r.Leaks > 0 {
			if pJ <= 0 {
				return math.Inf(-1)
			}
			ll += float64(r.Leaks) * math.Log(pJ)
		}
		if r.Count-r.Leaks > 0 {
			if pJ >= 1 {
				return math.Inf(-1)
			}
			ll += float64(r.Count-r.Leaks) * math.Log1p(-pJ)
		}
	}
	return ll
}

// jointProb is p_J = 1 - prod_{j in J}(1 - p_j).
func jointProb(set CharBits, p []float64) float64 {
	surv := 1.0
	for j := 0; j < len(p); j++ {
		if set.Has(j) {
			surv *= 1 - p[j]
		}
	}
	return 1 - surv
}

// logPosterior is the unnormalised log posterior: beta log-priors plus
// the binomial log likelihood.
func logPosterior(s *Summary, priors []dist.Beta, p []float64) float64 {
	lp := LogLikelihood(s, p)
	if math.IsInf(lp, -1) {
		return lp
	}
	for j, prior := range priors {
		lp += prior.LogPDF(p[j])
	}
	return lp
}

// JointBayes estimates the joint posterior over all edge probabilities
// incident on the summary's sink by Metropolis-Hastings: a random-walk
// proposal on one uniformly chosen coordinate per step, a full sweep
// being len(parents) steps. This replaces the paper's ~50 lines of PyMC.
func JointBayes(s *Summary, opts BayesOptions, r *rng.RNG) (*Posterior, error) {
	return JointBayesWithPrior(s, dist.Uniform(), opts, r)
}

// JointBayesWithPrior is JointBayes with an informed base prior applied
// to every incident edge before the unambiguous counts (see
// UnambiguousPriorsWith).
func JointBayesWithPrior(s *Summary, base dist.Beta, opts BayesOptions, r *rng.RNG) (*Posterior, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	nP := len(s.Parents)
	if nP == 0 {
		return nil, fmt.Errorf("unattrib: summary for sink %d has no parents", s.Sink)
	}
	priors := UnambiguousPriorsWith(s, base)
	// Start at the prior means: a positive-density point.
	p := make([]float64, nP)
	for j := range p {
		p[j] = priors[j].Mean()
	}
	logPost := logPosterior(s, priors, p)
	var proposed, accepted int64
	step := func() {
		j := r.Intn(nP)
		old := p[j]
		p[j] = old + opts.Step*r.Norm()
		proposed++
		if p[j] <= 0 || p[j] >= 1 {
			p[j] = old // out of support: reject
			return
		}
		cand := logPosterior(s, priors, p)
		if cand >= logPost || r.Float64() < math.Exp(cand-logPost) {
			logPost = cand
			accepted++
			return
		}
		p[j] = old
	}
	sweep := func() {
		for i := 0; i < nP; i++ {
			step()
		}
	}
	for i := 0; i < opts.BurnIn; i++ {
		sweep()
	}
	post := &Posterior{
		Summary: s,
		Samples: make([][]float64, 0, opts.Samples),
	}
	sums := make([]float64, nP)
	sqs := make([]float64, nP)
	for n := 0; n < opts.Samples; n++ {
		for i := 0; i < opts.Thin; i++ {
			sweep()
		}
		row := make([]float64, nP)
		copy(row, p)
		post.Samples = append(post.Samples, row)
		for j, v := range row {
			sums[j] += v
			sqs[j] += v * v
		}
	}
	post.Mean = make([]float64, nP)
	post.StdDev = make([]float64, nP)
	nf := float64(opts.Samples)
	for j := range sums {
		post.Mean[j] = sums[j] / nf
		v := sqs[j]/nf - post.Mean[j]*post.Mean[j]
		if v < 0 {
			v = 0
		}
		post.StdDev[j] = math.Sqrt(v)
	}
	post.AcceptanceRate = float64(accepted) / float64(proposed)
	return post, nil
}
