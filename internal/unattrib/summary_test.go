package unattrib

import (
	"testing"
	"testing/quick"

	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

func TestCharBits(t *testing.T) {
	c := CharBits(0).With(0).With(3)
	if !c.Has(0) || !c.Has(3) || c.Has(1) {
		t.Fatalf("bits wrong: %b", c)
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d", c.Size())
	}
	if _, ok := c.Single(); ok {
		t.Fatal("two-bit set reported single")
	}
	j, ok := CharBits(0).With(5).Single()
	if !ok || j != 5 {
		t.Fatalf("single = (%d, %v)", j, ok)
	}
}

func TestObserveAggregates(t *testing.T) {
	s, err := NewSummary(9, []graph.NodeID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(CharBits(0b01), true)
	s.Observe(CharBits(0b01), false)
	s.Observe(CharBits(0b01), true)
	s.Observe(CharBits(0b10), false)
	s.Observe(CharBits(0), true) // empty: ignored
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %+v", s.Rows)
	}
	if s.NumObservations() != 4 {
		t.Fatalf("observations = %d", s.NumObservations())
	}
	for _, r := range s.Rows {
		switch r.Set {
		case 0b01:
			if r.Count != 3 || r.Leaks != 2 {
				t.Fatalf("row 01 = %+v", r)
			}
		case 0b10:
			if r.Count != 1 || r.Leaks != 0 {
				t.Fatalf("row 10 = %+v", r)
			}
		default:
			t.Fatalf("unexpected row %+v", r)
		}
	}
}

func TestAddRowValidation(t *testing.T) {
	s, _ := NewSummary(9, []graph.NodeID{1, 2})
	if err := s.AddRow(0, 1, 0); err == nil {
		t.Error("empty characteristic accepted")
	}
	if err := s.AddRow(0b01, 1, 2); err == nil {
		t.Error("leaks > count accepted")
	}
	if err := s.AddRow(0b100, 1, 0); err == nil {
		t.Error("out-of-range parent accepted")
	}
	if err := s.AddRow(0b01, 2, 1); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.AddRow(0b01, 3, 1); err != nil {
		t.Errorf("merge rejected: %v", err)
	}
	if s.Rows[0].Count != 5 || s.Rows[0].Leaks != 2 {
		t.Fatalf("merged row = %+v", s.Rows[0])
	}
}

func TestNewSummaryTooManyParents(t *testing.T) {
	parents := make([]graph.NodeID, MaxParents+1)
	for i := range parents {
		parents[i] = graph.NodeID(i)
	}
	if _, err := NewSummary(99, parents); err == nil {
		t.Fatal("oversized parent set accepted")
	}
}

func TestBuildSummariesFromTraces(t *testing.T) {
	// Graph: A(0)->K(2), B(1)->K(2).
	g := graph.New(3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	traces := []Trace{
		{0: 0, 2: 1},       // A then K leaks: characteristic {A}, leak
		{0: 0, 1: 0, 2: 1}, // A,B then K: {A,B}, leak
		{0: 0},             // A active, K never: {A}, no leak
		{2: 0},             // K active with no prior parent: ignored
		{1: 5, 2: 3},       // B active AFTER K: K active, no parent before it: ignored
	}
	sums, err := BuildSummaries(g, traces)
	if err != nil {
		t.Fatal(err)
	}
	s := sums[2]
	if s == nil {
		t.Fatal("no summary for sink 2")
	}
	if len(s.Parents) != 2 || s.Parents[0] != 0 || s.Parents[1] != 1 {
		t.Fatalf("parents = %v", s.Parents)
	}
	if s.NumObservations() != 3 {
		t.Fatalf("observations = %d; rows %+v", s.NumObservations(), s.Rows)
	}
	byBits := map[CharBits]Row{}
	for _, r := range s.Rows {
		byBits[r.Set] = r
	}
	if r := byBits[0b01]; r.Count != 2 || r.Leaks != 1 {
		t.Fatalf("{A} row = %+v", r)
	}
	if r := byBits[0b11]; r.Count != 1 || r.Leaks != 1 {
		t.Fatalf("{A,B} row = %+v", r)
	}
}

func TestBuildSummariesSkipsSourceOnlyNodes(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	sums, err := BuildSummaries(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sums[0]; ok {
		t.Fatal("summary created for node with no in-edges")
	}
	if _, ok := sums[1]; !ok {
		t.Fatal("missing summary for sink")
	}
}

func TestTableExamples(t *testing.T) {
	t1 := TableI()
	if t1.NumObservations() != 65 {
		t.Fatalf("Table I observations = %d", t1.NumObservations())
	}
	t2 := TableII()
	if t2.NumObservations() != 300 {
		t.Fatalf("Table II observations = %d", t2.NumObservations())
	}
	totalLeaks := 0
	for _, r := range t2.Rows {
		totalLeaks += r.Leaks
	}
	if totalLeaks != 175 {
		t.Fatalf("Table II leaks = %d", totalLeaks)
	}
}

func TestSummaryCountsConsistentProperty(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := rng.New(uint64(seed))
		s, _ := NewSummary(0, []graph.NodeID{1, 2, 3})
		obs := r.Intn(50)
		leaks := 0
		for i := 0; i < obs; i++ {
			set := CharBits(r.Intn(7) + 1)
			leaked := r.Bernoulli(0.5)
			if leaked {
				leaks++
			}
			s.Observe(set, leaked)
		}
		gotLeaks := 0
		for _, row := range s.Rows {
			if row.Leaks > row.Count {
				return false
			}
			gotLeaks += row.Leaks
		}
		return s.NumObservations() == obs && gotLeaks == leaks
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParentIndex(t *testing.T) {
	s, _ := NewSummary(9, []graph.NodeID{4, 7})
	if j, ok := s.ParentIndex(7); !ok || j != 1 {
		t.Fatalf("index = (%d, %v)", j, ok)
	}
	if _, ok := s.ParentIndex(5); ok {
		t.Fatal("missing parent found")
	}
}
