package unattrib

import (
	"math"
	"testing"

	"infoflow/internal/dist"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

// synthSummary generates a summary for one sink with the given true edge
// probabilities: each observation activates a random non-empty parent
// subset and the sink leaks with probability 1 - prod(1 - p_j) over that
// subset.
func synthSummary(r *rng.RNG, truth []float64, objects int) *Summary {
	parents := make([]graph.NodeID, len(truth))
	for j := range parents {
		parents[j] = graph.NodeID(j)
	}
	s, err := NewSummary(graph.NodeID(len(truth)), parents)
	if err != nil {
		panic(err)
	}
	for o := 0; o < objects; o++ {
		var set CharBits
		for set == 0 {
			for j := range truth {
				if r.Bernoulli(0.6) {
					set = set.With(j)
				}
			}
		}
		s.Observe(set, r.Bernoulli(jointProb(set, truth)))
	}
	s.sortRows()
	return s
}

func TestUnambiguousPriors(t *testing.T) {
	s, _ := NewSummary(9, []graph.NodeID{0, 1})
	s.AddRow(0b01, 10, 4)  // unambiguous for parent 0
	s.AddRow(0b11, 50, 25) // ambiguous: ignored by priors
	priors := UnambiguousPriors(s)
	if priors[0] != (dist.Beta{Alpha: 5, Beta: 7}) {
		t.Errorf("prior 0 = %v", priors[0])
	}
	if priors[1] != dist.Uniform() {
		t.Errorf("prior 1 = %v", priors[1])
	}
}

func TestLogLikelihoodValues(t *testing.T) {
	s, _ := NewSummary(9, []graph.NodeID{0, 1})
	s.AddRow(0b01, 2, 1)
	p := []float64{0.5, 0.9}
	// pJ for {0} is 0.5: ll = 1*log(.5) + 1*log(.5).
	want := math.Log(0.5) * 2
	if got := LogLikelihood(s, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("ll = %v want %v", got, want)
	}
	// Impossible evidence: leak with pJ = 0.
	s2, _ := NewSummary(9, []graph.NodeID{0})
	s2.AddRow(0b1, 1, 1)
	if got := LogLikelihood(s2, []float64{0}); !math.IsInf(got, -1) {
		t.Errorf("impossible ll = %v", got)
	}
	// Non-leak with pJ = 1.
	s3, _ := NewSummary(9, []graph.NodeID{0})
	s3.AddRow(0b1, 1, 0)
	if got := LogLikelihood(s3, []float64{1}); !math.IsInf(got, -1) {
		t.Errorf("impossible ll = %v", got)
	}
}

func TestJointBayesRecoverUnambiguous(t *testing.T) {
	// With only unambiguous evidence, the posterior must match the
	// analytic beta posterior (prior x likelihood of the same counts —
	// the paper's construction double-counts unambiguous rows, giving
	// Beta(1+2s, 1+2f)).
	r := rng.New(20)
	s, _ := NewSummary(9, []graph.NodeID{0})
	s.AddRow(0b1, 100, 30)
	post, err := JointBayes(s, DefaultBayesOptions(), r)
	if err != nil {
		t.Fatal(err)
	}
	analytic := dist.NewBeta(1+60, 1+140)
	if math.Abs(post.Mean[0]-analytic.Mean()) > 0.02 {
		t.Errorf("posterior mean %v vs analytic %v", post.Mean[0], analytic.Mean())
	}
	if math.Abs(post.StdDev[0]-analytic.StdDev()) > 0.01 {
		t.Errorf("posterior sd %v vs analytic %v", post.StdDev[0], analytic.StdDev())
	}
}

func TestJointBayesRecoversTruth(t *testing.T) {
	r := rng.New(21)
	truth := []float64{0.8, 0.2, 0.6}
	s := synthSummary(r, truth, 4000)
	post, err := JointBayes(s, DefaultBayesOptions(), r)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range truth {
		if math.Abs(post.Mean[j]-want) > 0.08 {
			t.Errorf("edge %d: posterior mean %v, truth %v", j, post.Mean[j], want)
		}
	}
	if post.AcceptanceRate <= 0 || post.AcceptanceRate >= 1 {
		t.Errorf("acceptance rate = %v", post.AcceptanceRate)
	}
	if len(post.Samples) != DefaultBayesOptions().Samples {
		t.Errorf("samples = %d", len(post.Samples))
	}
}

func TestJointBayesUncertaintyShrinks(t *testing.T) {
	r := rng.New(22)
	truth := []float64{0.7, 0.3}
	small := synthSummary(r, truth, 30)
	large := synthSummary(r, truth, 3000)
	postSmall, err := JointBayes(small, DefaultBayesOptions(), r)
	if err != nil {
		t.Fatal(err)
	}
	postLarge, err := JointBayes(large, DefaultBayesOptions(), r)
	if err != nil {
		t.Fatal(err)
	}
	for j := range truth {
		if postLarge.StdDev[j] >= postSmall.StdDev[j] {
			t.Errorf("edge %d: sd did not shrink (%v -> %v)",
				j, postSmall.StdDev[j], postLarge.StdDev[j])
		}
	}
}

func TestJointBayesValidation(t *testing.T) {
	r := rng.New(23)
	s, _ := NewSummary(9, []graph.NodeID{0})
	s.AddRow(0b1, 5, 2)
	bad := DefaultBayesOptions()
	bad.Samples = 0
	if _, err := JointBayes(s, bad, r); err == nil {
		t.Error("bad options accepted")
	}
	empty, _ := NewSummary(9, nil)
	if _, err := JointBayes(empty, DefaultBayesOptions(), r); err == nil {
		t.Error("parentless summary accepted")
	}
}

func TestPosteriorBetasAndNormals(t *testing.T) {
	r := rng.New(24)
	s := synthSummary(r, []float64{0.5, 0.5}, 500)
	post, err := JointBayes(s, DefaultBayesOptions(), r)
	if err != nil {
		t.Fatal(err)
	}
	betas := post.Betas()
	normals := post.Normals()
	for j := range post.Mean {
		if math.Abs(betas[j].Mean()-post.Mean[j]) > 0.01 {
			t.Errorf("beta mean %v vs posterior mean %v", betas[j].Mean(), post.Mean[j])
		}
		if normals[j].Mu != post.Mean[j] || normals[j].Sigma != post.StdDev[j] {
			t.Errorf("normal approx mismatch at %d", j)
		}
	}
}

// TestJointBayesTableIIBimodal checks the Appendix claim: on Table II the
// posterior over (A, C) is spread across multiple modes, so the sample
// standard deviation is large compared to an unambiguous dataset of the
// same size.
func TestJointBayesTableIIBimodal(t *testing.T) {
	r := rng.New(25)
	opts := DefaultBayesOptions()
	opts.Samples = 4000
	post, err := JointBayes(TableII(), opts, r)
	if err != nil {
		t.Fatal(err)
	}
	// A and C are interchangeable in Table II's likelihood; their
	// posterior spread reflects the ridge between modes.
	if post.StdDev[0] < 0.05 {
		t.Errorf("A posterior sd = %v, expected broad/multimodal", post.StdDev[0])
	}
	if post.StdDev[2] < 0.05 {
		t.Errorf("C posterior sd = %v, expected broad/multimodal", post.StdDev[2])
	}
}

// TestPosteriorCorrelationTableII pins the paper's claim that the joint
// posterior can reveal edge correlations ("can even indicate if some
// edges are positively or negatively correlated"): in Table II, A and B
// must jointly explain the {A,B} row's 50% leak rate, so their posterior
// mass trades off (negative correlation), likewise B and C via the
// {B,C} row; A and C are symmetric twins that rise together whenever B
// falls (positive correlation). No point estimator expresses any of
// this.
func TestPosteriorCorrelationTableII(t *testing.T) {
	r := rng.New(26)
	opts := DefaultBayesOptions()
	opts.Samples = 4000
	post, err := JointBayes(TableII(), opts, r)
	if err != nil {
		t.Fatal(err)
	}
	corr := post.Correlation()
	if corr[0][0] != 1 || corr[2][2] != 1 {
		t.Fatalf("diagonal = %v, %v", corr[0][0], corr[2][2])
	}
	if corr[0][2] != corr[2][0] {
		t.Fatal("correlation matrix not symmetric")
	}
	if corr[0][1] > -0.3 {
		t.Errorf("corr(A, B) = %v, expected clearly negative", corr[0][1])
	}
	if corr[1][2] > -0.3 {
		t.Errorf("corr(B, C) = %v, expected clearly negative", corr[1][2])
	}
	if corr[0][2] < 0.2 {
		t.Errorf("corr(A, C) = %v, expected clearly positive", corr[0][2])
	}
}

// TestPosteriorCorrelationIndependentEdges: with purely unambiguous
// evidence the edges are a posteriori independent.
func TestPosteriorCorrelationIndependentEdges(t *testing.T) {
	r := rng.New(27)
	s, _ := NewSummary(9, []graph.NodeID{0, 1})
	s.AddRow(0b01, 200, 80)
	s.AddRow(0b10, 200, 50)
	opts := DefaultBayesOptions()
	opts.Samples = 4000
	post, err := JointBayes(s, opts, r)
	if err != nil {
		t.Fatal(err)
	}
	corr := post.Correlation()
	if math.Abs(corr[0][1]) > 0.1 {
		t.Errorf("independent edges correlate: %v", corr[0][1])
	}
}
