package unattrib

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

// TestSummaryIsSufficientStatistic is the §V-B sufficiency claim made
// executable: on random evidence, the summarised binomial likelihood
// equals the raw per-object Bernoulli likelihood exactly.
func TestSummaryIsSufficientStatistic(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := rng.New(uint64(seed))
		nParents := r.Intn(5) + 1
		g := graph.New(nParents + 1)
		sink := graph.NodeID(nParents)
		parents := make([]graph.NodeID, nParents)
		for j := 0; j < nParents; j++ {
			g.MustAddEdge(graph.NodeID(j), sink)
			parents[j] = graph.NodeID(j)
		}
		truth := make([]float64, nParents)
		for j := range truth {
			truth[j] = r.Float64()
		}
		var traces []Trace
		for o := 0; o < r.Intn(60)+1; o++ {
			tr := Trace{}
			leak := false
			for j := range truth {
				if r.Bernoulli(0.5) {
					tr[graph.NodeID(j)] = 0
					if r.Bernoulli(truth[j]) {
						leak = true
					}
				}
			}
			if leak {
				tr[sink] = 1
			}
			if len(tr) > 0 {
				traces = append(traces, tr)
			}
		}
		sums, err := BuildSummaries(g, traces)
		if err != nil {
			return false
		}
		// Evaluate at several probability vectors, not just the truth.
		// The summary restricts itself to ever-active parents, so its p
		// vector is the projection of the full one (inactive parents
		// contribute to neither likelihood).
		s := sums[sink]
		for trial := 0; trial < 5; trial++ {
			p := make([]float64, nParents)
			for j := range p {
				p[j] = r.Uniform(0.01, 0.99)
			}
			pSel := make([]float64, len(s.Parents))
			for i, parent := range s.Parents {
				pSel[i] = p[int(parent)]
			}
			fromSummary := LogLikelihood(s, pSel)
			fromTraces := LogLikelihoodTraces(sink, parents, traces, p)
			if math.Abs(fromSummary-fromTraces) > 1e-9*(1+math.Abs(fromTraces)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSummarySpeedup sanity-checks the computational claim behind the
// summary: with many duplicate observations, evaluating the summarised
// likelihood is substantially cheaper than the raw one.
func TestSummarySpeedup(t *testing.T) {
	r := rng.New(99)
	const nParents = 4
	g := graph.New(nParents + 1)
	sink := graph.NodeID(nParents)
	parents := make([]graph.NodeID, nParents)
	for j := 0; j < nParents; j++ {
		g.MustAddEdge(graph.NodeID(j), sink)
		parents[j] = graph.NodeID(j)
	}
	var traces []Trace
	for o := 0; o < 30000; o++ {
		tr := Trace{}
		for j := 0; j < nParents; j++ {
			if r.Bernoulli(0.5) {
				tr[graph.NodeID(j)] = 0
			}
		}
		if len(tr) > 0 && r.Bernoulli(0.3) {
			tr[sink] = 1
		}
		if len(tr) > 0 {
			traces = append(traces, tr)
		}
	}
	sums, err := BuildSummaries(g, traces)
	if err != nil {
		t.Fatal(err)
	}
	s := sums[sink]
	if len(s.Rows) >= 1<<nParents+1 {
		t.Fatalf("omega = %d", len(s.Rows))
	}
	p := []float64{0.2, 0.4, 0.6, 0.8}
	// Equality first.
	if a, b := LogLikelihood(s, p), LogLikelihoodTraces(sink, parents, traces, p); math.Abs(a-b) > 1e-6 {
		t.Fatalf("likelihoods differ: %v vs %v", a, b)
	}
	const reps = 200
	start := time.Now()
	for i := 0; i < reps; i++ {
		LogLikelihood(s, p)
	}
	summaryTime := time.Since(start)
	start = time.Now()
	for i := 0; i < reps; i++ {
		LogLikelihoodTraces(sink, parents, traces, p)
	}
	rawTime := time.Since(start)
	if summaryTime*10 > rawTime {
		t.Errorf("summary evaluation (%v) not clearly faster than raw (%v) on 30k duplicated objects",
			summaryTime, rawTime)
	}
}

func TestLogLikelihoodTracesEdgeCases(t *testing.T) {
	parents := []graph.NodeID{0}
	// Leak with zero-probability edge: impossible.
	traces := []Trace{{0: 0, 1: 1}}
	if v := LogLikelihoodTraces(1, parents, traces, []float64{0}); !math.IsInf(v, -1) {
		t.Errorf("impossible leak ll = %v", v)
	}
	// Non-leak with certain edge: impossible.
	traces = []Trace{{0: 0}}
	if v := LogLikelihoodTraces(1, parents, traces, []float64{1}); !math.IsInf(v, -1) {
		t.Errorf("impossible non-leak ll = %v", v)
	}
	// Parent active after the sink: no information.
	traces = []Trace{{0: 5, 1: 1}}
	if v := LogLikelihoodTraces(1, parents, traces, []float64{0.5}); v != 0 {
		t.Errorf("late parent ll = %v, want 0", v)
	}
	// No traces at all.
	if v := LogLikelihoodTraces(1, parents, nil, []float64{0.5}); v != 0 {
		t.Errorf("empty ll = %v", v)
	}
}

func BenchmarkLogLikelihoodSummary(b *testing.B) {
	r := rng.New(1)
	s := synthSummary(r, []float64{0.2, 0.5, 0.7, 0.3}, 50000)
	p := []float64{0.3, 0.4, 0.5, 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LogLikelihood(s, p)
	}
}
