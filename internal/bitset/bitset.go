// Package bitset provides dense word-packed bit sets over []uint64.
//
// It is the storage substrate of the bit-parallel reachability engine:
// pseudo-states and active-node sets pack 64 edges or nodes per word, so
// clearing, counting and unioning run word-at-a-time (one instruction
// per 64 elements) instead of element-at-a-time, and the lane-batched
// traversals in internal/graph can carry 64 independent queries through
// a single sweep. A Set is a plain slice: callers on the hot path may
// range over its words directly (e.g. to extract set bits with
// math/bits.TrailingZeros64) without any iterator allocation.
//
// All methods are allocation-free; only New, FromBools and Grow ever
// allocate. A Set is not safe for concurrent mutation.
package bitset

import "math/bits"

// wordShift and wordMask convert a bit index into a (word, offset) pair.
const (
	wordShift = 6
	wordMask  = 63
)

// Set is a dense bit set. Word w holds bits [64w, 64w+63], least
// significant bit first; the zero value is an empty set of capacity 0.
type Set []uint64

// WordsFor returns the number of uint64 words needed to hold n bits.
func WordsFor(n int) int { return (n + wordMask) >> wordShift }

// New returns a zeroed set with capacity for n bits.
func New(n int) Set { return make(Set, WordsFor(n)) }

// Cap returns the number of bits the set can hold.
func (s Set) Cap() int { return len(s) << wordShift }

// Set marks bit i.
//
//flowlint:hotpath
func (s Set) Set(i int) { s[i>>wordShift] |= 1 << (uint(i) & wordMask) }

// Clear unmarks bit i.
//
//flowlint:hotpath
func (s Set) Clear(i int) { s[i>>wordShift] &^= 1 << (uint(i) & wordMask) }

// Flip toggles bit i with a single XOR — the Metropolis-Hastings
// sampler's packed shadow state is maintained through exactly this op,
// one call per accepted edge flip.
//
//flowlint:hotpath
func (s Set) Flip(i int) { s[i>>wordShift] ^= 1 << (uint(i) & wordMask) }

// Test reports whether bit i is set.
//
//flowlint:hotpath
func (s Set) Test(i int) bool {
	return s[i>>wordShift]>>(uint(i)&wordMask)&1 != 0
}

// Reset clears every bit, one word store per 64 bits. This is the
// zero-alloc reset the traversal engine relies on: re-zeroing a packed
// visited set costs n/64 stores against the n of a []bool clear.
//
//flowlint:hotpath
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// Count returns the number of set bits (population count).
//
//flowlint:hotpath
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// OrInto unions s into dst (dst |= s). The sets must have the same
// length; mismatched lengths are a caller bug.
//
//flowlint:hotpath
func (s Set) OrInto(dst Set) {
	for i, w := range s {
		dst[i] |= w
	}
}

// AndNotCount returns the popcount of s &^ other — the number of bits
// set in s but not in other — without materialising the difference.
// This is the hot read of the CELF max-coverage selector: a candidate's
// marginal gain over a covered mask is one AndNotCount. The sets must
// have the same length; mismatched lengths are a caller bug.
//
//flowlint:hotpath
func (s Set) AndNotCount(other Set) int {
	n := 0
	for i, w := range s {
		n += bits.OnesCount64(w &^ other[i])
	}
	return n
}

// Grow returns s if it can hold n bits, else a fresh zeroed set that
// can. Unlike append-style growth the old contents are discarded: Grow
// is a sizing primitive for scratch state, not a resize.
func (s Set) Grow(n int) Set {
	if s.Cap() >= n {
		return s
	}
	return New(n)
}

// FromBools packs xs into dst, growing it when needed, and returns the
// packed set (dst or its replacement). Bits beyond len(xs) are cleared.
func FromBools(dst Set, xs []bool) Set {
	dst = dst.Grow(len(xs))
	dst.Reset()
	for i, b := range xs {
		if b {
			dst.Set(i)
		}
	}
	return dst
}
