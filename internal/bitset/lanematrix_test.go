package bitset

import "testing"

func TestLaneMatrixSetTestBit(t *testing.T) {
	m := NewLaneMatrix(5, 3) // 192 lanes per row
	if got := m.Lanes(); got != 192 {
		t.Fatalf("Lanes() = %d, want 192", got)
	}
	// Bits across all three words of a row, including word boundaries.
	for _, lane := range []int{0, 1, 63, 64, 65, 127, 128, 191} {
		for r := 0; r < 5; r++ {
			if m.TestBit(r, lane) {
				t.Fatalf("row %d lane %d set in fresh matrix", r, lane)
			}
		}
		m.SetBit(2, lane)
		if !m.TestBit(2, lane) {
			t.Fatalf("lane %d not set after SetBit", lane)
		}
		for r := 0; r < 5; r++ {
			if r != 2 && m.TestBit(r, lane) {
				t.Fatalf("SetBit(2, %d) leaked into row %d", lane, r)
			}
		}
	}
}

func TestLaneMatrixRowAliasesBacking(t *testing.T) {
	m := NewLaneMatrix(4, 2)
	row := m.Row(1)
	if len(row) != 2 || cap(row) != 2 {
		t.Fatalf("Row(1) len/cap = %d/%d, want 2/2 (full slice expression)", len(row), cap(row))
	}
	row[1] = 0xdeadbeef
	if !m.TestBit(1, 64) { // bit 0 of the row's second word
		t.Fatalf("write through Row(1) not visible via TestBit")
	}
	if m.Bits[1*2+1] != 0xdeadbeef {
		t.Fatalf("Row(1) does not alias the backing store")
	}
	// An append through a row must not clobber row 2.
	_ = append(row[:0], 7, 7, 9)
	if m.Bits[2*2] == 9 {
		t.Fatalf("append through Row(1) clobbered row 2")
	}
}

func TestLaneMatrixResetAndResetRow(t *testing.T) {
	m := NewLaneMatrix(3, 2)
	for r := 0; r < 3; r++ {
		m.SetBit(r, 5)
		m.SetBit(r, 100)
	}
	m.ResetRow(1)
	for _, lane := range []int{5, 100} {
		if m.TestBit(1, lane) {
			t.Fatalf("row 1 lane %d survives ResetRow", lane)
		}
		if !m.TestBit(0, lane) || !m.TestBit(2, lane) {
			t.Fatalf("ResetRow(1) cleared a neighbouring row at lane %d", lane)
		}
	}
	m.Reset()
	for i, w := range m.Bits {
		if w != 0 {
			t.Fatalf("word %d = %#x after Reset, want 0", i, w)
		}
	}
}

func TestLaneMatrixResize(t *testing.T) {
	m := NewLaneMatrix(2, 1)
	m.SetBit(0, 3)
	m.Resize(4, 2) // grow: fresh backing, cleared
	if m.Rows != 4 || m.W != 2 || len(m.Bits) != 8 {
		t.Fatalf("after grow: rows/W/len = %d/%d/%d, want 4/2/8", m.Rows, m.W, len(m.Bits))
	}
	for i, w := range m.Bits {
		if w != 0 {
			t.Fatalf("grown matrix word %d = %#x, want 0", i, w)
		}
	}
	m.SetBit(3, 127)
	kept := &m.Bits[0]
	m.Resize(2, 2) // shrink: backing reused, contents discarded
	if &m.Bits[0] != kept {
		t.Fatalf("shrinking Resize reallocated the backing store")
	}
	for i, w := range m.Bits {
		if w != 0 {
			t.Fatalf("shrunk matrix word %d = %#x, want 0 (previous contents must be discarded)", i, w)
		}
	}
	// Zero value becomes usable via Resize.
	var z LaneMatrix
	z.Resize(1, 1)
	z.SetBit(0, 0)
	if !z.TestBit(0, 0) {
		t.Fatalf("zero-value LaneMatrix unusable after Resize")
	}
}

func TestLaneMatrixZeroAllocSteadyState(t *testing.T) {
	m := NewLaneMatrix(64, 8)
	if allocs := testing.AllocsPerRun(100, func() {
		m.Resize(64, 8)
		m.SetBit(10, 300)
		_ = m.Row(10)
		m.ResetRow(10)
		m.Reset()
	}); allocs != 0 {
		t.Errorf("same-shape LaneMatrix operations allocate %v per run, want 0", allocs)
	}
}
