package bitset

import (
	"math/bits"
	"testing"

	"infoflow/internal/rng"
)

func TestSetClearFlipTest(t *testing.T) {
	s := New(130) // crosses two word boundaries
	if got := s.Cap(); got < 130 {
		t.Fatalf("Cap() = %d, want >= 130", got)
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		s.Flip(i)
		if s.Test(i) {
			t.Fatalf("bit %d set after Flip", i)
		}
		s.Flip(i)
		s.Clear(i)
		if s.Test(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
	}
}

// TestAgainstBools drives a Set and a []bool with the same random
// operations and checks every observable agrees.
func TestAgainstBools(t *testing.T) {
	const n = 200
	r := rng.New(7)
	s := New(n)
	ref := make([]bool, n)
	for op := 0; op < 5000; op++ {
		i := r.Intn(n)
		switch r.Intn(4) {
		case 0:
			s.Set(i)
			ref[i] = true
		case 1:
			s.Clear(i)
			ref[i] = false
		case 2:
			s.Flip(i)
			ref[i] = !ref[i]
		case 3:
			if s.Test(i) != ref[i] {
				t.Fatalf("op %d: Test(%d) = %v, ref %v", op, i, s.Test(i), ref[i])
			}
		}
	}
	want := 0
	for i, b := range ref {
		if s.Test(i) != b {
			t.Fatalf("final: bit %d = %v, ref %v", i, s.Test(i), b)
		}
		if b {
			want++
		}
	}
	if got := s.Count(); got != want {
		t.Fatalf("Count() = %d, want %d", got, want)
	}
	packed := FromBools(nil, ref)
	for i := range packed {
		if packed[i] != s[i] {
			t.Fatalf("FromBools word %d = %#x, want %#x", i, packed[i], s[i])
		}
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatal("Count after Reset != 0")
	}
}

func TestOrInto(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	a.Set(64)
	b.Set(64)
	b.Set(99)
	a.OrInto(b)
	for _, i := range []int{3, 64, 99} {
		if !b.Test(i) {
			t.Errorf("bit %d missing from union", i)
		}
	}
	if b.Count() != 3 {
		t.Errorf("union Count = %d, want 3", b.Count())
	}
	if a.Count() != 2 {
		t.Errorf("OrInto mutated the source: Count = %d, want 2", a.Count())
	}
}

func TestGrow(t *testing.T) {
	s := New(10)
	if got := s.Grow(5); &got[0] != &s[0] {
		t.Error("Grow(5) reallocated a sufficient set")
	}
	big := s.Grow(1000)
	if big.Cap() < 1000 {
		t.Errorf("Grow(1000).Cap() = %d", big.Cap())
	}
	if big.Count() != 0 {
		t.Error("grown set not zeroed")
	}
	var nilSet Set
	if nilSet.Grow(1).Cap() < 1 {
		t.Error("nil Set did not grow")
	}
	if FromBools(nil, nil).Count() != 0 {
		t.Error("FromBools(nil, nil) non-empty")
	}
}

// TestWordIteration documents the hot-path idiom: ranging the words and
// peeling bits with TrailingZeros64 visits exactly the set bits.
func TestWordIteration(t *testing.T) {
	s := New(192)
	want := []int{0, 63, 64, 100, 191}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	for wi, w := range s {
		for ; w != 0; w &= w - 1 {
			got = append(got, wi<<6+bits.TrailingZeros64(w))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
}

func TestZeroAlloc(t *testing.T) {
	s := New(4096)
	if allocs := testing.AllocsPerRun(100, func() {
		s.Set(17)
		s.Flip(100)
		_ = s.Test(17)
		s.Clear(17)
		_ = s.Count()
		s.Reset()
	}); allocs != 0 {
		t.Errorf("bit ops allocate %v per run, want 0", allocs)
	}
}

func BenchmarkCount4096(b *testing.B) {
	s := New(4096)
	for i := 0; i < 4096; i += 3 {
		s.Set(i)
	}
	b.ReportAllocs()
	total := 0
	for i := 0; i < b.N; i++ {
		total += s.Count()
	}
	_ = total
}

func BenchmarkReset4096(b *testing.B) {
	s := New(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Reset()
	}
}
