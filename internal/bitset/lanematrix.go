package bitset

// LaneMatrix is a dense, strided matrix of lane masks: Rows rows of W
// consecutive uint64 words each, row r occupying Bits[r*W : (r+1)*W].
// It generalises the one-word-per-node lane masks of the 64-lane
// reachability sweep to W words per node, so one sweep can carry up to
// 64*W independent query lanes (W is capped by callers, not here).
//
// The fields are exported because the wide-lane kernels in
// internal/graph index the backing slice directly on their hot path;
// everything else should go through the methods. Within a row, lane L
// lives in word L/64, bit L%64 — the same least-significant-bit-first
// layout as Set, so word-peeling iteration (w &= w-1 with
// bits.TrailingZeros64) works per word exactly as it does on a Set.
//
// The zero value is an empty matrix; Resize makes it usable. A
// LaneMatrix is not safe for concurrent mutation.
type LaneMatrix struct {
	Bits []uint64 // row-major backing store, len == Rows*W
	W    int      // words per row (the stride)
	Rows int
}

// NewLaneMatrix returns a zeroed matrix of rows rows and w words per
// row.
func NewLaneMatrix(rows, w int) *LaneMatrix {
	return &LaneMatrix{Bits: make([]uint64, rows*w), W: w, Rows: rows}
}

// Lanes returns the lane capacity of one row, 64*W.
func (m *LaneMatrix) Lanes() int { return m.W << wordShift }

// Row returns row r as a full slice expression over the backing store:
// writes through it land in the matrix, and appends cannot clobber the
// next row.
//
//flowlint:hotpath
func (m *LaneMatrix) Row(r int) []uint64 {
	lo := r * m.W
	return m.Bits[lo : lo+m.W : lo+m.W]
}

// SetBit sets lane bit lane of row r.
//
//flowlint:hotpath
func (m *LaneMatrix) SetBit(r, lane int) {
	m.Bits[r*m.W+lane>>wordShift] |= 1 << (uint(lane) & wordMask)
}

// TestBit reports whether lane bit lane of row r is set.
//
//flowlint:hotpath
func (m *LaneMatrix) TestBit(r, lane int) bool {
	return m.Bits[r*m.W+lane>>wordShift]>>(uint(lane)&wordMask)&1 != 0
}

// Reset clears every word.
//
//flowlint:hotpath
func (m *LaneMatrix) Reset() {
	for i := range m.Bits {
		m.Bits[i] = 0
	}
}

// ResetRow clears row r.
//
//flowlint:hotpath
func (m *LaneMatrix) ResetRow(r int) {
	row := m.Row(r)
	for i := range row {
		row[i] = 0
	}
}

// Resize shapes the matrix to rows x w and clears it, reusing the
// backing store when it is large enough. Like Set.Grow it is a sizing
// primitive for scratch state: previous contents are always discarded.
func (m *LaneMatrix) Resize(rows, w int) {
	need := rows * w
	if cap(m.Bits) < need {
		m.Bits = make([]uint64, need)
	} else {
		m.Bits = m.Bits[:need]
		for i := range m.Bits {
			m.Bits[i] = 0
		}
	}
	m.W = w
	m.Rows = rows
}
