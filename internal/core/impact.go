package core

import (
	"fmt"
	"math"

	"infoflow/internal/graph"
)

// EnumLimitError reports that an exact enumerator was asked to visit
// more edge subsets than the MaxEnumEdges budget allows. Callers that
// fall back to sampled or analytic estimators (testkit, flowquery)
// detect it with errors.As and skip-and-report instead of recovering a
// panic.
type EnumLimitError struct {
	Op    string // the enumerator that refused, e.g. "EnumImpactDistribution"
	Edges int    // edge count of the offending model
	Limit int    // the MaxEnumEdges budget in force
}

func (e *EnumLimitError) Error() string {
	return fmt.Sprintf("core: %s on %d edges exceeds limit %d", e.Op, e.Edges, e.Limit)
}

// DedupSources returns the distinct sources in first-appearance order
// alongside an isSource membership slice indexed by node. It is the
// single indexing convention shared by the exact enumerator, the MH
// impact sampler, and the analytic sizedist engine, so their impact
// vectors (length NumNodes - len(distinct) + 1) line up element for
// element.
func DedupSources(n int, sources []graph.NodeID) ([]graph.NodeID, []bool) {
	isSource := make([]bool, n)
	distinct := make([]graph.NodeID, 0, len(sources))
	for _, s := range sources {
		if !isSource[s] {
			isSource[s] = true
			distinct = append(distinct, s)
		}
	}
	return distinct, isSource
}

// EnumImpactDistribution computes the exact distribution over impact —
// the number of non-source nodes activated — by enumerating
// pseudo-states. The result is indexed by impact count (length
// n - |distinct sources| + 1) and sums to 1. It is the ground truth the
// sampled ImpactDistribution estimators are validated against. Beyond
// MaxEnumEdges edges it returns an *EnumLimitError instead of
// enumerating 2^m subsets.
func (m *ICM) EnumImpactDistribution(sources []graph.NodeID) ([]float64, error) {
	me := m.NumEdges()
	if me > MaxEnumEdges {
		return nil, &EnumLimitError{Op: "EnumImpactDistribution", Edges: me, Limit: MaxEnumEdges}
	}
	distinct, _ := DedupSources(m.NumNodes(), sources)
	nSources := len(distinct)
	out := make([]float64, m.NumNodes()-nSources+1)
	x := NewPseudoState(me)
	var rec func(i int, logp float64)
	rec = func(i int, logp float64) {
		if math.IsInf(logp, -1) {
			return
		}
		if i == me {
			active := m.G.Reachable(distinct, func(id graph.EdgeID) bool { return x[id] })
			count := 0
			for _, a := range active {
				if a {
					count++
				}
			}
			out[count-nSources] += math.Exp(logp)
			return
		}
		x[i] = true
		rec(i+1, logp+logOf(m.P[i]))
		x[i] = false
		rec(i+1, logp+log1pOf(-m.P[i]))
	}
	rec(0, 0)
	return out, nil
}
