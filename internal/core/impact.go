package core

import (
	"fmt"
	"math"

	"infoflow/internal/graph"
)

// EnumImpactDistribution computes the exact distribution over impact —
// the number of non-source nodes activated — by enumerating
// pseudo-states. The result is indexed by impact count (length
// n - |distinct sources| + 1) and sums to 1. It is the ground truth the
// sampled ImpactDistribution estimators are validated against; like the
// other enumerators it panics beyond MaxEnumEdges edges.
func (m *ICM) EnumImpactDistribution(sources []graph.NodeID) []float64 {
	me := m.NumEdges()
	if me > MaxEnumEdges {
		//flowlint:invariant documented size limit: enumeration is exponential beyond MaxEnumEdges
		panic(fmt.Sprintf("core: EnumImpactDistribution on %d edges exceeds limit %d", me, MaxEnumEdges))
	}
	distinct := map[graph.NodeID]bool{}
	for _, s := range sources {
		distinct[s] = true
	}
	nSources := len(distinct)
	out := make([]float64, m.NumNodes()-nSources+1)
	x := NewPseudoState(me)
	var rec func(i int, logp float64)
	rec = func(i int, logp float64) {
		if math.IsInf(logp, -1) {
			return
		}
		if i == me {
			active := m.G.Reachable(sources, func(id graph.EdgeID) bool { return x[id] })
			count := 0
			for _, a := range active {
				if a {
					count++
				}
			}
			out[count-nSources] += math.Exp(logp)
			return
		}
		x[i] = true
		rec(i+1, logp+logOf(m.P[i]))
		x[i] = false
		rec(i+1, logp+log1pOf(-m.P[i]))
	}
	rec(0, 0)
	return out
}
