package core_test

import (
	"testing"

	"infoflow/internal/graph"
	"infoflow/internal/rng"
	"infoflow/internal/testkit"
)

// The metamorphic layer of the testkit harness, driven against core's
// exact evaluators across all three graph families. These live in
// core_test (not core) because testkit imports core.

func TestExactEvaluatorsMonotone(t *testing.T) {
	for _, c := range testkit.UnconditionedCases(71) {
		if err := testkit.CheckMonotonicity(c.Model, c.Source, c.Sink, 0.05); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestConditionalEnumerationConsistent(t *testing.T) {
	for _, c := range testkit.Cases(73) {
		if len(c.Conds) == 0 {
			continue
		}
		if err := testkit.CheckConditioningConsistency(c.Model, c.Source, c.Sink, c.Conds[0]); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestRecursionNeverUndershootsEnumeration(t *testing.T) {
	for _, c := range testkit.UnconditionedCases(79) {
		if err := testkit.CheckRecursionUpperBound(c.Model, c.Source); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

// TestSampleCascadeMatchesLiveEdgeLaw ties the round-based cascade
// simulator to the pseudo-state enumeration that EnumFlowProb and the
// MH samplers are defined over.
func TestSampleCascadeMatchesLiveEdgeLaw(t *testing.T) {
	r := rng.New(83)
	for _, c := range testkit.UnconditionedCases(83) {
		if err := testkit.CheckCascadeSizes(c.Model, []graph.NodeID{c.Source}, 15000, 1e-6, r.Fork()); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}
