package core

import (
	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

// SampleCascadeSGTM simulates the Simplified General Threshold Model of
// §V-A (Goyal et al.'s subclass of GTMs) with the same edge weights as
// the ICM: each node v draws a uniform threshold rho once per object, and
// activates at the earliest round where the joint influence of its active
// parents, p_v(S) = 1 - prod_{u in S}(1 - p_uv), exceeds rho.
//
// Theorem 1 of the paper states SGTM and ICM are equivalent; the test
// suite verifies that the distribution over active-node sets produced
// here matches SampleCascade's. Only node activity (not per-edge
// attribution) is meaningful under the threshold mechanism, so the
// returned cascade carries node activity and rounds; ActiveEdges and
// TriedEdges are left empty.
func (m *ICM) SampleCascadeSGTM(r *rng.RNG, sources []graph.NodeID) *Cascade {
	n := m.NumNodes()
	c := &Cascade{
		Sources:     append([]graph.NodeID(nil), sources...),
		ActiveNodes: make([]bool, n),
		Round:       make([]int, n),
		Parent:      make([]graph.NodeID, n),
	}
	for v := range c.Round {
		c.Round[v] = -1
		c.Parent[v] = -1
	}
	threshold := make([]float64, n)
	for v := range threshold {
		threshold[v] = r.Float64()
	}
	// survive[v] tracks prod_{u in S_t}(1 - p_uv) over v's currently
	// active parents, so p_v(S_t) = 1 - survive[v] updates incrementally
	// as parents join S_t (S_t only grows: S_t subseteq S_{t+1}).
	survive := make([]float64, n)
	for v := range survive {
		survive[v] = 1
	}
	frontier := make([]graph.NodeID, 0, len(sources))
	for _, s := range sources {
		if !c.ActiveNodes[s] {
			c.ActiveNodes[s] = true
			c.Round[s] = 0
			frontier = append(frontier, s)
		}
	}
	round := 0
	for len(frontier) > 0 {
		round++
		var next []graph.NodeID
		for _, v := range frontier {
			for _, id := range m.G.OutEdges(v) {
				w := m.G.Edge(id).To
				if c.ActiveNodes[w] {
					continue
				}
				survive[w] *= 1 - m.P[id]
				if 1-survive[w] > threshold[w] {
					c.ActiveNodes[w] = true
					c.Round[w] = round
					c.Parent[w] = v
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return c
}
