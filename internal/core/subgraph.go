package core

import (
	"infoflow/internal/dist"
	"infoflow/internal/graph"
)

// Subgraph projects the ICM onto the induced subgraph over keep,
// preserving each surviving edge's activation probability. It returns
// the sub-model plus the node mappings from graph.DiGraph.Subgraph.
func (m *ICM) Subgraph(keep []graph.NodeID) (*ICM, []graph.NodeID, []graph.NodeID) {
	sub, toOld, toNew := m.G.Subgraph(keep)
	p := make([]float64, sub.NumEdges())
	for id := 0; id < sub.NumEdges(); id++ {
		e := sub.Edge(graph.EdgeID(id))
		origID, ok := m.G.EdgeID(toOld[e.From], toOld[e.To])
		if !ok {
			//flowlint:invariant unreachable: subgraph edges are copies of parent-graph edges, so the lookup cannot miss
			panic("core: subgraph edge missing in parent graph")
		}
		p[id] = m.P[origID]
	}
	return MustNewICM(sub, p), toOld, toNew
}

// Subgraph projects the betaICM onto the induced subgraph over keep,
// preserving each surviving edge's beta distribution. The paper's
// §IV-C experiments train one model on the whole network and query
// radius-n sub-models around focus users; this is that projection.
func (m *BetaICM) Subgraph(keep []graph.NodeID) (*BetaICM, []graph.NodeID, []graph.NodeID) {
	sub, toOld, toNew := m.G.Subgraph(keep)
	b := make([]dist.Beta, sub.NumEdges())
	for id := 0; id < sub.NumEdges(); id++ {
		e := sub.Edge(graph.EdgeID(id))
		origID, ok := m.G.EdgeID(toOld[e.From], toOld[e.To])
		if !ok {
			//flowlint:invariant unreachable: subgraph edges are copies of parent-graph edges, so the lookup cannot miss
			panic("core: subgraph edge missing in parent graph")
		}
		b[id] = m.B[origID]
	}
	return &BetaICM{G: sub, B: b}, toOld, toNew
}
