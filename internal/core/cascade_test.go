package core

import (
	"math"
	"testing"

	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

func TestCascadeDeterministicPath(t *testing.T) {
	r := rng.New(1)
	m := MustNewICM(graph.Path(4), []float64{1, 1, 1})
	c := m.SampleCascade(r, []graph.NodeID{0})
	for v := 0; v < 4; v++ {
		if !c.ActiveNodes[v] {
			t.Fatalf("node %d inactive with p=1 edges", v)
		}
		if c.Round[v] != v {
			t.Fatalf("round[%d] = %d", v, c.Round[v])
		}
	}
	if c.Parent[0] != -1 || c.Parent[1] != 0 || c.Parent[3] != 2 {
		t.Fatalf("parents = %v", c.Parent)
	}
	if c.NumActive() != 4 || c.NumNewlyActive() != 3 {
		t.Fatalf("counts: %d, %d", c.NumActive(), c.NumNewlyActive())
	}
}

func TestCascadeZeroProbability(t *testing.T) {
	r := rng.New(2)
	m := MustNewICM(graph.Path(3), []float64{0, 0})
	c := m.SampleCascade(r, []graph.NodeID{0})
	if c.NumActive() != 1 {
		t.Fatalf("active = %d", c.NumActive())
	}
	if !c.TriedEdges[0] || c.TriedEdges[1] {
		t.Fatalf("tried = %v", c.TriedEdges)
	}
	if c.ActiveEdges[0] {
		t.Fatal("p=0 edge activated")
	}
}

func TestCascadeEdgeActivationFrequency(t *testing.T) {
	// With the parent always active, an edge should activate at its
	// activation probability.
	r := rng.New(3)
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	m := MustNewICM(g, []float64{0.3})
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		c := m.SampleCascade(r, []graph.NodeID{0})
		if c.ActiveEdges[0] {
			hits++
		}
	}
	if got := float64(hits) / trials; math.Abs(got-0.3) > 0.01 {
		t.Errorf("edge activation rate = %v", got)
	}
}

func TestCascadeMatchesExactFlow(t *testing.T) {
	r := rng.New(4)
	g := graph.Random(r, 7, 16)
	p := make([]float64, 16)
	for i := range p {
		p[i] = r.Float64() * 0.8
	}
	m := MustNewICM(g, p)
	exact := m.EnumFlowProb([]graph.NodeID{0}, 6)
	const trials = 150000
	hits := 0
	for i := 0; i < trials; i++ {
		if m.SampleCascade(r, []graph.NodeID{0}).ActiveNodes[6] {
			hits++
		}
	}
	if got := float64(hits) / trials; math.Abs(got-exact) > 0.01 {
		t.Errorf("cascade flow rate %v vs exact %v", got, exact)
	}
}

func TestCascadeFromPseudoStateConsistency(t *testing.T) {
	r := rng.New(5)
	g := graph.Random(r, 10, 30)
	p := make([]float64, 30)
	for i := range p {
		p[i] = r.Float64()
	}
	m := MustNewICM(g, p)
	for trial := 0; trial < 200; trial++ {
		x := m.SamplePseudoState(r)
		src := []graph.NodeID{graph.NodeID(r.Intn(10))}
		c := m.CascadeFromPseudoState(src, x)
		want := m.ActiveNodes(src, x)
		for v := range want {
			if c.ActiveNodes[v] != want[v] {
				t.Fatalf("trial %d: cascade disagrees with reachability at node %d", trial, v)
			}
		}
		// Every active edge must be in the pseudo-state and have an
		// active parent; every tried edge must have an active parent.
		for e, a := range c.ActiveEdges {
			edge := g.Edge(graph.EdgeID(e))
			if a && (!x[e] || !c.ActiveNodes[edge.From]) {
				t.Fatalf("bad active edge %d", e)
			}
			if c.TriedEdges[e] != c.ActiveNodes[edge.From] {
				t.Fatalf("tried edge %d mismatch", e)
			}
		}
	}
}

func TestCascadeMultiSourceDedup(t *testing.T) {
	r := rng.New(6)
	m := MustNewICM(graph.Path(3), []float64{1, 1})
	c := m.SampleCascade(r, []graph.NodeID{0, 0, 1})
	if c.NumActive() != 3 {
		t.Fatalf("active = %d", c.NumActive())
	}
	if c.NumNewlyActive() != 1 {
		t.Fatalf("newly active = %d (duplicate sources must count once)", c.NumNewlyActive())
	}
	if c.Round[1] != 0 {
		t.Fatalf("source round = %d", c.Round[1])
	}
}

// TestTheorem1SGTMEquivalence verifies Theorem 1: the SGTM threshold
// mechanism and the ICM cascade mechanism induce the same distribution
// over final active-node sets for the same edge weights.
func TestTheorem1SGTMEquivalence(t *testing.T) {
	r := rng.New(7)
	g := graph.Random(r, 6, 14)
	p := make([]float64, 14)
	for i := range p {
		p[i] = r.Float64()
	}
	m := MustNewICM(g, p)
	const trials = 120000
	// Compare per-node activation frequencies and the mean cascade size.
	icmCount := make([]int, 6)
	sgtmCount := make([]int, 6)
	icmSize, sgtmSize := 0, 0
	for i := 0; i < trials; i++ {
		ci := m.SampleCascade(r, []graph.NodeID{0})
		cs := m.SampleCascadeSGTM(r, []graph.NodeID{0})
		for v := 0; v < 6; v++ {
			if ci.ActiveNodes[v] {
				icmCount[v]++
			}
			if cs.ActiveNodes[v] {
				sgtmCount[v]++
			}
		}
		icmSize += ci.NumActive()
		sgtmSize += cs.NumActive()
	}
	for v := 0; v < 6; v++ {
		a := float64(icmCount[v]) / trials
		b := float64(sgtmCount[v]) / trials
		if math.Abs(a-b) > 0.01 {
			t.Errorf("node %d: ICM rate %v vs SGTM rate %v", v, a, b)
		}
	}
	if math.Abs(float64(icmSize-sgtmSize))/trials > 0.02 {
		t.Errorf("mean sizes differ: %v vs %v",
			float64(icmSize)/trials, float64(sgtmSize)/trials)
	}
}

func TestFromCascadeRoundTrip(t *testing.T) {
	r := rng.New(8)
	g := graph.Random(r, 8, 20)
	p := make([]float64, 20)
	for i := range p {
		p[i] = 0.6
	}
	m := MustNewICM(g, p)
	c := m.SampleCascade(r, []graph.NodeID{0, 3})
	o := FromCascade(c)
	if err := o.Validate(g); err != nil {
		t.Fatalf("cascade evidence invalid: %v", err)
	}
	if len(o.ActiveNodes) != c.NumActive() {
		t.Fatalf("active node count mismatch")
	}
}
