package core_test

import (
	"bytes"
	"testing"

	"infoflow/internal/core"
	"infoflow/internal/graph"
)

// fuzzGraph is the fixed 4-node diamond (0→1, 0→2, 1→3, 2→3) every
// fuzzed evidence object is validated against.
func fuzzGraph() *graph.DiGraph {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	return g
}

// FuzzReadEvidenceRoundTrip asserts that core.ReadEvidence never panics
// and that accepted evidence reaches an encode/decode fixed point
// against the diamond graph.
func FuzzReadEvidenceRoundTrip(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"sources":[0],"active_nodes":[0,1,3],"active_edges":[0,2]}]`))
	f.Add([]byte(`[{"sources":[0],"active_nodes":[0]}]`))
	f.Add([]byte(`[{"sources":[9],"active_nodes":[9]}]`))
	f.Add([]byte(`[{"sources":[0],"active_nodes":[0,0]}]`))
	f.Add([]byte(`[{`))

	g := fuzzGraph()
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := core.ReadEvidence(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		var enc1 bytes.Buffer
		if err := d.WriteEvidence(&enc1); err != nil {
			t.Fatalf("encode accepted evidence: %v", err)
		}
		d2, err := core.ReadEvidence(bytes.NewReader(enc1.Bytes()), g)
		if err != nil {
			t.Fatalf("re-decode own encoding: %v\nencoding: %s", err, enc1.Bytes())
		}
		var enc2 bytes.Buffer
		if err := d2.WriteEvidence(&enc2); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("encode/decode not a fixed point:\nfirst:  %s\nsecond: %s", enc1.Bytes(), enc2.Bytes())
		}
		if d2.Len() != d.Len() {
			t.Fatalf("object count drift: %d vs %d", d.Len(), d2.Len())
		}
	})
}
