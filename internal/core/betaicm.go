package core

import (
	"fmt"

	"infoflow/internal/dist"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

// BetaICM is the paper's approximate ICM (§II-A): a graph G = (V, E, B)
// where B maps each edge to a beta distribution over its activation
// probability. A betaICM is a probability distribution over
// point-probability ICMs, capturing the uncertainty left by the
// evidence.
type BetaICM struct {
	G *graph.DiGraph
	B []dist.Beta // indexed by EdgeID
}

// NewBetaICM returns a betaICM over g with every edge at the Beta(1,1)
// uniform prior (training step 1).
func NewBetaICM(g *graph.DiGraph) *BetaICM {
	b := make([]dist.Beta, g.NumEdges())
	for i := range b {
		b[i] = dist.Uniform()
	}
	return &BetaICM{G: g, B: b}
}

// NumNodes returns the node count.
func (m *BetaICM) NumNodes() int { return m.G.NumNodes() }

// NumEdges returns the edge count.
func (m *BetaICM) NumEdges() int { return m.G.NumEdges() }

// String implements fmt.Stringer.
func (m *BetaICM) String() string {
	return fmt.Sprintf("BetaICM(n=%d, m=%d)", m.NumNodes(), m.NumEdges())
}

// TrainAttributed performs the betaICM training procedure of §II-A on
// attributed evidence: for every object i and every edge e_{j,k}, alpha
// is incremented if the edge is i-active, and beta is incremented if the
// parent v_j is i-active but the edge is not. Edges whose parent never
// activated for the object carry no information and are untouched.
//
// Training is incremental: calling it again with more evidence continues
// refining the same posterior.
func (m *BetaICM) TrainAttributed(d *AttributedEvidence) error {
	return m.trainAttributed(d, false)
}

// TrainAttributedCensored is TrainAttributed with one change in the
// interpretation of evidence: an inactive edge whose CHILD is i-active
// is skipped instead of counting as a failure.
//
// This matters when the evidence comes from single-attribution chains
// (like recovered retweet ancestry): a user who already has the object
// attributes it to exactly one parent, so nothing is observed about
// whether the other incident edges also delivered — the trial is
// censored, not failed. Counting censored trials as failures (the
// paper's literal §II-A rule) systematically deflates edge estimates
// wherever children have several active parents; with censoring, a
// single-parent child still yields the exact Bernoulli count. See
// DESIGN.md ("attribution censoring").
func (m *BetaICM) TrainAttributedCensored(d *AttributedEvidence) error {
	return m.trainAttributed(d, true)
}

func (m *BetaICM) trainAttributed(d *AttributedEvidence, censor bool) error {
	edgeActive := make([]bool, m.NumEdges())
	nodeActive := make([]bool, m.NumNodes())
	for oi := range d.Objects {
		o := &d.Objects[oi]
		if err := o.Validate(m.G); err != nil {
			return fmt.Errorf("object %d: %w", oi, err)
		}
		for _, e := range o.ActiveEdges {
			edgeActive[e] = true
		}
		if censor {
			for _, v := range o.ActiveNodes {
				nodeActive[v] = true
			}
		}
		for _, v := range o.ActiveNodes {
			for _, id := range m.G.OutEdges(v) {
				switch {
				case edgeActive[id]:
					m.B[id].Alpha++
				case censor && nodeActive[m.G.Edge(id).To]:
					// Child already active via another parent: this
					// edge's trial outcome is unobservable.
				default:
					m.B[id].Beta++
				}
			}
		}
		// Reset scratch marks for the next object.
		for _, e := range o.ActiveEdges {
			edgeActive[e] = false
		}
		if censor {
			for _, v := range o.ActiveNodes {
				nodeActive[v] = false
			}
		}
	}
	return nil
}

// ExpectedICM returns the point-probability ICM whose activation
// probabilities are the means alpha/(alpha+beta) of the edge betas — the
// transformation used before running Equation (2) or the MH sampler on a
// trained betaICM.
func (m *BetaICM) ExpectedICM() *ICM {
	p := make([]float64, m.NumEdges())
	for i, b := range m.B {
		p[i] = b.Mean()
	}
	return MustNewICM(m.G, p)
}

// SampleICM draws a point-probability ICM from the betaICM: each edge's
// activation probability is sampled from its beta distribution. Repeated
// draws feed the nested Metropolis-Hastings uncertainty estimation of
// §III-E.
func (m *BetaICM) SampleICM(r *rng.RNG) *ICM {
	p := make([]float64, m.NumEdges())
	for i, b := range m.B {
		p[i] = b.Sample(r)
	}
	return MustNewICM(m.G, p)
}

// GenerateBetaICM builds a random synthetic betaICM per §IV-A: a random
// structure with n nodes and m edges, each edge's beta parameters drawn
// uniformly as a ~ U(aLo, aHi), b ~ U(bLo, bHi). The paper's experiments
// use a, b ~ U(1, 20).
func GenerateBetaICM(r *rng.RNG, n, m int, aLo, aHi, bLo, bHi float64) *BetaICM {
	g := graph.Random(r, n, m)
	bm := NewBetaICM(g)
	for i := range bm.B {
		bm.B[i] = dist.NewBeta(r.Uniform(aLo, aHi), r.Uniform(bLo, bHi))
	}
	return bm
}

// GenerateSkewedICM builds a random point-probability ICM whose
// activation probabilities follow the skewed mixture of §V-C's ground
// truths: 90% of edges draw from Beta(16,4) (mean 0.8, narrow) and 10%
// from Beta(2,8) (mean 0.2, wide).
func GenerateSkewedICM(r *rng.RNG, n, m int) *ICM {
	g := graph.Random(r, n, m)
	high := dist.NewBeta(16, 4)
	low := dist.NewBeta(2, 8)
	p := make([]float64, g.NumEdges())
	for i := range p {
		if r.Bernoulli(0.9) {
			p[i] = high.Sample(r)
		} else {
			p[i] = low.Sample(r)
		}
	}
	return MustNewICM(g, p)
}
