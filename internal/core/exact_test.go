package core

import (
	"math"
	"testing"
	"testing/quick"

	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

// triangleICM builds the worked example of §II: nodes v1,v2,v3 with arcs
// (v1,v2), (v1,v3), (v2,v3).
func triangleICM(p12, p13, p23 float64) *ICM {
	g := graph.New(3)
	g.MustAddEdge(0, 1) // edge 0: v1->v2
	g.MustAddEdge(0, 2) // edge 1: v1->v3
	g.MustAddEdge(1, 2) // edge 2: v2->v3
	return MustNewICM(g, []float64{p12, p13, p23})
}

func TestExactFlowTriangleClosedForm(t *testing.T) {
	// Equation (1): Pr[v1 ~> v3] = 1 - (1 - p12*p23)(1 - p13).
	cases := [][3]float64{
		{0.5, 0.5, 0.5}, {0.9, 0.1, 0.8}, {0, 0.3, 1}, {1, 1, 1}, {0, 0, 0},
	}
	for _, c := range cases {
		m := triangleICM(c[0], c[1], c[2])
		want := 1 - (1-c[0]*c[2])*(1-c[1])
		if got := m.RecursiveFlowProb(0, 2); math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%v: exact = %v, closed form = %v", c, got, want)
		}
		if got := m.EnumFlowProb([]graph.NodeID{0}, 2); math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%v: enum = %v, closed form = %v", c, got, want)
		}
	}
}

func TestExactFlowCyclicExample(t *testing.T) {
	// §II adds arc (v3,v2) forming a cycle; Pr[v1~>v3] is still Eq. (1)
	// because flow into v3 cannot use a path through v3.
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 1) // the cycle arc
	p12, p13, p23, p32 := 0.6, 0.3, 0.7, 0.9
	m := MustNewICM(g, []float64{p12, p13, p23, p32})
	want := 1 - (1-p12*p23)*(1-p13)
	if got := m.RecursiveFlowProb(0, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("cyclic exact = %v, want %v", got, want)
	}
	if got := m.EnumFlowProb([]graph.NodeID{0}, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("cyclic enum = %v, want %v", got, want)
	}
	// Flow to v2, however, picks up the v1->v3->v2 path:
	// Pr[v1~>v2] = 1 - (1-p12)(1 - Pr[v1~>v3 ex {v2}] p32)
	//            = 1 - (1-p12)(1 - p13*p32).
	want2 := 1 - (1-p12)*(1-p13*p32)
	if got := m.RecursiveFlowProb(0, 1); math.Abs(got-want2) > 1e-12 {
		t.Errorf("cyclic exact to v2 = %v, want %v", got, want2)
	}
}

func TestExactFlowTrivial(t *testing.T) {
	m := triangleICM(0.5, 0.5, 0.5)
	if got := m.RecursiveFlowProb(1, 1); got != 1 {
		t.Errorf("self flow = %v", got)
	}
	// No path from v3 anywhere.
	if got := m.RecursiveFlowProb(2, 0); got != 0 {
		t.Errorf("impossible flow = %v", got)
	}
}

// TestRecursionUpperBoundsEnum documents the reproduction finding on the
// paper's Equation (2): the recursion treats parent-flow events as
// independent, and since flow events are positively associated increasing
// functions of the independent edge variables (Harris/FKG), the recursion
// can only overestimate the exact (enumerated) flow probability.
func TestRecursionUpperBoundsEnum(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := r.Intn(4) + 2 // 2..5 nodes
		maxM := n * (n - 1)
		m := r.Intn(min(maxM, 10) + 1)
		g := graph.Random(r, n, m)
		p := make([]float64, m)
		for i := range p {
			p[i] = r.Float64()
		}
		icm := MustNewICM(g, p)
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		rec := icm.RecursiveFlowProb(u, v)
		enum := icm.EnumFlowProb([]graph.NodeID{u}, v)
		return rec >= enum-1e-9
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecursionExactOnInTrees: when every node has at most one incoming
// edge, flows to distinct parents never share upstream structure inside
// the product of Equation (2), so the recursion is exact.
func TestRecursionExactOnInTrees(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := r.Intn(8) + 2
		g := graph.New(n)
		// Random in-tree: each node v >= 1 gets one parent among 0..v-1.
		for v := 1; v < n; v++ {
			g.MustAddEdge(graph.NodeID(r.Intn(v)), graph.NodeID(v))
		}
		p := make([]float64, g.NumEdges())
		for i := range p {
			p[i] = r.Float64()
		}
		icm := MustNewICM(g, p)
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		rec := icm.RecursiveFlowProb(u, v)
		enum := icm.EnumFlowProb([]graph.NodeID{u}, v)
		return math.Abs(rec-enum) < 1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecursionDiamondCounterexample pins the worked counterexample from
// the RecursiveFlowProb doc comment.
func TestRecursionDiamondCounterexample(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	m := MustNewICM(g, []float64{0.5, 0.5, 0.5, 0.5})
	if got := m.EnumFlowProb([]graph.NodeID{0}, 3); math.Abs(got-0.3125) > 1e-12 {
		t.Errorf("enum = %v, want 0.3125", got)
	}
	if got := m.RecursiveFlowProb(0, 3); math.Abs(got-0.34375) > 1e-12 {
		t.Errorf("recursion = %v, want 0.34375", got)
	}
}

func TestEnumMultiSource(t *testing.T) {
	// Two sources on a path graph 0->1->2: flow to 2 from {0,1} is
	// p12 + (1-p12)*p01*p12... careful: sources {0,1}, sink 2. Node 1 is
	// already active, so only edge 1->2 matters: Pr = p12.
	g := graph.Path(3)
	m := MustNewICM(g, []float64{0.3, 0.6})
	got := m.EnumFlowProb([]graph.NodeID{0, 1}, 2)
	if math.Abs(got-0.6) > 1e-12 {
		t.Errorf("multi-source enum = %v, want 0.6", got)
	}
}

func TestEnumConditionalFlow(t *testing.T) {
	// Path 0->1->2 with p01=0.5, p12=0.5.
	// Pr[0~>2] = 0.25. Conditioned on 0~>1, Pr[0~>2 | C] = 0.5.
	g := graph.Path(3)
	m := MustNewICM(g, []float64{0.5, 0.5})
	got, err := m.EnumConditionalFlowProb([]graph.NodeID{0}, 2,
		[]FlowCondition{{Source: 0, Sink: 1, Require: true}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("conditional = %v, want 0.5", got)
	}
	// Conditioned on NO flow 0~>2, probability must be 0.
	got, err = m.EnumConditionalFlowProb([]graph.NodeID{0}, 2,
		[]FlowCondition{{Source: 0, Sink: 2, Require: false}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("conditional on absence = %v", got)
	}
}

func TestEnumConditionalZeroProbability(t *testing.T) {
	g := graph.Path(2)
	m := MustNewICM(g, []float64{1}) // edge always active
	_, err := m.EnumConditionalFlowProb([]graph.NodeID{0}, 1,
		[]FlowCondition{{Source: 0, Sink: 1, Require: false}})
	if err == nil {
		t.Fatal("expected zero-probability condition error")
	}
}

func TestExactMonotoneInEdgeProbability(t *testing.T) {
	// Raising any activation probability cannot lower a flow probability.
	err := quick.Check(func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := r.Intn(4) + 3
		m := r.Intn(min(n*(n-1), 9) + 1)
		if m == 0 {
			return true
		}
		g := graph.Random(r, n, m)
		p := make([]float64, m)
		for i := range p {
			p[i] = r.Float64()
		}
		base := MustNewICM(g, p)
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		before := base.RecursiveFlowProb(u, v)
		bumped := make([]float64, m)
		copy(bumped, p)
		k := r.Intn(m)
		bumped[k] = bumped[k] + (1-bumped[k])*r.Float64()
		after := MustNewICM(g, bumped).RecursiveFlowProb(u, v)
		return after >= before-1e-12
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExactFlowDirectMonteCarlo(t *testing.T) {
	// Cross-check exact evaluation against naive cascade simulation on a
	// moderately sized cyclic graph.
	r := rng.New(1234)
	g := graph.Random(r, 8, 18)
	p := make([]float64, 18)
	for i := range p {
		p[i] = r.Float64()
	}
	m := MustNewICM(g, p)
	u, v := graph.NodeID(0), graph.NodeID(7)
	exact := m.EnumFlowProb([]graph.NodeID{u}, v)
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		c := m.SampleCascade(r, []graph.NodeID{u})
		if c.ActiveNodes[v] {
			hits++
		}
	}
	mc := float64(hits) / trials
	if math.Abs(mc-exact) > 0.01 {
		t.Errorf("monte carlo %v vs exact %v", mc, exact)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
