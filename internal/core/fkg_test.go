package core

import (
	"testing"
	"testing/quick"

	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

// Flow events are increasing functions of the independent edge
// variables, so by the Harris/FKG inequality they are positively
// associated. These property tests pin the consequences on the exact
// (enumerated) evaluator; the samplers inherit them.

// TestConditioningOnFlowNeverLowersFlow: Pr[A | B] >= Pr[A] when B is a
// positive flow condition.
func TestConditioningOnFlowNeverLowersFlow(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := r.Intn(4) + 3
		mE := r.Intn(min(n*(n-1), 10) + 1)
		g := graph.Random(r, n, mE)
		p := make([]float64, mE)
		for i := range p {
			p[i] = r.Float64()
		}
		m := MustNewICM(g, p)
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		w := graph.NodeID(r.Intn(n))
		conds := []FlowCondition{{Source: u, Sink: w, Require: true}}
		cond, err := m.EnumConditionalFlowProb([]graph.NodeID{u}, v, conds)
		if err != nil {
			return true // condition impossible: nothing to check
		}
		uncond := m.EnumFlowProb([]graph.NodeID{u}, v)
		return cond >= uncond-1e-9
	}, &quick.Config{MaxCount: 250})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConditioningOnNonFlowNeverRaisesFlow: the mirror image for
// negative conditions.
func TestConditioningOnNonFlowNeverRaisesFlow(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := rng.New(uint64(seed) + 7777)
		n := r.Intn(4) + 3
		mE := r.Intn(min(n*(n-1), 10) + 1)
		g := graph.Random(r, n, mE)
		p := make([]float64, mE)
		for i := range p {
			p[i] = r.Float64()
		}
		m := MustNewICM(g, p)
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		w := graph.NodeID(r.Intn(n))
		if w == u {
			return true // u ~> u is certain; conditioning on its absence is empty
		}
		conds := []FlowCondition{{Source: u, Sink: w, Require: false}}
		cond, err := m.EnumConditionalFlowProb([]graph.NodeID{u}, v, conds)
		if err != nil {
			return true
		}
		uncond := m.EnumFlowProb([]graph.NodeID{u}, v)
		return cond <= uncond+1e-9
	}, &quick.Config{MaxCount: 250})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAddingEdgeNeverLowersFlow: adding a new edge (any probability)
// cannot reduce any flow probability.
func TestAddingEdgeNeverLowersFlow(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := rng.New(uint64(seed) + 3333)
		n := r.Intn(4) + 3
		mE := r.Intn(8) + 1
		if mE >= n*(n-1) {
			mE = n*(n-1) - 1
		}
		g := graph.Random(r, n, mE)
		p := make([]float64, mE)
		for i := range p {
			p[i] = r.Float64()
		}
		m := MustNewICM(g, p)
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		before := m.EnumFlowProb([]graph.NodeID{u}, v)
		// Find a missing edge to add.
		g2 := g.Clone()
		var added bool
		for a := 0; a < n && !added; a++ {
			for b := 0; b < n && !added; b++ {
				if a != b && !g2.HasEdge(graph.NodeID(a), graph.NodeID(b)) {
					g2.MustAddEdge(graph.NodeID(a), graph.NodeID(b))
					added = true
				}
			}
		}
		if !added {
			return true
		}
		p2 := append(append([]float64{}, p...), r.Float64())
		after := MustNewICM(g2, p2).EnumFlowProb([]graph.NodeID{u}, v)
		return after >= before-1e-9
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

// TestJointFlowAtLeastProduct: positive association means
// Pr[A and B] >= Pr[A] Pr[B] for two flows from the same source.
func TestJointFlowAtLeastProduct(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := rng.New(uint64(seed) + 9999)
		n := r.Intn(4) + 3
		mE := r.Intn(min(n*(n-1), 10) + 1)
		g := graph.Random(r, n, mE)
		p := make([]float64, mE)
		for i := range p {
			p[i] = r.Float64()
		}
		m := MustNewICM(g, p)
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		w := graph.NodeID(r.Intn(n))
		pv := m.EnumFlowProb([]graph.NodeID{u}, v)
		pw := m.EnumFlowProb([]graph.NodeID{u}, w)
		// Joint via conditional enumeration: Pr[v and w] =
		// Pr[v | w required] * Pr[w].
		if pw == 0 {
			return true
		}
		condV, err := m.EnumConditionalFlowProb([]graph.NodeID{u}, v,
			[]FlowCondition{{Source: u, Sink: w, Require: true}})
		if err != nil {
			return true
		}
		joint := condV * pw
		return joint >= pv*pw-1e-9
	}, &quick.Config{MaxCount: 250})
	if err != nil {
		t.Fatal(err)
	}
}
