package core

import (
	"testing"

	"infoflow/internal/dist"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

func TestICMSubgraphPreservesProbabilities(t *testing.T) {
	r := rng.New(90)
	g := graph.Random(r, 12, 50)
	p := make([]float64, 50)
	for i := range p {
		p[i] = r.Float64()
	}
	m := MustNewICM(g, p)
	keep := []graph.NodeID{2, 5, 7, 9, 11}
	sub, toOld, toNew := m.Subgraph(keep)
	if sub.NumNodes() != 5 {
		t.Fatalf("nodes = %d", sub.NumNodes())
	}
	for id := 0; id < sub.NumEdges(); id++ {
		e := sub.G.Edge(graph.EdgeID(id))
		origID, ok := g.EdgeID(toOld[e.From], toOld[e.To])
		if !ok {
			t.Fatal("phantom edge")
		}
		if sub.P[id] != p[origID] {
			t.Fatalf("edge %d probability changed", id)
		}
	}
	for _, v := range keep {
		if toOld[toNew[v]] != v {
			t.Fatalf("mapping broken for %d", v)
		}
	}
}

func TestBetaICMSubgraphPreservesBetas(t *testing.T) {
	r := rng.New(91)
	bm := GenerateBetaICM(r, 10, 40, 1, 20, 1, 20)
	keep := []graph.NodeID{0, 1, 2, 3}
	sub, toOld, _ := bm.Subgraph(keep)
	edgeCount := 0
	for id := 0; id < sub.NumEdges(); id++ {
		e := sub.G.Edge(graph.EdgeID(id))
		origID, ok := bm.G.EdgeID(toOld[e.From], toOld[e.To])
		if !ok {
			t.Fatal("phantom edge")
		}
		if sub.B[id] != bm.B[origID] {
			t.Fatalf("edge %d beta changed", id)
		}
		edgeCount++
	}
	// Every original edge within the kept set must survive.
	kept := map[graph.NodeID]bool{0: true, 1: true, 2: true, 3: true}
	want := 0
	for _, e := range bm.G.Edges() {
		if kept[e.From] && kept[e.To] {
			want++
		}
	}
	if edgeCount != want {
		t.Fatalf("subgraph has %d edges, want %d", edgeCount, want)
	}
	_ = dist.Uniform() // keep dist imported for the type assertion above
}
