package core

import (
	"errors"
	"math"
	"testing"

	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

func TestEnumImpactStar(t *testing.T) {
	// Star with p=0.5 on 3 leaves: impact ~ Binomial(3, 0.5).
	g := graph.New(4)
	for v := 1; v < 4; v++ {
		g.MustAddEdge(0, graph.NodeID(v))
	}
	m := MustNewICM(g, []float64{0.5, 0.5, 0.5})
	dist, err := m.EnumImpactDistribution([]graph.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 8, 3.0 / 8, 3.0 / 8, 1.0 / 8}
	if len(dist) != 4 {
		t.Fatalf("length = %d", len(dist))
	}
	for k, w := range want {
		if math.Abs(dist[k]-w) > 1e-12 {
			t.Errorf("P[impact=%d] = %v want %v", k, dist[k], w)
		}
	}
}

func TestEnumImpactSumsToOne(t *testing.T) {
	r := rng.New(120)
	for trial := 0; trial < 20; trial++ {
		n := r.Intn(5) + 2
		mE := r.Intn(min(n*(n-1), 10) + 1)
		g := graph.Random(r, n, mE)
		p := make([]float64, mE)
		for i := range p {
			p[i] = r.Float64()
		}
		m := MustNewICM(g, p)
		dist, err := m.EnumImpactDistribution([]graph.NodeID{0})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range dist {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("impact distribution sums to %v", sum)
		}
	}
}

func TestEnumImpactMatchesCascadeSampling(t *testing.T) {
	r := rng.New(121)
	g := graph.Random(r, 6, 14)
	p := make([]float64, 14)
	for i := range p {
		p[i] = r.Float64()
	}
	m := MustNewICM(g, p)
	exact, err := m.EnumImpactDistribution([]graph.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 200000
	counts := make([]int, len(exact))
	for i := 0; i < trials; i++ {
		counts[m.SampleCascade(r, []graph.NodeID{0}).NumNewlyActive()]++
	}
	for k := range exact {
		got := float64(counts[k]) / trials
		if math.Abs(got-exact[k]) > 0.01 {
			t.Errorf("P[impact=%d]: sampled %v vs exact %v", k, got, exact[k])
		}
	}
}

func TestEnumImpactMultiSourceDedup(t *testing.T) {
	g := graph.Path(3)
	m := MustNewICM(g, []float64{1, 1})
	dist, err := m.EnumImpactDistribution([]graph.NodeID{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// One distinct source, certain edges: impact always 2.
	if len(dist) != 3 || dist[2] != 1 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestEnumImpactLimitError(t *testing.T) {
	r := rng.New(122)
	g := graph.Random(r, 10, MaxEnumEdges+1)
	p := make([]float64, MaxEnumEdges+1)
	for i := range p {
		p[i] = 0.5
	}
	m := MustNewICM(g, p)
	_, err := m.EnumImpactDistribution([]graph.NodeID{0})
	var limit *EnumLimitError
	if !errors.As(err, &limit) {
		t.Fatalf("err = %v, want *EnumLimitError", err)
	}
	if limit.Edges != MaxEnumEdges+1 || limit.Limit != MaxEnumEdges || limit.Op != "EnumImpactDistribution" {
		t.Errorf("limit error fields = %+v", limit)
	}
}
