package core

import (
	"bytes"
	"strings"
	"testing"

	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

func TestEvidenceRoundTrip(t *testing.T) {
	r := rng.New(600)
	g := graph.Random(r, 8, 24)
	p := make([]float64, 24)
	for i := range p {
		p[i] = 0.4
	}
	m := MustNewICM(g, p)
	orig := &AttributedEvidence{}
	for i := 0; i < 50; i++ {
		orig.Add(FromCascade(m.SampleCascade(r, []graph.NodeID{graph.NodeID(r.Intn(8))})))
	}
	var buf bytes.Buffer
	if err := orig.WriteEvidence(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvidence(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("objects: %d vs %d", got.Len(), orig.Len())
	}
	// Training on either must give identical posteriors.
	a := NewBetaICM(g)
	if err := a.TrainAttributed(orig); err != nil {
		t.Fatal(err)
	}
	b := NewBetaICM(g)
	if err := b.TrainAttributed(got); err != nil {
		t.Fatal(err)
	}
	for e := range p {
		if a.B[e] != b.B[e] {
			t.Fatalf("edge %d posterior changed: %v vs %v", e, a.B[e], b.B[e])
		}
	}
}

func TestReadEvidenceValidates(t *testing.T) {
	g := graph.Path(2)
	for _, s := range []string{
		`[{"sources":[0],"active_nodes":[0],"active_edges":[0]}]`, // edge active, child inactive
		`[{"sources":[5],"active_nodes":[5]}]`,                    // node out of range
		`garbage`,
	} {
		if _, err := ReadEvidence(strings.NewReader(s), g); err == nil {
			t.Errorf("accepted %s", s)
		}
	}
	// A valid minimal document.
	ok := `[{"sources":[0],"active_nodes":[0,1],"active_edges":[0]}]`
	ev, err := ReadEvidence(strings.NewReader(ok), g)
	if err != nil || ev.Len() != 1 {
		t.Fatalf("valid evidence rejected: %v", err)
	}
}
