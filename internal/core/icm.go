// Package core implements the paper's information flow model (§II): the
// Independent Cascade Model (ICM) as a directed graph with a per-edge
// activation probability, the betaICM approximation that carries a beta
// distribution per edge, pseudo-states and active-states, cascade
// simulation, exact flow-probability evaluation, and training from
// attributed evidence.
package core

import (
	"fmt"
	"math"

	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

// ICM is a point-probability Independent Cascade Model: a directed graph
// G = (V, E, P) where P maps each edge to its activation probability
// (the probability that an information object at the edge's source
// traverses it).
type ICM struct {
	G *graph.DiGraph
	P []float64 // indexed by EdgeID
}

// NewICM validates and wraps a graph and its activation probabilities.
func NewICM(g *graph.DiGraph, p []float64) (*ICM, error) {
	if len(p) != g.NumEdges() {
		return nil, fmt.Errorf("core: %d probabilities for %d edges", len(p), g.NumEdges())
	}
	for id, v := range p {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return nil, fmt.Errorf("core: activation probability %v on edge %d outside [0,1]", v, id)
		}
	}
	return &ICM{G: g, P: p}, nil
}

// MustNewICM is NewICM that panics on error.
func MustNewICM(g *graph.DiGraph, p []float64) *ICM {
	m, err := NewICM(g, p)
	if err != nil {
		//flowlint:invariant Must* constructor: the caller asserts the inputs are valid
		panic(err)
	}
	return m
}

// NumNodes returns the node count n.
func (m *ICM) NumNodes() int { return m.G.NumNodes() }

// NumEdges returns the edge count m.
func (m *ICM) NumEdges() int { return m.G.NumEdges() }

// Prob returns the activation probability of edge id.
func (m *ICM) Prob(id graph.EdgeID) float64 { return m.P[id] }

// String implements fmt.Stringer.
func (m *ICM) String() string {
	return fmt.Sprintf("ICM(n=%d, m=%d)", m.NumNodes(), m.NumEdges())
}

// PseudoState assigns every edge to be active or inactive irrespective of
// the activity of its parent node (§II, §III-A). It is indexed by
// EdgeID.
type PseudoState []bool

// NewPseudoState returns an all-inactive pseudo-state for m edges.
func NewPseudoState(m int) PseudoState { return make(PseudoState, m) }

// Clone returns an independent copy.
func (x PseudoState) Clone() PseudoState {
	c := make(PseudoState, len(x))
	copy(c, x)
	return c
}

// CountActive returns the number of active edges.
func (x PseudoState) CountActive() int {
	n := 0
	for _, b := range x {
		if b {
			n++
		}
	}
	return n
}

// SamplePseudoState draws a pseudo-state from the model's marginal
// distribution, Equation (3): each edge is active independently with its
// activation probability.
func (m *ICM) SamplePseudoState(r *rng.RNG) PseudoState {
	x := NewPseudoState(m.NumEdges())
	for id := range x {
		x[id] = r.Bernoulli(m.P[id])
	}
	return x
}

// LogProbPseudoState returns ln Pr[x | M] per Equation (3).
func (m *ICM) LogProbPseudoState(x PseudoState) float64 {
	if len(x) != m.NumEdges() {
		//flowlint:invariant documented contract: a pseudo-state has exactly one entry per edge
		panic("core: pseudo-state size mismatch")
	}
	logp := 0.0
	for id, active := range x {
		p := m.P[id]
		if active {
			logp += logOf(p)
		} else {
			logp += log1pOf(-p)
		}
	}
	return logp
}

// ActiveNodes derives from a pseudo-state the set of i-active nodes given
// the object's source set: a node is active iff it is a source or is
// reachable from a source across active edges (the active-state
// derivation of §III-A).
func (m *ICM) ActiveNodes(sources []graph.NodeID, x PseudoState) []bool {
	return m.ActiveNodesInto(sources, x, nil, nil)
}

// HasFlow reports whether pseudo-state x gives rise to the end-to-end
// flow u ~> v, the indicator I(u, v; x) of Equation (5).
func (m *ICM) HasFlow(u, v graph.NodeID, x PseudoState) bool {
	return m.HasFlowScratch(u, v, x, nil)
}
