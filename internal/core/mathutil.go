package core

import "math"

// logOf and log1pOf centralise the convention that probability-zero
// events contribute -Inf log-probability without tripping math domain
// panics elsewhere.
func logOf(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

func log1pOf(x float64) float64 {
	if x <= -1 {
		return math.Inf(-1)
	}
	return math.Log1p(x)
}
