package core

import (
	"math"
	"testing"

	"infoflow/internal/dist"
	"infoflow/internal/graph"
	"infoflow/internal/rng"
)

func TestTrainAttributedCensoredSkipsDeliveredChildren(t *testing.T) {
	// Graph 0->2, 1->2. Object: all three nodes active, chain edge 0->2
	// only. Censored training must not punish edge 1->2.
	g := graph.New(3)
	e02 := g.MustAddEdge(0, 2)
	e12 := g.MustAddEdge(1, 2)
	obj := AttributedObject{
		Sources:     []graph.NodeID{0, 1},
		ActiveNodes: []graph.NodeID{0, 1, 2},
		ActiveEdges: []graph.EdgeID{e02},
	}
	plain := NewBetaICM(g)
	if err := plain.TrainAttributed(&AttributedEvidence{Objects: []AttributedObject{obj}}); err != nil {
		t.Fatal(err)
	}
	censored := NewBetaICM(g)
	if err := censored.TrainAttributedCensored(&AttributedEvidence{Objects: []AttributedObject{obj}}); err != nil {
		t.Fatal(err)
	}
	if plain.B[e12] != (dist.Beta{Alpha: 1, Beta: 2}) {
		t.Errorf("plain e12 = %v", plain.B[e12])
	}
	if censored.B[e12] != dist.Uniform() {
		t.Errorf("censored e12 = %v, want untouched", censored.B[e12])
	}
	// The attributed edge itself counts alpha either way.
	if censored.B[e02] != (dist.Beta{Alpha: 2, Beta: 1}) {
		t.Errorf("censored e02 = %v", censored.B[e02])
	}
	// A genuinely failed edge (child inactive) still counts beta.
	obj2 := AttributedObject{
		Sources:     []graph.NodeID{0},
		ActiveNodes: []graph.NodeID{0},
	}
	if err := censored.TrainAttributedCensored(&AttributedEvidence{Objects: []AttributedObject{obj2}}); err != nil {
		t.Fatal(err)
	}
	if censored.B[e02] != (dist.Beta{Alpha: 2, Beta: 2}) {
		t.Errorf("after failure e02 = %v", censored.B[e02])
	}
}

// TestCensoredTrainingReducesChainBias: evidence carrying only the
// attribution chain (not the full fired-edge set) deflates plain
// training; censored training recovers the truth much more closely.
func TestCensoredTrainingReducesChainBias(t *testing.T) {
	// Subcritical regime (sparse activations), where chain evidence is
	// close to fully-attributed evidence: censoring then corrects most
	// of the plain rule's deflation. In saturated regimes neither
	// interpretation recovers the race dynamics — that is what the
	// unattributed learners are for.
	r := rng.New(77)
	g := graph.Random(r, 14, 50)
	p := make([]float64, 50)
	for i := range p {
		p[i] = 0.05 + 0.25*r.Float64()
	}
	truth := MustNewICM(g, p)
	// Chain-only evidence: active edges = BFS attribution tree edges.
	ev := &AttributedEvidence{}
	tried := make([]int, 50)
	for i := 0; i < 6000; i++ {
		c := truth.SampleCascade(r, []graph.NodeID{graph.NodeID(r.Intn(10))})
		obj := AttributedObject{Sources: append([]graph.NodeID(nil), c.Sources...)}
		for v, a := range c.ActiveNodes {
			if a {
				obj.ActiveNodes = append(obj.ActiveNodes, graph.NodeID(v))
			}
		}
		for v, parent := range c.Parent {
			if parent < 0 {
				continue
			}
			id, ok := g.EdgeID(parent, graph.NodeID(v))
			if !ok {
				t.Fatal("attribution edge missing")
			}
			obj.ActiveEdges = append(obj.ActiveEdges, id)
		}
		for e, tr := range c.TriedEdges {
			if tr {
				tried[e]++
			}
		}
		ev.Add(obj)
	}
	plain := NewBetaICM(g)
	if err := plain.TrainAttributed(ev); err != nil {
		t.Fatal(err)
	}
	censored := NewBetaICM(g)
	if err := censored.TrainAttributedCensored(ev); err != nil {
		t.Fatal(err)
	}
	var plainErr, censErr float64
	n := 0
	for e := range p {
		if tried[e] < 300 {
			continue
		}
		plainErr += math.Abs(plain.B[e].Mean() - p[e])
		censErr += math.Abs(censored.B[e].Mean() - p[e])
		n++
	}
	if n == 0 {
		t.Fatal("no well-tried edges")
	}
	plainErr /= float64(n)
	censErr /= float64(n)
	if censErr >= plainErr {
		t.Errorf("censored error %v not below plain %v", censErr, plainErr)
	}
	if censErr > 0.05 {
		t.Errorf("censored error %v too large", censErr)
	}
}
