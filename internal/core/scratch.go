package core

import "infoflow/internal/graph"

// This file is the model-level face of the allocation-free traversal
// engine in internal/graph: the same active-state derivation, flow
// indicator and condition indicator as ActiveNodes, HasFlow and
// Satisfies, but running on caller-owned scratch state so the
// Metropolis-Hastings hot path performs no allocations per sample. A
// pseudo-state is already the dense []bool edge mask the engine wants,
// so these are thin adapters, and the closure-based APIs remain as thin
// wrappers over them for callers off the hot path.

// ActiveNodesInto is ActiveNodes writing into dst using sc for traversal
// state. Either may be nil, in which case it is allocated; the result is
// dst (or its replacement). dst must not alias x.
//
//flowlint:hotpath
func (m *ICM) ActiveNodesInto(sources []graph.NodeID, x PseudoState, sc *graph.Scratch, dst []bool) []bool {
	return m.G.ReachableInto(sources, x, sc, dst)
}

// HasFlowScratch is HasFlow using sc for traversal state (nil allocates
// a temporary). It additionally searches bidirectionally, so it is the
// faster choice even one-shot.
//
//flowlint:hotpath
func (m *ICM) HasFlowScratch(u, v graph.NodeID, x PseudoState, sc *graph.Scratch) bool {
	return m.G.HasPathScratch(u, v, x, sc)
}

// SatisfiesScratch is Satisfies using sc for traversal state: one
// bidirectional early-exit search per condition, no allocation. Unlike
// Satisfies it does not batch conditions sharing a source into one
// sweep; with the handful of conditions real queries carry, per-condition
// early exit is cheaper than a full reachability sweep.
//
//flowlint:hotpath
func (m *ICM) SatisfiesScratch(x PseudoState, conds []FlowCondition, sc *graph.Scratch) bool {
	for _, c := range conds {
		if m.G.HasPathScratch(c.Source, c.Sink, x, sc) != c.Require {
			return false
		}
	}
	return true
}
