package core

import (
	"infoflow/internal/bitset"
	"infoflow/internal/graph"
)

// This file is the model-level face of the allocation-free traversal
// engine in internal/graph: the same active-state derivation, flow
// indicator and condition indicator as ActiveNodes, HasFlow and
// Satisfies, but running on caller-owned scratch state so the
// Metropolis-Hastings hot path performs no allocations per sample. A
// pseudo-state is already the dense []bool edge mask the engine wants,
// so these are thin adapters, and the closure-based APIs remain as thin
// wrappers over them for callers off the hot path.

// ActiveNodesInto is ActiveNodes writing into dst using sc for traversal
// state. Either may be nil, in which case it is allocated; the result is
// dst (or its replacement). dst must not alias x.
//
//flowlint:hotpath
func (m *ICM) ActiveNodesInto(sources []graph.NodeID, x PseudoState, sc *graph.Scratch, dst []bool) []bool {
	return m.G.ReachableInto(sources, x, sc, dst)
}

// HasFlowScratch is HasFlow using sc for traversal state (nil allocates
// a temporary). It additionally searches bidirectionally, so it is the
// faster choice even one-shot.
//
//flowlint:hotpath
func (m *ICM) HasFlowScratch(u, v graph.NodeID, x PseudoState, sc *graph.Scratch) bool {
	return m.G.HasPathScratch(u, v, x, sc)
}

// SatisfiesScratch is Satisfies using sc for traversal state: one
// bidirectional early-exit search per condition, no allocation. Unlike
// Satisfies it does not batch conditions sharing a source into one
// sweep; with the handful of conditions real queries carry, per-condition
// early exit is cheaper than a full reachability sweep.
//
//flowlint:hotpath
func (m *ICM) SatisfiesScratch(x PseudoState, conds []FlowCondition, sc *graph.Scratch) bool {
	for _, c := range conds {
		if m.G.HasPathScratch(c.Source, c.Sink, x, sc) != c.Require {
			return false
		}
	}
	return true
}

// The packed tier: the same three indicators over a bit-packed
// pseudo-state (64 edges per word, as maintained by mh.Sampler's shadow
// state) plus the 64-lane sweep that answers up to 64 flow queries from
// one sample. All are thin adapters over internal/graph's bit-parallel
// kernels; the []bool tier above remains the reference semantics.

// ActiveNodesBitsInto is ActiveNodesInto with the pseudo-state and the
// destination packed: one word-wise reset plus one BFS per call, no
// allocation in steady state. The result is dst (or its replacement).
//
//flowlint:hotpath
func (m *ICM) ActiveNodesBitsInto(sources []graph.NodeID, x bitset.Set, sc *graph.Scratch, dst bitset.Set) bitset.Set {
	return m.G.ReachableBitsInto(sources, x, sc, dst)
}

// HasFlowBits is HasFlowScratch over a packed pseudo-state.
//
//flowlint:hotpath
func (m *ICM) HasFlowBits(u, v graph.NodeID, x bitset.Set, sc *graph.Scratch) bool {
	return m.G.HasPathBits(u, v, x, sc)
}

// FlowLanesInto runs the 64-lane reachability sweep over a packed
// pseudo-state: seeds[k] is seeded with lane bits seedBits[k], and the
// returned reach (the grown buffer) has reach[v] lane bit L set iff v
// carries flow from a node seeded with L. See graph.ReachLanesInto for
// the full contract.
//
//flowlint:hotpath
func (m *ICM) FlowLanesInto(seeds []graph.NodeID, seedBits []uint64, x bitset.Set, sc *graph.Scratch, reach []uint64) []uint64 {
	return m.G.ReachLanesInto(seeds, seedBits, x, sc, reach)
}

// FlowLanesWideInto is FlowLanesInto with W-word lane masks: seed row k
// of seedBits carries the lanes of seeds[k], and on return reach row v
// has lane L set iff v carries flow from a node seeded with L. One
// sweep answers up to 64*W queries; see graph.ReachLanesWideInto for
// the full contract. Callers that sweep the same seed set over many
// thinned samples should hold a graph.LaneEngine instead, which reuses
// the SCC condensation across sweeps when the flips between them allow.
//
//flowlint:hotpath
func (m *ICM) FlowLanesWideInto(seeds []graph.NodeID, seedBits *bitset.LaneMatrix, x bitset.Set, sc *graph.Scratch, reach *bitset.LaneMatrix) {
	m.G.ReachLanesWideInto(seeds, seedBits, x, sc, reach)
}
